// Command scaling reproduces the paper's scaling study (Table III, Figs 8
// and 9) in the discrete-event cluster simulator: AE, RL, and RS searches on
// 33–512 simulated Theta nodes for 3 hours of virtual wall time.
//
// Usage:
//
//	scaling [-nodes 33,64,128,256,512] [-methods AE,RL,RS] [-walltime 10800]
//	        [-seed 7] [-repeats 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"podnas"
	"podnas/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	nodesFlag := flag.String("nodes", "33,64,128,256,512", "comma-separated node counts")
	methodsFlag := flag.String("methods", "AE,RL,RS", "comma-separated methods")
	wallTime := flag.Float64("walltime", 10800, "virtual wall time in seconds (paper: 10800)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	repeats := flag.Int("repeats", 1, "runs per configuration (Fig 9 uses 10)")
	flag.Parse()

	var nodes []int
	for _, s := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad node count %q", s)
		}
		nodes = append(nodes, n)
	}
	methods := strings.Split(*methodsFlag, ",")

	fmt.Printf("%-6s %-8s %-12s %-14s %-12s %-12s %-10s\n",
		"nodes", "method", "utilization", "evaluations", "best R2", "uniq>0.96", "t(0.96)min")
	for _, n := range nodes {
		for _, ms := range methods {
			var utils, evals, best, uniq []float64
			var cross []float64
			for r := 0; r < *repeats; r++ {
				st, err := podnas.SimulateScaling(podnas.ScalingConfig{
					Method: podnas.ScalingMethod(ms), Nodes: n, WallTime: *wallTime,
					Seed: *seed + uint64(r)*1000,
				})
				if err != nil {
					log.Fatal(err)
				}
				utils = append(utils, st.Utilization)
				evals = append(evals, float64(st.Evaluations))
				best = append(best, st.BestReward)
				uniq = append(uniq, float64(st.UniqueHigh))
				cross = append(cross, crossingMinutes(st, 0.96))
			}
			mu, su := metrics.MeanStd(utils)
			me, _ := metrics.MeanStd(evals)
			mb, _ := metrics.MeanStd(best)
			mq, _ := metrics.MeanStd(uniq)
			mc, _ := metrics.MeanStd(cross)
			utilStr := fmt.Sprintf("%.3f", mu)
			if *repeats > 1 {
				utilStr = fmt.Sprintf("%.3f±%.3f", mu, su)
			}
			crossStr := "-"
			if mc >= 0 {
				crossStr = fmt.Sprintf("%.0f", mc)
			}
			fmt.Printf("%-6d %-8s %-12s %-14.0f %-12.4f %-12.0f %-10s\n", n, ms, utilStr, me, mb, mq, crossStr)
		}
	}
}

// crossingMinutes returns the wall-clock minute at which the moving-average
// reward first reaches level, or -1 if never.
func crossingMinutes(st *podnas.ScalingStats, level float64) float64 {
	for i := range st.RewardCurve.X {
		if st.RewardCurve.Y[i] >= level {
			return st.RewardCurve.X[i]
		}
	}
	return -1
}
