package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"podnas/internal/obs"
)

// writeTrace records a small deterministic run to a JSONL file and returns
// its path. bestReward parameterizes the single successful evaluation so
// diff tests can synthesize a regressed candidate.
func writeTrace(t *testing.T, name string, bestReward float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	jl, err := obs.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	ms := func(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
	for _, e := range []obs.Event{
		{T: 1, Kind: obs.KindTraceHeader, Method: "rs", Seed: 7, Worker: 2, Schema: obs.SchemaVersion, Version: "test"},
		{T: 1, Kind: obs.KindSearchStart, Method: "rs", Worker: 2},
		{T: ms(2), Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "a"},
		{T: ms(3), Kind: obs.KindEpoch, Eval: 0, Worker: 0, Epoch: 1},
		{T: ms(5), Kind: obs.KindEvalFinish, Eval: 0, Worker: 0, Arch: "a", Reward: bestReward},
		{T: ms(6), Kind: obs.KindCheckpoint, Eval: 1},
		{T: ms(7), Kind: obs.KindSearchFinish, Eval: 1},
	} {
		jl.Record(e)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportWritesFiguresAndMarkdown(t *testing.T) {
	trace := writeTrace(t, "run.jsonl", 0.97)
	out := filepath.Join(t.TempDir(), "out")
	if code := cmdReport([]string{"-out", out, trace}); code != 0 {
		t.Fatalf("report exit %d", code)
	}
	md, err := os.ReadFile(filepath.Join(out, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Search run report", "| method | rs |", "| seed | 7 |", "| workers | 2 |",
		"best reward | 0.970000", "unique high performers", "utilization AUC",
		"| eval | 1 |", "Figures",
	} {
		if !strings.Contains(string(md), want) {
			t.Errorf("report.md missing %q", want)
		}
	}
	for _, f := range []string{"reward.svg", "reward.csv", "utilization.svg", "highperf.svg", "latency_eval.svg", "latency_eval.csv"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Errorf("figure %s: %v", f, err)
		}
	}
}

func TestDiffExitCodes(t *testing.T) {
	base := writeTrace(t, "base.jsonl", 0.97)
	same := writeTrace(t, "same.jsonl", 0.97)
	worse := writeTrace(t, "worse.jsonl", 0.50)

	if code := cmdDiff([]string{base, same}); code != 0 {
		t.Errorf("identical runs: exit %d, want 0", code)
	}
	if code := cmdDiff([]string{base, worse}); code != exitRegression {
		t.Errorf("regressed run: exit %d, want %d", code, exitRegression)
	}
	// Disabled thresholds absorb the collapse.
	if code := cmdDiff([]string{"-best", "-1", "-ma", "-1", "-uniq", "-1", base, worse}); code != 0 {
		t.Errorf("disabled thresholds: exit %d, want 0", code)
	}
	if code := cmdDiff([]string{base}); code != exitUsage {
		t.Errorf("missing operand: exit %d, want %d", code, exitUsage)
	}
	if code := cmdDiff([]string{base, filepath.Join(t.TempDir(), "missing.jsonl")}); code != exitRuntime {
		t.Errorf("unreadable trace: exit %d, want %d", code, exitRuntime)
	}
}

func TestTailOnce(t *testing.T) {
	trace := writeTrace(t, "run.jsonl", 0.97)
	if code := cmdTail([]string{"-once", trace}); code != 0 {
		t.Errorf("tail -once exit %d", code)
	}
	// A finished trace exits immediately even without -once.
	if code := cmdTail([]string{"-interval", "10ms", trace}); code != 0 {
		t.Errorf("tail finished trace exit %d", code)
	}
	if code := cmdTail([]string{}); code != exitUsage {
		t.Errorf("tail no operand exit %d, want %d", code, exitUsage)
	}
}

func TestReportUsageAndRuntimeErrors(t *testing.T) {
	if code := cmdReport([]string{}); code != exitUsage {
		t.Errorf("no operand: exit %d, want %d", code, exitUsage)
	}
	if code := cmdReport([]string{filepath.Join(t.TempDir(), "missing.jsonl")}); code != exitRuntime {
		t.Errorf("missing trace: exit %d, want %d", code, exitRuntime)
	}
}
