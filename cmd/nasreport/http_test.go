package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"podnas/internal/obs"
	"podnas/internal/obs/replay"
)

// traceBytes builds a tiny finished-run trace through the real JSONL sink.
func traceBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	j.Record(obs.NewHeader("rs", 1, 2, "test"))
	j.Record(obs.Event{Kind: obs.KindSearchStart, Method: "rs", Worker: 2})
	j.Record(obs.Event{Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "a"})
	j.Record(obs.Event{Kind: obs.KindEvalFinish, Eval: 0, Reward: 0.5, Arch: "a"})
	j.Record(obs.Event{Kind: obs.KindSearchFinish, Eval: 1})
	if err := j.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

func TestAnalyzeSourceHTTP(t *testing.T) {
	data := traceBytes(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/jobs/j1/trace" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		_, _ = w.Write(data)
	}))
	defer srv.Close()

	a, err := analyzeSource(srv.URL+"/jobs/j1/trace", replay.Options{})
	if err != nil {
		t.Fatalf("analyze over http: %v", err)
	}
	if !a.Finished || a.Snapshot.Evals != 1 || a.Method != "rs" {
		t.Fatalf("bad analysis: finished=%v evals=%d method=%q", a.Finished, a.Snapshot.Evals, a.Method)
	}

	if _, err := analyzeSource(srv.URL+"/jobs/missing/trace", replay.Options{}); err == nil {
		t.Fatalf("404 trace analyzed without error")
	}
}

func TestAnalyzeSourceFileStillWorks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, traceBytes(t), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	a, err := analyzeSource(path, replay.Options{})
	if err != nil {
		t.Fatalf("analyze file: %v", err)
	}
	if a.Snapshot.Evals != 1 {
		t.Fatalf("evals %d, want 1", a.Snapshot.Evals)
	}
}
