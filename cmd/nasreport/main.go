// Command nasreport analyzes recorded search traces (nasrun -trace) into
// the paper's operational deliverables — the reproduction of the Balsam
// log-analysis step that produced Figs 6–8 and Table III.
//
// Usage:
//
//	nasreport report  [-out dir] [-window 100] [-high 0.96] [-bins 120] [-strict] trace.jsonl
//	nasreport diff    [-best 0.01] [-ma 0.02] [-auc 0.05] [-rate 0.20]
//	                  [-uniq 0] [-errs 0] [-strict] baseline.jsonl candidate.jsonl
//	nasreport tail    [-interval 2s] [-once] trace.jsonl
//	nasreport spans   [-out dir] [-trace ID] [-tree] trace.jsonl
//	nasreport metrics [-q] metrics.txt|http://host:port/metrics
//
// report reconstructs the live metrics snapshot from the trace (exactly —
// replay feeds the recorded events through the same aggregator) and writes
// a markdown report plus SVG/CSV figures: moving-average reward vs.
// wall-clock (Fig 6), node-utilization trace (Fig 7), unique-high-performer
// growth (Fig 8), and per-phase latency histograms with p50/p90/p99.
//
// diff compares a candidate run against a baseline with per-metric
// regression thresholds (negative values disable a check) and prints the
// delta table; it is the CI gate.
//
// tail follows a live trace, re-analyzing on an interval and printing
// a one-line summary until the run finishes.
//
// spans reconstructs the cross-process trace-span trees (search → eval →
// dispatch/rpc → train → epoch, or a nasd job's admission → queue_wait →
// search subtree) from the recorded span events, prints each trace's
// critical path, and writes one gantt-style timeline SVG per trace.
//
// metrics validates an OpenMetrics exposition — a saved file or a live
// /metrics endpoint — with the same parser the unit tests use.
//
// Every trace argument may be a local file or an http(s):// URL — in
// particular a running nasd daemon's per-job trace endpoint, e.g.
// `nasreport tail http://127.0.0.1:8765/jobs/<id>/trace`.
//
// Exit codes: 0 success (diff: no regression), 1 diff found a regression,
// 2 usage error, 3 runtime error (unreadable trace, schema violation,
// output failure). Truncated traces are NOT errors: the clean prefix is
// analyzed and the truncation reported.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"podnas/internal/metrics"
	"podnas/internal/obs/replay"
	"podnas/internal/plot"
)

const (
	exitRegression = 1
	exitUsage      = 2
	exitRuntime    = 3
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  nasreport report  [-out dir] [-window N] [-high R] [-bins N] [-strict] trace.jsonl
  nasreport diff    [-best D] [-ma D] [-auc D] [-rate F] [-uniq N] [-errs N] [-strict] baseline.jsonl candidate.jsonl
  nasreport tail    [-interval D] [-once] trace.jsonl
  nasreport spans   [-out dir] [-trace ID] [-tree] trace.jsonl
  nasreport metrics [-q] metrics.txt|http://host/metrics
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	switch os.Args[1] {
	case "report":
		os.Exit(cmdReport(os.Args[2:]))
	case "diff":
		os.Exit(cmdDiff(os.Args[2:]))
	case "tail":
		os.Exit(cmdTail(os.Args[2:]))
	case "spans":
		os.Exit(cmdSpans(os.Args[2:]))
	case "metrics":
		os.Exit(cmdMetrics(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "nasreport: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(exitUsage)
	}
}

// analysisFlags registers the replay options shared by report and diff.
func analysisFlags(fs *flag.FlagSet) *replay.Options {
	o := &replay.Options{}
	fs.IntVar(&o.Window, "window", 100, "reward moving-average window")
	fs.Float64Var(&o.HighThreshold, "high", 0.96, "unique-high-performer reward cutoff")
	fs.IntVar(&o.Bins, "bins", 120, "utilization trace bins")
	fs.BoolVar(&o.Strict, "strict", false, "reject offset-monotonicity violations instead of counting them")
	return o
}

// analyzeSource analyzes a trace from a local file or an http(s):// URL —
// nasd's per-job trace endpoint (GET /jobs/{id}/trace) — so report, diff,
// and tail all work directly against a running daemon.
func analyzeSource(src string, opts replay.Options) (*replay.Analysis, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		return replay.Analyze(resp.Body, opts)
	}
	return replay.AnalyzeFile(src, opts)
}

func analyze(path string, opts replay.Options) (*replay.Analysis, int) {
	a, err := analyzeSource(path, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nasreport: %s: %v\n", path, err)
		return nil, exitRuntime
	}
	if a.Read.Truncated {
		fmt.Fprintf(os.Stderr, "nasreport: %s: truncated at line %d; analyzed the clean prefix of %d events\n",
			path, a.Read.TruncatedLine, a.Read.Events)
	}
	return a, 0
}

func cmdReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("out", "nasreport-out", "output directory for report.md and figures")
	opts := analysisFlags(fs)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return exitUsage
	}
	a, code := analyze(fs.Arg(0), *opts)
	if code != 0 {
		return code
	}
	if err := writeReport(a, *out, *opts); err != nil {
		fmt.Fprintf(os.Stderr, "nasreport: %v\n", err)
		return exitRuntime
	}
	fmt.Printf("report written to %s\n", filepath.Join(*out, "report.md"))
	return 0
}

// figures writes the three paper curves and the latency histograms, and
// returns markdown links for the ones that had data.
func figures(a *replay.Analysis, out string, opts replay.Options) ([]string, error) {
	var links []string
	write := func(name string, c *plot.Chart) error {
		if err := c.WriteSVG(out, name); err != nil {
			return err
		}
		if err := c.WriteCSV(out, name); err != nil {
			return err
		}
		links = append(links, fmt.Sprintf("- [%s](%s.svg) ([csv](%s.csv))", c.Title, name, name))
		return nil
	}
	curves := []struct {
		name, title, ylabel string
		c                   *metrics.Curve
		step                bool
	}{
		{"reward", fmt.Sprintf("Reward moving average (window %d)", opts.Window), "reward MA", a.Reward, false},
		{"utilization", "Slot utilization", "busy fraction", a.Utilization, true},
		{"highperf", "Unique high performers", "count", a.HighPerf, true},
	}
	for _, cu := range curves {
		if cu.c == nil || cu.c.Len() == 0 {
			continue
		}
		chart := &plot.Chart{
			Title: cu.title, XLabel: "seconds", YLabel: cu.ylabel,
			Series: []plot.Series{{Name: cu.ylabel, X: cu.c.X, Y: cu.c.Y, Step: cu.step}},
		}
		if err := write(cu.name, chart); err != nil {
			return nil, err
		}
	}
	for _, ph := range []replay.Phase{replay.PhaseEval, replay.PhaseEpoch, replay.PhaseCheckpoint} {
		h := a.Latency[ph]
		if h == nil || h.N() == 0 {
			continue
		}
		edges, counts := h.Buckets(20)
		chart := plot.HistogramChart(fmt.Sprintf("%s latency", ph), "seconds", edges, counts)
		if err := write("latency_"+string(ph), chart); err != nil {
			return nil, err
		}
	}
	return links, nil
}

func writeReport(a *replay.Analysis, out string, opts replay.Options) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	links, err := figures(a, out, opts)
	if err != nil {
		return err
	}

	var b strings.Builder
	s := a.Snapshot
	fmt.Fprintf(&b, "# Search run report\n\n")

	fmt.Fprintf(&b, "## Run\n\n")
	fmt.Fprintf(&b, "| field | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| method | %s |\n", orDash(a.Method))
	fmt.Fprintf(&b, "| seed | %d |\n", a.Seed)
	fmt.Fprintf(&b, "| workers | %d |\n", a.Workers)
	fmt.Fprintf(&b, "| writer version | %s |\n", orDash(a.Version))
	if a.Header != nil {
		fmt.Fprintf(&b, "| trace schema | %d |\n", a.Header.Schema)
	}
	fmt.Fprintf(&b, "| finished | %v |\n", a.Finished)
	fmt.Fprintf(&b, "| events | %d (%d lines) |\n", a.Read.Events, a.Read.Lines)
	if a.Read.Truncated {
		fmt.Fprintf(&b, "| **truncated** | at line %d — clean prefix analyzed |\n", a.Read.TruncatedLine)
	}
	if a.Read.OutOfOrder > 0 {
		fmt.Fprintf(&b, "| out-of-order offsets | %d |\n", a.Read.OutOfOrder)
	}
	if a.Read.UnknownKinds > 0 {
		fmt.Fprintf(&b, "| unknown event kinds | %d |\n", a.Read.UnknownKinds)
	}

	fmt.Fprintf(&b, "\n## Outcome\n\n")
	fmt.Fprintf(&b, "| metric | value |\n|---|---:|\n")
	fmt.Fprintf(&b, "| elapsed (s) | %.3f |\n", s.ElapsedSeconds)
	fmt.Fprintf(&b, "| evaluations | %d (%d ok, %d errored, %d retries) |\n", s.Evals, s.Successes, s.Errors, s.Retries)
	fmt.Fprintf(&b, "| evals/sec | %.4g |\n", s.EvalsPerSec)
	fmt.Fprintf(&b, "| best reward | %.6f |\n", s.BestReward)
	fmt.Fprintf(&b, "| reward MA | %.6f |\n", s.RewardMA)
	fmt.Fprintf(&b, "| unique high performers (> %.2f) | %d |\n", opts.HighThreshold, s.UniqueHigh)
	fmt.Fprintf(&b, "| utilization AUC | %.4f |\n", s.UtilizationAUC)
	fmt.Fprintf(&b, "| busy slot-seconds | %.3f |\n", s.BusySeconds)
	fmt.Fprintf(&b, "| epochs / rounds / checkpoints | %d / %d / %d |\n", s.Epochs, s.Rounds, s.Checkpoints)
	if s.WorkerCrashes+s.WorkerRestarts+s.HeartbeatMisses > 0 {
		fmt.Fprintf(&b, "| worker crashes / restarts / hb misses | %d / %d / %d |\n",
			s.WorkerCrashes, s.WorkerRestarts, s.HeartbeatMisses)
	}

	fmt.Fprintf(&b, "\n## Latency\n\n")
	fmt.Fprintf(&b, "| phase | n | mean (s) | p50 | p90 | p99 | max |\n|---|---:|---:|---:|---:|---:|---:|\n")
	for _, ph := range []replay.Phase{replay.PhaseEval, replay.PhaseEpoch, replay.PhaseCheckpoint} {
		h := a.Latency[ph]
		if h == nil || h.N() == 0 {
			fmt.Fprintf(&b, "| %s | 0 | — | — | — | — | — |\n", ph)
			continue
		}
		fmt.Fprintf(&b, "| %s | %d | %.4g | %.4g | %.4g | %.4g | %.4g |\n",
			ph, h.N(), h.Mean(), h.P50(), h.P90(), h.P99(), h.Max())
	}

	if len(a.Slots) > 0 {
		fmt.Fprintf(&b, "\n## Worker slots\n\n")
		fmt.Fprintf(&b, "| worker | started | ok | errored | busy (s) | mean lat | crashes | restarts | hb misses | straggler |\n")
		fmt.Fprintf(&b, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n")
		for _, sl := range a.Slots {
			verdict := ""
			if sl.Straggler {
				verdict = fmt.Sprintf("**yes** (%.2f×)", sl.StragglerScore)
			}
			fmt.Fprintf(&b, "| %d | %d | %d | %d | %.3f | %.4g | %d | %d | %d | %s |\n",
				sl.Worker, sl.Started, sl.Finished, sl.Errored, sl.BusySeconds,
				sl.MeanLatency, sl.Crashes, sl.Restarts, sl.HBMisses, verdict)
		}
	}

	if len(links) > 0 {
		fmt.Fprintf(&b, "\n## Figures\n\n%s\n", strings.Join(links, "\n"))
	}
	return os.WriteFile(filepath.Join(out, "report.md"), []byte(b.String()), 0o644)
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

func cmdDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	th := replay.Thresholds{}
	fs.Float64Var(&th.BestReward, "best", 0.01, "allowed absolute drop in best reward (negative disables)")
	fs.Float64Var(&th.RewardMA, "ma", 0.02, "allowed absolute drop in reward moving average (negative disables)")
	fs.Float64Var(&th.UtilizationAUC, "auc", 0.05, "allowed absolute drop in utilization AUC (negative disables)")
	fs.Float64Var(&th.EvalsPerSec, "rate", 0.20, "allowed relative drop in evals/sec (negative disables)")
	fs.Float64Var(&th.UniqueHigh, "uniq", 0, "allowed drop in unique high performers (negative disables)")
	fs.Float64Var(&th.Errors, "errs", 0, "allowed increase in errored evaluations (negative disables)")
	opts := analysisFlags(fs)
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		return exitUsage
	}
	a, code := analyze(fs.Arg(0), *opts)
	if code != 0 {
		return code
	}
	b, code := analyze(fs.Arg(1), *opts)
	if code != 0 {
		return code
	}
	r := replay.Diff(a, b, th)
	fmt.Print(r.Markdown())
	if r.Regressed() {
		return exitRegression
	}
	return 0
}

func cmdTail(args []string) int {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "re-analysis interval")
	once := fs.Bool("once", false, "print one summary line and exit")
	opts := analysisFlags(fs)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return exitUsage
	}
	path := fs.Arg(0)
	for {
		a, err := analyzeSource(path, *opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasreport: %s: %v\n", path, err)
			return exitRuntime
		}
		s := a.Snapshot
		status := "running"
		switch {
		case a.Finished:
			status = "finished"
		case a.Read.Truncated:
			status = "truncated"
		}
		fmt.Printf("%s t=%.1fs evals=%d (ok %d, err %d, inflight %d) best=%.4f ma=%.4f util=%.2f\n",
			status, s.ElapsedSeconds, s.Evals, s.Successes, s.Errors, s.InFlight,
			s.BestReward, s.RewardMA, s.UtilizationAUC)
		if a.Finished || *once {
			return 0
		}
		time.Sleep(*interval)
	}
}
