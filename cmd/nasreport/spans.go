package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"podnas/internal/obs"
	"podnas/internal/obs/replay"
	"podnas/internal/obs/span"
)

// readEvents decodes a whole trace (local file or http(s):// URL) into its
// clean-prefix event slice, tolerating truncation like the analyses do.
func readEvents(src string) ([]obs.Event, error) {
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	rd := replay.NewReader(r, false)
	var events []obs.Event
	for {
		e, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if st := rd.Stats(); st.Truncated {
		fmt.Fprintf(os.Stderr, "nasreport: %s: truncated at line %d; using the clean prefix of %d events\n",
			src, st.TruncatedLine, st.Events)
	}
	return events, nil
}

// cmdSpans reconstructs every trace's span tree from a recorded event
// stream, prints the critical-path summary, and writes one gantt SVG per
// trace.
func cmdSpans(args []string) int {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	out := fs.String("out", "nasreport-out", "output directory for gantt SVGs")
	only := fs.String("trace", "", "render only the trace with this 16-hex ID")
	tree := fs.Bool("tree", false, "also print each trace's indented span tree")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return exitUsage
	}
	events, err := readEvents(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nasreport: %s: %v\n", fs.Arg(0), err)
		return exitRuntime
	}
	traces := replay.Spans(events)
	if *only != "" {
		id, err := span.ParseID(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasreport: -trace %q: %v\n", *only, err)
			return exitUsage
		}
		kept := traces[:0]
		for _, t := range traces {
			if t.ID == id {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	if len(traces) == 0 {
		fmt.Println("no spans in trace (run with tracing enabled: nasrun -obs, or a nasd job)")
		return 0
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "nasreport: %v\n", err)
		return exitRuntime
	}
	for _, t := range traces {
		name := fmt.Sprintf("spans_%s.svg", t.ID)
		if err := os.WriteFile(filepath.Join(*out, name), []byte(ganttSVG(t)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nasreport: %v\n", err)
			return exitRuntime
		}
		fmt.Printf("trace %s: %d spans over %.3fs → %s\n",
			t.ID, len(t.Spans), (t.End() - t.Start()).Seconds(), filepath.Join(*out, name))
		path := replay.CriticalPath(t)
		if len(path) > 0 {
			fmt.Printf("  critical path:\n")
			for _, step := range path {
				fmt.Printf("    %-12s +%8.3fs  dur %8.3fs  self %8.3fs\n",
					step.Span.Name, step.Span.Start.Seconds(),
					step.Span.Duration().Seconds(), step.Self.Seconds())
			}
		}
		if *tree {
			fmt.Print(replay.FormatSpanTree(t))
		}
	}
	return 0
}

// ganttSVG renders one trace as a timeline: one row per span in
// depth-first tree order, bar position and width from the span's recorded
// start/end, indentation showing depth. The output is deterministic for
// identical traces.
func ganttSVG(t *replay.Trace) string {
	type row struct {
		s     *replay.Span
		depth int
	}
	var rows []row
	var walk func(s *replay.Span, depth int)
	walk = func(s *replay.Span, depth int) {
		rows = append(rows, row{s, depth})
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}

	const (
		rowH    = 22
		top     = 40
		left    = 220
		chartW  = 760
		labelPx = 8
	)
	t0, t1 := t.Start(), t.End()
	total := (t1 - t0).Seconds()
	if total <= 0 {
		total = 1e-9
	}
	x := func(sec float64) float64 { return left + (sec-t0.Seconds())/total*chartW }
	h := top + len(rows)*rowH + 30
	w := left + chartW + 20

	// Depth-cycled fills keep parent/child bars distinguishable without a
	// legend.
	palette := []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948"}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="10" y="20" font-size="13">trace %s — %d spans, %.3fs</text>`+"\n", t.ID, len(t.Spans), total)
	// Time gridlines at quarters.
	for i := 0; i <= 4; i++ {
		sec := t0.Seconds() + total*float64(i)/4
		gx := x(sec)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n", gx, top-6, gx, h-24)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#666">%.3fs</text>`+"\n", gx-16, h-10, sec)
	}
	for i, r := range rows {
		y := top + i*rowH
		x0, x1 := x(r.s.Start.Seconds()), x(r.s.End.Seconds())
		if x1-x0 < 1 {
			x1 = x0 + 1 // zero-duration spans still get a visible tick
		}
		fill := palette[r.depth%len(palette)]
		label := r.s.Name
		if r.s.Orphan {
			label += " (orphan)"
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
			labelPx+r.depth*10, y+15, escapeXML(label))
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" rx="2"><title>%s %.3fs–%.3fs (%.3fs)</title></rect>`+"\n",
			x0, y+4, x1-x0, rowH-8, fill,
			escapeXML(r.s.Name), r.s.Start.Seconds(), r.s.End.Seconds(), r.s.Duration().Seconds())
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// cmdMetrics fetches an OpenMetrics exposition (file or URL — typically a
// live /metrics endpoint) and validates it with the same parser the unit
// tests and the CI metrics-smoke job use.
func cmdMetrics(args []string) int {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	quiet := fs.Bool("q", false, "suppress the family listing; exit code only")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		return exitUsage
	}
	src := fs.Arg(0)
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasreport: %s: %v\n", src, err)
			return exitRuntime
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "nasreport: GET %s: %s\n", src, resp.Status)
			return exitRuntime
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasreport: %s: %v\n", src, err)
			return exitRuntime
		}
		r = f
	}
	families, err := obs.ValidateOpenMetrics(r)
	r.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nasreport: %s: invalid OpenMetrics exposition: %v\n", src, err)
		return exitRuntime
	}
	if !*quiet {
		fmt.Printf("valid OpenMetrics exposition: %d families\n", len(families))
		for _, f := range families {
			fmt.Printf("  %s\n", f)
		}
	}
	return 0
}
