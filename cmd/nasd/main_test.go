package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"podnas/internal/jobs"
)

// TestMain doubles as the daemon entry point: when re-executed with
// NASD_HELPER=1 the test binary runs nasd's real main(), so the kill and
// drain tests exercise the same process lifecycle (flock, signal handling,
// exit codes) as a production daemon.
func TestMain(m *testing.M) {
	if os.Getenv("NASD_HELPER") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one re-executed nasd incarnation plus the client plumbing to
// talk to it.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	logs *bytes.Buffer
}

// startDaemon launches the test binary as nasd over dir and waits until the
// API answers /healthz. Each incarnation writes its bound address to its own
// file so a restart never reads the predecessor's stale address.
func startDaemon(t *testing.T, dir string, tag string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(dir, "addr-"+tag)
	args := append([]string{
		"-listen", "127.0.0.1:0",
		"-dir", dir,
		"-addrfile", addrFile,
		"-grid", "small",
		"-maxrunning", "2",
		"-draintimeout", "30s",
	}, extra...)
	d := &daemon{logs: &bytes.Buffer{}}
	d.cmd = exec.Command(os.Args[0], args...)
	d.cmd.Env = append(os.Environ(), "NASD_HELPER=1")
	d.cmd.Stdout = d.logs
	d.cmd.Stderr = d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			d.addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d.addr == "" {
		t.Fatalf("daemon never wrote %s; logs:\n%s", addrFile, d.logs)
	}
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url("/healthz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy; logs:\n%s", d.addr, d.logs)
	return nil
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// submit POSTs a job spec and returns the created job.
func (d *daemon) submit(t *testing.T, spec string) jobs.Job {
	t.Helper()
	resp, err := http.Post(d.url("/jobs"), "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return j
}

// get fetches one job's status.
func (d *daemon) get(t *testing.T, id string) jobs.Job {
	t.Helper()
	resp, err := http.Get(d.url("/jobs/" + id))
	if err != nil {
		t.Fatalf("get %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", id, resp.StatusCode)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return j
}

// waitDone polls a job until it reaches the done state.
func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		j := d.get(t, id)
		switch j.State {
		case jobs.StateDone:
			return j
		case jobs.StateFailed, jobs.StateCancelled, jobs.StatePaused:
			t.Fatalf("job %s reached %s (%q), want done; logs:\n%s", id, j.State, j.Error, d.logs)
		}
		time.Sleep(25 * time.Millisecond)
	}
	j := d.get(t, id)
	t.Fatalf("job %s still %s after %v; logs:\n%s", id, j.State, timeout, d.logs)
	return jobs.Job{}
}

// waitCheckpoint polls until the job has persisted a search checkpoint —
// proof at least one evaluation completed and durable resume state exists.
func waitCheckpoint(t *testing.T, dir, id string) {
	t.Helper()
	path := filepath.Join(dir, id+".ck.json")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never wrote a checkpoint at %s", id, path)
}

// TestKillDashNineRestartResumes is the crash-safety acceptance walk:
// a daemon with two in-flight jobs is SIGKILLed after both have durable
// checkpoints, a fresh incarnation over the same state directory re-admits
// them, and both finish exactly once with results surviving further
// restarts of nothing (the terminal manifests are durable).
func TestKillDashNineRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process kill/restart walk")
	}
	dir := t.TempDir()
	d1 := startDaemon(t, dir, "1")
	defer d1.cmd.Process.Kill()

	spec := `{"method":"rs","evals":4,"epochs":1,"workers":1,"seed":%d}`
	j1 := d1.submit(t, fmt.Sprintf(spec, 3))
	j2 := d1.submit(t, fmt.Sprintf(spec, 4))
	waitCheckpoint(t, dir, j1.ID)
	waitCheckpoint(t, dir, j2.ID)

	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatalf("kill: %v", err)
	}
	_ = d1.cmd.Wait()

	d2 := startDaemon(t, dir, "2")
	defer d2.cmd.Process.Kill()
	var done [2]jobs.Job
	for i, id := range []string{j1.ID, j2.ID} {
		done[i] = d2.waitDone(t, id, 2*time.Minute)
	}
	for _, j := range done {
		if j.Result == nil || j.Result.Evals != 4 || j.Result.BestArch == "" {
			t.Fatalf("job %s resumed badly: %+v", j.ID, j.Result)
		}
		if j.Attempt < 2 {
			t.Fatalf("job %s finished on attempt %d; a post-crash completion must be a re-admission", j.ID, j.Attempt)
		}
		// Exactly-once: the settled result is stable across reads.
		again := d2.get(t, j.ID)
		if again.Result == nil || *again.Result != *j.Result || !again.FinishedAt.Equal(j.FinishedAt) {
			t.Fatalf("job %s result not stable: %+v vs %+v", j.ID, again.Result, j.Result)
		}
	}

	// The per-job traces must have survived the crash as analyzable JSONL:
	// first line a header carrying the job ID.
	for _, j := range done {
		resp, err := http.Get(d2.url("/jobs/" + j.ID + "/trace"))
		if err != nil {
			t.Fatalf("trace: %v", err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		line, _, _ := strings.Cut(buf.String(), "\n")
		var first struct {
			Kind string `json:"kind"`
			Job  string `json:"job"`
		}
		if err := json.Unmarshal([]byte(line), &first); err != nil || first.Kind != "trace_header" || first.Job != j.ID {
			t.Fatalf("trace head %q (err %v), want header for %s", line, err, j.ID)
		}
	}
}

// TestSigtermDrainExitsZero checks graceful degradation at shutdown: SIGTERM
// while a job is mid-run checkpoints and re-queues the job durably, and the
// process exits 0 so supervisors do not treat a routine drain as a crash.
func TestSigtermDrainExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process drain walk")
	}
	dir := t.TempDir()
	d := startDaemon(t, dir, "1")
	defer d.cmd.Process.Kill()

	// A job too long to finish before the drain: the daemon must evict it.
	j := d.submit(t, `{"method":"rs","evals":500,"epochs":2,"workers":1,"seed":5}`)
	waitCheckpoint(t, dir, j.ID)

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("drain exited non-zero: %v; logs:\n%s", err, d.logs)
	}

	// The evicted job must be durably re-queued with its progress intact.
	st, err := jobs.NewStore(dir)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	after, err := st.Load(j.ID)
	if err != nil {
		t.Fatalf("load after drain: %v", err)
	}
	if after.State != jobs.StateQueued {
		t.Fatalf("drained job state %s, want queued", after.State)
	}
	if after.Evals < 1 {
		t.Fatalf("drained job lost its progress: %+v", after)
	}
	if _, err := os.Stat(filepath.Join(dir, j.ID+".ck.json")); err != nil {
		t.Fatalf("drained job checkpoint missing: %v", err)
	}
}
