// Command nasd is the crash-safe NAS job daemon: a long-running service
// that accepts architecture-search jobs over HTTP/JSON and survives being
// killed at any moment. Job state is durable — manifests and search
// checkpoints go through the same versioned+CRC envelope and atomic
// fsync+rename writes as nasrun checkpoints — so a SIGKILLed daemon
// restarted over the same -dir resumes every in-flight job from its last
// checkpoint and never re-runs a finished one (exactly-once results).
//
// Usage:
//
//	nasd -dir state/ [-listen 127.0.0.1:8765] [-grid small|default]
//	     [-maxrunning 1] [-maxqueued 8] [-deadline 0] [-retrybudget 1]
//	     [-connect host:port,...] [-workerbin nasrun] [-heartbeat 1s]
//	     [-maxrestarts 3] [-dialtimeout 5s] [-trace out.jsonl]
//	     [-addrfile path] [-slo-eval-p99 0] [-slo-queue-p99 0]
//	     [-slo-hb-rate 0] [-slo-interval 5s]
//
// API (JSON): POST /jobs, GET /jobs, GET /jobs/{id}, POST /jobs/{id}/cancel,
// GET /jobs/{id}/result, GET /jobs/{id}/trace, POST /drain, GET /healthz,
// plus expvar metrics at /debug/vars and an OpenMetrics exposition at
// /metrics (eval-latency histogram, kernel GFLOP counters, queue depth).
// When the admission queue is full or the daemon is draining, submits get
// 429 with jittered Retry-After backoff guidance.
//
// Every job carries a deterministic trace (root span id derived from the
// job id), so a job's admission, queue wait, dispatch, per-eval training,
// and remote-agent rpc spans stitch into one tree across processes; pull
// them from GET /jobs/{id}/trace and render with "nasreport spans". The
// -slo-* flags arm a watchdog that, on the first breach of an objective
// (eval p99, queue-wait p99, heartbeat-miss rate), captures one CPU+heap
// profile bundle under <dir>/slo-profiles and records a KindSLOBreach
// event; capture re-arms only after the objective recovers.
//
// Degradation ladder: with -connect, evaluations go to remote agents; slots
// whose agent stays dead fall back to local subprocess workers (-workerbin,
// the nasrun binary) and then to in-process evaluation; if even the pooled
// runner fails, a plain in-process rung retries the attempt; when every
// rung is exhausted the job parks as "paused" with its checkpoint instead
// of losing work. A watchdog goroutine enforces per-job deadlines and retry
// budgets.
//
// SIGTERM (or POST /drain) drains gracefully: admission closes, running
// jobs are evicted and checkpoint, and the daemon exits 0; a later start
// resumes them.
//
// Exit codes: the shared nasrun codes, plus 6 when the state directory is
// already locked by another daemon instance (podnas.ErrUnavailable).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"podnas"
	"podnas/internal/cli"
	"podnas/internal/jobs"
	"podnas/internal/obs"
	"podnas/internal/obs/slo"
	"podnas/internal/obs/span"
	"podnas/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nasd: ")
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:8765", "serve the job API on this address")
	dir := flag.String("dir", "nasd-state", "durable state directory (manifests, checkpoints, traces)")
	grid := flag.String("grid", "small", "data set size: small or default")
	maxRunning := flag.Int("maxrunning", 1, "concurrently running jobs")
	maxQueued := flag.Int("maxqueued", 8, "admission queue bound; submits beyond it get 429")
	deadline := flag.Duration("deadline", 0, "default per-attempt deadline enforced by the watchdog (0 = none)")
	retryBudget := flag.Int("retrybudget", 1, "default re-admissions after an eviction or failed attempt")
	connect := flag.String("connect", "", "dispatch evaluations to remote worker agents at these comma-separated host:port addresses")
	workerBin := flag.String("workerbin", "", "nasrun binary for subprocess worker isolation (empty = in-process evaluation)")
	heartbeat := flag.Duration("heartbeat", time.Second, "worker heartbeat interval")
	maxRestarts := flag.Int("maxrestarts", 3, "per-worker respawn budget before a slot degrades")
	dialTimeout := flag.Duration("dialtimeout", 5*time.Second, "per-attempt timeout dialing a remote agent")
	readTimeout := flag.Duration("readtimeout", 0, "per-read deadline on agent connections (0 = heartbeats only)")
	drainTimeout := flag.Duration("draintimeout", time.Minute, "bound on graceful drain before exiting anyway")
	tracePath := flag.String("trace", "", "append the daemon-wide event log to this file as JSON lines")
	addrFile := flag.String("addrfile", "", "write the bound listen address to this file once serving (for scripts and tests)")
	sloEvalP99 := flag.Duration("slo-eval-p99", 0, "SLO: breach when eval latency p99 exceeds this (0 = off)")
	sloQueueP99 := flag.Duration("slo-queue-p99", 0, "SLO: breach when job queue-wait p99 exceeds this (0 = off)")
	sloHBRate := flag.Float64("slo-hb-rate", 0, "SLO: breach when heartbeat misses/minute exceed this (0 = off)")
	sloInterval := flag.Duration("slo-interval", 5*time.Second, "SLO watch-loop poll interval")
	flag.Parse()

	if *grid != "small" && *grid != "default" {
		return fmt.Errorf("-grid must be \"small\" or \"default\", got %q: %w", *grid, podnas.ErrBadOptions)
	}
	if *maxRunning < 1 || *maxQueued < 1 {
		return fmt.Errorf("-maxrunning and -maxqueued must be at least 1: %w", podnas.ErrBadOptions)
	}

	// One daemon per state directory: two instances over the same manifests
	// would double-run jobs and corrupt each other's admission decisions.
	// flock is released by the kernel on process death, so a SIGKILLed
	// daemon never wedges its successor.
	unlock, err := lockDir(*dir)
	if err != nil {
		return err
	}
	defer unlock()

	cfg := podnas.SmallPipelineConfig()
	if *grid == "default" {
		cfg = podnas.DefaultPipelineConfig()
	}
	log.Printf("preparing pipeline (%s grid)...", *grid)
	t0 := time.Now()
	p, err := podnas.NewPipeline(cfg)
	if err != nil {
		return err
	}
	log.Printf("pipeline ready in %v", time.Since(t0).Round(time.Millisecond))

	met := obs.NewMetrics(*maxRunning)
	if !met.Publish("") {
		log.Printf("warning: expvar %q already registered; live metrics not republished", obs.DefaultVarName)
	}
	if !obs.PublishKernelStats("") {
		log.Printf("warning: expvar %q already registered; kernel counters not republished", obs.DefaultKernelVarName)
	}
	sinks := []obs.Recorder{met}
	var traceLog *obs.JSONL
	if *tracePath != "" {
		tl, _, err := obs.AppendJSONL(*tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		traceLog = tl
		defer traceLog.Close()
		sinks = append(sinks, traceLog)
	}
	rec := obs.NewMulti(sinks...)

	var sloWatch *slo.Watcher
	if *sloEvalP99 > 0 || *sloQueueP99 > 0 || *sloHBRate > 0 {
		w, err := slo.New(slo.Options{
			Targets: slo.Targets{
				EvalP99:           *sloEvalP99,
				QueueWaitP99:      *sloQueueP99,
				HeartbeatMissRate: *sloHBRate,
			},
			Dir:      filepath.Join(*dir, "slo-profiles"),
			Interval: *sloInterval,
			Snapshot: met.Snapshot,
			Recorder: rec,
		})
		if err != nil {
			return fmt.Errorf("slo: %w", err)
		}
		sloWatch = w
		defer sloWatch.Close()
		log.Printf("SLO watch: eval p99 %v, queue-wait p99 %v, hb-miss rate %.3g/min; breach profiles in %s",
			*sloEvalP99, *sloQueueP99, *sloHBRate, filepath.Join(*dir, "slo-profiles"))
	}

	store, err := jobs.NewStore(*dir)
	if err != nil {
		return err
	}
	runner := &searchRunner{
		p:           p,
		grid:        *grid,
		connect:     cli.SplitAddrs(*connect),
		workerBin:   *workerBin,
		heartbeat:   *heartbeat,
		maxRestarts: *maxRestarts,
		dialTimeout: *dialTimeout,
		readTimeout: *readTimeout,
	}
	rungs := []jobs.Runner{runner}
	if len(runner.connect) > 0 || runner.workerBin != "" {
		// The pooled rung already degrades remote → subprocess → in-process
		// internally; a plain in-process rung behind it catches the case
		// where pool construction itself fails.
		rungs = append(rungs, &searchRunner{p: p, grid: *grid})
	}
	mgr, err := jobs.New(jobs.Options{
		Store:           store,
		Rungs:           rungs,
		MaxRunning:      *maxRunning,
		MaxQueued:       *maxQueued,
		DefaultDeadline: *deadline,
		RetryBudget:     *retryBudget,
		Recorder:        rec,
		Version:         podnas.Version,
		SpecCheck: func(s jobs.Spec) error {
			_, err := podnas.ParseMethod(s.Method)
			return err
		},
	})
	if err != nil {
		return err
	}
	for _, cerr := range mgr.CorruptManifests() {
		log.Printf("startup: %v", cerr)
	}
	if st := mgr.Stats(); st.Queued > 0 {
		log.Printf("re-admitted %d unfinished job(s) from %s", st.Queued, *dir)
	}

	// SIGTERM/SIGINT and POST /drain converge on the same graceful path:
	// stop admitting, checkpoint everything, exit 0.
	drainReq := make(chan struct{}, 1)
	api := &jobs.API{Manager: mgr, OnDrain: func() {
		select {
		case drainReq <- struct{}{}:
		default:
		}
	}}
	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", obs.MetricsHandler(
		met.Families,
		obs.KernelFamilies,
		obs.GaugeSource("podnas_jobs_queued", "Jobs waiting in the admission queue.",
			func() float64 { return float64(mgr.Stats().Queued) }),
		obs.GaugeSource("podnas_jobs_running", "Jobs currently running.",
			func() float64 { return float64(mgr.Stats().Running) }),
	))

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("serving job API on http://%s (state in %s)", ln.Addr(), *dir)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("-addrfile: %w", err)
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sigs:
		log.Printf("%v: draining (timeout %v)...", s, *drainTimeout)
	case <-drainReq:
		log.Printf("drain requested: draining (timeout %v)...", *drainTimeout)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		log.Printf("drain: %v (exiting anyway; state is durable)", err)
	}
	if err := mgr.Close(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("close: %v", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = srv.Shutdown(shutCtx)
	if traceLog != nil {
		_ = traceLog.Flush()
	}
	log.Printf("drained: all jobs checkpointed, state in %s", *dir)
	return nil
}

// lockDir takes an exclusive flock on <dir>/nasd.lock, refusing to start
// when another live daemon owns the directory. The lock dies with the
// process, so crash-restart never blocks on a stale lock file.
func lockDir(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "nasd.lock")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("state dir %s is locked by another nasd instance: %w", dir, podnas.ErrUnavailable)
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}

// searchRunner is the daemon's production rung: podnas.Search over the
// shared pipeline, with the worker pool's own remote → subprocess →
// in-process degradation when -connect or -workerbin configure one.
type searchRunner struct {
	p           *podnas.Pipeline
	grid        string
	connect     []string
	workerBin   string
	heartbeat   time.Duration
	maxRestarts int
	dialTimeout time.Duration
	readTimeout time.Duration
}

func (r *searchRunner) Name() string {
	if len(r.connect) > 0 {
		return "search-distributed"
	}
	if r.workerBin != "" {
		return "search-isolated"
	}
	return "search"
}

func (r *searchRunner) Run(ctx context.Context, spec jobs.Spec, run jobs.RunInfo) (*jobs.Result, error) {
	method, err := podnas.ParseMethod(spec.Method)
	if err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers < 1 {
		workers = 1
	}
	epochs := spec.Epochs
	if epochs < 1 {
		epochs = 20 // the paper's training budget
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	opts := podnas.SearchOptions{
		Workers: workers, MaxEvals: spec.Evals, Epochs: epochs,
		Population: max(4, spec.Evals/3), Sample: max(2, spec.Evals/8),
		Seed: seed, Ctx: ctx,
		CheckpointPath: run.CheckpointPath, CheckpointEvery: 1,
		Resume:   run.Resume,
		Recorder: run.Recorder,
		// The job's root span context: the search subtree parents under the
		// same trace as the manager's admission/queue_wait spans.
		Trace: run.Trace,
	}
	if method == podnas.MethodRL {
		opts.Agents = 2
		opts.WorkersPerAgent = workers
		opts.Batches = max(1, spec.Evals/(opts.Agents*opts.WorkersPerAgent))
	}
	if len(r.connect) > 0 || r.workerBin != "" {
		pool, err := r.newPool(workers, seed, epochs, run.Recorder, run.Trace)
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		opts.Evaluator = pool
	}
	res, err := podnas.Search(r.p, method, opts)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil && len(res.Results) < spec.Evals {
		// A cancelled search returns its completed results with a nil error.
		// Here the cancellation came from the manager (drain, client cancel,
		// or watchdog eviction), so a partial run must not masquerade as a
		// finished job: surface the interruption and let the manager's settle
		// policy decide between requeue, paused, and cancelled. The
		// checkpoint already holds the partial progress.
		return nil, fmt.Errorf("search interrupted after %d/%d evaluations: %w",
			len(res.Results), spec.Evals, ctx.Err())
	}
	return &jobs.Result{
		BestArch:   res.Best.Arch.Key(),
		BestReward: res.Best.Reward,
		Evals:      len(res.Results),
	}, nil
}

// newPool assembles the degradation-ladder worker pool: remote agents when
// -connect is set, local subprocess workers (when -workerbin names the
// nasrun binary) as transport fallback, in-process evaluation as the floor.
func (r *searchRunner) newPool(workers int, seed uint64, epochs int, rec obs.Recorder, trace span.Context) (*worker.Pool, error) {
	fallback, err := r.p.NewEvaluator(epochs)
	if err != nil {
		return nil, err
	}
	popts := worker.PoolOptions{
		Workers:   workers,
		Heartbeat: r.heartbeat, MaxRestarts: r.maxRestarts, Seed: seed,
		Fallback: fallback, Recorder: rec,
		// The job's root span context: pool dispatch/rpc/handshake spans join
		// the same trace as the manager's admission and queue_wait spans.
		Trace: trace,
	}
	switch {
	case len(r.connect) > 0:
		popts.Transport = &worker.DialTransport{
			Addrs: r.connect, DialTimeout: r.dialTimeout, ReadTimeout: r.readTimeout, Seed: seed,
		}
		if r.workerBin != "" {
			popts.LocalFallback = &worker.PipeTransport{
				Command: cli.WorkerCommand(r.workerBin, r.grid, epochs, r.heartbeat, 0, 0),
			}
		}
	default:
		popts.Command = cli.WorkerCommand(r.workerBin, r.grid, epochs, r.heartbeat, 0, 0)
	}
	return worker.NewPool(popts)
}
