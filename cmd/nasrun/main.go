// Command nasrun runs a neural architecture search with real training
// evaluations on the POD-LSTM task — the laptop-scale analogue of the
// paper's Theta searches. Each proposed architecture is actually trained
// (paper hyperparameters: Adam 1e-3, batch 64, 20 epochs) and scored by
// validation R².
//
// Usage:
//
//	nasrun [-method ae|rs|rl] [-evals 24] [-workers 2] [-epochs 20]
//	       [-grid small|default] [-seed 1] [-posttrain]
//	       [-checkpoint ck.json] [-resume ck.json] [-evaltimeout 0] [-retries 0]
//	       [-isolate] [-heartbeat 1s] [-maxrestarts 3] [-speculate 0]
//
// A run with -checkpoint periodically persists the search state; a killed
// run (Ctrl-C, SIGTERM, power loss) restarts from where it left off with
// -resume, keeping the same evaluation budget.
//
// With -isolate each evaluation runs in a supervised worker subprocess
// (nasrun re-executed with -worker), so a crashing or OOM-killed training
// costs one process, not the search: the supervisor detects the death,
// restarts the worker, and re-dispatches the evaluation. See the README's
// "Isolated worker processes" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"podnas"
	"podnas/internal/search"
	"podnas/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nasrun: ")
	method := flag.String("method", "ae", "search method: ae, rs, or rl")
	evals := flag.Int("evals", 24, "number of architecture evaluations")
	workers := flag.Int("workers", 2, "concurrent evaluations")
	epochs := flag.Int("epochs", 20, "training epochs per evaluation (paper: 20)")
	grid := flag.String("grid", "small", "data set size: small or default")
	seed := flag.Uint64("seed", 1, "search seed")
	posttrain := flag.Bool("posttrain", false, "retrain the best architecture with the posttraining budget and report science metrics")
	archKey := flag.String("arch", "", "skip the search: posttrain this saved architecture key (e.g. \"4-4-0-3-1-1-0-1-1-0-3-0-0-1\")")
	save := flag.String("save", "", "write the search history as JSON to this path")
	saveModel := flag.String("savemodel", "", "after posttraining, write the trained model (spec + weights) to this path")
	checkpoint := flag.String("checkpoint", "", "periodically persist search state to this path (atomic writes)")
	resume := flag.String("resume", "", "resume a search from this checkpoint (method and seed must match the original run)")
	evalTimeout := flag.Duration("evaltimeout", 0, "per-evaluation timeout (0 = none); timed-out trainings are recorded as errors")
	retries := flag.Int("retries", 0, "retry budget per evaluation for transient failures")
	isolate := flag.Bool("isolate", false, "evaluate in supervised worker subprocesses: crashes cost one process, not the search")
	workerMode := flag.Bool("worker", false, "serve evaluations over stdin/stdout as a pool worker (spawned by -isolate; not for direct use)")
	heartbeat := flag.Duration("heartbeat", time.Second, "worker heartbeat interval; a worker silent for 3 intervals is declared dead")
	maxRestarts := flag.Int("maxrestarts", 3, "per-worker respawn budget before the pool degrades to in-process evaluation")
	speculate := flag.Duration("speculate", 0, "re-dispatch an evaluation still unanswered after this long to a second worker (0 = off)")
	killNth := flag.Int("killnth", 0, "fault injection: SIGKILL a worker right after the Nth dispatched evaluation (tests/CI smoke)")
	faultKill := flag.Float64("faultkill", 0, "fault injection: probability a worker kills its own process mid-evaluation (needs -isolate)")
	faultSeed := flag.Uint64("faultseed", 0, "fault injection seed (set by the supervisor per worker incarnation)")
	flag.Parse()

	// Fail fast on invalid flags with a one-line error before any expensive
	// pipeline work, so typos do not waste minutes of data preparation.
	if *workers < 1 {
		log.Fatalf("-workers must be at least 1, got %d", *workers)
	}
	if *retries < 0 {
		log.Fatalf("-retries must be non-negative, got %d", *retries)
	}
	if *evals < 1 {
		log.Fatalf("-evals must be at least 1, got %d", *evals)
	}
	if *grid != "small" && *grid != "default" {
		log.Fatalf("-grid must be \"small\" or \"default\", got %q", *grid)
	}
	if *heartbeat <= 0 {
		log.Fatalf("-heartbeat must be positive, got %v", *heartbeat)
	}
	if *resume != "" {
		if _, err := os.Stat(*resume); err != nil {
			log.Fatalf("-resume: %v", err)
		}
	}

	cfg := podnas.SmallPipelineConfig()
	if *grid == "default" {
		cfg = podnas.DefaultPipelineConfig()
	}

	if *workerMode {
		// Worker processes own stdout as the protocol channel; everything
		// human-readable goes to stderr (the supervisor passes it through).
		runWorkerMode(cfg, *epochs, *heartbeat, *faultKill, *faultSeed)
		return
	}

	fmt.Printf("preparing pipeline (%s grid)...\n", *grid)
	t0 := time.Now()
	p, err := podnas.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline ready in %v: %d train / %d val / %d test windows, %.1f%% energy in %d modes\n",
		time.Since(t0).Round(time.Millisecond), p.TrainWin.Examples(), p.ValWin.Examples(),
		p.TestWin.Examples(), 100*p.EnergyCaptured(), p.Cfg.Nr)

	if *archKey != "" {
		space := p.DefaultSpace()
		a, err := space.ParseArch(*archKey)
		if err != nil {
			log.Fatal(err)
		}
		m, err := p.BuildArch(space, a, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rebuilding saved architecture:\n%s", space.Describe(a))
		fmt.Println("posttraining (100 epochs)...")
		if _, err := m.Posttrain(100, *seed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("val R2 %.4f  train R2 %.4f  test R2 %.4f  (%d parameters)\n",
			m.ValR2(), m.TrainR2(), m.TestR2(), m.ParamCount())
		saveTrained(m, *saveModel)
		return
	}

	// SIGINT/SIGTERM cancel the search context: in-flight trainings stop at
	// the next epoch boundary, completed results are kept, and a final
	// checkpoint is written so the run can be resumed.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := podnas.SearchOptions{
		Workers: *workers, MaxEvals: *evals, Epochs: *epochs,
		Population: max(4, *evals/3), Sample: max(2, *evals/8), Seed: *seed,
		Ctx: ctx, EvalTimeout: *evalTimeout, Retries: *retries,
		CheckpointPath: *checkpoint,
	}
	var pool *worker.Pool
	if *isolate {
		exe, err := os.Executable()
		if err != nil {
			log.Fatalf("-isolate: cannot locate own binary: %v", err)
		}
		// In-process fallback: if workers cannot be spawned at all or every
		// slot exhausts its restart budget, the search continues un-isolated
		// rather than dying.
		fallback, err := p.NewEvaluator(*epochs)
		if err != nil {
			log.Fatal(err)
		}
		killBase := *faultSeed
		if killBase == 0 {
			killBase = *seed + 0x9e3779b9
		}
		pool, err = worker.NewPool(worker.PoolOptions{
			Workers: *workers,
			Command: func(id, incarnation int) *exec.Cmd {
				args := []string{
					"-worker", "-grid", *grid,
					"-epochs", strconv.Itoa(*epochs),
					"-heartbeat", heartbeat.String(),
				}
				if *faultKill > 0 {
					// Perturb the fault seed per incarnation so a restarted
					// worker does not re-draw the same fatal decision forever.
					fs := killBase + uint64(id)*1000 + uint64(incarnation)*7919
					args = append(args,
						"-faultkill", strconv.FormatFloat(*faultKill, 'g', -1, 64),
						"-faultseed", strconv.FormatUint(fs, 10))
				}
				return exec.Command(exe, args...)
			},
			Heartbeat: *heartbeat, MaxRestarts: *maxRestarts, Seed: *seed,
			SpeculativeAfter: *speculate, KillNth: *killNth,
			Fallback: fallback,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer pool.Close()
		opts.Evaluator = pool
		fmt.Printf("isolated evaluation: %d worker processes, heartbeat %v, restart budget %d\n",
			*workers, *heartbeat, *maxRestarts)
	}
	if *resume != "" {
		ck, err := podnas.LoadCheckpoint(*resume)
		if err != nil {
			log.Fatal(err)
		}
		opts.Resume = ck
		fmt.Printf("resuming from %s: %d of %d evaluations already done\n", *resume, ck.NumResults(), *evals)
	}
	fmt.Printf("running %s search: %d evaluations, %d workers, %d epochs each\n", *method, *evals, *workers, *epochs)
	t0 = time.Now()
	var res *podnas.SearchResult
	switch *method {
	case "ae":
		res, err = podnas.SearchAE(p, opts)
	case "rs":
		res, err = podnas.SearchRS(p, opts)
	case "rl":
		agents := 2
		batch := max(1, *workers)
		rounds := max(1, *evals/(agents*batch))
		res, err = podnas.SearchRL(p, opts, agents, batch, rounds)
	default:
		log.Fatalf("unknown method %q", *method)
	}
	if err != nil {
		if ctx.Err() != nil && *checkpoint != "" {
			log.Fatalf("%v\ninterrupted — resume with: nasrun -method %s -evals %d -seed %d -resume %s",
				err, *method, *evals, *seed, *checkpoint)
		}
		log.Fatal(err)
	}
	elapsed := time.Since(t0)
	interrupted := ctx.Err() != nil

	rewards := make([]float64, 0, len(res.Results))
	for _, r := range res.Results {
		if r.Err == nil {
			rewards = append(rewards, r.Reward)
		}
	}
	sort.Float64s(rewards)
	fmt.Printf("\nsearch finished in %v (%.1fs/eval)\n", elapsed.Round(time.Second), elapsed.Seconds()/float64(len(res.Results)))
	if n := len(rewards); n > 0 {
		fmt.Printf("reward distribution: min %.4f  median %.4f  max %.4f\n", rewards[0], rewards[n/2], rewards[n-1])
	}
	if pool != nil {
		printPoolStats(pool.Stats())
	}
	fmt.Printf("\nbest architecture (validation R2 = %.4f):\n%s", res.Best.Reward, res.BestDesc)
	fmt.Printf("architecture key (reusable via -arch): %s\n", res.Best.Arch.Key())
	if *save != "" {
		if err := res.SaveJSON(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search history written to %s\n", *save)
	}
	if interrupted {
		if *checkpoint != "" {
			fmt.Printf("\ninterrupted after %d evaluations — resume with: nasrun -method %s -evals %d -seed %d -resume %s\n",
				len(res.Results), *method, *evals, *seed, *checkpoint)
		} else {
			fmt.Printf("\ninterrupted after %d evaluations (no -checkpoint set, run cannot be resumed)\n", len(res.Results))
		}
		return
	}

	if *posttrain {
		fmt.Printf("\nposttraining the best architecture (100 epochs)...\n")
		m, err := p.BuildArch(res.Space, res.Best.Arch, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.Posttrain(100, *seed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("posttrained: val R2 %.4f  train R2 %.4f  test R2 %.4f  (%d parameters)\n",
			m.ValR2(), m.TrainR2(), m.TestR2(), m.ParamCount())
		saveTrained(m, *saveModel)
	}
}

// runWorkerMode is the worker half of -isolate: build the same pipeline and
// evaluator as the supervisor, then serve evaluations over stdin/stdout
// until a shutdown frame arrives or the supervisor dies (stdin EOF). Stdout
// carries protocol frames only; the log package already writes to stderr,
// which the supervisor passes through.
func runWorkerMode(cfg podnas.PipelineConfig, epochs int, heartbeat time.Duration, killRate float64, killSeed uint64) {
	p, err := podnas.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := p.NewEvaluator(epochs)
	if err != nil {
		log.Fatal(err)
	}
	if killRate > 0 {
		// Self-kill fault injection: this process SIGKILLs itself
		// mid-evaluation at the configured rate, exercising the supervisor's
		// crash-restart path with a real process death.
		ev = &search.FaultInjector{Inner: ev, Seed: killSeed, KillRate: killRate}
	}
	if err := worker.Serve(os.Stdin, os.Stdout, ev, worker.ServeOptions{Heartbeat: heartbeat}); err != nil {
		log.Fatal(err)
	}
}

// printPoolStats summarizes supervision events after an isolated run.
func printPoolStats(st worker.PoolStats) {
	fmt.Printf("worker pool: %d spawned, %d restarted, %d crashes, %d heartbeat timeouts, %d re-dispatches\n",
		st.Spawns, st.Restarts, st.Crashes, st.HeartbeatTimeouts, st.Redispatches)
	if st.SpeculativeRuns > 0 {
		fmt.Printf("speculative re-execution: %d launched, %d won\n", st.SpeculativeRuns, st.SpeculativeWins)
	}
	if st.Degraded {
		fmt.Printf("pool degraded: %d evaluations served in-process\n", st.FallbackEvals)
	}
}

// saveTrained persists a posttrained model when -savemodel is set.
func saveTrained(m *podnas.Model, path string) {
	if path == "" {
		return
	}
	if err := m.SaveJSON(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained model written to %s\n", path)
}
