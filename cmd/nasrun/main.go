// Command nasrun runs a neural architecture search with real training
// evaluations on the POD-LSTM task — the laptop-scale analogue of the
// paper's Theta searches. Each proposed architecture is actually trained
// (paper hyperparameters: Adam 1e-3, batch 64, 20 epochs) and scored by
// validation R².
//
// Usage:
//
//	nasrun [-method ae|rs|rl] [-evals 24] [-workers 2] [-epochs 20]
//	       [-grid small|default] [-seed 1] [-posttrain]
//	       [-checkpoint ck.json] [-resume ck.json] [-evaltimeout 0] [-retries 0]
//	       [-isolate] [-heartbeat 1s] [-maxrestarts 3] [-speculate 0]
//	       [-connect host:port,...] [-dialtimeout 5s] [-readtimeout 0]
//	       [-obs :6060] [-trace out.jsonl]
//	       [-slo-eval-p99 0] [-slo-queue-p99 0] [-slo-hb-rate 0]
//	       [-slo-dir slo-profiles] [-slo-interval 5s]
//	nasrun -worker -listen host:port [-grid small|default] [-epochs 20]
//	       [-heartbeat 1s]
//
// A run with -checkpoint periodically persists the search state; a killed
// run (Ctrl-C, SIGTERM, power loss) restarts from where it left off with
// -resume, keeping the same evaluation budget.
//
// With -isolate each evaluation runs in a supervised worker subprocess
// (nasrun re-executed with -worker), so a crashing or OOM-killed training
// costs one process, not the search: the supervisor detects the death,
// restarts the worker, and re-dispatches the evaluation. See the README's
// "Isolated worker processes" section.
//
// With -connect the same supervision drives remote worker agents over TCP
// (started with -worker -listen on the other machines), with per-connection
// leases, reconnect-with-resume, and degradation to local subprocess
// workers when agents stay unreachable. See the README's "Distributed
// workers" section.
//
// Observability: -trace streams every search event (evaluation lifecycle,
// epoch ticks, trace spans, worker supervision, checkpoints) as JSON lines;
// -obs serves live aggregate metrics as the expvar "podnas.search" at
// /debug/vars, an OpenMetrics exposition at /metrics, and the pprof suite.
// The -slo-* flags start a watch loop that, on the first poll a target is
// breached, captures a CPU+heap pprof bundle into -slo-dir (once per breach
// window) and records an slo_breach event. See the README's "Observability"
// and "Metrics & tracing" sections.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error (bad flags,
// unknown method, invalid options), 3 unreadable or corrupted checkpoint,
// 4 interrupted before any evaluation succeeded, 5 evaluation budget
// exhausted without a success.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"podnas"
	"podnas/internal/cli"
	"podnas/internal/obs"
	"podnas/internal/obs/slo"
	"podnas/internal/obs/span"
	"podnas/internal/search"
	"podnas/internal/worker"
)

// obsCleanup flushes the -trace sink before any exit path; log.Fatal-style
// exits skip defers, so fatal routes through it explicitly.
var obsCleanup = func() {}

// fatal reports err and exits with its mapped code, flushing the trace sink
// first so the event log survives the failure it explains.
func fatal(err error) {
	obsCleanup()
	log.Print(err)
	os.Exit(cli.ExitCode(err))
}

// fatalUsage reports a flag/usage error and exits with the usage code.
func fatalUsage(format string, args ...any) {
	obsCleanup()
	log.Printf(format, args...)
	os.Exit(cli.ExitUsage)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nasrun: ")
	method := flag.String("method", "ae", "search method: ae, rs, or rl")
	evals := flag.Int("evals", 24, "number of architecture evaluations")
	workers := flag.Int("workers", 2, "concurrent evaluations")
	epochs := flag.Int("epochs", 20, "training epochs per evaluation (paper: 20)")
	grid := flag.String("grid", "small", "data set size: small or default")
	seed := flag.Uint64("seed", 1, "search seed")
	posttrain := flag.Bool("posttrain", false, "retrain the best architecture with the posttraining budget and report science metrics")
	archKey := flag.String("arch", "", "skip the search: posttrain this saved architecture key (e.g. \"4-4-0-3-1-1-0-1-1-0-3-0-0-1\")")
	save := flag.String("save", "", "write the search history as JSON to this path")
	saveModel := flag.String("savemodel", "", "after posttraining, write the trained model (spec + weights) to this path")
	checkpoint := flag.String("checkpoint", "", "periodically persist search state to this path (atomic writes)")
	resume := flag.String("resume", "", "resume a search from this checkpoint (method and seed must match the original run)")
	evalTimeout := flag.Duration("evaltimeout", 0, "per-evaluation timeout (0 = none); timed-out trainings are recorded as errors")
	retries := flag.Int("retries", 0, "retry budget per evaluation for transient failures")
	isolate := flag.Bool("isolate", false, "evaluate in supervised worker subprocesses: crashes cost one process, not the search")
	connect := flag.String("connect", "", "dispatch evaluations to remote worker agents at these comma-separated host:port addresses (slots round-robin over them)")
	dialTimeout := flag.Duration("dialtimeout", 5*time.Second, "per-attempt timeout dialing a remote agent (with -connect)")
	readTimeout := flag.Duration("readtimeout", 0, "per-read deadline on agent connections, 0 = heartbeats only; must exceed 3x -heartbeat when set")
	workerMode := flag.Bool("worker", false, "serve evaluations over stdin/stdout as a pool worker (spawned by -isolate; not for direct use)")
	listen := flag.String("listen", "", "with -worker: serve evaluations as a TCP agent on this address instead of stdin/stdout")
	heartbeat := flag.Duration("heartbeat", time.Second, "worker heartbeat interval; a worker silent for 3 intervals is declared dead")
	maxRestarts := flag.Int("maxrestarts", 3, "per-worker respawn budget before the pool degrades to in-process evaluation")
	speculate := flag.Duration("speculate", 0, "re-dispatch an evaluation still unanswered after this long to a second worker (0 = off)")
	killNth := flag.Int("killnth", 0, "fault injection: SIGKILL a worker right after the Nth dispatched evaluation (tests/CI smoke)")
	faultKill := flag.Float64("faultkill", 0, "fault injection: probability a worker kills its own process mid-evaluation (needs -isolate)")
	faultSeed := flag.Uint64("faultseed", 0, "fault injection seed (set by the supervisor per worker incarnation)")
	obsAddr := flag.String("obs", "", "serve live metrics (expvar, OpenMetrics /metrics) and pprof on this address, e.g. :6060")
	tracePath := flag.String("trace", "", "stream the search event log to this file as JSON lines")
	sloEvalP99 := flag.Duration("slo-eval-p99", 0, "SLO: breach when eval latency p99 exceeds this (0 = off; needs -obs or -trace)")
	sloQueueP99 := flag.Duration("slo-queue-p99", 0, "SLO: breach when queue-wait p99 exceeds this (0 = off)")
	sloHBRate := flag.Float64("slo-hb-rate", 0, "SLO: breach when heartbeat misses/minute exceed this (0 = off)")
	sloDir := flag.String("slo-dir", "slo-profiles", "directory for SLO-breach pprof bundles")
	sloInterval := flag.Duration("slo-interval", 5*time.Second, "SLO watch-loop poll interval")
	flag.Parse()

	// Fail fast on invalid flags with a one-line error before any expensive
	// pipeline work, so typos do not waste minutes of data preparation.
	searchMethod, merr := podnas.ParseMethod(*method)
	if merr != nil {
		fatal(merr)
	}
	if *workers < 1 {
		fatalUsage("-workers must be at least 1, got %d", *workers)
	}
	if *retries < 0 {
		fatalUsage("-retries must be non-negative, got %d", *retries)
	}
	if *evals < 1 {
		fatalUsage("-evals must be at least 1, got %d", *evals)
	}
	if *grid != "small" && *grid != "default" {
		fatalUsage("-grid must be \"small\" or \"default\", got %q", *grid)
	}
	if *heartbeat <= 0 {
		fatalUsage("-heartbeat must be positive, got %v", *heartbeat)
	}
	if *resume != "" {
		if _, err := os.Stat(*resume); err != nil {
			fatalUsage("-resume: %v", err)
		}
	}
	// Mode exclusions. A worker serves evaluations, so search/driver flags on
	// its command line are a mangled invocation, not a preference — fail fast
	// instead of silently ignoring them. flag.Visit sees only flags the user
	// actually set, so defaults never trip these checks.
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *listen != "" && !*workerMode {
		fatalUsage("-listen starts a worker agent and requires -worker")
	}
	if *workerMode {
		for _, name := range []string{
			"method", "evals", "workers", "seed", "posttrain", "arch", "save",
			"savemodel", "checkpoint", "resume", "evaltimeout", "retries",
			"isolate", "maxrestarts", "speculate", "killnth", "obs", "trace",
			"connect", "dialtimeout", "readtimeout",
			"slo-eval-p99", "slo-queue-p99", "slo-hb-rate", "slo-dir", "slo-interval",
		} {
			if set[name] {
				fatalUsage("-worker serves evaluations: -%s is a driver flag and has no effect here", name)
			}
		}
	}
	if *connect != "" {
		if *isolate {
			fatalUsage("-connect and -isolate are mutually exclusive: remote agents are already isolated, and local subprocess workers are the automatic fallback")
		}
		if set["faultkill"] {
			fatalUsage("-faultkill needs -isolate; to inject faults on remote workers, pass -faultkill to the agent's own command line")
		}
	}
	if *readTimeout > 0 && *readTimeout <= 3**heartbeat {
		fatalUsage("-readtimeout %v would cut healthy idle connections: it must exceed 3x the heartbeat interval (%v)", *readTimeout, *heartbeat)
	}

	cfg := podnas.SmallPipelineConfig()
	if *grid == "default" {
		cfg = podnas.DefaultPipelineConfig()
	}

	if *workerMode {
		if *listen != "" {
			runAgentMode(cfg, *epochs, *heartbeat, *faultKill, *faultSeed, *listen)
			return
		}
		// Worker processes own stdout as the protocol channel; everything
		// human-readable goes to stderr (the supervisor passes it through).
		runWorkerMode(cfg, *epochs, *heartbeat, *faultKill, *faultSeed)
		return
	}

	fmt.Printf("preparing pipeline (%s grid)...\n", *grid)
	t0 := time.Now()
	p, err := podnas.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline ready in %v: %d train / %d val / %d test windows, %.1f%% energy in %d modes\n",
		time.Since(t0).Round(time.Millisecond), p.TrainWin.Examples(), p.ValWin.Examples(),
		p.TestWin.Examples(), 100*p.EnergyCaptured(), p.Cfg.Nr)

	if *archKey != "" {
		space := p.DefaultSpace()
		a, err := space.ParseArch(*archKey)
		if err != nil {
			log.Fatal(err)
		}
		m, err := p.BuildArch(space, a, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rebuilding saved architecture:\n%s", space.Describe(a))
		fmt.Println("posttraining (100 epochs)...")
		if _, err := m.Posttrain(100, *seed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("val R2 %.4f  train R2 %.4f  test R2 %.4f  (%d parameters)\n",
			m.ValR2(), m.TrainR2(), m.TestR2(), m.ParamCount())
		saveTrained(m, *saveModel)
		return
	}

	// SIGINT/SIGTERM cancel the search context: in-flight trainings stop at
	// the next epoch boundary, completed results are kept, and a final
	// checkpoint is written so the run can be resumed.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Observability: aggregate metrics live (and serve them with -obs),
	// stream the raw event log with -trace. With neither flag the recorder
	// stays nil and the search constructs no events at all.
	var (
		rec      obs.Recorder
		met      *obs.Metrics
		traceLog *obs.JSONL
		rootSpan span.Context
		sloWatch *slo.Watcher
	)
	if *obsAddr != "" || *tracePath != "" {
		met = obs.NewMetrics(*workers)
		sinks := []obs.Recorder{met}
		if *tracePath != "" {
			tl, err := obs.CreateJSONL(*tracePath)
			if err != nil {
				fatalUsage("-trace: %v", err)
			}
			traceLog = tl
			sinks = append(sinks, traceLog)
			obsCleanup = func() { _ = traceLog.Close() }
		}
		rec = obs.NewMulti(sinks...)
		// The header is the first record in the trace: replay tools learn the
		// method, seed, slot count, and writer versions without scanning.
		rec.Record(obs.NewHeader(*method, *seed, *workers, podnas.Version))
		// Root span context: deterministic from (method, seed), so a re-run
		// of the same search reconstructs identical span identities.
		rootSpan = span.NewTrace(fmt.Sprintf("run/%s/%d", *method, *seed))
		if *obsAddr != "" {
			if !met.Publish("") {
				log.Printf("warning: expvar %q already registered (another run in this process?); live metrics not republished", obs.DefaultVarName)
			}
			if !obs.PublishKernelStats("") {
				log.Printf("warning: expvar %q already registered; kernel counters not republished", obs.DefaultKernelVarName)
			}
			srv, ln, err := obs.Serve(*obsAddr, met.Families, obs.KernelFamilies)
			if err != nil {
				fatalUsage("-obs: %v", err)
			}
			defer srv.Close()
			fmt.Printf("observability: http://%s/debug/vars (expvar %q), /metrics (OpenMetrics), and /debug/pprof/\n", ln.Addr(), obs.DefaultVarName)
		}
		if *sloEvalP99 > 0 || *sloQueueP99 > 0 || *sloHBRate > 0 {
			w, err := slo.New(slo.Options{
				Targets: slo.Targets{
					EvalP99:           *sloEvalP99,
					QueueWaitP99:      *sloQueueP99,
					HeartbeatMissRate: *sloHBRate,
				},
				Dir:      *sloDir,
				Interval: *sloInterval,
				Snapshot: met.Snapshot,
				Recorder: rec,
			})
			if err != nil {
				fatalUsage("slo: %v", err)
			}
			sloWatch = w
			defer sloWatch.Close() // idempotent; the normal path closes before the trace sink
			fmt.Printf("SLO watch: eval p99 %v, queue-wait p99 %v, hb-miss rate %.3g/min; breach profiles → %s\n",
				*sloEvalP99, *sloQueueP99, *sloHBRate, *sloDir)
		}
	}

	opts := podnas.SearchOptions{
		Workers: *workers, MaxEvals: *evals, Epochs: *epochs,
		Population: max(4, *evals/3), Sample: max(2, *evals/8), Seed: *seed,
		Ctx: ctx, EvalTimeout: *evalTimeout, Retries: *retries,
		CheckpointPath: *checkpoint, Recorder: rec, Trace: rootSpan,
	}
	var pool *worker.Pool
	if *isolate || *connect != "" {
		exe, err := os.Executable()
		if err != nil {
			log.Fatalf("-isolate: cannot locate own binary: %v", err)
		}
		// In-process fallback: if workers cannot be spawned at all or every
		// slot exhausts its restart budget, the search continues un-isolated
		// rather than dying.
		fallback, err := p.NewEvaluator(*epochs)
		if err != nil {
			log.Fatal(err)
		}
		killBase := *faultSeed
		if killBase == 0 {
			killBase = *seed + 0x9e3779b9
		}
		popts := worker.PoolOptions{
			Workers:   *workers,
			Heartbeat: *heartbeat, MaxRestarts: *maxRestarts, Seed: *seed,
			SpeculativeAfter: *speculate, KillNth: *killNth,
			Fallback: fallback, Recorder: rec, Trace: rootSpan,
		}
		if *connect != "" {
			addrs := cli.SplitAddrs(*connect)
			if len(addrs) == 0 {
				fatalUsage("-connect: no agent addresses in %q", *connect)
			}
			popts.Transport = &worker.DialTransport{
				Addrs: addrs, DialTimeout: *dialTimeout, ReadTimeout: *readTimeout, Seed: *seed,
			}
			// Two degradation rungs: slots whose agent stays unreachable past
			// the restart budget first fall back to local subprocess workers;
			// only if those cannot spawn either does the pool serve
			// evaluations in-process via Fallback.
			popts.LocalFallback = &worker.PipeTransport{
				Command: cli.WorkerCommand(exe, *grid, *epochs, *heartbeat, 0, 0),
			}
			fmt.Printf("distributed evaluation: %d slots over %d agent(s) %v, heartbeat %v, restart budget %d\n",
				*workers, len(addrs), addrs, *heartbeat, *maxRestarts)
		} else {
			popts.Command = cli.WorkerCommand(exe, *grid, *epochs, *heartbeat, *faultKill, killBase)
			fmt.Printf("isolated evaluation: %d worker processes, heartbeat %v, restart budget %d\n",
				*workers, *heartbeat, *maxRestarts)
		}
		pool, err = worker.NewPool(popts)
		if err != nil {
			log.Fatal(err)
		}
		defer pool.Close()
		opts.Evaluator = pool
	}
	if *resume != "" {
		ck, err := podnas.LoadCheckpoint(*resume)
		if err != nil {
			fatal(err)
		}
		opts.Resume = ck
		fmt.Printf("resuming from %s: %d of %d evaluations already done\n", *resume, ck.NumResults(), *evals)
	}
	if searchMethod == podnas.MethodRL {
		// Shape the RL run from the flag budget: 2 agents, -workers
		// evaluations per agent batch, and enough rounds to spend -evals.
		opts.Agents = 2
		opts.WorkersPerAgent = max(1, *workers)
		opts.Batches = max(1, *evals/(opts.Agents*opts.WorkersPerAgent))
	}
	fmt.Printf("running %s search: %d evaluations, %d workers, %d epochs each\n", *method, *evals, *workers, *epochs)
	t0 = time.Now()
	res, err := podnas.Search(p, searchMethod, opts)
	if err != nil {
		if ctx.Err() != nil && *checkpoint != "" {
			err = fmt.Errorf("%w\ninterrupted — resume with: nasrun -method %s -evals %d -seed %d -resume %s",
				err, *method, *evals, *seed, *checkpoint)
		}
		fatal(err)
	}
	elapsed := time.Since(t0)
	interrupted := ctx.Err() != nil

	rewards := make([]float64, 0, len(res.Results))
	for _, r := range res.Results {
		if r.Err == nil {
			rewards = append(rewards, r.Reward)
		}
	}
	sort.Float64s(rewards)
	fmt.Printf("\nsearch finished in %v (%.1fs/eval)\n", elapsed.Round(time.Second), elapsed.Seconds()/float64(len(res.Results)))
	if n := len(rewards); n > 0 {
		fmt.Printf("reward distribution: min %.4f  median %.4f  max %.4f\n", rewards[0], rewards[n/2], rewards[n-1])
	}
	if pool != nil {
		printPoolStats(pool.Stats())
	}
	if met != nil {
		s := met.Snapshot()
		fmt.Printf("live metrics: %d evaluations (%d errors, %d retries), reward MA %.4f, best %.4f, utilization %.1f%%\n",
			s.Evals, s.Errors, s.Retries, s.RewardMA, s.BestReward, 100*s.UtilizationAUC)
	}
	if sloWatch != nil {
		// Stop the watch-loop before the trace sink closes: a breach capture
		// in flight (the CPU profile window can outlive a short run) must
		// land its KindSLOBreach event in the trace, not on a closed file.
		sloWatch.Close()
	}
	if traceLog != nil {
		obsCleanup = func() {}
		if err := traceLog.Close(); err != nil {
			log.Printf("trace: %v", err)
		} else {
			fmt.Printf("event trace written to %s\n", *tracePath)
		}
	}
	fmt.Printf("\nbest architecture (validation R2 = %.4f):\n%s", res.Best.Reward, res.BestDesc)
	fmt.Printf("architecture key (reusable via -arch): %s\n", res.Best.Arch.Key())
	if *save != "" {
		if err := res.SaveJSON(*save); err != nil {
			fatal(err)
		}
		fmt.Printf("search history written to %s\n", *save)
	}
	if interrupted {
		if *checkpoint != "" {
			fmt.Printf("\ninterrupted after %d evaluations — resume with: nasrun -method %s -evals %d -seed %d -resume %s\n",
				len(res.Results), *method, *evals, *seed, *checkpoint)
		} else {
			fmt.Printf("\ninterrupted after %d evaluations (no -checkpoint set, run cannot be resumed)\n", len(res.Results))
		}
		return
	}

	if *posttrain {
		fmt.Printf("\nposttraining the best architecture (100 epochs)...\n")
		m, err := p.BuildArch(res.Space, res.Best.Arch, *seed)
		if err != nil {
			fatal(err)
		}
		if _, err := m.Posttrain(100, *seed); err != nil {
			fatal(err)
		}
		fmt.Printf("posttrained: val R2 %.4f  train R2 %.4f  test R2 %.4f  (%d parameters)\n",
			m.ValR2(), m.TrainR2(), m.TestR2(), m.ParamCount())
		saveTrained(m, *saveModel)
	}
}

// runAgentMode is the serving half of -connect: build the same pipeline and
// evaluator as a pipe worker, then accept driver connections on addr and
// serve each under its handshaken lease until SIGINT/SIGTERM. A driver
// disconnect ends one connection, never the agent, which is what lets a
// partitioned driver reconnect and resume.
func runAgentMode(cfg podnas.PipelineConfig, epochs int, heartbeat time.Duration, killRate float64, killSeed uint64, addr string) {
	p, err := podnas.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := p.NewEvaluator(epochs)
	if err != nil {
		log.Fatal(err)
	}
	if killRate > 0 {
		// Self-kill fault injection, as in pipe-worker mode: the agent
		// process SIGKILLs itself mid-evaluation at the configured rate, so
		// drivers exercise real connection loss with a real process death.
		ev = &search.FaultInjector{Inner: ev, Seed: killSeed, KillRate: killRate}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalUsage("-listen: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("agent listening on %s (evaluations: %d epochs, heartbeat %v)", ln.Addr(), epochs, heartbeat)
	if err := worker.ServeListener(ctx, ln, ev, worker.AgentOptions{Heartbeat: heartbeat}); err != nil {
		log.Fatal(err)
	}
}

// runWorkerMode is the worker half of -isolate: build the same pipeline and
// evaluator as the supervisor, then serve evaluations over stdin/stdout
// until a shutdown frame arrives or the supervisor dies (stdin EOF). Stdout
// carries protocol frames only; the log package already writes to stderr,
// which the supervisor passes through.
func runWorkerMode(cfg podnas.PipelineConfig, epochs int, heartbeat time.Duration, killRate float64, killSeed uint64) {
	p, err := podnas.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := p.NewEvaluator(epochs)
	if err != nil {
		log.Fatal(err)
	}
	if killRate > 0 {
		// Self-kill fault injection: this process SIGKILLs itself
		// mid-evaluation at the configured rate, exercising the supervisor's
		// crash-restart path with a real process death.
		ev = &search.FaultInjector{Inner: ev, Seed: killSeed, KillRate: killRate}
	}
	if err := worker.Serve(os.Stdin, os.Stdout, ev, worker.ServeOptions{Heartbeat: heartbeat}); err != nil {
		log.Fatal(err)
	}
}

// printPoolStats summarizes supervision events after an isolated run.
func printPoolStats(st worker.PoolStats) {
	fmt.Printf("worker pool: %d spawned, %d restarted, %d crashes, %d heartbeat timeouts, %d re-dispatches\n",
		st.Spawns, st.Restarts, st.Crashes, st.HeartbeatTimeouts, st.Redispatches)
	if st.SpeculativeRuns > 0 {
		fmt.Printf("speculative re-execution: %d launched, %d won\n", st.SpeculativeRuns, st.SpeculativeWins)
	}
	if st.Connects > 0 || st.Disconnects > 0 {
		fmt.Printf("remote agents: %d connects, %d disconnects, %d lease expiries, %d fenced stale frames\n",
			st.Connects, st.Disconnects, st.LeaseExpires, st.StaleLeaseFrames)
	}
	if st.LocalFallbacks > 0 {
		fmt.Printf("transport degradation: %d slot(s) fell back to local subprocess workers\n", st.LocalFallbacks)
	}
	if st.Degraded {
		fmt.Printf("pool degraded: %d evaluations served in-process\n", st.FallbackEvals)
	}
}

// saveTrained persists a posttrained model when -savemodel is set.
func saveTrained(m *podnas.Model, path string) {
	if path == "" {
		return
	}
	if err := m.SaveJSON(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained model written to %s\n", path)
}
