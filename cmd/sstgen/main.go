// Command sstgen generates the synthetic NOAA-like SST data set and prints
// its headline statistics: grid, ocean fraction, train/test split, POD
// spectrum, and comparator RMSE sanity numbers. Useful for inspecting the
// substitution data set described in DESIGN.md.
//
// Usage:
//
//	sstgen [-grid small|default|full] [-nr 5] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"podnas/internal/pod"
	"podnas/internal/sst"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sstgen: ")
	grid := flag.String("grid", "default", "data set size: small, default, or full")
	nr := flag.Int("nr", 5, "POD modes to analyze")
	seed := flag.Uint64("seed", 0, "override the data seed (0 = config default)")
	flag.Parse()

	var cfg sst.Config
	switch *grid {
	case "small":
		cfg = sst.Small()
	case "default":
		cfg = sst.Default()
	case "full":
		cfg = sst.FullScale()
	default:
		log.Fatalf("unknown grid %q (want small, default, or full)", *grid)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	fmt.Printf("generating %dx%d grid, %d weekly snapshots (seed %d)...\n", cfg.LonN, cfg.LatN, cfg.Weeks, cfg.Seed)
	d, err := sst.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ocean points        : %d (%.1f%% of grid)\n", d.Nh(), 100*d.OceanFraction())
	fmt.Printf("record              : %s .. %s\n", d.Dates[0].Format("2006-01-02"), d.Dates[len(d.Dates)-1].Format("2006-01-02"))
	fmt.Printf("training snapshots  : %d (through %s)\n", d.NumTrain(), d.Dates[d.NumTrain()-1].Format("2006-01-02"))
	fmt.Printf("test snapshots      : %d\n", d.Weeks()-d.NumTrain())

	basis, err := pod.Compute(d.TrainSnapshots(), *nr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOD spectrum (training snapshots):\n")
	for i := 0; i < *nr+3 && i < len(basis.Eigenvalues); i++ {
		fmt.Printf("  mode %2d: eigenvalue %12.1f  cumulative energy %.4f\n",
			i+1, basis.Eigenvalues[i], basis.EnergyFraction(i+1))
	}
	fmt.Printf("retained %d modes capture %.1f%% of the variance (paper: ~92%% with 5)\n",
		*nr, 100*basis.EnergyFraction(*nr))

	idx := d.RegionOceanIndices(sst.EasternPacific)
	tw := d.NumTrain() + (d.Weeks()-d.NumTrain())/2
	fmt.Printf("\nEastern Pacific comparator sanity at week %d (%s):\n", tw, d.Dates[tw].Format("2006-01-02"))
	fmt.Printf("  CESM surrogate RMSE : %.2f degC (paper band ~1.8-1.9)\n", d.RegionRMSE(d.CESMField(tw), tw, idx))
	fmt.Printf("  HYCOM surrogate RMSE: %.2f degC (paper band ~1.0)\n", d.RegionRMSE(d.HYCOMField(tw, 1), tw, idx))
	os.Exit(0)
}
