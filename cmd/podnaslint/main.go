// Command podnaslint runs the project's custom static analyzers — the
// machine-checked form of the invariants the reproduction's results rest
// on: determinism of the core packages (detrand), sentinel-error wrapping
// discipline (errwrap), no direct float equality (floateq), exhaustive
// obs.Kind event folds (kindswitch), goroutine termination (goroleak),
// context threading (ctxflow), consistent mutex ordering (lockorder), and
// resource acquire/release pairing (lifecycle). See internal/lint for the
// framework and README "Static analysis" for suppression semantics.
//
// Usage:
//
//	podnaslint [-json] [-checks detrand,errwrap,...] [packages]
//	podnaslint -hotalloc [-json]
//
// Packages are directory patterns: "./..." (default) lints the whole
// module; a plain directory lints that one package.
//
// -hotalloc runs the zero-allocation gate instead of the AST checks: it
// rebuilds internal/kernel and internal/nn with -gcflags=-m, parses the
// compiler's escape analysis, and fails if any //podnas:hotpath function
// contains a heap allocation not excused by //podnas:allow hotalloc. This
// pins the measured ≤ 6 allocs/train-step budget statically.
//
// Exit codes: 0 clean, 1 findings, 2 load/type-check error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"podnas/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type jsonReport struct {
	Module   string            `json:"module"`
	Packages int               `json:"packages"`
	Checks   []string          `json:"checks"`
	Findings []lint.Diagnostic `json:"findings"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("podnaslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON on stdout")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	hotalloc := fs.Bool("hotalloc", false, "run the hot-path zero-allocation gate (escape analysis over internal/kernel and internal/nn) instead of the AST checks")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: podnaslint [-json] [-checks a,b] [packages]\n       podnaslint -hotalloc [-json]\n\nchecks:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *hotalloc {
		return runHotalloc(*jsonOut, stdout, stderr)
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "podnaslint: unknown check %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "podnaslint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "podnaslint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		loaded, err := loadPattern(loader, cwd, pat)
		if err != nil {
			fmt.Fprintf(stderr, "podnaslint: %v\n", err)
			return 2
		}
		for _, p := range loaded {
			if !seen[p.ImportPath] {
				seen[p.ImportPath] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	diags := lint.Run(loader.Fset, pkgs, analyzers)
	// Report module-relative paths so output is stable across machines.
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModDir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *jsonOut {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		findings := diags
		if findings == nil {
			findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{
			Module: loader.ModPath, Packages: len(pkgs), Checks: names, Findings: findings,
		}); err != nil {
			fmt.Fprintf(stderr, "podnaslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "podnaslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runHotalloc executes the zero-allocation gate over the default hot-path
// packages and reports findings with the same output conventions as the
// AST checks (module-relative paths, -json report, exit 0/1/2).
func runHotalloc(jsonOut bool, stdout, stderr *os.File) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "podnaslint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "podnaslint: %v\n", err)
		return 2
	}
	known := make(map[string]bool)
	for _, a := range lint.Analyzers() {
		known[a.Name] = true
	}
	diags, err := lint.HotallocGate(loader.ModDir, loader.ModPath, lint.HotallocPackages, known)
	if err != nil {
		fmt.Fprintf(stderr, "podnaslint: %v\n", err)
		return 2
	}
	if jsonOut {
		findings := diags
		if findings == nil {
			findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{
			Module: loader.ModPath, Packages: len(lint.HotallocPackages),
			Checks: []string{"hotalloc"}, Findings: findings,
		}); err != nil {
			fmt.Fprintf(stderr, "podnaslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "podnaslint: %d hot-path allocation(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// loadPattern resolves one command-line pattern to loaded packages.
func loadPattern(loader *lint.Loader, cwd, pat string) ([]*lint.Package, error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		root := rest
		if root == "." || root == "" {
			root = cwd
		} else if !filepath.IsAbs(root) {
			root = filepath.Join(cwd, root)
		}
		return loader.LoadAll(root)
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}
