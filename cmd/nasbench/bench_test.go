package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunBenchSmall runs the full measurement on a tiny shape and
// sanity-checks the report invariants (both engines timed, speedups
// computed, JSON round trip).
func TestRunBenchSmall(t *testing.T) {
	rep, err := runBench(BenchConfig{Hidden: 8, Batch: 4, Window: 3, Modes: 2, MinSeconds: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NsEvalFused <= 0 || rep.NsEvalRef <= 0 || rep.NsEpochFused <= 0 || rep.NsEpochRef <= 0 {
		t.Fatalf("missing timings: %+v", rep)
	}
	if rep.SpeedupEval <= 0 || rep.SpeedupEpoch <= 0 {
		t.Fatalf("speedups not computed: %+v", rep)
	}
	if rep.GemmGFLOPS <= 0 {
		t.Fatalf("gemm throughput not measured: %+v", rep)
	}
	if rep.SIMD == "" {
		t.Fatal("SIMD class missing")
	}
	path := filepath.Join(t.TempDir(), "b.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SpeedupEval != rep.SpeedupEval || got.Rev != rep.Rev {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rep)
	}
}

func TestDiffGate(t *testing.T) {
	base := &Report{SIMD: "avx512", SpeedupEval: 5.0, SpeedupEpoch: 4.0, AllocsPerStep: 6}
	same := &Report{SIMD: "avx512", SpeedupEval: 4.8, SpeedupEpoch: 3.9, AllocsPerStep: 6}
	if regs := Diff(base, same, 0.10); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}
	slow := &Report{SIMD: "avx512", SpeedupEval: 4.0, SpeedupEpoch: 4.0, AllocsPerStep: 6}
	regs := Diff(base, slow, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "speedup_eval") {
		t.Fatalf("eval regression not flagged: %v", regs)
	}
	leaky := &Report{SIMD: "avx512", SpeedupEval: 5.0, SpeedupEpoch: 4.0, AllocsPerStep: 40}
	if regs := Diff(base, leaky, 0.10); len(regs) != 1 || !strings.Contains(regs[0], "allocs_per_step") {
		t.Fatalf("alloc regression not flagged: %v", regs)
	}
	// Cross-ISA: ratios skipped, allocations still gated.
	cross := &Report{SIMD: "avx2", SpeedupEval: 2.0, SpeedupEpoch: 2.0, AllocsPerStep: 6}
	if regs := Diff(base, cross, 0.10); len(regs) != 0 {
		t.Fatalf("cross-ISA ratios must not be compared: %v", regs)
	}
}

// TestGitRev reads a synthetic .git layout: symbolic ref, packed ref,
// and detached HEAD.
func TestGitRev(t *testing.T) {
	dir := t.TempDir()
	git := filepath.Join(dir, ".git")
	if err := os.MkdirAll(filepath.Join(git, "refs", "heads"), 0o755); err != nil {
		t.Fatal(err)
	}
	hex := "0123456789abcdef0123456789abcdef01234567"
	write := func(p, s string) {
		t.Helper()
		if err := os.WriteFile(p, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(filepath.Join(git, "HEAD"), "ref: refs/heads/main\n")
	write(filepath.Join(git, "refs", "heads", "main"), hex+"\n")
	if got := gitRev(dir); got != hex[:12] {
		t.Fatalf("loose ref: got %q", got)
	}
	// Nested working-directory path should walk up to the root.
	sub := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if got := gitRev(sub); got != hex[:12] {
		t.Fatalf("nested walk-up: got %q", got)
	}
	// Packed ref fallback.
	if err := os.Remove(filepath.Join(git, "refs", "heads", "main")); err != nil {
		t.Fatal(err)
	}
	write(filepath.Join(git, "packed-refs"), "# pack-refs with: peeled\n"+hex+" refs/heads/main\n")
	if got := gitRev(dir); got != hex[:12] {
		t.Fatalf("packed ref: got %q", got)
	}
	// Detached HEAD.
	write(filepath.Join(git, "HEAD"), hex+"\n")
	if got := gitRev(dir); got != hex[:12] {
		t.Fatalf("detached: got %q", got)
	}
	if got := gitRev(t.TempDir()); got != "unknown" {
		t.Fatalf("no repo: got %q", got)
	}
}
