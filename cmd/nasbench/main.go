// Command nasbench measures the training hot path on the machine it
// runs on and gates performance regressions.
//
// `nasbench run` times the paper's hot configuration (LSTM(80), batch
// 64, 8-step windows, 5 POD modes) on both engines in the same process
// — the fused kernel path and the preserved pre-kernel reference path —
// and writes a BENCH_<rev>.json report with ns/eval, ns/epoch, achieved
// GEMM GFLOP/s, allocs/step, and the fused-over-reference speedups.
//
// `nasbench diff old.json new.json` exits 1 when new regresses a
// machine-stable metric by more than the tolerance (default 10%): the
// speedup ratios when both files come from the same SIMD class, and the
// per-step allocation count always. Absolute nanosecond numbers are
// machine-dependent and never gated.
//
// Usage:
//
//	nasbench run [-o out.json] [-hidden 80] [-batch 64] [-window 8]
//	             [-modes 5] [-secs 1.0]
//	nasbench diff [-tol 0.10] old.json new.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nasbench: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		out := fs.String("o", "", "output path (default BENCH_<rev>.json)")
		hidden := fs.Int("hidden", 80, "LSTM hidden width")
		batch := fs.Int("batch", 64, "batch size")
		window := fs.Int("window", 8, "window length (timesteps)")
		modes := fs.Int("modes", 5, "POD modes (feature width)")
		secs := fs.Float64("secs", 1.0, "min measurement seconds per timer")
		fs.Parse(os.Args[2:])
		rep, err := runBench(BenchConfig{
			Hidden: *hidden, Batch: *batch, Window: *window, Modes: *modes,
			MinSeconds: *secs,
		})
		if err != nil {
			log.Fatal(err)
		}
		path := *out
		if path == "" {
			path = "BENCH_" + rep.Rev + ".json"
		}
		if err := rep.Save(path); err != nil {
			log.Fatal(err)
		}
		rep.Print(os.Stdout)
		fmt.Printf("wrote %s\n", path)
	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		tol := fs.Float64("tol", 0.10, "allowed fractional regression")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			usage()
		}
		oldRep, err := LoadReport(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		newRep, err := LoadReport(fs.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		regs := Diff(oldRep, newRep, *tol)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		if len(regs) > 0 {
			os.Exit(1)
		}
		fmt.Printf("ok: no regression beyond %.0f%% (%s -> %s)\n",
			*tol*100, oldRep.Rev, newRep.Rev)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  nasbench run  [-o out.json] [-hidden 80] [-batch 64] [-window 8] [-modes 5] [-secs 1.0]
  nasbench diff [-tol 0.10] old.json new.json`)
	os.Exit(2)
}
