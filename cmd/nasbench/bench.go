package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"podnas/internal/kernel"
	"podnas/internal/nn"
	"podnas/internal/tensor"
)

// BenchConfig is the measured workload shape. The defaults are the
// paper's hot configuration: LSTM(80) over 8-step windows of 5 POD
// coefficients, batches of 64.
type BenchConfig struct {
	Hidden     int     `json:"hidden"`
	Batch      int     `json:"batch"`
	Window     int     `json:"window"`
	Modes      int     `json:"modes"`
	MinSeconds float64 `json:"-"`
}

// Report is one nasbench measurement, written as BENCH_<rev>.json.
// Absolute nanosecond fields are machine-dependent; the speedup ratios
// and allocs_per_step are the machine-stable metrics the diff gate
// checks (ratios only across runs of the same SIMD class).
type Report struct {
	Rev        string      `json:"rev"`
	SIMD       string      `json:"simd"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Config     BenchConfig `json:"config"`

	NsEvalFused  float64 `json:"ns_eval_fused"`  // one batched forward, fused engine
	NsEvalRef    float64 `json:"ns_eval_ref"`    // same, reference engine
	NsEpochFused float64 `json:"ns_epoch_fused"` // one nn.Train epoch, fused
	NsEpochRef   float64 `json:"ns_epoch_ref"`   // same, reference
	GemmGFLOPS   float64 `json:"gemm_gflops"`    // recurrence-shaped GEMM throughput

	AllocsPerStep float64 `json:"allocs_per_step"` // heap allocations per fused train step
	SpeedupEval   float64 `json:"speedup_eval"`    // ns_eval_ref / ns_eval_fused
	SpeedupEpoch  float64 `json:"speedup_epoch"`   // ns_epoch_ref / ns_epoch_fused
}

// runBench measures both engines in one process so the speedups are
// honest same-machine, same-run ratios.
func runBench(cfg BenchConfig) (*Report, error) {
	if cfg.MinSeconds <= 0 {
		cfg.MinSeconds = 1.0
	}
	rep := &Report{
		Rev:        gitRev("."),
		SIMD:       kernel.SIMD(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config:     cfg,
	}

	// Dataset: four batches of windowed POD coefficients, so one epoch
	// is a realistic multi-step pass through nn.Train.
	rng := tensor.NewRNG(2)
	n := 4 * cfg.Batch
	x := tensor.NewTensor3(n, cfg.Window, cfg.Modes)
	y := tensor.NewTensor3(n, cfg.Window, cfg.Modes)
	rng.FillNormal(x.Data, 1)
	rng.FillNormal(y.Data, 0.5)
	xb := x.Gather(seqRange(cfg.Batch))
	yb := y.Gather(seqRange(cfg.Batch))

	gF, err := nn.NewStackedLSTM(cfg.Modes, cfg.Modes, cfg.Hidden, 1, tensor.NewRNG(1))
	if err != nil {
		return nil, err
	}
	gR, err := nn.NewStackedLSTM(cfg.Modes, cfg.Modes, cfg.Hidden, 1, tensor.NewRNG(1))
	if err != nil {
		return nil, err
	}
	gR.SetEngine(nn.EngineReference)

	rep.NsEvalFused, rep.NsEvalRef, rep.SpeedupEval = interleave(cfg.MinSeconds,
		func() { gF.Forward(xb) },
		func() { gR.Forward(xb) })

	var trainErr error
	epoch := func(g *nn.Graph) func() {
		tcfg := nn.TrainConfig{Epochs: 1, BatchSize: cfg.Batch, LR: 1e-3, Seed: 9}
		return func() {
			if _, err := nn.Train(g, x, y, tcfg); err != nil && trainErr == nil {
				trainErr = err
			}
		}
	}
	rep.NsEpochFused, rep.NsEpochRef, rep.SpeedupEpoch = interleave(cfg.MinSeconds,
		epoch(gF), epoch(gR))
	if trainErr != nil {
		return nil, trainErr
	}

	rep.AllocsPerStep = measureAllocs(gF, xb, yb)
	rep.GemmGFLOPS = measureGemm(cfg)
	return rep, nil
}

func seqRange(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// window times fn for at least secs (two calls minimum) and returns ns
// per call.
func window(secs float64, fn func()) float64 {
	var iters int
	start := time.Now()
	for {
		fn()
		iters++
		if iters >= 2 && time.Since(start).Seconds() >= secs {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// interleave measures the fused and reference closures in adjacent
// windows of the same pass, three passes total, and returns each side's
// best ns/call plus the MEDIAN per-pass speedup. Timing both engines
// under near-identical machine conditions, then taking the median,
// keeps the ratio stable on noisy shared runners — machine-speed drift
// between separated windows would land directly in the ratio.
func interleave(minSecs float64, fused, ref func()) (nsF, nsR, speedup float64) {
	fused()
	ref() // warm arenas, pools, packed panels
	nsF, nsR = math.Inf(1), math.Inf(1)
	var ratios []float64
	for pass := 0; pass < 3; pass++ {
		f := window(minSecs/6, fused)
		r := window(minSecs/6, ref)
		if f < nsF {
			nsF = f
		}
		if r < nsR {
			nsR = r
		}
		ratios = append(ratios, r/f)
	}
	sort.Float64s(ratios)
	return nsF, nsR, ratios[1]
}

// measureAllocs counts heap allocations per fused train step.
func measureAllocs(g *nn.Graph, xb, yb *tensor.Tensor3) float64 {
	opt := nn.NewAdam(1e-3)
	var grad *tensor.Tensor3
	step := func() {
		pred := g.Forward(xb)
		_, grad = nn.MSELossInto(grad, pred, yb)
		g.Backward(grad)
		opt.Step(g.Params())
	}
	step() // warm
	const steps = 50
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < steps; i++ {
		step()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / steps
}

// measureGemm times the recurrence-shaped GEMM (batch x hidden times
// hidden x 4*hidden) and returns achieved GFLOP/s.
func measureGemm(cfg BenchConfig) float64 {
	m, k, n := cfg.Batch, cfg.Hidden, 4*cfg.Hidden
	rng := tensor.NewRNG(3)
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	dst := make([]float64, m*n)
	rng.FillNormal(a, 1)
	rng.FillNormal(b, 1)
	var kc kernel.Config
	flops := 2 * m * k * n
	gemm := func() {
		kc.Gemm(kernel.MatOf(m, n, dst), kernel.MatOf(m, k, a), kernel.MatOf(k, n, b), false, false, false)
	}
	gemm() // warm the packed-panel pool
	ns := math.Inf(1)
	for pass := 0; pass < 3; pass++ {
		if w := window(cfg.MinSeconds/3, gemm); w < ns {
			ns = w
		}
	}
	return float64(flops) / ns
}

// gitRev resolves HEAD to a short revision by reading .git directly (no
// subprocess), walking up from dir to find the repository root.
// Returns "unknown" when anything is missing.
func gitRev(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "unknown"
	}
	for {
		head, err := os.ReadFile(filepath.Join(abs, ".git", "HEAD"))
		if err == nil {
			return resolveHead(filepath.Join(abs, ".git"), strings.TrimSpace(string(head)))
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "unknown"
		}
		abs = parent
	}
}

func resolveHead(gitDir, head string) string {
	if ref, ok := strings.CutPrefix(head, "ref: "); ok {
		if b, err := os.ReadFile(filepath.Join(gitDir, ref)); err == nil {
			return shortHex(strings.TrimSpace(string(b)))
		}
		// Packed ref: lines of "<hex> <refname>".
		if b, err := os.ReadFile(filepath.Join(gitDir, "packed-refs")); err == nil {
			for _, line := range strings.Split(string(b), "\n") {
				hex, name, ok := strings.Cut(strings.TrimSpace(line), " ")
				if ok && name == ref {
					return shortHex(hex)
				}
			}
		}
		return "unknown"
	}
	return shortHex(head)
}

func shortHex(h string) string {
	if len(h) < 12 {
		return "unknown"
	}
	for _, c := range h[:12] {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return "unknown"
		}
	}
	return h[:12]
}

// Save writes the report as indented JSON.
func (r *Report) Save(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadReport reads a report written by Save.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("nasbench: %s: %w", path, err)
	}
	return &r, nil
}

// Print writes the human-readable summary.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "rev %s  simd %s  gomaxprocs %d  (LSTM %d, batch %d, window %d, modes %d)\n",
		r.Rev, r.SIMD, r.GoMaxProcs, r.Config.Hidden, r.Config.Batch, r.Config.Window, r.Config.Modes)
	fmt.Fprintf(w, "  eval   fused %10.0f ns   ref %10.0f ns   speedup %5.2fx\n",
		r.NsEvalFused, r.NsEvalRef, r.SpeedupEval)
	fmt.Fprintf(w, "  epoch  fused %10.0f ns   ref %10.0f ns   speedup %5.2fx\n",
		r.NsEpochFused, r.NsEpochRef, r.SpeedupEpoch)
	fmt.Fprintf(w, "  gemm   %.1f GFLOP/s   allocs/step %.1f\n", r.GemmGFLOPS, r.AllocsPerStep)
}

// Diff compares machine-stable metrics and returns one message per
// regression beyond tol. Speedup ratios are only comparable when both
// reports come from the same SIMD class; allocation counts always are.
func Diff(oldRep, newRep *Report, tol float64) []string {
	var regs []string
	if oldRep.SIMD == newRep.SIMD {
		if newRep.SpeedupEval < oldRep.SpeedupEval*(1-tol) {
			regs = append(regs, fmt.Sprintf("speedup_eval %.2fx -> %.2fx (limit %.2fx)",
				oldRep.SpeedupEval, newRep.SpeedupEval, oldRep.SpeedupEval*(1-tol)))
		}
		if newRep.SpeedupEpoch < oldRep.SpeedupEpoch*(1-tol) {
			regs = append(regs, fmt.Sprintf("speedup_epoch %.2fx -> %.2fx (limit %.2fx)",
				oldRep.SpeedupEpoch, newRep.SpeedupEpoch, oldRep.SpeedupEpoch*(1-tol)))
		}
	}
	if newRep.AllocsPerStep > oldRep.AllocsPerStep*(1+tol)+0.5 {
		regs = append(regs, fmt.Sprintf("allocs_per_step %.1f -> %.1f",
			oldRep.AllocsPerStep, newRep.AllocsPerStep))
	}
	return regs
}
