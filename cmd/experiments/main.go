// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index):
//
//	table1  weekly Eastern-Pacific RMSE vs CESM/HYCOM surrogates
//	table2  R² of NAS-POD-LSTM, classical baselines, and manual LSTMs
//	table3  node utilization and evaluation counts at 33–512 nodes
//	fig3    search trajectories (AE/RL/RS) at 128 nodes
//	fig4    best-found architecture
//	fig5    posttraining convergence and coefficient forecasts vs CESM
//	fig6    sample forecast-field comparison
//	fig7    Eastern-Pacific temporal probes
//	fig8    unique high-performing architectures vs node count
//	fig9    variability over repeated searches
//
// The scaling experiments (table3, fig3, fig8, fig9) run in the
// discrete-event cluster simulator and complete in seconds; the science
// experiments train real networks and take minutes (hours without -fast on
// the default grid).
//
// Usage:
//
//	experiments [-exp all|table1|...|fig9] [-grid small|default] [-fast]
//	            [-evals 24] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"podnas"
	"podnas/internal/baseline"
	"podnas/internal/plot"
	"podnas/internal/sst"
	"podnas/internal/tensor"
	"podnas/internal/window"
)

type runner struct {
	grid   string
	fast   bool
	evals  int
	seed   uint64
	figdir string

	pipe  *podnas.Pipeline
	best  *podnas.SearchResult
	model *podnas.Model
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	exp := flag.String("exp", "all", "experiment ids, comma separated (all, table1..3, fig3..9)")
	grid := flag.String("grid", "default", "data set size: small or default")
	fast := flag.Bool("fast", false, "reduced budgets (fewer epochs, smaller manual-LSTM grid)")
	evals := flag.Int("evals", 24, "architecture evaluations for the real NAS (fig4/table2)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	figdir := flag.String("figdir", "", "when set, also write figure SVG/CSV files into this directory")
	flag.Parse()

	r := &runner{grid: *grid, fast: *fast, evals: *evals, seed: *seed, figdir: *figdir}
	all := []struct {
		name string
		run  func() error
	}{
		{"fig3", r.fig3}, {"table3", r.table3}, {"fig8", r.fig8}, {"fig9", r.fig9},
		{"fig4", r.fig4}, {"fig5", r.fig5}, {"table1", r.table1},
		{"fig6", r.fig6}, {"fig7", r.fig7}, {"table2", r.table2},
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ran := false
	for _, e := range all {
		if want["all"] || want[e.name] {
			ran = true
			t0 := time.Now()
			fmt.Printf("\n===== %s =====\n", strings.ToUpper(e.name))
			if err := e.run(); err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
			fmt.Printf("[%s done in %v]\n", e.name, time.Since(t0).Round(time.Second))
		}
	}
	if !ran {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func (r *runner) pipeline() (*podnas.Pipeline, error) {
	if r.pipe != nil {
		return r.pipe, nil
	}
	cfg := podnas.DefaultPipelineConfig()
	if r.grid == "small" {
		cfg = podnas.SmallPipelineConfig()
	}
	fmt.Printf("preparing %s pipeline...\n", r.grid)
	p, err := podnas.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("  %d ocean points, %d train / %d val / %d test windows, %.1f%% energy in %d modes\n",
		p.Data.Nh(), p.TrainWin.Examples(), p.ValWin.Examples(), p.TestWin.Examples(),
		100*p.EnergyCaptured(), p.Cfg.Nr)
	r.pipe = p
	return p, nil
}

// searchBest runs (once) the real-evaluation AE search used by fig4, fig5,
// table1, table2, fig6, and fig7.
func (r *runner) searchBest() (*podnas.SearchResult, error) {
	if r.best != nil {
		return r.best, nil
	}
	p, err := r.pipeline()
	if err != nil {
		return nil, err
	}
	epochs := 20
	if r.fast {
		epochs = 10
	}
	opts := podnas.SearchOptions{
		Workers: 2, MaxEvals: r.evals, Epochs: epochs,
		Population: maxInt(4, r.evals/3), Sample: maxInt(2, r.evals/8), Seed: r.seed,
	}
	fmt.Printf("running AE search (%d evaluations, %d epochs each)...\n", opts.MaxEvals, epochs)
	res, err := podnas.Search(p, podnas.MethodAE, opts)
	if err != nil {
		return nil, err
	}
	r.best = res
	return res, nil
}

// posttrained returns (once) the posttrained best model — the paper's
// NAS-POD-LSTM.
func (r *runner) posttrained() (*podnas.Model, error) {
	if r.model != nil {
		return r.model, nil
	}
	p, err := r.pipeline()
	if err != nil {
		return nil, err
	}
	res, err := r.searchBest()
	if err != nil {
		return nil, err
	}
	m, err := p.BuildArch(res.Space, res.Best.Arch, r.seed)
	if err != nil {
		return nil, err
	}
	epochs := r.posttrainEpochs()
	fmt.Printf("posttraining the best architecture (%d epochs)...\n", epochs)
	if _, err := m.Posttrain(epochs, r.seed); err != nil {
		return nil, err
	}
	r.model = m
	return m, nil
}

func (r *runner) posttrainEpochs() int {
	if r.fast {
		return 40
	}
	return 150
}

func (r *runner) fig3() error {
	fmt.Println("Search trajectories at 128 simulated nodes, 3 h wall time (moving-average reward).")
	fmt.Printf("%-8s %-28s %-12s %-12s\n", "method", "minutes to reach R2=0.96", "final avg", "best R2")
	chart := &plot.Chart{Title: "Fig 3: search trajectories (128 nodes)", XLabel: "wall-clock minutes", YLabel: "moving-avg validation R2"}
	for _, m := range []podnas.ScalingMethod{podnas.MethodAE, podnas.MethodRL, podnas.MethodRS} {
		st, err := podnas.SimulateScaling(podnas.ScalingConfig{Method: m, Nodes: 128, Seed: r.seed + 7})
		if err != nil {
			return err
		}
		cross := "-"
		for i := range st.RewardCurve.X {
			if st.RewardCurve.Y[i] >= 0.96 {
				cross = fmt.Sprintf("%.0f", st.RewardCurve.X[i])
				break
			}
		}
		final := st.RewardCurve.Y[len(st.RewardCurve.Y)-1]
		fmt.Printf("%-8s %-28s %-12.4f %-12.4f\n", m, cross, final, st.BestReward)
		// Print the trajectory at 20-minute samples for plotting.
		fmt.Printf("  trajectory:")
		for min := 20.0; min <= 180; min += 20 {
			fmt.Printf(" %3.0fm=%.4f", min, st.RewardCurve.ValueAt(min))
		}
		fmt.Println()
		rs := st.RewardCurve.Resample(0, 180, 120)
		chart.Series = append(chart.Series, plot.Series{Name: string(m), X: rs.X, Y: rs.Y})
	}
	r.saveChart(chart, "fig3_trajectories")
	fmt.Println("Expected shape (paper Fig 3): AE crosses 0.96 fastest (~50 min), RL later (~160 min), RS plateaus at 0.93-0.94.")
	return nil
}

func (r *runner) table3() error {
	fmt.Println("Node utilization and evaluation counts (3 h simulated wall time).")
	fmt.Printf("%-6s | %-8s %-8s %-8s | %-8s %-8s %-8s\n", "nodes", "AE util", "RL util", "RS util", "AE evals", "RL evals", "RS evals")
	nodes := []int{33, 64, 128, 256, 512}
	if r.fast {
		nodes = []int{33, 64, 128}
	}
	for _, n := range nodes {
		row := fmt.Sprintf("%-6d |", n)
		var evalRow string
		for _, m := range []podnas.ScalingMethod{podnas.MethodAE, podnas.MethodRL, podnas.MethodRS} {
			st, err := podnas.SimulateScaling(podnas.ScalingConfig{Method: m, Nodes: n, Seed: r.seed + 7})
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %-8.3f", st.Utilization)
			evalRow += fmt.Sprintf(" %-8d", st.Evaluations)
		}
		fmt.Printf("%s |%s\n", row, evalRow)
	}
	fmt.Println("Paper Table III @128: util AE 0.918 / RL 0.527 / RS 0.921; evals AE 8068 / RL 4740 / RS 7267.")
	return nil
}

func (r *runner) fig8() error {
	fmt.Println("Unique architectures with reward > 0.96 (AE per node count, and all methods at the largest count).")
	nodes := []int{33, 64, 128, 256, 512}
	if r.fast {
		nodes = []int{33, 64, 128}
	}
	chart := &plot.Chart{Title: "Fig 8: unique architectures with R2 > 0.96 (AE)", XLabel: "wall-clock minutes", YLabel: "unique high performers"}
	for _, n := range nodes {
		st, err := podnas.SimulateScaling(podnas.ScalingConfig{Method: podnas.MethodAE, Nodes: n, Seed: r.seed + 7})
		if err != nil {
			return err
		}
		fmt.Printf("  AE %3d nodes: %5d unique (at 90 min: %.0f)\n", n, st.UniqueHigh, st.HighPerfCurve.ValueAt(90))
		rs := st.HighPerfCurve.Resample(0, 180, 120)
		chart.Series = append(chart.Series, plot.Series{Name: fmt.Sprintf("AE %d nodes", n), X: rs.X, Y: rs.Y})
	}
	r.saveChart(chart, "fig8_high_performers")
	last := nodes[len(nodes)-1]
	for _, m := range []podnas.ScalingMethod{podnas.MethodRL, podnas.MethodRS} {
		st, err := podnas.SimulateScaling(podnas.ScalingConfig{Method: m, Nodes: last, Seed: r.seed + 7})
		if err != nil {
			return err
		}
		fmt.Printf("  %s %3d nodes: %5d unique\n", m, last, st.UniqueHigh)
	}
	fmt.Println("Expected shape (paper Fig 8): counts grow with nodes; AE >> RL > RS.")
	return nil
}

func (r *runner) fig9() error {
	repeats := 10
	if r.fast {
		repeats = 4
	}
	fmt.Printf("Variability over %d seeds at 128 nodes (mean ± 2 std of final moving-average reward and utilization).\n", repeats)
	rewardChart := &plot.Chart{Title: "Fig 9: reward variability (mean ± 2σ)", XLabel: "wall-clock minutes", YLabel: "moving-avg reward"}
	utilChart := &plot.Chart{Title: "Fig 9: utilization variability (mean ± 2σ)", XLabel: "wall-clock minutes", YLabel: "busy-node fraction"}
	for _, m := range []podnas.ScalingMethod{podnas.MethodAE, podnas.MethodRL} {
		vs, err := podnas.VariabilityStudy(m, 128, repeats, r.seed)
		if err != nil {
			return err
		}
		fm, fs := meanStd(vs.FinalRewards)
		um, us := meanStd(vs.Utilizations)
		fmt.Printf("  %-3s final reward %.4f ± %.4f   utilization %.3f ± %.3f\n", m, fm, 2*fs, um, 2*us)
		rewardChart.Series = append(rewardChart.Series,
			plot.Series{Name: string(m) + " mean", X: vs.RewardMean.X, Y: vs.RewardMean.Y},
			plot.Series{Name: string(m) + " -2σ", X: vs.RewardLo.X, Y: vs.RewardLo.Y},
			plot.Series{Name: string(m) + " +2σ", X: vs.RewardHi.X, Y: vs.RewardHi.Y})
		utilChart.Series = append(utilChart.Series,
			plot.Series{Name: string(m) + " mean", X: vs.UtilMean.X, Y: vs.UtilMean.Y})
	}
	r.saveChart(rewardChart, "fig9_reward_band")
	r.saveChart(utilChart, "fig9_utilization")
	fmt.Println("Expected shape (paper Fig 9): low variance for AE; RL reward grows slower with oscillating utilization.")
	return nil
}

func (r *runner) fig4() error {
	res, err := r.searchBest()
	if err != nil {
		return err
	}
	fmt.Printf("Best architecture found by AE (validation R2 %.4f during search):\n%s", res.Best.Reward, res.BestDesc)
	return nil
}

func (r *runner) fig5() error {
	p, err := r.pipeline()
	if err != nil {
		return err
	}
	res, err := r.searchBest()
	if err != nil {
		return err
	}
	// Posttraining convergence trace (top row of Fig 5).
	m, err := p.BuildArch(res.Space, res.Best.Arch, r.seed)
	if err != nil {
		return err
	}
	epochs := r.posttrainEpochs()
	losses, err := m.Posttrain(epochs, r.seed)
	if err != nil {
		return err
	}
	r.model = m
	fmt.Printf("Posttraining convergence (%d epochs): loss %.4f -> %.4f (x%.1f reduction)\n",
		epochs, losses[0], losses[len(losses)-1], losses[0]/losses[len(losses)-1])
	fmt.Printf("Posttrained validation R2: %.4f (search-time reward was %.4f)\n", m.ValR2(), res.Best.Reward)

	// Coefficient forecasts, train vs test period, with the CESM overlay.
	for _, period := range []struct {
		name   string
		lo, hi int
	}{
		{"train", p.Cfg.K, p.NumTrain - p.Cfg.K},
		{"test", p.NumTrain + p.Cfg.K, p.Data.Weeks() - p.Cfg.K},
	} {
		fmt.Printf("  %s-period coefficient forecasts (lead 1):\n", period.name)
		for mode := 0; mode < p.Cfg.Nr; mode++ {
			hi := minInt(period.lo+260, period.hi)
			truth, pred, err := m.CoefficientTrace(mode, period.lo, hi)
			if err != nil {
				return err
			}
			cesm, err := p.CESMCoefficientTrace(mode, period.lo, hi)
			if err != nil {
				return err
			}
			fmt.Printf("    mode %d: POD-LSTM R2 %7.3f   CESM-projection R2 %7.3f\n",
				mode+1, r2(pred, truth), r2(cesm, truth))
			if mode == 0 {
				weeks := make([]float64, len(truth))
				for i := range weeks {
					weeks[i] = float64(period.lo + i)
				}
				r.saveChart(&plot.Chart{
					Title:  fmt.Sprintf("Fig 5: mode-1 coefficient forecast (%s period)", period.name),
					XLabel: "snapshot week", YLabel: "POD coefficient",
					Series: []plot.Series{
						{Name: "truth", X: weeks, Y: truth},
						{Name: "POD-LSTM", X: weeks, Y: pred},
						{Name: "CESM projection", X: weeks, Y: cesm},
					},
				}, "fig5_mode1_"+period.name)
			}
		}
	}
	fmt.Println("Expected shape (paper Fig 5): near-perfect low modes on train; errors grow on test; CESM tracks only the large-scale modes.")
	return nil
}

func (r *runner) table1() error {
	p, err := r.pipeline()
	if err != nil {
		return err
	}
	m, err := r.posttrained()
	if err != nil {
		return err
	}
	lo, hi := p.HYCOMWindow()
	if r.fast && hi-lo > 60 {
		hi = lo + 60
	}
	fmt.Printf("Eastern-Pacific RMSE (degC) over %d forecast weeks (%s .. %s):\n",
		hi-lo, p.Data.Dates[lo].Format("2006-01-02"), p.Data.Dates[hi-1].Format("2006-01-02"))
	table, err := m.RegionalRMSE(sst.EasternPacific, lo, hi)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s", "")
	for w := 1; w <= p.Cfg.K; w++ {
		fmt.Printf(" Week%-4d", w)
	}
	fmt.Println()
	printRow := func(name string, xs []float64) {
		fmt.Printf("%-10s", name)
		for _, v := range xs {
			fmt.Printf(" %-8.2f", v)
		}
		fmt.Println()
	}
	printRow("Predicted", table.Predicted)
	printRow("CESM", table.CESM)
	printRow("HYCOM", table.HYCOM)
	leads := make([]float64, p.Cfg.K)
	for i := range leads {
		leads[i] = float64(i + 1)
	}
	r.saveChart(&plot.Chart{
		Title: "Table I: Eastern-Pacific RMSE by lead week", XLabel: "lead week", YLabel: "RMSE (degC)",
		Series: []plot.Series{
			{Name: "POD-LSTM", X: leads, Y: table.Predicted},
			{Name: "CESM", X: leads, Y: table.CESM},
			{Name: "HYCOM", X: leads, Y: table.HYCOM},
		},
	}, "table1_regional_rmse")
	fmt.Println("Paper Table I: Predicted 0.62-0.69, CESM 1.83-1.88, HYCOM 0.99-1.05.")
	return nil
}

func (r *runner) fig6() error {
	p, err := r.pipeline()
	if err != nil {
		return err
	}
	m, err := r.posttrained()
	if err != nil {
		return err
	}
	week := p.Data.IndexOfDate(time.Date(2015, 6, 14, 0, 0, 0, 0, time.UTC))
	if week < p.NumTrain+p.Cfg.K || week >= p.Data.Weeks()-p.Cfg.K {
		week = p.NumTrain + (p.Data.Weeks()-p.NumTrain)/2
	}
	fc, err := m.CompareFields(week)
	if err != nil {
		return err
	}
	fmt.Printf("Forecast field comparison for the week of %s (global-ocean RMSE vs truth, degC):\n",
		p.Data.Dates[week].Format("2006-01-02"))
	fmt.Printf("  POD-LSTM: %.3f   HYCOM: %.3f   CESM: %.3f\n", fc.RMSEPredicted, fc.RMSEHYCOM, fc.RMSECESM)
	fmt.Println("Expected shape (paper Fig 6): large-scale structure captured by all; POD-LSTM limited by the 5-mode truncation.")
	return nil
}

func (r *runner) fig7() error {
	p, err := r.pipeline()
	if err != nil {
		return err
	}
	m, err := r.posttrained()
	if err != nil {
		return err
	}
	lo, hi := p.HYCOMWindow()
	if r.fast && hi-lo > 60 {
		hi = lo + 60
	}
	fmt.Printf("Temporal probes, lead-1 forecasts over weeks %d..%d (RMSE degC | correlation with truth):\n", lo, hi)
	for li, loc := range [][2]float64{{-5, 210}, {5, 250}, {10, 230}} {
		pr, err := m.ProbeSeries(loc[0], loc[1], lo, hi)
		if err != nil {
			return err
		}
		fmt.Printf("  (%+.0f, %.0f): POD-LSTM %.2f|%.2f   HYCOM %.2f|%.2f   CESM %.2f|%.2f\n",
			loc[0], loc[1],
			rmse(pr.Predicted, pr.Truth), corr(pr.Predicted, pr.Truth),
			rmse(pr.HYCOM, pr.Truth), corr(pr.HYCOM, pr.Truth),
			rmse(pr.CESM, pr.Truth), corr(pr.CESM, pr.Truth))
		weeks := make([]float64, len(pr.Weeks))
		for i, w := range pr.Weeks {
			weeks[i] = float64(w)
		}
		r.saveChart(&plot.Chart{
			Title:  fmt.Sprintf("Fig 7: probe at (%+.0f, %.0f)", loc[0], loc[1]),
			XLabel: "snapshot week", YLabel: "SST (degC)",
			Series: []plot.Series{
				{Name: "truth", X: weeks, Y: pr.Truth},
				{Name: "POD-LSTM", X: weeks, Y: pr.Predicted},
				{Name: "HYCOM", X: weeks, Y: pr.HYCOM},
				{Name: "CESM", X: weeks, Y: pr.CESM},
			},
		}, fmt.Sprintf("fig7_probe%d", li+1))
	}
	fmt.Println("Expected shape (paper Fig 7): HYCOM and POD-LSTM track the truth; CESM misses short-term anomalies.")
	return nil
}

func (r *runner) table2() error {
	p, err := r.pipeline()
	if err != nil {
		return err
	}
	fmt.Println("Coefficients of determination (train period 1981-1989 / test period 1990-2018).")

	// NAS-POD-LSTM (the posttrained best).
	m, err := r.posttrained()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s train %7.3f   test %7.3f   (%d params)\n", "NAS-POD-LSTM", m.TrainR2(), m.TestR2(), m.ParamCount())

	// Classical baselines on unscaled windows.
	raw := func(w *window.Dataset) *window.Dataset {
		x := w.X.Clone()
		p.Scaler.Inverse(x)
		y := w.Y.Clone()
		p.Scaler.Inverse(y)
		return &window.Dataset{X: x, Y: y, K: w.K, Nr: w.Nr}
	}
	trainD := raw(p.TrainWin)
	valD := raw(p.ValWin)
	testD := raw(p.TestWin)
	// Train-period metric covers train+val windows, matching the LSTMs.
	trainAll := &window.Dataset{
		X: concat(trainD.X, valD.X), Y: concat(trainD.Y, valD.Y), K: trainD.K, Nr: trainD.Nr,
	}
	for _, reg := range []baseline.Regressor{baseline.NewLinear(), baseline.NewGradientBoosting(), baseline.NewRandomForest()} {
		if err := baseline.FitWindowed(reg, trainD); err != nil {
			return err
		}
		fmt.Printf("%-16s train %7.3f   test %7.3f\n", reg.Name(), baseline.EvaluateR2(reg, trainAll), baseline.EvaluateR2(reg, testD))
	}

	// Manually designed LSTMs.
	units := []int{40, 80, 120, 200}
	layers := []int{1, 5}
	if r.fast {
		units = []int{40, 80}
		layers = []int{1}
	}
	for _, u := range units {
		for _, l := range layers {
			epochs := r.posttrainEpochs()
			if l > 1 {
				// Deep variants get a reduced epoch budget to bound the
				// single-core runtime; their per-epoch cost is ~5x.
				epochs = epochs * 3 / 5
			}
			lm, err := p.ManualLSTM(u, l, r.seed)
			if err != nil {
				return err
			}
			if _, err := lm.Posttrain(epochs, r.seed); err != nil {
				return err
			}
			fmt.Printf("%-16s train %7.3f   test %7.3f   (%d epochs)\n", fmt.Sprintf("LSTM-%d x%d", u, l), lm.TrainR2(), lm.TestR2(), epochs)
		}
	}
	fmt.Println("Paper Table II: NAS 0.985/0.876; Linear 0.801/0.172; XGBoost 0.966/-0.056; RF 0.823/0.002; LSTMs ~0.9/0.69-0.75.")
	fmt.Println("Substitution note (DESIGN.md): the synthetic coefficient dynamics leave the classical baselines stronger than on real SST.")
	return nil
}

// saveChart writes the chart as SVG+CSV when -figdir is set.
func (r *runner) saveChart(c *plot.Chart, name string) {
	if r.figdir == "" {
		return
	}
	if err := c.WriteSVG(r.figdir, name); err != nil {
		fmt.Printf("  (figure export failed: %v)\n", err)
		return
	}
	if err := c.WriteCSV(r.figdir, name); err != nil {
		fmt.Printf("  (csv export failed: %v)\n", err)
		return
	}
	fmt.Printf("  wrote %s/%s.{svg,csv}\n", r.figdir, name)
}

// --- small helpers ---

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func meanStd(xs []float64) (float64, float64) {
	var m float64
	for _, v := range xs {
		m += v
	}
	m /= float64(len(xs))
	var s float64
	for _, v := range xs {
		s += (v - m) * (v - m)
	}
	return m, math.Sqrt(s / float64(len(xs)))
}

func r2(pred, target []float64) float64 {
	var mean float64
	for _, v := range target {
		mean += v
	}
	mean /= float64(len(target))
	var ssRes, ssTot float64
	for i, v := range target {
		d := pred[i] - v
		ssRes += d * d
		c := v - mean
		ssTot += c * c
	}
	return 1 - ssRes/ssTot
}

func rmse(pred, target []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

func corr(a, b []float64) float64 {
	ma, sa := meanStd(a)
	mb, sb := meanStd(b)
	var c float64
	for i := range a {
		c += (a[i] - ma) * (b[i] - mb)
	}
	return c / float64(len(a)) / (sa*sb + 1e-300)
}

// concat appends two windowed tensors along the batch dimension.
func concat(a, b *tensor.Tensor3) *tensor.Tensor3 {
	out := tensor.NewTensor3(a.B+b.B, a.T, a.F)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}
