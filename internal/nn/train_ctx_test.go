package nn

import (
	"context"
	"errors"
	"testing"

	"podnas/internal/tensor"
)

// TestTrainInterruptedByContext: cancelling cfg.Ctx stops Train at the next
// epoch boundary with a wrapped context error instead of running all epochs.
func TestTrainInterruptedByContext(t *testing.T) {
	rng := tensor.NewRNG(21)
	x := tensor.NewTensor3(32, 4, 2)
	rng.FillNormal(x.Data, 1)
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] *= 0.5
	}
	g, err := NewStackedLSTM(2, 2, 4, 1, tensor.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	epochs := 0
	cfg := TrainConfig{
		Epochs: 500, BatchSize: 16, LR: 0.005, Seed: 1, Ctx: ctx,
		EpochCallback: func(epoch int, _ float64) {
			epochs++
			if epoch == 2 {
				cancel()
			}
		},
	}
	_, err = Train(g, x, y, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if epochs > 3 {
		t.Errorf("training ran %d epochs after cancellation", epochs)
	}
}

// TestTrainNilCtxUnaffected: a zero-value config (no context) trains to
// completion exactly as before the Ctx field existed.
func TestTrainNilCtxUnaffected(t *testing.T) {
	rng := tensor.NewRNG(23)
	x := tensor.NewTensor3(16, 4, 2)
	rng.FillNormal(x.Data, 1)
	y := x.Clone()
	g, err := NewStackedLSTM(2, 2, 4, 1, tensor.NewRNG(24))
	if err != nil {
		t.Fatal(err)
	}
	epochs := 0
	cfg := TrainConfig{Epochs: 5, BatchSize: 8, LR: 0.003, Seed: 2,
		EpochCallback: func(int, float64) { epochs++ }}
	if _, err := Train(g, x, y, cfg); err != nil {
		t.Fatal(err)
	}
	if epochs != 5 {
		t.Errorf("ran %d epochs, want 5", epochs)
	}
}
