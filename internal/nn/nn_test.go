package nn

import (
	"math"
	"strings"
	"testing"

	"podnas/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense("d", 2, 3, rng)
	copy(d.W.W, []float64{1, 2, 3, 4, 5, 6}) // W is 2x3
	copy(d.B.W, []float64{0.5, -0.5, 1})
	x := tensor.Tensor3FromSlice(1, 2, 2, []float64{1, 1, 2, 0})
	y := d.Forward(x)
	// step0: [1,1]·W + b = [5.5, 6.5, 10]; step1: [2,0]·W + b = [2.5, 3.5, 7].
	want := []float64{5.5, 6.5, 10, 2.5, 3.5, 7}
	for i, v := range want {
		if math.Abs(y.Data[i]-v) > 1e-12 {
			t.Errorf("dense out[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
}

func TestDensePanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d := NewDense("d", 3, 2, tensor.NewRNG(1))
	d.Forward(tensor.NewTensor3(1, 1, 4))
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU(2)
	x := tensor.Tensor3FromSlice(1, 2, 2, []float64{-1, 2, 0, 3})
	y := r.Forward(x)
	want := []float64{0, 2, 0, 3}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("relu out[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
	d := tensor.Tensor3FromSlice(1, 2, 2, []float64{5, 5, 5, 5})
	dx := r.Backward(d)
	wantG := []float64{0, 5, 0, 5}
	for i, v := range wantG {
		if dx.Data[i] != v {
			t.Errorf("relu grad[%d] = %g, want %g", i, dx.Data[i], v)
		}
	}
}

func TestLSTMShapesAndDeterminism(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLSTM("l", 3, 5, rng)
	x := tensor.NewTensor3(4, 6, 3)
	tensor.NewRNG(9).FillNormal(x.Data, 1)
	// Forward output aliases the layer's arena; clone before the next pass.
	y1 := l.Forward(x).Clone()
	if y1.B != 4 || y1.T != 6 || y1.F != 5 {
		t.Fatalf("LSTM output shape %dx%dx%d", y1.B, y1.T, y1.F)
	}
	y2 := l.Forward(x)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("LSTM forward is not deterministic")
		}
	}
}

func TestLSTMOutputBounded(t *testing.T) {
	// h = o·tanh(c) with o in (0,1): |h| < 1 always... no — c is unbounded,
	// but tanh(c) is in (-1,1), so |h| < 1.
	rng := tensor.NewRNG(3)
	l := NewLSTM("l", 2, 4, rng)
	x := tensor.NewTensor3(3, 10, 2)
	tensor.NewRNG(10).FillNormal(x.Data, 5)
	y := l.Forward(x)
	for _, v := range y.Data {
		if math.Abs(v) >= 1 {
			t.Fatalf("LSTM hidden value %g outside (-1,1)", v)
		}
	}
}

func TestLSTMCausality(t *testing.T) {
	// Changing the input at timestep k must not affect outputs before k.
	rng := tensor.NewRNG(4)
	l := NewLSTM("l", 2, 3, rng)
	x := tensor.NewTensor3(1, 6, 2)
	tensor.NewRNG(11).FillNormal(x.Data, 1)
	// Forward output aliases the layer's arena; clone before the next pass.
	y1 := l.Forward(x).Clone()
	x2 := x.Clone()
	x2.Set(0, 4, 0, 99)
	x2.Set(0, 4, 1, -99)
	y2 := l.Forward(x2)
	for step := 0; step < 4; step++ {
		for f := 0; f < 3; f++ {
			if y1.At(0, step, f) != y2.At(0, step, f) {
				t.Fatalf("output at step %d changed when input at step 4 changed", step)
			}
		}
	}
	changed := false
	for f := 0; f < 3; f++ {
		if y1.At(0, 4, f) != y2.At(0, 4, f) {
			changed = true
		}
	}
	if !changed {
		t.Error("output at step 4 did not respond to its input")
	}
}

func TestLSTMBatchIndependence(t *testing.T) {
	// Each batch element must be processed independently.
	rng := tensor.NewRNG(5)
	l := NewLSTM("l", 2, 3, rng)
	x := tensor.NewTensor3(2, 4, 2)
	tensor.NewRNG(12).FillNormal(x.Data, 1)
	full := l.Forward(x).Clone()
	solo := l.Forward(x.Gather([]int{1}))
	for step := 0; step < 4; step++ {
		for f := 0; f < 3; f++ {
			if math.Abs(full.At(1, step, f)-solo.At(0, step, f)) > 1e-12 {
				t.Fatalf("batch element 1 differs when processed alone (step %d)", step)
			}
		}
	}
}

func TestForgetBiasInitialized(t *testing.T) {
	l := NewLSTM("l", 2, 4, tensor.NewRNG(6))
	for j := 4; j < 8; j++ {
		if l.B.W[j] != 1 {
			t.Errorf("forget bias[%d] = %g, want 1", j, l.B.W[j])
		}
	}
	for j := 0; j < 4; j++ {
		if l.B.W[j] != 0 {
			t.Errorf("input bias[%d] = %g, want 0", j, l.B.W[j])
		}
	}
}

func TestGraphSpecValidate(t *testing.T) {
	bad := []GraphSpec{
		{InputDim: 0, Nodes: []GraphNodeSpec{{Inputs: []int{GraphInput}}}},
		{InputDim: 2},
		{InputDim: 2, Nodes: []GraphNodeSpec{{Inputs: nil}}},
		{InputDim: 2, Nodes: []GraphNodeSpec{{Inputs: []int{0}}}},                              // self/forward ref
		{InputDim: 2, Nodes: []GraphNodeSpec{{Inputs: []int{GraphInput}, Units: -1}}},          // negative units
		{InputDim: 2, Nodes: []GraphNodeSpec{{Inputs: []int{GraphInput}}, {Inputs: []int{5}}}}, // out of range
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
}

func TestGraphParamCount(t *testing.T) {
	// LSTM params: 4H(F+H+1). Chain: input(2) -> LSTM(3) -> LSTM(2).
	g, err := NewGraph(GraphSpec{InputDim: 2, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 3},
		{Inputs: []int{0}, Units: 2},
	}}, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	want := 4*3*(2+3+1) + 4*2*(3+2+1)
	if got := g.ParamCount(); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
}

func TestGraphSkipAddsProjectionParams(t *testing.T) {
	base := GraphSpec{InputDim: 2, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 3},
		{Inputs: []int{0}, Units: 3},
		{Inputs: []int{1}, Units: 2},
	}}
	withSkip := GraphSpec{InputDim: 2, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 3},
		{Inputs: []int{0}, Units: 3},
		{Inputs: []int{1, 0}, Units: 2},
	}}
	g1, _ := NewGraph(base, tensor.NewRNG(8))
	g2, _ := NewGraph(withSkip, tensor.NewRNG(8))
	// Two 3→3 projections with bias: 2*(9+3) = 24 extra weights.
	if diff := g2.ParamCount() - g1.ParamCount(); diff != 24 {
		t.Errorf("skip added %d params, want 24", diff)
	}
}

func TestIdentityChainIsTransparent(t *testing.T) {
	// A graph of only identity nodes returns its input.
	g, err := NewGraph(GraphSpec{InputDim: 3, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 0},
		{Inputs: []int{0}, Units: 0},
	}}, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewTensor3(2, 3, 3)
	tensor.NewRNG(13).FillNormal(x.Data, 1)
	y := g.Forward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("identity chain altered input")
		}
	}
	if g.ParamCount() != 0 {
		t.Errorf("identity chain has %d params", g.ParamCount())
	}
}

func TestStackedLSTMConstructor(t *testing.T) {
	g, err := NewStackedLSTM(5, 5, 40, 1, tensor.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDim() != 5 || g.InDim() != 5 {
		t.Errorf("dims in=%d out=%d", g.InDim(), g.OutDim())
	}
	// 1 hidden layer of 40 + output LSTM(5):
	want := 4*40*(5+40+1) + 4*5*(40+5+1)
	if g.ParamCount() != want {
		t.Errorf("ParamCount = %d, want %d", g.ParamCount(), want)
	}
}

func TestAdamReducesLossOnQuadratic(t *testing.T) {
	// Minimize ||w - target||² directly through the optimizer.
	p := NewParam("w", 3)
	copy(p.W, []float64{5, -3, 2})
	target := []float64{1, 1, 1}
	opt := NewAdam(0.05)
	for it := 0; it < 2000; it++ {
		for i := range p.W {
			p.G[i] = 2 * (p.W[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range p.W {
		if math.Abs(p.W[i]-target[i]) > 1e-3 {
			t.Errorf("w[%d] = %g after Adam, want %g", i, p.W[i], target[i])
		}
	}
}

func TestMSELossAndGrad(t *testing.T) {
	p := tensor.Tensor3FromSlice(1, 1, 2, []float64{2, 4})
	y := tensor.Tensor3FromSlice(1, 1, 2, []float64{0, 0})
	loss, grad := MSELoss(p, y)
	if math.Abs(loss-10) > 1e-12 { // (4+16)/2
		t.Errorf("loss = %g, want 10", loss)
	}
	if math.Abs(grad.Data[0]-2) > 1e-12 || math.Abs(grad.Data[1]-4) > 1e-12 {
		t.Errorf("grad = %v", grad.Data)
	}
}

func TestTrainLearnsIdentityTask(t *testing.T) {
	// Task: output half the input sequence. Targets stay well inside the
	// (-1,1) range reachable by an LSTM output layer (h = o·tanh(c)), so the
	// network can fit them; loss must drop by a large factor and R² must
	// become high.
	rng := tensor.NewRNG(11)
	x := tensor.NewTensor3(64, 4, 2)
	rng.FillNormal(x.Data, 1)
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] *= 0.5
	}
	g, err := NewStackedLSTM(2, 2, 16, 1, tensor.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	before := EvaluateR2(g, x, y)
	var losses []float64
	cfg := TrainConfig{Epochs: 120, BatchSize: 16, LR: 0.01, Seed: 3,
		EpochCallback: func(_ int, l float64) { losses = append(losses, l) }}
	if _, err := Train(g, x, y, cfg); err != nil {
		t.Fatal(err)
	}
	after := EvaluateR2(g, x, y)
	if after < 0.9 {
		t.Errorf("R² after training = %.3f (before %.3f), want > 0.9", after, before)
	}
	if len(losses) != 120 {
		t.Errorf("epoch callback fired %d times, want 120", len(losses))
	}
	if losses[len(losses)-1] > losses[0]/10 {
		t.Errorf("loss did not drop 10x: first %.4g last %.4g", losses[0], losses[len(losses)-1])
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	g, _ := NewStackedLSTM(2, 2, 4, 1, tensor.NewRNG(13))
	x := tensor.NewTensor3(4, 3, 2)
	y := tensor.NewTensor3(5, 3, 2)
	if _, err := Train(g, x, y, DefaultTrainConfig()); err == nil {
		t.Error("expected batch-mismatch error")
	}
	y2 := tensor.NewTensor3(4, 3, 2)
	if _, err := Train(g, x, y2, TrainConfig{Epochs: 0, BatchSize: 8, LR: 0.01}); err == nil {
		t.Error("expected invalid-config error")
	}
	empty := tensor.NewTensor3(0, 3, 2)
	if _, err := Train(g, empty, empty, DefaultTrainConfig()); err == nil {
		t.Error("expected empty-data error")
	}
}

func TestTrainDivergenceDetected(t *testing.T) {
	// An absurd learning rate must be reported as divergence, not panic.
	rng := tensor.NewRNG(14)
	x := tensor.NewTensor3(32, 4, 2)
	rng.FillNormal(x.Data, 100)
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] *= 1e6
	}
	g, _ := NewStackedLSTM(2, 2, 8, 1, tensor.NewRNG(15))
	_, err := Train(g, x, y, TrainConfig{Epochs: 200, BatchSize: 32, LR: 1e18, Seed: 1})
	if err != nil && !strings.Contains(err.Error(), "diverged") && !strings.Contains(err.Error(), "finite") {
		t.Errorf("unexpected error kind: %v", err)
	}
	// Either it diverged (error) or Adam's normalization kept it finite;
	// both are acceptable, but weights must never be silently NaN.
	if err == nil {
		for _, p := range g.Params() {
			if ferr := checkFinite(p.Name, p.W); ferr != nil {
				t.Errorf("training reported success with non-finite weights: %v", ferr)
			}
		}
	}
}

func TestPredictMatchesForwardAcrossBatches(t *testing.T) {
	rng := tensor.NewRNG(16)
	g, _ := NewStackedLSTM(3, 3, 6, 1, tensor.NewRNG(17))
	x := tensor.NewTensor3(10, 4, 3)
	rng.FillNormal(x.Data, 1)
	full := g.Forward(x).Clone()
	batched := Predict(g, x, 3)
	for i := range full.Data {
		if math.Abs(full.Data[i]-batched.Data[i]) > 1e-12 {
			t.Fatal("batched Predict differs from single Forward")
		}
	}
}

func TestGraphDeterministicInit(t *testing.T) {
	g1, _ := NewStackedLSTM(2, 2, 4, 2, tensor.NewRNG(18))
	g2, _ := NewStackedLSTM(2, 2, 4, 2, tensor.NewRNG(18))
	p1, p2 := g1.Params(), g2.Params()
	for i := range p1 {
		for j := range p1[i].W {
			if p1[i].W[j] != p2[i].W[j] {
				t.Fatal("same seed produced different init")
			}
		}
	}
}

func TestDefaultTrainConfigMatchesPaper(t *testing.T) {
	cfg := DefaultTrainConfig()
	if cfg.Epochs != 20 || cfg.BatchSize != 64 || cfg.LR != 0.001 {
		t.Errorf("default train config %+v does not match the paper (20 epochs, batch 64, lr 1e-3)", cfg)
	}
}

func TestMSELossPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MSELoss(tensor.NewTensor3(1, 1, 2), tensor.NewTensor3(1, 1, 3))
}

func TestPredictDefaultBatch(t *testing.T) {
	rng := tensor.NewRNG(30)
	g, _ := NewStackedLSTM(2, 2, 4, 1, rng)
	x := tensor.NewTensor3(5, 3, 2)
	rng.FillNormal(x.Data, 1)
	// batchSize <= 0 falls back to the default without panicking.
	out := Predict(g, x, 0)
	if out.B != 5 {
		t.Errorf("Predict output batch %d", out.B)
	}
}

func TestGraphBackwardBeforeForwardPanics(t *testing.T) {
	g, _ := NewStackedLSTM(2, 2, 4, 1, tensor.NewRNG(31))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Backward(tensor.NewTensor3(1, 1, 2))
}
