package nn

import (
	"fmt"

	"podnas/internal/kernel"
	"podnas/internal/tensor"
)

// GraphInput is the sentinel node index denoting the network input.
const GraphInput = -1

// GraphNodeSpec describes one node of the stacked-LSTM DAG.
type GraphNodeSpec struct {
	// Inputs lists the source nodes feeding this node: GraphInput (-1) for
	// the network input or the index of an earlier node. Inputs[0] is the
	// chain predecessor; additional entries are skip connections.
	Inputs []int
	// Units selects the node body: 0 for Identity, >0 for an LSTM with that
	// many hidden units.
	Units int
}

// GraphSpec is a full network specification in topological order. The final
// node's output is the network output.
type GraphSpec struct {
	InputDim int
	Nodes    []GraphNodeSpec
	// NoMergeReLU disables the rectifier after skip-connection merges
	// (DESIGN.md ablation; the paper applies ReLU after every add).
	NoMergeReLU bool
}

// Validate checks topology: nonempty, inputs referencing earlier nodes only.
func (s GraphSpec) Validate() error {
	if s.InputDim < 1 {
		return fmt.Errorf("nn: graph input dim %d", s.InputDim)
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("nn: graph has no nodes")
	}
	for i, n := range s.Nodes {
		if len(n.Inputs) == 0 {
			return fmt.Errorf("nn: node %d has no inputs", i)
		}
		for _, in := range n.Inputs {
			if in != GraphInput && (in < 0 || in >= i) {
				return fmt.Errorf("nn: node %d references invalid input %d", i, in)
			}
		}
		if n.Units < 0 {
			return fmt.Errorf("nn: node %d has negative units", i)
		}
	}
	return nil
}

// graphNode is the compiled form of a GraphNodeSpec.
type graphNode struct {
	inputs []int
	// merge machinery, present when len(inputs) > 1: per-input projection
	// Dense layers (no activation), summed, then rectified — the paper's
	// skip-connection semantics.
	proj []*Dense
	relu *ReLU
	body Layer // Identity or LSTM

	// forward caches
	out     *tensor.Tensor3
	mergeIn []*tensor.Tensor3
}

// Graph is a compiled stacked-LSTM DAG network.
type Graph struct {
	spec   GraphSpec
	nodes  []*graphNode
	params []*Param
	outDim int
	es     *engineState // execution policy + arenas shared by all layers

	// backward scratch: per-node accumulated output gradients
	douts []*tensor.Tensor3
	dIn   *tensor.Tensor3
}

// SetEngine selects the compute path for every layer: EngineFused (the
// default kernel path) or EngineReference (the preserved pre-kernel
// scalar path, which reproduces pre-kernel checkpoints bit for bit).
func (g *Graph) SetEngine(e Engine) { g.es.engine = e }

// Engine returns the active compute engine.
func (g *Graph) Engine() Engine { return g.es.engine }

// SetArenas toggles arena-backed scratch for the fused engine (default
// on). Off allocates every buffer fresh — the bit-identity oracle the
// arena property test compares against.
func (g *Graph) SetArenas(enabled bool) { g.es.noArena = !enabled }

// SetKernelConfig sets the kernel execution policy (workers, parallel
// threshold, SIMD selection) for every layer of the network.
func (g *Graph) SetKernelConfig(cfg kernel.Config) { g.es.cfg = cfg }

// KernelConfig returns the active kernel execution policy.
func (g *Graph) KernelConfig() kernel.Config { return g.es.cfg }

// NewGraph compiles spec into a trainable network, initializing parameters
// from rng.
func NewGraph(spec GraphSpec, rng *tensor.RNG) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{spec: spec, es: newEngineState()}
	dims := make([]int, len(spec.Nodes))
	dimOf := func(idx int) int {
		if idx == GraphInput {
			return spec.InputDim
		}
		return dims[idx]
	}
	for i, ns := range spec.Nodes {
		node := &graphNode{inputs: ns.Inputs}
		mergedDim := dimOf(ns.Inputs[0])
		if len(ns.Inputs) > 1 {
			// Project every incoming tensor to the chain input's width.
			node.proj = make([]*Dense, len(ns.Inputs))
			for j, in := range ns.Inputs {
				node.proj[j] = NewDense(fmt.Sprintf("n%d.proj%d", i, j), dimOf(in), mergedDim, rng)
				node.proj[j].es = g.es
				g.params = append(g.params, node.proj[j].Params()...)
			}
			if !spec.NoMergeReLU {
				node.relu = NewReLU(mergedDim)
				node.relu.es = g.es
			}
		}
		if ns.Units > 0 {
			lstm := NewLSTM(fmt.Sprintf("n%d.lstm", i), mergedDim, ns.Units, rng)
			lstm.es = g.es
			node.body = lstm
			g.params = append(g.params, lstm.Params()...)
			dims[i] = ns.Units
		} else {
			node.body = NewIdentity(mergedDim)
			dims[i] = mergedDim
		}
		g.nodes = append(g.nodes, node)
	}
	g.outDim = dims[len(dims)-1]
	return g, nil
}

// OutDim returns the network output feature dimension.
func (g *Graph) OutDim() int { return g.outDim }

// InDim returns the network input feature dimension.
func (g *Graph) InDim() int { return g.spec.InputDim }

// Params returns all learnable parameters.
func (g *Graph) Params() []*Param { return g.params }

// ParamCount returns the total number of learnable weights — the paper's
// evaluation-cost proxy (AE drifts toward smaller networks).
func (g *Graph) ParamCount() int {
	n := 0
	for _, p := range g.params {
		n += len(p.W)
	}
	return n
}

// Forward runs the network on x (B,T,InputDim) and returns (B,T,OutDim).
//
//podnas:hotpath
func (g *Graph) Forward(x *tensor.Tensor3) *tensor.Tensor3 {
	if x.F != g.spec.InputDim {
		panic(fmt.Sprintf("nn: graph expects %d features, got %d", g.spec.InputDim, x.F))
	}
	// Recycle the forward arena: every activation from the previous
	// Forward (including the tensor it returned) is dead from here on.
	if g.es.engine == EngineFused && !g.es.noArena {
		g.es.fwd.Reset()
	}
	outOf := func(idx int) *tensor.Tensor3 {
		if idx == GraphInput {
			return x
		}
		return g.nodes[idx].out
	}
	for _, node := range g.nodes {
		var merged *tensor.Tensor3
		if len(node.inputs) == 1 {
			merged = outOf(node.inputs[0])
		} else {
			node.mergeIn = node.mergeIn[:0]
			var sum *tensor.Tensor3
			for j, in := range node.inputs {
				src := outOf(in)
				node.mergeIn = append(node.mergeIn, src)
				p := node.proj[j].Forward(src)
				if sum == nil {
					sum = p
				} else {
					tensor.AddTensor3(sum, p)
				}
			}
			if node.relu != nil {
				merged = node.relu.Forward(sum)
			} else {
				merged = sum
			}
		}
		node.out = node.body.Forward(merged)
	}
	return g.nodes[len(g.nodes)-1].out
}

// Backward propagates dOut (gradient w.r.t. the network output) through the
// DAG, accumulating parameter gradients, and returns the gradient with
// respect to the network input.
//
//podnas:hotpath
func (g *Graph) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 {
	n := len(g.nodes)
	if cap(g.douts) < n {
		g.douts = make([]*tensor.Tensor3, n) //podnas:allow hotalloc douts growth is amortized across calls
	}
	g.douts = g.douts[:n]
	for i := range g.douts {
		g.douts[i] = nil
	}
	g.dIn = nil
	g.douts[n-1] = dOut
	// Recycle the backward arena; forward caches live in the other one.
	if g.es.engine == EngineFused && !g.es.noArena {
		g.es.bwd.Reset()
	}

	// cloneGrad copies a gradient the accumulator must own: arena-backed
	// under the fused engine, a heap clone under the reference engine.
	cloneGrad := func(src *tensor.Tensor3) *tensor.Tensor3 {
		if g.es.engine == EngineReference {
			return src.Clone()
		}
		data := g.es.alloc(g.es.bwd, len(src.Data)) //podnas:allow hotalloc inlined es.alloc in cloneGrad; noArena oracle mode only
		copy(data, src.Data)
		return tensor.Tensor3FromSlice(src.B, src.T, src.F, data)
	}
	accumulate := func(idx int, grad *tensor.Tensor3) {
		if idx == GraphInput {
			if g.dIn == nil {
				g.dIn = cloneGrad(grad)
			} else {
				tensor.AddTensor3(g.dIn, grad)
			}
			return
		}
		if g.douts[idx] == nil {
			g.douts[idx] = cloneGrad(grad)
		} else {
			tensor.AddTensor3(g.douts[idx], grad)
		}
	}

	for i := n - 1; i >= 0; i-- {
		node := g.nodes[i]
		d := g.douts[i]
		if d == nil {
			// Dead node: nothing consumed its output (cannot happen for the
			// chain, but guard anyway).
			continue
		}
		dMerged := node.body.Backward(d)
		if len(node.inputs) == 1 {
			accumulate(node.inputs[0], dMerged)
			continue
		}
		dSum := dMerged
		if node.relu != nil {
			dSum = node.relu.Backward(dMerged)
		}
		for j, in := range node.inputs {
			accumulate(in, node.proj[j].Backward(dSum))
		}
	}
	if g.dIn == nil {
		g.dIn = tensor.NewTensor3(dOut.B, dOut.T, g.spec.InputDim)
	}
	return g.dIn
}

// NewStackedLSTM is a convenience constructor for a plain stacked LSTM
// (the paper's manually designed baselines): `layers` hidden LSTM layers of
// `units` each, followed by the constant LSTM(outDim) output layer.
func NewStackedLSTM(inDim, outDim, units, layers int, rng *tensor.RNG) (*Graph, error) {
	spec := GraphSpec{InputDim: inDim}
	prev := GraphInput
	for i := 0; i < layers; i++ {
		spec.Nodes = append(spec.Nodes, GraphNodeSpec{Inputs: []int{prev}, Units: units})
		prev = len(spec.Nodes) - 1
	}
	spec.Nodes = append(spec.Nodes, GraphNodeSpec{Inputs: []int{prev}, Units: outDim})
	return NewGraph(spec, rng)
}

// Spec returns the graph's immutable specification (for serialization).
func (g *Graph) Spec() GraphSpec { return g.spec }

// ExportWeights returns a name → values copy of every parameter, the
// serializable form of a trained network.
func (g *Graph) ExportWeights() map[string][]float64 {
	out := make(map[string][]float64, len(g.params))
	for _, p := range g.params {
		w := make([]float64, len(p.W))
		copy(w, p.W)
		out[p.Name] = w
	}
	return out
}

// ImportWeights loads previously exported weights into the network. Every
// parameter must be present with the exact length; Adam moments are reset.
func (g *Graph) ImportWeights(weights map[string][]float64) error {
	for _, p := range g.params {
		w, ok := weights[p.Name]
		if !ok {
			return fmt.Errorf("nn: missing weights for %s", p.Name)
		}
		if len(w) != len(p.W) {
			return fmt.Errorf("nn: %s has %d weights, want %d", p.Name, len(w), len(p.W))
		}
		copy(p.W, w)
		p.ZeroGrad()
		for i := range p.m {
			p.m[i], p.v[i] = 0, 0
		}
	}
	return nil
}
