// Package nn is a from-scratch neural-network library implementing exactly
// what the paper's search space needs: time-distributed dense layers, LSTM
// layers with full backpropagation through time, ReLU/identity ops, the
// projection+sum+ReLU skip-connection merge, the Adam optimizer, and MSE
// training with an R² validation metric. Networks are assembled from a
// directed-acyclic-graph specification mirroring DeepHyper's stacked-LSTM
// search space (paper §III-A).
//
// A network instance is not safe for concurrent use; parallel architecture
// evaluations each build their own network.
package nn

import (
	"fmt"
	"math"

	"podnas/internal/tensor"
)

// Param is one learnable tensor with its gradient and Adam moments.
type Param struct {
	Name string
	W    []float64 // weights
	G    []float64 // gradient accumulator
	m, v []float64 // Adam first/second moments
}

// NewParam allocates a named parameter of n weights.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, W: make([]float64, n), G: make([]float64, n), m: make([]float64, n), v: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2014) with the paper's default
// hyperparameters: lr=0.001, β1=0.9, β2=0.999, ε=1e-8.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	step                  int
}

// NewAdam returns an Adam optimizer with the given learning rate and
// standard momentum constants.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter and clears gradients.
//
//podnas:hotpath
func (a *Adam) Step(params []*Param) {
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		for i, g := range p.G {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mhat := p.m[i] / b1c
			vhat := p.v[i] / b2c
			p.W[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// glorotUniform fills w with the Glorot/Xavier uniform initialization for a
// layer with the given fan-in and fan-out.
func glorotUniform(rng *tensor.RNG, w []float64, fanIn, fanOut int) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	rng.FillUniform(w, -limit, limit)
}

// checkFinite panics with a diagnostic if any value is NaN or Inf; used by
// tests and the trainer's divergence guard.
func checkFinite(name string, xs []float64) error {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("nn: %s[%d] is not finite (%g)", name, i, v)
		}
	}
	return nil
}
