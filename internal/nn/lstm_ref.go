package nn

import (
	"math"

	"podnas/internal/kernel"
	"podnas/internal/tensor"
)

// This file preserves the pre-kernel LSTM compute path (EngineReference)
// verbatim: four-pass scalar gate loops, library sigmoid/tanh, StepInto
// copies, and an allocation per step. It is both the numerical oracle for
// the fused path and the honest baseline nasbench measures in the same run.
// The GEMMs go through kernel.RefGemm, which keeps the original scalar
// accumulation order, so reference-engine results reproduce pre-kernel
// checkpoints bit for bit.

// refMatMulInto computes dst = a×b with pre-kernel scalar semantics.
func refMatMulInto(dst, a, b *tensor.Matrix) {
	kernel.RefGemm(dst.Kern(), a.Kern(), b.Kern(), false, false, false)
}

// refMatMul computes a×b into a fresh matrix with pre-kernel semantics.
func refMatMul(a, b *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(a.Rows, b.Cols)
	refMatMulInto(out, a, b)
	return out
}

// refMatMulTransB computes a×bᵀ with pre-kernel semantics.
func refMatMulTransB(a, b *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(a.Rows, b.Rows)
	kernel.RefGemm(out.Kern(), a.Kern(), b.Kern(), false, true, false)
	return out
}

// refMatMulTransAAddInto computes dst += aᵀ×b with pre-kernel semantics.
func refMatMulTransAAddInto(dst, a, b *tensor.Matrix) {
	kernel.RefGemm(dst.Kern(), a.Kern(), b.Kern(), true, false, true)
}

// forwardRef is the pre-kernel LSTM forward pass.
func (l *LSTM) forwardRef(x *tensor.Tensor3) *tensor.Tensor3 {
	b, t, h := x.B, x.T, l.hidden
	l.x, l.b, l.t = x, b, t
	l.rGates = tensor.NewTensor3(b, t, 4*h)
	l.rCells = tensor.NewTensor3(b, t, h)
	l.rTanhC = tensor.NewTensor3(b, t, h)
	l.rHs = tensor.NewTensor3(b, t, h)

	// Input contribution for every timestep in one GEMM: (B·T,F)·(F,4H).
	wx := tensor.FromSlice(l.in, 4*h, l.Wx.W)
	zAll := refMatMul(x.AsMatrix(), wx)

	wh := tensor.FromSlice(h, 4*h, l.Wh.W)
	hPrev := tensor.NewMatrix(b, h)  // h_{t-1}, zero at t=0
	zRec := tensor.NewMatrix(b, 4*h) // recurrent contribution buffer
	cPrev := tensor.NewMatrix(b, h)  // c_{t-1}, zero at t=0

	for step := 0; step < t; step++ {
		refMatMulInto(zRec, hPrev, wh)
		for bi := 0; bi < b; bi++ {
			// z for this (batch, step): input part + recurrent part + bias.
			zin := zAll.Row(bi*t + step)
			zr := zRec.Row(bi)
			gates := l.rGates.Data[(bi*t+step)*4*h : (bi*t+step+1)*4*h]
			cell := l.rCells.Data[(bi*t+step)*h : (bi*t+step+1)*h]
			tc := l.rTanhC.Data[(bi*t+step)*h : (bi*t+step+1)*h]
			hrow := l.rHs.Data[(bi*t+step)*h : (bi*t+step+1)*h]
			cp := cPrev.Row(bi)
			for j := 0; j < h; j++ {
				zi := zin[j] + zr[j] + l.B.W[j]
				zf := zin[h+j] + zr[h+j] + l.B.W[h+j]
				zg := zin[2*h+j] + zr[2*h+j] + l.B.W[2*h+j]
				zo := zin[3*h+j] + zr[3*h+j] + l.B.W[3*h+j]
				ig := sigmoid(zi)
				fg := sigmoid(zf)
				gg := math.Tanh(zg)
				og := sigmoid(zo)
				gates[j] = ig
				gates[h+j] = fg
				gates[2*h+j] = gg
				gates[3*h+j] = og
				c := fg*cp[j] + ig*gg
				cell[j] = c
				tcv := math.Tanh(c)
				tc[j] = tcv
				hrow[j] = og * tcv
			}
		}
		l.rHs.StepInto(hPrev, step)
		l.rCells.StepInto(cPrev, step)
	}
	return l.rHs.Clone()
}

// backwardRef is the pre-kernel LSTM backward pass.
func (l *LSTM) backwardRef(dOut *tensor.Tensor3) *tensor.Tensor3 {
	if l.x == nil {
		panic("nn: LSTM.Backward before Forward")
	}
	b, t, h := l.x.B, l.x.T, l.hidden

	dzAll := tensor.NewTensor3(b, t, 4*h) // pre-activation gate gradients
	dcNext := tensor.NewMatrix(b, h)
	dhNext := tensor.NewMatrix(b, h)
	wh := tensor.FromSlice(h, 4*h, l.Wh.W)
	dhRec := tensor.NewMatrix(b, h)
	dzStep := tensor.NewMatrix(b, 4*h)

	for step := t - 1; step >= 0; step-- {
		for bi := 0; bi < b; bi++ {
			base := (bi*t + step)
			gates := l.rGates.Data[base*4*h : (base+1)*4*h]
			tc := l.rTanhC.Data[base*h : (base+1)*h]
			dout := dOut.Data[base*h : (base+1)*h]
			dz := dzAll.Data[base*4*h : (base+1)*4*h]
			dcn := dcNext.Row(bi)
			dhn := dhNext.Row(bi)
			var cPrev []float64
			if step > 0 {
				cPrev = l.rCells.Data[(base-1)*h : base*h]
			}
			for j := 0; j < h; j++ {
				ig, fg, gg, og := gates[j], gates[h+j], gates[2*h+j], gates[3*h+j]
				dh := dout[j] + dhn[j]
				do := dh * tc[j]
				dc := dh*og*(1-tc[j]*tc[j]) + dcn[j]
				di := dc * gg
				dg := dc * ig
				var cp float64
				if cPrev != nil {
					cp = cPrev[j]
				}
				df := dc * cp
				dz[j] = di * ig * (1 - ig)
				dz[h+j] = df * fg * (1 - fg)
				dz[2*h+j] = dg * (1 - gg*gg)
				dz[3*h+j] = do * og * (1 - og)
				dcn[j] = dc * fg // becomes dcNext for step-1
			}
		}
		// dh_{t-1} += dz_t · Whᵀ ; dWh += h_{t-1}ᵀ · dz_t.
		dzAll.StepInto(dzStep, step)
		dhm := refMatMulTransB(dzStep, wh)
		copy(dhRec.Data, dhm.Data)
		dhNext, dhRec = dhRec, dhNext
		if step > 0 {
			hPrev := l.rHs.Step(step - 1)
			dwh := tensor.FromSlice(h, 4*h, l.Wh.G)
			refMatMulTransAAddInto(dwh, hPrev, dzStep)
		}
	}

	// Input-side gradients in bulk: dWx += Xᵀ·dZ, db += colsum(dZ),
	// dX = dZ·Wxᵀ over the flattened (B·T) view.
	dwx := tensor.FromSlice(l.in, 4*h, l.Wx.G)
	refMatMulTransAAddInto(dwx, l.x.AsMatrix(), dzAll.AsMatrix())
	rows := b * t
	for i := 0; i < rows; i++ {
		src := dzAll.Data[i*4*h : (i+1)*4*h]
		for j, v := range src {
			l.B.G[j] += v
		}
	}
	wx := tensor.FromSlice(l.in, 4*h, l.Wx.W)
	dxm := refMatMulTransB(dzAll.AsMatrix(), wx)
	dx := tensor.NewTensor3(b, t, l.in)
	copy(dx.Data, dxm.Data)
	return dx
}
