package nn

import (
	"context"
	"math"
	"testing"

	"podnas/internal/obs"
	"podnas/internal/tensor"
)

// TestTrainEmitsEpochTicks plants a recorder in the training context (as the
// search runners do) and asserts one epoch event per epoch, attributed to
// the evaluation index, with a finite loss.
func TestTrainEmitsEpochTicks(t *testing.T) {
	rng := tensor.NewRNG(31)
	g, err := NewStackedLSTM(2, 2, 6, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewTensor3(16, 3, 2)
	rng.FillNormal(x.Data, 1)
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] *= 0.3
	}
	ring := obs.NewRing(64)
	cfg := TrainConfig{
		Epochs: 4, BatchSize: 8, LR: 0.01, Seed: 2,
		Ctx: obs.WithEval(context.Background(), ring, 5),
	}
	if _, err := Train(g, x, y, cfg); err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) != cfg.Epochs {
		t.Fatalf("got %d events, want %d epoch ticks", len(evs), cfg.Epochs)
	}
	for i, e := range evs {
		if e.Kind != obs.KindEpoch {
			t.Fatalf("event %d kind %v, want epoch", i, e.Kind)
		}
		if e.Eval != 5 {
			t.Errorf("epoch tick attributed to evaluation %d, want 5", e.Eval)
		}
		if e.Epoch != i {
			t.Errorf("epoch tick %d carries epoch %d", i, e.Epoch)
		}
		if math.IsNaN(e.Loss) || math.IsInf(e.Loss, 0) || e.Loss == 0 {
			t.Errorf("epoch %d loss %v", i, e.Loss)
		}
	}
}

// TestTrainWithoutRecorderEmitsNothing is the zero-cost contract: a context
// without a recorder (or no context at all) produces no events.
func TestTrainWithoutRecorderEmitsNothing(t *testing.T) {
	rng := tensor.NewRNG(32)
	g, err := NewStackedLSTM(2, 2, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewTensor3(8, 2, 2)
	rng.FillNormal(x.Data, 1)
	y := x.Clone()
	if _, err := Train(g, x, y, TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.01, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := obs.RecorderFrom(context.Background()); ok || rec != nil {
		t.Error("background context should carry no recorder")
	}
}
