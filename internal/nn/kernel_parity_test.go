package nn

import (
	"math"
	"testing"

	"podnas/internal/kernel"
	"podnas/internal/tensor"
)

// paritySpec exercises every layer kind the engines implement: LSTMs,
// skip-connection Dense projections, merge ReLUs, and an Identity node.
func paritySpec() GraphSpec {
	return GraphSpec{
		InputDim: 6,
		Nodes: []GraphNodeSpec{
			{Inputs: []int{GraphInput}, Units: 9},
			{Inputs: []int{0, GraphInput}, Units: 0},
			{Inputs: []int{1, 0}, Units: 7},
			{Inputs: []int{2}, Units: 5},
		},
	}
}

func randT3(rng *tensor.RNG, b, t, f int) *tensor.Tensor3 {
	x := tensor.NewTensor3(b, t, f)
	rng.FillNormal(x.Data, 1)
	return x
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / scale
}

func maxRelDiffSlice(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := relDiff(a[i], b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestFusedMatchesReferenceGradients pins the fused engine to the
// preserved pre-kernel path at 1e-9: outputs, parameter gradients, and
// the input gradient. The engines may reorder float sums (fused GEMM
// tiling, fast-exp activations), so bitwise equality is not expected —
// 1e-9 relative is.
func TestFusedMatchesReferenceGradients(t *testing.T) {
	const tol = 1e-9
	spec := paritySpec()
	gF, err := NewGraph(spec, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	gR, err := NewGraph(spec, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	gR.SetEngine(EngineReference)

	rng := tensor.NewRNG(11)
	x := randT3(rng, 4, 5, spec.InputDim)
	outF := gF.Forward(x)
	outR := gR.Forward(x)
	if d := maxRelDiffSlice(outF.Data, outR.Data); d > tol {
		t.Fatalf("forward outputs differ by %g (tol %g)", d, tol)
	}

	dOut := randT3(rng, 4, 5, gF.OutDim())
	dInF := gF.Backward(dOut)
	dInR := gR.Backward(dOut)
	if d := maxRelDiffSlice(dInF.Data, dInR.Data); d > tol {
		t.Fatalf("input gradients differ by %g (tol %g)", d, tol)
	}
	pF, pR := gF.Params(), gR.Params()
	if len(pF) != len(pR) {
		t.Fatalf("param count mismatch %d vs %d", len(pF), len(pR))
	}
	for i := range pF {
		if d := maxRelDiffSlice(pF[i].G, pR[i].G); d > tol {
			t.Errorf("gradient %s differs by %g (tol %g)", pF[i].Name, d, tol)
		}
	}
}

func trainParityGraph(t *testing.T, seed uint64, mutate func(*Graph)) map[string][]float64 {
	t.Helper()
	spec := paritySpec()
	g, err := NewGraph(spec, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(g)
	}
	rng := tensor.NewRNG(seed + 100)
	x := randT3(rng, 10, 4, spec.InputDim)
	y := randT3(rng, 10, 4, g.OutDim())
	cfg := TrainConfig{Epochs: 3, BatchSize: 4, LR: 0.01, Seed: seed, InputNoise: 0.01, WeightDecay: 0.001}
	if _, err := Train(g, x, y, cfg); err != nil {
		t.Fatal(err)
	}
	return g.ExportWeights()
}

func requireBitIdentical(t *testing.T, what string, a, b map[string][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: weight map sizes differ %d vs %d", what, len(a), len(b))
	}
	for name, wa := range a {
		wb, ok := b[name]
		if !ok {
			t.Fatalf("%s: missing %s", what, name)
		}
		for i := range wa {
			if math.Float64bits(wa[i]) != math.Float64bits(wb[i]) {
				t.Fatalf("%s: %s[%d] differs bitwise: %x vs %x",
					what, name, i, math.Float64bits(wa[i]), math.Float64bits(wb[i]))
			}
		}
	}
}

// TestArenaAllocBitIdentity is the arena discipline property test: a
// full training run with pooled arenas must be bit-identical to the same
// run allocating every buffer fresh, across seeds. Any kernel or layer
// reading stale arena memory (dirty Alloc without full overwrite) breaks
// this immediately.
func TestArenaAllocBitIdentity(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		arena := trainParityGraph(t, seed, nil)
		fresh := trainParityGraph(t, seed, func(g *Graph) { g.SetArenas(false) })
		requireBitIdentical(t, "arena-vs-alloc", arena, fresh)
	}
}

// TestParallelBPTTDeterminism pins the deterministic-reduction contract
// end to end: training with one kernel worker and with aggressive
// goroutine fan-out (8 workers, parallel threshold 1, so even tiny GEMMs
// and gate sweeps split) must produce bit-identical checkpoints.
func TestParallelBPTTDeterminism(t *testing.T) {
	serial := trainParityGraph(t, 5, func(g *Graph) {
		g.SetKernelConfig(kernel.Config{Workers: 1})
	})
	parallel := trainParityGraph(t, 5, func(g *Graph) {
		g.SetKernelConfig(kernel.Config{Workers: 8, ParallelThreshold: 1})
	})
	requireBitIdentical(t, "serial-vs-parallel", serial, parallel)
}

// TestTrainConfigWorkersPlumbing checks that TrainConfig.Workers reaches
// the graph's kernel policy and changes nothing numerically.
func TestTrainConfigWorkersPlumbing(t *testing.T) {
	spec := paritySpec()
	g, err := NewGraph(spec, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(109)
	x := randT3(rng, 6, 3, spec.InputDim)
	y := randT3(rng, 6, 3, g.OutDim())
	cfg := TrainConfig{Epochs: 1, BatchSize: 3, LR: 0.01, Seed: 9, Workers: 4}
	if _, err := Train(g, x, y, cfg); err != nil {
		t.Fatal(err)
	}
	if got := g.KernelConfig().Workers; got != 4 {
		t.Fatalf("TrainConfig.Workers not plumbed: got %d", got)
	}
}
