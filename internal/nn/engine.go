package nn

import "podnas/internal/kernel"

// Engine selects the compute path a network runs on.
type Engine int

const (
	// EngineFused is the default: kernel-layer blocked GEMM, fused
	// gate sweeps, and arena-backed scratch.
	EngineFused Engine = iota
	// EngineReference is the pre-kernel scalar path (naive GEMM,
	// library activations, alloc-per-step), preserved so benchmarks
	// can measure the baseline in the same run and so the fused path
	// has an oracle; reference-engine results reproduce pre-kernel
	// checkpoints bit for bit.
	EngineReference
)

// engineState is the execution policy and scratch shared by every
// layer of one network. Two arenas, not one: forward caches (gates,
// cell states) must survive until Backward consumes them, so the
// forward arena resets at Graph.Forward and the backward arena at
// Graph.Backward.
type engineState struct {
	engine  Engine
	noArena bool // alloc-per-step (bit-identity oracle for the arenas)
	// standalone marks a state owned by a single layer used outside a
	// Graph; the layer then recycles the arenas itself at each pass
	// (a Graph resets them once per Forward/Backward instead).
	standalone bool
	cfg        kernel.Config
	fwd        *kernel.Arena
	bwd        *kernel.Arena
}

func newEngineState() *engineState {
	return &engineState{fwd: kernel.NewArena(), bwd: kernel.NewArena()}
}

// alloc returns n floats of scratch from arena a. The memory is DIRTY
// in arena mode and zeroed in noArena mode, so callers must fully
// overwrite it; the arena-vs-alloc bit-identity test enforces exactly
// this discipline.
//
//podnas:hotpath
func (es *engineState) alloc(a *kernel.Arena, n int) []float64 {
	if es.noArena {
		return make([]float64, n) //podnas:allow hotalloc noArena oracle mode allocates per call by design; arena mode is zero-alloc
	}
	return a.Alloc(n)
}

// allocZero is alloc with guaranteed-zero contents in both modes.
//
//podnas:hotpath
func (es *engineState) allocZero(a *kernel.Arena, n int) []float64 {
	if es.noArena {
		return make([]float64, n) //podnas:allow hotalloc noArena oracle mode allocates per call by design; arena mode is zero-alloc
	}
	return a.AllocZero(n)
}

// parallel reports whether batch-row sweeps should fan out; the serial
// call sites keep their loops inline so the default single-worker path
// allocates no closures.
func (es *engineState) parallel() bool {
	return es.cfg.Workers > 1
}

// engined is embedded by layers to share one engineState per network;
// a standalone layer (constructed outside NewGraph) lazily creates its
// own.
type engined struct{ es *engineState }

func (e *engined) state() *engineState {
	if e.es == nil {
		e.es = newEngineState()
		e.es.standalone = true
	}
	return e.es
}

// resetFwd and resetBwd recycle a standalone layer's arenas at pass
// boundaries; inside a Graph the graph does this once per pass instead.
func (es *engineState) resetFwd() {
	if es.standalone && !es.noArena {
		es.fwd.Reset()
	}
}

func (es *engineState) resetBwd() {
	if es.standalone && !es.noArena {
		es.bwd.Reset()
	}
}
