package nn

import (
	"context"
	"fmt"
	"math"
	"time"

	"podnas/internal/metrics"
	"podnas/internal/obs"
	"podnas/internal/obs/span"
	"podnas/internal/tensor"
)

// TrainConfig holds the training hyperparameters. The paper fixes batch size
// 64, learning rate 0.001, Adam, 20 epochs during the search and 100 epochs
// for posttraining.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      uint64
	// InputNoise adds zero-mean Gaussian jitter (this standard deviation,
	// in scaled units) to every training input — a standard regularizer for
	// small windowed data sets that pushes the network toward smooth,
	// extrapolation-friendly functions.
	InputNoise float64
	// WeightDecay applies decoupled L2 shrinkage per step (AdamW-style).
	WeightDecay float64
	// EpochCallback, when non-nil, is invoked after every epoch with the
	// epoch index and the epoch's mean training loss (used by the Fig 5
	// convergence trace).
	EpochCallback func(epoch int, loss float64)
	// Ctx, when non-nil, is checked at every epoch boundary; once it is
	// cancelled Train stops and returns the context's error wrapped, so a
	// runner deadline or per-evaluation timeout actually interrupts an
	// in-flight training instead of waiting for it to finish.
	Ctx context.Context
	// Workers, when > 0, caps the goroutines a single kernel call may fan
	// out to during this training run (kernel.Config.Workers). Results are
	// bit-identical for any value; 0 leaves the graph's policy unchanged.
	Workers int
}

// DefaultTrainConfig returns the paper's search-time hyperparameters.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 20, BatchSize: 64, LR: 0.001, Seed: 1}
}

// MSELoss computes the mean squared error between pred and target and the
// gradient of the loss with respect to pred.
func MSELoss(pred, target *tensor.Tensor3) (float64, *tensor.Tensor3) {
	return MSELossInto(nil, pred, target)
}

// MSELossInto is MSELoss writing the gradient into grad's storage when it
// has the capacity (a nil grad allocates). Returns the loss and the
// gradient tensor; the training loop threads grad through steps so the
// loss gradient costs no allocation after the first batch.
//
//podnas:hotpath
func MSELossInto(grad *tensor.Tensor3, pred, target *tensor.Tensor3) (float64, *tensor.Tensor3) {
	if len(pred.Data) != len(target.Data) {
		panic(fmt.Sprintf("nn: MSELoss shape mismatch %d vs %d", len(pred.Data), len(target.Data)))
	}
	need := len(pred.Data)
	if grad == nil {
		grad = &tensor.Tensor3{} //podnas:allow hotalloc nil-grad first call only; the training loop threads grad
	}
	if cap(grad.Data) < need {
		grad.Data = make([]float64, need) //podnas:allow hotalloc grad buffer growth is amortized after the first batch
	}
	grad.B, grad.T, grad.F = pred.B, pred.T, pred.F
	grad.Data = grad.Data[:need]
	n := float64(need)
	var loss float64
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// Train fits g to (x, y) with minibatch Adam/MSE. It returns the final
// epoch's mean training loss, or an error if training diverged (non-finite
// loss or weights).
func Train(g *Graph, x, y *tensor.Tensor3, cfg TrainConfig) (float64, error) {
	if x.B != y.B || x.T != y.T {
		return 0, fmt.Errorf("nn: Train shapes (B=%d,T=%d) vs (B=%d,T=%d)", x.B, x.T, y.B, y.T)
	}
	if x.B == 0 {
		return 0, fmt.Errorf("nn: Train on empty data")
	}
	if cfg.Epochs < 1 || cfg.BatchSize < 1 || cfg.LR <= 0 {
		return 0, fmt.Errorf("nn: invalid train config %+v", cfg)
	}
	// A search runner plants a Recorder (and the evaluation index it is
	// scoring) in cfg.Ctx; when present, every epoch emits a live training
	// tick without Train needing an explicit observability parameter.
	recorder, _ := obs.RecorderFrom(cfg.Ctx)
	evalIdx, _ := obs.EvalFrom(cfg.Ctx)
	// A planted span context additionally turns each epoch into a trace span
	// (child of the planted "eval"/"train" span). Span timing is pure
	// telemetry: it never touches the RNG, the data order, or the weights.
	trainSpan, _ := span.From(cfg.Ctx)
	tracing := recorder != nil && trainSpan.Valid()
	if cfg.Workers > 0 {
		kcfg := g.KernelConfig()
		kcfg.Workers = cfg.Workers
		g.SetKernelConfig(kcfg)
	}
	opt := NewAdam(cfg.LR)
	rng := tensor.NewRNG(cfg.Seed)
	idx := make([]int, x.B)
	for i := range idx {
		idx[i] = i
	}
	// Reused minibatch scratch: with the layer arenas these make the
	// steady-state training step allocation-free.
	var bx, by, grad *tensor.Tensor3
	var epochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return epochLoss, fmt.Errorf("nn: training interrupted at epoch %d: %w", epoch, err)
			}
		}
		var epochT0 time.Time
		if tracing {
			epochT0 = time.Now() //podnas:allow detrand span timing is telemetry; it never feeds the shuffle, noise, or weights
		}
		rng.Shuffle(idx)
		epochLoss = 0
		batches := 0
		for lo := 0; lo < len(idx); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			bx = x.GatherInto(bx, idx[lo:hi])
			by = y.GatherInto(by, idx[lo:hi])
			if cfg.InputNoise > 0 {
				for i := range bx.Data {
					bx.Data[i] += cfg.InputNoise * rng.NormFloat64()
				}
			}
			pred := g.Forward(bx)
			var loss float64
			loss, grad = MSELossInto(grad, pred, by)
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				return loss, fmt.Errorf("nn: training diverged at epoch %d: loss is not finite (%g)", epoch, loss)
			}
			g.Backward(grad)
			if cfg.WeightDecay > 0 {
				decay := 1 - cfg.LR*cfg.WeightDecay
				for _, p := range g.params {
					for i := range p.W {
						p.W[i] *= decay
					}
				}
			}
			opt.Step(g.params)
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		if recorder != nil {
			recorder.Record(obs.Event{Kind: obs.KindEpoch, Eval: evalIdx, Epoch: epoch, Loss: epochLoss})
		}
		if tracing {
			esc := span.Derive(trainSpan, "epoch", uint64(epoch))
			e := span.End(esc, trainSpan.Span, "epoch", time.Since(epochT0)) //podnas:allow detrand span timing is telemetry; it never feeds the shuffle, noise, or weights
			e.Eval, e.Epoch = evalIdx, epoch
			recorder.Record(e)
		}
		if cfg.EpochCallback != nil {
			cfg.EpochCallback(epoch, epochLoss)
		}
	}
	for _, p := range g.params {
		if err := checkFinite(p.Name, p.W); err != nil {
			return epochLoss, fmt.Errorf("nn: non-finite weights after training: %w", err)
		}
	}
	return epochLoss, nil
}

// Predict runs the network on x in inference mode, batching to bound peak
// memory.
func Predict(g *Graph, x *tensor.Tensor3, batchSize int) *tensor.Tensor3 {
	if batchSize < 1 {
		batchSize = 256
	}
	out := tensor.NewTensor3(x.B, x.T, g.OutDim())
	idx := make([]int, 0, batchSize)
	var bx *tensor.Tensor3
	for lo := 0; lo < x.B; lo += batchSize {
		hi := lo + batchSize
		if hi > x.B {
			hi = x.B
		}
		idx = idx[:0]
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		bx = x.GatherInto(bx, idx)
		pred := g.Forward(bx)
		copy(out.Data[lo*x.T*g.OutDim():hi*x.T*g.OutDim()], pred.Data)
	}
	return out
}

// EvaluateR2 returns the coefficient of determination of g's predictions on
// (x, y) — the paper's search reward and reporting metric.
func EvaluateR2(g *Graph, x, y *tensor.Tensor3) float64 {
	pred := Predict(g, x, 256)
	return metrics.R2(pred.Data, y.Data)
}
