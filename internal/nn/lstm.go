package nn

import (
	"fmt"
	"math"

	"podnas/internal/kernel"
	"podnas/internal/tensor"
)

// LSTM is a standard long short-term memory layer returning the full hidden
// sequence (Keras `return_sequences=True`), which is what stacked LSTMs and
// the sequence-to-sequence forecast task require.
//
// Gate layout inside the 4H dimension is [input, forget, cell, output]:
//
//	z_t = x_t·Wx + h_{t-1}·Wh + b
//	i = σ(z_i), f = σ(z_f), g = tanh(z_g), o = σ(z_o)
//	c_t = f ∘ c_{t-1} + i ∘ g
//	h_t = o ∘ tanh(c_t)
//
// The default (fused) engine computes the concatenated [i|f|g|o] gate block
// with one bulk GEMM for the input projection, one packed GEMM per timestep
// for the recurrence writing straight into strided views of the gate buffer,
// and one fused activation sweep per row (kernel.LSTMForwardStep). Backward
// mirrors it with kernel.LSTMBackwardStep plus bulk weight-gradient GEMMs.
// All scratch comes from the network's arenas, so steady-state training
// steps allocate nothing here. The reference engine (lstm_ref.go) preserves
// the pre-kernel four-pass loop bit for bit.
type LSTM struct {
	engined
	in, hidden int
	Wx, Wh, B  *Param

	// Fused-path forward caches (arena-backed, valid until the next
	// Forward; the returned hidden tensor aliases hs).
	x     *tensor.Tensor3
	b, t  int
	gates []float64 // (B,T,4H) post-activation gate values i,f,g,o
	cells []float64 // (B,T,H) cell states c_t
	tanhC []float64 // (B,T,H) tanh(c_t)
	hs    []float64 // (B,T,H) hidden states h_t
	zeroH []float64 // read-only zeros standing in for c_{-1}

	pbWh  *kernel.PackedB // Wh packed once per Forward, reused every step
	pbWhT *kernel.PackedB // Whᵀ packed once per Backward for the dh carry

	// Reference-path caches (heap tensors, pre-kernel behavior).
	rGates, rCells, rTanhC, rHs *tensor.Tensor3
}

// NewLSTM returns an LSTM layer with Glorot-initialized kernels and the
// forget-gate bias set to 1 (Keras' unit_forget_bias).
func NewLSTM(name string, in, hidden int, rng *tensor.RNG) *LSTM {
	if in < 1 || hidden < 1 {
		panic(fmt.Sprintf("nn: invalid LSTM dims in=%d hidden=%d", in, hidden))
	}
	l := &LSTM{
		in: in, hidden: hidden,
		Wx: NewParam(name+".Wx", in*4*hidden),
		Wh: NewParam(name+".Wh", hidden*4*hidden),
		B:  NewParam(name+".b", 4*hidden),
	}
	glorotUniform(rng, l.Wx.W, in, 4*hidden)
	glorotUniform(rng, l.Wh.W, hidden, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		l.B.W[j] = 1 // forget-gate bias
	}
	return l
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward runs the recurrence over all timesteps of x (B,T,in) and returns
// the hidden sequence (B,T,hidden). The result aliases arena storage owned
// by this layer: consume or copy it before the next Forward.
//
//podnas:hotpath
func (l *LSTM) Forward(x *tensor.Tensor3) *tensor.Tensor3 {
	if x.F != l.in {
		panic(fmt.Sprintf("nn: LSTM expects %d features, got %d", l.in, x.F))
	}
	es := l.state() //podnas:allow hotalloc lazy one-time engineState init per layer
	if es.engine == EngineReference {
		return l.forwardRef(x)
	}
	es.resetFwd()
	b, t, h := x.B, x.T, l.hidden
	h4 := 4 * h
	l.x, l.b, l.t = x, b, t
	l.gates = es.alloc(es.fwd, b*t*h4) //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	l.cells = es.alloc(es.fwd, b*t*h)  //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	l.tanhC = es.alloc(es.fwd, b*t*h)  //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	l.hs = es.alloc(es.fwd, b*t*h)     //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	if cap(l.zeroH) < h {
		l.zeroH = make([]float64, h) //podnas:allow hotalloc zeroH growth is amortized across steps
	}

	// Input contribution for every timestep in one GEMM, written straight
	// into the gate buffer: (B·T,F)·(F,4H), then the bias.
	es.cfg.Gemm(kernel.MatOf(b*t, h4, l.gates),
		kernel.MatOf(b*t, l.in, x.Data),
		kernel.MatOf(l.in, h4, l.Wx.W), false, false, false)
	for r := 0; r < b*t; r++ {
		row := l.gates[r*h4 : r*h4+h4]
		for j, bv := range l.B.W {
			row[j] += bv
		}
	}

	// Recurrent part: z_t += h_{t-1}·Wh through strided timestep views of
	// the shared buffers (no StepInto copies), with Wh packed once. The
	// t=0 recurrent GEMM is skipped outright since h_{-1} is zero.
	l.pbWh = es.cfg.PackB(l.pbWh, kernel.MatOf(h, h4, l.Wh.W), false)
	for step := 0; step < t; step++ {
		if step > 0 {
			zStep := kernel.Mat{R: b, C: h4, Stride: t * h4, Data: l.gates[step*h4:]}
			hPrev := kernel.Mat{R: b, C: h, Stride: t * h, Data: l.hs[(step-1)*h:]}
			es.cfg.GemmPacked(zStep, hPrev, false, l.pbWh, true)
		}
		if es.parallel() {
			step := step
			es.cfg.ParallelRows(b, 40*h4, func(lo, hi int) { l.forwardSweep(lo, hi, step) }) //podnas:allow hotalloc ParallelRows sweep closure; serial path avoids it
		} else {
			l.forwardSweep(0, b, step)
		}
	}
	return tensor.Tensor3FromSlice(b, t, h, l.hs)
}

// forwardSweep applies the fused activation update for batch rows [lo, hi)
// of one timestep. Rows are disjoint, so any partition is bit-identical.
//
//podnas:hotpath
func (l *LSTM) forwardSweep(lo, hi, step int) {
	h, t := l.hidden, l.t
	h4 := 4 * h
	for bi := lo; bi < hi; bi++ {
		base := bi*t + step
		cp := l.zeroH[:h]
		if step > 0 {
			cp = l.cells[(base-1)*h : base*h]
		}
		kernel.LSTMForwardStep(
			l.gates[base*h4:base*h4+h4], cp,
			l.cells[base*h:base*h+h],
			l.tanhC[base*h:base*h+h],
			l.hs[base*h:base*h+h])
	}
}

// Backward consumes dOut (B,T,hidden), accumulates gradients for Wx, Wh, b,
// and returns the gradient with respect to the input (B,T,in). The result
// aliases arena storage valid until the next Backward.
//
//podnas:hotpath
func (l *LSTM) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 {
	es := l.state() //podnas:allow hotalloc lazy one-time engineState init per layer
	if es.engine == EngineReference {
		return l.backwardRef(dOut)
	}
	if l.x == nil {
		panic("nn: LSTM.Backward before Forward")
	}
	es.resetBwd()
	b, t, h := l.b, l.t, l.hidden
	h4 := 4 * h
	dz := es.alloc(es.bwd, b*t*h4)   //podnas:allow hotalloc pre-activation gate gradients; inlined es.alloc fires only in noArena oracle mode
	dc := es.allocZero(es.bwd, b*h)  // cell-gradient carry
	dhn := es.allocZero(es.bwd, b*h) // recurrent hidden-gradient carry

	// Whᵀ packed once for the per-step dh_{t-1} = dz_t·Whᵀ recurrence.
	l.pbWhT = es.cfg.PackB(l.pbWhT, kernel.MatOf(h, h4, l.Wh.W), true)
	for step := t - 1; step >= 0; step-- {
		// Fused per-row sweep: reads the dhn carry from step+1, fills
		// dz_t, and updates the dc carry in place.
		if es.parallel() {
			step := step
			es.cfg.ParallelRows(b, 60*h4, func(lo, hi int) { l.backwardSweep(dOut, dz, dc, dhn, lo, hi, step) }) //podnas:allow hotalloc ParallelRows sweep closure; serial path avoids it
		} else {
			l.backwardSweep(dOut, dz, dc, dhn, 0, b, step)
		}
		if step > 0 {
			dzStep := kernel.Mat{R: b, C: h4, Stride: t * h4, Data: dz[step*h4:]}
			hPrev := kernel.Mat{R: b, C: h, Stride: t * h, Data: l.hs[(step-1)*h:]}
			// dh_{t-1} = dz_t·Whᵀ (overwrites the carry the sweep just
			// consumed); dWh += h_{t-1}ᵀ·dz_t.
			es.cfg.GemmPacked(kernel.MatOf(b, h, dhn), dzStep, false, l.pbWhT, false)
			es.cfg.Gemm(kernel.MatOf(h, h4, l.Wh.G), hPrev, dzStep, true, false, true)
		}
	}

	// Input-side gradients in bulk: dWx += Xᵀ·dZ, db += colsum(dZ),
	// dX = dZ·Wxᵀ over the flattened (B·T) view.
	es.cfg.Gemm(kernel.MatOf(l.in, h4, l.Wx.G),
		kernel.MatOf(b*t, l.in, l.x.Data),
		kernel.MatOf(b*t, h4, dz), true, false, true)
	for r := 0; r < b*t; r++ {
		src := dz[r*h4 : r*h4+h4]
		for j, v := range src {
			l.B.G[j] += v
		}
	}
	dx := es.alloc(es.bwd, b*t*l.in) //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	es.cfg.Gemm(kernel.MatOf(b*t, l.in, dx),
		kernel.MatOf(b*t, h4, dz),
		kernel.MatOf(l.in, h4, l.Wx.W), false, true, false)
	return tensor.Tensor3FromSlice(b, t, l.in, dx)
}

// backwardSweep runs the fused BPTT gate sweep for batch rows [lo, hi) of
// one timestep.
//
//podnas:hotpath
func (l *LSTM) backwardSweep(dOut *tensor.Tensor3, dz, dc, dhn []float64, lo, hi, step int) {
	h, t := l.hidden, l.t
	h4 := 4 * h
	for bi := lo; bi < hi; bi++ {
		base := bi*t + step
		var cPrev []float64
		if step > 0 {
			cPrev = l.cells[(base-1)*h : base*h]
		}
		kernel.LSTMBackwardStep(
			l.gates[base*h4:base*h4+h4],
			l.tanhC[base*h:base*h+h],
			cPrev,
			dOut.Data[base*h:base*h+h],
			dhn[bi*h:bi*h+h],
			dc[bi*h:bi*h+h],
			dz[base*h4:base*h4+h4])
	}
}

// Params returns Wx, Wh and the bias.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// InDim returns the input feature dimension.
func (l *LSTM) InDim() int { return l.in }

// OutDim returns the hidden (output) dimension.
func (l *LSTM) OutDim() int { return l.hidden }

// Hidden returns the hidden width.
func (l *LSTM) Hidden() int { return l.hidden }
