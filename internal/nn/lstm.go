package nn

import (
	"fmt"
	"math"

	"podnas/internal/tensor"
)

// LSTM is a standard long short-term memory layer returning the full hidden
// sequence (Keras `return_sequences=True`), which is what stacked LSTMs and
// the sequence-to-sequence forecast task require.
//
// Gate layout inside the 4H dimension is [input, forget, cell, output]:
//
//	z_t = x_t·Wx + h_{t-1}·Wh + b
//	i = σ(z_i), f = σ(z_f), g = tanh(z_g), o = σ(z_o)
//	c_t = f ∘ c_{t-1} + i ∘ g
//	h_t = o ∘ tanh(c_t)
//
// Backward implements full backpropagation through time. The input
// contribution z = X·Wx for all timesteps is computed as a single GEMM over
// the flattened (B·T)×F view for cache efficiency; only the recurrent part
// walks timesteps.
type LSTM struct {
	in, hidden int
	Wx, Wh, B  *Param

	// Forward caches (valid until the next Forward call).
	x     *tensor.Tensor3
	gates *tensor.Tensor3 // (B,T,4H) post-activation gate values i,f,g,o
	cells *tensor.Tensor3 // (B,T,H) cell states c_t
	tanhC *tensor.Tensor3 // (B,T,H) tanh(c_t)
	hs    *tensor.Tensor3 // (B,T,H) hidden states h_t
}

// NewLSTM returns an LSTM layer with Glorot-initialized kernels and the
// forget-gate bias set to 1 (Keras' unit_forget_bias).
func NewLSTM(name string, in, hidden int, rng *tensor.RNG) *LSTM {
	if in < 1 || hidden < 1 {
		panic(fmt.Sprintf("nn: invalid LSTM dims in=%d hidden=%d", in, hidden))
	}
	l := &LSTM{
		in: in, hidden: hidden,
		Wx: NewParam(name+".Wx", in*4*hidden),
		Wh: NewParam(name+".Wh", hidden*4*hidden),
		B:  NewParam(name+".b", 4*hidden),
	}
	glorotUniform(rng, l.Wx.W, in, 4*hidden)
	glorotUniform(rng, l.Wh.W, hidden, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		l.B.W[j] = 1 // forget-gate bias
	}
	return l
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward runs the recurrence over all timesteps of x (B,T,in) and returns
// the hidden sequence (B,T,hidden).
func (l *LSTM) Forward(x *tensor.Tensor3) *tensor.Tensor3 {
	if x.F != l.in {
		panic(fmt.Sprintf("nn: LSTM expects %d features, got %d", l.in, x.F))
	}
	b, t, h := x.B, x.T, l.hidden
	l.x = x
	l.gates = tensor.NewTensor3(b, t, 4*h)
	l.cells = tensor.NewTensor3(b, t, h)
	l.tanhC = tensor.NewTensor3(b, t, h)
	l.hs = tensor.NewTensor3(b, t, h)

	// Input contribution for every timestep in one GEMM: (B·T,F)·(F,4H).
	wx := tensor.FromSlice(l.in, 4*h, l.Wx.W)
	zAll := tensor.MatMul(x.AsMatrix(), wx)

	wh := tensor.FromSlice(h, 4*h, l.Wh.W)
	hPrev := tensor.NewMatrix(b, h)  // h_{t-1}, zero at t=0
	zRec := tensor.NewMatrix(b, 4*h) // recurrent contribution buffer
	cPrev := tensor.NewMatrix(b, h)  // c_{t-1}, zero at t=0

	for step := 0; step < t; step++ {
		tensor.MatMulInto(zRec, hPrev, wh)
		for bi := 0; bi < b; bi++ {
			// z for this (batch, step): input part + recurrent part + bias.
			zin := zAll.Row(bi*t + step)
			zr := zRec.Row(bi)
			gates := l.gates.Data[(bi*t+step)*4*h : (bi*t+step+1)*4*h]
			cell := l.cells.Data[(bi*t+step)*h : (bi*t+step+1)*h]
			tc := l.tanhC.Data[(bi*t+step)*h : (bi*t+step+1)*h]
			hrow := l.hs.Data[(bi*t+step)*h : (bi*t+step+1)*h]
			cp := cPrev.Row(bi)
			for j := 0; j < h; j++ {
				zi := zin[j] + zr[j] + l.B.W[j]
				zf := zin[h+j] + zr[h+j] + l.B.W[h+j]
				zg := zin[2*h+j] + zr[2*h+j] + l.B.W[2*h+j]
				zo := zin[3*h+j] + zr[3*h+j] + l.B.W[3*h+j]
				ig := sigmoid(zi)
				fg := sigmoid(zf)
				gg := math.Tanh(zg)
				og := sigmoid(zo)
				gates[j] = ig
				gates[h+j] = fg
				gates[2*h+j] = gg
				gates[3*h+j] = og
				c := fg*cp[j] + ig*gg
				cell[j] = c
				tcv := math.Tanh(c)
				tc[j] = tcv
				hrow[j] = og * tcv
			}
		}
		l.hs.StepInto(hPrev, step)
		l.cells.StepInto(cPrev, step)
	}
	return l.hs.Clone()
}

// Backward consumes dOut (B,T,hidden), accumulates gradients for Wx, Wh, b,
// and returns the gradient with respect to the input (B,T,in).
func (l *LSTM) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 {
	if l.x == nil {
		panic("nn: LSTM.Backward before Forward")
	}
	b, t, h := l.x.B, l.x.T, l.hidden

	dzAll := tensor.NewTensor3(b, t, 4*h) // pre-activation gate gradients
	dcNext := tensor.NewMatrix(b, h)
	dhNext := tensor.NewMatrix(b, h)
	wh := tensor.FromSlice(h, 4*h, l.Wh.W)
	dhRec := tensor.NewMatrix(b, h)
	dzStep := tensor.NewMatrix(b, 4*h)

	for step := t - 1; step >= 0; step-- {
		for bi := 0; bi < b; bi++ {
			base := (bi*t + step)
			gates := l.gates.Data[base*4*h : (base+1)*4*h]
			tc := l.tanhC.Data[base*h : (base+1)*h]
			dout := dOut.Data[base*h : (base+1)*h]
			dz := dzAll.Data[base*4*h : (base+1)*4*h]
			dcn := dcNext.Row(bi)
			dhn := dhNext.Row(bi)
			var cPrev []float64
			if step > 0 {
				cPrev = l.cells.Data[(base-1)*h : base*h]
			}
			for j := 0; j < h; j++ {
				ig, fg, gg, og := gates[j], gates[h+j], gates[2*h+j], gates[3*h+j]
				dh := dout[j] + dhn[j]
				do := dh * tc[j]
				dc := dh*og*(1-tc[j]*tc[j]) + dcn[j]
				di := dc * gg
				dg := dc * ig
				var cp float64
				if cPrev != nil {
					cp = cPrev[j]
				}
				df := dc * cp
				dz[j] = di * ig * (1 - ig)
				dz[h+j] = df * fg * (1 - fg)
				dz[2*h+j] = dg * (1 - gg*gg)
				dz[3*h+j] = do * og * (1 - og)
				dcn[j] = dc * fg // becomes dcNext for step-1
			}
		}
		// dh_{t-1} += dz_t · Whᵀ ; dWh += h_{t-1}ᵀ · dz_t.
		dzAll.StepInto(dzStep, step)
		dhm := tensor.MatMulTransB(dzStep, wh)
		copy(dhRec.Data, dhm.Data)
		dhNext, dhRec = dhRec, dhNext
		if step > 0 {
			hPrev := l.hs.Step(step - 1)
			dwh := tensor.FromSlice(h, 4*h, l.Wh.G)
			tensor.MatMulTransAAddInto(dwh, hPrev, dzStep)
		}
	}

	// Input-side gradients in bulk: dWx += Xᵀ·dZ, db += colsum(dZ),
	// dX = dZ·Wxᵀ over the flattened (B·T) view.
	dwx := tensor.FromSlice(l.in, 4*h, l.Wx.G)
	tensor.MatMulTransAAddInto(dwx, l.x.AsMatrix(), dzAll.AsMatrix())
	rows := b * t
	for i := 0; i < rows; i++ {
		src := dzAll.Data[i*4*h : (i+1)*4*h]
		for j, v := range src {
			l.B.G[j] += v
		}
	}
	wx := tensor.FromSlice(l.in, 4*h, l.Wx.W)
	dxm := tensor.MatMulTransB(dzAll.AsMatrix(), wx)
	dx := tensor.NewTensor3(b, t, l.in)
	copy(dx.Data, dxm.Data)
	return dx
}

// Params returns Wx, Wh and the bias.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// InDim returns the input feature dimension.
func (l *LSTM) InDim() int { return l.in }

// OutDim returns the hidden (output) dimension.
func (l *LSTM) OutDim() int { return l.hidden }

// Hidden returns the hidden width.
func (l *LSTM) Hidden() int { return l.hidden }
