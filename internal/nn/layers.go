package nn

import (
	"fmt"

	"podnas/internal/kernel"
	"podnas/internal/tensor"
)

// Layer is a differentiable sequence-to-sequence transformation on
// (batch, time, feature) tensors. Forward caches whatever Backward needs;
// Backward accumulates parameter gradients and returns the gradient with
// respect to the layer input. A layer instance carries training state and
// must not be shared across goroutines.
//
// Under the fused engine, tensors returned by Forward and Backward alias
// arena storage owned by the network: valid until the next Forward
// (respectively Backward) pass, so consume or copy them within the step.
type Layer interface {
	// Forward computes the layer output for x.
	Forward(x *tensor.Tensor3) *tensor.Tensor3
	// Backward consumes the gradient of the loss with respect to the layer
	// output (same shape as the last Forward's result) and returns the
	// gradient with respect to the layer input.
	Backward(dOut *tensor.Tensor3) *tensor.Tensor3
	// Params returns the learnable parameters (possibly empty).
	Params() []*Param
	// InDim and OutDim are the feature dimensions.
	InDim() int
	OutDim() int
}

// Identity is the pass-through layer used for "Identity" ops in the search
// space.
type Identity struct{ dim int }

// NewIdentity returns an identity layer of the given feature dimension.
func NewIdentity(dim int) *Identity { return &Identity{dim: dim} }

// Forward returns x unchanged.
func (l *Identity) Forward(x *tensor.Tensor3) *tensor.Tensor3 { return x }

// Backward returns dOut unchanged.
func (l *Identity) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 { return dOut }

// Params returns nil: the identity has no parameters.
func (l *Identity) Params() []*Param { return nil }

// InDim returns the feature dimension.
func (l *Identity) InDim() int { return l.dim }

// OutDim returns the feature dimension.
func (l *Identity) OutDim() int { return l.dim }

// Dense is a time-distributed affine layer: y[b,t,:] = x[b,t,:]·W + b,
// optionally without bias. The paper's skip-connection projections are Dense
// layers with no activation (§IV: "the dense layers for projection did not
// have any activation function").
type Dense struct {
	engined
	in, out int
	W, B    *Param
	x       *tensor.Tensor3 // cached input
}

// NewDense returns a Dense layer with Glorot-initialized weights.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	l := &Dense{in: in, out: out, W: NewParam(name+".W", in*out), B: NewParam(name+".b", out)}
	glorotUniform(rng, l.W.W, in, out)
	return l
}

// Forward computes the affine map over every timestep.
//
//podnas:hotpath
func (l *Dense) Forward(x *tensor.Tensor3) *tensor.Tensor3 {
	if x.F != l.in {
		panic(fmt.Sprintf("nn: Dense expects %d features, got %d", l.in, x.F))
	}
	l.x = x
	es := l.state() //podnas:allow hotalloc lazy one-time engineState init per layer
	rows := x.B * x.T
	if es.engine == EngineReference {
		out := tensor.NewTensor3(x.B, x.T, l.out)
		w := tensor.FromSlice(l.in, l.out, l.W.W)
		refMatMulInto(out.AsMatrix(), x.AsMatrix(), w)
		addBiasRows(out.Data, l.B.W, rows, l.out)
		return out
	}
	es.resetFwd()
	data := es.alloc(es.fwd, rows*l.out) //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	es.cfg.Gemm(kernel.MatOf(rows, l.out, data),
		kernel.MatOf(rows, l.in, x.Data),
		kernel.MatOf(l.in, l.out, l.W.W), false, false, false)
	addBiasRows(data, l.B.W, rows, l.out)
	return tensor.Tensor3FromSlice(x.B, x.T, l.out, data)
}

//podnas:hotpath
func addBiasRows(data, bias []float64, rows, width int) {
	for i := 0; i < rows; i++ {
		dst := data[i*width : (i+1)*width]
		for j, b := range bias {
			dst[j] += b
		}
	}
}

// Backward accumulates dW, db and returns dX.
//
//podnas:hotpath
func (l *Dense) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 {
	if l.x == nil {
		panic("nn: Dense.Backward before Forward")
	}
	es := l.state() //podnas:allow hotalloc lazy one-time engineState init per layer
	rows := dOut.B * dOut.T
	if es.engine == EngineReference {
		dw := tensor.FromSlice(l.in, l.out, l.W.G)
		refMatMulTransAAddInto(dw, l.x.AsMatrix(), dOut.AsMatrix())
		sumGradRows(l.B.G, dOut.Data, rows, l.out)
		dx := tensor.NewTensor3(l.x.B, l.x.T, l.in)
		w := tensor.FromSlice(l.in, l.out, l.W.W)
		dxm := refMatMulTransB(dOut.AsMatrix(), w)
		copy(dx.Data, dxm.Data)
		return dx
	}
	es.resetBwd()
	es.cfg.Gemm(kernel.MatOf(l.in, l.out, l.W.G),
		kernel.MatOf(rows, l.in, l.x.Data),
		kernel.MatOf(rows, l.out, dOut.Data), true, false, true)
	sumGradRows(l.B.G, dOut.Data, rows, l.out)
	dx := es.alloc(es.bwd, rows*l.in) //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	es.cfg.Gemm(kernel.MatOf(rows, l.in, dx),
		kernel.MatOf(rows, l.out, dOut.Data),
		kernel.MatOf(l.in, l.out, l.W.W), false, true, false)
	return tensor.Tensor3FromSlice(l.x.B, l.x.T, l.in, dx)
}

//podnas:hotpath
func sumGradRows(acc, data []float64, rows, width int) {
	for i := 0; i < rows; i++ {
		src := data[i*width : (i+1)*width]
		for j, v := range src {
			acc[j] += v
		}
	}
}

// Params returns the weight and bias parameters.
func (l *Dense) Params() []*Param { return []*Param{l.W, l.B} }

// InDim returns the input feature dimension.
func (l *Dense) InDim() int { return l.in }

// OutDim returns the output feature dimension.
func (l *Dense) OutDim() int { return l.out }

// ReLU is an elementwise rectifier layer. The paper applies it after every
// skip-connection add.
type ReLU struct {
	engined
	dim  int
	mask []bool
}

// NewReLU returns a ReLU layer of the given feature dimension.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// Forward rectifies x elementwise.
//
//podnas:hotpath
func (l *ReLU) Forward(x *tensor.Tensor3) *tensor.Tensor3 {
	es := l.state() //podnas:allow hotalloc lazy one-time engineState init per layer
	n := len(x.Data)
	if cap(l.mask) < n {
		l.mask = make([]bool, n) //podnas:allow hotalloc mask growth is amortized across calls
	}
	l.mask = l.mask[:n]
	var data []float64
	if es.engine == EngineReference {
		data = make([]float64, n) //podnas:allow hotalloc reference engine allocates per call; fused engine uses the arena
	} else {
		es.resetFwd()
		data = es.alloc(es.fwd, n) //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	}
	for i, v := range x.Data {
		if v > 0 {
			l.mask[i] = true
			data[i] = v
		} else {
			l.mask[i] = false
			data[i] = 0
		}
	}
	return tensor.Tensor3FromSlice(x.B, x.T, x.F, data)
}

// Backward gates dOut by the forward activation mask.
//
//podnas:hotpath
func (l *ReLU) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 {
	es := l.state() //podnas:allow hotalloc lazy one-time engineState init per layer
	n := len(dOut.Data)
	var data []float64
	if es.engine == EngineReference {
		data = make([]float64, n) //podnas:allow hotalloc reference engine allocates per call; fused engine uses the arena
	} else {
		es.resetBwd()
		data = es.alloc(es.bwd, n) //podnas:allow hotalloc inlined es.alloc; make fires only in noArena oracle mode
	}
	for i, v := range dOut.Data {
		if l.mask[i] {
			data[i] = v
		} else {
			data[i] = 0
		}
	}
	return tensor.Tensor3FromSlice(dOut.B, dOut.T, dOut.F, data)
}

// Params returns nil.
func (l *ReLU) Params() []*Param { return nil }

// InDim returns the feature dimension.
func (l *ReLU) InDim() int { return l.dim }

// OutDim returns the feature dimension.
func (l *ReLU) OutDim() int { return l.dim }
