package nn

import (
	"fmt"

	"podnas/internal/tensor"
)

// Layer is a differentiable sequence-to-sequence transformation on
// (batch, time, feature) tensors. Forward caches whatever Backward needs;
// Backward accumulates parameter gradients and returns the gradient with
// respect to the layer input. A layer instance carries training state and
// must not be shared across goroutines.
type Layer interface {
	// Forward computes the layer output for x.
	Forward(x *tensor.Tensor3) *tensor.Tensor3
	// Backward consumes the gradient of the loss with respect to the layer
	// output (same shape as the last Forward's result) and returns the
	// gradient with respect to the layer input.
	Backward(dOut *tensor.Tensor3) *tensor.Tensor3
	// Params returns the learnable parameters (possibly empty).
	Params() []*Param
	// InDim and OutDim are the feature dimensions.
	InDim() int
	OutDim() int
}

// Identity is the pass-through layer used for "Identity" ops in the search
// space.
type Identity struct{ dim int }

// NewIdentity returns an identity layer of the given feature dimension.
func NewIdentity(dim int) *Identity { return &Identity{dim: dim} }

// Forward returns x unchanged.
func (l *Identity) Forward(x *tensor.Tensor3) *tensor.Tensor3 { return x }

// Backward returns dOut unchanged.
func (l *Identity) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 { return dOut }

// Params returns nil: the identity has no parameters.
func (l *Identity) Params() []*Param { return nil }

// InDim returns the feature dimension.
func (l *Identity) InDim() int { return l.dim }

// OutDim returns the feature dimension.
func (l *Identity) OutDim() int { return l.dim }

// Dense is a time-distributed affine layer: y[b,t,:] = x[b,t,:]·W + b,
// optionally without bias. The paper's skip-connection projections are Dense
// layers with no activation (§IV: "the dense layers for projection did not
// have any activation function").
type Dense struct {
	in, out int
	W, B    *Param
	x       *tensor.Tensor3 // cached input
}

// NewDense returns a Dense layer with Glorot-initialized weights.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	l := &Dense{in: in, out: out, W: NewParam(name+".W", in*out), B: NewParam(name+".b", out)}
	glorotUniform(rng, l.W.W, in, out)
	return l
}

// Forward computes the affine map over every timestep.
func (l *Dense) Forward(x *tensor.Tensor3) *tensor.Tensor3 {
	if x.F != l.in {
		panic(fmt.Sprintf("nn: Dense expects %d features, got %d", l.in, x.F))
	}
	l.x = x
	out := tensor.NewTensor3(x.B, x.T, l.out)
	w := tensor.FromSlice(l.in, l.out, l.W.W)
	tensor.MatMulInto(out.AsMatrix(), x.AsMatrix(), w)
	rows := x.B * x.T
	for i := 0; i < rows; i++ {
		dst := out.Data[i*l.out : (i+1)*l.out]
		for j, b := range l.B.W {
			dst[j] += b
		}
	}
	return out
}

// Backward accumulates dW, db and returns dX.
func (l *Dense) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 {
	if l.x == nil {
		panic("nn: Dense.Backward before Forward")
	}
	dw := tensor.FromSlice(l.in, l.out, l.W.G)
	tensor.MatMulTransAAddInto(dw, l.x.AsMatrix(), dOut.AsMatrix())
	rows := dOut.B * dOut.T
	for i := 0; i < rows; i++ {
		src := dOut.Data[i*l.out : (i+1)*l.out]
		for j, v := range src {
			l.B.G[j] += v
		}
	}
	dx := tensor.NewTensor3(l.x.B, l.x.T, l.in)
	w := tensor.FromSlice(l.in, l.out, l.W.W)
	dxm := tensor.MatMulTransB(dOut.AsMatrix(), w)
	copy(dx.Data, dxm.Data)
	return dx
}

// Params returns the weight and bias parameters.
func (l *Dense) Params() []*Param { return []*Param{l.W, l.B} }

// InDim returns the input feature dimension.
func (l *Dense) InDim() int { return l.in }

// OutDim returns the output feature dimension.
func (l *Dense) OutDim() int { return l.out }

// ReLU is an elementwise rectifier layer. The paper applies it after every
// skip-connection add.
type ReLU struct {
	dim  int
	mask []bool
}

// NewReLU returns a ReLU layer of the given feature dimension.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// Forward rectifies x elementwise.
func (l *ReLU) Forward(x *tensor.Tensor3) *tensor.Tensor3 {
	out := x.Clone()
	if cap(l.mask) < len(x.Data) {
		l.mask = make([]bool, len(x.Data))
	}
	l.mask = l.mask[:len(x.Data)]
	for i, v := range out.Data {
		if v > 0 {
			l.mask[i] = true
		} else {
			l.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward gates dOut by the forward activation mask.
func (l *ReLU) Backward(dOut *tensor.Tensor3) *tensor.Tensor3 {
	dx := dOut.Clone()
	for i := range dx.Data {
		if !l.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (l *ReLU) Params() []*Param { return nil }

// InDim returns the feature dimension.
func (l *ReLU) InDim() int { return l.dim }

// OutDim returns the feature dimension.
func (l *ReLU) OutDim() int { return l.dim }
