package nn

import (
	"testing"

	"podnas/internal/tensor"
)

// benchGraph is the paper's hot configuration: 5 POD coefficients in and
// out, stacked LSTM(80), batch 64, 8-step windows.
func benchGraph(b *testing.B) (*Graph, *tensor.Tensor3, *tensor.Tensor3) {
	b.Helper()
	g, err := NewStackedLSTM(5, 5, 80, 1, tensor.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	x := tensor.NewTensor3(64, 8, 5)
	y := tensor.NewTensor3(64, 8, 5)
	rng.FillNormal(x.Data, 1)
	rng.FillNormal(y.Data, 0.5)
	return g, x, y
}

// BenchmarkTrainStep measures one full training step (forward, loss,
// backward, Adam) per engine. The fused engine's allocs/op is the
// "per-step allocations ~0" target from the kernel-layer redesign; the
// reference engine is the preserved pre-kernel baseline.
func BenchmarkTrainStep(b *testing.B) {
	for _, mode := range []string{"fused", "reference"} {
		b.Run(mode, func(b *testing.B) {
			g, x, y := benchGraph(b)
			if mode == "reference" {
				g.SetEngine(EngineReference)
			}
			opt := NewAdam(0.001)
			var grad *tensor.Tensor3
			// Warm up arenas and pools outside the measured region.
			pred := g.Forward(x)
			var loss float64
			loss, grad = MSELossInto(grad, pred, y)
			_ = loss
			g.Backward(grad)
			opt.Step(g.Params())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pred := g.Forward(x)
				_, grad = MSELossInto(grad, pred, y)
				g.Backward(grad)
				opt.Step(g.Params())
			}
		})
	}
}

// BenchmarkForwardEval measures inference-only throughput per engine —
// the ns/eval metric nasbench tracks.
func BenchmarkForwardEval(b *testing.B) {
	for _, mode := range []string{"fused", "reference"} {
		b.Run(mode, func(b *testing.B) {
			g, x, _ := benchGraph(b)
			if mode == "reference" {
				g.SetEngine(EngineReference)
			}
			g.Forward(x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Forward(x)
			}
		})
	}
}
