package nn

import (
	"testing"

	"podnas/internal/tensor"
)

func TestGradCheckNoMergeReLU(t *testing.T) {
	// The merge-without-ReLU ablation must also have exact gradients.
	rng := tensor.NewRNG(21)
	spec := GraphSpec{InputDim: 2, NoMergeReLU: true, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 3},
		{Inputs: []int{0}, Units: 4},
		{Inputs: []int{1, 0}, Units: 3},
	}}
	g, err := NewGraph(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, y := smallData(rng, 2, 3, 2, 3)
	gradCheckGraph(t, g, x, y, 1e-4)
}

func TestNoMergeReLUChangesForward(t *testing.T) {
	// With identical weights, the two merge variants must differ whenever
	// the pre-activation sum goes negative somewhere.
	mk := func(noRelu bool) *Graph {
		spec := GraphSpec{InputDim: 2, NoMergeReLU: noRelu, Nodes: []GraphNodeSpec{
			{Inputs: []int{GraphInput}, Units: 3},
			{Inputs: []int{0, GraphInput}, Units: 2},
		}}
		g, err := NewGraph(spec, tensor.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(false), mk(true)
	x := tensor.NewTensor3(3, 4, 2)
	tensor.NewRNG(6).FillNormal(x.Data, 2)
	ya := a.Forward(x)
	yb := b.Forward(x)
	same := true
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("disabling the merge ReLU had no effect (suspicious)")
	}
}

func TestGraphTrainingWithSkipsConverges(t *testing.T) {
	// Integration: a skip-heavy DAG must train end to end on a learnable
	// mapping (y = 0.4·x elementwise).
	rng := tensor.NewRNG(22)
	spec := GraphSpec{InputDim: 3, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 8},
		{Inputs: []int{0, GraphInput}, Units: 0},
		{Inputs: []int{1, 0}, Units: 8},
		{Inputs: []int{2}, Units: 3},
	}}
	g, err := NewGraph(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewTensor3(48, 4, 3)
	rng.FillNormal(x.Data, 1)
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] *= 0.4
	}
	if _, err := Train(g, x, y, TrainConfig{Epochs: 150, BatchSize: 16, LR: 0.005, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if r := EvaluateR2(g, x, y); r < 0.85 {
		t.Errorf("skip-DAG R² after training = %.3f", r)
	}
}

func TestTrainRegularizersRun(t *testing.T) {
	// Input noise and weight decay paths execute and stay finite.
	rng := tensor.NewRNG(23)
	g, _ := NewStackedLSTM(2, 2, 6, 1, rng)
	x := tensor.NewTensor3(16, 3, 2)
	rng.FillNormal(x.Data, 1)
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] *= 0.3
	}
	cfg := TrainConfig{Epochs: 5, BatchSize: 8, LR: 0.01, Seed: 2, InputNoise: 0.05, WeightDecay: 0.1}
	if _, err := Train(g, x, y, cfg); err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Params() {
		if err := checkFinite(p.Name, p.W); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	// With zero-signal data and strong decay, weights must shrink.
	rng := tensor.NewRNG(24)
	mk := func(decay float64) float64 {
		g, _ := NewStackedLSTM(2, 2, 6, 1, tensor.NewRNG(25))
		x := tensor.NewTensor3(16, 3, 2)
		rng.FillNormal(x.Data, 0.01)
		y := tensor.NewTensor3(16, 3, 2)
		cfg := TrainConfig{Epochs: 30, BatchSize: 16, LR: 0.001, Seed: 3, WeightDecay: decay}
		if _, err := Train(g, x, y, cfg); err != nil {
			panic(err)
		}
		var norm float64
		for _, p := range g.Params() {
			for _, w := range p.W {
				norm += w * w
			}
		}
		return norm
	}
	if with, without := mk(5), mk(0); with >= without {
		t.Errorf("weight decay did not shrink weights: %g vs %g", with, without)
	}
}

func TestGraphInputGradientZeroWhenUnreferenced(t *testing.T) {
	// A graph whose first node ignores extra features still returns a full
	// dIn tensor (zeros allowed), never nil.
	rng := tensor.NewRNG(26)
	g, _ := NewStackedLSTM(3, 3, 4, 1, rng)
	x := tensor.NewTensor3(2, 3, 3)
	rng.FillNormal(x.Data, 1)
	y := g.Forward(x)
	dIn := g.Backward(y.Clone())
	if dIn == nil || len(dIn.Data) != len(x.Data) {
		t.Fatal("Backward returned wrong input gradient shape")
	}
}
