package nn

import (
	"math"
	"testing"

	"podnas/internal/tensor"
)

// lossOf runs a forward pass and returns the MSE loss against target.
func lossOf(g *Graph, x, y *tensor.Tensor3) float64 {
	pred := g.Forward(x)
	loss, _ := MSELoss(pred, y)
	return loss
}

// gradCheckGraph compares analytic parameter and input gradients against
// central finite differences for an arbitrary graph.
func gradCheckGraph(t *testing.T, g *Graph, x, y *tensor.Tensor3, tol float64) {
	t.Helper()
	// Analytic gradients.
	for _, p := range g.Params() {
		p.ZeroGrad()
	}
	pred := g.Forward(x)
	_, grad := MSELoss(pred, y)
	dIn := g.Backward(grad)

	const eps = 1e-5
	// Parameter gradients (subsample large parameters for speed).
	for _, p := range g.Params() {
		stride := 1
		if len(p.W) > 40 {
			stride = len(p.W) / 40
		}
		for i := 0; i < len(p.W); i += stride {
			orig := p.W[i]
			p.W[i] = orig + eps
			lp := lossOf(g, x, y)
			p.W[i] = orig - eps
			lm := lossOf(g, x, y)
			p.W[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := p.G[i]
			if math.Abs(num-ana) > tol*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %.6g vs numeric %.6g", p.Name, i, ana, num)
			}
		}
	}
	// Input gradients.
	for i := 0; i < len(x.Data); i++ {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(g, x, y)
		x.Data[i] = orig - eps
		lm := lossOf(g, x, y)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dIn.Data[i]) > tol*(1+math.Abs(num)) {
			t.Errorf("dInput[%d]: analytic %.6g vs numeric %.6g", i, dIn.Data[i], num)
		}
	}
}

func smallData(rng *tensor.RNG, b, steps, f, out int) (*tensor.Tensor3, *tensor.Tensor3) {
	x := tensor.NewTensor3(b, steps, f)
	y := tensor.NewTensor3(b, steps, out)
	rng.FillNormal(x.Data, 1)
	rng.FillNormal(y.Data, 1)
	return x, y
}

func TestGradCheckDenseChain(t *testing.T) {
	rng := tensor.NewRNG(1)
	// Single LSTM output node over a dense-free chain is covered elsewhere;
	// here: input -> identity -> LSTM(3).
	spec := GraphSpec{InputDim: 2, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 0},
		{Inputs: []int{0}, Units: 3},
	}}
	g, err := NewGraph(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, y := smallData(rng, 3, 4, 2, 3)
	gradCheckGraph(t, g, x, y, 1e-4)
}

func TestGradCheckSingleLSTM(t *testing.T) {
	rng := tensor.NewRNG(2)
	spec := GraphSpec{InputDim: 3, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 4},
	}}
	g, err := NewGraph(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, y := smallData(rng, 2, 5, 3, 4)
	gradCheckGraph(t, g, x, y, 1e-4)
}

func TestGradCheckStackedLSTM(t *testing.T) {
	rng := tensor.NewRNG(3)
	g, err := NewStackedLSTM(2, 2, 3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, y := smallData(rng, 2, 3, 2, 2)
	gradCheckGraph(t, g, x, y, 1e-4)
}

func TestGradCheckSkipConnectionMerge(t *testing.T) {
	// The paper's skip topology: node 2 merges the chain (node 1) and a skip
	// from node 0 via dense projections, sum, ReLU.
	rng := tensor.NewRNG(4)
	spec := GraphSpec{InputDim: 2, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 3},
		{Inputs: []int{0}, Units: 4},
		{Inputs: []int{1, 0}, Units: 3},
		{Inputs: []int{2}, Units: 2},
	}}
	g, err := NewGraph(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, y := smallData(rng, 2, 3, 2, 2)
	gradCheckGraph(t, g, x, y, 1e-4)
}

func TestGradCheckSkipFromInput(t *testing.T) {
	// Skip connections can reach back to the network input itself.
	rng := tensor.NewRNG(5)
	spec := GraphSpec{InputDim: 3, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 4},
		{Inputs: []int{0, GraphInput}, Units: 3},
	}}
	g, err := NewGraph(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, y := smallData(rng, 2, 3, 3, 3)
	gradCheckGraph(t, g, x, y, 1e-4)
}

func TestGradCheckIdentityNodesAndMultiConsumer(t *testing.T) {
	// A node whose output feeds three consumers (chain + two skips)
	// exercises gradient accumulation across fan-out.
	rng := tensor.NewRNG(6)
	spec := GraphSpec{InputDim: 2, Nodes: []GraphNodeSpec{
		{Inputs: []int{GraphInput}, Units: 3},
		{Inputs: []int{0}, Units: 0}, // identity
		{Inputs: []int{1, 0}, Units: 4},
		{Inputs: []int{2, 0}, Units: 2},
	}}
	g, err := NewGraph(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, y := smallData(rng, 2, 3, 2, 2)
	gradCheckGraph(t, g, x, y, 1e-4)
}
