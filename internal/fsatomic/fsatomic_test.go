package fsatomic

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "state.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("read back %q, want %q", got, "v1")
	}
	// Overwrite: readers must see old-or-new, and the temp file must not
	// linger.
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("read back %q, want %q", got, "v2")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestWriteFileSyncs asserts the durability contract directly: one write
// must issue at least two fsyncs — the temp file's data before the rename,
// and the parent directory after it — not merely rename atomically.
func TestWriteFileSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	before := SyncCount()
	if err := WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := SyncCount() - before; got < 2 {
		t.Fatalf("WriteFile issued %d fsyncs, want >= 2 (temp file + parent dir)", got)
	}
}

func TestWriteFileErrorKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Make the directory unwritable so the temp-file create fails; the
	// committed content must be untouched.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Geteuid() != 0 { // root ignores permission bits; skip the failure half
		if err := WriteFile(path, []byte("new"), 0o644); err == nil {
			t.Fatal("write into read-only dir unexpectedly succeeded")
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "old" {
			t.Fatalf("failed write corrupted the file: %q", got)
		}
	}
}
