// Package fsatomic writes files that are atomic AND durable. The classic
// temp-file-plus-rename idiom is atomic against readers — they see the old
// file or the new one, never a half write — but not against power loss: a
// rename can be committed to the directory before the temp file's data
// blocks reach the platter, so a crash surfaces a fully "committed" path
// holding an empty or torn payload. WriteFile closes that window the way
// databases do: fsync the temp file before the rename, then fsync the
// parent directory so the rename itself is on stable storage.
//
// Everything in the repo that persists state it must survive a crash with —
// search checkpoints, nasd job manifests — routes through this package, so
// the durability argument lives in one place.
package fsatomic

import (
	"os"
	"path/filepath"
	"sync/atomic"
)

// syncCount tallies every fsync issued (file and directory alike), so tests
// can assert a write path really syncs instead of trusting the call chain.
var syncCount atomic.Uint64

// SyncCount returns the number of fsync calls issued by this package since
// process start. Tests snapshot it around a write and assert it advanced by
// at least two (temp file + parent directory).
func SyncCount() uint64 { return syncCount.Load() }

// WriteFile atomically and durably replaces path with data: write to a
// sibling temp file, fsync it, rename over path, then fsync the parent
// directory. Missing parent directories are created. After WriteFile
// returns nil, the new content survives both crashes of this process and
// power loss; on error the previous content of path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// The data must be on stable storage BEFORE the rename publishes the
	// path, or a power loss can expose an empty "committed" file.
	syncCount.Add(1)
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Filesystems that cannot sync a directory handle (some network and
// FUSE mounts return EINVAL/ENOTSUP) degrade to plain atomicity rather than
// failing the write that already succeeded.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // the rename succeeded; durability degrades, atomicity holds
	}
	defer d.Close()
	syncCount.Add(1)
	if err := d.Sync(); err != nil {
		return nil
	}
	return nil
}
