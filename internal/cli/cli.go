// Package cli holds the flag plumbing and error→exit-code policy shared by
// the podnas command-line binaries (nasrun, nasd), so the two front ends
// cannot drift apart on what an exit status means or how a worker
// subprocess is spawned.
package cli

import (
	"errors"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"podnas"
)

// Exit codes, common to every podnas binary. Schedulers and shell scripts
// branch on the failure class.
const (
	ExitFailure     = 1 // generic runtime failure
	ExitUsage       = 2 // bad flags, unknown method, invalid options
	ExitCheckpoint  = 3 // unreadable or corrupted checkpoint
	ExitInterrupt   = 4 // interrupted before any evaluation succeeded
	ExitBudget      = 5 // evaluation budget exhausted without a success
	ExitUnavailable = 6 // daemon unavailable: queue full, draining, or state dir already owned
)

// ExitCode maps an error onto the documented exit codes via the podnas
// sentinels.
func ExitCode(err error) int {
	switch {
	case errors.Is(err, podnas.ErrBadMethod), errors.Is(err, podnas.ErrBadOptions):
		return ExitUsage
	case errors.Is(err, podnas.ErrBadCheckpoint):
		return ExitCheckpoint
	case errors.Is(err, podnas.ErrInterrupted):
		return ExitInterrupt
	case errors.Is(err, podnas.ErrBudgetExhausted):
		return ExitBudget
	case errors.Is(err, podnas.ErrUnavailable):
		return ExitUnavailable
	}
	return ExitFailure
}

// SplitAddrs parses a -connect list: comma-separated, blanks tolerated.
func SplitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// WorkerCommand builds the exec.Cmd factory for pipe-spawned local workers:
// the nasrun binary at exe re-executed in -worker mode. Both nasrun
// -isolate and nasd's subprocess rung spawn workers through it, so the
// worker command line has one definition.
func WorkerCommand(exe, grid string, epochs int, heartbeat time.Duration, faultKill float64, killBase uint64) func(int, int) *exec.Cmd {
	return func(id, incarnation int) *exec.Cmd {
		args := []string{
			"-worker", "-grid", grid,
			"-epochs", strconv.Itoa(epochs),
			"-heartbeat", heartbeat.String(),
		}
		if faultKill > 0 {
			// Perturb the fault seed per incarnation so a restarted
			// worker does not re-draw the same fatal decision forever.
			fs := killBase + uint64(id)*1000 + uint64(incarnation)*7919
			args = append(args,
				"-faultkill", strconv.FormatFloat(faultKill, 'g', -1, 64),
				"-faultseed", strconv.FormatUint(fs, 10))
		}
		return exec.Command(exe, args...)
	}
}
