package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	mrand "math/rand/v2"
	"os"
	"sort"
	"sync"
	"time"

	"podnas/internal/obs"
	"podnas/internal/obs/span"
	"podnas/internal/search"
)

// Runner executes one attempt of a job. The Manager tries its configured
// runners in order — the degradation ladder — so a daemon can fall from
// remote agents to subprocess workers to an in-process evaluator without
// client-visible failures. Run must respect ctx (the watchdog and drain
// cancel through it), write search checkpoints to run.CheckpointPath, and
// emit its events through run.Recorder.
type Runner interface {
	// Name labels the rung in results and traces.
	Name() string
	Run(ctx context.Context, spec Spec, run RunInfo) (*Result, error)
}

// RunInfo is the per-attempt context the Manager hands a Runner.
type RunInfo struct {
	JobID   string
	Attempt int
	// CheckpointPath is where the attempt must persist its search
	// checkpoint; the next attempt (or the next daemon incarnation)
	// resumes from it.
	CheckpointPath string
	// Resume is the checkpoint recovered from a previous attempt or
	// incarnation, nil for a fresh start.
	Resume *search.Checkpoint
	// Recorder receives the attempt's events: it tees into the job's
	// own trace file and the daemon-wide sink, tagging every event with
	// the job ID.
	Recorder obs.Recorder
	// Trace is the job's root span context (span.NewTrace("job/<id>"), so
	// any process can recompute it from the ID alone). Runners thread it
	// into their search so the whole attempt — admission, queue wait,
	// search, evals, remote training — stitches into one trace tree.
	Trace span.Context
}

// Options configure a Manager. Zero values take the documented defaults.
type Options struct {
	// Store is the durable manifest store (required).
	Store *Store
	// Rungs is the degradation ladder, tried in order per attempt
	// (required, non-empty).
	Rungs []Runner
	// MaxRunning bounds concurrently running jobs (default 1).
	MaxRunning int
	// MaxQueued bounds the admission queue; submits beyond it are refused
	// with ErrUnavailable (default 8).
	MaxQueued int
	// DefaultDeadline bounds one attempt's wall clock when the spec does
	// not (0 = no deadline).
	DefaultDeadline time.Duration
	// RetryBudget is the default re-admission count after evictions or
	// failed attempts (default 1); Spec.Retries overrides per job.
	RetryBudget int
	// RetryAfterBase scales the Retry-After guidance (default 2s).
	RetryAfterBase time.Duration
	// WatchdogInterval is the deadline-scan cadence (default 100ms).
	WatchdogInterval time.Duration
	// Recorder is the daemon-wide sink (metrics, global trace); optional.
	Recorder obs.Recorder
	// Version is stamped into per-job trace headers.
	Version string
	// SpecCheck, when set, vets specs at admission beyond Spec.Validate —
	// nasd wires method-name parsing here.
	SpecCheck func(Spec) error
}

func (o *Options) defaults() error {
	if o.Store == nil {
		return fmt.Errorf("jobs: Options.Store is required")
	}
	if len(o.Rungs) == 0 {
		return fmt.Errorf("jobs: Options.Rungs must name at least one runner")
	}
	if o.MaxRunning < 1 {
		o.MaxRunning = 1
	}
	if o.MaxQueued < 1 {
		o.MaxQueued = 8
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if o.RetryAfterBase <= 0 {
		o.RetryAfterBase = 2 * time.Second
	}
	if o.WatchdogInterval <= 0 {
		o.WatchdogInterval = 100 * time.Millisecond
	}
	return nil
}

// Eviction reasons; the watchdog and control paths set these before
// cancelling an attempt's context so the run goroutine can tell deadline
// evictions, user cancels, and drains apart.
const (
	evictCancel = "cancelled by client"
	evictDrain  = "drain"
)

// managed is the Manager's live record of one job.
type managed struct {
	job      Job
	cancel   context.CancelFunc // non-nil while an attempt runs
	evict    string             // eviction reason, set before cancel
	rec      obs.Recorder       // the running attempt's tee, for watchdog emissions
	started  time.Time          // attempt start (deadline base)
	queued   time.Time          // last (re)admission to the queue (queue_wait span base)
	deadline time.Duration      // 0 = none
}

// Manager owns the daemon's job state machine. All public methods are safe
// for concurrent use. Every state transition is persisted to the Store
// before it is visible, so a SIGKILL at any moment restarts into a
// consistent (at worst slightly stale, never ahead-of-disk) view.
type Manager struct {
	opts Options

	mu       sync.Mutex
	jobs     map[string]*managed
	queue    []string // FIFO of queued job IDs
	running  int
	draining bool
	rng      *mrand.Rand

	corrupt []error // manifests LoadAll could not decode at startup

	wake     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	bg       sync.WaitGroup // scheduler + watchdog
	runWG    sync.WaitGroup // runJob goroutines
}

// New builds a Manager over opts.Store, re-admits every non-terminal job
// the previous incarnation left behind (queued and paused jobs re-enter the
// queue; jobs that were mid-run when the daemon died re-enter with their
// checkpoints), and starts the scheduler and watchdog. Call Close (or
// Drain) to stop it.
func New(opts Options) (*Manager, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	m := &Manager{
		opts: opts,
		jobs: make(map[string]*managed),
		rng:  mrand.New(mrand.NewPCG(uint64(time.Now().UnixNano()), 0x9e3779b97f4a7c15)),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	loaded, errs := opts.Store.LoadAll()
	m.corrupt = errs
	for _, j := range loaded {
		mg := &managed{job: *j, queued: time.Now()}
		switch j.State {
		case StateDone, StateFailed, StateCancelled:
			// Terminal: keep the record (exactly-once results), never re-run.
		case StateQueued, StateRunning, StatePaused:
			// Running means the previous daemon was killed mid-attempt;
			// paused means its ladder was exhausted. Both re-admit: the
			// next attempt resumes from the durable checkpoint.
			mg.job.State = StateQueued
			if err := opts.Store.Save(&mg.job); err != nil {
				m.corrupt = append(m.corrupt, err)
			}
			m.queue = append(m.queue, j.ID)
		}
		m.jobs[j.ID] = mg
	}
	m.bg.Add(2)
	go m.scheduler()
	go m.watchdog()
	m.kick()
	return m, nil
}

// CorruptManifests reports manifests the startup scan could not decode.
// The daemon keeps serving; the operator decides what to do with the files.
func (m *Manager) CorruptManifests() []error { return append([]error(nil), m.corrupt...) }

// record emits to the daemon-wide sink.
func (m *Manager) record(e obs.Event) {
	if m.opts.Recorder != nil {
		m.opts.Recorder.Record(e)
	}
}

// recordFor emits through the job's running tee when one is open (so the
// event lands in the per-job trace too), else the daemon-wide sink.
func (m *Manager) recordFor(mg *managed, e obs.Event) {
	if e.Job == "" {
		e.Job = mg.job.ID
	}
	if mg.rec != nil {
		mg.rec.Record(e)
		return
	}
	m.record(e)
}

func (m *Manager) kick() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// newID draws a fresh URL- and filename-safe job ID.
func (m *Manager) newIDLocked() (string, error) {
	for range 16 {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", fmt.Errorf("jobs: draw job id: %w", err)
		}
		id := "j" + hex.EncodeToString(b[:])
		if _, taken := m.jobs[id]; taken {
			continue
		}
		if _, err := os.Stat(m.opts.Store.ManifestPath(id)); err == nil {
			continue
		}
		return id, nil
	}
	return "", fmt.Errorf("jobs: could not draw a unique job id")
}

// Submit admits a job or refuses it with an error wrapping ErrUnavailable
// (draining, or the bounded queue is full). The returned Job snapshot is
// durable: by the time Submit returns, a crash cannot lose the admission.
func (m *Manager) Submit(spec Spec) (Job, error) {
	admitT0 := time.Now()
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	if m.opts.SpecCheck != nil {
		if err := m.opts.SpecCheck(spec); err != nil {
			return Job{}, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Job{}, fmt.Errorf("jobs: daemon is draining: %w", ErrUnavailable)
	}
	if len(m.queue) >= m.opts.MaxQueued {
		return Job{}, fmt.Errorf("jobs: admission queue full (%d queued): %w", len(m.queue), ErrUnavailable)
	}
	id, err := m.newIDLocked()
	if err != nil {
		return Job{}, err
	}
	mg := &managed{job: Job{
		ID:          id,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
	}, queued: time.Now()}
	if err := m.opts.Store.Save(&mg.job); err != nil {
		return Job{}, err
	}
	m.jobs[id] = mg
	m.queue = append(m.queue, id)
	m.record(obs.Event{Kind: obs.KindJobSubmit, Job: id, Method: spec.Method, Eval: spec.Evals})
	// Admission span: validation + durable save, child of the job's root
	// trace (recomputable from the ID by anyone holding the event stream).
	root := span.NewTrace("job/" + id)
	adm := span.End(span.Derive(root, "admission"), root.Span, "admission", time.Since(admitT0))
	adm.Job = id
	m.record(adm)
	m.kick()
	return mg.job.Clone(), nil
}

// RetryAfter returns jittered backoff guidance for refused clients, scaled
// by current load so a saturated daemon pushes callers further out.
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	depth := len(m.queue) + m.running
	d := float64(m.opts.RetryAfterBase) * (1 + float64(depth)/float64(m.opts.MaxRunning))
	d *= 0.7 + 0.6*m.rng.Float64() // ±30% jitter breaks up retry stampedes
	if d < float64(time.Second) {
		d = float64(time.Second)
	}
	return time.Duration(d)
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mg := m.jobs[id]
	if mg == nil {
		return Job{}, fmt.Errorf("jobs: %q: %w", id, ErrNotFound)
	}
	return mg.job.Clone(), nil
}

// List returns snapshots of every known job, oldest submission first.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, mg := range m.jobs {
		out = append(out, mg.job.Clone())
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].SubmittedAt.Equal(out[b].SubmittedAt) {
			return out[a].SubmittedAt.Before(out[b].SubmittedAt)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Result returns a done job's result; ErrNotDone otherwise.
func (m *Manager) Result(id string) (Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mg := m.jobs[id]
	if mg == nil {
		return Result{}, fmt.Errorf("jobs: %q: %w", id, ErrNotFound)
	}
	if mg.job.State != StateDone || mg.job.Result == nil {
		return Result{}, fmt.Errorf("jobs: %q is %s: %w", id, mg.job.State, ErrNotDone)
	}
	return *mg.job.Result, nil
}

// Cancel stops a job: queued and paused jobs transition to cancelled
// immediately; a running job's attempt is cancelled and settles to
// cancelled when the runner unwinds. Terminal jobs report ErrTerminal.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mg := m.jobs[id]
	if mg == nil {
		return fmt.Errorf("jobs: %q: %w", id, ErrNotFound)
	}
	switch mg.job.State {
	case StateDone, StateFailed, StateCancelled:
		return fmt.Errorf("jobs: %q is %s: %w", id, mg.job.State, ErrTerminal)
	case StateQueued, StatePaused:
		m.dropFromQueueLocked(id)
		mg.job.State = StateCancelled
		mg.job.FinishedAt = time.Now().UTC()
		mg.job.Error = evictCancel
		if err := m.opts.Store.Save(&mg.job); err != nil {
			return err
		}
		m.recordFor(mg, obs.Event{Kind: obs.KindJobCheckpoint, Eval: mg.job.Evals})
		m.recordFor(mg, obs.Event{Kind: obs.KindJobFinish, Method: string(StateCancelled), Eval: mg.job.Evals, Err: evictCancel})
		return nil
	case StateRunning:
		if mg.evict == "" {
			mg.evict = evictCancel
		}
		if mg.cancel != nil {
			mg.cancel()
		}
		return nil
	}
	return fmt.Errorf("jobs: %q in unexpected state %q", id, mg.job.State)
}

func (m *Manager) dropFromQueueLocked(id string) {
	for i, q := range m.queue {
		if q == id {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return
		}
	}
}

// Stats is the health snapshot the HTTP layer serves.
type Stats struct {
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	Jobs     int  `json:"jobs"`
	Draining bool `json:"draining"`
}

// Stats returns current load counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Queued: len(m.queue), Running: m.running, Jobs: len(m.jobs), Draining: m.draining}
}

// Drain gracefully stops the daemon's work: admission closes, every
// running attempt is evicted (its runner checkpoints and unwinds), and
// Drain returns once nothing is running — queued and interrupted jobs stay
// durable in the store for the next incarnation. ctx bounds the wait.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	for _, mg := range m.jobs {
		if mg.job.State == StateRunning && mg.cancel != nil && mg.evict == "" {
			mg.evict = evictDrain
			m.recordFor(mg, obs.Event{Kind: obs.KindJobEvict, Attempt: mg.job.Attempt, Err: evictDrain})
			mg.cancel()
		}
	}
	m.mu.Unlock()
	for {
		m.mu.Lock()
		n := m.running
		m.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("jobs: drain: %w", ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close drains (bounded) and stops the background goroutines. Safe to call
// after Drain; subsequent calls are no-ops.
func (m *Manager) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := m.Drain(ctx)
	m.stopOnce.Do(func() { close(m.stop) })
	m.bg.Wait()
	m.runWG.Wait()
	return err
}

// scheduler moves queued jobs into run slots whenever capacity frees up.
func (m *Manager) scheduler() {
	defer m.bg.Done()
	for {
		select {
		case <-m.stop:
			return
		case <-m.wake:
		}
		m.dispatch()
	}
}

func (m *Manager) dispatch() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.draining && m.running < m.opts.MaxRunning && len(m.queue) > 0 {
		id := m.queue[0]
		m.queue = m.queue[1:]
		mg := m.jobs[id]
		if mg == nil || mg.job.State != StateQueued {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		mg.cancel = cancel
		mg.evict = ""
		mg.started = time.Now()
		mg.deadline = m.deadlineFor(mg.job.Spec)
		mg.job.State = StateRunning
		mg.job.Attempt++
		if mg.job.StartedAt.IsZero() {
			mg.job.StartedAt = time.Now().UTC()
		}
		if err := m.opts.Store.Save(&mg.job); err != nil {
			// Disk trouble: run anyway — memory is ahead of disk, and the
			// worst a crash can do now is repeat this attempt.
			mg.job.Error = err.Error()
		}
		m.record(obs.Event{Kind: obs.KindJobCheckpoint, Job: id, Eval: mg.job.Evals})
		m.running++
		m.runWG.Add(1)
		go m.runJob(ctx, cancel, id)
	}
}

func (m *Manager) deadlineFor(spec Spec) time.Duration {
	if spec.DeadlineSeconds > 0 {
		return time.Duration(spec.DeadlineSeconds * float64(time.Second))
	}
	return m.opts.DefaultDeadline
}

func (m *Manager) retriesFor(spec Spec) int {
	switch {
	case spec.Retries > 0:
		return spec.Retries
	case spec.Retries < 0:
		return 0
	}
	return m.opts.RetryBudget
}

// watchdog scans running attempts and evicts any past its deadline.
func (m *Manager) watchdog() {
	defer m.bg.Done()
	t := time.NewTicker(m.opts.WatchdogInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		m.mu.Lock()
		for _, mg := range m.jobs {
			if mg.job.State != StateRunning || mg.cancel == nil || mg.deadline <= 0 || mg.evict != "" {
				continue
			}
			if over := now.Sub(mg.started); over > mg.deadline {
				mg.evict = fmt.Sprintf("deadline %s exceeded (ran %s)", mg.deadline, over.Round(time.Millisecond))
				m.recordFor(mg, obs.Event{Kind: obs.KindJobEvict, Attempt: mg.job.Attempt, Err: mg.evict})
				mg.cancel()
			}
		}
		m.mu.Unlock()
	}
}

// loadResume recovers the job's checkpoint; nil means a fresh start. A
// corrupt checkpoint degrades to fresh — the atomic write path makes that
// unreachable short of disk damage, and restarting from zero is the safe
// answer to damage.
func loadResume(path string) (*search.Checkpoint, int) {
	ck, err := search.LoadCheckpoint(path)
	if err != nil || ck == nil {
		return nil, 0
	}
	return ck, ck.NumResults()
}

func checkpointExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// runJob executes one attempt: open the per-job trace (appending across
// incarnations), walk the degradation ladder, and settle the outcome.
func (m *Manager) runJob(ctx context.Context, cancel context.CancelFunc, id string) {
	defer m.runWG.Done()
	defer cancel()

	m.mu.Lock()
	mg := m.jobs[id]
	job := mg.job.Clone()
	queueWait := mg.started.Sub(mg.queued)
	m.mu.Unlock()

	ckPath := m.opts.Store.CheckpointPath(id)
	resume, resumeEvals := loadResume(ckPath)

	trace, fresh, terr := obs.AppendJSONL(m.opts.Store.TracePath(id))
	var rec obs.Recorder
	if terr != nil {
		// No trace file (disk trouble): still run, observed daemon-wide only.
		rec = jobTagger{id: id, r: orNop(m.opts.Recorder)}
	} else {
		if fresh {
			workers := job.Spec.Workers
			if workers < 1 {
				workers = 1
			}
			h := obs.NewHeader(job.Spec.Method, job.Spec.Seed, workers, m.opts.Version)
			h.Job = id
			trace.Record(h)
		}
		rec = jobTagger{id: id, r: tee{a: flushOn{trace}, b: orNop(m.opts.Recorder)}}
	}

	m.mu.Lock()
	mg.rec = rec
	m.mu.Unlock()

	rec.Record(obs.Event{Kind: obs.KindJobStart, Attempt: job.Attempt, Eval: resumeEvals})

	// Queue-wait span: admission (or re-admission) to dispatch. The obs
	// Metrics aggregator feeds its queue-wait histogram — and the SLO
	// watcher's queue_wait_p99 target — from exactly these spans.
	root := span.NewTrace("job/" + id)
	qw := span.End(span.Derive(root, "queue_wait", uint64(job.Attempt)), root.Span, "queue_wait", queueWait)
	qw.Attempt = job.Attempt
	rec.Record(qw)

	var res *Result
	var runErr error
	var rung string
	for _, r := range m.opts.Rungs {
		if ctx.Err() != nil {
			break
		}
		res, runErr = r.Run(ctx, job.Spec, RunInfo{
			JobID:          id,
			Attempt:        job.Attempt,
			CheckpointPath: ckPath,
			Resume:         resume,
			Recorder:       rec,
			Trace:          root,
		})
		rung = r.Name()
		if runErr == nil && res == nil {
			runErr = fmt.Errorf("jobs: rung %s returned no result", rung)
		}
		if runErr == nil || ctx.Err() != nil {
			break
		}
		// The rung may have made durable progress before failing; the next
		// rung resumes from it rather than repeating work.
		resume, resumeEvals = loadResume(ckPath)
	}

	m.settle(mg, id, res, rung, runErr, ctx)
	if trace != nil && terr == nil {
		trace.Close()
	}
	m.kick()
}

// settle commits the attempt's outcome: done, cancelled, re-queued (evicted
// or failed with retries left), paused with checkpoint, or failed.
func (m *Manager) settle(mg *managed, id string, res *Result, rung string, runErr error, ctx context.Context) {
	_, ckEvals := loadResume(m.opts.Store.CheckpointPath(id))

	m.mu.Lock()
	defer m.mu.Unlock()

	evict := mg.evict
	mg.cancel = nil
	rec := mg.rec
	mg.rec = nil
	now := time.Now().UTC()
	retries := m.retriesFor(mg.job.Spec)
	requeue := false

	switch {
	case res != nil && runErr == nil:
		res.Rung = rung
		mg.job.State = StateDone
		mg.job.Result = res
		mg.job.Evals = res.Evals
		mg.job.FinishedAt = now
		mg.job.Error = ""
	case ctx.Err() != nil && evict == evictCancel:
		mg.job.State = StateCancelled
		mg.job.Evals = ckEvals
		mg.job.FinishedAt = now
		mg.job.Error = evictCancel
	case ctx.Err() != nil && evict == evictDrain:
		// Drained: back to durable queued; the next incarnation resumes it.
		mg.job.State = StateQueued
		mg.job.Evals = ckEvals
		mg.job.Error = evictDrain
	case ctx.Err() != nil: // watchdog deadline eviction
		mg.job.Evals = ckEvals
		mg.job.Error = evict
		if mg.job.Attempt <= retries {
			mg.job.State = StateQueued
			requeue = true
		} else if checkpointExists(m.opts.Store.CheckpointPath(id)) {
			mg.job.State = StatePaused
		} else {
			mg.job.State = StateFailed
			mg.job.FinishedAt = now
		}
	default: // every rung failed
		mg.job.Evals = ckEvals
		mg.job.Error = runErr.Error()
		if mg.job.Attempt <= retries {
			mg.job.State = StateQueued
			requeue = true
			if rec != nil {
				rec.Record(obs.Event{Kind: obs.KindJobEvict, Attempt: mg.job.Attempt, Err: runErr.Error()})
			}
		} else if checkpointExists(m.opts.Store.CheckpointPath(id)) {
			mg.job.State = StatePaused
		} else {
			mg.job.State = StateFailed
			mg.job.FinishedAt = now
		}
	}

	if err := m.opts.Store.Save(&mg.job); err != nil && mg.job.Error == "" {
		mg.job.Error = err.Error()
	}
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindJobCheckpoint, Eval: mg.job.Evals})
		switch mg.job.State {
		case StateDone, StateFailed, StateCancelled:
			// Terminal: close the trace with the root "job" span — its whole
			// lifetime from submission, parentless so tree assembly roots on it.
			root := span.NewTrace("job/" + id)
			js := span.End(root, 0, "job", now.Sub(mg.job.SubmittedAt))
			rec.Record(js)
		case StatePaused, StateQueued, StateRunning:
			// Not terminal: the trace stays open for the next attempt.
		}
		switch mg.job.State {
		case StateDone:
			rec.Record(obs.Event{Kind: obs.KindJobFinish, Method: string(StateDone), Eval: mg.job.Evals, Reward: mg.job.Result.BestReward, Arch: mg.job.Result.BestArch})
		case StateFailed, StateCancelled, StatePaused:
			rec.Record(obs.Event{Kind: obs.KindJobFinish, Method: string(mg.job.State), Eval: mg.job.Evals, Err: mg.job.Error})
		case StateQueued, StateRunning:
			// Re-queued (eviction with retries left, or drain): not a finish;
			// the next job_start continues the story.
		}
	}
	if requeue && !m.draining {
		mg.queued = time.Now()
		m.queue = append(m.queue, id)
	}
	m.running--
}

// orNop substitutes Nop for a nil daemon recorder so tee never needs nil
// checks on the hot path.
func orNop(r obs.Recorder) obs.Recorder {
	if r == nil {
		return obs.Nop{}
	}
	return r
}

// jobTagger stamps the job ID on every event passing through, so a
// daemon-wide trace still attributes per-job streams.
type jobTagger struct {
	id string
	r  obs.Recorder
}

func (t jobTagger) Record(e obs.Event) {
	if e.Job == "" {
		e.Job = t.id
	}
	t.r.Record(e)
}

// flushOn pushes the buffered per-job trace to disk after every
// durability-relevant event, mirroring the checkpoint cadence: a SIGKILLed
// daemon then loses at most the events of the evaluation in flight, so a
// resumed job's trace stays content-comparable (nasreport diff) with an
// uninterrupted run of the same spec.
type flushOn struct {
	j *obs.JSONL
}

func (f flushOn) Record(e obs.Event) {
	f.j.Record(e)
	switch e.Kind {
	case obs.KindEvalFinish, obs.KindEvalError, obs.KindCheckpoint,
		obs.KindJobSubmit, obs.KindJobStart, obs.KindJobCheckpoint,
		obs.KindJobFinish, obs.KindJobEvict,
		// An SLO breach is rare and is exactly the event an operator reads
		// the trace for, so it must survive a crash.
		obs.KindSLOBreach:
		_ = f.j.Flush()
	default:
		// High-rate events stay buffered: epoch ticks, worker chatter, and
		// KindSpan (one per eval, epoch, and rpc — far too chatty to fsync).
	}
}

// tee forwards each event to both sinks, letting each stamp its own clock:
// the per-job trace runs on job-relative time (monotonic across daemon
// incarnations) while the daemon-wide sink keeps daemon-relative time.
type tee struct{ a, b obs.Recorder }

func (t tee) Record(e obs.Event) {
	t.a.Record(e)
	t.b.Record(e)
}
