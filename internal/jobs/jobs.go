// Package jobs is the crash-safe job layer behind nasd: a durable store of
// job manifests (the same versioned+CRC envelope and atomic-rename
// discipline as search checkpoints), a Manager that owns admission control,
// per-job deadlines and retry budgets, a degradation ladder of runners, and
// graceful drain — and an HTTP handler exposing submit/status/cancel/
// result/trace over JSON.
//
// The split mirrors Balsam's service/database architecture: the HTTP layer
// is stateless, every decision the Manager makes is committed to the store
// before it takes effect, and a SIGKILLed daemon restarts into exactly the
// set of jobs the manifests describe — finished jobs keep their results
// (exactly-once), interrupted jobs re-enter the queue and resume from their
// last search checkpoint.
//
// The package deliberately does not import the podnas root package (the
// root re-exports ErrUnavailable from here), only internal/search,
// internal/obs, and internal/fsatomic.
package jobs

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors. Always wrapped with %w and matched with errors.Is
// (enforced by podnaslint's errwrap check).
var (
	// ErrUnavailable means the daemon cannot admit work right now: the
	// admission queue is full or a drain is in progress. Clients should
	// back off and retry; the HTTP layer maps it to 429 with a jittered
	// Retry-After.
	ErrUnavailable = errors.New("service unavailable")
	// ErrNotFound means no job with the given ID exists.
	ErrNotFound = errors.New("no such job")
	// ErrTerminal means the operation needs a live job but the job already
	// reached a terminal state (done/failed/cancelled).
	ErrTerminal = errors.New("job already terminal")
	// ErrNotDone means the job's result was requested before the job
	// finished successfully.
	ErrNotDone = errors.New("job not done")
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed | cancelled   (terminal)
//	running → queued                               (evicted with retries left, or drained)
//	running → paused                               (ladder exhausted, checkpoint kept)
//	queued  → cancelled                            (cancel before start)
//	paused  → queued                               (daemon restart re-admits)
type State string

// The job states. Paused is the degradation ladder's last rung: no runner
// could make progress and the retry budget is spent, but the checkpoint is
// durable, so a restart (or an operator) can re-admit the job without
// losing completed evaluations.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	StatePaused    State = "paused"
)

// Terminal reports whether no further transitions can occur.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled:
		return true
	case StateQueued, StateRunning, StatePaused:
		return false
	}
	return false
}

func validState(s State) bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StatePaused:
		return true
	}
	return false
}

// Spec is a client-submitted search job description.
type Spec struct {
	// Method is the search method name ("ae", "rs", "rl", ...); the
	// Manager's SpecCheck hook (nasd wires podnas.ParseMethod) rejects
	// unknown names at admission.
	Method string `json:"method"`
	// Evals is the evaluation budget (required, >= 1).
	Evals int `json:"evals"`
	// Workers is the number of concurrent evaluation slots (default 1).
	Workers int `json:"workers,omitempty"`
	// Epochs is the per-evaluation training budget (0 = runner default).
	Epochs int `json:"epochs,omitempty"`
	// Seed seeds the search (0 = runner default).
	Seed uint64 `json:"seed,omitempty"`
	// DeadlineSeconds bounds one run attempt's wall clock; the watchdog
	// evicts the job when exceeded (0 = the manager's default, which may
	// itself be "none").
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// Retries is how many re-admissions the job gets after an eviction or
	// a failed attempt before it parks or fails (0 = manager default,
	// -1 = explicitly none).
	Retries int `json:"retries,omitempty"`
}

// Validate checks the structural invariants every spec must satisfy
// regardless of the runner behind the daemon.
func (s Spec) Validate() error {
	if s.Method == "" {
		return fmt.Errorf("jobs: spec: method is required")
	}
	if s.Evals < 1 {
		return fmt.Errorf("jobs: spec: evals must be >= 1, got %d", s.Evals)
	}
	if s.Workers < 0 {
		return fmt.Errorf("jobs: spec: workers must be >= 0, got %d", s.Workers)
	}
	if s.Epochs < 0 {
		return fmt.Errorf("jobs: spec: epochs must be >= 0, got %d", s.Epochs)
	}
	if s.DeadlineSeconds < 0 {
		return fmt.Errorf("jobs: spec: deadline_seconds must be >= 0, got %g", s.DeadlineSeconds)
	}
	if s.Retries < -1 {
		return fmt.Errorf("jobs: spec: retries must be >= -1, got %d", s.Retries)
	}
	return nil
}

// Result is a finished job's payload: the best architecture the search
// found and how much budget it consumed.
type Result struct {
	BestArch   string  `json:"best_arch"`
	BestReward float64 `json:"best_reward"`
	Evals      int     `json:"evals"`
	// Rung names the runner that produced the result ("search",
	// "fallback", a test fake...), recording how far down the degradation
	// ladder the job had to go.
	Rung string `json:"rung,omitempty"`
}

// Job is the durable record of one submitted search — exactly what the
// manifest on disk holds and what the HTTP API returns.
type Job struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`

	State State `json:"state"`
	// Attempt counts run attempts consumed (0 while never started).
	Attempt int `json:"attempt"`
	// Evals is the number of completed evaluations known to be durable —
	// from the final result for done jobs, from the last search checkpoint
	// otherwise.
	Evals int `json:"evals"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	// Result is set exactly once, when the job reaches StateDone.
	Result *Result `json:"result,omitempty"`
	// Error is the terminal failure or latest eviction reason.
	Error string `json:"error,omitempty"`
}

// Clone returns a deep copy, so callers can hand out snapshots without
// racing the Manager's mutations.
func (j *Job) Clone() Job {
	out := *j
	if j.Result != nil {
		r := *j.Result
		out.Result = &r
	}
	return out
}
