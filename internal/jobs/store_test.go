package jobs

import (
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"podnas/internal/search"
)

func TestStoreRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	j := &Job{
		ID:          "jabc123",
		Spec:        Spec{Method: "ae", Evals: 10, Workers: 2, Seed: 7},
		State:       StateDone,
		Attempt:     2,
		Evals:       10,
		SubmittedAt: time.Now().UTC().Truncate(time.Second),
		Result:      &Result{BestArch: "x", BestReward: 0.95, Evals: 10, Rung: "search"},
	}
	if err := st.Save(j); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := st.Load(j.ID)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.State != StateDone || got.Result == nil || got.Result.BestArch != "x" || got.Spec.Seed != 7 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := st.Load("jmissing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v, want ErrNotFound", err)
	}
	if err := st.Save(&Job{ID: "../escape", Spec: j.Spec, State: StateQueued}); err == nil {
		t.Fatalf("path-escaping id accepted")
	}
}

func TestStoreLoadAllSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	good := &Job{ID: "jgood", Spec: Spec{Method: "rs", Evals: 1}, State: StateQueued, SubmittedAt: time.Now().UTC()}
	if err := st.Save(good); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := os.WriteFile(st.ManifestPath("jbad"), []byte("{torn"), 0o644); err != nil {
		t.Fatalf("write corrupt: %v", err)
	}
	jobs, errs := st.LoadAll()
	if len(jobs) != 1 || jobs[0].ID != "jgood" {
		t.Fatalf("jobs %+v, want only jgood", jobs)
	}
	if len(errs) != 1 {
		t.Fatalf("errs %v, want exactly one corrupt report", errs)
	}
}

func TestStoreRemove(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	j := &Job{ID: "jrm", Spec: Spec{Method: "rs", Evals: 1}, State: StateQueued, SubmittedAt: time.Now().UTC()}
	if err := st.Save(j); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := os.WriteFile(st.TracePath(j.ID), []byte("{}\n"), 0o644); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if err := st.Remove(j.ID); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := os.Stat(st.ManifestPath(j.ID)); !os.IsNotExist(err) {
		t.Fatalf("manifest survived remove")
	}
	if err := st.Remove(j.ID); err != nil {
		t.Fatalf("double remove: %v", err)
	}
}

func TestDecodeManifestRejections(t *testing.T) {
	seal := func(payload string) []byte {
		data, err := search.SealEnvelope([]byte(payload))
		if err != nil {
			t.Fatalf("seal: %v", err)
		}
		return data
	}
	cases := map[string][]byte{
		"empty":          nil,
		"not json":       []byte("hello"),
		"truncated":      seal(`{"id":"jx","state":"queued","spec":{"method":"rs","evals":1}}`)[:20],
		"payload array":  seal(`[1,2,3]`),
		"missing id":     seal(`{"state":"queued","spec":{"method":"rs","evals":1}}`),
		"bad id":         seal(`{"id":"../x","state":"queued","spec":{"method":"rs","evals":1}}`),
		"unknown state":  seal(`{"id":"jx","state":"zombie","spec":{"method":"rs","evals":1}}`),
		"bad spec":       seal(`{"id":"jx","state":"queued","spec":{"method":"rs","evals":0}}`),
		"neg attempt":    seal(`{"id":"jx","state":"queued","attempt":-1,"spec":{"method":"rs","evals":1}}`),
		"done no result": seal(`{"id":"jx","state":"done","spec":{"method":"rs","evals":1}}`),
	}
	for name, data := range cases {
		if _, err := DecodeManifest(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	ok := seal(`{"id":"jx","state":"queued","spec":{"method":"rs","evals":1}}`)
	if _, err := DecodeManifest(ok); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

// FuzzJobManifestDecode hammers the manifest parser with corrupt,
// truncated, and mutated inputs: it must reject bad bytes with an error —
// never panic — and anything it accepts must re-encode into a manifest it
// accepts again (no bogus Jobs slip through).
func FuzzJobManifestDecode(f *testing.F) {
	valid := &Job{
		ID:          "jfeed0001",
		Spec:        Spec{Method: "rs", Evals: 3, Workers: 1},
		State:       StateRunning,
		Attempt:     1,
		SubmittedAt: time.Unix(1700000000, 0).UTC(),
	}
	payload, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	sealed, err := search.SealEnvelope(payload)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add(payload) // legacy unenveloped form
	f.Add([]byte(`{"version":1,"crc":0,"payload":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	if len(sealed) > 10 {
		f.Add(sealed[:len(sealed)/2]) // truncation
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeManifest(data)
		if err != nil {
			return
		}
		// Accepted: the invariants DecodeManifest promises must hold, and
		// the manifest must survive a save/load cycle.
		if j.ID == "" || !validState(j.State) || j.Spec.Evals < 1 || j.Attempt < 0 || j.Evals < 0 {
			t.Fatalf("accepted manifest violates invariants: %+v", j)
		}
		re, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		resealed, err := search.SealEnvelope(re)
		if err != nil {
			t.Fatalf("re-seal: %v", err)
		}
		if _, err := DecodeManifest(resealed); err != nil {
			t.Fatalf("re-decode of accepted manifest failed: %v", err)
		}
	})
}
