package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"podnas/internal/fsatomic"
	"podnas/internal/search"
)

// Store persists job manifests under one directory, one file per job:
//
//	<dir>/<id>.job.json    manifest (versioned+CRC envelope, atomic+fsynced)
//	<dir>/<id>.ck.json     the job's search checkpoint (written by the runner)
//	<dir>/<id>.trace.jsonl the job's event trace (appended across incarnations)
//
// Manifests go through the same checkpoint envelope (version + CRC32 over
// the compacted payload) and the same write discipline (temp file, fsync,
// rename, directory fsync) as search checkpoints, so a crash at any point
// leaves either the old manifest or the new one — never a torn file.
type Store struct{ Dir string }

const manifestSuffix = ".job.json"

// NewStore creates the state directory (if needed) and returns a store
// over it.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: store dir is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create store dir: %w", err)
	}
	return &Store{Dir: dir}, nil
}

// ManifestPath returns the manifest file for id.
func (s *Store) ManifestPath(id string) string { return filepath.Join(s.Dir, id+manifestSuffix) }

// CheckpointPath returns the search-checkpoint file for id.
func (s *Store) CheckpointPath(id string) string { return filepath.Join(s.Dir, id+".ck.json") }

// TracePath returns the event-trace file for id.
func (s *Store) TracePath(id string) string { return filepath.Join(s.Dir, id+".trace.jsonl") }

// Save commits the manifest durably: by the time Save returns, a crash (or
// SIGKILL) cannot roll the job back to its previous state.
func (s *Store) Save(j *Job) error {
	if err := validID(j.ID); err != nil {
		return err
	}
	payload, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encode manifest %s: %w", j.ID, err)
	}
	data, err := search.SealEnvelope(payload)
	if err != nil {
		return fmt.Errorf("jobs: seal manifest %s: %w", j.ID, err)
	}
	if err := fsatomic.WriteFile(s.ManifestPath(j.ID), data, 0o644); err != nil {
		return fmt.Errorf("jobs: write manifest %s: %w", j.ID, err)
	}
	return nil
}

// Load reads one manifest. A missing file reports ErrNotFound.
func (s *Store) Load(id string) (*Job, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.ManifestPath(id))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("jobs: load %s: %w", id, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: load %s: %w", id, err)
	}
	j, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("jobs: load %s: %w", id, err)
	}
	if j.ID != id {
		return nil, fmt.Errorf("jobs: load %s: manifest names job %q", id, j.ID)
	}
	return j, nil
}

// LoadAll reads every manifest in the directory, sorted by submission time
// (ties broken by ID for determinism). Unreadable or corrupt manifests do
// not block the rest — the daemon must come back up after a crash even if
// one file is damaged — they are reported alongside the good ones.
func (s *Store) LoadAll() ([]*Job, []error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, []error{fmt.Errorf("jobs: scan store: %w", err)}
	}
	var out []*Job
	var errs []error
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, manifestSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, manifestSuffix)
		j, err := s.Load(id)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].SubmittedAt.Equal(out[b].SubmittedAt) {
			return out[a].SubmittedAt.Before(out[b].SubmittedAt)
		}
		return out[a].ID < out[b].ID
	})
	return out, errs
}

// Remove deletes every file belonging to id (manifest, checkpoint, trace).
// Missing files are fine; the manifest must go last so a crash mid-remove
// never leaves a manifest pointing at deleted state.
func (s *Store) Remove(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	for _, p := range []string{s.CheckpointPath(id), s.TracePath(id), s.ManifestPath(id)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("jobs: remove %s: %w", id, err)
		}
	}
	return nil
}

// DecodeManifest parses and validates one manifest file's bytes: envelope
// (version + CRC), JSON payload, and the structural invariants a daemon
// relies on. It is the fuzz surface for the store — corrupt, truncated, or
// hostile input must produce an error, never a panic or a bogus Job.
func DecodeManifest(data []byte) (*Job, error) {
	payload, err := search.OpenEnvelope("job manifest", data)
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(payload, &j); err != nil {
		return nil, fmt.Errorf("jobs: decode manifest: %w: %v", search.ErrBadCheckpoint, err)
	}
	if err := validID(j.ID); err != nil {
		return nil, fmt.Errorf("jobs: decode manifest: %w: %v", search.ErrBadCheckpoint, err)
	}
	if !validState(j.State) {
		return nil, fmt.Errorf("jobs: decode manifest: %w: unknown state %q", search.ErrBadCheckpoint, j.State)
	}
	if err := j.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("jobs: decode manifest: %w: %v", search.ErrBadCheckpoint, err)
	}
	if j.Attempt < 0 || j.Evals < 0 {
		return nil, fmt.Errorf("jobs: decode manifest: %w: negative counters", search.ErrBadCheckpoint)
	}
	if j.State == StateDone && j.Result == nil {
		return nil, fmt.Errorf("jobs: decode manifest: %w: done job without result", search.ErrBadCheckpoint)
	}
	return &j, nil
}

// validID gates IDs before they become file-path components or URL
// segments: short, and drawn from a filesystem- and URL-safe alphabet.
func validID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("jobs: invalid job id %q", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("jobs: invalid job id %q", id)
		}
	}
	return nil
}
