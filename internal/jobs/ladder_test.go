package jobs

import (
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/obs"
	"podnas/internal/search"
	"podnas/internal/worker"
)

// hashEval is a deterministic in-process evaluator standing in for real
// training, so the ladder test's exactly-once assertions are about delivery,
// not model variance.
type hashEval struct{}

func (hashEval) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	h := fnv.New64a()
	for _, v := range a {
		fmt.Fprintf(h, "%d,", v)
	}
	fmt.Fprintf(h, "s%d", seed)
	return float64(h.Sum64()%1000) / 1000, nil
}

// deadAddr reserves a TCP port and releases it, returning an address that
// refuses connections — the "remote fleet is gone" rung of the ladder.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// poolRunner drives a real worker.Pool configured with the full degradation
// ladder: a dead remote transport, an unspawnable local subprocess fallback,
// and an in-process Fallback evaluator. It keeps the pool stats around so
// the test can assert which rungs were actually exercised.
type poolRunner struct {
	remote   string
	badBin   string
	lastStat worker.PoolStats
}

func (r *poolRunner) Name() string { return "pool-ladder" }

func (r *poolRunner) Run(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
	pool, err := worker.NewPool(worker.PoolOptions{
		Workers: 1,
		Transport: &worker.DialTransport{
			Addrs:       []string{r.remote},
			DialTimeout: 100 * time.Millisecond,
			Seed:        1,
		},
		LocalFallback: &worker.PipeTransport{
			Command: func(id, inc int) *exec.Cmd { return exec.Command(r.badBin) },
		},
		Fallback:       hashEval{},
		Heartbeat:      20 * time.Millisecond,
		MaxRestarts:    1,
		RestartBackoff: time.Millisecond,
		StartTimeout:   time.Second,
		Seed:           1,
		Recorder:       run.Recorder,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		r.lastStat = pool.Stats()
		pool.Close()
	}()

	s, err := search.NewRandomSearch(arch.Default(), spec.Seed)
	if err != nil {
		return nil, err
	}
	results, err := search.RunAsyncCtx(ctx, s, pool, search.RunAsyncOptions{
		Workers:  1,
		MaxEvals: spec.Evals,
		Seed:     spec.Seed,
		Recorder: run.Recorder,
	})
	if err != nil {
		return nil, err
	}
	best := Result{Evals: len(results), BestReward: -1}
	for _, res := range results {
		if res.Err == nil && res.Reward > best.BestReward {
			best.BestReward = res.Reward
			best.BestArch = res.Arch.Key()
		}
	}
	if best.BestArch == "" {
		return nil, fmt.Errorf("pool-ladder: no successful evaluation")
	}
	return &best, nil
}

// TestFullDegradationLadderWithRealPool walks the complete ladder with a
// real worker.Pool inside a managed job: the remote transport refuses every
// dial, the local subprocess fallback points at a binary that does not
// exist, and the pool must degrade to the in-process Fallback evaluator —
// while the job still finishes exactly once with a coherent event stream.
// Run under -race this also exercises the recorder fan-out (jobTagger + tee)
// against the pool's supervision goroutines.
func TestFullDegradationLadderWithRealPool(t *testing.T) {
	if testing.Short() {
		t.Skip("spawn-timeout ladder walk")
	}
	dir := t.TempDir()
	runner := &poolRunner{
		remote: deadAddr(t),
		badBin: filepath.Join(dir, "no-such-worker-binary"),
	}
	m, ring := newTestManager(t, dir, []Runner{runner}, nil)

	const evals = 3
	sub, err := m.Submit(Spec{Method: "rs", Evals: evals, Seed: 7, Retries: -1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := sub.ID
	j := waitState(t, m, id, StateDone)
	if j.Result == nil || j.Result.Evals != evals || j.Result.BestArch == "" {
		t.Fatalf("bad result: %+v", j.Result)
	}

	st := runner.lastStat
	if !st.Degraded {
		t.Fatalf("pool never degraded: %+v", st)
	}
	if st.LocalFallbacks != 1 {
		t.Fatalf("want exactly one remote→local demotion, got %d (%+v)", st.LocalFallbacks, st)
	}
	if st.FallbackEvals != evals {
		t.Fatalf("want all %d evals served in-process, got %d (%+v)", evals, st.FallbackEvals, st)
	}
	if st.Connects != 0 {
		t.Fatalf("dead endpoint handshaken %d times", st.Connects)
	}

	// Event-stream invariants: the job frame brackets the evaluations, and
	// every evaluation index finishes exactly once (exactly-once delivery
	// even though the pool walked the whole ladder underneath).
	events := jobEvents(ring, id)
	var starts, finishes, evalFinish int
	finishByIdx := map[int]int{}
	firstEval, jobStart, jobFinish := -1, -1, -1
	for i, e := range events {
		switch e.Kind {
		case obs.KindJobStart:
			starts++
			jobStart = i
		case obs.KindJobFinish:
			finishes++
			jobFinish = i
		case obs.KindEvalStart:
			if firstEval < 0 {
				firstEval = i
			}
		case obs.KindEvalFinish:
			evalFinish++
			finishByIdx[e.Eval]++
		}
	}
	if starts != 1 || finishes != 1 {
		t.Fatalf("want exactly one job_start and job_finish, got %d/%d", starts, finishes)
	}
	if jobStart < 0 || firstEval < 0 || jobStart > firstEval {
		t.Fatalf("job_start (%d) must precede first eval_start (%d)", jobStart, firstEval)
	}
	if jobFinish != len(events)-1 {
		t.Fatalf("job_finish at %d, want last of %d events", jobFinish, len(events))
	}
	if evalFinish != evals {
		t.Fatalf("want %d eval_finish events, got %d", evals, evalFinish)
	}
	for idx, n := range finishByIdx {
		if n != 1 {
			t.Fatalf("eval %d finished %d times", idx, n)
		}
	}
	if events[len(events)-1].Method != string(StateDone) {
		t.Fatalf("final event method %q, want %q", events[len(events)-1].Method, StateDone)
	}
}
