package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"podnas/internal/fsatomic"
	"podnas/internal/obs"
	"podnas/internal/search"
)

// fakeRunner adapts a closure to the Runner interface.
type fakeRunner struct {
	name string
	run  func(ctx context.Context, spec Spec, run RunInfo) (*Result, error)
}

func (f *fakeRunner) Name() string { return f.name }
func (f *fakeRunner) Run(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
	return f.run(ctx, spec, run)
}

// writeFakeCheckpoint persists a minimal but fully valid search checkpoint
// holding n completed results, through the same envelope the real
// checkpointer uses.
func writeFakeCheckpoint(t *testing.T, path string, n int) {
	t.Helper()
	type rec struct {
		Index  int     `json:"index"`
		Arch   []int   `json:"arch"`
		Reward float64 `json:"reward"`
	}
	recs := make([]rec, n)
	for i := range recs {
		recs[i] = rec{Index: i, Arch: []int{1, 2}, Reward: 0.1 * float64(i)}
	}
	payload, err := json.Marshal(map[string]any{"kind": "RS", "results": recs})
	if err != nil {
		t.Fatalf("encode checkpoint: %v", err)
	}
	sealed, err := search.SealEnvelope(payload)
	if err != nil {
		t.Fatalf("seal checkpoint: %v", err)
	}
	if err := fsatomic.WriteFile(path, sealed, 0o644); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
}

func newTestManager(t *testing.T, dir string, rungs []Runner, mutate func(*Options)) (*Manager, *obs.Ring) {
	t.Helper()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	ring := obs.NewRing(4096)
	opts := Options{
		Store:            st,
		Rungs:            rungs,
		RetryBudget:      0,
		WatchdogInterval: 5 * time.Millisecond,
		Recorder:         ring,
	}
	if mutate != nil {
		mutate(&opts)
	}
	m, err := New(opts)
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m, ring
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if j.State == want {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s (err=%q)", id, j.State, want, j.Error)
	return Job{}
}

func jobEvents(ring *obs.Ring, id string) []obs.Event {
	var out []obs.Event
	for _, e := range ring.Events() {
		if e.Job == id {
			out = append(out, e)
		}
	}
	return out
}

func kindsOf(events []obs.Event) []obs.Kind {
	out := make([]obs.Kind, len(events))
	for i, e := range events {
		out[i] = e.Kind
	}
	return out
}

func TestJobLifecycleHappyPath(t *testing.T) {
	dir := t.TempDir()
	done := &fakeRunner{name: "ok", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		writeFakeCheckpoint(t, run.CheckpointPath, spec.Evals)
		return &Result{BestArch: "a1", BestReward: 0.9, Evals: spec.Evals}, nil
	}}
	m, ring := newTestManager(t, dir, []Runner{done}, nil)

	j, err := m.Submit(Spec{Method: "rs", Evals: 4})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitState(t, m, j.ID, StateDone)
	if got.Result == nil || got.Result.BestArch != "a1" || got.Result.Rung != "ok" {
		t.Fatalf("bad result: %+v", got.Result)
	}
	if got.Evals != 4 || got.Attempt != 1 {
		t.Fatalf("evals=%d attempt=%d, want 4/1", got.Evals, got.Attempt)
	}
	res, err := m.Result(j.ID)
	if err != nil || res.BestReward != got.Result.BestReward {
		t.Fatalf("result endpoint: %+v %v", res, err)
	}

	// Event ordering: submitted → durably dispatched → started → committed →
	// finished, all tagged with the job ID. Trace spans (admission,
	// queue_wait, job) interleave with the lifecycle stream; the lifecycle
	// order itself must hold with them filtered out.
	want := []obs.Kind{obs.KindJobSubmit, obs.KindJobCheckpoint, obs.KindJobStart, obs.KindJobCheckpoint, obs.KindJobFinish}
	evs := jobEvents(ring, j.ID)
	var lifecycle []obs.Event
	spanNames := map[string]int{}
	for _, e := range evs {
		if e.Kind == obs.KindSpan {
			spanNames[e.Name]++
			continue
		}
		lifecycle = append(lifecycle, e)
	}
	if fmt.Sprint(kindsOf(lifecycle)) != fmt.Sprint(want) {
		t.Fatalf("event order %v, want %v", kindsOf(lifecycle), want)
	}
	for _, name := range []string{"admission", "queue_wait", "job"} {
		if spanNames[name] != 1 {
			t.Fatalf("span %q emitted %d times, want 1 (all: %v)", name, spanNames[name], spanNames)
		}
	}
	last := lifecycle[len(lifecycle)-1]
	if last.Method != string(StateDone) || last.Eval != 4 {
		t.Fatalf("finish event %+v", last)
	}

	// The per-job trace holds the same story, starting with a header.
	st := m.opts.Store
	data, err := os.ReadFile(st.TracePath(j.ID))
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var first obs.Event
	if err := json.Unmarshal(data[:indexByte(data, '\n')], &first); err != nil {
		t.Fatalf("trace first line: %v", err)
	}
	if first.Kind != obs.KindTraceHeader || first.Job != j.ID {
		t.Fatalf("trace header %+v", first)
	}

	// The manifest on disk survives a reload and keeps the result.
	onDisk, err := st.Load(j.ID)
	if err != nil || onDisk.State != StateDone || onDisk.Result == nil {
		t.Fatalf("manifest reload: %+v %v", onDisk, err)
	}
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return len(b)
}

func TestAdmissionControlBackpressure(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	blocker := &fakeRunner{name: "block", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		select {
		case <-release:
			return &Result{BestArch: "a", BestReward: 1, Evals: spec.Evals}, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("blocker: %w", ctx.Err())
		}
	}}
	m, _ := newTestManager(t, dir, []Runner{blocker}, func(o *Options) {
		o.MaxRunning = 1
		o.MaxQueued = 1
	})

	j1, err := m.Submit(Spec{Method: "rs", Evals: 1})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitState(t, m, j1.ID, StateRunning)
	j2, err := m.Submit(Spec{Method: "rs", Evals: 1})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := m.Submit(Spec{Method: "rs", Evals: 1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit 3: got %v, want ErrUnavailable", err)
	}
	if ra := m.RetryAfter(); ra < time.Second {
		t.Fatalf("RetryAfter %v, want >= 1s", ra)
	}
	close(release)
	waitState(t, m, j1.ID, StateDone)
	waitState(t, m, j2.ID, StateDone)
}

func TestDegradationLadderFallsThrough(t *testing.T) {
	dir := t.TempDir()
	var firstCalls, secondCalls atomic.Int32
	bad := &fakeRunner{name: "remote", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		firstCalls.Add(1)
		// Simulate partial progress before dying: the next rung must resume.
		writeFakeCheckpoint(t, run.CheckpointPath, 2)
		return nil, fmt.Errorf("remote agents unreachable")
	}}
	good := &fakeRunner{name: "inproc", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		secondCalls.Add(1)
		if run.Resume == nil || run.Resume.NumResults() != 2 {
			return nil, fmt.Errorf("expected resume with 2 results, got %+v", run.Resume)
		}
		return &Result{BestArch: "b", BestReward: 0.5, Evals: spec.Evals}, nil
	}}
	m, ring := newTestManager(t, dir, []Runner{bad, good}, nil)

	j, err := m.Submit(Spec{Method: "rs", Evals: 5})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitState(t, m, j.ID, StateDone)
	if got.Result.Rung != "inproc" {
		t.Fatalf("rung %q, want inproc", got.Result.Rung)
	}
	if firstCalls.Load() != 1 || secondCalls.Load() != 1 {
		t.Fatalf("calls remote=%d inproc=%d, want 1/1", firstCalls.Load(), secondCalls.Load())
	}
	// Exactly one finish event despite the fallen rung.
	var finishes int
	for _, e := range jobEvents(ring, j.ID) {
		if e.Kind == obs.KindJobFinish {
			finishes++
		}
	}
	if finishes != 1 {
		t.Fatalf("finish events %d, want 1", finishes)
	}
}

func TestLadderExhaustedParksWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	bad := &fakeRunner{name: "bad", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		writeFakeCheckpoint(t, run.CheckpointPath, 1)
		return nil, fmt.Errorf("no capacity")
	}}
	m, _ := newTestManager(t, dir, []Runner{bad}, nil)
	j, err := m.Submit(Spec{Method: "rs", Evals: 3, Retries: -1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitState(t, m, j.ID, StatePaused)
	if got.Evals != 1 {
		t.Fatalf("paused evals %d, want 1 (from checkpoint)", got.Evals)
	}
	if got.Error == "" {
		t.Fatalf("paused job should carry the failure reason")
	}
}

func TestLadderExhaustedNoCheckpointFails(t *testing.T) {
	dir := t.TempDir()
	bad := &fakeRunner{name: "bad", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		return nil, fmt.Errorf("no capacity")
	}}
	m, _ := newTestManager(t, dir, []Runner{bad}, nil)
	j, err := m.Submit(Spec{Method: "rs", Evals: 3, Retries: -1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, m, j.ID, StateFailed)
}

func TestRetryBudgetReRunsFailedAttempt(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int32
	flaky := &fakeRunner{name: "flaky", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient")
		}
		return &Result{BestArch: "c", BestReward: 0.7, Evals: spec.Evals}, nil
	}}
	m, _ := newTestManager(t, dir, []Runner{flaky}, nil)
	j, err := m.Submit(Spec{Method: "rs", Evals: 2, Retries: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitState(t, m, j.ID, StateDone)
	if got.Attempt != 2 || calls.Load() != 2 {
		t.Fatalf("attempt=%d calls=%d, want 2/2", got.Attempt, calls.Load())
	}
}

func TestWatchdogEvictsOnDeadline(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int32
	slowThenFast := &fakeRunner{name: "slow", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		if calls.Add(1) == 1 {
			writeFakeCheckpoint(t, run.CheckpointPath, 1)
			<-ctx.Done() // hang until the watchdog evicts us
			return nil, fmt.Errorf("evicted: %w", ctx.Err())
		}
		return &Result{BestArch: "d", BestReward: 0.8, Evals: spec.Evals}, nil
	}}
	m, ring := newTestManager(t, dir, []Runner{slowThenFast}, nil)
	j, err := m.Submit(Spec{Method: "rs", Evals: 2, DeadlineSeconds: 0.05, Retries: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitState(t, m, j.ID, StateDone)
	if got.Attempt != 2 {
		t.Fatalf("attempt %d, want 2 (one eviction, one success)", got.Attempt)
	}
	var evicts int
	for _, e := range jobEvents(ring, j.ID) {
		if e.Kind == obs.KindJobEvict {
			evicts++
			if e.Err == "" {
				t.Fatalf("evict event without reason")
			}
		}
	}
	if evicts != 1 {
		t.Fatalf("evict events %d, want 1", evicts)
	}
}

func TestDeadlineExhaustedParks(t *testing.T) {
	dir := t.TempDir()
	slow := &fakeRunner{name: "slow", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		writeFakeCheckpoint(t, run.CheckpointPath, 1)
		<-ctx.Done()
		return nil, fmt.Errorf("evicted: %w", ctx.Err())
	}}
	m, _ := newTestManager(t, dir, []Runner{slow}, nil)
	j, err := m.Submit(Spec{Method: "rs", Evals: 2, DeadlineSeconds: 0.05, Retries: -1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, m, j.ID, StatePaused)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	blocker := &fakeRunner{name: "block", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		select {
		case <-release:
			return &Result{BestArch: "a", BestReward: 1, Evals: spec.Evals}, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("blocker: %w", ctx.Err())
		}
	}}
	m, _ := newTestManager(t, dir, []Runner{blocker}, func(o *Options) {
		o.MaxRunning = 1
		o.MaxQueued = 4
	})
	j1, _ := m.Submit(Spec{Method: "rs", Evals: 1})
	waitState(t, m, j1.ID, StateRunning)
	j2, _ := m.Submit(Spec{Method: "rs", Evals: 1})

	if err := m.Cancel(j2.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	waitState(t, m, j2.ID, StateCancelled)
	if err := m.Cancel(j1.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitState(t, m, j1.ID, StateCancelled)
	if err := m.Cancel(j1.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("double cancel: %v, want ErrTerminal", err)
	}
	if _, err := m.Result(j1.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("result of cancelled: %v, want ErrNotDone", err)
	}
	if err := m.Cancel("jdeadbeef0000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
}

func TestDrainCheckpointsAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 2)
	var resumedWith atomic.Int32
	runner := func(final bool) *fakeRunner {
		return &fakeRunner{name: "r", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
			if !final {
				writeFakeCheckpoint(t, run.CheckpointPath, 3)
				started <- struct{}{}
				<-ctx.Done()
				return nil, fmt.Errorf("drained: %w", ctx.Err())
			}
			if run.Resume != nil {
				resumedWith.Store(int32(run.Resume.NumResults()))
			}
			return &Result{BestArch: "z", BestReward: 0.99, Evals: spec.Evals}, nil
		}}
	}

	m1, ring := newTestManager(t, dir, []Runner{runner(false)}, nil)
	j, err := m1.Submit(Spec{Method: "rs", Evals: 5})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	got, _ := m1.Get(j.ID)
	if got.State != StateQueued || got.Evals != 3 {
		t.Fatalf("after drain: state=%s evals=%d, want queued/3", got.State, got.Evals)
	}
	// Admission is closed while draining.
	if _, err := m1.Submit(Spec{Method: "rs", Evals: 1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit during drain: %v, want ErrUnavailable", err)
	}
	var drainEvict bool
	for _, e := range jobEvents(ring, j.ID) {
		if e.Kind == obs.KindJobEvict && e.Err == evictDrain {
			drainEvict = true
		}
	}
	if !drainEvict {
		t.Fatalf("no drain evict event recorded")
	}
	if err := m1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Next incarnation over the same directory resumes from the checkpoint.
	m2, _ := newTestManager(t, dir, []Runner{runner(true)}, nil)
	got = waitState(t, m2, j.ID, StateDone)
	if resumedWith.Load() != 3 {
		t.Fatalf("resumed with %d results, want 3", resumedWith.Load())
	}
	if got.Attempt != 2 {
		t.Fatalf("attempt %d, want 2", got.Attempt)
	}

	// A third incarnation must not re-run the finished job: exactly-once.
	poison := &fakeRunner{name: "poison", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		t.Errorf("finished job was re-run")
		return nil, fmt.Errorf("poison")
	}}
	m3, _ := newTestManager(t, dir, []Runner{poison}, nil)
	time.Sleep(50 * time.Millisecond) // give a wrong scheduler time to misbehave
	got3, err := m3.Get(j.ID)
	if err != nil || got3.State != StateDone || got3.Result == nil || got3.Result.BestArch != "z" {
		t.Fatalf("after restart: %+v %v", got3, err)
	}
}

func TestCrashRestartReadmitsRunningJobs(t *testing.T) {
	// Simulate a SIGKILL by writing a manifest that claims to be running —
	// exactly what a killed daemon leaves behind — and checking that a new
	// manager re-admits and finishes it.
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	j := &Job{ID: "jcafecafe0001", Spec: Spec{Method: "rs", Evals: 4}, State: StateRunning, Attempt: 1, SubmittedAt: time.Now().UTC()}
	if err := st.Save(j); err != nil {
		t.Fatalf("save: %v", err)
	}
	writeFakeCheckpoint(t, st.CheckpointPath(j.ID), 2)

	var sawResume atomic.Int32
	done := &fakeRunner{name: "ok", run: func(ctx context.Context, spec Spec, run RunInfo) (*Result, error) {
		if run.Resume != nil {
			sawResume.Store(int32(run.Resume.NumResults()))
		}
		return &Result{BestArch: "r", BestReward: 0.6, Evals: spec.Evals}, nil
	}}
	m, _ := newTestManager(t, dir, []Runner{done}, nil)
	got := waitState(t, m, j.ID, StateDone)
	if sawResume.Load() != 2 {
		t.Fatalf("resumed with %d, want 2", sawResume.Load())
	}
	if got.Attempt != 2 {
		t.Fatalf("attempt %d, want 2", got.Attempt)
	}
}
