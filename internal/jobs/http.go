package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
)

// API wires a Manager to HTTP. Routes (all JSON):
//
//	POST /jobs             submit a Spec → 201 Job; 429 + Retry-After when
//	                       the queue is full or the daemon is draining
//	GET  /jobs             list all jobs
//	GET  /jobs/{id}        one job's status
//	POST /jobs/{id}/cancel cancel a job
//	GET  /jobs/{id}/result a done job's Result (409 while not done)
//	GET  /jobs/{id}/trace  the job's JSONL event trace (nasreport tail this)
//	POST /drain            begin graceful drain → 202
//	GET  /healthz          load counters
//
// OnDrain, when set, is called (once, in its own goroutine) after a POST
// /drain request is accepted — nasd uses it to exit after the drain
// settles.
type API struct {
	Manager *Manager
	OnDrain func()
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error      string  `json:"error"`
	RetryAfter float64 `json:"retry_after_seconds,omitempty"`
}

// Handler returns the daemon's API mux.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", a.submit)
	mux.HandleFunc("GET /jobs", a.list)
	mux.HandleFunc("GET /jobs/{id}", a.get)
	mux.HandleFunc("POST /jobs/{id}/cancel", a.cancel)
	mux.HandleFunc("GET /jobs/{id}/result", a.result)
	mux.HandleFunc("GET /jobs/{id}/trace", a.trace)
	mux.HandleFunc("POST /drain", a.drain)
	mux.HandleFunc("GET /healthz", a.healthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// writeErr maps the package's sentinels to status codes. ErrUnavailable
// carries jittered Retry-After guidance so clients back off instead of
// stampeding a saturated daemon.
func (a *API) writeErr(w http.ResponseWriter, err error) {
	body := errorBody{Error: err.Error()}
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnavailable):
		code = http.StatusTooManyRequests
		ra := a.Manager.RetryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(int(ra.Seconds()+0.5)))
		body.RetryAfter = ra.Seconds()
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTerminal), errors.Is(err, ErrNotDone):
		code = http.StatusConflict
	}
	writeJSON(w, code, body)
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad spec: %v", err)})
		return
	}
	job, err := a.Manager.Submit(spec)
	if err != nil {
		if errors.Is(err, ErrUnavailable) {
			a.writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusCreated, job)
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.Manager.List())
}

func (a *API) get(w http.ResponseWriter, r *http.Request) {
	job, err := a.Manager.Get(r.PathValue("id"))
	if err != nil {
		a.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.Manager.Cancel(id); err != nil {
		a.writeErr(w, err)
		return
	}
	job, err := a.Manager.Get(id)
	if err != nil {
		a.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (a *API) result(w http.ResponseWriter, r *http.Request) {
	res, err := a.Manager.Result(r.PathValue("id"))
	if err != nil {
		a.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// trace streams the job's JSONL trace as it stands now. nasreport tail
// polls this endpoint; each GET serves a consistent snapshot of the
// append-only file.
func (a *API) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := a.Manager.Get(id); err != nil {
		a.writeErr(w, err)
		return
	}
	f, err := os.Open(a.Manager.opts.Store.TracePath(id))
	if os.IsNotExist(err) {
		// Admitted but never started: an empty trace is the honest answer.
		w.Header().Set("Content-Type", "application/jsonl")
		w.WriteHeader(http.StatusOK)
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	http.ServeContent(w, r, id+".trace.jsonl", fi.ModTime(), f)
}

func (a *API) drain(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "draining"})
	go func() {
		if a.OnDrain != nil {
			a.OnDrain()
			return
		}
		_ = a.Manager.Drain(context.Background())
	}()
}

func (a *API) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.Manager.Stats())
}
