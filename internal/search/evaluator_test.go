package search

import (
	"math"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/nn"
	"podnas/internal/tensor"
	"podnas/internal/window"
)

// tinyWindows builds a minimal scaled windowed data set for real training.
func tinyWindows(t *testing.T, nr int) (*window.Dataset, *window.Dataset) {
	t.Helper()
	a := tensor.NewMatrix(nr, 60)
	rng := tensor.NewRNG(1)
	for r := 0; r < nr; r++ {
		row := a.Row(r)
		for i := range row {
			row[i] = 0.5 * rng.NormFloat64()
		}
	}
	d, err := window.Build(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := d.Split(0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return train, val
}

func evalSpace(nr int) arch.Space {
	s := arch.Default()
	s.InputDim = nr
	s.OutputDim = nr
	s.Ops = []int{0, 4, 8}
	s.NumNodes = 2
	return s
}

func TestNewTrainingEvaluatorValidation(t *testing.T) {
	train, val := tinyWindows(t, 5)
	s := evalSpace(5)
	cfg := nn.DefaultTrainConfig()
	if _, err := NewTrainingEvaluator(s, train, val, cfg); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := evalSpace(3) // dimension mismatch
	if _, err := NewTrainingEvaluator(bad, train, val, cfg); err == nil {
		t.Error("mode mismatch should fail")
	}
	empty := &window.Dataset{X: tensor.NewTensor3(0, 4, 5), Y: tensor.NewTensor3(0, 4, 5), K: 4, Nr: 5}
	if _, err := NewTrainingEvaluator(s, empty, val, cfg); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestTrainingEvaluatorDeterministicPerSeed(t *testing.T) {
	train, val := tinyWindows(t, 5)
	s := evalSpace(5)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 2
	ev, err := NewTrainingEvaluator(s, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Random(tensor.NewRNG(3))
	r1, err := ev.Evaluate(a, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ev.Evaluate(a, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("same seed gave rewards %g and %g", r1, r2)
	}
	r3, _ := ev.Evaluate(a, 43)
	if r1 == r3 {
		t.Error("different seeds gave identical rewards (suspicious)")
	}
	if r1 < -1 || r1 > 1 {
		t.Errorf("reward %g outside [-1, 1]", r1)
	}
}

func TestTrainingEvaluatorUnscaledMetric(t *testing.T) {
	train, val := tinyWindows(t, 5)
	s := evalSpace(5)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 1
	ev, _ := NewTrainingEvaluator(s, train, val, cfg)
	a := s.Random(tensor.NewRNG(4))
	plain, err := ev.Evaluate(a, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Attach a non-trivial scaler: the reward must change (different metric
	// weighting) but stay finite.
	ev.Scaler = window.FitMinMax(train.X, 0.5)
	scaled, err := ev.Evaluate(a, 7)
	if err != nil {
		t.Fatal(err)
	}
	if scaled < -10 || scaled > 1 {
		t.Errorf("unscaled-metric reward %g implausible", scaled)
	}
	_ = plain
}

// slowEvaluator sleeps to exercise the deadline path.
type slowEvaluator struct{ space arch.Space }

func (e *slowEvaluator) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	time.Sleep(30 * time.Millisecond)
	return 0.5, nil
}

// TestTrainingEvaluatorClampsNonFiniteReward: a constant-target validation
// set has zero variance, so the R² denominator vanishes and the metric goes
// non-finite. The evaluator must clamp that to the divergence sentinel — a
// NaN reward would otherwise poison Best and every JSON history.
func TestTrainingEvaluatorClampsNonFiniteReward(t *testing.T) {
	train, _ := tinyWindows(t, 5)
	s := evalSpace(5)
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 1
	constVal := &window.Dataset{
		X: tensor.NewTensor3(3, 4, 5), Y: tensor.NewTensor3(3, 4, 5), K: 4, Nr: 5,
	}
	ev, err := NewTrainingEvaluator(s, train, constVal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Random(tensor.NewRNG(6))
	// Sanity: the raw metric really is non-finite for this setup.
	raw := func() float64 {
		g, err := s.Build(a, tensor.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Seed = 9 ^ 0x5eed
		if _, err := nn.Train(g, train.X, train.Y, c); err != nil {
			t.Fatal(err)
		}
		return nn.EvaluateR2(g, constVal.X, constVal.Y)
	}()
	if !math.IsNaN(raw) && !math.IsInf(raw, 0) {
		t.Skipf("constant targets unexpectedly produced finite R² %g", raw)
	}
	r, err := ev.Evaluate(a, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r != DivergedReward {
		t.Errorf("non-finite R² evaluated to %g, want sentinel %g", r, DivergedReward)
	}
}

// TestBestSkipsNonFinite: NaN and ±Inf rewards must never win a search.
func TestBestSkipsNonFinite(t *testing.T) {
	res := []Result{
		{Reward: math.NaN()},
		{Reward: math.Inf(1)},
		{Reward: 0.3},
		{Reward: math.Inf(-1)},
	}
	b, ok := Best(res)
	if !ok || b.Reward != 0.3 {
		t.Errorf("Best = %+v ok=%v, want finite 0.3", b, ok)
	}
	if _, ok := Best([]Result{{Reward: math.NaN()}}); ok {
		t.Error("all-NaN results should report !ok")
	}
}

func TestRunAsyncDeadline(t *testing.T) {
	s := arch.Default()
	rs, _ := NewRandomSearch(s, 1)
	res, err := RunAsync(rs, &slowEvaluator{space: s}, RunAsyncOptions{
		Workers: 2, MaxEvals: 1000, Deadline: 120 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("deadline run produced no results")
	}
	if len(res) >= 1000 {
		t.Errorf("deadline did not stop the run (%d results)", len(res))
	}
	for _, r := range res {
		if r.Elapsed <= 0 {
			t.Error("missing elapsed time")
		}
	}
}
