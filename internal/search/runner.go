package search

import (
	"fmt"
	"sync"
	"time"

	"podnas/internal/arch"
)

// Result is one completed architecture evaluation.
type Result struct {
	Index   int // proposal order
	Arch    arch.Arch
	Reward  float64
	Err     error
	Elapsed time.Duration
}

// RunAsyncOptions configures the asynchronous parallel runner.
type RunAsyncOptions struct {
	// Workers is the number of concurrent evaluation goroutines — the
	// in-process analogue of the paper's worker nodes.
	Workers int
	// MaxEvals bounds the total number of evaluations.
	MaxEvals int
	// Deadline optionally bounds wall-clock time (0 = none). Workers finish
	// their in-flight evaluation and stop proposing once it passes.
	Deadline time.Duration
	// Seed derives per-evaluation seeds.
	Seed uint64
}

// RunAsync drives an asynchronous Searcher (AE or RS) with a pool of real
// worker goroutines, exactly the fully asynchronous execution model of the
// paper's AE/RS deployments: each worker independently proposes, evaluates,
// and reports with no barriers. Results are returned in completion order.
//
// With more than one worker the interleaving of Report calls depends on
// evaluation timing, so rewards are reproducible per architecture but the
// search trajectory is only deterministic for Workers == 1.
func RunAsync(s Searcher, eval Evaluator, opts RunAsyncOptions) ([]Result, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("search: need at least one worker")
	}
	if opts.MaxEvals < 1 {
		return nil, fmt.Errorf("search: MaxEvals must be positive")
	}
	var (
		mu       sync.Mutex // guards searcher, results, proposed
		results  []Result
		proposed int
		start    = time.Now()
		wg       sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if proposed >= opts.MaxEvals || (opts.Deadline > 0 && time.Since(start) > opts.Deadline) {
				mu.Unlock()
				return
			}
			idx := proposed
			proposed++
			a := s.Propose()
			mu.Unlock()

			t0 := time.Now()
			reward, err := eval.Evaluate(a, opts.Seed+uint64(idx)*0x9e37)
			elapsed := time.Since(t0)

			mu.Lock()
			if err == nil {
				s.Report(a, reward)
			}
			results = append(results, Result{Index: idx, Arch: a, Reward: reward, Err: err, Elapsed: elapsed})
			mu.Unlock()
		}
	}
	n := opts.Workers
	wg.Add(n)
	for i := 0; i < n; i++ {
		go worker()
	}
	wg.Wait()
	return results, nil
}

// RunRLOptions configures the synchronous multi-agent RL runner.
type RunRLOptions struct {
	// Agents is the number of PPO masters (paper: 11).
	Agents int
	// WorkersPerAgent is the per-agent evaluation batch size b.
	WorkersPerAgent int
	// Batches is the number of synchronous update rounds.
	Batches int
	// Seed derives agent policies and evaluation seeds.
	Seed uint64
}

// RunRL runs the paper's distributed RL method in-process: every round,
// each agent samples a batch, the batches are evaluated concurrently, each
// agent computes its PPO gradient, the gradients are all-reduced with the
// mean, and every agent applies the same update. The full barrier per round
// is inherent to the method (and is what the paper's utilization metric
// penalizes).
func RunRL(space arch.Space, eval Evaluator, opts RunRLOptions) ([]Result, error) {
	if opts.Agents < 1 || opts.WorkersPerAgent < 1 || opts.Batches < 1 {
		return nil, fmt.Errorf("search: invalid RL options %+v", opts)
	}
	agents := make([]*PPOAgent, opts.Agents)
	for i := range agents {
		a, err := NewPPOAgent(space, opts.Seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		agents[i] = a
	}
	var results []Result
	idx := 0
	for round := 0; round < opts.Batches; round++ {
		type task struct {
			agent int
			arch  arch.Arch
			idx   int
		}
		var tasks []task
		batches := make([][]arch.Arch, opts.Agents)
		for ai, agent := range agents {
			batch := agent.ProposeBatch(opts.WorkersPerAgent)
			batches[ai] = batch
			for _, a := range batch {
				tasks = append(tasks, task{agent: ai, arch: a, idx: idx})
				idx++
			}
		}
		rewards := make([]float64, len(tasks))
		errs := make([]error, len(tasks))
		elapsed := make([]time.Duration, len(tasks))
		var wg sync.WaitGroup
		wg.Add(len(tasks))
		for ti := range tasks {
			go func(ti int) {
				defer wg.Done()
				t0 := time.Now()
				rewards[ti], errs[ti] = eval.Evaluate(tasks[ti].arch, opts.Seed+uint64(tasks[ti].idx)*0x9e37)
				elapsed[ti] = time.Since(t0)
			}(ti)
		}
		wg.Wait() // the synchronous barrier

		grads := make([][]float64, opts.Agents)
		off := 0
		for ai, agent := range agents {
			b := batches[ai]
			rs := rewards[off : off+len(b)]
			g, err := agent.Gradients(b, rs)
			if err != nil {
				return nil, err
			}
			grads[ai] = g
			off += len(b)
		}
		if err := AllReduceMean(grads); err != nil {
			return nil, err
		}
		for ai, agent := range agents {
			if err := agent.ApplyGradients(grads[ai]); err != nil {
				return nil, err
			}
		}
		for ti, tk := range tasks {
			results = append(results, Result{Index: tk.idx, Arch: tk.arch, Reward: rewards[ti], Err: errs[ti], Elapsed: elapsed[ti]})
		}
	}
	return results, nil
}

// Best returns the result with the highest reward (ignoring errored
// evaluations). ok is false when every result errored or results is empty.
func Best(results []Result) (Result, bool) {
	best := Result{Reward: -1e300}
	ok := false
	for _, r := range results {
		if r.Err == nil && r.Reward > best.Reward {
			best = r
			ok = true
		}
	}
	return best, ok
}
