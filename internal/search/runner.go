package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"podnas/internal/arch"
	"podnas/internal/obs"
	"podnas/internal/obs/span"
	"podnas/internal/tensor"
)

// ErrTransient marks an evaluation failure as retryable: node flakiness,
// injected faults, anything where re-running the same training can succeed.
// Permanent failures (an architecture that cannot be built) must not wrap it.
var ErrTransient = errors.New("transient evaluation failure")

// PanicError is a recovered evaluator panic, reported as an errored Result
// instead of killing the whole search — the in-process analogue of DeepHyper
// surviving a crashed worker.
type PanicError struct{ Value any }

func (e *PanicError) Error() string { return fmt.Sprintf("evaluator panic: %v", e.Value) }

// Result is one completed architecture evaluation.
type Result struct {
	Index   int // proposal order
	Arch    arch.Arch
	Reward  float64
	Err     error
	Elapsed time.Duration
	// Retries is the number of retry attempts consumed before the final
	// outcome (0 = first attempt decided).
	Retries int
}

// RunAsyncOptions configures the asynchronous parallel runner.
type RunAsyncOptions struct {
	// Workers is the number of concurrent evaluation goroutines — the
	// in-process analogue of the paper's worker nodes.
	Workers int
	// MaxEvals bounds the total number of evaluations.
	MaxEvals int
	// Deadline optionally bounds wall-clock time (0 = none). It is enforced
	// by context cancellation: in-flight evaluations of context-aware
	// evaluators are interrupted, not merely awaited (see the deadline
	// semantics note on RunAsyncCtx).
	Deadline time.Duration
	// Seed derives per-evaluation seeds.
	Seed uint64
	// EvalTimeout bounds each single evaluation attempt (0 = none). A timed
	// out attempt is reported as an errored Result, mirroring DeepHyper
	// treating a stuck training as a worst-case outcome.
	EvalTimeout time.Duration
	// Retries is the number of additional attempts granted to evaluations
	// that fail with an error wrapping ErrTransient.
	Retries int
	// RetryBackoff is the base delay before a retry (default 5ms). The
	// actual delay is the base scaled by the attempt number with seeded
	// jitter, so backoff is deterministic per evaluation.
	RetryBackoff time.Duration
	// Checkpoint, when non-nil, periodically persists the searcher state and
	// completed results so a killed run can resume.
	Checkpoint *Checkpointer
	// Resume seeds the run from a previously saved checkpoint: the searcher
	// is restored and completed results count toward MaxEvals.
	Resume *Checkpoint
	// Recorder, when non-nil, receives live observability events: evaluation
	// start/finish/error/retry, checkpoint writes, and (via the context the
	// evaluator sees) per-epoch training ticks. A nil Recorder costs nothing:
	// no events are constructed at all.
	Recorder obs.Recorder
	// Trace is the parent span context for this run (zero = tracing off).
	// With a Recorder and a valid Trace the runner derives a "search" span
	// under it and one "eval" span per evaluation, planting each eval's
	// context into the evaluator's ctx so deeper layers (nn.Train epochs,
	// the worker pool's dispatch/rpc spans) parent under it. Spans are
	// telemetry only: they never influence proposals, seeds, or rewards.
	Trace span.Context
}

// RunAsync drives an asynchronous Searcher (AE or RS) with a pool of real
// worker goroutines, exactly the fully asynchronous execution model of the
// paper's AE/RS deployments: each worker independently proposes, evaluates,
// and reports with no barriers. Results are returned in completion order.
// It is RunAsyncCtx with a background context.
func RunAsync(s Searcher, eval Evaluator, opts RunAsyncOptions) ([]Result, error) {
	return RunAsyncCtx(context.Background(), s, eval, opts)
}

// RunAsyncCtx is RunAsync under an external context. Cancelling ctx (or
// exceeding opts.Deadline) stops the run gracefully: context-aware
// evaluators are interrupted mid-training, interrupted proposals are
// discarded (they do not consume budget and are re-proposed on resume), and
// the completed results are returned with a nil error.
//
// Deadline semantics: Deadline bounds in-flight evaluations via context
// cancellation, not just proposal time. An evaluator implementing
// ContextEvaluator is interrupted as soon as the deadline passes; a plain
// Evaluator is abandoned at the deadline (its goroutine's result is
// discarded) so the call itself still returns promptly.
//
// Evaluator panics are recovered into errored Results. Errors wrapping
// ErrTransient are retried up to opts.Retries times with seeded backoff.
//
// With more than one worker the interleaving of Report calls depends on
// evaluation timing, so rewards are reproducible per architecture but the
// search trajectory is only deterministic for Workers == 1.
func RunAsyncCtx(ctx context.Context, s Searcher, eval Evaluator, opts RunAsyncOptions) ([]Result, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("search: need at least one worker")
	}
	if opts.MaxEvals < 1 {
		return nil, fmt.Errorf("search: MaxEvals must be positive")
	}
	if opts.Checkpoint != nil {
		if _, ok := s.(Snapshotter); !ok {
			return nil, fmt.Errorf("search: checkpointing requires a Snapshotter searcher, %s is not one", s.Name())
		}
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}

	var (
		mu       sync.Mutex // guards searcher, results, proposed, nextIdx
		results  []Result
		proposed int
		nextIdx  int
		wg       sync.WaitGroup
	)
	if opts.Resume != nil {
		restored, err := opts.Resume.apply(s)
		if err != nil {
			return nil, err
		}
		results = restored
		proposed = len(results)
		for _, r := range results {
			if r.Index >= nextIdx {
				nextIdx = r.Index + 1
			}
		}
		if proposed >= opts.MaxEvals {
			return results, nil
		}
	}

	rec := opts.Recorder
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindSearchStart, Method: s.Name(), Worker: opts.Workers, Eval: proposed})
	}
	tracing := rec != nil && opts.Trace.Valid()
	var sc span.Context
	var runT0 time.Time
	if tracing {
		sc = span.Derive(opts.Trace, "search")
		runT0 = time.Now() //podnas:allow detrand span timing is telemetry; it never feeds proposals or rewards
	}
	worker := func(wid int) {
		defer wg.Done()
		for {
			mu.Lock()
			if proposed >= opts.MaxEvals || ctx.Err() != nil {
				mu.Unlock()
				return
			}
			idx := nextIdx
			nextIdx++
			proposed++
			a := s.Propose()
			mu.Unlock()

			ectx := ctx
			var ec span.Context
			if rec != nil {
				rec.Record(obs.Event{Kind: obs.KindEvalStart, Eval: idx, Worker: wid, Arch: a.Key()})
				// Plant the recorder (and the evaluation it is scoring) in the
				// context so deeper layers — nn.Train's epoch loop, custom
				// evaluators — can attribute their own events.
				ectx = obs.WithEval(ctx, rec, idx)
				if tracing {
					ec = span.Derive(sc, "eval", uint64(idx))
					ectx = span.With(ectx, ec)
				}
			}
			t0 := time.Now() //podnas:allow detrand evaluation timing is telemetry (Result.Elapsed, obs events); it never feeds proposals or rewards
			reward, retries, err := evaluateWithRetry(ectx, eval, a, opts.Seed+uint64(idx)*0x9e37, opts)
			elapsed := time.Since(t0) //podnas:allow detrand evaluation timing is telemetry; it never feeds proposals or rewards

			mu.Lock()
			if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				// The run itself was cancelled mid-evaluation: give the
				// proposal back so a resumed run keeps the full budget.
				proposed--
				mu.Unlock()
				return
			}
			if err == nil && !math.IsNaN(reward) {
				s.Report(a, reward)
			}
			results = append(results, Result{Index: idx, Arch: a, Reward: reward, Err: err, Elapsed: elapsed, Retries: retries})
			nDone := len(results)
			due := opts.Checkpoint != nil && opts.Checkpoint.due(nDone)
			var ckErr error
			if due {
				ckErr = opts.Checkpoint.save(s, nil, results)
			}
			mu.Unlock()
			if rec != nil {
				if err != nil {
					rec.Record(obs.Event{Kind: obs.KindEvalError, Eval: idx, Worker: wid, Arch: a.Key(), Seconds: elapsed.Seconds(), Attempt: retries, Err: err.Error()})
				} else {
					rec.Record(obs.Event{Kind: obs.KindEvalFinish, Eval: idx, Worker: wid, Arch: a.Key(), Reward: reward, Seconds: elapsed.Seconds(), Attempt: retries})
				}
				if tracing {
					e := span.End(ec, sc.Span, "eval", elapsed)
					e.Eval, e.Worker = idx, wid
					rec.Record(e)
				}
				if due && ckErr == nil {
					rec.Record(obs.Event{Kind: obs.KindCheckpoint, Eval: nDone})
				}
			}
		}
	}
	n := opts.Workers
	wg.Add(n)
	for i := 0; i < n; i++ {
		go worker(i)
	}
	wg.Wait()
	if opts.Checkpoint != nil {
		// Final snapshot so the last partial window of results survives.
		if err := opts.Checkpoint.save(s, nil, results); err != nil {
			return results, fmt.Errorf("search: final checkpoint: %w", err)
		}
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.KindCheckpoint, Eval: len(results)})
		}
	}
	if tracing {
		rec.Record(span.End(sc, opts.Trace.Span, "search", time.Since(runT0))) //podnas:allow detrand span timing is telemetry; it never feeds proposals or rewards
	}
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindSearchFinish, Method: s.Name(), Eval: len(results)})
	}
	return results, nil
}

// evaluate runs one evaluation attempt with panic recovery, preferring the
// context-aware path when the evaluator supports it. A plain Evaluator under
// a context with a deadline/cancellation is run on a side goroutine so the
// attempt still returns when the context fires (the stale result is
// discarded; the goroutine finishes on its own).
func evaluate(ctx context.Context, eval Evaluator, a arch.Arch, seed uint64) (reward float64, err error) {
	if ce, ok := eval.(ContextEvaluator); ok {
		defer func() {
			if r := recover(); r != nil {
				reward, err = 0, &PanicError{Value: r}
			}
		}()
		return ce.EvaluateCtx(ctx, a, seed)
	}
	if ctx.Done() == nil {
		defer func() {
			if r := recover(); r != nil {
				reward, err = 0, &PanicError{Value: r}
			}
		}()
		return eval.Evaluate(a, seed)
	}
	type outcome struct {
		reward float64
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{0, &PanicError{Value: r}}
			}
		}()
		r, e := eval.Evaluate(a, seed)
		ch <- outcome{r, e}
	}()
	select {
	case o := <-ch:
		return o.reward, o.err
	case <-ctx.Done():
		return 0, fmt.Errorf("search: evaluation abandoned: %w", ctx.Err())
	}
}

// evaluateWithRetry applies the per-attempt timeout and the bounded
// transient-failure retry policy around evaluate.
func evaluateWithRetry(ctx context.Context, eval Evaluator, a arch.Arch, seed uint64, opts RunAsyncOptions) (float64, int, error) {
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	var (
		reward float64
		err    error
	)
	for attempt := 0; ; attempt++ {
		attemptCtx := ctx
		var cancel context.CancelFunc
		if opts.EvalTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, opts.EvalTimeout)
		}
		reward, err = evaluate(attemptCtx, eval, a, seed)
		if cancel != nil {
			cancel()
		}
		if err == nil || attempt >= opts.Retries || !errors.Is(err, ErrTransient) || ctx.Err() != nil {
			return reward, attempt, err
		}
		if opts.Recorder != nil {
			idx, _ := obs.EvalFrom(ctx)
			opts.Recorder.Record(obs.Event{Kind: obs.KindEvalRetry, Eval: idx, Attempt: attempt + 1, Err: err.Error()})
		}
		// Seeded backoff: deterministic per (evaluation, attempt), linear in
		// the attempt number with ±50% jitter, interruptible by ctx.
		jitter := 0.5 + tensor.NewRNG(seed^uint64(attempt+1)*0x2545f4914f6cdd1d).Float64()
		delay := time.Duration(float64(backoff) * float64(attempt+1) * jitter)
		select {
		case <-ctx.Done():
			return reward, attempt, err
		case <-time.After(delay):
		}
	}
}

// RunRLOptions configures the synchronous multi-agent RL runner.
type RunRLOptions struct {
	// Agents is the number of PPO masters (paper: 11).
	Agents int
	// WorkersPerAgent is the per-agent evaluation batch size b.
	WorkersPerAgent int
	// Batches is the number of synchronous update rounds.
	Batches int
	// Seed derives agent policies and evaluation seeds.
	Seed uint64
	// EvalTimeout bounds each evaluation attempt (0 = none).
	EvalTimeout time.Duration
	// Retries is the transient-failure retry budget per evaluation.
	Retries int
	// RetryBackoff is the base retry delay (default 5ms).
	RetryBackoff time.Duration
	// Checkpoint, when non-nil, persists the agents and completed results
	// after every synchronous round.
	Checkpoint *Checkpointer
	// Resume restores agent policies and completed rounds from a checkpoint.
	Resume *Checkpoint
	// Recorder, when non-nil, receives live observability events: one round
	// event per PPO batch barrier plus the per-evaluation stream (the Worker
	// field carries the agent index).
	Recorder obs.Recorder
	// Trace is the parent span context for this run (zero = tracing off);
	// see RunAsyncOptions.Trace.
	Trace span.Context
}

// RunRL runs the paper's distributed RL method in-process. It is RunRLCtx
// with a background context.
func RunRL(space arch.Space, eval Evaluator, opts RunRLOptions) ([]Result, error) {
	return RunRLCtx(context.Background(), space, eval, opts)
}

// RunRLCtx runs the synchronous multi-agent PPO method under a context:
// every round, each agent samples a batch, the batches are evaluated
// concurrently, each agent computes its PPO gradient, the gradients are
// all-reduced with the mean, and every agent applies the same update. The
// full barrier per round is inherent to the method (and is what the paper's
// utilization metric penalizes).
//
// Failed or panicked evaluations contribute the worst-case reward
// (DivergedReward) to the gradient, exactly how DeepHyper feeds a crashed
// training back to the agent, and are recorded as errored Results. A
// cancelled context ends the run at the next barrier with the completed
// rounds' results.
func RunRLCtx(ctx context.Context, space arch.Space, eval Evaluator, opts RunRLOptions) ([]Result, error) {
	if opts.Agents < 1 || opts.WorkersPerAgent < 1 || opts.Batches < 1 {
		return nil, fmt.Errorf("search: invalid RL options %+v", opts)
	}
	agents := make([]*PPOAgent, opts.Agents)
	for i := range agents {
		a, err := NewPPOAgent(space, opts.Seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		agents[i] = a
	}
	var results []Result
	startRound := 0
	roundSize := opts.Agents * opts.WorkersPerAgent
	if opts.Resume != nil {
		restored, err := opts.Resume.applyRL(agents)
		if err != nil {
			return nil, err
		}
		results = restored
		startRound = len(results) / roundSize
	}
	idx := startRound * roundSize
	rec := opts.Recorder
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindSearchStart, Method: "RL", Worker: roundSize, Eval: len(results)})
	}
	tracing := rec != nil && opts.Trace.Valid()
	var sc span.Context
	var runT0 time.Time
	if tracing {
		sc = span.Derive(opts.Trace, "search")
		runT0 = time.Now() //podnas:allow detrand span timing is telemetry; it never feeds proposals or rewards
	}
	asyncOpts := RunAsyncOptions{
		Seed: opts.Seed, EvalTimeout: opts.EvalTimeout,
		Retries: opts.Retries, RetryBackoff: opts.RetryBackoff,
		Recorder: rec,
	}
	for round := startRound; round < opts.Batches; round++ {
		if ctx.Err() != nil {
			break
		}
		type task struct {
			agent int
			arch  arch.Arch
			idx   int
		}
		var tasks []task
		batches := make([][]arch.Arch, opts.Agents)
		for ai, agent := range agents {
			batch := agent.ProposeBatch(opts.WorkersPerAgent)
			batches[ai] = batch
			for _, a := range batch {
				tasks = append(tasks, task{agent: ai, arch: a, idx: idx})
				idx++
			}
		}
		rewards := make([]float64, len(tasks))
		errs := make([]error, len(tasks))
		retries := make([]int, len(tasks))
		elapsed := make([]time.Duration, len(tasks))
		var wg sync.WaitGroup
		wg.Add(len(tasks))
		for ti := range tasks {
			go func(ti int) {
				defer wg.Done()
				tk := tasks[ti]
				ectx := ctx
				var ec span.Context
				if rec != nil {
					rec.Record(obs.Event{Kind: obs.KindEvalStart, Eval: tk.idx, Worker: tk.agent, Arch: tk.arch.Key()})
					ectx = obs.WithEval(ctx, rec, tk.idx)
					if tracing {
						ec = span.Derive(sc, "eval", uint64(tk.idx))
						ectx = span.With(ectx, ec)
					}
				}
				t0 := time.Now() //podnas:allow detrand evaluation timing is telemetry (Result.Elapsed, obs events); it never feeds proposals or rewards
				rewards[ti], retries[ti], errs[ti] = evaluateWithRetry(
					ectx, eval, tk.arch, opts.Seed+uint64(tk.idx)*0x9e37, asyncOpts)
				elapsed[ti] = time.Since(t0) //podnas:allow detrand evaluation timing is telemetry; it never feeds proposals or rewards
				if rec != nil {
					if errs[ti] != nil {
						rec.Record(obs.Event{Kind: obs.KindEvalError, Eval: tk.idx, Worker: tk.agent, Arch: tk.arch.Key(), Seconds: elapsed[ti].Seconds(), Attempt: retries[ti], Err: errs[ti].Error()})
					} else {
						rec.Record(obs.Event{Kind: obs.KindEvalFinish, Eval: tk.idx, Worker: tk.agent, Arch: tk.arch.Key(), Reward: rewards[ti], Seconds: elapsed[ti].Seconds(), Attempt: retries[ti]})
					}
					if tracing {
						e := span.End(ec, sc.Span, "eval", elapsed[ti])
						e.Eval, e.Worker = tk.idx, tk.agent
						rec.Record(e)
					}
				}
			}(ti)
		}
		wg.Wait() // the synchronous barrier
		if ctx.Err() != nil {
			break // drop the interrupted round; resume re-runs it
		}
		for ti := range tasks {
			// Failed evaluations feed the worst-case reward to the policy so
			// the round's all-reduce still proceeds in lockstep.
			if errs[ti] != nil || math.IsNaN(rewards[ti]) {
				rewards[ti] = DivergedReward
			}
		}

		grads := make([][]float64, opts.Agents)
		off := 0
		for ai, agent := range agents {
			b := batches[ai]
			rs := rewards[off : off+len(b)]
			g, err := agent.Gradients(b, rs)
			if err != nil {
				return nil, err
			}
			grads[ai] = g
			off += len(b)
		}
		if err := AllReduceMean(grads); err != nil {
			return nil, err
		}
		for ai, agent := range agents {
			if err := agent.ApplyGradients(grads[ai]); err != nil {
				return nil, err
			}
		}
		for ti, tk := range tasks {
			results = append(results, Result{Index: tk.idx, Arch: tk.arch, Reward: rewards[ti], Err: errs[ti], Elapsed: elapsed[ti], Retries: retries[ti]})
		}
		if rec != nil {
			var sum float64
			for _, r := range rewards {
				sum += r
			}
			rec.Record(obs.Event{Kind: obs.KindRound, Round: round, Eval: len(results), Reward: sum / float64(len(rewards))})
		}
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint.saveRL(agents, results); err != nil {
				return results, fmt.Errorf("search: RL checkpoint: %w", err)
			}
			if rec != nil {
				rec.Record(obs.Event{Kind: obs.KindCheckpoint, Eval: len(results)})
			}
		}
	}
	if tracing {
		rec.Record(span.End(sc, opts.Trace.Span, "search", time.Since(runT0))) //podnas:allow detrand span timing is telemetry; it never feeds proposals or rewards
	}
	if rec != nil {
		rec.Record(obs.Event{Kind: obs.KindSearchFinish, Method: "RL", Eval: len(results)})
	}
	return results, nil
}

// Best returns the result with the highest reward, ignoring errored
// evaluations and non-finite rewards (a NaN validation R² is a diverged
// training and must never win). ok is false when no finite successful result
// exists.
func Best(results []Result) (Result, bool) {
	best := Result{Reward: math.Inf(-1)}
	ok := false
	for _, r := range results {
		if r.Err != nil || math.IsNaN(r.Reward) || math.IsInf(r.Reward, 0) {
			continue
		}
		if r.Reward > best.Reward {
			best = r
			ok = true
		}
	}
	return best, ok
}
