package search

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"podnas/internal/arch"
	"podnas/internal/tensor"
)

// toyEvaluator scores architectures by a known deterministic function so
// tests can verify that feedback-driven searches climb it. Reward increases
// with the op index chosen at each variable-node position and is capped
// below 1. Thread safe and instant.
type toyEvaluator struct {
	space arch.Space
	noise float64
	mu    sync.Mutex
	calls int
}

func (e *toyEvaluator) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	e.mu.Lock()
	e.calls++
	e.mu.Unlock()
	score := 0.0
	maxScore := 0.0
	for i, v := range a {
		nc := e.space.NumChoices(i)
		score += float64(v) / float64(nc-1)
		maxScore++
	}
	r := score / maxScore
	if e.noise > 0 {
		r += e.noise * tensor.NewRNG(seed).NormFloat64()
	}
	return r, nil
}

func toySpace() arch.Space {
	s := arch.Default()
	return s
}

func TestAEConfigValidation(t *testing.T) {
	s := toySpace()
	if _, err := NewAgingEvolution(s, 10, 20, 1); err == nil {
		t.Error("sample > population should fail")
	}
	if _, err := NewAgingEvolution(s, -1, 0, 1); err == nil {
		t.Error("negative population should fail")
	}
	ae, err := NewAgingEvolution(s, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ae.Population != 100 || ae.Sample != 10 {
		t.Errorf("defaults P=%d S=%d, want 100/10", ae.Population, ae.Sample)
	}
}

func TestAEInitialProposalsAreRandomAndValid(t *testing.T) {
	s := toySpace()
	ae, _ := NewAgingEvolution(s, 20, 5, 2)
	for i := 0; i < 20; i++ {
		a := ae.Propose()
		if err := s.ValidateArch(a); err != nil {
			t.Fatal(err)
		}
		ae.Report(a, 0.5)
	}
}

func TestAEPopulationBounded(t *testing.T) {
	s := toySpace()
	ae, _ := NewAgingEvolution(s, 10, 3, 3)
	for i := 0; i < 50; i++ {
		a := ae.Propose()
		ae.Report(a, float64(i))
	}
	if len(ae.pop) != 10 {
		t.Errorf("population size %d, want 10", len(ae.pop))
	}
	// Aging: the oldest entries (reward 0..39) must be gone; the population
	// holds exactly the 10 most recent rewards 40..49.
	for _, m := range ae.pop {
		if m.reward < 40 {
			t.Errorf("stale member with reward %g survived aging", m.reward)
		}
	}
}

func TestNonAgingKeepsBest(t *testing.T) {
	s := toySpace()
	ne, _ := NewNonAgingEvolution(s, 5, 2, 4)
	// Insert a high-reward member early, then many poor ones.
	star := s.Random(tensor.NewRNG(1))
	ne.Report(star, 100)
	for i := 0; i < 30; i++ {
		ne.Report(s.Random(tensor.NewRNG(uint64(i+2))), 0.1)
	}
	found := false
	for _, m := range ne.pop {
		if m.reward == 100 {
			found = true
		}
	}
	if !found {
		t.Error("non-aging evolution should retain the best member indefinitely")
	}
}

func TestAEClimbsToyLandscape(t *testing.T) {
	s := toySpace()
	ae, _ := NewAgingEvolution(s, 25, 5, 5)
	eval := &toyEvaluator{space: s}
	res, err := RunAsync(ae, eval, RunAsyncOptions{Workers: 1, MaxEvals: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := Best(res)
	if !ok {
		t.Fatal("no results")
	}
	if best.Reward < 0.95 {
		t.Errorf("AE best reward %.3f, want near-optimal (>0.95)", best.Reward)
	}
	// And it must beat random search given the same budget.
	rs, _ := NewRandomSearch(s, 1)
	rres, _ := RunAsync(rs, &toyEvaluator{space: s}, RunAsyncOptions{Workers: 1, MaxEvals: 600, Seed: 1})
	rbest, _ := Best(rres)
	if best.Reward <= rbest.Reward {
		t.Errorf("AE (%.3f) did not beat RS (%.3f) on a smooth landscape", best.Reward, rbest.Reward)
	}
}

func TestAERobustToNoise(t *testing.T) {
	// With noisy rewards AE should still find good architectures (the aging
	// regularization story from the paper).
	s := toySpace()
	ae, _ := NewAgingEvolution(s, 25, 5, 6)
	eval := &toyEvaluator{space: s, noise: 0.05}
	res, err := RunAsync(ae, eval, RunAsyncOptions{Workers: 1, MaxEvals: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Judge by the true (noise-free) score of the best proposal.
	trueEval := &toyEvaluator{space: s}
	bestTrue := -1.0
	for _, r := range res {
		v, _ := trueEval.Evaluate(r.Arch, 0)
		if v > bestTrue {
			bestTrue = v
		}
	}
	if bestTrue < 0.9 {
		t.Errorf("AE under noise reached true score %.3f, want > 0.9", bestTrue)
	}
}

func TestRunAsyncParallelWorkers(t *testing.T) {
	s := toySpace()
	rs, _ := NewRandomSearch(s, 7)
	eval := &toyEvaluator{space: s}
	res, err := RunAsync(rs, eval, RunAsyncOptions{Workers: 8, MaxEvals: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 200 {
		t.Fatalf("got %d results, want 200", len(res))
	}
	if eval.calls != 200 {
		t.Errorf("evaluator called %d times", eval.calls)
	}
	// Indices must be a permutation of 0..199.
	seen := make([]bool, 200)
	for _, r := range res {
		if r.Index < 0 || r.Index >= 200 || seen[r.Index] {
			t.Fatalf("bad index %d", r.Index)
		}
		seen[r.Index] = true
	}
}

func TestRunAsyncOptionValidation(t *testing.T) {
	s := toySpace()
	rs, _ := NewRandomSearch(s, 1)
	if _, err := RunAsync(rs, &toyEvaluator{space: s}, RunAsyncOptions{Workers: 0, MaxEvals: 5}); err == nil {
		t.Error("zero workers should fail")
	}
	if _, err := RunAsync(rs, &toyEvaluator{space: s}, RunAsyncOptions{Workers: 1, MaxEvals: 0}); err == nil {
		t.Error("zero evals should fail")
	}
}

func TestPPOPolicyImproves(t *testing.T) {
	// Single agent on the toy landscape: the probability mass at the best
	// choice of the first op variable must grow.
	s := toySpace()
	agent, err := NewPPOAgent(s, 11)
	if err != nil {
		t.Fatal(err)
	}
	eval := &toyEvaluator{space: s}
	for round := 0; round < 120; round++ {
		batch := agent.ProposeBatch(10)
		rewards := make([]float64, len(batch))
		for i, a := range batch {
			rewards[i], _ = eval.Evaluate(a, 0)
		}
		g, err := agent.Gradients(batch, rewards)
		if err != nil {
			t.Fatal(err)
		}
		if err := agent.ApplyGradients(g); err != nil {
			t.Fatal(err)
		}
	}
	probs := agent.Probabilities()
	// Best op choice is the last index at every op position.
	p := probs[0]
	if p[len(p)-1] < 0.5 {
		t.Errorf("after training, P(best op) = %.3f, want > 0.5", p[len(p)-1])
	}
}

func TestPPOProposalsValid(t *testing.T) {
	s := toySpace()
	agent, _ := NewPPOAgent(s, 12)
	for _, a := range agent.ProposeBatch(50) {
		if err := s.ValidateArch(a); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	g1 := []float64{1, 2, 3}
	g2 := []float64{3, 4, 5}
	if err := AllReduceMean([][]float64{g1, g2}); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if g1[i] != want[i] || g2[i] != want[i] {
			t.Errorf("all-reduce got %v / %v, want %v", g1, g2, want)
		}
	}
	if err := AllReduceMean([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestRunRLProducesResultsAndImproves(t *testing.T) {
	s := toySpace()
	eval := &toyEvaluator{space: s}
	res, err := RunRL(s, eval, RunRLOptions{Agents: 3, WorkersPerAgent: 4, Batches: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3*4*60 {
		t.Fatalf("got %d results", len(res))
	}
	// Mean reward of the last 10 rounds must exceed the first 10 rounds.
	roundSize := 12
	first, last := 0.0, 0.0
	for i := 0; i < 10*roundSize; i++ {
		first += res[i].Reward
		last += res[len(res)-1-i].Reward
	}
	if last <= first {
		t.Errorf("RL did not improve: first-10 sum %.2f, last-10 sum %.2f", first, last)
	}
}

func TestRunRLOptionValidation(t *testing.T) {
	s := toySpace()
	if _, err := RunRL(s, &toyEvaluator{space: s}, RunRLOptions{Agents: 0, WorkersPerAgent: 1, Batches: 1}); err == nil {
		t.Error("zero agents should fail")
	}
}

func TestBestIgnoresErrors(t *testing.T) {
	res := []Result{
		{Reward: 0.9, Err: errFake},
		{Reward: 0.5},
	}
	b, ok := Best(res)
	if !ok || b.Reward != 0.5 {
		t.Errorf("Best = %+v ok=%v", b, ok)
	}
	if _, ok := Best(nil); ok {
		t.Error("empty Best should report !ok")
	}
}

var errFake = &fakeError{}

type fakeError struct{}

func (*fakeError) Error() string { return "fake" }

func TestSoftmaxSumsToOne(t *testing.T) {
	p := softmax([]float64{1, 2, 3, 1000})
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Fatal("negative probability")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum %g", sum)
	}
	if p[3] < 0.99 {
		t.Errorf("dominant logit got p=%g", p[3])
	}
}

func TestAEPopulationInvariant(t *testing.T) {
	// Property: for any interleaving of proposals and reports, the
	// population never exceeds P and every stored reward is one that was
	// reported.
	s := toySpace()
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		p := 2 + rng.Intn(8)
		ae, err := NewAgingEvolution(s, p, 1+rng.Intn(p), seed)
		if err != nil {
			return false
		}
		var pending []arch.Arch
		for op := 0; op < 60; op++ {
			if len(pending) == 0 || rng.Float64() < 0.5 {
				pending = append(pending, ae.Propose())
			} else {
				k := rng.Intn(len(pending))
				ae.Report(pending[k], rng.Float64())
				pending = append(pending[:k], pending[k+1:]...)
			}
			if len(ae.pop) > p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
