package search

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/obs"
)

func kindCounts(evs []obs.Event) map[obs.Kind]int {
	c := make(map[obs.Kind]int)
	for _, e := range evs {
		c[e.Kind]++
	}
	return c
}

// TestRunAsyncEmitsEvents asserts the async runner's event stream: a search
// start first, a finish last, one start/finish pair per evaluation, and a
// checkpoint event per persisted save.
func TestRunAsyncEmitsEvents(t *testing.T) {
	s := toySpace()
	ae, err := NewAgingEvolution(s, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(256)
	ck := &Checkpointer{Path: t.TempDir() + "/ck.json", Every: 4}
	res, err := RunAsync(ae, &toyEvaluator{space: s}, RunAsyncOptions{
		Workers: 1, MaxEvals: 8, Seed: 1, Checkpoint: ck, Recorder: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("got %d results", len(res))
	}
	evs := ring.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	if evs[0].Kind != obs.KindSearchStart || evs[0].Method != ae.Name() {
		t.Errorf("first event %v (method %q), want search_start from %q", evs[0].Kind, evs[0].Method, ae.Name())
	}
	if last := evs[len(evs)-1]; last.Kind != obs.KindSearchFinish || last.Eval != 8 {
		t.Errorf("last event %v eval %d, want search_finish with 8", last.Kind, last.Eval)
	}
	c := kindCounts(evs)
	if c[obs.KindEvalStart] != 8 || c[obs.KindEvalFinish] != 8 {
		t.Errorf("start/finish counts %d/%d, want 8/8", c[obs.KindEvalStart], c[obs.KindEvalFinish])
	}
	// Saves at 4 and 8 completed results plus the unconditional final one.
	if c[obs.KindCheckpoint] != 3 {
		t.Errorf("checkpoint events %d, want 3", c[obs.KindCheckpoint])
	}
	var lastT time.Duration
	seen := make(map[int]bool)
	for _, e := range evs {
		if e.T < lastT {
			t.Fatalf("timestamps regressed: %v after %v", e.T, lastT)
		}
		lastT = e.T
		if e.Kind == obs.KindEvalFinish {
			if e.Arch == "" {
				t.Error("finish event without an arch key")
			}
			if seen[e.Eval] {
				t.Errorf("evaluation %d finished twice", e.Eval)
			}
			seen[e.Eval] = true
		}
	}
}

// flakyOnce fails every architecture's first attempt transiently, so each
// evaluation consumes exactly one retry.
type flakyOnce struct {
	inner *toyEvaluator
	mu    sync.Mutex
	seen  map[string]bool
}

func (f *flakyOnce) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	f.mu.Lock()
	first := !f.seen[a.Key()]
	f.seen[a.Key()] = true
	f.mu.Unlock()
	if first {
		return 0, fmt.Errorf("injected flake: %w", ErrTransient)
	}
	return f.inner.Evaluate(a, seed)
}

func TestRetryEventsEmitted(t *testing.T) {
	s := toySpace()
	rs, err := NewRandomSearch(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(128)
	eval := &flakyOnce{inner: &toyEvaluator{space: s}, seen: make(map[string]bool)}
	res, err := RunAsync(rs, eval, RunAsyncOptions{
		Workers: 1, MaxEvals: 3, Seed: 3, Retries: 1,
		RetryBackoff: time.Millisecond, Recorder: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := kindCounts(ring.Events())
	if c[obs.KindEvalRetry] != 3 {
		t.Errorf("retry events %d, want 3", c[obs.KindEvalRetry])
	}
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.KindEvalRetry:
			if e.Attempt != 1 || e.Err == "" {
				t.Errorf("retry event %+v, want attempt 1 with an error", e)
			}
		case obs.KindEvalFinish:
			if e.Attempt != 1 {
				t.Errorf("finish event attempt %d, want 1 (one retry consumed)", e.Attempt)
			}
		}
	}
	for _, r := range res {
		if r.Err != nil || r.Retries != 1 {
			t.Errorf("result %d: err %v retries %d", r.Index, r.Err, r.Retries)
		}
	}
}

// TestRunRLEmitsEvents asserts the synchronous runner's stream: per-task
// lifecycle events with the agent index in Worker, one round event per
// barrier, and a checkpoint event per round when configured.
func TestRunRLEmitsEvents(t *testing.T) {
	s := toySpace()
	ring := obs.NewRing(256)
	ck := &Checkpointer{Path: t.TempDir() + "/rl.json", Every: 1}
	res, err := RunRL(s, &toyEvaluator{space: s}, RunRLOptions{
		Agents: 2, WorkersPerAgent: 2, Batches: 3, Seed: 9,
		Checkpoint: ck, Recorder: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 12 {
		t.Fatalf("got %d results", len(res))
	}
	evs := ring.Events()
	if evs[0].Kind != obs.KindSearchStart || evs[0].Method != "RL" {
		t.Errorf("first event %v method %q", evs[0].Kind, evs[0].Method)
	}
	if last := evs[len(evs)-1]; last.Kind != obs.KindSearchFinish || last.Method != "RL" {
		t.Errorf("last event %v method %q", last.Kind, last.Method)
	}
	c := kindCounts(evs)
	if c[obs.KindEvalStart] != 12 || c[obs.KindEvalFinish] != 12 {
		t.Errorf("start/finish counts %d/%d, want 12/12", c[obs.KindEvalStart], c[obs.KindEvalFinish])
	}
	if c[obs.KindRound] != 3 || c[obs.KindCheckpoint] != 3 {
		t.Errorf("round/checkpoint counts %d/%d, want 3/3", c[obs.KindRound], c[obs.KindCheckpoint])
	}
	wantRound := 0
	for _, e := range evs {
		switch e.Kind {
		case obs.KindRound:
			if e.Round != wantRound {
				t.Errorf("round event %d, want %d", e.Round, wantRound)
			}
			wantRound++
		case obs.KindEvalStart:
			if e.Worker < 0 || e.Worker > 1 {
				t.Errorf("eval start carries agent %d, want 0 or 1", e.Worker)
			}
		}
	}
}
