package search

import (
	"encoding/json"
	"fmt"
	"math"

	"podnas/internal/arch"
	"podnas/internal/tensor"
)

// PPOAgent is one reinforcement-learning master (§III-B2). The policy is a
// factorized categorical distribution: independent logits per search-space
// variable (an action per variable node / skip node). Updates use the
// clipped PPO surrogate (paper Eq. 9) with a running-mean reward baseline,
// and in the multi-agent configuration the per-agent gradients are averaged
// (all-reduce with mean) before every agent applies the same update —
// exactly the synchronization that costs RL its node utilization.
type PPOAgent struct {
	Space arch.Space
	// Clip is the PPO ε (paper: typically 0.1 or 0.2).
	Clip float64
	// LR is the policy-gradient step size.
	LR float64
	// EntropyCoef adds an exploration bonus.
	EntropyCoef float64

	rng      *tensor.RNG
	logits   [][]float64 // per variable, per choice
	baseline float64
	baseN    int
}

// NewPPOAgent returns an agent with zero-initialized (uniform) policy.
func NewPPOAgent(space arch.Space, seed uint64) (*PPOAgent, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	a := &PPOAgent{Space: space, Clip: 0.2, LR: 0.35, EntropyCoef: 0.008, rng: tensor.NewRNG(seed)}
	a.logits = make([][]float64, space.NumVariables())
	for i := range a.logits {
		a.logits[i] = make([]float64, space.NumChoices(i))
	}
	return a, nil
}

// softmax returns the probabilities for variable i under the given logits.
func softmax(logits []float64) []float64 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for j, v := range logits {
		e := math.Exp(v - maxv)
		out[j] = e
		sum += e
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// ProposeBatch samples n architectures from the current policy.
func (a *PPOAgent) ProposeBatch(n int) []arch.Arch {
	out := make([]arch.Arch, n)
	for k := range out {
		ar := make(arch.Arch, len(a.logits))
		for i, lg := range a.logits {
			p := softmax(lg)
			u := a.rng.Float64()
			c := 0
			acc := p[0]
			for u > acc && c < len(p)-1 {
				c++
				acc += p[c]
			}
			ar[i] = c
		}
		out[k] = ar
	}
	return out
}

// Gradients computes the PPO policy gradient for a completed batch under
// the *current* policy (which is also the behaviour policy, so the
// importance ratio starts at 1 and the clip guards the update size). The
// returned slice is the flattened gradient, suitable for all-reduce
// averaging across agents. It also updates the agent's reward baseline.
func (a *PPOAgent) Gradients(archs []arch.Arch, rewards []float64) ([]float64, error) {
	if len(archs) != len(rewards) {
		return nil, fmt.Errorf("search: %d archs vs %d rewards", len(archs), len(rewards))
	}
	grad := make([]float64, a.flatLen())
	if len(archs) == 0 {
		return grad, nil
	}
	// Advantage: reward − running baseline, normalized by the batch spread
	// (standard PPO practice; makes the update scale-free in the reward).
	for _, r := range rewards {
		a.baseN++
		a.baseline += (r - a.baseline) / float64(a.baseN)
	}
	var spread float64
	if len(rewards) > 1 {
		var mean float64
		for _, r := range rewards {
			mean += r
		}
		mean /= float64(len(rewards))
		for _, r := range rewards {
			d := r - mean
			spread += d * d
		}
		spread = math.Sqrt(spread / float64(len(rewards)))
	}
	if spread < 1e-8 {
		spread = 1
	}
	for k, ar := range archs {
		adv := (rewards[k] - a.baseline) / spread
		off := 0
		for i, lg := range a.logits {
			p := softmax(lg)
			chosen := ar[i]
			// With ratio r=1 the clipped surrogate gradient is
			// adv * ∂logπ/∂θ; the clip only bites across repeated epochs,
			// which we bound to one (conservative single-step PPO).
			for c := range lg {
				ind := 0.0
				if c == chosen {
					ind = 1
				}
				g := adv * (ind - p[c])
				// Entropy bonus gradient: −Σ p log p → ∂/∂θ_c = −p_c(log p_c + H)
				h := 0.0
				for _, pv := range p {
					if pv > 0 {
						h -= pv * math.Log(pv)
					}
				}
				if p[c] > 0 {
					g += a.EntropyCoef * (-p[c] * (math.Log(p[c]) + h))
				}
				grad[off+c] += g / float64(len(archs))
			}
			off += len(lg)
		}
	}
	return grad, nil
}

// ApplyGradients takes one ascent step along the (typically all-reduced)
// gradient.
func (a *PPOAgent) ApplyGradients(grad []float64) error {
	if len(grad) != a.flatLen() {
		return fmt.Errorf("search: gradient length %d, want %d", len(grad), a.flatLen())
	}
	off := 0
	for i := range a.logits {
		for c := range a.logits[i] {
			a.logits[i][c] += a.LR * grad[off+c]
		}
		off += len(a.logits[i])
	}
	return nil
}

func (a *PPOAgent) flatLen() int {
	n := 0
	for _, lg := range a.logits {
		n += len(lg)
	}
	return n
}

// ppoSnapshot is the serialized policy state: logits, the reward baseline,
// and the RNG mid-stream.
type ppoSnapshot struct {
	Logits   [][]float64     `json:"logits"`
	Baseline float64         `json:"baseline"`
	BaseN    int             `json:"base_n"`
	RNG      tensor.RNGState `json:"rng"`
}

// Snapshot captures the agent's policy for checkpointing.
func (a *PPOAgent) Snapshot() (SearcherState, error) {
	snap := ppoSnapshot{Logits: a.logits, Baseline: a.baseline, BaseN: a.baseN, RNG: a.rng.State()}
	data, err := json.Marshal(snap)
	if err != nil {
		return SearcherState{}, err
	}
	return SearcherState{Kind: "PPO", Data: data}, nil
}

// Restore overwrites the agent's policy from a snapshot. The logit shape
// must match the agent's search space.
func (a *PPOAgent) Restore(st SearcherState) error {
	if st.Kind != "PPO" {
		return fmt.Errorf("search: cannot restore %q snapshot into PPO agent", st.Kind)
	}
	var snap ppoSnapshot
	if err := json.Unmarshal(st.Data, &snap); err != nil {
		return fmt.Errorf("search: bad PPO snapshot: %w", err)
	}
	if len(snap.Logits) != len(a.logits) {
		return fmt.Errorf("search: snapshot has %d variables, space has %d", len(snap.Logits), len(a.logits))
	}
	for i := range snap.Logits {
		if len(snap.Logits[i]) != len(a.logits[i]) {
			return fmt.Errorf("search: snapshot variable %d has %d choices, space has %d", i, len(snap.Logits[i]), len(a.logits[i]))
		}
	}
	a.logits = snap.Logits
	a.baseline = snap.Baseline
	a.baseN = snap.BaseN
	a.rng.SetState(snap.RNG)
	return nil
}

// Probabilities returns the current per-variable choice probabilities
// (diagnostic; used by tests to verify policy improvement).
func (a *PPOAgent) Probabilities() [][]float64 {
	out := make([][]float64, len(a.logits))
	for i, lg := range a.logits {
		out[i] = softmax(lg)
	}
	return out
}

// AllReduceMean averages gradients in place across agents: every slice is
// replaced by the elementwise mean, mirroring the synchronous MPI-style
// all-reduce in DeepHyper's RL method.
func AllReduceMean(grads [][]float64) error {
	if len(grads) == 0 {
		return nil
	}
	n := len(grads[0])
	for _, g := range grads[1:] {
		if len(g) != n {
			return fmt.Errorf("search: all-reduce length mismatch")
		}
	}
	mean := make([]float64, n)
	for _, g := range grads {
		for i, v := range g {
			mean[i] += v
		}
	}
	inv := 1 / float64(len(grads))
	for i := range mean {
		mean[i] *= inv
	}
	for _, g := range grads {
		copy(g, mean)
	}
	return nil
}
