package search

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"podnas/internal/arch"
	"podnas/internal/tensor"
)

// FaultCounts tallies what a FaultInjector actually injected.
type FaultCounts struct {
	Failures   int // transient errors returned
	Panics     int // panics raised
	Stragglers int // evaluations delayed
	Hangs      int // evaluations blocked until cancellation
	Kills      int // process kills triggered
	Passed     int // evaluations forwarded untouched (may still straggle)
}

// Total returns the number of injected faults (stragglers included).
func (c FaultCounts) Total() int { return c.Failures + c.Panics + c.Stragglers + c.Hangs + c.Kills }

// FaultInjector wraps an Evaluator and injects the failure modes of a real
// HPC deployment — transient errors, worker panics, stragglers, and hung
// evaluations — at configurable rates, so tests can prove the search stack
// survives realistic fault rates (the paper's Theta jobs lose evaluations
// to preempted and flaky KNL nodes as a matter of course).
//
// Injection is deterministic: the decision for an evaluation derives from
// (Seed, evalSeed, attempt). A transient failure injected on attempt 0 may
// therefore succeed on a retry, which is exactly what the runner's
// ErrTransient retry policy models. The zero rates make the injector a
// transparent pass-through. Safe for concurrent use.
type FaultInjector struct {
	Inner Evaluator
	Seed  uint64
	// FailRate is the probability of returning an ErrTransient-wrapped
	// error instead of evaluating.
	FailRate float64
	// PanicRate is the probability of panicking mid-evaluation.
	PanicRate float64
	// StragglerRate is the probability of delaying the evaluation by
	// StragglerDelay (scaled by uniform jitter in [0.5, 1.5)) before
	// forwarding it.
	StragglerRate float64
	// StragglerDelay is the mean injected straggler latency (default 20ms).
	StragglerDelay time.Duration
	// HangRate is the probability of blocking until the context is
	// cancelled — a worker that will never answer. Only meaningful under a
	// per-evaluation timeout or deadline; without one the hang falls back to
	// 10× StragglerDelay so nothing deadlocks.
	HangRate float64
	// KillRate is the probability of killing the whole process
	// mid-evaluation — the real OOM-killer failure mode that in-process
	// recovery cannot survive. Only the process-isolated worker pool
	// (internal/worker) lives through it: the supervisor sees the child die
	// and re-dispatches the evaluation. Use only inside disposable worker
	// processes, never in the search driver itself.
	KillRate float64
	// Kill overrides the kill action (default: SIGKILL the own process and
	// block until death). Tests stub it to observe the decision without
	// dying; if the stub returns, the evaluation fails with ErrTransient.
	Kill func()

	mu       sync.Mutex
	counts   FaultCounts
	attempts map[string]int // per (arch,seed) attempt counter, for retry determinism
}

// Counts returns a snapshot of the injected-fault tallies.
func (f *FaultInjector) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// nextAttempt returns which attempt number this (arch, seed) call is, so
// retries of the same evaluation draw fresh fault decisions.
func (f *FaultInjector) nextAttempt(a arch.Arch, seed uint64) int {
	key := fmt.Sprintf("%s#%d", a.Key(), seed)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.attempts == nil {
		f.attempts = make(map[string]int)
	}
	n := f.attempts[key]
	f.attempts[key] = n + 1
	return n
}

func (f *FaultInjector) bump(field *int) {
	f.mu.Lock()
	*field++
	f.mu.Unlock()
}

// Evaluate implements Evaluator.
func (f *FaultInjector) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	return f.EvaluateCtx(context.Background(), a, seed)
}

// EvaluateCtx implements ContextEvaluator: it draws a deterministic fault
// decision and either fails, panics, hangs, delays, or forwards to Inner.
func (f *FaultInjector) EvaluateCtx(ctx context.Context, a arch.Arch, seed uint64) (float64, error) {
	attempt := f.nextAttempt(a, seed)
	rng := tensor.NewRNG(f.Seed ^ seed*0x9e3779b97f4a7c15 ^ uint64(attempt)*0x2545f4914f6cdd1d)
	u := rng.Float64()
	switch {
	case u < f.KillRate:
		f.bump(&f.counts.Kills)
		f.kill()
		// A stubbed Kill returns; surface the decision as a transient
		// failure so tests (and a worker that somehow survives) stay sane.
		return 0, fmt.Errorf("injected kill survived (seed %d attempt %d): %w", seed, attempt, ErrTransient)
	case u < f.KillRate+f.PanicRate:
		f.bump(&f.counts.Panics)
		panic(fmt.Sprintf("injected panic (seed %d attempt %d)", seed, attempt))
	case u < f.KillRate+f.PanicRate+f.FailRate:
		f.bump(&f.counts.Failures)
		return 0, fmt.Errorf("injected failure (seed %d attempt %d): %w", seed, attempt, ErrTransient)
	case u < f.KillRate+f.PanicRate+f.FailRate+f.HangRate:
		f.bump(&f.counts.Hangs)
		if ctx.Done() != nil {
			<-ctx.Done()
			return 0, fmt.Errorf("injected hang (seed %d): %w", seed, ctx.Err())
		}
		// Non-cancellable ctx (Done() == nil, e.g. Background in unit
		// tests): bound the simulated hang but stay interruptible in
		// case a cancellable ctx ever reaches this arm.
		select {
		case <-ctx.Done():
		case <-time.After(10 * f.stragglerDelay()):
		}
		return 0, fmt.Errorf("injected hang (seed %d): %w", seed, ErrTransient)
	case u < f.KillRate+f.PanicRate+f.FailRate+f.HangRate+f.StragglerRate:
		f.bump(&f.counts.Stragglers)
		delay := time.Duration((0.5 + rng.Float64()) * float64(f.stragglerDelay()))
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("straggler interrupted (seed %d): %w", seed, ctx.Err())
		case <-time.After(delay):
		}
	default:
		f.bump(&f.counts.Passed)
	}
	if ce, ok := f.Inner.(ContextEvaluator); ok {
		return ce.EvaluateCtx(ctx, a, seed)
	}
	return f.Inner.Evaluate(a, seed)
}

// kill executes the process-kill action. The default SIGKILLs the current
// process and blocks: SIGKILL is asynchronous, and returning would let the
// evaluation continue in a process that is already condemned.
func (f *FaultInjector) kill() {
	if f.Kill != nil {
		f.Kill()
		return
	}
	if proc, err := os.FindProcess(os.Getpid()); err == nil {
		_ = proc.Kill()
	}
	select {} // wait for the SIGKILL to land
}

func (f *FaultInjector) stragglerDelay() time.Duration {
	if f.StragglerDelay > 0 {
		return f.StragglerDelay
	}
	return 20 * time.Millisecond
}
