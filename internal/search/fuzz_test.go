package search

import (
	"os"
	"path/filepath"
	"testing"

	"podnas/internal/arch"
)

// FuzzCheckpointDecode drives LoadCheckpoint — the CRC32 envelope parser
// plus the legacy pre-envelope fallback — with arbitrary file contents. The
// contract under fuzzing: never panic, and never return a nil error for a
// checkpoint without searcher state (resuming from one would corrupt a
// run).
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a genuine envelope written by the production writer.
	seedDir := f.TempDir()
	cp := &Checkpointer{Path: filepath.Join(seedDir, "seed.ck")}
	rs, err := NewRandomSearch(arch.Default(), 1)
	if err != nil {
		f.Fatalf("seed searcher: %v", err)
	}
	if err := cp.save(rs, nil, []Result{{Index: 0, Arch: rs.Propose(), Reward: 0.5}}); err != nil {
		f.Fatalf("seed checkpoint: %v", err)
	}
	data, err := os.ReadFile(cp.Path)
	if err != nil {
		f.Fatalf("read seed checkpoint: %v", err)
	}
	f.Add(data)
	// Legacy pre-envelope document, truncations, and corruptions.
	f.Add([]byte(`{"kind":"RS","results":[{"index":0,"arch":[1,2],"reward":0.5}]}`))
	f.Add([]byte(`{"version":1,"crc32":123,"payload":{"kind":"RS","results":[]}}`))
	f.Add([]byte(`{"version":99,"crc32":0,"payload":{}}`))
	f.Add(data[:len(data)/2])
	f.Add([]byte("not json at all"))
	f.Add([]byte(`{"version":1,"crc32":0,"payload":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip("cannot materialize input")
		}
		ck, err := LoadCheckpoint(path)
		if err != nil {
			return
		}
		if ck.Kind == "" {
			t.Fatalf("LoadCheckpoint accepted a checkpoint with no kind: %q", data)
		}
		// The accessors a resuming runner touches must hold up too.
		_ = ck.NumResults()
		_ = ck.restoredResults()
	})
}
