package search

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/fsatomic"
	"podnas/internal/tensor"
)

// proposeN drains n proposals from a searcher (without reporting).
func proposeN(s Searcher, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s.Propose().Key()
	}
	return out
}

// TestAESnapshotRoundTrip: a restored AE produces the exact same future
// proposal stream as the original, including population and RNG position.
func TestAESnapshotRoundTrip(t *testing.T) {
	s := toySpace()
	ae, _ := NewAgingEvolution(s, 8, 3, 31)
	for i := 0; i < 20; i++ {
		a := ae.Propose()
		ae.Report(a, float64(i)/20)
	}
	st, err := ae.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "AE" {
		t.Fatalf("kind %q", st.Kind)
	}
	ae2, _ := NewAgingEvolution(s, 0, 0, 999) // different config and seed
	if err := ae2.Restore(st); err != nil {
		t.Fatal(err)
	}
	if ae2.Population != 8 || ae2.Sample != 3 {
		t.Errorf("restored config P=%d S=%d", ae2.Population, ae2.Sample)
	}
	want := proposeN(ae, 15)
	got := proposeN(ae2, 15)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("proposal %d diverges after restore: %s vs %s", i, want[i], got[i])
		}
	}
}

// TestRSSnapshotRoundTrip: restoring RS resumes its RNG stream exactly.
func TestRSSnapshotRoundTrip(t *testing.T) {
	s := toySpace()
	rs, _ := NewRandomSearch(s, 32)
	proposeN(rs, 7)
	st, err := rs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rs2, _ := NewRandomSearch(s, 0)
	if err := rs2.Restore(st); err != nil {
		t.Fatal(err)
	}
	want, got := proposeN(rs, 10), proposeN(rs2, 10)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("RS stream diverges at %d", i)
		}
	}
}

// TestPPOSnapshotRoundTrip: a restored agent proposes the same batches.
func TestPPOSnapshotRoundTrip(t *testing.T) {
	s := toySpace()
	a1, _ := NewPPOAgent(s, 33)
	eval := &toyEvaluator{space: s}
	for round := 0; round < 5; round++ {
		batch := a1.ProposeBatch(6)
		rewards := make([]float64, len(batch))
		for i, ar := range batch {
			rewards[i], _ = eval.Evaluate(ar, 0)
		}
		g, _ := a1.Gradients(batch, rewards)
		a1.ApplyGradients(g)
	}
	st, err := a1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := NewPPOAgent(s, 777)
	if err := a2.Restore(st); err != nil {
		t.Fatal(err)
	}
	b1, b2 := a1.ProposeBatch(8), a2.ProposeBatch(8)
	for i := range b1 {
		if b1[i].Key() != b2[i].Key() {
			t.Fatalf("PPO proposals diverge at %d after restore", i)
		}
	}
}

// TestSnapshotKindMismatch: snapshots must not cross algorithm boundaries.
func TestSnapshotKindMismatch(t *testing.T) {
	s := toySpace()
	ae, _ := NewAgingEvolution(s, 5, 2, 34)
	ne, _ := NewNonAgingEvolution(s, 5, 2, 34)
	rs, _ := NewRandomSearch(s, 34)
	agent, _ := NewPPOAgent(s, 34)

	aeSt, _ := ae.Snapshot()
	neSt, _ := ne.Snapshot()
	rsSt, _ := rs.Snapshot()
	ppoSt, _ := agent.Snapshot()

	if err := ae.Restore(neSt); err == nil {
		t.Error("AE accepted a NonAgingEvo snapshot")
	}
	if err := ne.Restore(aeSt); err == nil {
		t.Error("NonAgingEvo accepted an AE snapshot")
	}
	if err := rs.Restore(aeSt); err == nil {
		t.Error("RS accepted an AE snapshot")
	}
	if err := agent.Restore(rsSt); err == nil {
		t.Error("PPO accepted an RS snapshot")
	}
	if err := ae.Restore(ppoSt); err == nil {
		t.Error("AE accepted a PPO snapshot")
	}
}

// TestRunAsyncCheckpointResume is the core resume guarantee: a run cancelled
// partway and resumed from its checkpoint finishes with the exact same
// evaluation budget, and at Workers == 1 reproduces the uninterrupted
// trajectory result-for-result.
func TestRunAsyncCheckpointResume(t *testing.T) {
	s := toySpace()
	const evals = 80

	// Reference: uninterrupted run.
	aeRef, _ := NewAgingEvolution(s, 10, 3, 41)
	ref, err := RunAsync(aeRef, &toyEvaluator{space: s}, RunAsyncOptions{Workers: 1, MaxEvals: evals, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after ~30 results, checkpointing every 10.
	path := filepath.Join(t.TempDir(), "ck.json")
	ck := &Checkpointer{Path: path, Every: 10}
	ae1, _ := NewAgingEvolution(s, 10, 3, 41)
	ctx, cancel := context.WithCancel(context.Background())
	gate := &cancelAfterEvaluator{inner: &toyEvaluator{space: s}, after: 30, cancel: cancel}
	partial, err := RunAsyncCtx(ctx, ae1, gate, RunAsyncOptions{Workers: 1, MaxEvals: evals, Seed: 41, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) >= evals {
		t.Fatalf("interruption did not bite: %d results", len(partial))
	}

	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != "AE" {
		t.Fatalf("checkpoint kind %q", loaded.Kind)
	}
	if loaded.NumResults() != len(partial) {
		t.Fatalf("final checkpoint stores %d results, run returned %d", loaded.NumResults(), len(partial))
	}

	// Resume into a fresh searcher; finish the budget.
	ae2, _ := NewAgingEvolution(s, 10, 3, 999)
	rest, err := RunAsync(ae2, &toyEvaluator{space: s}, RunAsyncOptions{Workers: 1, MaxEvals: evals, Seed: 41, Resume: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != evals {
		t.Fatalf("resumed run finished with %d results, want the full budget %d", len(rest), evals)
	}
	for i := range ref {
		if ref[i].Index != rest[i].Index || ref[i].Arch.Key() != rest[i].Arch.Key() || ref[i].Reward != rest[i].Reward {
			t.Fatalf("resumed trajectory diverges at %d: %+v vs %+v", i, ref[i], rest[i])
		}
	}
}

// cancelAfterEvaluator cancels the run context after n evaluations complete.
// It implements ContextEvaluator (ignoring the context) so the runner takes
// the direct evaluation path: the evaluation during which cancel fires is
// still recorded, which keeps the interruption point deterministic.
type cancelAfterEvaluator struct {
	inner  *toyEvaluator
	after  int
	cancel context.CancelFunc
}

func (e *cancelAfterEvaluator) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	r, err := e.inner.Evaluate(a, seed)
	e.inner.mu.Lock()
	done := e.inner.calls >= e.after
	e.inner.mu.Unlock()
	if done {
		e.cancel()
	}
	return r, err
}

func (e *cancelAfterEvaluator) EvaluateCtx(_ context.Context, a arch.Arch, seed uint64) (float64, error) {
	return e.Evaluate(a, seed)
}

// TestRunAsyncResumeAlreadyComplete: resuming a finished checkpoint is a
// no-op that returns the stored results.
func TestRunAsyncResumeAlreadyComplete(t *testing.T) {
	s := toySpace()
	path := filepath.Join(t.TempDir(), "ck.json")
	ae, _ := NewAgingEvolution(s, 10, 3, 42)
	res, err := RunAsync(ae, &toyEvaluator{space: s}, RunAsyncOptions{
		Workers: 2, MaxEvals: 25, Seed: 42, Checkpoint: &Checkpointer{Path: path},
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ae2, _ := NewAgingEvolution(s, 10, 3, 42)
	again, err := RunAsync(ae2, &toyEvaluator{space: s}, RunAsyncOptions{
		Workers: 2, MaxEvals: 25, Seed: 42, Resume: loaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(res) {
		t.Fatalf("no-op resume returned %d results, want %d", len(again), len(res))
	}
}

// TestRunRLCheckpointResume: an RL run checkpointed per round resumes with
// whole rounds only and finishes the configured batch count.
func TestRunRLCheckpointResume(t *testing.T) {
	s := toySpace()
	path := filepath.Join(t.TempDir(), "rl.json")
	opts := RunRLOptions{Agents: 2, WorkersPerAgent: 3, Batches: 12, Seed: 51,
		Checkpoint: &Checkpointer{Path: path, Every: 1}}

	// Reference uninterrupted run.
	ref, err := RunRL(s, &toyEvaluator{space: s}, RunRLOptions{Agents: 2, WorkersPerAgent: 3, Batches: 12, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: cancel after round 5 via a context watcher on result count.
	ctx, cancel := context.WithCancel(context.Background())
	gate := &cancelAfterEvaluator{inner: &toyEvaluator{space: s}, after: 5 * 6, cancel: cancel}
	partial, err := RunRLCtx(ctx, s, gate, opts)
	if err != nil {
		t.Fatal(err)
	}
	roundSize := 6
	if len(partial)%roundSize != 0 {
		t.Fatalf("partial RL run returned %d results — not a whole number of rounds", len(partial))
	}
	if len(partial) == 0 || len(partial) >= 12*roundSize {
		t.Fatalf("interruption did not bite: %d results", len(partial))
	}

	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != "RL" {
		t.Fatalf("kind %q", loaded.Kind)
	}
	if loaded.NumResults()%roundSize != 0 {
		t.Fatalf("checkpoint stores %d results — not whole rounds", loaded.NumResults())
	}

	rest, err := RunRL(s, &toyEvaluator{space: s}, RunRLOptions{
		Agents: 2, WorkersPerAgent: 3, Batches: 12, Seed: 51, Resume: loaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 12*roundSize {
		t.Fatalf("resumed RL run has %d results, want %d", len(rest), 12*roundSize)
	}
	for i := range ref {
		if ref[i].Arch.Key() != rest[i].Arch.Key() || ref[i].Reward != rest[i].Reward {
			t.Fatalf("resumed RL trajectory diverges at %d", i)
		}
	}
}

// TestRLResumeValidation: RL checkpoints reject async runs and mismatched
// agent counts.
func TestRLResumeValidation(t *testing.T) {
	s := toySpace()
	path := filepath.Join(t.TempDir(), "rl.json")
	_, err := RunRL(s, &toyEvaluator{space: s}, RunRLOptions{
		Agents: 2, WorkersPerAgent: 2, Batches: 2, Seed: 52,
		Checkpoint: &Checkpointer{Path: path, Every: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong agent count.
	if _, err := RunRL(s, &toyEvaluator{space: s}, RunRLOptions{
		Agents: 3, WorkersPerAgent: 2, Batches: 4, Seed: 52, Resume: loaded,
	}); err == nil {
		t.Error("agent-count mismatch accepted")
	}
	// RL checkpoint into an async run.
	ae, _ := NewAgingEvolution(s, 5, 2, 52)
	if _, err := RunAsync(ae, &toyEvaluator{space: s}, RunAsyncOptions{
		Workers: 1, MaxEvals: 10, Seed: 52, Resume: loaded,
	}); err == nil {
		t.Error("RL checkpoint accepted by async runner")
	}
}

// TestLoadCheckpointMissing: a missing checkpoint file is a load error, not
// a silent fresh start.
func TestLoadCheckpointMissing(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.json")); !os.IsNotExist(err) {
		t.Errorf("want IsNotExist, got %v", err)
	}
}

// TestCheckpointClampsNonFiniteRewards: NaN rewards cannot survive a JSON
// round trip, so the encoder clamps them to the divergence sentinel.
func TestCheckpointClampsNonFiniteRewards(t *testing.T) {
	s := toySpace()
	path := filepath.Join(t.TempDir(), "ck.json")
	c := &Checkpointer{Path: path}
	rs, _ := NewRandomSearch(s, 53)
	rng := tensor.NewRNG(53)
	results := []Result{
		{Index: 0, Arch: s.Random(rng), Reward: math.NaN()},
		{Index: 1, Arch: s.Random(rng), Reward: 0.7, Elapsed: time.Second},
	}
	if err := c.save(rs, nil, results); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.restoredResults()
	if got[0].Reward != DivergedReward {
		t.Errorf("NaN reward stored as %g, want sentinel %g", got[0].Reward, DivergedReward)
	}
	if got[1].Reward != 0.7 || got[1].Elapsed != time.Second {
		t.Errorf("finite result mangled: %+v", got[1])
	}
}

// TestCheckpointAtomicOverwrite: repeated saves leave no temp litter and the
// newest state wins.
func TestCheckpointAtomicOverwrite(t *testing.T) {
	s := toySpace()
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	c := &Checkpointer{Path: path}
	rs, _ := NewRandomSearch(s, 54)
	rng := tensor.NewRNG(54)
	for i := 1; i <= 3; i++ {
		var results []Result
		for j := 0; j < i; j++ {
			results = append(results, Result{Index: j, Arch: s.Random(rng), Reward: 0.1})
		}
		if err := c.save(rs, nil, results); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir holds %d entries, want only the checkpoint", len(entries))
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumResults() != 3 {
		t.Errorf("latest save has %d results, want 3", loaded.NumResults())
	}
}

// writeTestCheckpoint saves a small valid checkpoint and returns its path
// and raw bytes, for the integrity tests to damage.
func writeTestCheckpoint(t *testing.T) (string, []byte) {
	t.Helper()
	s := toySpace()
	path := filepath.Join(t.TempDir(), "ck.json")
	c := &Checkpointer{Path: path}
	rs, _ := NewRandomSearch(s, 61)
	rng := tensor.NewRNG(61)
	results := []Result{
		{Index: 0, Arch: s.Random(rng), Reward: 0.25},
		{Index: 1, Arch: s.Random(rng), Reward: 0.5},
	}
	if err := c.save(rs, nil, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestCheckpointTruncationRejected: a file cut off mid-JSON (a crash while
// writing on a filesystem without atomic rename) must be rejected with a
// clear error, not half-restored.
func TestCheckpointTruncationRejected(t *testing.T) {
	path, data := writeTestCheckpoint(t)
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		cut := int(float64(len(data)) * frac)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(path)
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes was accepted", cut, len(data))
		}
		if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "corrupted") {
			t.Fatalf("truncated checkpoint error not descriptive: %v", err)
		}
	}
}

// TestCheckpointCorruptionRejected: flipping payload bytes while keeping the
// file valid JSON must trip the CRC, catching corruption plain parsing
// would silently accept.
func TestCheckpointCorruptionRejected(t *testing.T) {
	path, data := writeTestCheckpoint(t)
	// Change one reward digit inside the payload: still valid JSON, still a
	// structurally plausible checkpoint — only the checksum knows.
	corrupted := strings.Replace(string(data), "0.25", "0.26", 1)
	if corrupted == string(data) {
		t.Fatal("test setup: reward literal not found in checkpoint file")
	}
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if err == nil {
		t.Fatal("corrupted checkpoint was accepted")
	}
	if !strings.Contains(err.Error(), "CRC32") {
		t.Fatalf("corruption error does not mention the checksum: %v", err)
	}
}

// TestCheckpointVersionRejected: a future schema version fails loudly.
func TestCheckpointVersionRejected(t *testing.T) {
	path, data := writeTestCheckpoint(t)
	bumped := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if bumped == string(data) {
		t.Fatal("test setup: version field not found in checkpoint file")
	}
	if err := os.WriteFile(path, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future schema version not rejected: %v", err)
	}
}

// TestCheckpointLegacyFormatAccepted: pre-envelope files (plain Checkpoint
// JSON, no version or CRC) still load, so old runs stay resumable.
func TestCheckpointLegacyFormatAccepted(t *testing.T) {
	path, _ := writeTestCheckpoint(t)
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if got.NumResults() != ck.NumResults() || got.Kind != ck.Kind {
		t.Fatalf("legacy load mangled state: %+v", got)
	}
}

// TestCheckpointNonCheckpointRejected: a valid-JSON file that is not a
// checkpoint (e.g. a search history handed to -resume by mistake) errors
// instead of resuming empty state.
func TestCheckpointNonCheckpointRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notack.json")
	if err := os.WriteFile(path, []byte(`{"results": [], "best_arch": "1-2-3"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("non-checkpoint JSON accepted as checkpoint")
	}
}

// TestCheckpointWriteSyncs: the checkpoint write path must fsync the temp
// file and the parent directory (via fsatomic), not merely rename — a power
// loss right after a "committed" save must never surface an empty or torn
// checkpoint.
func TestCheckpointWriteSyncs(t *testing.T) {
	s := toySpace()
	path := filepath.Join(t.TempDir(), "ck.json")
	c := &Checkpointer{Path: path}
	rs, _ := NewRandomSearch(s, 55)
	before := fsatomic.SyncCount()
	if err := c.save(rs, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := fsatomic.SyncCount() - before; got < 2 {
		t.Fatalf("checkpoint save issued %d fsyncs, want >= 2 (temp file + parent dir)", got)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("synced checkpoint does not load: %v", err)
	}
}

// TestEnvelopeSealOpenRoundTrip pins the exported envelope helpers other
// durable stores (the nasd job manifests) build on: seal→open returns the
// payload, corruption and truncation are rejected with ErrBadCheckpoint,
// and legacy bare documents pass through.
func TestEnvelopeSealOpenRoundTrip(t *testing.T) {
	payload := []byte(`{"kind":"RS","results":[]}`)
	sealed, err := SealEnvelope(payload)
	if err != nil {
		t.Fatal(err)
	}
	back, err := OpenEnvelope("test", sealed)
	if err != nil {
		t.Fatal(err)
	}
	// The envelope re-indents the embedded payload; the CRC (and this
	// comparison) are over the compacted form, which must be identical.
	var a, b bytes.Buffer
	if err := json.Compact(&a, payload); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&b, back); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("payload round-tripped to %q", back)
	}
	// One flipped byte inside the payload must fail the CRC.
	bad := []byte(strings.Replace(string(sealed), `"RS"`, `"rs"`, 1))
	if _, err := OpenEnvelope("test", bad); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("corrupted envelope opened: %v", err)
	}
	// Truncation must fail, not panic.
	if _, err := OpenEnvelope("test", sealed[:len(sealed)/2]); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("truncated envelope opened: %v", err)
	}
	// Legacy pre-envelope documents (no version, no payload) pass through.
	legacy := []byte(`{"kind":"RS"}`)
	back, err = OpenEnvelope("test", legacy)
	if err != nil || string(back) != string(legacy) {
		t.Errorf("legacy document rejected: %q, %v", back, err)
	}
}
