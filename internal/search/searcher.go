// Package search implements the three NAS methods compared in the paper:
// aging evolution (AE, §III-B1), a distributed PPO-based reinforcement
// learning method (§III-B2), and random search (§III-B3).
//
// AE and RS are fully asynchronous and implement the Searcher interface,
// which decouples proposal/feedback from scheduling: the same algorithm
// instance drives both the real parallel runner in this package and the
// discrete-event cluster simulator in internal/hpcsim. The RL method is
// synchronous by design (per-batch gradient all-reduce across agents) and
// exposes the agent-level API the schedulers need to model its barriers.
package search

import (
	"encoding/json"
	"fmt"

	"podnas/internal/arch"
	"podnas/internal/tensor"
)

// Searcher is an asynchronous architecture proposer. Implementations are
// not safe for concurrent use; schedulers serialize access.
type Searcher interface {
	// Propose returns the next architecture to evaluate.
	Propose() arch.Arch
	// Report records the reward (validation R²) of a completed evaluation.
	Report(a arch.Arch, reward float64)
	// Name identifies the method ("AE", "RS").
	Name() string
}

// member is one individual of the AE population.
type member struct {
	arch   arch.Arch
	reward float64
}

// AgingEvolution implements regularized evolution (Real et al. 2019) as
// described in §III-B1: a FIFO population of size P; each proposal samples S
// members uniformly without replacement, mutates the best of the sample, and
// completed evaluations replace the oldest member once the population is
// full. The aging mechanism discards stale high-reward flukes, providing
// the noise regularization the paper credits for AE's advantage.
type AgingEvolution struct {
	Space      arch.Space
	Population int // P (paper: 100)
	Sample     int // S (paper: 10)

	rng      *tensor.RNG
	pop      []member // FIFO: index 0 is oldest
	proposed int
}

// NewAgingEvolution returns an AE searcher with the paper's defaults when
// population or sample are zero (100 and 10).
func NewAgingEvolution(space arch.Space, population, sample int, seed uint64) (*AgingEvolution, error) {
	if population == 0 {
		population = 100
	}
	if sample == 0 {
		sample = 10
	}
	if population < 1 || sample < 1 || sample > population {
		return nil, fmt.Errorf("search: invalid AE config P=%d S=%d", population, sample)
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	return &AgingEvolution{Space: space, Population: population, Sample: sample, rng: tensor.NewRNG(seed)}, nil
}

// Name returns "AE".
func (ae *AgingEvolution) Name() string { return "AE" }

// Propose returns a random architecture while the initial population is
// being seeded, then mutations of sampled parents.
func (ae *AgingEvolution) Propose() arch.Arch {
	ae.proposed++
	if ae.proposed <= ae.Population || len(ae.pop) == 0 {
		return ae.Space.Random(ae.rng)
	}
	s := ae.Sample
	if s > len(ae.pop) {
		s = len(ae.pop)
	}
	// Sample without replacement; keep the best.
	idx := ae.rng.Perm(len(ae.pop))[:s]
	best := idx[0]
	for _, i := range idx[1:] {
		if ae.pop[i].reward > ae.pop[best].reward {
			best = i
		}
	}
	return ae.Space.Mutate(ae.pop[best].arch, ae.rng)
}

// Report inserts the evaluated architecture, evicting the oldest member
// when the population is at capacity.
func (ae *AgingEvolution) Report(a arch.Arch, reward float64) {
	ae.pop = append(ae.pop, member{arch: a.Clone(), reward: reward})
	if len(ae.pop) > ae.Population {
		ae.pop = ae.pop[1:]
	}
}

// aeSnapshot is the serialized state of an (aging or non-aging) evolution
// searcher: the FIFO population, the proposal counter that gates the
// seeding phase, and the RNG mid-stream.
type aeSnapshot struct {
	Population int              `json:"population"`
	Sample     int              `json:"sample"`
	Proposed   int              `json:"proposed"`
	Pop        []memberSnapshot `json:"pop"`
	RNG        tensor.RNGState  `json:"rng"`
}

type memberSnapshot struct {
	Arch   arch.Arch `json:"arch"`
	Reward float64   `json:"reward"`
}

// Snapshot captures the full AE state for checkpointing.
func (ae *AgingEvolution) Snapshot() (SearcherState, error) { return ae.snapshot("AE") }

// Restore overwrites the AE state from a snapshot of the same kind.
func (ae *AgingEvolution) Restore(st SearcherState) error { return ae.restore("AE", st) }

func (ae *AgingEvolution) snapshot(kind string) (SearcherState, error) {
	snap := aeSnapshot{Population: ae.Population, Sample: ae.Sample, Proposed: ae.proposed, RNG: ae.rng.State()}
	for _, m := range ae.pop {
		snap.Pop = append(snap.Pop, memberSnapshot{Arch: m.arch, Reward: m.reward})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return SearcherState{}, err
	}
	return SearcherState{Kind: kind, Data: data}, nil
}

func (ae *AgingEvolution) restore(kind string, st SearcherState) error {
	if st.Kind != kind {
		return fmt.Errorf("search: cannot restore %q snapshot into %s", st.Kind, kind)
	}
	var snap aeSnapshot
	if err := json.Unmarshal(st.Data, &snap); err != nil {
		return fmt.Errorf("search: bad %s snapshot: %w", kind, err)
	}
	if snap.Population < 1 || snap.Sample < 1 || snap.Sample > snap.Population {
		return fmt.Errorf("search: snapshot has invalid AE config P=%d S=%d", snap.Population, snap.Sample)
	}
	pop := make([]member, 0, len(snap.Pop))
	for _, m := range snap.Pop {
		if err := ae.Space.ValidateArch(m.Arch); err != nil {
			return fmt.Errorf("search: snapshot population member invalid: %w", err)
		}
		pop = append(pop, member{arch: m.Arch.Clone(), reward: m.Reward})
	}
	ae.Population = snap.Population
	ae.Sample = snap.Sample
	ae.proposed = snap.Proposed
	ae.pop = pop
	ae.rng.SetState(snap.RNG)
	return nil
}

// PopulationBest returns the best reward currently alive in the population
// (for diagnostics). Returns false if the population is empty.
func (ae *AgingEvolution) PopulationBest() (float64, bool) {
	if len(ae.pop) == 0 {
		return 0, false
	}
	best := ae.pop[0].reward
	for _, m := range ae.pop[1:] {
		if m.reward > best {
			best = m.reward
		}
	}
	return best, true
}

// RandomSearch samples architectures uniformly with no feedback (§III-B3).
type RandomSearch struct {
	Space arch.Space
	rng   *tensor.RNG
}

// NewRandomSearch returns an RS searcher.
func NewRandomSearch(space arch.Space, seed uint64) (*RandomSearch, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	return &RandomSearch{Space: space, rng: tensor.NewRNG(seed)}, nil
}

// Name returns "RS".
func (rs *RandomSearch) Name() string { return "RS" }

// Propose returns a uniform random architecture.
func (rs *RandomSearch) Propose() arch.Arch { return rs.Space.Random(rs.rng) }

// Report is a no-op: random search uses no feedback.
func (rs *RandomSearch) Report(arch.Arch, float64) {}

// rsSnapshot is the serialized RS state: only the RNG stream position.
type rsSnapshot struct {
	RNG tensor.RNGState `json:"rng"`
}

// Snapshot captures the RS state for checkpointing.
func (rs *RandomSearch) Snapshot() (SearcherState, error) {
	data, err := json.Marshal(rsSnapshot{RNG: rs.rng.State()})
	if err != nil {
		return SearcherState{}, err
	}
	return SearcherState{Kind: "RS", Data: data}, nil
}

// Restore overwrites the RS state from a snapshot.
func (rs *RandomSearch) Restore(st SearcherState) error {
	if st.Kind != "RS" {
		return fmt.Errorf("search: cannot restore %q snapshot into RS", st.Kind)
	}
	var snap rsSnapshot
	if err := json.Unmarshal(st.Data, &snap); err != nil {
		return fmt.Errorf("search: bad RS snapshot: %w", err)
	}
	rs.rng.SetState(snap.RNG)
	return nil
}

// NonAgingEvolution is the ablation variant of AE that replaces the *worst*
// population member instead of the oldest. Without aging, a lucky noisy
// evaluation can occupy the population forever; DESIGN.md lists this
// ablation and the benches compare the two under reward noise.
type NonAgingEvolution struct {
	AgingEvolution
}

// NewNonAgingEvolution returns the non-regularized evolution ablation.
func NewNonAgingEvolution(space arch.Space, population, sample int, seed uint64) (*NonAgingEvolution, error) {
	ae, err := NewAgingEvolution(space, population, sample, seed)
	if err != nil {
		return nil, err
	}
	return &NonAgingEvolution{AgingEvolution: *ae}, nil
}

// Name returns "NonAgingEvo".
func (ne *NonAgingEvolution) Name() string { return "NonAgingEvo" }

// Snapshot captures the non-aging state under its own kind, so snapshots
// cannot silently cross between the ablation and the real method.
func (ne *NonAgingEvolution) Snapshot() (SearcherState, error) { return ne.snapshot("NonAgingEvo") }

// Restore overwrites the non-aging state from a snapshot of the same kind.
func (ne *NonAgingEvolution) Restore(st SearcherState) error { return ne.restore("NonAgingEvo", st) }

// Report inserts the evaluated architecture, evicting the worst member when
// the population is at capacity.
func (ne *NonAgingEvolution) Report(a arch.Arch, reward float64) {
	ne.pop = append(ne.pop, member{arch: a.Clone(), reward: reward})
	if len(ne.pop) > ne.Population {
		worst := 0
		for i, m := range ne.pop {
			if m.reward < ne.pop[worst].reward {
				worst = i
			}
		}
		ne.pop = append(ne.pop[:worst], ne.pop[worst+1:]...)
	}
}
