package search

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"time"

	"podnas/internal/arch"
	"podnas/internal/fsatomic"
)

// CheckpointVersion is the on-disk schema version written by Checkpointer.
// LoadCheckpoint rejects versions it does not understand, so a future
// incompatible change fails loudly instead of restoring garbage state.
const CheckpointVersion = 1

// ErrBadCheckpoint marks every way a checkpoint can fail to restore: a
// truncated or corrupted file, a schema-version mismatch, or state that does
// not fit the run being resumed (wrong method, wrong agent count). Callers
// distinguish it with errors.Is; podnas re-exports it at the package root.
var ErrBadCheckpoint = errors.New("bad checkpoint")

// checkpointEnvelope is the on-disk wrapper: a schema version and a CRC32
// of the payload, so truncated or silently corrupted checkpoint files (a
// crash mid-rename on a non-atomic filesystem, bit rot on scratch storage)
// are rejected with a clear error instead of resuming a damaged search.
type checkpointEnvelope struct {
	Version  int             `json:"version"`
	Checksum uint32          `json:"crc32"` // IEEE CRC32 of the compacted payload
	Payload  json.RawMessage `json:"payload"`
}

// payloadChecksum hashes the JSON-compacted payload so the CRC is stable
// under re-indentation of the file.
func payloadChecksum(payload []byte) (uint32, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, payload); err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(buf.Bytes()), nil
}

// SealEnvelope wraps a JSON payload in the versioned+CRC on-disk envelope.
// It is exported so other durable stores (the nasd job manifests in
// internal/jobs) commit state under exactly the integrity envelope the
// checkpoint fuzzing and corruption tests already trust.
func SealEnvelope(payload []byte) ([]byte, error) {
	sum, err := payloadChecksum(payload)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(checkpointEnvelope{
		Version: CheckpointVersion, Checksum: sum, Payload: payload,
	}, "", " ")
}

// OpenEnvelope verifies the envelope around data and returns the inner
// payload. name is used in error messages only (typically the file path).
// Truncation, corruption, a CRC mismatch, or an unknown schema version all
// fail with errors wrapping ErrBadCheckpoint. Legacy pre-envelope documents
// (version 0, no payload field) are returned whole, without a CRC check.
func OpenEnvelope(name string, data []byte) ([]byte, error) {
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("search: %w: %s is truncated or not valid JSON: %w", ErrBadCheckpoint, name, err)
	}
	if env.Version == 0 && env.Payload == nil {
		// Legacy pre-envelope file: the whole document is the payload.
		return data, nil
	}
	if env.Version != CheckpointVersion {
		return nil, fmt.Errorf("search: %w: %s has schema version %d, this build reads version %d", ErrBadCheckpoint, name, env.Version, CheckpointVersion)
	}
	payload := []byte(env.Payload)
	sum, err := payloadChecksum(payload)
	if err != nil {
		return nil, fmt.Errorf("search: %w: %s payload is corrupted: %w", ErrBadCheckpoint, name, err)
	}
	if sum != env.Checksum {
		return nil, fmt.Errorf("search: %w: %s is corrupted: payload CRC32 %08x does not match recorded %08x", ErrBadCheckpoint, name, sum, env.Checksum)
	}
	return payload, nil
}

// SearcherState is one serialized searcher snapshot. Kind names the
// implementation ("AE", "RS", "NonAgingEvo", "PPO") so a checkpoint cannot
// be restored into the wrong algorithm.
type SearcherState struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Snapshotter is implemented by searchers (and PPO agents) whose full state
// can be captured and restored, enabling checkpoint/resume of a search.
// Snapshot and Restore follow the searcher's concurrency contract: callers
// serialize access.
type Snapshotter interface {
	Snapshot() (SearcherState, error)
	Restore(SearcherState) error
}

// resultRecord is the JSON form of a Result. Architectures serialize as
// their raw gene slices, so a checkpoint is self-contained without the
// search space.
type resultRecord struct {
	Index   int       `json:"index"`
	Arch    arch.Arch `json:"arch"`
	Reward  float64   `json:"reward"`
	Err     string    `json:"err,omitempty"`
	Seconds float64   `json:"seconds"`
	Retries int       `json:"retries,omitempty"`
}

// Checkpoint is the persisted state of a search run: the searcher (or RL
// agent ensemble) plus every completed result. A resumed run restores the
// searcher, counts the results toward the evaluation budget, and continues.
type Checkpoint struct {
	// Kind is the searcher kind for async runs, or "RL" for RunRL.
	Kind     string          `json:"kind"`
	Searcher *SearcherState  `json:"searcher,omitempty"`
	Agents   []SearcherState `json:"agents,omitempty"`
	Results  []resultRecord  `json:"results"`
	// Seed records the run seed for operator sanity checks; the runners do
	// not enforce it.
	Seed uint64 `json:"seed,omitempty"`
}

// NumResults returns the number of completed evaluations in the checkpoint.
func (ck *Checkpoint) NumResults() int { return len(ck.Results) }

// restoredResults decodes the stored results. Stored errors come back as
// opaque error strings, like LoadSearchResult does for histories.
func (ck *Checkpoint) restoredResults() []Result {
	out := make([]Result, 0, len(ck.Results))
	for _, r := range ck.Results {
		res := Result{
			Index: r.Index, Arch: r.Arch, Reward: r.Reward,
			Elapsed: time.Duration(r.Seconds * float64(time.Second)), Retries: r.Retries,
		}
		if r.Err != "" {
			res.Err = errors.New(r.Err)
		}
		out = append(out, res)
	}
	return out
}

// apply restores an async searcher from the checkpoint and returns the
// completed results.
func (ck *Checkpoint) apply(s Searcher) ([]Result, error) {
	snap, ok := s.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("search: cannot resume %s: %w: searcher does not support snapshots", s.Name(), ErrBadCheckpoint)
	}
	if ck.Searcher == nil {
		return nil, fmt.Errorf("search: %w: checkpoint (kind %q) holds no async searcher state", ErrBadCheckpoint, ck.Kind)
	}
	if err := snap.Restore(*ck.Searcher); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadCheckpoint, err)
	}
	return ck.restoredResults(), nil
}

// applyRL restores the PPO agent ensemble from the checkpoint and returns
// the completed results. Partially completed rounds are never stored, so
// the result count is always a whole number of rounds.
func (ck *Checkpoint) applyRL(agents []*PPOAgent) ([]Result, error) {
	if ck.Kind != "RL" {
		return nil, fmt.Errorf("search: %w: checkpoint kind %q is not an RL run", ErrBadCheckpoint, ck.Kind)
	}
	if len(ck.Agents) != len(agents) {
		return nil, fmt.Errorf("search: %w: checkpoint has %d agents, run configured %d", ErrBadCheckpoint, len(ck.Agents), len(agents))
	}
	for i, st := range ck.Agents {
		if err := agents[i].Restore(st); err != nil {
			return nil, fmt.Errorf("search: %w: agent %d: %w", ErrBadCheckpoint, i, err)
		}
	}
	return ck.restoredResults(), nil
}

// LoadCheckpoint reads a checkpoint written by a Checkpointer, verifying
// the schema version and payload CRC32. A truncated or corrupted file is
// rejected with a clear error. Version-0 files (written before the
// integrity envelope existed) are still accepted, without a CRC check.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := OpenEnvelope(path, data)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(payload, ck); err != nil {
		return nil, fmt.Errorf("search: %w: %s: %w", ErrBadCheckpoint, path, err)
	}
	if ck.Kind == "" {
		return nil, fmt.Errorf("search: %w: %s holds no searcher state (is it a checkpoint file?)", ErrBadCheckpoint, path)
	}
	return ck, nil
}

// Checkpointer periodically persists search state to Path. Writes are
// atomic and durable (temp file + fsync + rename + directory fsync, via
// internal/fsatomic), so a crash mid-save leaves the previous checkpoint
// intact and a power loss immediately after a save cannot surface an empty
// or torn "committed" file.
type Checkpointer struct {
	Path string
	// Every is the save cadence in completed results (default 10). The
	// runner always writes a final checkpoint on exit regardless.
	Every int

	mu sync.Mutex
}

func (c *Checkpointer) due(nResults int) bool {
	every := c.Every
	if every <= 0 {
		every = 10
	}
	return nResults%every == 0
}

// save persists an async-run checkpoint (searcher non-nil) or defers to the
// RL form when agents are given.
func (c *Checkpointer) save(s Searcher, agents []*PPOAgent, results []Result) error {
	if agents != nil {
		return c.saveRL(agents, results)
	}
	snap, ok := s.(Snapshotter)
	if !ok {
		return fmt.Errorf("search: %s does not support snapshots", s.Name())
	}
	st, err := snap.Snapshot()
	if err != nil {
		return err
	}
	return c.write(&Checkpoint{Kind: st.Kind, Searcher: &st, Results: encodeResults(results)})
}

// saveRL persists the agent ensemble plus results after a completed round.
func (c *Checkpointer) saveRL(agents []*PPOAgent, results []Result) error {
	states := make([]SearcherState, len(agents))
	for i, a := range agents {
		st, err := a.Snapshot()
		if err != nil {
			return err
		}
		states[i] = st
	}
	return c.write(&Checkpoint{Kind: "RL", Agents: states, Results: encodeResults(results)})
}

func encodeResults(results []Result) []resultRecord {
	out := make([]resultRecord, 0, len(results))
	for _, r := range results {
		rec := resultRecord{
			Index: r.Index, Arch: r.Arch, Reward: r.Reward,
			Seconds: r.Elapsed.Seconds(), Retries: r.Retries,
		}
		if math.IsNaN(rec.Reward) || math.IsInf(rec.Reward, 0) {
			rec.Reward = DivergedReward // JSON cannot carry non-finite floats
		}
		if r.Err != nil {
			rec.Err = r.Err.Error()
		}
		out = append(out, rec)
	}
	return out
}

func (c *Checkpointer) write(ck *Checkpoint) error {
	payload, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return err
	}
	data, err := SealEnvelope(payload)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return fsatomic.WriteFile(c.Path, data, 0o644)
}
