package search

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"podnas/internal/arch"
)

// SearcherState is one serialized searcher snapshot. Kind names the
// implementation ("AE", "RS", "NonAgingEvo", "PPO") so a checkpoint cannot
// be restored into the wrong algorithm.
type SearcherState struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Snapshotter is implemented by searchers (and PPO agents) whose full state
// can be captured and restored, enabling checkpoint/resume of a search.
// Snapshot and Restore follow the searcher's concurrency contract: callers
// serialize access.
type Snapshotter interface {
	Snapshot() (SearcherState, error)
	Restore(SearcherState) error
}

// resultRecord is the JSON form of a Result. Architectures serialize as
// their raw gene slices, so a checkpoint is self-contained without the
// search space.
type resultRecord struct {
	Index   int       `json:"index"`
	Arch    arch.Arch `json:"arch"`
	Reward  float64   `json:"reward"`
	Err     string    `json:"err,omitempty"`
	Seconds float64   `json:"seconds"`
	Retries int       `json:"retries,omitempty"`
}

// Checkpoint is the persisted state of a search run: the searcher (or RL
// agent ensemble) plus every completed result. A resumed run restores the
// searcher, counts the results toward the evaluation budget, and continues.
type Checkpoint struct {
	// Kind is the searcher kind for async runs, or "RL" for RunRL.
	Kind     string          `json:"kind"`
	Searcher *SearcherState  `json:"searcher,omitempty"`
	Agents   []SearcherState `json:"agents,omitempty"`
	Results  []resultRecord  `json:"results"`
	// Seed records the run seed for operator sanity checks; the runners do
	// not enforce it.
	Seed uint64 `json:"seed,omitempty"`
}

// NumResults returns the number of completed evaluations in the checkpoint.
func (ck *Checkpoint) NumResults() int { return len(ck.Results) }

// restoredResults decodes the stored results. Stored errors come back as
// opaque error strings, like LoadSearchResult does for histories.
func (ck *Checkpoint) restoredResults() []Result {
	out := make([]Result, 0, len(ck.Results))
	for _, r := range ck.Results {
		res := Result{
			Index: r.Index, Arch: r.Arch, Reward: r.Reward,
			Elapsed: time.Duration(r.Seconds * float64(time.Second)), Retries: r.Retries,
		}
		if r.Err != "" {
			res.Err = errors.New(r.Err)
		}
		out = append(out, res)
	}
	return out
}

// apply restores an async searcher from the checkpoint and returns the
// completed results.
func (ck *Checkpoint) apply(s Searcher) ([]Result, error) {
	snap, ok := s.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("search: cannot resume: %s does not support snapshots", s.Name())
	}
	if ck.Searcher == nil {
		return nil, fmt.Errorf("search: checkpoint (kind %q) holds no async searcher state", ck.Kind)
	}
	if err := snap.Restore(*ck.Searcher); err != nil {
		return nil, err
	}
	return ck.restoredResults(), nil
}

// applyRL restores the PPO agent ensemble from the checkpoint and returns
// the completed results. Partially completed rounds are never stored, so
// the result count is always a whole number of rounds.
func (ck *Checkpoint) applyRL(agents []*PPOAgent) ([]Result, error) {
	if ck.Kind != "RL" {
		return nil, fmt.Errorf("search: checkpoint kind %q is not an RL run", ck.Kind)
	}
	if len(ck.Agents) != len(agents) {
		return nil, fmt.Errorf("search: checkpoint has %d agents, run configured %d", len(ck.Agents), len(agents))
	}
	for i, st := range ck.Agents {
		if err := agents[i].Restore(st); err != nil {
			return nil, fmt.Errorf("search: agent %d: %w", i, err)
		}
	}
	return ck.restoredResults(), nil
}

// LoadCheckpoint reads a checkpoint written by a Checkpointer.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("search: bad checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// Checkpointer periodically persists search state to Path. Writes are
// atomic (temp file + rename), so a crash mid-save leaves the previous
// checkpoint intact.
type Checkpointer struct {
	Path string
	// Every is the save cadence in completed results (default 10). The
	// runner always writes a final checkpoint on exit regardless.
	Every int

	mu sync.Mutex
}

func (c *Checkpointer) due(nResults int) bool {
	every := c.Every
	if every <= 0 {
		every = 10
	}
	return nResults%every == 0
}

// save persists an async-run checkpoint (searcher non-nil) or defers to the
// RL form when agents are given.
func (c *Checkpointer) save(s Searcher, agents []*PPOAgent, results []Result) error {
	if agents != nil {
		return c.saveRL(agents, results)
	}
	snap, ok := s.(Snapshotter)
	if !ok {
		return fmt.Errorf("search: %s does not support snapshots", s.Name())
	}
	st, err := snap.Snapshot()
	if err != nil {
		return err
	}
	return c.write(&Checkpoint{Kind: st.Kind, Searcher: &st, Results: encodeResults(results)})
}

// saveRL persists the agent ensemble plus results after a completed round.
func (c *Checkpointer) saveRL(agents []*PPOAgent, results []Result) error {
	states := make([]SearcherState, len(agents))
	for i, a := range agents {
		st, err := a.Snapshot()
		if err != nil {
			return err
		}
		states[i] = st
	}
	return c.write(&Checkpoint{Kind: "RL", Agents: states, Results: encodeResults(results)})
}

func encodeResults(results []Result) []resultRecord {
	out := make([]resultRecord, 0, len(results))
	for _, r := range results {
		rec := resultRecord{
			Index: r.Index, Arch: r.Arch, Reward: r.Reward,
			Seconds: r.Elapsed.Seconds(), Retries: r.Retries,
		}
		if math.IsNaN(rec.Reward) || math.IsInf(rec.Reward, 0) {
			rec.Reward = DivergedReward // JSON cannot carry non-finite floats
		}
		if r.Err != nil {
			rec.Err = r.Err.Error()
		}
		out = append(out, rec)
	}
	return out
}

func (c *Checkpointer) write(ck *Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tmp := c.Path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(c.Path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.Path)
}
