package search

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/tensor"
)

// flakyEvaluator fails the first attempt of every evaluation with a
// transient error and succeeds on retries.
type flakyEvaluator struct {
	inner Evaluator
	mu    sync.Mutex
	tried map[string]bool
}

func (e *flakyEvaluator) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	key := fmt.Sprintf("%s#%d", a.Key(), seed)
	e.mu.Lock()
	if e.tried == nil {
		e.tried = make(map[string]bool)
	}
	first := !e.tried[key]
	e.tried[key] = true
	e.mu.Unlock()
	if first {
		return 0, fmt.Errorf("flaky node: %w", ErrTransient)
	}
	return e.inner.Evaluate(a, seed)
}

// panicEvaluator always panics.
type panicEvaluator struct{}

func (panicEvaluator) Evaluate(arch.Arch, uint64) (float64, error) { panic("boom") }

// sleepEvaluator sleeps for d, honouring ctx — a controllable straggler.
type sleepEvaluator struct {
	d      time.Duration
	reward float64
}

func (e *sleepEvaluator) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	return e.EvaluateCtx(context.Background(), a, seed)
}

func (e *sleepEvaluator) EvaluateCtx(ctx context.Context, a arch.Arch, seed uint64) (float64, error) {
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-time.After(e.d):
		return e.reward, nil
	}
}

// TestRunAsyncSurvivesFaultRates is the acceptance scenario: an AE search
// driven through the FaultInjector at 10% failure / 5% panic / 5% straggler
// completes without crashing, reports the injected failures as errored
// Results, and still finds a best architecture.
func TestRunAsyncSurvivesFaultRates(t *testing.T) {
	s := toySpace()
	ae, err := NewAgingEvolution(s, 25, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	inj := &FaultInjector{
		Inner: &toyEvaluator{space: s}, Seed: 99,
		FailRate: 0.10, PanicRate: 0.05,
		StragglerRate: 0.05, StragglerDelay: time.Millisecond,
	}
	res, err := RunAsync(ae, inj, RunAsyncOptions{Workers: 8, MaxEvals: 400, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 400 {
		t.Fatalf("got %d results, want 400", len(res))
	}
	errored := 0
	panics := 0
	for _, r := range res {
		if r.Err != nil {
			errored++
			var pe *PanicError
			if errors.As(r.Err, &pe) {
				panics++
			}
		}
	}
	counts := inj.Counts()
	if errored != counts.Failures+counts.Panics {
		t.Errorf("%d errored results, injector reports %d failures + %d panics",
			errored, counts.Failures, counts.Panics)
	}
	if panics != counts.Panics {
		t.Errorf("%d PanicError results vs %d injected panics", panics, counts.Panics)
	}
	// ~15% fault rate over 400 draws: both classes must have fired.
	if counts.Failures == 0 || counts.Panics == 0 || counts.Stragglers == 0 {
		t.Errorf("injector fired unevenly: %+v", counts)
	}
	best, ok := Best(res)
	if !ok {
		t.Fatal("no successful evaluations under faults")
	}
	if best.Reward < 0.9 {
		t.Errorf("AE under faults reached %.3f, want > 0.9", best.Reward)
	}
}

// TestRunAsyncRetriesTransient: transient failures are retried up to
// Retries times; without a retry budget they surface as errors.
func TestRunAsyncRetriesTransient(t *testing.T) {
	s := toySpace()
	rs, _ := NewRandomSearch(s, 9)
	eval := &flakyEvaluator{inner: &toyEvaluator{space: s}}
	res, err := RunAsync(rs, eval, RunAsyncOptions{
		Workers: 4, MaxEvals: 40, Seed: 9, Retries: 2, RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("evaluation %d failed despite retry budget: %v", r.Index, r.Err)
		}
		if r.Retries != 1 {
			t.Fatalf("evaluation %d used %d retries, want exactly 1", r.Index, r.Retries)
		}
	}

	rs2, _ := NewRandomSearch(s, 9)
	res, err = RunAsync(rs2, &flakyEvaluator{inner: &toyEvaluator{space: s}}, RunAsyncOptions{
		Workers: 4, MaxEvals: 40, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !errors.Is(r.Err, ErrTransient) {
			t.Fatalf("without retries evaluation %d should fail transiently, got %v", r.Index, r.Err)
		}
	}
}

// TestRunAsyncRecoversPanics: a panicking evaluator yields errored Results,
// not a crashed search.
func TestRunAsyncRecoversPanics(t *testing.T) {
	s := toySpace()
	rs, _ := NewRandomSearch(s, 10)
	res, err := RunAsync(rs, panicEvaluator{}, RunAsyncOptions{Workers: 4, MaxEvals: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		var pe *PanicError
		if !errors.As(r.Err, &pe) {
			t.Fatalf("result %d: want PanicError, got %v", r.Index, r.Err)
		}
	}
	if _, ok := Best(res); ok {
		t.Error("all-panicked run should have no best")
	}
}

// TestRunAsyncFaultStress is the -race-clean concurrency stress test:
// many workers, every fault class enabled (hangs bounded by the evaluation
// timeout), retries on.
func TestRunAsyncFaultStress(t *testing.T) {
	s := toySpace()
	ae, _ := NewAgingEvolution(s, 20, 4, 11)
	inj := &FaultInjector{
		Inner: &toyEvaluator{space: s}, Seed: 11,
		FailRate: 0.10, PanicRate: 0.05, StragglerRate: 0.10, HangRate: 0.03,
		StragglerDelay: time.Millisecond,
	}
	res, err := RunAsync(ae, inj, RunAsyncOptions{
		Workers: 16, MaxEvals: 300, Seed: 11,
		EvalTimeout: 50 * time.Millisecond, Retries: 1, RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 300 {
		t.Fatalf("stress run produced %d results, want 300", len(res))
	}
	if _, ok := Best(res); !ok {
		t.Fatal("stress run found no best")
	}
}

// TestRunAsyncDeterministicWithFaults: for Workers == 1 the trajectory is
// identical across repeated runs, with the fault injector active (retries
// enabled) and with retries disabled.
func TestRunAsyncDeterministicWithFaults(t *testing.T) {
	s := toySpace()
	trajectory := func(retries int) []Result {
		ae, err := NewAgingEvolution(s, 10, 3, 12)
		if err != nil {
			t.Fatal(err)
		}
		inj := &FaultInjector{
			Inner: &toyEvaluator{space: s}, Seed: 12,
			FailRate: 0.15, PanicRate: 0.05,
		}
		res, err := RunAsync(ae, inj, RunAsyncOptions{
			Workers: 1, MaxEvals: 120, Seed: 12, Retries: retries, RetryBackoff: time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, retries := range []int{0, 2} {
		a, b := trajectory(retries), trajectory(retries)
		if len(a) != len(b) {
			t.Fatalf("retries=%d: lengths differ %d vs %d", retries, len(a), len(b))
		}
		for i := range a {
			if a[i].Index != b[i].Index || a[i].Arch.Key() != b[i].Arch.Key() ||
				a[i].Reward != b[i].Reward || a[i].Retries != b[i].Retries ||
				(a[i].Err == nil) != (b[i].Err == nil) {
				t.Fatalf("retries=%d: trajectories diverge at %d: %+v vs %+v", retries, i, a[i], b[i])
			}
		}
	}
}

// TestRunAsyncEvalTimeout: a per-evaluation timeout converts stragglers
// into errored results without stalling the run.
func TestRunAsyncEvalTimeout(t *testing.T) {
	s := toySpace()
	rs, _ := NewRandomSearch(s, 13)
	slow := &sleepEvaluator{d: 10 * time.Second, reward: 0.5}
	t0 := time.Now()
	res, err := RunAsync(rs, slow, RunAsyncOptions{
		Workers: 2, MaxEvals: 4, Seed: 13, EvalTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("timed-out evaluations stalled the run for %v", el)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("result %d: want DeadlineExceeded, got %v", r.Index, r.Err)
		}
	}
}

// TestRunAsyncDeadlineBoundsInFlight is the deadline-semantics regression
// test: Deadline must interrupt in-flight evaluations via context
// cancellation, not merely stop new proposals — a deliberately slow
// evaluator cannot hold the run open past the deadline.
func TestRunAsyncDeadlineBoundsInFlight(t *testing.T) {
	s := toySpace()
	rs, _ := NewRandomSearch(s, 14)
	slow := &sleepEvaluator{d: 30 * time.Second, reward: 0.5}
	t0 := time.Now()
	res, err := RunAsync(rs, slow, RunAsyncOptions{
		Workers: 2, MaxEvals: 100, Deadline: 50 * time.Millisecond, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("deadline did not bound the in-flight evaluation: run took %v", el)
	}
	// The interrupted in-flight evaluations are discarded, not recorded.
	if len(res) != 0 {
		t.Fatalf("interrupted evaluations leaked into results: %d", len(res))
	}

	// A plain (non-context-aware) evaluator is abandoned at the deadline:
	// the call still returns promptly.
	rs2, _ := NewRandomSearch(s, 15)
	plain := &slowEvaluator{space: s}
	t0 = time.Now()
	if _, err := RunAsync(rs2, plain, RunAsyncOptions{
		Workers: 2, MaxEvals: 1000, Deadline: 60 * time.Millisecond, Seed: 15,
	}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("plain evaluator held the run open for %v", el)
	}
}

// TestRunRLSurvivesFaults: the synchronous method absorbs failed and
// panicked evaluations as worst-case rewards and keeps its barriers.
func TestRunRLSurvivesFaults(t *testing.T) {
	s := toySpace()
	inj := &FaultInjector{
		Inner: &toyEvaluator{space: s}, Seed: 16,
		FailRate: 0.10, PanicRate: 0.05,
	}
	res, err := RunRL(s, inj, RunRLOptions{Agents: 2, WorkersPerAgent: 4, Batches: 30, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2*4*30 {
		t.Fatalf("got %d results", len(res))
	}
	errored := 0
	for _, r := range res {
		if r.Err != nil {
			errored++
			if r.Reward != DivergedReward {
				t.Fatalf("errored RL result carries reward %g, want worst-case %g", r.Reward, DivergedReward)
			}
		}
	}
	if errored == 0 {
		t.Error("fault injector never fired across 240 RL evaluations")
	}
	if _, ok := Best(res); !ok {
		t.Fatal("RL under faults found no best")
	}
}

// TestFaultInjectorPassThrough: zero rates forward everything untouched.
func TestFaultInjectorPassThrough(t *testing.T) {
	s := toySpace()
	inner := &toyEvaluator{space: s}
	inj := &FaultInjector{Inner: inner, Seed: 17}
	a := s.Random(tensor.NewRNG(21))
	direct, err := inner.Evaluate(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := inj.Evaluate(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	if direct != wrapped {
		t.Errorf("pass-through changed reward: %g vs %g", direct, wrapped)
	}
	c := inj.Counts()
	if c.Passed != 1 || c.Total() != 0 {
		t.Errorf("pass-through counts: %+v", c)
	}
}

// TestFaultInjectorKillMode exercises the process-kill decision path with a
// stubbed Kill: at rate 1 every evaluation draws the kill, the counter
// advances, and — since the stub survives — the call fails transiently so
// the retry policy can take over. The real default (SIGKILL of the own
// process) is exercised end-to-end by internal/worker's pool tests.
func TestFaultInjectorKillMode(t *testing.T) {
	s := toySpace()
	killed := 0
	inj := &FaultInjector{
		Inner:    &toyEvaluator{space: s},
		Seed:     3,
		KillRate: 1.0,
		Kill:     func() { killed++ },
	}
	a := s.Random(tensor.NewRNG(8))
	_, err := inj.Evaluate(a, 5)
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("survived kill returned %v, want ErrTransient", err)
	}
	if killed != 1 {
		t.Fatalf("kill action ran %d times, want 1", killed)
	}
	if c := inj.Counts(); c.Kills != 1 || c.Total() != 1 {
		t.Fatalf("kill counts: %+v", c)
	}
}

// TestFaultInjectorKillRateZeroNeverKills pins the decision ordering: with
// KillRate zero the other fault modes keep their PR 1 thresholds.
func TestFaultInjectorKillRateZeroNeverKills(t *testing.T) {
	s := toySpace()
	inj := &FaultInjector{
		Inner: &toyEvaluator{space: s},
		Seed:  17,
		Kill:  func() { t.Fatal("kill fired with KillRate 0") },
	}
	rng := tensor.NewRNG(4)
	for i := 0; i < 50; i++ {
		if _, err := inj.Evaluate(s.Random(rng), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c := inj.Counts(); c.Kills != 0 || c.Passed != 50 {
		t.Fatalf("counts with zero rates: %+v", c)
	}
}

// TestHangArmCancellable pins the ctxflow fix to the hang arm: the
// bounded-hang fallback used to be a bare time.Sleep, which no context
// could interrupt. Both paths must now respond to cancellation — an
// already-cancelled ctx returns immediately from the blocking path, and
// the Background path stays bounded by 10× StragglerDelay.
func TestHangArmCancellable(t *testing.T) {
	s := toySpace()
	a := s.Random(tensor.NewRNG(1))
	inj := &FaultInjector{
		Inner: &toyEvaluator{space: s}, Seed: 7,
		HangRate: 1.0, StragglerDelay: time.Millisecond,
	}

	// Cancellable ctx: the hang blocks on ctx.Done(), so a cancel must
	// release it promptly.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := inj.EvaluateCtx(ctx, a, 1)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellable hang: err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellable hang blocked %v after cancel", d)
	}

	// Background ctx (Done() == nil): the fallback must stay bounded and
	// report the hang as transient.
	start = time.Now()
	_, err = inj.Evaluate(a, 2)
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("bounded hang: err = %v, want ErrTransient", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("bounded hang blocked %v, want ~10ms", d)
	}
}
