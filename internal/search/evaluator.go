package search

import (
	"context"
	"errors"
	"fmt"
	"math"

	"podnas/internal/arch"
	"podnas/internal/metrics"
	"podnas/internal/nn"
	"podnas/internal/tensor"
	"podnas/internal/window"
)

// DivergedReward is the worst-case reward sentinel assigned to diverged or
// non-finite trainings, matching how a failed training shows up to
// DeepHyper (the searcher sees a terrible candidate, not a crash).
const DivergedReward = -1.0

// Evaluator scores an architecture. Implementations must be safe for
// concurrent use: the runner invokes Evaluate from many goroutines.
type Evaluator interface {
	// Evaluate returns the reward (validation R²) for a. seed makes the
	// evaluation (weight init, batch shuffling) deterministic.
	Evaluate(a arch.Arch, seed uint64) (float64, error)
}

// ContextEvaluator is an Evaluator whose evaluations can be interrupted.
// The runners prefer this path when available, so deadlines and
// per-evaluation timeouts cancel in-flight trainings instead of waiting
// them out.
type ContextEvaluator interface {
	Evaluator
	EvaluateCtx(ctx context.Context, a arch.Arch, seed uint64) (float64, error)
}

// TrainingEvaluator is the paper's evaluation: build the candidate network,
// train it on the windowed POD-coefficient training set with fixed
// hyperparameters, and return the validation R². The datasets must already
// be scaled. TrainingEvaluator is stateless per call and therefore safe for
// concurrent use.
type TrainingEvaluator struct {
	Space      arch.Space
	Train, Val *window.Dataset
	Config     nn.TrainConfig
	// Scaler, when non-nil, maps the (scaled) network outputs and targets
	// back to physical coefficient units before computing the R² reward, so
	// the reward weights POD modes by their true variance (the paper's
	// convention).
	Scaler *window.MinMaxScaler
}

// NewTrainingEvaluator validates shapes and returns the evaluator.
func NewTrainingEvaluator(space arch.Space, train, val *window.Dataset, cfg nn.TrainConfig) (*TrainingEvaluator, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if train.Nr != space.InputDim || val.Nr != space.InputDim {
		return nil, fmt.Errorf("search: dataset has %d modes, space expects %d", train.Nr, space.InputDim)
	}
	if train.Examples() == 0 || val.Examples() == 0 {
		return nil, fmt.Errorf("search: empty train (%d) or val (%d) set", train.Examples(), val.Examples())
	}
	return &TrainingEvaluator{Space: space, Train: train, Val: val, Config: cfg}, nil
}

// Evaluate trains a fresh instance of a and scores it on the validation set.
// It is EvaluateCtx with a background context.
func (e *TrainingEvaluator) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	return e.EvaluateCtx(context.Background(), a, seed)
}

// EvaluateCtx trains a fresh instance of a under ctx (checked per epoch) and
// scores it on the validation set. Divergence — a non-finite loss, weights,
// or validation R² — is reported as DivergedReward rather than an error so
// the search treats unstable architectures as bad candidates, matching how
// a failed training shows up to DeepHyper. Cancellation is reported as an
// error so the runner can distinguish an interrupted evaluation from a bad
// architecture.
func (e *TrainingEvaluator) EvaluateCtx(ctx context.Context, a arch.Arch, seed uint64) (float64, error) {
	g, err := e.Space.Build(a, tensor.NewRNG(seed))
	if err != nil {
		return 0, err
	}
	cfg := e.Config
	cfg.Seed = seed ^ 0x5eed
	cfg.Ctx = ctx
	if _, err := nn.Train(g, e.Train.X, e.Train.Y, cfg); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, err // interrupted, not diverged
		}
		return DivergedReward, nil // diverged: worst-case reward
	}
	var r float64
	if e.Scaler == nil {
		r = nn.EvaluateR2(g, e.Val.X, e.Val.Y)
	} else {
		pred := nn.Predict(g, e.Val.X, 256)
		e.Scaler.Inverse(pred)
		target := e.Val.Y.Clone()
		e.Scaler.Inverse(target)
		r = metrics.R2(pred.Data, target.Data)
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		// A non-finite validation R² is divergence the training loss missed;
		// clamp it to the sentinel so it can never silently win (or silently
		// never win) the search.
		return DivergedReward, nil
	}
	return r, nil
}
