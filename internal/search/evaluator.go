package search

import (
	"fmt"

	"podnas/internal/arch"
	"podnas/internal/metrics"
	"podnas/internal/nn"
	"podnas/internal/tensor"
	"podnas/internal/window"
)

// Evaluator scores an architecture. Implementations must be safe for
// concurrent use: the runner invokes Evaluate from many goroutines.
type Evaluator interface {
	// Evaluate returns the reward (validation R²) for a. seed makes the
	// evaluation (weight init, batch shuffling) deterministic.
	Evaluate(a arch.Arch, seed uint64) (float64, error)
}

// TrainingEvaluator is the paper's evaluation: build the candidate network,
// train it on the windowed POD-coefficient training set with fixed
// hyperparameters, and return the validation R². The datasets must already
// be scaled. TrainingEvaluator is stateless per call and therefore safe for
// concurrent use.
type TrainingEvaluator struct {
	Space      arch.Space
	Train, Val *window.Dataset
	Config     nn.TrainConfig
	// Scaler, when non-nil, maps the (scaled) network outputs and targets
	// back to physical coefficient units before computing the R² reward, so
	// the reward weights POD modes by their true variance (the paper's
	// convention).
	Scaler *window.MinMaxScaler
}

// NewTrainingEvaluator validates shapes and returns the evaluator.
func NewTrainingEvaluator(space arch.Space, train, val *window.Dataset, cfg nn.TrainConfig) (*TrainingEvaluator, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if train.Nr != space.InputDim || val.Nr != space.InputDim {
		return nil, fmt.Errorf("search: dataset has %d modes, space expects %d", train.Nr, space.InputDim)
	}
	if train.Examples() == 0 || val.Examples() == 0 {
		return nil, fmt.Errorf("search: empty train (%d) or val (%d) set", train.Examples(), val.Examples())
	}
	return &TrainingEvaluator{Space: space, Train: train, Val: val, Config: cfg}, nil
}

// Evaluate trains a fresh instance of a and scores it on the validation set.
// Divergence is reported as a very poor reward rather than an error so the
// search treats unstable architectures as bad candidates, matching how a
// failed training shows up to DeepHyper.
func (e *TrainingEvaluator) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	g, err := e.Space.Build(a, tensor.NewRNG(seed))
	if err != nil {
		return 0, err
	}
	cfg := e.Config
	cfg.Seed = seed ^ 0x5eed
	if _, err := nn.Train(g, e.Train.X, e.Train.Y, cfg); err != nil {
		return -1, nil // diverged: worst-case reward
	}
	if e.Scaler == nil {
		return nn.EvaluateR2(g, e.Val.X, e.Val.Y), nil
	}
	pred := nn.Predict(g, e.Val.X, 256)
	e.Scaler.Inverse(pred)
	target := e.Val.Y.Clone()
	e.Scaler.Inverse(target)
	return metrics.R2(pred.Data, target.Data), nil
}
