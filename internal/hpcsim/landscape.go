// Package hpcsim is a discrete-event simulator of the paper's Theta
// deployments: pools of compute nodes running 3-hour NAS jobs with the AE,
// RL, and RS search methods. It reproduces the scheduling dynamics that
// drive the paper's Table III and Figures 3, 8, and 9 — asynchronous worker
// pools for AE/RS versus the synchronous per-batch all-reduce barrier of the
// RL method — with an evaluation-cost model proportional to the candidate's
// trainable parameters and a calibrated surrogate fitness landscape in place
// of real TensorFlow trainings (see DESIGN.md, substitution table).
package hpcsim

import (
	"math"

	"podnas/internal/arch"
	"podnas/internal/tensor"
)

// Landscape is a deterministic architecture → fitness map plus a training
// noise model. It is calibrated so that uniformly random architectures score
// ~0.92–0.94 (the paper's RS plateau), feedback-driven search can reach
// ~0.965–0.975, and the paper's "high-performing" threshold of R² > 0.96 is
// attainable only for a small, structured subset of the space.
type Landscape struct {
	Space arch.Space
	// Seed personalizes the rugged component of the landscape.
	Seed uint64
	// NoiseSigma is the per-evaluation training-noise standard deviation.
	NoiseSigma float64
}

// NewLandscape returns the default landscape for the space.
func NewLandscape(space arch.Space, seed uint64) *Landscape {
	return &Landscape{Space: space, Seed: seed, NoiseSigma: 0.004}
}

// structure summarizes the decoded architecture features the landscape and
// cost model depend on.
type structure struct {
	units      []int // per variable node (0 = identity)
	totalUnits int
	layers     int // LSTM (non-identity) node count
	skips      int // enabled skip connections
	goodSkips  int // skips whose destination node is an LSTM
	params     int
}

func (l *Landscape) analyze(a arch.Arch) structure {
	s := structure{}
	pos := 0
	sp := l.Space
	for k := 0; k < sp.NumNodes; k++ {
		u := sp.Ops[a[pos]]
		s.units = append(s.units, u)
		s.totalUnits += u
		if u > 0 {
			s.layers++
		}
		pos++
		sc := k
		if sc > sp.MaxSkip {
			sc = sp.MaxSkip
		}
		for j := 0; j < sc; j++ {
			if a[pos] == 1 {
				s.skips++
				if u > 0 {
					s.goodSkips++
				}
			}
			pos++
		}
	}
	s.params, _ = sp.ParamCount(a)
	return s
}

// TrueR2 returns the noise-free fitness of a in (0, 0.98).
func (l *Landscape) TrueR2(a arch.Arch) float64 {
	s := l.analyze(a)
	if s.layers == 0 {
		// Pure identity chain: only the output LSTM(5) learns; poor.
		return 0.82 + 0.01*hash01(l.Seed, a.Key())
	}
	r := 0.890
	// Capacity sweet spot: enough units to fit the coefficients, not so
	// many that 20 search-time epochs underfit.
	u := float64(s.totalUnits)
	r += 0.036 * math.Exp(-((u-190)/150)*((u-190)/150))
	// Depth sweet spot around three LSTM layers.
	d := float64(s.layers)
	r += 0.018 * math.Exp(-(d-3)*(d-3)/2.4)
	// Skip connections into LSTM nodes help gradient flow; skips into
	// identity nodes only add projection parameters.
	r += 0.004*float64(s.goodSkips) - 0.002*float64(s.skips-s.goodSkips)
	if r > 0.968 {
		r = 0.968 + 0.2*(r-0.968)
	}
	// Rugged architecture-specific component (interactions the smooth terms
	// miss) keeps the landscape non-trivial for the searches.
	r += 0.008 * (hash01(l.Seed, a.Key()) - 0.35)
	if r > 0.978 {
		r = 0.978
	}
	return r
}

// Reward returns the noisy observed validation R² for one training run.
func (l *Landscape) Reward(a arch.Arch, evalSeed uint64) float64 {
	r := l.TrueR2(a) + l.NoiseSigma*hashNorm(l.Seed^0xabcdef, a.Key(), evalSeed)
	if r > 0.999 {
		r = 0.999
	}
	return r
}

// Duration returns the evaluation wall time in seconds for one node: a
// fixed startup/compilation cost plus a term proportional to the trainable
// parameters (20 epochs × fixed batch count scales linearly in weights),
// with multiplicative jitter. Calibrated against Table III: the mean
// evaluation occupies a node for roughly three minutes.
func (l *Landscape) Duration(a arch.Arch, evalSeed uint64) float64 {
	s := l.analyze(a)
	base := 135.0
	per := float64(s.params) / 3500.0
	jitter := 1 + 0.10*hashNorm(l.Seed^0x777, a.Key(), evalSeed^0x1234)
	if jitter < 0.5 {
		jitter = 0.5
	}
	return (base + per) * jitter
}

// hash01 maps (seed, key) to a uniform deviate in [0, 1).
func hash01(seed uint64, key string) float64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / (1 << 53)
}

// hashNorm maps (seed, key, n) to a standard normal deviate.
func hashNorm(seed uint64, key string, n uint64) float64 {
	u := hash01(seed^(n*0x9e3779b97f4a7c15), key)
	r := tensor.NewRNG(uint64(u*float64(1<<62)) ^ seed ^ n)
	return r.NormFloat64()
}
