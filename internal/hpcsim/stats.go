package hpcsim

import (
	"podnas/internal/metrics"
)

// rewardWindow is the paper's moving-average window for reward and
// utilization traces (§IV: "moving window average of window size 100").
const rewardWindow = 100

// finalizeWithBusy derives the Table III scalars and Fig 3/8/9 curves from
// the completed evaluations and the per-node busy intervals. The AUC and
// binning math is the shared metrics implementation (metrics.UtilizationAUC,
// metrics.BusyBins), the same code the live obs.Metrics invariants and
// obs/replay analyses are checked against.
func finalizeWithBusy(stats *RunStats, busy [][]interval) {
	cfg := stats.Config

	stats.Evaluations = len(stats.Evals)
	for _, e := range stats.Evals {
		if e.Reward > stats.BestReward {
			stats.BestReward = e.Reward
			stats.BestArch = e.Arch
		}
	}

	// Node utilization: observed busy AUC over ideal (all nodes busy for
	// the whole wall time). Intervals are per node and non-overlapping by
	// construction, so summed span lengths equal the trapezoid-integrated
	// busy-count area.
	spans := make([]metrics.Interval, 0, len(stats.Evals))
	for _, nodeSpans := range busy {
		for _, iv := range nodeSpans {
			spans = append(spans, metrics.Interval{Lo: iv.lo, Hi: iv.hi})
		}
	}
	stats.Utilization = metrics.UtilizationAUC(spans, cfg.Nodes, cfg.WallTime)

	// Utilization trace: busy-node fraction sampled once a minute.
	const binSec = 60.0
	nBins := int(cfg.WallTime/binSec) + 1
	bins := metrics.BusyBins(spans, binSec, nBins)
	stats.UtilCurve = &metrics.Curve{}
	denom := float64(cfg.Nodes) * binSec
	for b := 0; b < nBins; b++ {
		stats.UtilCurve.Append(float64(b)*binSec/60, bins[b]/denom)
	}

	// Reward trace: window-100 moving average of rewards in completion
	// order, against completion time in minutes (Fig 3).
	rewards := make([]float64, len(stats.Evals))
	for i, e := range stats.Evals {
		rewards[i] = e.Reward
	}
	avg := metrics.MovingAverage(rewards, rewardWindow)
	stats.RewardCurve = &metrics.Curve{}
	for i, e := range stats.Evals {
		stats.RewardCurve.Append(e.Finish/60, avg[i])
	}

	// High-performing unique architectures over time (Fig 8).
	stats.HighPerfCurve = &metrics.Curve{}
	seen := make(map[string]bool)
	count := 0
	for _, e := range stats.Evals {
		if e.Reward > cfg.HighThreshold {
			k := e.Arch.Key()
			if !seen[k] {
				seen[k] = true
				count++
			}
		}
		stats.HighPerfCurve.Append(e.Finish/60, float64(count))
	}
	stats.UniqueHigh = count
}
