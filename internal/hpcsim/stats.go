package hpcsim

import (
	"podnas/internal/metrics"
)

// rewardWindow is the paper's moving-average window for reward and
// utilization traces (§IV: "moving window average of window size 100").
const rewardWindow = 100

// finalizeWithBusy derives the Table III scalars and Fig 3/8/9 curves from
// the completed evaluations and the per-node busy intervals.
func finalizeWithBusy(stats *RunStats, busy [][]interval) {
	cfg := stats.Config

	stats.Evaluations = len(stats.Evals)
	for _, e := range stats.Evals {
		if e.Reward > stats.BestReward {
			stats.BestReward = e.Reward
			stats.BestArch = e.Arch
		}
	}

	// Node utilization: observed busy AUC over ideal (all nodes busy for
	// the whole wall time), trapezoid-integrated from a sampled busy-count
	// trace. Intervals are per node and non-overlapping by construction.
	var busySeconds float64
	for _, spans := range busy {
		for _, iv := range spans {
			if iv.hi > iv.lo {
				busySeconds += iv.hi - iv.lo
			}
		}
	}
	stats.Utilization = busySeconds / (float64(cfg.Nodes) * cfg.WallTime)

	// Utilization trace: busy-node fraction sampled once a minute, then
	// smoothed with the same window-100 moving average the paper uses.
	const binSec = 60.0
	nBins := int(cfg.WallTime/binSec) + 1
	bins := make([]float64, nBins)
	for _, spans := range busy {
		for _, iv := range spans {
			lo, hi := iv.lo, iv.hi
			if hi <= lo {
				continue
			}
			b0 := int(lo / binSec)
			b1 := int(hi / binSec)
			if b1 >= nBins {
				b1 = nBins - 1
			}
			for b := b0; b <= b1; b++ {
				s := maxf(lo, float64(b)*binSec)
				e := minf(hi, float64(b+1)*binSec)
				if e > s {
					bins[b] += e - s
				}
			}
		}
	}
	stats.UtilCurve = &metrics.Curve{}
	denom := float64(cfg.Nodes) * binSec
	for b := 0; b < nBins; b++ {
		stats.UtilCurve.Append(float64(b)*binSec/60, bins[b]/denom)
	}

	// Reward trace: window-100 moving average of rewards in completion
	// order, against completion time in minutes (Fig 3).
	rewards := make([]float64, len(stats.Evals))
	for i, e := range stats.Evals {
		rewards[i] = e.Reward
	}
	avg := metrics.MovingAverage(rewards, rewardWindow)
	stats.RewardCurve = &metrics.Curve{}
	for i, e := range stats.Evals {
		stats.RewardCurve.Append(e.Finish/60, avg[i])
	}

	// High-performing unique architectures over time (Fig 8).
	stats.HighPerfCurve = &metrics.Curve{}
	seen := make(map[string]bool)
	count := 0
	for _, e := range stats.Evals {
		if e.Reward > cfg.HighThreshold {
			k := e.Arch.Key()
			if !seen[k] {
				seen[k] = true
				count++
			}
		}
		stats.HighPerfCurve.Append(e.Finish/60, float64(count))
	}
	stats.UniqueHigh = count
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
