package hpcsim

import (
	"math"
	"testing"

	"podnas/internal/arch"
	"podnas/internal/tensor"
)

func space() arch.Space { return arch.Default() }

func run(t *testing.T, m Method, nodes int, seed uint64) *RunStats {
	t.Helper()
	st, err := Run(Config{Method: m, Nodes: nodes, Seed: seed, Space: space()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Method: MethodAE, Nodes: 0, Space: space()}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := Run(Config{Method: MethodRL, Nodes: 8, Space: space()}); err == nil {
		t.Error("RL with fewer nodes than agents should fail")
	}
	if _, err := Run(Config{Method: "bogus", Nodes: 16, Space: space()}); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, MethodAE, 33, 5)
	b := run(t, MethodAE, 33, 5)
	if a.Evaluations != b.Evaluations || a.BestReward != b.BestReward || a.Utilization != b.Utilization {
		t.Error("same seed produced different simulation results")
	}
	c := run(t, MethodAE, 33, 6)
	if a.Evaluations == c.Evaluations && a.BestReward == c.BestReward {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestLandscapeProperties(t *testing.T) {
	sp := space()
	l := NewLandscape(sp, 1)
	rng := tensor.NewRNG(2)
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		a := sp.Random(rng)
		r := l.TrueR2(a)
		if r <= 0.5 || r >= 1 {
			t.Fatalf("TrueR2 = %g outside (0.5, 1)", r)
		}
		sum += r
		if l.TrueR2(a) != r {
			t.Fatal("TrueR2 not deterministic")
		}
		d := l.Duration(a, uint64(i))
		if d < 30 || d > 1800 {
			t.Fatalf("Duration = %gs implausible", d)
		}
	}
	mean := sum / float64(n)
	// The random-architecture plateau must sit near the paper's RS band.
	if mean < 0.925 || mean > 0.95 {
		t.Errorf("random mean fitness %.4f outside RS band [0.925, 0.95]", mean)
	}
}

func TestLandscapeNoiseZeroMean(t *testing.T) {
	sp := space()
	l := NewLandscape(sp, 3)
	a := sp.Random(tensor.NewRNG(4))
	truth := l.TrueR2(a)
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		sum += l.Reward(a, uint64(i))
	}
	if math.Abs(sum/float64(n)-truth) > 3*l.NoiseSigma/math.Sqrt(float64(n))+1e-4 {
		t.Errorf("reward mean %.5f far from truth %.5f", sum/float64(n), truth)
	}
}

func TestDurationGrowsWithParams(t *testing.T) {
	sp := space()
	l := NewLandscape(sp, 5)
	tiny := make(arch.Arch, sp.NumVariables()) // all identity
	big := make(arch.Arch, sp.NumVariables())
	pos := 0
	for k := 0; k < sp.NumNodes; k++ {
		big[pos] = len(sp.Ops) - 1 // LSTM(96)
		pos++
		sc := k
		if sc > sp.MaxSkip {
			sc = sp.MaxSkip
		}
		pos += sc
	}
	// Average over jitter.
	avg := func(a arch.Arch) float64 {
		var s float64
		for i := 0; i < 50; i++ {
			s += l.Duration(a, uint64(i))
		}
		return s / 50
	}
	if avg(big) <= avg(tiny)*1.2 {
		t.Errorf("large architecture (%.0fs) not clearly slower than identity chain (%.0fs)", avg(big), avg(tiny))
	}
}

func TestIdentityChainScoresPoorly(t *testing.T) {
	sp := space()
	l := NewLandscape(sp, 6)
	idArch := make(arch.Arch, sp.NumVariables())
	if r := l.TrueR2(idArch); r > 0.85 {
		t.Errorf("identity-only architecture scored %.3f, want < 0.85", r)
	}
}

// TestTableIIIShape verifies the headline scaling claims at a reduced node
// count (fast): AE evaluates roughly twice as many architectures as RL, RS
// sits between, and AE/RS utilization is high while RL's is poor.
func TestTableIIIShape(t *testing.T) {
	ae := run(t, MethodAE, 33, 7)
	rl := run(t, MethodRL, 33, 7)
	rs := run(t, MethodRS, 33, 7)

	if ae.Evaluations <= rs.Evaluations {
		t.Errorf("AE evals %d should exceed RS %d", ae.Evaluations, rs.Evaluations)
	}
	ratio := float64(ae.Evaluations) / float64(rl.Evaluations)
	if ratio < 1.4 || ratio > 3.0 {
		t.Errorf("AE/RL eval ratio %.2f, paper reports ~2", ratio)
	}
	if ae.Utilization < 0.85 || rs.Utilization < 0.85 {
		t.Errorf("async utilization AE %.2f RS %.2f, want > 0.85", ae.Utilization, rs.Utilization)
	}
	if rl.Utilization > 0.72 || rl.Utilization < 0.3 {
		t.Errorf("RL utilization %.2f, want in the collapsed ~0.5 band", rl.Utilization)
	}
	if ae.Utilization > 1 || rl.Utilization > 1 || rs.Utilization > 1 {
		t.Error("utilization above 1 is impossible")
	}
}

// TestFig3Shape verifies the search-trajectory ordering: AE reaches the 0.96
// moving-average band quickly, RL gets there later, RS never does.
func TestFig3Shape(t *testing.T) {
	ae := run(t, MethodAE, 128, 9)
	rl := run(t, MethodRL, 128, 9)
	rs := run(t, MethodRS, 128, 9)

	crossing := func(s *RunStats, level float64) float64 {
		for i := range s.RewardCurve.X {
			if s.RewardCurve.Y[i] >= level {
				return s.RewardCurve.X[i]
			}
		}
		return math.Inf(1)
	}
	aeT := crossing(ae, 0.96)
	rlT := crossing(rl, 0.96)
	rsT := crossing(rs, 0.96)
	if math.IsInf(aeT, 1) || aeT > 90 {
		t.Errorf("AE crossed 0.96 at %v minutes, want < 90 (paper: ~50)", aeT)
	}
	if !math.IsInf(rlT, 1) && rlT < aeT {
		t.Errorf("RL (%v min) should not beat AE (%v min) to 0.96", rlT, aeT)
	}
	if !math.IsInf(rsT, 1) {
		t.Errorf("RS crossed 0.96 at %v minutes; paper has RS plateau at 0.93–0.94", rsT)
	}
	// Final ordering: AE ≥ RL > RS.
	last := func(s *RunStats) float64 { return s.RewardCurve.Y[len(s.RewardCurve.Y)-1] }
	if last(ae) < last(rs) || last(rl) < last(rs) {
		t.Errorf("final averages AE %.3f RL %.3f RS %.3f: feedback methods must beat RS", last(ae), last(rl), last(rs))
	}
}

// TestFig8Shape verifies unique high-performer scaling: AE finds far more
// unique >0.96 architectures than RS, and more nodes find more.
func TestFig8Shape(t *testing.T) {
	ae33 := run(t, MethodAE, 33, 11)
	ae128 := run(t, MethodAE, 128, 11)
	rs128 := run(t, MethodRS, 128, 11)

	if ae128.UniqueHigh <= ae33.UniqueHigh {
		t.Errorf("AE-128 unique high (%d) should exceed AE-33 (%d)", ae128.UniqueHigh, ae33.UniqueHigh)
	}
	if ae128.UniqueHigh < 3*rs128.UniqueHigh {
		t.Errorf("AE-128 unique high %d not clearly above RS-128 %d", ae128.UniqueHigh, rs128.UniqueHigh)
	}
	// The curve must be nondecreasing.
	prev := -1.0
	for _, v := range ae128.HighPerfCurve.Y {
		if v < prev {
			t.Fatal("high-performer curve decreased")
		}
		prev = v
	}
}

func TestEvaluationsScaleWithNodes(t *testing.T) {
	e33 := run(t, MethodAE, 33, 13).Evaluations
	e128 := run(t, MethodAE, 128, 13).Evaluations
	ratio := float64(e128) / float64(e33)
	if ratio < 3.0 || ratio > 4.8 {
		t.Errorf("AE eval scaling 33→128 nodes: ratio %.2f, want near 128/33≈3.9", ratio)
	}
}

func TestRLUtilizationOscillates(t *testing.T) {
	// The RL utilization trace must repeatedly rise and fall (Fig 9d), not
	// stay flat like the async methods.
	rl := run(t, MethodRL, 33, 15)
	ys := rl.UtilCurve.Y
	dips := 0
	for i := 2; i < len(ys); i++ {
		if ys[i-1] > ys[i]+0.2 && ys[i-1] > 0.5 {
			dips++
		}
	}
	if dips < 5 {
		t.Errorf("RL utilization shows only %d sharp dips; expected a sawtooth", dips)
	}
}

func TestEvalsWithinWallTime(t *testing.T) {
	for _, m := range []Method{MethodAE, MethodRL, MethodRS} {
		st := run(t, m, 33, 17)
		for _, e := range st.Evals {
			if e.Finish > st.Config.WallTime {
				t.Fatalf("%s recorded an evaluation finishing at %.0fs > wall time", m, e.Finish)
			}
			if e.Start < 0 || e.Start > e.Finish {
				t.Fatalf("%s evaluation with invalid span [%g, %g]", m, e.Start, e.Finish)
			}
		}
		if st.Evaluations != len(st.Evals) {
			t.Fatalf("%s Evaluations %d != len(Evals) %d", m, st.Evaluations, len(st.Evals))
		}
		if st.BestReward < 0.9 {
			t.Errorf("%s best reward %.3f suspiciously low", m, st.BestReward)
		}
	}
}

func TestConstantCostAblationClosesEvalGap(t *testing.T) {
	// With parameter-proportional cost AE out-evaluates RS; with constant
	// cost the throughput gap largely disappears (DESIGN.md ablation).
	prop := float64(run(t, MethodAE, 33, 19).Evaluations) / float64(run(t, MethodRS, 33, 19).Evaluations)
	stAE, err := Run(Config{Method: MethodAE, Nodes: 33, Seed: 19, Space: space(), ConstantCost: true})
	if err != nil {
		t.Fatal(err)
	}
	stRS, err := Run(Config{Method: MethodRS, Nodes: 33, Seed: 19, Space: space(), ConstantCost: true})
	if err != nil {
		t.Fatal(err)
	}
	flat := float64(stAE.Evaluations) / float64(stRS.Evaluations)
	if !(flat < prop) {
		t.Errorf("constant-cost AE/RS ratio %.3f should fall below proportional-cost ratio %.3f", flat, prop)
	}
	if math.Abs(flat-1) > 0.05 {
		t.Errorf("constant-cost AE/RS ratio %.3f should be ~1", flat)
	}
}

func TestNonAgingAblationRuns(t *testing.T) {
	st := run(t, MethodNonAging, 33, 21)
	if st.Evaluations == 0 {
		t.Fatal("non-aging ablation produced no evaluations")
	}
}

func TestUtilizationCurveBounded(t *testing.T) {
	st := run(t, MethodAE, 33, 23)
	for _, v := range st.UtilCurve.Y {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("utilization sample %g outside [0,1]", v)
		}
	}
}

func TestCurveConsistency(t *testing.T) {
	for _, m := range []Method{MethodAE, MethodRL, MethodRS} {
		st := run(t, m, 33, 29)
		if st.RewardCurve.Len() != st.Evaluations {
			t.Errorf("%s: reward curve has %d points for %d evals", m, st.RewardCurve.Len(), st.Evaluations)
		}
		if st.HighPerfCurve.Len() != st.Evaluations {
			t.Errorf("%s: high-perf curve has %d points", m, st.HighPerfCurve.Len())
		}
		// Completion times must be nondecreasing along the curves.
		for i := 1; i < st.RewardCurve.Len(); i++ {
			if st.RewardCurve.X[i] < st.RewardCurve.X[i-1] {
				t.Fatalf("%s: reward curve times not sorted", m)
			}
		}
	}
}

func TestRLUsesOnlyAllocatedWorkers(t *testing.T) {
	st := run(t, MethodRL, 33, 31)
	// 11 agents + 2 workers/agent = 33 nodes: worker indices in [0, 33).
	for _, e := range st.Evals {
		if e.Worker < 11 || e.Worker >= 33 {
			t.Fatalf("evaluation ran on node %d (agents occupy 0-10)", e.Worker)
		}
	}
}

func TestAsyncWorkersAllBusy(t *testing.T) {
	st := run(t, MethodAE, 16, 33)
	seen := map[int]bool{}
	for _, e := range st.Evals {
		seen[e.Worker] = true
	}
	if len(seen) != 16 {
		t.Errorf("only %d of 16 workers completed evaluations", len(seen))
	}
}

func TestMeanDurationStable(t *testing.T) {
	sp := space()
	l := NewLandscape(sp, 41)
	a := meanDuration(l, sp, 1)
	b := meanDuration(l, sp, 1)
	if a != b {
		t.Error("meanDuration not deterministic")
	}
	if a < 60 || a > 600 {
		t.Errorf("mean duration %.0fs implausible", a)
	}
}

func TestWallTimeOverride(t *testing.T) {
	short, err := Run(Config{Method: MethodAE, Nodes: 16, WallTime: 1800, Seed: 37, Space: space()})
	if err != nil {
		t.Fatal(err)
	}
	long := run(t, MethodAE, 16, 37)
	if short.Evaluations >= long.Evaluations {
		t.Errorf("30-min job (%d evals) should complete fewer than 3-h job (%d)", short.Evaluations, long.Evaluations)
	}
}

func TestAgingBeatsNonAgingUnderHeavyNoise(t *testing.T) {
	// The §III-B1 regularization claim: with noisy rewards, aging evolution
	// should find architectures whose TRUE fitness is at least as good as
	// the non-aging variant's, because lucky flukes die out of the
	// population. Compared on the noise-free landscape over several seeds.
	sp := space()
	better := 0
	const runs = 5
	for k := 0; k < runs; k++ {
		seed := uint64(100 + k*17)
		noisy := NewLandscape(sp, seed)
		noisy.NoiseSigma = 0.02 // 5x the default training noise
		aeStats, err := Run(Config{Method: MethodAE, Nodes: 33, Seed: seed, Space: sp, Landscape: noisy})
		if err != nil {
			t.Fatal(err)
		}
		naStats, err := Run(Config{Method: MethodNonAging, Nodes: 33, Seed: seed, Space: sp, Landscape: noisy})
		if err != nil {
			t.Fatal(err)
		}
		clean := NewLandscape(sp, seed)
		if clean.TrueR2(aeStats.BestArch) >= clean.TrueR2(naStats.BestArch)-0.002 {
			better++
		}
	}
	if better < runs/2 {
		t.Errorf("aging evolution matched/beat non-aging in only %d/%d noisy runs", better, runs)
	}
}

// --- Node-failure model (MTBF) tests ---

// TestNoFailureExactWhenMTBFDisabled is the acceptance criterion that the
// failure model is a true no-op when disabled: MTBF of 0 and +Inf must
// reproduce the Table III numbers bit-for-bit for every method.
func TestNoFailureExactWhenMTBFDisabled(t *testing.T) {
	sp := space()
	for _, m := range []Method{MethodAE, MethodRL, MethodRS} {
		base, err := Run(Config{Method: m, Nodes: 33, Seed: 7, Space: sp})
		if err != nil {
			t.Fatal(err)
		}
		inf, err := Run(Config{Method: m, Nodes: 33, Seed: 7, Space: sp, MTBF: math.Inf(1)})
		if err != nil {
			t.Fatal(err)
		}
		if base.Evaluations != inf.Evaluations || base.Utilization != inf.Utilization || base.BestReward != inf.BestReward {
			t.Errorf("%s: infinite MTBF changed results: evals %d vs %d, util %v vs %v",
				m, base.Evaluations, inf.Evaluations, base.Utilization, inf.Utilization)
		}
		if inf.NodeFailures != 0 || inf.LostEvals != 0 {
			t.Errorf("%s: disabled failure model reported %d failures / %d lost evals", m, inf.NodeFailures, inf.LostEvals)
		}
	}
}

// TestFailuresDegradeThroughput checks the degraded Table III metrics: with
// a finite MTBF the job completes fewer evaluations at lower utilization,
// and the failure counters are populated and consistent.
func TestFailuresDegradeThroughput(t *testing.T) {
	sp := space()
	base := run(t, MethodAE, 33, 43)
	st, err := Run(Config{Method: MethodAE, Nodes: 33, Seed: 43, Space: sp, MTBF: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeFailures == 0 || st.LostEvals == 0 {
		t.Fatalf("MTBF 3600 produced %d failures / %d lost evals", st.NodeFailures, st.LostEvals)
	}
	if st.LostEvals > st.NodeFailures {
		t.Errorf("lost evals %d exceed node failures %d", st.LostEvals, st.NodeFailures)
	}
	if st.Evaluations >= base.Evaluations {
		t.Errorf("failures did not reduce throughput: %d vs %d", st.Evaluations, base.Evaluations)
	}
	if st.Utilization >= base.Utilization {
		t.Errorf("failures did not reduce utilization: %.3f vs %.3f", st.Utilization, base.Utilization)
	}
	if st.Config.RepairTime != 600 {
		t.Errorf("default repair time not applied: %g", st.Config.RepairTime)
	}
	for _, e := range st.Evals {
		if e.Finish > st.Config.WallTime {
			t.Fatal("failure run recorded an evaluation past the wall time")
		}
	}
}

// TestFailureModelDeterministic: the failure process draws from its own
// seeded stream, so degraded runs replay exactly.
func TestFailureModelDeterministic(t *testing.T) {
	sp := space()
	cfg := Config{Method: MethodAE, Nodes: 33, Seed: 47, Space: sp, MTBF: 5400, RepairTime: 300}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluations != b.Evaluations || a.NodeFailures != b.NodeFailures ||
		a.LostEvals != b.LostEvals || a.Utilization != b.Utilization {
		t.Error("same failure seed produced different degraded runs")
	}
}

// TestRLBarrierAmplifiesFailures is the RL-vs-AE sensitivity comparison:
// under the same per-node MTBF, the synchronous barrier method loses a
// larger fraction of its throughput than the asynchronous one, because a
// dead worker's slot still holds up the all-reduce and produces nothing.
// The simulator is deterministic, so the fixed seed panel is stable.
func TestRLBarrierAmplifiesFailures(t *testing.T) {
	sp := space()
	var aeKeep, rlKeep float64
	const runs = 10
	for k := 0; k < runs; k++ {
		seed := uint64(100 + k*13)
		aeBase, err := Run(Config{Method: MethodAE, Nodes: 33, Seed: seed, Space: sp})
		if err != nil {
			t.Fatal(err)
		}
		rlBase, err := Run(Config{Method: MethodRL, Nodes: 33, Seed: seed, Space: sp})
		if err != nil {
			t.Fatal(err)
		}
		ae, err := Run(Config{Method: MethodAE, Nodes: 33, Seed: seed, Space: sp, MTBF: 3600})
		if err != nil {
			t.Fatal(err)
		}
		rl, err := Run(Config{Method: MethodRL, Nodes: 33, Seed: seed, Space: sp, MTBF: 3600})
		if err != nil {
			t.Fatal(err)
		}
		aeKeep += float64(ae.Evaluations) / float64(aeBase.Evaluations)
		rlKeep += float64(rl.Evaluations) / float64(rlBase.Evaluations)
	}
	aeKeep /= runs
	rlKeep /= runs
	if rlKeep >= aeKeep {
		t.Errorf("RL kept %.3f of its throughput vs AE %.3f: the barrier should amplify failures", rlKeep, aeKeep)
	}
	if aeKeep > 0.95 || aeKeep < 0.5 {
		t.Errorf("AE kept %.3f of throughput at MTBF 3600; model calibration looks off", aeKeep)
	}
}

// TestPartitionsDisabledBitIdentical: the partition model draws no
// randomness of its own, so configuring none of it leaves the simulation
// bit-identical to a run that predates the model.
func TestPartitionsDisabledBitIdentical(t *testing.T) {
	sp := space()
	base := run(t, MethodAE, 64, 11)
	st, err := Run(Config{Method: MethodAE, Nodes: 64, Seed: 11, Space: sp, Partitions: []Partition{}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Evaluations != st.Evaluations || base.Utilization != st.Utilization || base.BestReward != st.BestReward {
		t.Errorf("empty partition list changed results: evals %d vs %d, util %v vs %v",
			base.Evaluations, st.Evaluations, base.Utilization, st.Utilization)
	}
	if st.DelayedResults != 0 || st.ExpiredLeases != 0 {
		t.Errorf("disabled partition model reported %d delayed / %d expired", st.DelayedResults, st.ExpiredLeases)
	}
	for i := range base.Evals {
		a, b := base.Evals[i], st.Evals[i]
		if a.Reward != b.Reward || a.Start != b.Start || a.Finish != b.Finish || a.Worker != b.Worker {
			t.Fatalf("eval %d differs with the disabled partition model", i)
		}
	}
}

// TestPartitionHealWithinLease: a partition shorter than the slot lease
// delays the covered results to the heal (reconnect-with-resume) but loses
// nothing — the paper-scale 512-node deployment sees late deliveries, not
// lost work.
func TestPartitionHealWithinLease(t *testing.T) {
	sp := space()
	st, err := Run(Config{
		Method: MethodAE, Nodes: 512, Seed: 13, Space: sp,
		Partitions:   []Partition{{T0: 2000, T1: 2055, NodeLo: 0, NodeHi: 256}},
		LeaseTimeout: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.DelayedResults == 0 {
		t.Fatal("a 55s partition over half the machine delayed nothing")
	}
	if st.ExpiredLeases != 0 || st.LostEvals != 0 {
		t.Errorf("heal within the lease must lose nothing, got %d expired / %d lost", st.ExpiredLeases, st.LostEvals)
	}
	for _, e := range st.Evals {
		if e.Finish > st.Config.WallTime {
			t.Fatal("recorded an evaluation delivered past the wall time")
		}
	}
}

// TestPartitionOutlivesLease: a partition longer than the lease expires the
// covered slots' leases — finished work is fenced off and lost, throughput
// drops, and the losses are tallied.
func TestPartitionOutlivesLease(t *testing.T) {
	sp := space()
	base := run(t, MethodAE, 512, 13)
	st, err := Run(Config{
		Method: MethodAE, Nodes: 512, Seed: 13, Space: sp,
		Partitions:   []Partition{{T0: 2000, T1: 2900, NodeLo: 0, NodeHi: 256}},
		LeaseTimeout: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ExpiredLeases == 0 {
		t.Fatal("a 15-minute partition with a 60s lease expired nothing")
	}
	if st.LostEvals != st.ExpiredLeases {
		t.Errorf("with failures disabled every lost eval is a lease expiry: lost %d, expired %d", st.LostEvals, st.ExpiredLeases)
	}
	if st.Evaluations >= base.Evaluations {
		t.Errorf("lease expiries did not reduce throughput: %d vs %d", st.Evaluations, base.Evaluations)
	}
	if st.Config.LeaseTimeout != 60 {
		t.Errorf("lease timeout mangled: %g", st.Config.LeaseTimeout)
	}
}

// TestPartitionDefaultLease: configuring partitions without a lease takes
// the 60s default.
func TestPartitionDefaultLease(t *testing.T) {
	st, err := Run(Config{
		Method: MethodRS, Nodes: 33, Seed: 3, Space: space(),
		Partitions: []Partition{{T0: 1000, T1: 1030, NodeLo: 0, NodeHi: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Config.LeaseTimeout != 60 {
		t.Errorf("default lease timeout not applied: %g", st.Config.LeaseTimeout)
	}
}

// TestPartitionDeterministic: partitioned runs replay exactly.
func TestPartitionDeterministic(t *testing.T) {
	cfg := Config{
		Method: MethodAE, Nodes: 512, Seed: 17, Space: space(),
		Partitions:   []Partition{{T0: 1500, T1: 3000, NodeLo: 128, NodeHi: 384}},
		LeaseTimeout: 120,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluations != b.Evaluations || a.DelayedResults != b.DelayedResults ||
		a.ExpiredLeases != b.ExpiredLeases || a.Utilization != b.Utilization {
		t.Error("same partition config produced different runs")
	}
}

// TestPartitionValidation rejects nonsense windows and the RL method (the
// barrier model has no per-slot lease to expire).
func TestPartitionValidation(t *testing.T) {
	sp := space()
	bad := []Config{
		{Method: MethodAE, Nodes: 33, Space: sp, Partitions: []Partition{{T0: 100, T1: 100, NodeLo: 0, NodeHi: 4}}},
		{Method: MethodAE, Nodes: 33, Space: sp, Partitions: []Partition{{T0: -5, T1: 100, NodeLo: 0, NodeHi: 4}}},
		{Method: MethodAE, Nodes: 33, Space: sp, Partitions: []Partition{{T0: 0, T1: 100, NodeLo: 4, NodeHi: 4}}},
		{Method: MethodAE, Nodes: 33, Space: sp, Partitions: []Partition{{T0: 0, T1: 100, NodeLo: 0, NodeHi: 64}}},
		{Method: MethodRL, Nodes: 33, Space: sp, Partitions: []Partition{{T0: 0, T1: 100, NodeLo: 12, NodeHi: 20}}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should have been rejected", i)
		}
	}
}
