package hpcsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"podnas/internal/arch"
	"podnas/internal/metrics"
	"podnas/internal/search"
	"podnas/internal/tensor"
)

// Method selects the search algorithm being deployed.
type Method string

// The three methods compared by the paper, plus the non-aging ablation.
const (
	MethodAE       Method = "AE"
	MethodRL       Method = "RL"
	MethodRS       Method = "RS"
	MethodNonAging Method = "NonAgingEvo"
)

// Config describes one simulated Theta job.
type Config struct {
	Method Method
	// Nodes is the total node allocation (paper: 33/64/128/256/512).
	Nodes int
	// WallTime is the job length in seconds (paper: 3 h = 10800 s).
	WallTime float64
	// Seed drives the search, landscape noise, and scheduling jitter.
	Seed uint64
	// Space is the architecture search space.
	Space arch.Space
	// Landscape supplies fitness and duration; NewLandscape(Space, Seed) is
	// used when nil.
	Landscape *Landscape

	// Agents is the RL master count (paper: 11). Ignored for AE/RS.
	Agents int
	// Population and Sample are the AE hyperparameters (paper: 100/10).
	Population, Sample int

	// HighThreshold is the "high-performing" reward cutoff (paper: 0.96).
	HighThreshold float64
	// ConstantCost, when true, replaces the parameter-proportional duration
	// model with its mean (the DESIGN.md cost-model ablation).
	ConstantCost bool

	// MTBF is the per-node mean time between failures in seconds
	// (exponential interarrivals). 0 or +Inf disables the failure model
	// entirely — the simulation then reproduces the no-failure Table III
	// numbers exactly, because no failure-model randomness is drawn at all.
	MTBF float64
	// RepairTime is the repair/reboot delay in seconds before a failed node
	// rejoins the pool (default 600 when MTBF is finite). A rejoining node
	// pays the environment-load startup cost again. A failed node drops its
	// in-flight evaluation: asynchronous methods simply lose the result,
	// while the RL method's barrier still waits out the lost evaluation's
	// scheduled finish and feeds the agent the worst-case reward — which is
	// why the synchronous method degrades faster under the same MTBF.
	RepairTime float64

	// Partitions are network-partition windows (async methods only): the
	// covered nodes keep computing but are unreachable from the driver for
	// the window — a rack switch failure, not a node crash. Results that
	// finish inside a window are delivered late if the partition heals
	// within LeaseTimeout (reconnect-with-resume) and fenced off as lost if
	// it does not (the driver has retired the slot's lease). The model draws
	// no randomness of its own, so an empty slice is bit-identical to a
	// build without the model.
	Partitions []Partition
	// LeaseTimeout is the driver-side slot-lease lifetime in seconds
	// (default 60 when Partitions is non-empty), mirroring the worker pool's
	// heartbeat-timeout-driven lease retirement.
	LeaseTimeout float64
}

// Partition is one network-partition window: nodes in [NodeLo, NodeHi) are
// unreachable from the driver during [T0, T1).
type Partition struct {
	T0, T1         float64
	NodeLo, NodeHi int
}

// covers reports whether node w is partitioned at time t (half-open window).
func (p Partition) covers(w int, t float64) bool {
	return w >= p.NodeLo && w < p.NodeHi && t >= p.T0 && t < p.T1
}

// failuresEnabled reports whether the node-failure model is active.
func (c *Config) failuresEnabled() bool { return c.MTBF > 0 && !math.IsInf(c.MTBF, 1) }

// applyDefaults fills in the paper's default values.
func (c *Config) applyDefaults() {
	//podnas:allow floateq zero-value option detection: 0 means "take the paper default"
	if c.WallTime == 0 {
		c.WallTime = 10800
	}
	if c.Agents == 0 {
		c.Agents = 11
	}
	if c.Population == 0 {
		c.Population = 100
	}
	if c.Sample == 0 {
		c.Sample = 10
	}
	//podnas:allow floateq zero-value option detection: 0 means "take the paper default"
	if c.HighThreshold == 0 {
		c.HighThreshold = 0.96
	}
	if c.Landscape == nil {
		c.Landscape = NewLandscape(c.Space, c.Seed)
	}
	//podnas:allow floateq zero-value option detection: 0 means "take the paper default"
	if c.failuresEnabled() && c.RepairTime == 0 {
		c.RepairTime = 600
	}
	//podnas:allow floateq zero-value option detection: 0 means "take the lease default"
	if len(c.Partitions) > 0 && c.LeaseTimeout == 0 {
		c.LeaseTimeout = 60
	}
}

func (c *Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("hpcsim: need at least one node, got %d", c.Nodes)
	}
	if c.WallTime <= 0 {
		return fmt.Errorf("hpcsim: nonpositive wall time %g", c.WallTime)
	}
	if c.Method == MethodRL && c.Nodes <= c.Agents {
		return fmt.Errorf("hpcsim: RL needs more nodes (%d) than agents (%d)", c.Nodes, c.Agents)
	}
	if len(c.Partitions) > 0 && c.Method == MethodRL {
		return fmt.Errorf("hpcsim: the partition model applies to the async methods only, not %s", c.Method)
	}
	for i, p := range c.Partitions {
		if p.T1 <= p.T0 || p.T0 < 0 {
			return fmt.Errorf("hpcsim: partition %d has an empty or negative window [%g, %g)", i, p.T0, p.T1)
		}
		if p.NodeLo < 0 || p.NodeHi > c.Nodes || p.NodeHi <= p.NodeLo {
			return fmt.Errorf("hpcsim: partition %d covers invalid nodes [%d, %d) of %d", i, p.NodeLo, p.NodeHi, c.Nodes)
		}
	}
	return c.Space.Validate()
}

// Eval is one completed architecture evaluation inside the simulation.
type Eval struct {
	Arch   arch.Arch
	Reward float64
	Start  float64 // virtual seconds
	Finish float64
	Worker int
}

// RunStats aggregates one simulated job, mirroring the paper's reporting.
type RunStats struct {
	Config        Config
	Evaluations   int     // completed within the wall time (Table III)
	Utilization   float64 // AUC busy-node fraction over all nodes (Table III)
	BestReward    float64
	BestArch      arch.Arch
	Evals         []Eval
	RewardCurve   *metrics.Curve // finish time (minutes) vs moving-avg reward (Fig 3/9)
	UtilCurve     *metrics.Curve // time (minutes) vs busy fraction (Fig 9)
	HighPerfCurve *metrics.Curve // time (minutes) vs unique archs above threshold (Fig 8)
	UniqueHigh    int            // final unique high performers (Fig 8b)
	// NodeFailures and LostEvals summarize the node-failure model (both
	// zero when MTBF is 0/Inf): node crashes during the job, and the
	// in-flight evaluations those crashes destroyed. Lease-expired
	// partition losses count into LostEvals too.
	NodeFailures int
	LostEvals    int
	// DelayedResults and ExpiredLeases summarize the partition model:
	// results that arrived late because their partition healed within the
	// lease, and leases the driver retired because the partition outlived
	// them (those evaluations are fenced off and also counted in LostEvals).
	DelayedResults int
	ExpiredLeases  int
}

// Run simulates one job.
func Run(cfg Config) (*RunStats, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Method {
	case MethodAE, MethodRS, MethodNonAging:
		return runAsync(cfg)
	case MethodRL:
		return runRL(cfg)
	default:
		return nil, fmt.Errorf("hpcsim: unknown method %q", cfg.Method)
	}
}

// interval is a closed busy span on one node.
type interval struct{ lo, hi float64 }

// event drives the async event loop.
type event struct {
	time   float64
	worker int
	seq    int // tiebreaker for determinism
	kind   int // evFinish or evRejoin
}

// Event kinds: an evaluation completing versus a repaired node rejoining.
const (
	evFinish = iota
	evRejoin
)

// failureModel tracks per-node exponential failure arrivals and repair. All
// of its randomness comes from a dedicated RNG so that, when disabled, the
// simulation's other random streams — and therefore its results — are
// bit-identical to a run with no failure model at all.
type failureModel struct {
	enabled  bool
	mtbf     float64
	repair   float64
	rng      *tensor.RNG
	nextFail []float64
}

func newFailureModel(cfg *Config) *failureModel {
	fm := &failureModel{enabled: cfg.failuresEnabled(), mtbf: cfg.MTBF, repair: cfg.RepairTime}
	if !fm.enabled {
		return fm
	}
	fm.rng = tensor.NewRNG(cfg.Seed ^ 0xdeadfa11)
	fm.nextFail = make([]float64, cfg.Nodes)
	for w := range fm.nextFail {
		fm.nextFail[w] = fm.sample(0)
	}
	return fm
}

// sample draws the next failure time for a node that is healthy at `from`.
func (fm *failureModel) sample(from float64) float64 {
	return from - fm.mtbf*math.Log(1-fm.rng.Float64())
}

// downAt reports whether node w's next failure strikes at or before t (the
// node died while idle). rejoinAfter must be called to schedule recovery.
func (fm *failureModel) downAt(w int, t float64) bool {
	return fm.enabled && fm.nextFail[w] <= t
}

// killsBefore reports whether node w fails before `finish` (losing the
// in-flight evaluation that would have completed then).
func (fm *failureModel) killsBefore(w int, finish float64) bool {
	return fm.enabled && fm.nextFail[w] < finish
}

// rejoinAfter consumes node w's pending failure: it returns the time the
// repaired node is available again (repair delay plus a fresh
// environment-load startup) and schedules the node's next failure.
func (fm *failureModel) rejoinAfter(w int) float64 {
	rejoin := fm.nextFail[w] + fm.repair + 90 + 240*fm.rng.Float64()
	fm.nextFail[w] = fm.sample(rejoin)
	return rejoin
}

// partitionModel answers "is this node reachable at time t" for the async
// scheduler. It draws no randomness, so disabling it (no partitions) leaves
// every random stream — and therefore every result — bit-identical.
type partitionModel struct {
	parts []Partition
	lease float64
}

func newPartitionModel(cfg *Config) *partitionModel {
	return &partitionModel{parts: cfg.Partitions, lease: cfg.LeaseTimeout}
}

// cutAt returns the partition covering node w at time t, or nil.
func (pm *partitionModel) cutAt(w int, t float64) *Partition {
	for i := range pm.parts {
		if pm.parts[i].covers(w, t) {
			return &pm.parts[i]
		}
	}
	return nil
}

// expires reports whether p outlives the driver's slot lease: the driver
// loses contact at T0 and retires the lease LeaseTimeout later, so a heal
// past that point finds the slot fenced.
func (pm *partitionModel) expires(p *Partition) bool {
	return p.T1 > p.T0+pm.lease
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//podnas:allow floateq exact event-time ordering; ties break on the deterministic sequence number
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// mean evaluation duration used by the ConstantCost ablation: measured over
// a uniform sample of the space.
func meanDuration(l *Landscape, space arch.Space, seed uint64) float64 {
	rng := tensor.NewRNG(seed ^ 0xd00d)
	var sum float64
	const n = 300
	for i := 0; i < n; i++ {
		sum += l.Duration(space.Random(rng), uint64(i))
	}
	return sum / n
}

// runAsync simulates the fully asynchronous AE/RS deployments: every node is
// a worker that proposes, evaluates, reports, and immediately continues.
// Inefficiency comes from per-node startup (library loading on KNL) and a
// small per-evaluation dispatch gap, which land utilization near the
// paper's 0.90–0.96.
func runAsync(cfg Config) (*RunStats, error) {
	var s search.Searcher
	var err error
	switch cfg.Method {
	case MethodAE:
		s, err = search.NewAgingEvolution(cfg.Space, cfg.Population, cfg.Sample, cfg.Seed)
	case MethodNonAging:
		s, err = search.NewNonAgingEvolution(cfg.Space, cfg.Population, cfg.Sample, cfg.Seed)
	default:
		s, err = search.NewRandomSearch(cfg.Space, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	land := cfg.Landscape
	constDur := 0.0
	if cfg.ConstantCost {
		constDur = meanDuration(land, cfg.Space, cfg.Seed)
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0xfeed)
	fm := newFailureModel(&cfg)
	pm := newPartitionModel(&cfg)

	stats := &RunStats{Config: cfg, BestReward: -1}
	busy := make([][]interval, cfg.Nodes)
	inflight := make([]Eval, cfg.Nodes)
	seq := 0
	h := &eventHeap{}

	start := func(w int, t float64) {
		if t >= cfg.WallTime {
			return
		}
		if p := pm.cutAt(w, t); p != nil {
			// The driver cannot reach the node to dispatch; the healthy,
			// idle node waits out the partition and proposes at the heal.
			seq++
			if p.T1 < cfg.WallTime {
				heap.Push(h, event{time: p.T1, worker: w, seq: seq, kind: evRejoin})
			}
			return
		}
		if fm.downAt(w, t) {
			// The node died while idle (startup or dispatch gap); it comes
			// back after the repair delay and a fresh environment load.
			stats.NodeFailures++
			rejoin := fm.rejoinAfter(w)
			seq++
			if rejoin < cfg.WallTime {
				heap.Push(h, event{time: rejoin, worker: w, seq: seq, kind: evRejoin})
			}
			return
		}
		a := s.Propose()
		evalSeed := cfg.Seed + uint64(seq)*0x9e37
		dur := land.Duration(a, evalSeed)
		if cfg.ConstantCost {
			dur = constDur
		}
		finish := t + dur
		if fm.killsBefore(w, finish) {
			// The node dies mid-evaluation: the training is lost — never
			// reported to the searcher, never counted — and the node rejoins
			// after repair. This is the failure mode Balsam absorbs for the
			// paper's jobs.
			failT := fm.nextFail[w]
			stats.NodeFailures++
			stats.LostEvals++
			if failT > t {
				busy[w] = append(busy[w], interval{t, minf(failT, cfg.WallTime)})
			}
			rejoin := fm.rejoinAfter(w)
			seq++
			if rejoin < cfg.WallTime {
				heap.Push(h, event{time: rejoin, worker: w, seq: seq, kind: evRejoin})
			}
			return
		}
		deliverAt := finish
		if p := pm.cutAt(w, finish); p != nil {
			if pm.expires(p) {
				// The partition outlives the slot lease: by the heal, the
				// driver has retired the lease and whatever this node still
				// reports is fenced off by its stale lease ID. The training
				// ran (the node was busy) but the result is lost, and the
				// node rejoins the pool at the heal.
				if finish <= cfg.WallTime {
					stats.ExpiredLeases++
					stats.LostEvals++
				}
				if busyEnd := minf(finish, cfg.WallTime); busyEnd > t {
					busy[w] = append(busy[w], interval{t, busyEnd})
				}
				seq++
				if p.T1 < cfg.WallTime {
					heap.Push(h, event{time: p.T1, worker: w, seq: seq, kind: evRejoin})
				}
				return
			}
			// The partition heals within the lease: the driver reconnects
			// under the same lease and the buffered result arrives late —
			// reconnect-with-resume. The delivery time is when the driver
			// (and the searcher) learns the reward.
			deliverAt = p.T1
		}
		busyEnd := finish
		if busyEnd > cfg.WallTime {
			busyEnd = cfg.WallTime // the node works until the job is killed
		}
		busy[w] = append(busy[w], interval{t, busyEnd})
		if deliverAt > finish && deliverAt <= cfg.WallTime {
			stats.DelayedResults++
		}
		inflight[w] = Eval{Arch: a, Reward: land.Reward(a, evalSeed), Start: t, Finish: deliverAt, Worker: w}
		seq++
		if deliverAt <= cfg.WallTime {
			heap.Push(h, event{time: deliverAt, worker: w, seq: seq})
		}
	}

	// Node startup: environment/library load before the first proposal.
	for w := 0; w < cfg.Nodes; w++ {
		start(w, 90+240*rng.Float64())
	}
	for h.Len() > 0 {
		ev := heap.Pop(h).(event)
		if ev.kind == evRejoin {
			// The repaired node's availability time already includes its
			// reload; it proposes immediately.
			start(ev.worker, ev.time)
			continue
		}
		done := inflight[ev.worker]
		s.Report(done.Arch, done.Reward)
		stats.Evals = append(stats.Evals, done)
		// Dispatch gap before the next evaluation begins on this node.
		start(ev.worker, ev.time+4+14*rng.Float64())
	}
	finalizeWithBusy(stats, busy)
	return stats, nil
}

// runRL simulates the multimaster-multiworker PPO deployment: Agents master
// nodes each drive floor((Nodes-Agents)/Agents) workers; every round each
// agent samples one architecture per worker, all workers evaluate in
// parallel, and a full gradient all-reduce barrier across agents ends the
// round. Workers idle from their own finish until the global barrier — the
// utilization collapse of Table III.
func runRL(cfg Config) (*RunStats, error) {
	workersPerAgent := (cfg.Nodes - cfg.Agents) / cfg.Agents
	if workersPerAgent < 1 {
		return nil, fmt.Errorf("hpcsim: %d nodes leave no workers for %d agents", cfg.Nodes, cfg.Agents)
	}
	agents := make([]*search.PPOAgent, cfg.Agents)
	for i := range agents {
		a, err := search.NewPPOAgent(cfg.Space, cfg.Seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		agents[i] = a
	}
	land := cfg.Landscape
	constDur := 0.0
	if cfg.ConstantCost {
		constDur = meanDuration(land, cfg.Space, cfg.Seed)
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0xfeed)
	// Failures strike worker nodes only: a master failure would kill the
	// whole search in the real deployment (Balsam restarts the job), which
	// is out of scope for the degradation metrics this model feeds.
	fm := newFailureModel(&cfg)
	downUntil := make([]float64, cfg.Nodes)

	stats := &RunStats{Config: cfg, BestReward: -1}
	busy := make([][]interval, cfg.Nodes)
	// Node layout: nodes [0, Agents) are agents, then worker blocks.
	workerNode := func(agent, w int) int { return cfg.Agents + agent*workersPerAgent + w }

	t := 100 + 200*rng.Float64() // startup: load env on all nodes
	seq := 0
	for t < cfg.WallTime {
		roundEnd := t
		type pending struct {
			agent int
			archs []arch.Arch
			rs    []float64
		}
		rounds := make([]pending, cfg.Agents)
		for ai, agent := range agents {
			// An agent only dispatches to workers that are up at the round
			// start; nodes under repair sit this round out, shrinking the
			// batch — the barrier method cannot backfill a lost slot.
			var avail []int
			for wi := 0; wi < workersPerAgent; wi++ {
				node := workerNode(ai, wi)
				if downUntil[node] > t {
					continue
				}
				if fm.downAt(node, t) {
					// Died idle at the barrier since its last evaluation.
					stats.NodeFailures++
					downUntil[node] = fm.rejoinAfter(node)
					continue
				}
				avail = append(avail, wi)
			}
			batch := agent.ProposeBatch(len(avail))
			p := pending{agent: ai, archs: batch, rs: make([]float64, len(batch))}
			for bi, a := range batch {
				evalSeed := cfg.Seed + uint64(seq)*0x9e37
				seq++
				dur := land.Duration(a, evalSeed)
				if cfg.ConstantCost {
					dur = constDur
				}
				finish := t + dur
				node := workerNode(ai, avail[bi])
				if finish > roundEnd {
					roundEnd = finish
				}
				if fm.killsBefore(node, finish) {
					// The worker dies mid-evaluation. The master still waits
					// out the slot's scheduled finish (it cannot distinguish a
					// dead worker from a slow one until the timeout) and feeds
					// the policy the worst-case reward — the DeepHyper
					// convention for a failed training.
					failT := fm.nextFail[node]
					stats.NodeFailures++
					stats.LostEvals++
					if failT > t {
						busy[node] = append(busy[node], interval{t, minf(failT, cfg.WallTime)})
					}
					downUntil[node] = fm.rejoinAfter(node)
					p.rs[bi] = search.DivergedReward
					continue
				}
				busyEnd := finish
				if busyEnd > cfg.WallTime {
					busyEnd = cfg.WallTime
				}
				busy[node] = append(busy[node], interval{t, busyEnd})
				reward := land.Reward(a, evalSeed)
				p.rs[bi] = reward
				if finish <= cfg.WallTime {
					stats.Evals = append(stats.Evals, Eval{Arch: a, Reward: reward, Start: t, Finish: finish, Worker: node})
				}
			}
			rounds[ai] = p
		}
		if roundEnd > cfg.WallTime {
			break // the barrier never completes inside the job
		}
		// Gradient computation + all-reduce on the agent nodes.
		const allReduce = 6.0
		grads := make([][]float64, cfg.Agents)
		for ai, p := range rounds {
			g, err := agents[p.agent].Gradients(p.archs, p.rs)
			if err != nil {
				return nil, err
			}
			grads[ai] = g
			busy[ai] = append(busy[ai], interval{roundEnd, minf(roundEnd+allReduce, cfg.WallTime)})
		}
		if err := search.AllReduceMean(grads); err != nil {
			return nil, err
		}
		for ai := range agents {
			if err := agents[ai].ApplyGradients(grads[ai]); err != nil {
				return nil, err
			}
		}
		t = roundEnd + allReduce
	}
	// Evals are recorded in proposal order; sort by finish for the curves.
	sort.Slice(stats.Evals, func(i, j int) bool { return stats.Evals[i].Finish < stats.Evals[j].Finish })
	finalizeWithBusy(stats, busy)
	return stats, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
