package kernel

import "math"

// Fast-exponential constants: table-accelerated range reduction in the
// fdlibm style. x = (32·i + j)·(ln2/32) + r with |r| ≤ ln2/64, so
// e^x = 2^i · 2^(j/32) · e^r where 2^(j/32) comes from a 32-entry table
// and e^r needs only a degree-6 Taylor polynomial for ~2 ulp accuracy.
// The Cody–Waite hi/lo split of ln2/32 keeps k·ln2/32 exact in the
// leading bits (k ≤ 2^11 here, hi has ~20 trailing zero bits).
const (
	log2e     = 1.4426950408889634074
	ln2Hi     = 6.93147180369123816490e-01
	ln2Lo     = 1.90821492927058770002e-10
	invLn2x32 = 32 * log2e
	ln2x32Hi  = ln2Hi / 32 // exact: scaling by 2^-5 keeps trailing zeros
	ln2x32Lo  = ln2Lo / 32
	expSat    = 40.0 // |x| beyond this takes the slow math.Exp path
)

// exp2Tab[j] = 2^(j/32).
var exp2Tab [32]float64

func init() {
	for j := range exp2Tab {
		exp2Tab[j] = math.Exp2(float64(j) / 32)
	}
}

// exp4 computes four exponentials with interleaved Horner chains, which
// hides the chain latency the scalar loop is bound by. Inputs must
// satisfy |x| < 64 (callers guard with expSat, keeping k within the
// exact Cody–Waite range); non-finite inputs take the slow path before
// reaching here.
//
//podnas:hotpath
func exp4(x0, x1, x2, x3 float64) (e0, e1, e2, e3 float64) {
	k0 := math.Floor(x0*invLn2x32 + 0.5)
	k1 := math.Floor(x1*invLn2x32 + 0.5)
	k2 := math.Floor(x2*invLn2x32 + 0.5)
	k3 := math.Floor(x3*invLn2x32 + 0.5)
	r0 := (x0 - k0*ln2x32Hi) - k0*ln2x32Lo
	r1 := (x1 - k1*ln2x32Hi) - k1*ln2x32Lo
	r2 := (x2 - k2*ln2x32Hi) - k2*ln2x32Lo
	r3 := (x3 - k3*ln2x32Hi) - k3*ln2x32Lo
	p0 := 1.0 / 720.0
	p1 := 1.0 / 720.0
	p2 := 1.0 / 720.0
	p3 := 1.0 / 720.0
	p0 = p0*r0 + 1.0/120.0
	p1 = p1*r1 + 1.0/120.0
	p2 = p2*r2 + 1.0/120.0
	p3 = p3*r3 + 1.0/120.0
	p0 = p0*r0 + 1.0/24.0
	p1 = p1*r1 + 1.0/24.0
	p2 = p2*r2 + 1.0/24.0
	p3 = p3*r3 + 1.0/24.0
	p0 = p0*r0 + 1.0/6.0
	p1 = p1*r1 + 1.0/6.0
	p2 = p2*r2 + 1.0/6.0
	p3 = p3*r3 + 1.0/6.0
	p0 = p0*r0 + 0.5
	p1 = p1*r1 + 0.5
	p2 = p2*r2 + 0.5
	p3 = p3*r3 + 0.5
	p0 = p0*r0 + 1
	p1 = p1*r1 + 1
	p2 = p2*r2 + 1
	p3 = p3*r3 + 1
	p0 = p0*r0 + 1
	p1 = p1*r1 + 1
	p2 = p2*r2 + 1
	p3 = p3*r3 + 1
	i0, i1, i2, i3 := int64(k0), int64(k1), int64(k2), int64(k3)
	e0 = p0 * exp2Tab[i0&31] * math.Float64frombits(uint64((i0>>5)+1023)<<52)
	e1 = p1 * exp2Tab[i1&31] * math.Float64frombits(uint64((i1>>5)+1023)<<52)
	e2 = p2 * exp2Tab[i2&31] * math.Float64frombits(uint64((i2>>5)+1023)<<52)
	e3 = p3 * exp2Tab[i3&31] * math.Float64frombits(uint64((i3>>5)+1023)<<52)
	return
}

// LSTMForwardStep applies one fused LSTM timestep for one batch row.
// z (length 4H, gate layout [i|f|g|o]) holds the pre-activations and is
// overwritten with the activated gates; cPrev (length H) is the
// previous cell state (all zeros at t=0); c, tanhC, h (length H each)
// receive the new cell state, its tanh, and the hidden output:
//
//	i = σ(z_i), f = σ(z_f), g = tanh(z_g), o = σ(z_o)
//	c = f∘cPrev + i∘g,  h = o∘tanh(c)
//
// The four gate exponentials run 8-wide on AVX-512 (one vector exp per
// gate block plus one for the cell tanh) and as interleaved scalar
// fast-exp chains elsewhere; any saturated or non-finite pre-activation
// falls back to math.Exp/Tanh, so extreme inputs keep library semantics
// (σ→{0,1}, NaN propagates). SIMD and scalar sweeps agree to rounding,
// not bitwise — same contract as the GEMM micro-kernels.
//
//podnas:hotpath
func LSTMForwardStep(z, cPrev, c, tanhC, h []float64) {
	H := len(cPrev)
	j := 0
	if hasAVX512 {
		for H-j >= 8 {
			j += int(lstmFwdAVX512(&z[j], &cPrev[j], &c[j], &tanhC[j], &h[j],
				int64(H-j), int64(H)))
			if H-j < 8 {
				break
			}
			// The next group holds a saturated or non-finite lane: run
			// just that group through the scalar slow-path-aware sweep.
			lstmFwdScalar(z, cPrev, c, tanhC, h, j, j+8)
			j += 8
		}
	}
	lstmFwdScalar(z, cPrev, c, tanhC, h, j, H)
}

// lstmFwdScalar is the portable gate sweep over elements [lo, hi); it
// doubles as the slow path for saturated and non-finite lanes.
//
//podnas:hotpath
func lstmFwdScalar(z, cPrev, c, tanhC, h []float64, lo, hi int) {
	H := len(cPrev)
	zi, zf, zg, zo := z[:H], z[H:2*H], z[2*H:3*H], z[3*H:4*H]
	// Pass 1: gate activations and the new cell state.
	for j := lo; j < hi; j++ {
		xi, xf, xg, xo := zi[j], zf[j], zg[j], zo[j]
		var ig, fg, gg, og float64
		if !(math.Abs(xi) < expSat) || !(math.Abs(xf) < expSat) ||
			!(math.Abs(xg) < expSat/2) || !(math.Abs(xo) < expSat) {
			ig = 1 / (1 + math.Exp(-xi))
			fg = 1 / (1 + math.Exp(-xf))
			gg = math.Tanh(xg)
			og = 1 / (1 + math.Exp(-xo))
		} else {
			e0, e1, e2, e3 := exp4(-xi, -xf, -2*xg, -xo)
			// One reciprocal covers all four denominators: 1/d_k is the
			// inverse of the product times the other three factors.
			d0, d1, d2, d3 := 1+e0, 1+e1, 1+e2, 1+e3
			d01, d23 := d0*d1, d2*d3
			inv := 1 / (d01 * d23)
			inv01, inv23 := inv*d23, inv*d01
			ig = inv01 * d1
			fg = inv01 * d0
			gg = (1 - e2) * (inv23 * d3)
			og = inv23 * d2
		}
		zi[j], zf[j], zg[j], zo[j] = ig, fg, gg, og
		c[j] = fg*cPrev[j] + ig*gg
	}
	// Pass 2: tanh of the cell states four lanes at a time through the
	// same fast-exp chains (tanh x = (1-e)/(1+e), e = exp(-2x)), then the
	// hidden output. Saturated or non-finite cells take math.Tanh.
	j := lo
	for ; j+4 <= hi; j += 4 {
		c0, c1, c2, c3 := c[j], c[j+1], c[j+2], c[j+3]
		if !(math.Abs(c0) < expSat/2) || !(math.Abs(c1) < expSat/2) ||
			!(math.Abs(c2) < expSat/2) || !(math.Abs(c3) < expSat/2) {
			for k := j; k < j+4; k++ {
				tc := math.Tanh(c[k])
				tanhC[k] = tc
				h[k] = zo[k] * tc
			}
			continue
		}
		e0, e1, e2, e3 := exp4(-2*c0, -2*c1, -2*c2, -2*c3)
		d0, d1, d2, d3 := 1+e0, 1+e1, 1+e2, 1+e3
		d01, d23 := d0*d1, d2*d3
		inv := 1 / (d01 * d23)
		inv01, inv23 := inv*d23, inv*d01
		t0 := (1 - e0) * (inv01 * d1)
		t1 := (1 - e1) * (inv01 * d0)
		t2 := (1 - e2) * (inv23 * d3)
		t3 := (1 - e3) * (inv23 * d2)
		tanhC[j], tanhC[j+1], tanhC[j+2], tanhC[j+3] = t0, t1, t2, t3
		h[j] = zo[j] * t0
		h[j+1] = zo[j+1] * t1
		h[j+2] = zo[j+2] * t2
		h[j+3] = zo[j+3] * t3
	}
	for ; j < hi; j++ {
		tc := math.Tanh(c[j])
		tanhC[j] = tc
		h[j] = zo[j] * tc
	}
}

// LSTMBackwardStep is the fused per-row BPTT sweep matching
// LSTMForwardStep: gates (4H, activated, layout [i|f|g|o]), tanhC and
// cPrev (H; cPrev nil at t=0), dout (H, loss gradient at this step),
// dhn (H, recurrent hidden gradient carried from step t+1), dc (H, cell
// gradient carry, updated in place for step t-1), dz (4H, receives the
// pre-activation gate gradients).
//
//podnas:hotpath
func LSTMBackwardStep(gates, tanhC, cPrev, dout, dhn, dc, dz []float64) {
	H := len(tanhC)
	gi, gf, gg4, go4 := gates[:H], gates[H:2*H], gates[2*H:3*H], gates[3*H:4*H]
	for j := 0; j < H; j++ {
		ig, fg, gg, og := gi[j], gf[j], gg4[j], go4[j]
		tc := tanhC[j]
		dh := dout[j] + dhn[j]
		do := dh * tc
		dcv := dh*og*(1-tc*tc) + dc[j]
		di := dcv * gg
		dg := dcv * ig
		var cp float64
		if cPrev != nil {
			cp = cPrev[j]
		}
		df := dcv * cp
		dz[j] = di * ig * (1 - ig)
		dz[H+j] = df * fg * (1 - fg)
		dz[2*H+j] = dg * (1 - gg*gg)
		dz[3*H+j] = do * og * (1 - og)
		dc[j] = dcv * fg
	}
}
