package kernel

import (
	"fmt"
	"sync"
)

// Micro-kernel families. The asm kernels accumulate a full mr×nr tile
// of C from zero-padded packed panels; the generic path is the pure-Go
// fallback with the same packing contract.
const (
	isaGeneric = iota
	isaAVX2
	isaAVX512
)

// isaDims returns the register-tile shape of a micro-kernel family.
func isaDims(isa int) (mr, nr int) {
	switch isa {
	case isaAVX512:
		return 8, 16
	case isaAVX2:
		return 6, 8
	default:
		return 4, 4
	}
}

// isa resolves the micro-kernel family for this config on this CPU.
func (c Config) isa() int {
	if c.ForceGeneric {
		return isaGeneric
	}
	if hasAVX512 {
		return isaAVX512
	}
	if hasAVX2 {
		return isaAVX2
	}
	return isaGeneric
}

// PackedB is op(B) repacked into zero-padded nr-wide column panels, the
// form the micro-kernels stream. Packing is the dominant per-call
// overhead for small GEMMs, so hot loops that reuse one right-hand side
// across many calls (the LSTM recurrence reuses Wh for every timestep)
// pack once with PackB and call GemmPacked.
//
// A PackedB is tied to the micro-kernel family of the Config that
// packed it; use it with a Config resolving to the same family.
type PackedB struct {
	k, n   int
	isa    int
	mr, nr int
	buf    []float64
}

// PackB packs op(B) (k×n, where op is the identity or the transpose)
// into pb, reusing its buffer when large enough. A nil pb allocates a
// fresh one. Returns pb.
//
//podnas:hotpath
func (c Config) PackB(pb *PackedB, b Mat, transB bool) *PackedB {
	if !b.ok() {
		panic(fmt.Sprintf("kernel: PackB bad view %dx%d stride %d over %d floats", b.R, b.C, b.Stride, len(b.Data)))
	}
	k, n := b.R, b.C
	if transB {
		k, n = b.C, b.R
	}
	if pb == nil {
		pb = &PackedB{} //podnas:allow hotalloc nil-pb lazy construction; steady-state callers pass a reused pb
	}
	pb.k, pb.n = k, n
	pb.isa = c.isa()
	pb.mr, pb.nr = isaDims(pb.isa)
	nr := pb.nr
	nb := (n + nr - 1) / nr
	need := nb * k * nr
	if cap(pb.buf) < need {
		pb.buf = make([]float64, need) //podnas:allow hotalloc pack-buffer growth only; reused across calls
	}
	pb.buf = pb.buf[:need]
	for jb := 0; jb < nb; jb++ {
		j0 := jb * nr
		w := min(nr, n-j0)
		panel := pb.buf[jb*k*nr : (jb+1)*k*nr]
		if transB {
			for p := 0; p < k; p++ {
				drow := panel[p*nr : p*nr+nr]
				for jr := 0; jr < w; jr++ {
					drow[jr] = b.Data[(j0+jr)*b.Stride+p]
				}
				for jr := w; jr < nr; jr++ {
					drow[jr] = 0
				}
			}
		} else {
			for p := 0; p < k; p++ {
				brow := b.Data[p*b.Stride+j0 : p*b.Stride+j0+w]
				drow := panel[p*nr : p*nr+nr]
				copy(drow, brow)
				for jr := w; jr < nr; jr++ {
					drow[jr] = 0
				}
			}
		}
	}
	return pb
}

// scratch is the per-worker packing buffer set, pooled so steady-state
// GEMM calls allocate nothing.
type scratch struct {
	ap []float64
	ct [8 * 16]float64 // mrMax × nrMax edge tile
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

var packPool = sync.Pool{New: func() any { return &PackedB{} }}

// Gemm computes dst = op(A)·op(B) (or dst += when accumulate is true)
// where op is the identity or the transpose per the trans flags. dst
// must be preshaped (m×n) and must not alias a or b. This is the single
// entry point the tensor MatMul* family wraps.
//
//podnas:hotpath
func (c Config) Gemm(dst, a, b Mat, transA, transB, accumulate bool) {
	pb := packPool.Get().(*PackedB)
	pb = c.PackB(pb, b, transB)
	c.GemmPacked(dst, a, transA, pb, accumulate)
	packPool.Put(pb)
}

// Gemm runs Config.Gemm with the default policy (auto SIMD, GOMAXPROCS
// workers).
//
//podnas:hotpath
func Gemm(dst, a, b Mat, transA, transB, accumulate bool) {
	Config{}.Gemm(dst, a, b, transA, transB, accumulate)
}

// GemmPacked is Gemm with the right-hand side already packed by PackB.
//
//podnas:hotpath
func (c Config) GemmPacked(dst, a Mat, transA bool, pb *PackedB, accumulate bool) {
	if !dst.ok() || !a.ok() {
		panic(fmt.Sprintf("kernel: Gemm bad view dst %dx%d/%d a %dx%d/%d", dst.R, dst.C, dst.Stride, a.R, a.C, a.Stride))
	}
	m, k := a.R, a.C
	if transA {
		m, k = a.C, a.R
	}
	n := pb.n
	if k != pb.k || dst.R != m || dst.C != n {
		panic(fmt.Sprintf("kernel: Gemm shape mismatch op(A) %dx%d, packed B %dx%d, dst %dx%d", m, k, pb.k, pb.n, dst.R, dst.C))
	}
	gemmCalls.Add(1)
	gemmFLOPs.Add(2 * uint64(m) * uint64(n) * uint64(k))
	if m == 0 || n == 0 {
		return
	}
	// Serial fast path avoids the escaping closure (one heap alloc per
	// call) that the goroutine fan-out needs.
	w := c.workers()
	if w <= 1 || m*2*k*n < c.threshold() {
		gemmRowBlock(dst, a, transA, pb, accumulate, 0, m)
		return
	}
	c.parallelRows(m, 2*k*n, pb.mr, func(lo, hi int) { //podnas:allow hotalloc goroutine fan-out closure; the serial fast path above avoids it
		gemmRowBlock(dst, a, transA, pb, accumulate, lo, hi)
	})
}

// gemmRowBlock computes rows [lo, hi) of dst — the per-worker unit of
// GemmPacked. Row blocks are disjoint, so any partition of [0, m) into
// aligned blocks yields bit-identical results.
//
//podnas:hotpath
func gemmRowBlock(dst, a Mat, transA bool, pb *PackedB, accumulate bool, lo, hi int) {
	k, n := pb.k, pb.n
	mr, nr := pb.mr, pb.nr
	nb := (n + nr - 1) / nr
	{
		if !accumulate {
			for i := lo; i < hi; i++ {
				row := dst.Data[i*dst.Stride : i*dst.Stride+n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		if k == 0 {
			return
		}
		s := scratchPool.Get().(*scratch)
		if cap(s.ap) < k*mr {
			s.ap = make([]float64, k*mr) //podnas:allow hotalloc pooled scratch growth only; reused via scratchPool
		}
		ap := s.ap[:k*mr]
		for i0 := lo; i0 < hi; i0 += mr {
			h := min(mr, hi-i0)
			// Pack the A panel for this row block: p-major, mr-wide,
			// zero-padded, absorbing stride and transpose.
			if transA {
				for p := 0; p < k; p++ {
					arow := a.Data[p*a.Stride:]
					for ir := 0; ir < h; ir++ {
						ap[p*mr+ir] = arow[i0+ir]
					}
					for ir := h; ir < mr; ir++ {
						ap[p*mr+ir] = 0
					}
				}
			} else {
				for p := 0; p < k; p++ {
					for ir := 0; ir < h; ir++ {
						ap[p*mr+ir] = a.Data[(i0+ir)*a.Stride+p]
					}
					for ir := h; ir < mr; ir++ {
						ap[p*mr+ir] = 0
					}
				}
			}
			for jb := 0; jb < nb; jb++ {
				j0 := jb * nr
				w := min(nr, n-j0)
				bp := pb.buf[jb*k*nr:]
				if h == mr && w == nr {
					callKernel(pb.isa, dst.Data[i0*dst.Stride+j0:], ap, bp, k, dst.Stride)
					continue
				}
				// Edge tile: run the kernel into a zeroed scratch tile,
				// then fold the live h×w corner into dst.
				for i := range s.ct[:mr*nr] {
					s.ct[i] = 0
				}
				callKernel(pb.isa, s.ct[:], ap, bp, k, nr)
				for ir := 0; ir < h; ir++ {
					drow := dst.Data[(i0+ir)*dst.Stride+j0:]
					trow := s.ct[ir*nr:]
					for jr := 0; jr < w; jr++ {
						drow[jr] += trow[jr]
					}
				}
			}
		}
		scratchPool.Put(s)
	}
}

// callKernel dispatches one register tile: C(mr×nr, row stride ldc) +=
// Apanel(kc×mr packed) · Bpanel(kc×nr packed).
func callKernel(isa int, c, ap, bp []float64, kc, ldc int) {
	switch isa {
	case isaAVX512:
		gemmKernel8x16(&c[0], &ap[0], &bp[0], int64(kc), int64(ldc))
	case isaAVX2:
		gemmKernel6x8(&c[0], &ap[0], &bp[0], int64(kc), int64(ldc))
	default:
		gemmKernel4x4(c, ap, bp, kc, ldc)
	}
}

// gemmKernel4x4 is the pure-Go micro-kernel (mr=nr=4): sixteen scalar
// accumulators the compiler keeps in registers.
func gemmKernel4x4(c, ap, bp []float64, kc, ldc int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	for p := 0; p < kc; p++ {
		a := ap[p*4 : p*4+4]
		b := bp[p*4 : p*4+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	c[0] += c00
	c[1] += c01
	c[2] += c02
	c[3] += c03
	c[ldc+0] += c10
	c[ldc+1] += c11
	c[ldc+2] += c12
	c[ldc+3] += c13
	c[2*ldc+0] += c20
	c[2*ldc+1] += c21
	c[2*ldc+2] += c22
	c[2*ldc+3] += c23
	c[3*ldc+0] += c30
	c[3*ldc+1] += c31
	c[3*ldc+2] += c32
	c[3*ldc+3] += c33
}
