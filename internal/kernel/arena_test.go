package kernel

import "testing"

func TestArenaReuseAfterReset(t *testing.T) {
	a := NewArena()
	s1 := a.Alloc(100)
	s2 := a.Alloc(200)
	if &s1[0] == &s2[0] {
		t.Fatal("distinct allocations alias")
	}
	for i := range s2 {
		s2[i] = 7
	}
	a.Reset()
	r1 := a.Alloc(100)
	if &r1[0] != &s1[0] {
		t.Fatal("post-Reset allocation did not reuse the slab")
	}
	// Same-size allocs after reset replay the same addresses, the
	// property that makes steady-state training allocation-free.
	r2 := a.Alloc(200)
	if &r2[0] != &s2[0] {
		t.Fatal("second allocation did not replay")
	}
}

func TestArenaAllocZero(t *testing.T) {
	a := NewArena()
	s := a.Alloc(64)
	for i := range s {
		s[i] = 3.5
	}
	a.Reset()
	z := a.AllocZero(64)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("AllocZero[%d] = %g", i, v)
		}
	}
}

func TestArenaLargeAlloc(t *testing.T) {
	a := NewArena()
	big := a.Alloc(3 * arenaMinSlab)
	if len(big) != 3*arenaMinSlab {
		t.Fatalf("len %d", len(big))
	}
	small := a.Alloc(10)
	big[len(big)-1] = 1
	small[0] = 2
	if big[len(big)-1] != 1 {
		t.Fatal("allocations overlap")
	}
	a.Reset()
	again := a.Alloc(3 * arenaMinSlab)
	if &again[0] != &big[0] {
		t.Fatal("large slab not reused after Reset")
	}
}

// TestArenaCapIsolation: returned slices have capacity clamped to their
// length so an append cannot silently scribble over a neighbour.
func TestArenaCapIsolation(t *testing.T) {
	a := NewArena()
	s1 := a.Alloc(8)
	s2 := a.Alloc(8)
	s2[0] = 42
	s1 = append(s1, 99)
	if s2[0] != 42 {
		t.Fatal("append into s1 overwrote s2")
	}
	_ = s1
}
