//go:build !amd64

package kernel

// No SIMD micro-kernels off amd64: every Config resolves to the
// pure-Go blocked path.
var hasAVX2, hasAVX512 bool
