//go:build amd64

package kernel

// gemmKernel6x8 is the AVX2+FMA micro-kernel:
// C (6×8, row stride ldc doubles) += Apanel (kc×6 packed) · Bpanel (kc×8 packed).
//
//go:noescape
func gemmKernel6x8(c, a, b *float64, kc, ldc int64)

// gemmKernel8x16 is the AVX-512F micro-kernel:
// C (8×16, row stride ldc doubles) += Apanel (kc×8 packed) · Bpanel (kc×16 packed).
//
//go:noescape
func gemmKernel8x16(c, a, b *float64, kc, ldc int64)

// lstmFwdAVX512 is the AVX-512F fused LSTM gate sweep: 8 elements per
// group, gate blocks at z + {0,1,2,3}·stride doubles. Returns how many
// elements were fully activated and stored; it stops short of n at the
// first group holding a saturated or non-finite value, which the caller
// must finish on the scalar path.
//
//go:noescape
func lstmFwdAVX512(z, cPrev, c, tanhC, h *float64, n, stride int64) int64
