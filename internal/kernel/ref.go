package kernel

import "fmt"

// RefGemm is the pre-kernel-layer scalar GEMM, preserved verbatim in
// accumulation order: the ikj loop with the bitwise-zero sparsity skip
// for the plain and transA cases, and the dot-product form for transB.
// It is both the oracle the packed kernels are tested against and the
// compute path of the nn reference engine, so nasbench can measure the
// pre-optimization baseline in the same run and reference-engine
// checkpoints reproduce pre-kernel results bit for bit.
func RefGemm(dst, a, b Mat, transA, transB, accumulate bool) {
	if !dst.ok() || !a.ok() || !b.ok() {
		panic("kernel: RefGemm bad view")
	}
	m, k := a.R, a.C
	if transA {
		m, k = a.C, a.R
	}
	kb, n := b.R, b.C
	if transB {
		kb, n = b.C, b.R
	}
	if k != kb || dst.R != m || dst.C != n {
		panic(fmt.Sprintf("kernel: RefGemm shape mismatch op(A) %dx%d, op(B) %dx%d, dst %dx%d", m, k, kb, n, dst.R, dst.C))
	}
	gemmCalls.Add(1)
	gemmFLOPs.Add(2 * uint64(m) * uint64(n) * uint64(k))
	if !accumulate {
		for i := 0; i < m; i++ {
			row := dst.Data[i*dst.Stride : i*dst.Stride+n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	switch {
	case !transA && !transB:
		for i := 0; i < m; i++ {
			arow := a.Data[i*a.Stride : i*a.Stride+k]
			drow := dst.Data[i*dst.Stride : i*dst.Stride+n]
			for p := 0; p < k; p++ {
				av := arow[p]
				//podnas:allow floateq exact sparsity skip: only bitwise zero contributes nothing
				if av == 0 {
					continue
				}
				brow := b.Data[p*b.Stride : p*b.Stride+n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	case transA && !transB:
		for i := 0; i < m; i++ {
			drow := dst.Data[i*dst.Stride : i*dst.Stride+n]
			for p := 0; p < k; p++ {
				av := a.Data[p*a.Stride+i]
				//podnas:allow floateq exact sparsity skip: only bitwise zero contributes nothing
				if av == 0 {
					continue
				}
				brow := b.Data[p*b.Stride : p*b.Stride+n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	case !transA && transB:
		for i := 0; i < m; i++ {
			arow := a.Data[i*a.Stride : i*a.Stride+k]
			drow := dst.Data[i*dst.Stride : i*dst.Stride+n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*b.Stride : j*b.Stride+k]
				var s float64
				for p, av := range arow {
					s += av * brow[p]
				}
				drow[j] += s
			}
		}
	default: // transA && transB
		for i := 0; i < m; i++ {
			drow := dst.Data[i*dst.Stride : i*dst.Stride+n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*b.Stride:]
				var s float64
				for p := 0; p < k; p++ {
					s += a.Data[p*a.Stride+i] * brow[p]
				}
				drow[j] += s
			}
		}
	}
}
