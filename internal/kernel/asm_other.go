//go:build !amd64

package kernel

// On non-amd64 targets the SIMD feature flags are always false, so these
// are never reached; they exist to keep the dispatch switch compiling.

func gemmKernel6x8(c, a, b *float64, kc, ldc int64)  { panic("kernel: no AVX2 on this arch") }
func gemmKernel8x16(c, a, b *float64, kc, ldc int64) { panic("kernel: no AVX-512 on this arch") }

func lstmFwdAVX512(z, cPrev, c, tanhC, h *float64, n, stride int64) int64 {
	panic("kernel: no AVX-512 on this arch")
}
