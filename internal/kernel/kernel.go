// Package kernel is the deterministic compute-kernel layer underneath
// internal/tensor and internal/nn: a blocked, register-tiled GEMM with a
// single dst-first entry point (Gemm), fused LSTM gate sweeps, and a
// slab arena for hot-path scratch. The tensor MatMul* family and the
// nn training loop are thin wrappers over this package.
//
// Determinism contract: for a fixed Config path (generic vs SIMD) the
// result of every kernel is a pure function of its inputs — goroutine
// parallelism partitions destination rows into disjoint blocks, so each
// output element is accumulated in the same order no matter how many
// workers run, and pooled scratch is always fully initialized before
// use. That makes serial-vs-parallel and arena-vs-alloc runs
// bit-identical, which the tests pin. SIMD and generic paths agree to
// rounding (FMA and tiling reorder the sums), not bitwise.
package kernel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Mat is a strided row-major float64 matrix view: element (i, j) lives
// at Data[i*Stride+j]. Stride >= C lets a Mat view one timestep of a
// (batch, time, feature) tensor without copying.
type Mat struct {
	R, C, Stride int
	Data         []float64
}

// MatOf wraps a dense row-major r×c slice (len r*c) as a Mat.
func MatOf(r, c int, data []float64) Mat {
	if len(data) < r*c {
		panic(fmt.Sprintf("kernel: MatOf %dx%d over %d floats", r, c, len(data)))
	}
	return Mat{R: r, C: c, Stride: c, Data: data}
}

// Row returns a view of row i (length C).
func (m Mat) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.C] }

// ok reports whether the view is self-consistent and fully backed.
func (m Mat) ok() bool {
	if m.R < 0 || m.C < 0 || m.Stride < m.C {
		return false
	}
	if m.R == 0 || m.C == 0 {
		return true
	}
	return (m.R-1)*m.Stride+m.C <= len(m.Data)
}

// Config selects the execution policy for kernel calls. The zero value
// is valid: auto-detected SIMD path, GOMAXPROCS workers, and a parallel
// cutover of DefaultParallelThreshold FLOPs. Configs are plain values —
// the old tensor.SetParallelThreshold package global is gone; callers
// that want a different policy pass their own Config.
type Config struct {
	// Workers caps the goroutines a single kernel call may fan out to.
	// 0 means runtime.GOMAXPROCS(0); 1 forces serial execution.
	Workers int
	// ParallelThreshold is the FLOP count (2·m·n·k for GEMM) below
	// which a call stays serial regardless of Workers. 0 means
	// DefaultParallelThreshold.
	ParallelThreshold int
	// ForceGeneric bypasses the SIMD micro-kernels and runs the pure-Go
	// blocked path (used by tests and the cross-ISA determinism check).
	ForceGeneric bool
}

// DefaultParallelThreshold is the serial/parallel FLOP cutover: below
// this, goroutine fan-out costs more than it saves.
const DefaultParallelThreshold = 1 << 16

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) threshold() int {
	if c.ParallelThreshold > 0 {
		return c.ParallelThreshold
	}
	return DefaultParallelThreshold
}

// Stats are the process-wide kernel counters, cheap enough to leave on
// permanently; nasbench and the obs expvar endpoint read them.
type Stats struct {
	GemmCalls uint64 `json:"gemm_calls"`
	GemmFLOPs uint64 `json:"gemm_flops"`
}

var gemmCalls, gemmFLOPs atomic.Uint64

// ReadStats returns a snapshot of the cumulative kernel counters.
func ReadStats() Stats {
	return Stats{GemmCalls: gemmCalls.Load(), GemmFLOPs: gemmFLOPs.Load()}
}

// SIMD reports the micro-kernel class the auto-detection resolved to:
// "avx512", "avx2", or "generic". nasbench stamps it into reports so
// the diff gate only compares speedup ratios across like machines.
func SIMD() string {
	switch {
	case hasAVX512:
		return "avx512"
	case hasAVX2:
		return "avx2"
	}
	return "generic"
}

// ParallelRows deterministically partitions [0, n) across the config's
// workers and runs body over each disjoint block (serial when below the
// FLOP threshold, so results are bit-identical either way). Layers use
// it for batch-row activation sweeps outside the GEMMs.
//
//podnas:hotpath
func (c Config) ParallelRows(n, flopsPerRow int, body func(lo, hi int)) {
	c.parallelRows(n, flopsPerRow, 1, body)
}

// parallelRows runs body(lo, hi) over a partition of [0, n) rows.
// Blocks are disjoint and each row is processed exactly as in the
// serial case, so results are bit-identical for any worker count. The
// partition aligns to `align` rows (the micro-kernel height) so tile
// boundaries never straddle workers.
//
//podnas:hotpath
func (c Config) parallelRows(n, flopsPerRow, align int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := c.workers()
	if w > n {
		w = n
	}
	if w <= 1 || n*flopsPerRow < c.threshold() {
		body(0, n)
		return
	}
	if align < 1 {
		align = 1
	}
	blocks := (n + align - 1) / align
	if w > blocks {
		w = blocks
	}
	chunk := (blocks + w - 1) / w
	var wg sync.WaitGroup //podnas:allow hotalloc WaitGroup escapes into workers on the parallel path only
	for lo := 0; lo < blocks; lo += chunk {
		hi := lo + chunk
		if hi > blocks {
			hi = blocks
		}
		rlo, rhi := lo*align, hi*align
		if rhi > n {
			rhi = n
		}
		wg.Add(1)
		go func(rlo, rhi int) { //podnas:allow hotalloc per-block worker closure on the parallel path only
			defer wg.Done()
			body(rlo, rhi)
		}(rlo, rhi)
	}
	wg.Wait()
}
