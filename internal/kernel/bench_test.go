package kernel

import (
	"fmt"
	"testing"
)

// The benchmark shapes are the BPTT hot shapes for the paper's widest
// search-space cell (H=80..96, batch 64, 4H gate blocks).
var benchShapes = [][3]int{
	{64, 80, 320}, // h·Wh recurrent step
	{64, 320, 80}, // dz·Whᵀ
	{80, 64, 320}, // hᵀ·dz weight gradient
	{512, 5, 320}, // X·Wx bulk input projection
	{128, 128, 128},
}

func BenchmarkGemm(b *testing.B) {
	for _, sh := range benchShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, mode := range []string{"kernel", "generic", "ref"} {
			b.Run(fmt.Sprintf("%s/m%dk%dn%d", mode, m, k, n), func(b *testing.B) {
				r := &testRNG{s: 1}
				a := randMat(r, m, k)
				bm := randMat(r, k, n)
				dst := MatOf(m, n, make([]float64, m*n))
				b.SetBytes(int64(8 * (m*k + k*n + m*n)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					switch mode {
					case "kernel":
						Config{Workers: 1}.Gemm(dst, a, bm, false, false, false)
					case "generic":
						Config{Workers: 1, ForceGeneric: true}.Gemm(dst, a, bm, false, false, false)
					default:
						RefGemm(dst, a, bm, false, false, false)
					}
				}
				flops := float64(2*m*k*n) * float64(b.N)
				b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			})
		}
	}
}

func BenchmarkLSTMForwardStep(b *testing.B) {
	const H = 80
	r := &testRNG{s: 2}
	z := make([]float64, 4*H)
	orig := make([]float64, 4*H)
	for i := range orig {
		orig[i] = 3 * r.next()
	}
	cPrev := make([]float64, H)
	c, tc, h := make([]float64, H), make([]float64, H), make([]float64, H)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(z, orig)
		LSTMForwardStep(z, cPrev, c, tc, h)
	}
}
