//go:build amd64

package kernel

// cpuid executes CPUID for the given leaf/subleaf.
//
//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE).
//
//go:noescape
func xgetbv() (eax, edx uint32)

// hasAVX2 and hasAVX512 gate the SIMD micro-kernels; both require the
// OS to have enabled the corresponding register state via XCR0.
var hasAVX2, hasAVX512 bool

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	if c1&bitOSXSAVE == 0 || c1&bitAVX == 0 || c1&bitFMA == 0 {
		return
	}
	xcr0, _ := xgetbv()
	const xmmYmm = 0x6 // SSE + AVX state enabled by the OS
	if xcr0&xmmYmm != xmmYmm {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const (
		bitAVX2    = 1 << 5
		bitAVX512F = 1 << 16
	)
	hasAVX2 = ebx7&bitAVX2 != 0
	const opmaskZmm = 0xe0 // opmask + zmm_hi256 + hi16_zmm state
	hasAVX512 = ebx7&bitAVX512F != 0 && xcr0&opmaskZmm == opmaskZmm
}
