//go:build amd64

#include "textflag.h"

// lstmFwdAVX512 constants. Layout is fixed; the #defines below name the
// byte offsets. The exp polynomial is the degree-11 Taylor series of e^r
// on |r| <= ln2/2 after Cody-Waite range reduction, scaled back with
// VSCALEFPD (no integer exponent arithmetic, so extreme k saturates to
// 0/Inf gracefully instead of wrapping).
DATA lstmK<>+0x00(SB)/8, $0x7FFFFFFFFFFFFFFF // abs mask
DATA lstmK<>+0x08(SB)/8, $0x4044000000000000 // 40.0 (gate saturation bound)
DATA lstmK<>+0x10(SB)/8, $0x4034000000000000 // 20.0 (tanh-argument bound)
DATA lstmK<>+0x18(SB)/8, $0x3FF71547652B82FE // log2(e)
DATA lstmK<>+0x20(SB)/8, $0x3FE62E42FEE00000 // ln2 hi (20 trailing zero bits)
DATA lstmK<>+0x28(SB)/8, $0x3DEA39EF35793C76 // ln2 lo
DATA lstmK<>+0x30(SB)/8, $0xC000000000000000 // -2.0
DATA lstmK<>+0x38(SB)/8, $0x3FF0000000000000 // 1.0
DATA lstmK<>+0x40(SB)/8, $0x3E5AE64567F544E4 // 1/11!
DATA lstmK<>+0x48(SB)/8, $0x3E927E4FB7789F5C // 1/10!
DATA lstmK<>+0x50(SB)/8, $0x3EC71DE3A556C734 // 1/9!
DATA lstmK<>+0x58(SB)/8, $0x3EFA01A01A01A01A // 1/8!
DATA lstmK<>+0x60(SB)/8, $0x3F2A01A01A01A01A // 1/7!
DATA lstmK<>+0x68(SB)/8, $0x3F56C16C16C16C17 // 1/6!
DATA lstmK<>+0x70(SB)/8, $0x3F81111111111111 // 1/5!
DATA lstmK<>+0x78(SB)/8, $0x3FA5555555555555 // 1/4!
DATA lstmK<>+0x80(SB)/8, $0x3FC5555555555555 // 1/3!
DATA lstmK<>+0x88(SB)/8, $0x3FE0000000000000 // 1/2!
DATA lstmK<>+0x90(SB)/8, $0x8000000000000000 // sign bit
GLOBL lstmK<>(SB), RODATA|NOPTR, $0x98

#define ABSMASK lstmK<>+0x00(SB)
#define SAT40   lstmK<>+0x08(SB)
#define SAT20   lstmK<>+0x10(SB)
#define LOG2E   lstmK<>+0x18(SB)
#define LN2HI   lstmK<>+0x20(SB)
#define LN2LO   lstmK<>+0x28(SB)
#define NEGTWO  lstmK<>+0x30(SB)
#define ONE     lstmK<>+0x38(SB)
#define C11     lstmK<>+0x40(SB)
#define C10     lstmK<>+0x48(SB)
#define C9      lstmK<>+0x50(SB)
#define C8      lstmK<>+0x58(SB)
#define C7      lstmK<>+0x60(SB)
#define C6      lstmK<>+0x68(SB)
#define C5      lstmK<>+0x70(SB)
#define C4      lstmK<>+0x78(SB)
#define C3      lstmK<>+0x80(SB)
#define C2      lstmK<>+0x88(SB)
#define SIGNBIT lstmK<>+0x90(SB)

// EXPSTEP folds one Taylor coefficient into all four interleaved Horner
// chains: p_i = p_i*r_i + coeff.
#define EXPSTEP(coeff) \
	VFMADD213PD.BCST coeff, Z8, Z12  \
	VFMADD213PD.BCST coeff, Z9, Z13  \
	VFMADD213PD.BCST coeff, Z10, Z14 \
	VFMADD213PD.BCST coeff, Z11, Z15

// func lstmFwdAVX512(z, cPrev, c, tanhC, h *float64, n, stride int64) int64
//
// Fused LSTM gate sweep over groups of 8 batch-row elements: the four
// gate blocks live at z, z+8*stride, z+16*stride, z+24*stride bytes
// (pre-activations in, activated gates out), with the cell update and
// cell tanh computed in the same pass. Processes floor-to-group until a
// group contains a saturated or non-finite value (|z_ifo| >= 40,
// |z_g| >= 20, or |c| >= 20), then returns the count of elements fully
// written; the caller finishes that group and the tail with the scalar
// path. Nothing is stored for a bailed group.
TEXT ·lstmFwdAVX512(SB), NOSPLIT, $0-64
	MOVQ z+0(FP), DI
	MOVQ cPrev+8(FP), SI
	MOVQ c+16(FP), DX
	MOVQ tanhC+24(FP), R8
	MOVQ h+32(FP), R9
	MOVQ n+40(FP), BX
	MOVQ stride+48(FP), R10
	SHLQ $3, R10           // gate-block stride in bytes
	LEAQ (R10)(R10*2), R11 // 3*stride for the o block
	XORQ CX, CX            // elements done

loop:
	MOVQ BX, AX
	SUBQ CX, AX
	CMPQ AX, $8
	JL   done

	// Load the four gate pre-activation vectors.
	VMOVUPD (DI), Z0         // z_i
	VMOVUPD (DI)(R10*1), Z1  // z_f
	VMOVUPD (DI)(R10*2), Z2  // z_g
	VMOVUPD (DI)(R11*1), Z3  // z_o

	// Saturation / non-finite check (ordered LT: NaN lanes drop out).
	VANDPD.BCST ABSMASK, Z0, Z25
	VCMPPD.BCST $17, SAT40, Z25, K1
	VANDPD.BCST ABSMASK, Z1, Z25
	VCMPPD.BCST $17, SAT40, Z25, K2
	KANDW       K2, K1, K1
	VANDPD.BCST ABSMASK, Z3, Z25
	VCMPPD.BCST $17, SAT40, Z25, K2
	KANDW       K2, K1, K1
	VANDPD.BCST ABSMASK, Z2, Z25
	VCMPPD.BCST $17, SAT20, Z25, K2
	KANDW       K2, K1, K1
	KMOVW       K1, AX
	CMPW        AX, $0xFF
	JNE         done

	// Exponent arguments: -z_i, -z_f, -2*z_g, -z_o.
	VXORPD.BCST SIGNBIT, Z0, Z0
	VXORPD.BCST SIGNBIT, Z1, Z1
	VMULPD.BCST NEGTWO, Z2, Z2
	VXORPD.BCST SIGNBIT, Z3, Z3

	// Four interleaved exponentials: k = round(x*log2e),
	// r = x - k*ln2Hi - k*ln2Lo, p = Taylor_11(r), e = p * 2^k.
	VMULPD.BCST  LOG2E, Z0, Z4
	VMULPD.BCST  LOG2E, Z1, Z5
	VMULPD.BCST  LOG2E, Z2, Z6
	VMULPD.BCST  LOG2E, Z3, Z7
	VRNDSCALEPD  $0, Z4, Z4
	VRNDSCALEPD  $0, Z5, Z5
	VRNDSCALEPD  $0, Z6, Z6
	VRNDSCALEPD  $0, Z7, Z7
	VMOVAPD      Z0, Z8
	VMOVAPD      Z1, Z9
	VMOVAPD      Z2, Z10
	VMOVAPD      Z3, Z11
	VFNMADD231PD.BCST LN2HI, Z4, Z8
	VFNMADD231PD.BCST LN2HI, Z5, Z9
	VFNMADD231PD.BCST LN2HI, Z6, Z10
	VFNMADD231PD.BCST LN2HI, Z7, Z11
	VFNMADD231PD.BCST LN2LO, Z4, Z8
	VFNMADD231PD.BCST LN2LO, Z5, Z9
	VFNMADD231PD.BCST LN2LO, Z6, Z10
	VFNMADD231PD.BCST LN2LO, Z7, Z11
	VBROADCASTSD C11, Z12
	VBROADCASTSD C11, Z13
	VBROADCASTSD C11, Z14
	VBROADCASTSD C11, Z15
	EXPSTEP(C10)
	EXPSTEP(C9)
	EXPSTEP(C8)
	EXPSTEP(C7)
	EXPSTEP(C6)
	EXPSTEP(C5)
	EXPSTEP(C4)
	EXPSTEP(C3)
	EXPSTEP(C2)
	EXPSTEP(ONE)
	EXPSTEP(ONE)
	VSCALEFPD Z4, Z12, Z4 // e_i = exp(-z_i)
	VSCALEFPD Z5, Z13, Z5 // e_f
	VSCALEFPD Z6, Z14, Z6 // e_g = exp(-2*z_g)
	VSCALEFPD Z7, Z15, Z7 // e_o

	// sigma(x) = 1/(1+e), tanh via (1-e)/(1+e); one reciprocal covers
	// all four denominators (1/d_k = inv * product of the other three).
	VBROADCASTSD ONE, Z24
	VADDPD Z24, Z4, Z8   // d_i
	VADDPD Z24, Z5, Z9   // d_f
	VADDPD Z24, Z6, Z10  // d_g
	VADDPD Z24, Z7, Z11  // d_o
	VMULPD Z9, Z8, Z12   // d_i*d_f
	VMULPD Z11, Z10, Z13 // d_g*d_o
	VMULPD Z13, Z12, Z14
	VDIVPD Z14, Z24, Z14 // 1/(d_i*d_f*d_g*d_o)
	VMULPD Z13, Z14, Z15 // 1/(d_i*d_f)
	VMULPD Z12, Z14, Z12 // 1/(d_g*d_o)
	VMULPD Z9, Z15, Z16  // gate i = 1/d_i
	VMULPD Z8, Z15, Z17  // gate f = 1/d_f
	VMULPD Z11, Z12, Z18 // 1/d_g
	VMULPD Z10, Z12, Z19 // gate o = 1/d_o
	VSUBPD Z6, Z24, Z20
	VMULPD Z20, Z18, Z18 // gate g = (1-e_g)/(1+e_g)

	// c = f*cPrev + i*g, then bail before storing if |c| >= 20.
	VMOVUPD (SI), Z21
	VMULPD  Z18, Z16, Z22
	VFMADD231PD Z21, Z17, Z22
	VANDPD.BCST ABSMASK, Z22, Z25
	VCMPPD.BCST $17, SAT20, Z25, K1
	KMOVW       K1, AX
	CMPW        AX, $0xFF
	JNE         done

	// tanh(c) = (1-e)/(1+e), e = exp(-2c); h = o*tanh(c).
	VMULPD.BCST  NEGTWO, Z22, Z0
	VMULPD.BCST  LOG2E, Z0, Z4
	VRNDSCALEPD  $0, Z4, Z4
	VMOVAPD      Z0, Z8
	VFNMADD231PD.BCST LN2HI, Z4, Z8
	VFNMADD231PD.BCST LN2LO, Z4, Z8
	VBROADCASTSD C11, Z12
	VFMADD213PD.BCST C10, Z8, Z12
	VFMADD213PD.BCST C9, Z8, Z12
	VFMADD213PD.BCST C8, Z8, Z12
	VFMADD213PD.BCST C7, Z8, Z12
	VFMADD213PD.BCST C6, Z8, Z12
	VFMADD213PD.BCST C5, Z8, Z12
	VFMADD213PD.BCST C4, Z8, Z12
	VFMADD213PD.BCST C3, Z8, Z12
	VFMADD213PD.BCST C2, Z8, Z12
	VFMADD213PD.BCST ONE, Z8, Z12
	VFMADD213PD.BCST ONE, Z8, Z12
	VSCALEFPD Z4, Z12, Z4
	VADDPD Z24, Z4, Z8  // 1+e
	VSUBPD Z4, Z24, Z9  // 1-e
	VDIVPD Z8, Z9, Z23  // tanh(c)
	VMULPD Z23, Z19, Z26

	// Store activated gates, cell state, tanh, hidden output.
	VMOVUPD Z16, (DI)
	VMOVUPD Z17, (DI)(R10*1)
	VMOVUPD Z18, (DI)(R10*2)
	VMOVUPD Z19, (DI)(R11*1)
	VMOVUPD Z22, (DX)
	VMOVUPD Z23, (R8)
	VMOVUPD Z26, (R9)

	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $8, CX
	JMP  loop

done:
	VZEROUPPER
	MOVQ CX, ret+56(FP)
	RET
