package kernel

import (
	"math"
	"testing"
)

// refForwardStep is the scalar library-function step the fused sweep
// must match to well under the 1e-9 fused-vs-reference contract.
func refForwardStep(z, cPrev, c, tanhC, h []float64) {
	H := len(cPrev)
	sig := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	for j := 0; j < H; j++ {
		ig := sig(z[j])
		fg := sig(z[H+j])
		gg := math.Tanh(z[2*H+j])
		og := sig(z[3*H+j])
		z[j], z[H+j], z[2*H+j], z[3*H+j] = ig, fg, gg, og
		cv := fg*cPrev[j] + ig*gg
		c[j] = cv
		tc := math.Tanh(cv)
		tanhC[j] = tc
		h[j] = og * tc
	}
}

func TestLSTMForwardStepAccuracy(t *testing.T) {
	const H = 257
	r := &testRNG{s: 42}
	z := make([]float64, 4*H)
	cPrev := make([]float64, H)
	for i := range z {
		z[i] = r.next() * 12 // spans the fast-exp range and beyond typical use
	}
	for i := range cPrev {
		cPrev[i] = r.next()
	}
	z2 := append([]float64(nil), z...)
	c1, tc1, h1 := make([]float64, H), make([]float64, H), make([]float64, H)
	c2, tc2, h2 := make([]float64, H), make([]float64, H), make([]float64, H)
	LSTMForwardStep(z, cPrev, c1, tc1, h1)
	refForwardStep(z2, cPrev, c2, tc2, h2)
	check := func(name string, a, b []float64) {
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > 1e-13 {
				t.Fatalf("%s[%d]: fused %g vs ref %g (diff %g)", name, i, a[i], b[i], d)
			}
		}
	}
	check("gates", z, z2)
	check("c", c1, c2)
	check("tanhC", tc1, tc2)
	check("h", h1, h2)
}

// TestLSTMForwardStepMixedSaturation drives the sweep over a vector
// with saturated and non-finite lanes scattered through the middle, so
// on AVX-512 machines the vector loop must bail to the scalar slow path
// and resume — every group boundary case in one shot.
func TestLSTMForwardStepMixedSaturation(t *testing.T) {
	const H = 131
	r := &testRNG{s: 7}
	z := make([]float64, 4*H)
	cPrev := make([]float64, H)
	for i := range z {
		z[i] = r.next() * 6
	}
	for i := range cPrev {
		cPrev[i] = r.next()
	}
	// Saturate assorted lanes of each gate block and poison one with NaN.
	for _, j := range []int{3, 17, 18, 64, 100, 130} {
		z[j] = 80 * r.next() * 10
	}
	z[2*H+40] = 25  // g gate beyond its tighter bound
	z[3*H+77] = -90 // o gate deep negative
	z[H+55] = math.Inf(-1)
	z[90] = math.NaN()
	z2 := append([]float64(nil), z...)
	c1, tc1, h1 := make([]float64, H), make([]float64, H), make([]float64, H)
	c2, tc2, h2 := make([]float64, H), make([]float64, H), make([]float64, H)
	LSTMForwardStep(z, cPrev, c1, tc1, h1)
	refForwardStep(z2, cPrev, c2, tc2, h2)
	check := func(name string, a, b []float64) {
		for i := range a {
			if math.IsNaN(b[i]) {
				if !math.IsNaN(a[i]) {
					t.Fatalf("%s[%d]: fused %g, ref NaN", name, i, a[i])
				}
				continue
			}
			if d := math.Abs(a[i] - b[i]); d > 1e-13 {
				t.Fatalf("%s[%d]: fused %g vs ref %g (diff %g)", name, i, a[i], b[i], d)
			}
		}
	}
	check("gates", z, z2)
	check("c", c1, c2)
	check("tanhC", tc1, tc2)
	check("h", h1, h2)
}

// TestLSTMForwardScalarAccuracy pins the portable sweep directly, so the
// non-SIMD path stays covered on machines where LSTMForwardStep
// dispatches to the vector kernel.
func TestLSTMForwardScalarAccuracy(t *testing.T) {
	const H = 113
	r := &testRNG{s: 11}
	z := make([]float64, 4*H)
	cPrev := make([]float64, H)
	for i := range z {
		z[i] = r.next() * 12
	}
	for i := range cPrev {
		cPrev[i] = r.next()
	}
	z2 := append([]float64(nil), z...)
	c1, tc1, h1 := make([]float64, H), make([]float64, H), make([]float64, H)
	c2, tc2, h2 := make([]float64, H), make([]float64, H), make([]float64, H)
	lstmFwdScalar(z, cPrev, c1, tc1, h1, 0, H)
	refForwardStep(z2, cPrev, c2, tc2, h2)
	for i := range h1 {
		if math.Abs(h1[i]-h2[i]) > 1e-13 || math.Abs(tc1[i]-tc2[i]) > 1e-13 {
			t.Fatalf("scalar sweep diverges at %d: h %g vs %g", i, h1[i], h2[i])
		}
	}
}

// TestLSTMForwardStepExtremes: saturated pre-activations take the slow
// path and keep library semantics, and non-finite inputs propagate
// instead of silently producing garbage.
func TestLSTMForwardStepExtremes(t *testing.T) {
	const H = 4
	z := []float64{
		1000, -1000, math.Inf(1), math.NaN(), // i gates
		50, -50, 0, 1, // f gates
		30, -30, 2, -2, // g gates
		41, -41, 0.5, -0.5, // o gates
	}
	cPrev := []float64{1, -1, 0.5, 0.25}
	c := make([]float64, H)
	tc := make([]float64, H)
	h := make([]float64, H)
	LSTMForwardStep(z, cPrev, c, tc, h)
	if math.Abs(z[0]-1) > 1e-15 || math.Abs(z[1]) > 1e-15 {
		t.Fatalf("saturated sigmoid: got %g, %g want 1, 0", z[0], z[1])
	}
	if math.Abs(z[2]-1) > 1e-15 {
		t.Fatalf("sigmoid(+Inf) = %g, want 1", z[2])
	}
	if !math.IsNaN(z[3]) || !math.IsNaN(c[3]) || !math.IsNaN(h[3]) {
		t.Fatalf("NaN pre-activation must propagate: gate %g c %g h %g", z[3], c[3], h[3])
	}
	if math.Abs(z[8]-1) > 1e-13 || math.Abs(z[9]+1) > 1e-13 {
		t.Fatalf("saturated tanh gate: got %g, %g want ±1", z[8], z[9])
	}
}

// TestLSTMBackwardStepMatchesScalar mirrors the fused backward sweep
// against a straight transcription of the unfused per-element formulas.
func TestLSTMBackwardStepMatchesScalar(t *testing.T) {
	const H = 33
	r := &testRNG{s: 9}
	gates := make([]float64, 4*H)
	for j := 0; j < H; j++ {
		gates[j] = 0.5 + 0.4*r.next()
		gates[H+j] = 0.5 + 0.4*r.next()
		gates[2*H+j] = 0.9 * r.next()
		gates[3*H+j] = 0.5 + 0.4*r.next()
	}
	tanhC := make([]float64, H)
	cPrev := make([]float64, H)
	dout := make([]float64, H)
	dhn := make([]float64, H)
	dc := make([]float64, H)
	for j := 0; j < H; j++ {
		tanhC[j] = 0.9 * r.next()
		cPrev[j] = r.next()
		dout[j] = r.next()
		dhn[j] = r.next()
		dc[j] = r.next()
	}
	dcWant := append([]float64(nil), dc...)
	dzWant := make([]float64, 4*H)
	for j := 0; j < H; j++ {
		ig, fg, gg, og := gates[j], gates[H+j], gates[2*H+j], gates[3*H+j]
		dh := dout[j] + dhn[j]
		do := dh * tanhC[j]
		dcv := dh*og*(1-tanhC[j]*tanhC[j]) + dcWant[j]
		di := dcv * gg
		dg := dcv * ig
		df := dcv * cPrev[j]
		dzWant[j] = di * ig * (1 - ig)
		dzWant[H+j] = df * fg * (1 - fg)
		dzWant[2*H+j] = dg * (1 - gg*gg)
		dzWant[3*H+j] = do * og * (1 - og)
		dcWant[j] = dcv * fg
	}
	dz := make([]float64, 4*H)
	LSTMBackwardStep(gates, tanhC, cPrev, dout, dhn, dc, dz)
	for i := range dz {
		if math.Float64bits(dz[i]) != math.Float64bits(dzWant[i]) {
			t.Fatalf("dz[%d] = %g want %g", i, dz[i], dzWant[i])
		}
	}
	for i := range dc {
		if math.Float64bits(dc[i]) != math.Float64bits(dcWant[i]) {
			t.Fatalf("dc[%d] = %g want %g", i, dc[i], dcWant[i])
		}
	}
}
