package kernel

// Arena is a slab bump allocator for hot-loop scratch: Alloc hands out
// slices from growing float64 slabs, and Reset recycles every slab at
// once without freeing. A training step that allocates all of its
// activation and gradient buffers from two arenas (reset at each
// Forward/Backward) reaches steady state with zero per-step garbage.
//
// Alloc returns dirty memory — callers must fully overwrite it (GEMM
// with accumulate=false, copy, the fused LSTM sweeps) or use AllocZero.
// The bit-identity property tests rely on this discipline: arena-backed
// training must match alloc-per-step training exactly.
//
// An Arena is single-goroutine; parallel kernel workers use their own
// pooled scratch, not the caller's arena.
type Arena struct {
	slabs [][]float64
	cur   int // active slab index
	off   int // bump offset within the active slab
}

// arenaMinSlab is the smallest slab (floats); slabs double as the
// high-water mark grows so steady state is a handful of slabs.
const arenaMinSlab = 1 << 14

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Alloc returns an n-float slice of uninitialized (dirty) memory valid
// until the next Reset.
//
//podnas:hotpath
func (a *Arena) Alloc(n int) []float64 {
	if n < 0 {
		panic("kernel: Arena.Alloc negative size")
	}
	for a.cur < len(a.slabs) {
		slab := a.slabs[a.cur]
		if a.off+n <= len(slab) {
			s := slab[a.off : a.off+n : a.off+n]
			a.off += n
			return s
		}
		a.cur++
		a.off = 0
	}
	size := arenaMinSlab
	if len(a.slabs) > 0 {
		size = 2 * len(a.slabs[len(a.slabs)-1])
	}
	if size < n {
		size = n
	}
	a.slabs = append(a.slabs, make([]float64, size)) //podnas:allow hotalloc slab growth is amortized; slabs are reused across Resets
	a.cur = len(a.slabs) - 1
	a.off = n
	return a.slabs[a.cur][:n:n]
}

// AllocZero is Alloc with the returned slice cleared.
//
//podnas:hotpath
func (a *Arena) AllocZero(n int) []float64 {
	s := a.Alloc(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// Reset recycles every slab; previously returned slices become invalid
// (their contents may be overwritten by later Allocs).
//
//podnas:hotpath
func (a *Arena) Reset() {
	a.cur = 0
	a.off = 0
}
