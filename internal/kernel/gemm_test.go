package kernel

import (
	"math"
	"testing"
)

// testRNG is a splitmix64 kept local so the kernel package stays free
// of math/rand (detrand covers internal/kernel).
type testRNG struct{ s uint64 }

func (r *testRNG) next() float64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53)*2 - 1
}

func randMat(r *testRNG, rows, cols int) Mat {
	m := MatOf(rows, cols, make([]float64, rows*cols))
	for i := range m.Data {
		m.Data[i] = r.next()
	}
	return m
}

// maxRelDiff returns the largest |x-y| / (1+|y|) over the views.
func maxRelDiff(x, y Mat) float64 {
	var worst float64
	for i := 0; i < x.R; i++ {
		xr, yr := x.Row(i), y.Row(i)
		for j := range xr {
			d := math.Abs(xr[j]-yr[j]) / (1 + math.Abs(yr[j]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestGemmMatchesRef drives every trans/accumulate combination and a
// shape sweep covering full tiles, ragged edges, and k=0 against the
// scalar oracle, on both the SIMD and forced-generic paths.
func TestGemmMatchesRef(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {4, 4, 4}, {5, 7, 3}, {6, 8, 8},
		{8, 16, 16}, {13, 29, 17}, {31, 10, 33}, {64, 80, 96}, {64, 320, 80},
		{7, 0, 5},
	}
	for _, forceGeneric := range []bool{false, true} {
		cfg := Config{Workers: 1, ForceGeneric: forceGeneric}
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			for mask := 0; mask < 8; mask++ {
				transA, transB, acc := mask&1 != 0, mask&2 != 0, mask&4 != 0
				r := &testRNG{s: uint64(m*1000000 + k*1000 + n + mask)}
				ar, ac := m, k
				if transA {
					ar, ac = k, m
				}
				br, bc := k, n
				if transB {
					br, bc = n, k
				}
				a := randMat(r, ar, ac)
				b := randMat(r, br, bc)
				got := randMat(r, m, n)
				want := MatOf(m, n, append([]float64(nil), got.Data...))
				cfg.Gemm(got, a, b, transA, transB, acc)
				RefGemm(want, a, b, transA, transB, acc)
				if d := maxRelDiff(got, want); d > 1e-13 {
					t.Fatalf("generic=%v m=%d k=%d n=%d tA=%v tB=%v acc=%v: rel diff %g",
						forceGeneric, m, k, n, transA, transB, acc, d)
				}
			}
		}
	}
}

// TestGemmSerialParallelBitIdentical pins the determinism contract:
// destination rows are partitioned, never split, so any worker count
// produces bitwise-equal output.
func TestGemmSerialParallelBitIdentical(t *testing.T) {
	for _, forceGeneric := range []bool{false, true} {
		r := &testRNG{s: 7}
		m, k, n := 67, 45, 53
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		serial := MatOf(m, n, make([]float64, m*n))
		Config{Workers: 1, ForceGeneric: forceGeneric}.Gemm(serial, a, b, false, false, false)
		for _, w := range []int{2, 3, 8} {
			par := MatOf(m, n, make([]float64, m*n))
			Config{Workers: w, ParallelThreshold: 1, ForceGeneric: forceGeneric}.Gemm(par, a, b, false, false, false)
			for i := range par.Data {
				if math.Float64bits(par.Data[i]) != math.Float64bits(serial.Data[i]) {
					t.Fatalf("generic=%v workers=%d differs from serial at %d: %x vs %x",
						forceGeneric, w, i, par.Data[i], serial.Data[i])
				}
			}
		}
	}
}

// TestGemmStridedViews multiplies through strided source and
// destination views (one timestep of a larger buffer) and checks that
// bytes outside the view are untouched.
func TestGemmStridedViews(t *testing.T) {
	r := &testRNG{s: 11}
	const B, T, F, H = 5, 3, 4, 6
	// x is (B,T,F) feature-fastest; view timestep 1 as a B×F matrix.
	xbuf := make([]float64, B*T*F)
	for i := range xbuf {
		xbuf[i] = r.next()
	}
	xview := Mat{R: B, C: F, Stride: T * F, Data: xbuf[1*F:]}
	w := randMat(r, F, H)
	// dst is one timestep of a (B,T,H) buffer, prefilled with a marker.
	dbuf := make([]float64, B*T*H)
	for i := range dbuf {
		dbuf[i] = 99
	}
	dview := Mat{R: B, C: H, Stride: T * H, Data: dbuf[1*H:]}
	Config{Workers: 1}.Gemm(dview, xview, w, false, false, false)

	// Dense oracle on copied-out operands.
	xd := MatOf(B, F, make([]float64, B*F))
	for i := 0; i < B; i++ {
		copy(xd.Row(i), xview.Row(i))
	}
	want := MatOf(B, H, make([]float64, B*H))
	RefGemm(want, xd, w, false, false, false)
	for i := 0; i < B; i++ {
		got := dview.Row(i)
		for j := 0; j < H; j++ {
			if math.Abs(got[j]-want.Row(i)[j]) > 1e-13 {
				t.Fatalf("strided dst (%d,%d) = %g want %g", i, j, got[j], want.Row(i)[j])
			}
		}
	}
	// Everything outside timestep 1 must still be the marker.
	for b := 0; b < B; b++ {
		for tt := 0; tt < T; tt++ {
			if tt == 1 {
				continue
			}
			for j := 0; j < H; j++ {
				if v := dbuf[(b*T+tt)*H+j]; v != 99 {
					t.Fatalf("gemm wrote outside its view at (%d,%d,%d): %g", b, tt, j, v)
				}
			}
		}
	}
}

// TestGemmPackedReuse packs B once and reuses it across calls,
// matching per-call Gemm bitwise (same code path underneath).
func TestGemmPackedReuse(t *testing.T) {
	r := &testRNG{s: 3}
	cfg := Config{Workers: 1}
	wh := randMat(r, 24, 96)
	pb := cfg.PackB(nil, wh, false)
	for trial := 0; trial < 3; trial++ {
		a := randMat(r, 10, 24)
		got := MatOf(10, 96, make([]float64, 10*96))
		want := MatOf(10, 96, make([]float64, 10*96))
		cfg.GemmPacked(got, a, false, pb, false)
		cfg.Gemm(want, a, wh, false, false, false)
		for i := range got.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("trial %d: packed reuse differs at %d", trial, i)
			}
		}
		// Repack (weights changed) into the same buffer.
		for i := range wh.Data {
			wh.Data[i] += 0.25
		}
		pb = cfg.PackB(pb, wh, false)
	}
}

// TestGemmStatsAdvance checks the cumulative counters move by the
// expected FLOP count.
func TestGemmStatsAdvance(t *testing.T) {
	r := &testRNG{s: 5}
	a, b := randMat(r, 8, 9), randMat(r, 9, 10)
	dst := MatOf(8, 10, make([]float64, 80))
	before := ReadStats()
	Config{Workers: 1}.Gemm(dst, a, b, false, false, false)
	after := ReadStats()
	if after.GemmCalls != before.GemmCalls+1 {
		t.Fatalf("calls %d -> %d", before.GemmCalls, after.GemmCalls)
	}
	if got := after.GemmFLOPs - before.GemmFLOPs; got != 2*8*9*10 {
		t.Fatalf("flops delta %d, want %d", got, 2*8*9*10)
	}
}
