// Package metrics implements the evaluation metrics used throughout the
// paper reproduction: the coefficient of determination (R²) that drives the
// architecture search, RMSE breakdowns for the geophysical comparisons, the
// moving-window averages used in the search-trajectory figures, and the
// trapezoidal area-under-curve node-utilization metric from Table III.
package metrics

import (
	"fmt"
	"math"
)

// R2 returns the coefficient of determination between predictions and
// targets, computed over all entries jointly (the "variance weighted over a
// flattened view" convention): R² = 1 − SS_res/SS_tot, where SS_tot is taken
// about the mean of the targets. A perfect fit gives 1; predicting the
// target mean gives 0; worse-than-mean predictions give negative values.
// It panics if the slices differ in length and returns NaN for empty input
// or zero target variance.
func R2(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("metrics: R2 length mismatch %d vs %d", len(pred), len(target)))
	}
	n := len(target)
	if n == 0 {
		return math.NaN()
	}
	var mean float64
	for _, v := range target {
		mean += v
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	for i, t := range target {
		d := pred[i] - t
		ssRes += d * d
		c := t - mean
		ssTot += c * c
	}
	//podnas:allow floateq exact zero-variance guard: R2 is undefined only at bitwise-zero SS_tot
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// ApproxEqual reports whether a and b are within tol of each other. It is
// the approved comparison helper podnaslint's floateq check steers float
// comparisons through: NaN never compares equal to anything (use math.IsNaN
// to branch on divergence), equal infinities do, and tol must be
// non-negative. Direct ==/!= between floats elsewhere needs a justified
// //podnas:allow floateq directive.
func ApproxEqual(a, b, tol float64) bool {
	if tol < 0 {
		panic("metrics: ApproxEqual tolerance must be non-negative")
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		//podnas:allow floateq infinities of the same sign are exactly equal; arithmetic on them yields NaN
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// MSE returns the mean squared error.
func MSE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("metrics: MSE length mismatch")
	}
	if len(target) == 0 {
		return math.NaN()
	}
	var s float64
	for i, t := range target {
		d := pred[i] - t
		s += d * d
	}
	return s / float64(len(target))
}

// RMSE returns the root mean squared error.
func RMSE(pred, target []float64) float64 { return math.Sqrt(MSE(pred, target)) }

// MAE returns the mean absolute error.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("metrics: MAE length mismatch")
	}
	if len(target) == 0 {
		return math.NaN()
	}
	var s float64
	for i, t := range target {
		s += math.Abs(pred[i] - t)
	}
	return s / float64(len(target))
}

// MovingAverage returns the trailing moving average of xs with the given
// window, matching the paper's reward smoothing (window 100). Entry i
// averages xs[max(0,i-window+1) .. i].
func MovingAverage(xs []float64, window int) []float64 {
	if window <= 0 {
		panic("metrics: MovingAverage window must be positive")
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, v := range xs {
		sum += v
		if i >= window {
			sum -= xs[i-window]
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// WindowMA is the streaming counterpart of MovingAverage: a trailing
// moving average over the last `window` pushed values. Value sums the
// buffered entries in insertion order, so while the window has not wrapped
// it is bitwise-identical to MovingAverage over the same inputs, and agrees
// to float rounding afterwards. It is the single implementation behind the
// live obs.Metrics reward average and trace replay, keeping the
// live-vs-post-hoc cross-checks exact. Not safe for concurrent use; callers
// hold their own locks.
type WindowMA struct {
	buf  []float64
	next int
	n    int
	last float64
}

// NewWindowMA returns a streaming average over the last window values
// (minimum 1).
func NewWindowMA(window int) *WindowMA {
	if window < 1 {
		window = 1
	}
	return &WindowMA{buf: make([]float64, window)}
}

// Push appends one sample, evicting the oldest when the window is full.
func (w *WindowMA) Push(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.last = v
}

// Value returns the trailing average, summed oldest-first. Zero before any
// Push.
func (w *WindowMA) Value() float64 {
	if w.n == 0 {
		return 0
	}
	start := w.next - w.n
	if start < 0 {
		start += len(w.buf)
	}
	var sum float64
	for i := 0; i < w.n; i++ {
		sum += w.buf[(start+i)%len(w.buf)]
	}
	return sum / float64(w.n)
}

// Count returns how many samples are currently buffered (≤ window).
func (w *WindowMA) Count() int { return w.n }

// Last returns the most recently pushed sample (zero before any Push).
func (w *WindowMA) Last() float64 { return w.last }

// Interval is a closed busy span [Lo, Hi] on one execution slot (an hpcsim
// node or a live evaluation worker), in seconds.
type Interval struct{ Lo, Hi float64 }

// Seconds returns the span length, zero for degenerate intervals.
func (iv Interval) Seconds() float64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// BusySeconds sums the lengths of all intervals (degenerate spans count
// zero). With per-slot non-overlapping intervals this is the busy-time
// numerator of the paper's Table III utilization metric.
func BusySeconds(spans []Interval) float64 {
	var s float64
	for _, iv := range spans {
		s += iv.Seconds()
	}
	return s
}

// UtilizationAUC is busy time over ideal capacity (slots × wall), the
// trapezoid-equivalent area ratio hpcsim reports as Table III utilization
// and obs.Metrics tracks live. Returns 0 for non-positive capacity.
func UtilizationAUC(spans []Interval, slots int, wall float64) float64 {
	if slots <= 0 || wall <= 0 {
		return 0
	}
	return BusySeconds(spans) / (float64(slots) * wall)
}

// BusyBins distributes interval time into nBins contiguous bins of
// binWidth seconds starting at 0: bins[b] accumulates the seconds of each
// span overlapping [b·binWidth, (b+1)·binWidth). Span time beyond the grid
// is dropped, matching hpcsim's sampled utilization trace (whose grid
// always covers the wall time). It panics on a non-positive binWidth.
func BusyBins(spans []Interval, binWidth float64, nBins int) []float64 {
	if binWidth <= 0 {
		panic("metrics: BusyBins binWidth must be positive")
	}
	bins := make([]float64, nBins)
	for _, iv := range spans {
		lo, hi := iv.Lo, iv.Hi
		if hi <= lo {
			continue
		}
		b0 := int(lo / binWidth)
		if b0 < 0 {
			b0 = 0
		}
		b1 := int(hi / binWidth)
		if b1 >= nBins {
			b1 = nBins - 1
		}
		for b := b0; b <= b1; b++ {
			s := math.Max(lo, float64(b)*binWidth)
			e := math.Min(hi, float64(b+1)*binWidth)
			if e > s {
				bins[b] += e - s
			}
		}
	}
	return bins
}

// TrapezoidAUC integrates the piecewise-linear curve (xs, ys) with the
// trapezoidal rule. xs must be nondecreasing and the slices equal length.
func TrapezoidAUC(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("metrics: TrapezoidAUC length mismatch")
	}
	var area float64
	for i := 1; i < len(xs); i++ {
		dx := xs[i] - xs[i-1]
		if dx < 0 {
			panic("metrics: TrapezoidAUC xs must be nondecreasing")
		}
		area += 0.5 * dx * (ys[i] + ys[i-1])
	}
	return area
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	n := len(xs)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var s float64
	for _, v := range xs {
		d := v - mean
		s += d * d
	}
	return mean, math.Sqrt(s / float64(n))
}

// Curve is a sampled (x, y) trajectory, e.g. reward vs wall-clock minutes.
type Curve struct {
	X []float64
	Y []float64
}

// Append adds a sample point.
func (c *Curve) Append(x, y float64) {
	c.X = append(c.X, x)
	c.Y = append(c.Y, y)
}

// Len returns the number of samples.
func (c *Curve) Len() int { return len(c.X) }

// ValueAt linearly interpolates the curve at x, clamping outside the domain.
func (c *Curve) ValueAt(x float64) float64 {
	n := len(c.X)
	if n == 0 {
		return math.NaN()
	}
	if x <= c.X[0] {
		return c.Y[0]
	}
	if x >= c.X[n-1] {
		return c.Y[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if c.X[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	x0, x1 := c.X[lo], c.X[hi]
	//podnas:allow floateq exact degenerate-segment guard before dividing by x1-x0
	if x1 == x0 {
		return c.Y[lo]
	}
	w := (x - x0) / (x1 - x0)
	return (1-w)*c.Y[lo] + w*c.Y[hi]
}

// Resample evaluates the curve at n evenly spaced points over [x0, x1].
func (c *Curve) Resample(x0, x1 float64, n int) *Curve {
	out := &Curve{X: make([]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := x0
		if n > 1 {
			x = x0 + (x1-x0)*float64(i)/float64(n-1)
		}
		out.X[i] = x
		out.Y[i] = c.ValueAt(x)
	}
	return out
}

// EnsembleBand computes, pointwise over equally sampled curves, the mean and
// mean±k·std band. All curves must have the same X grid (use Resample).
func EnsembleBand(curves []*Curve, k float64) (mean, lo, hi *Curve) {
	if len(curves) == 0 {
		return &Curve{}, &Curve{}, &Curve{}
	}
	n := curves[0].Len()
	for _, c := range curves {
		if c.Len() != n {
			panic("metrics: EnsembleBand curves must share a grid")
		}
	}
	mean, lo, hi = &Curve{}, &Curve{}, &Curve{}
	buf := make([]float64, len(curves))
	for i := 0; i < n; i++ {
		for j, c := range curves {
			buf[j] = c.Y[i]
		}
		m, s := MeanStd(buf)
		x := curves[0].X[i]
		mean.Append(x, m)
		lo.Append(x, m-k*s)
		hi.Append(x, m+k*s)
	}
	return mean, lo, hi
}
