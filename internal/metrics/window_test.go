package metrics

import (
	"math"
	"testing"
)

// TestWindowMAMatchesMovingAverage pins the streaming/batch equivalence the
// live-vs-replay invariants rely on: at every step, WindowMA.Value equals
// the corresponding MovingAverage entry (bitwise before the window wraps,
// 1e-12 after).
func TestWindowMAMatchesMovingAverage(t *testing.T) {
	xs := []float64{0.3, 0.7, -0.2, 0.96, 0.5, 0.11, 0.8, 0.8, 0.1, 0.42, 0.97}
	for _, window := range []int{1, 3, 5, 100} {
		batch := MovingAverage(xs, window)
		w := NewWindowMA(window)
		for i, v := range xs {
			w.Push(v)
			got, want := w.Value(), batch[i]
			if i < window {
				if got != want {
					t.Fatalf("window %d step %d: streaming %v != batch %v (pre-wrap must be bitwise)", window, i, got, want)
				}
			} else if math.Abs(got-want) > 1e-12 {
				t.Fatalf("window %d step %d: streaming %v vs batch %v", window, i, got, want)
			}
			if w.Last() != v {
				t.Fatalf("last %v, want %v", w.Last(), v)
			}
		}
		wantN := len(xs)
		if wantN > window {
			wantN = window
		}
		if w.Count() != wantN {
			t.Errorf("window %d count %d, want %d", window, w.Count(), wantN)
		}
	}
}

func TestWindowMAEmptyAndMinWindow(t *testing.T) {
	w := NewWindowMA(0) // clamped to 1
	if w.Value() != 0 || w.Count() != 0 {
		t.Fatalf("fresh window: value %v count %d", w.Value(), w.Count())
	}
	w.Push(2)
	w.Push(4)
	if w.Value() != 4 || w.Count() != 1 {
		t.Errorf("window-1 keeps only the last sample: value %v count %d", w.Value(), w.Count())
	}
}

func TestBusySecondsAndUtilizationAUC(t *testing.T) {
	spans := []Interval{{Lo: 0, Hi: 2}, {Lo: 3, Hi: 3.5}, {Lo: 5, Hi: 5}, {Lo: 7, Hi: 6}}
	if got := BusySeconds(spans); got != 2.5 {
		t.Fatalf("busy %v, want 2.5 (degenerate and inverted spans count zero)", got)
	}
	if got := UtilizationAUC(spans, 2, 10); got != 2.5/20 {
		t.Errorf("AUC %v, want %v", got, 2.5/20)
	}
	if got := UtilizationAUC(spans, 0, 10); got != 0 {
		t.Errorf("zero slots AUC %v", got)
	}
	if got := UtilizationAUC(spans, 2, 0); got != 0 {
		t.Errorf("zero wall AUC %v", got)
	}
}

// TestBusyBinsSplitsSpansAcrossBins: a span covering several bins deposits
// exactly its overlap into each, total time is conserved within the grid,
// and time past the grid is dropped (hpcsim's grid always covers the wall).
func TestBusyBinsSplitsSpansAcrossBins(t *testing.T) {
	spans := []Interval{{Lo: 0.5, Hi: 2.5}, {Lo: 1.0, Hi: 1.25}}
	bins := BusyBins(spans, 1.0, 4)
	want := []float64{0.5, 1.25, 0.5, 0}
	for b := range want {
		if math.Abs(bins[b]-want[b]) > 1e-12 {
			t.Fatalf("bins %v, want %v", bins, want)
		}
	}
	var total float64
	for _, v := range bins {
		total += v
	}
	if math.Abs(total-BusySeconds(spans)) > 1e-12 {
		t.Errorf("binned total %v vs busy %v", total, BusySeconds(spans))
	}

	// Overflow past the grid is clipped, never folded back in.
	over := BusyBins([]Interval{{Lo: 3.5, Hi: 9}}, 1.0, 4)
	if math.Abs(over[3]-0.5) > 1e-12 {
		t.Errorf("overflow bin %v, want 0.5", over[3])
	}

	// Negative starts clamp into bin 0.
	neg := BusyBins([]Interval{{Lo: -1, Hi: 0.5}}, 1.0, 2)
	if math.Abs(neg[0]-0.5) > 1e-12 {
		t.Errorf("negative-start bin %v, want 0.5", neg[0])
	}
}
