package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"podnas/internal/tensor"
)

func TestR2PerfectFit(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if r := R2(y, y); r != 1 {
		t.Errorf("R2 of perfect fit = %g, want 1", r)
	}
}

func TestR2MeanPredictorIsZero(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	pred := []float64{2.5, 2.5, 2.5, 2.5}
	if r := R2(pred, y); math.Abs(r) > 1e-14 {
		t.Errorf("R2 of mean predictor = %g, want 0", r)
	}
}

func TestR2WorseThanMeanIsNegative(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	pred := []float64{4, 3, 2, 1}
	if r := R2(pred, y); r >= 0 {
		t.Errorf("R2 of anti-correlated predictor = %g, want negative", r)
	}
}

func TestR2AtMostOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(50)
		y := make([]float64, n)
		p := make([]float64, n)
		rng.FillNormal(y, 1)
		rng.FillNormal(p, 1)
		r := R2(p, y)
		return math.IsNaN(r) || r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestR2NaNCases(t *testing.T) {
	if !math.IsNaN(R2(nil, nil)) {
		t.Error("empty R2 should be NaN")
	}
	if !math.IsNaN(R2([]float64{1, 1}, []float64{2, 2})) {
		t.Error("constant-target R2 should be NaN")
	}
}

func TestRMSEKnown(t *testing.T) {
	pred := []float64{1, 2}
	y := []float64{4, 6}
	// Errors 3 and 4 → MSE 12.5, RMSE 3.5355.
	if m := MSE(pred, y); math.Abs(m-12.5) > 1e-12 {
		t.Errorf("MSE = %g", m)
	}
	if r := RMSE(pred, y); math.Abs(r-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %g", r)
	}
	if m := MAE(pred, y); math.Abs(m-3.5) > 1e-12 {
		t.Errorf("MAE = %g", m)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i, v := range want {
		if math.Abs(got[i]-v) > 1e-14 {
			t.Errorf("MovingAverage[%d] = %g, want %g", i, got[i], v)
		}
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	xs := []float64{3, 1, 4}
	got := MovingAverage(xs, 1)
	for i, v := range xs {
		if got[i] != v {
			t.Errorf("window-1 moving average must be identity, got %v", got)
		}
	}
}

func TestMovingAverageBounds(t *testing.T) {
	// Property: moving average stays within [min, max] of the input.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		rng.FillNormal(xs, 1)
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range MovingAverage(xs, 1+rng.Intn(10)) {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTrapezoidAUC(t *testing.T) {
	// Unit square: y=1 over [0,2] → area 2.
	if a := TrapezoidAUC([]float64{0, 1, 2}, []float64{1, 1, 1}); math.Abs(a-2) > 1e-14 {
		t.Errorf("AUC = %g, want 2", a)
	}
	// Triangle: y=x over [0,1] → area 0.5.
	if a := TrapezoidAUC([]float64{0, 0.5, 1}, []float64{0, 0.5, 1}); math.Abs(a-0.5) > 1e-14 {
		t.Errorf("AUC = %g, want 0.5", a)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-14 || math.Abs(s-2) > 1e-14 {
		t.Errorf("MeanStd = %g, %g; want 5, 2", m, s)
	}
}

func TestCurveValueAt(t *testing.T) {
	c := &Curve{}
	c.Append(0, 0)
	c.Append(10, 100)
	if v := c.ValueAt(5); math.Abs(v-50) > 1e-12 {
		t.Errorf("interpolation = %g, want 50", v)
	}
	if v := c.ValueAt(-1); v != 0 {
		t.Errorf("left clamp = %g, want 0", v)
	}
	if v := c.ValueAt(11); v != 100 {
		t.Errorf("right clamp = %g, want 100", v)
	}
}

func TestCurveResample(t *testing.T) {
	c := &Curve{}
	c.Append(0, 0)
	c.Append(4, 8)
	r := c.Resample(0, 4, 5)
	if r.Len() != 5 {
		t.Fatalf("resampled length %d", r.Len())
	}
	for i := 0; i < 5; i++ {
		if math.Abs(r.Y[i]-2*float64(i)) > 1e-12 {
			t.Errorf("resample Y[%d] = %g", i, r.Y[i])
		}
	}
}

func TestEnsembleBand(t *testing.T) {
	c1 := &Curve{X: []float64{0, 1}, Y: []float64{1, 3}}
	c2 := &Curve{X: []float64{0, 1}, Y: []float64{3, 5}}
	mean, lo, hi := EnsembleBand([]*Curve{c1, c2}, 2)
	if mean.Y[0] != 2 || mean.Y[1] != 4 {
		t.Errorf("band mean = %v", mean.Y)
	}
	// std = 1 at both points → band ±2.
	if lo.Y[0] != 0 || hi.Y[0] != 4 {
		t.Errorf("band at x=0: lo %g hi %g", lo.Y[0], hi.Y[0])
	}
}

func TestCurveEmptyAndSinglePoint(t *testing.T) {
	c := &Curve{}
	if !math.IsNaN(c.ValueAt(1)) {
		t.Error("empty curve should return NaN")
	}
	c.Append(2, 5)
	if c.ValueAt(0) != 5 || c.ValueAt(99) != 5 {
		t.Error("single-point curve should clamp everywhere")
	}
	r := c.Resample(0, 1, 1)
	if r.Len() != 1 || r.Y[0] != 5 {
		t.Errorf("single-sample resample = %+v", r)
	}
}

func TestEnsembleBandEmpty(t *testing.T) {
	mean, lo, hi := EnsembleBand(nil, 2)
	if mean.Len() != 0 || lo.Len() != 0 || hi.Len() != 0 {
		t.Error("empty ensemble should give empty curves")
	}
}

func TestMeanStdEmpty(t *testing.T) {
	m, s := MeanStd(nil)
	if !math.IsNaN(m) || !math.IsNaN(s) {
		t.Error("empty MeanStd should be NaN")
	}
}

func TestTrapezoidAUCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for decreasing xs")
		}
	}()
	TrapezoidAUC([]float64{1, 0}, []float64{1, 1})
}

func TestMovingAveragePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero window")
		}
	}()
	MovingAverage([]float64{1}, 0)
}

func TestMSEMAEEmpty(t *testing.T) {
	if !math.IsNaN(MSE(nil, nil)) || !math.IsNaN(MAE(nil, nil)) {
		t.Error("empty MSE/MAE should be NaN")
	}
}

func TestMovingAverageMatchesBruteForce(t *testing.T) {
	// Property: the rolling-sum implementation equals the O(n·w) definition.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(60)
		w := 1 + rng.Intn(15)
		xs := make([]float64, n)
		rng.FillNormal(xs, 3)
		got := MovingAverage(xs, w)
		for i := range xs {
			lo := i - w + 1
			if lo < 0 {
				lo = 0
			}
			var s float64
			for j := lo; j <= i; j++ {
				s += xs[j]
			}
			want := s / float64(i-lo+1)
			if math.Abs(got[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCurveValueAtMonotoneBetweenKnots(t *testing.T) {
	c := &Curve{X: []float64{0, 1, 2}, Y: []float64{0, 10, 0}}
	if v := c.ValueAt(0.25); math.Abs(v-2.5) > 1e-12 {
		t.Errorf("interp(0.25) = %g", v)
	}
	if v := c.ValueAt(1.5); math.Abs(v-5) > 1e-12 {
		t.Errorf("interp(1.5) = %g", v)
	}
}
