package replay

import (
	"testing"
	"time"

	"podnas/internal/obs"
	"podnas/internal/obs/span"
)

// spanEvent builds the KindSpan event a live recorder would have written:
// emitted at span end, Seconds = duration.
func spanEvent(c span.Context, parent span.ID, name string, start, dur time.Duration) obs.Event {
	e := span.End(c, parent, name, dur)
	e.T = start + dur
	return e
}

func TestSpansAssemblesTree(t *testing.T) {
	root := span.NewTrace("run/AE/1")
	search := span.Derive(root, "search")
	eval0 := span.Derive(search, "eval", 0)
	eval1 := span.Derive(search, "eval", 1)
	train := span.Derive(eval0, "train", 7)
	epoch := span.Derive(train, "epoch", 0)

	events := []obs.Event{
		// Log order is completion order — leaves land before their parents.
		spanEvent(epoch, train.Span, "epoch", 10*time.Millisecond, 5*time.Millisecond),
		spanEvent(train, eval0.Span, "train", 10*time.Millisecond, 20*time.Millisecond),
		spanEvent(eval0, search.Span, "eval", 5*time.Millisecond, 30*time.Millisecond),
		spanEvent(eval1, search.Span, "eval", 40*time.Millisecond, 10*time.Millisecond),
		spanEvent(search, root.Span, "search", 0, 60*time.Millisecond),
		{Kind: obs.KindEvalFinish, Eval: 0}, // non-span noise is ignored
	}
	traces := Spans(events)
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != root.Trace {
		t.Fatalf("trace id %s, want %s", tr.ID, root.Trace)
	}
	if len(tr.Spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(tr.Spans))
	}
	if len(tr.Roots) != 1 || tr.Roots[0].ID != search.Span {
		t.Fatalf("roots = %+v, want the search span", tr.Roots)
	}
	s := tr.Roots[0]
	if len(s.Children) != 2 || s.Children[0].ID != eval0.Span || s.Children[1].ID != eval1.Span {
		t.Fatalf("search children wrong: %+v", s.Children)
	}
	e0 := s.Children[0]
	if len(e0.Children) != 1 || e0.Children[0].ID != train.Span {
		t.Fatalf("eval0 children wrong: %+v", e0.Children)
	}
	tn := e0.Children[0]
	if len(tn.Children) != 1 || tn.Children[0].Name != "epoch" {
		t.Fatalf("train children wrong: %+v", tn.Children)
	}
	if got := tn.Children[0].Start; got != 10*time.Millisecond {
		t.Fatalf("epoch start %v, want 10ms", got)
	}
	if got := tn.Children[0].Duration(); got != 5*time.Millisecond {
		t.Fatalf("epoch duration %v, want 5ms", got)
	}
	if tr.Start() != 0 || tr.End() != 60*time.Millisecond {
		t.Fatalf("trace extent [%v, %v], want [0, 60ms]", tr.Start(), tr.End())
	}
}

func TestSpansDeterministicUnderReordering(t *testing.T) {
	root := span.NewTrace("run/AE/1")
	search := span.Derive(root, "search")
	var events []obs.Event
	for i := 0; i < 6; i++ {
		ev := span.Derive(search, "eval", uint64(i))
		events = append(events, spanEvent(ev, search.Span, "eval",
			time.Duration(i)*time.Millisecond, 10*time.Millisecond))
	}
	events = append(events, spanEvent(search, root.Span, "search", 0, 20*time.Millisecond))

	a := FormatSpanTree(Spans(events)[0])
	// Reverse the log order — completion order under concurrency is
	// arbitrary; the reconstructed tree must not care.
	rev := make([]obs.Event, len(events))
	for i, e := range events {
		rev[len(events)-1-i] = e
	}
	b := FormatSpanTree(Spans(rev)[0])
	if a != b {
		t.Fatalf("tree depends on log order:\n%s\nvs\n%s", a, b)
	}
}

func TestSpansOrphanPromotion(t *testing.T) {
	root := span.NewTrace("run/RS/2")
	search := span.Derive(root, "search")
	ev := span.Derive(search, "eval", 0)
	// The search span never made it into the (truncated) log.
	events := []obs.Event{spanEvent(ev, search.Span, "eval", 0, time.Millisecond)}
	tr := Spans(events)[0]
	if len(tr.Roots) != 1 || !tr.Roots[0].Orphan {
		t.Fatalf("orphan span not promoted to root: %+v", tr.Roots)
	}
}

func TestSpansSeparatesTraces(t *testing.T) {
	a := span.NewTrace("job/j1")
	b := span.NewTrace("job/j2")
	events := []obs.Event{
		spanEvent(a, 0, "job", 0, time.Second),
		spanEvent(b, 0, "job", 0, time.Second),
	}
	traces := Spans(events)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	if traces[0].ID >= traces[1].ID {
		t.Fatalf("traces not ordered by ID: %s, %s", traces[0].ID, traces[1].ID)
	}
}

func TestSpansSkipsCorruptAndDuplicate(t *testing.T) {
	root := span.NewTrace("run/AE/3")
	good := spanEvent(root, 0, "search", 0, time.Second)
	corrupt := good
	corrupt.Span = "not-hex"
	dup := good
	events := []obs.Event{good, corrupt, dup}
	tr := Spans(events)
	if len(tr) != 1 || len(tr[0].Spans) != 1 {
		t.Fatalf("want 1 trace with 1 span, got %+v", tr)
	}
}

func TestCriticalPath(t *testing.T) {
	root := span.NewTrace("run/AE/4")
	search := span.Derive(root, "search")
	evFast := span.Derive(search, "eval", 0)
	evSlow := span.Derive(search, "eval", 1)
	train := span.Derive(evSlow, "train", 9)
	events := []obs.Event{
		spanEvent(search, root.Span, "search", 0, 100*time.Millisecond),
		spanEvent(evFast, search.Span, "eval", 0, 10*time.Millisecond),
		spanEvent(evSlow, search.Span, "eval", 0, 90*time.Millisecond),
		spanEvent(train, evSlow.Span, "train", 5*time.Millisecond, 80*time.Millisecond),
	}
	tr := Spans(events)[0]
	path := CriticalPath(tr)
	if len(path) != 3 {
		t.Fatalf("path length %d, want 3: %+v", len(path), path)
	}
	names := []string{path[0].Span.Name, path[1].Span.Name, path[2].Span.Name}
	if names[0] != "search" || names[1] != "eval" || names[2] != "train" {
		t.Fatalf("path %v, want search→eval→train", names)
	}
	if path[1].Span.ID != evSlow.Span {
		t.Fatalf("critical eval is the fast one")
	}
	// Exclusive times: search 100−90=10ms, eval 90−80=10ms, train 80ms.
	if path[0].Self != 10*time.Millisecond || path[1].Self != 10*time.Millisecond || path[2].Self != 80*time.Millisecond {
		t.Fatalf("self times %v %v %v", path[0].Self, path[1].Self, path[2].Self)
	}
	if len(CriticalPath(&Trace{})) != 0 {
		t.Fatalf("empty trace should have no critical path")
	}
}
