package replay

import (
	"fmt"
	"sort"
	"time"

	"podnas/internal/obs"
	"podnas/internal/obs/span"
)

// Span is one reconstructed trace span. Times are run-relative offsets: a
// KindSpan event is emitted at span end with Seconds holding the duration,
// so Start = T − Seconds and End = T.
type Span struct {
	Trace  span.ID
	ID     span.ID
	Parent span.ID // zero for a root
	Name   string
	Start  time.Duration
	End    time.Duration
	// Eval/Worker/Epoch/Job carry the emitting event's attribution.
	Eval   int
	Worker int
	Epoch  int
	Job    string
	// Children are this span's direct children, ordered by start time then
	// span ID (deterministic for identical traces).
	Children []*Span
	// Orphan marks a span whose Parent never appeared in the trace (a
	// truncated log, or an old driver that dropped the parent's frames); it
	// is promoted to a root so its subtree still renders.
	Orphan bool
}

// Duration is the span's recorded extent.
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// Trace is one assembled span tree: every span sharing a trace ID.
type Trace struct {
	ID    span.ID
	Roots []*Span
	// Spans is every span of the trace in deterministic order (start time,
	// then span ID).
	Spans []*Span
}

// Start and End bound the whole trace.
func (t *Trace) Start() time.Duration {
	if len(t.Spans) == 0 {
		return 0
	}
	min := t.Spans[0].Start
	for _, s := range t.Spans {
		if s.Start < min {
			min = s.Start
		}
	}
	return min
}

func (t *Trace) End() time.Duration {
	var max time.Duration
	for _, s := range t.Spans {
		if s.End > max {
			max = s.End
		}
	}
	return max
}

// Spans assembles every trace's span tree from a recorded event stream.
// Reconstruction is deterministic: the same events produce the same trees
// regardless of the (concurrency-dependent) order span events landed in the
// log, because spans sort by their recorded offsets and IDs, never by log
// position. Undecodable span events (corrupt IDs) are skipped. Traces are
// returned ordered by trace ID.
func Spans(events []obs.Event) []*Trace {
	byTrace := make(map[span.ID][]*Span)
	for _, e := range events {
		if e.Kind != obs.KindSpan {
			continue
		}
		tr, err1 := span.ParseID(e.Trace)
		id, err2 := span.ParseID(e.Span)
		if err1 != nil || err2 != nil {
			continue
		}
		var parent span.ID
		if e.Parent != "" {
			p, err := span.ParseID(e.Parent)
			if err != nil {
				continue
			}
			parent = p
		}
		end := e.T
		start := end - time.Duration(e.Seconds*float64(time.Second))
		if start < 0 {
			start = 0
		}
		byTrace[tr] = append(byTrace[tr], &Span{
			Trace: tr, ID: id, Parent: parent, Name: e.Name,
			Start: start, End: end,
			Eval: e.Eval, Worker: e.Worker, Epoch: e.Epoch, Job: e.Job,
		})
	}

	traces := make([]*Trace, 0, len(byTrace))
	for tr, spans := range byTrace {
		sort.Slice(spans, func(a, b int) bool {
			if spans[a].Start != spans[b].Start {
				return spans[a].Start < spans[b].Start
			}
			return spans[a].ID < spans[b].ID
		})
		// A span ID can legally repeat only if the same span was recorded
		// twice (a tee sink double-logging); keep the first occurrence.
		byID := make(map[span.ID]*Span, len(spans))
		uniq := spans[:0]
		for _, s := range spans {
			if byID[s.ID] != nil {
				continue
			}
			byID[s.ID] = s
			uniq = append(uniq, s)
		}
		t := &Trace{ID: tr, Spans: uniq}
		for _, s := range uniq {
			if s.Parent != 0 {
				if p := byID[s.Parent]; p != nil && p != s {
					p.Children = append(p.Children, s)
					continue
				}
				s.Orphan = true
			}
			t.Roots = append(t.Roots, s)
		}
		traces = append(traces, t)
	}
	sort.Slice(traces, func(a, b int) bool { return traces[a].ID < traces[b].ID })
	return traces
}

// CriticalStep is one hop of a trace's critical path.
type CriticalStep struct {
	Span *Span
	// Self is the step's exclusive time: its duration minus the part covered
	// by its own critical child.
	Self time.Duration
}

// CriticalPath walks a trace from its longest root down, at each level
// descending into the child whose end time is latest (ties break toward the
// longer child, then the smaller span ID). The result is the chain of spans
// that bounded the trace's wall clock — the place to look when a run is
// slower than expected.
func CriticalPath(t *Trace) []CriticalStep {
	if len(t.Roots) == 0 {
		return nil
	}
	root := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if r.Duration() > root.Duration() {
			root = r
		}
	}
	var path []CriticalStep
	for s := root; s != nil; {
		var next *Span
		for _, c := range s.Children {
			if next == nil || c.End > next.End ||
				(c.End == next.End && (c.Duration() > next.Duration() ||
					(c.Duration() == next.Duration() && c.ID < next.ID))) {
				next = c
			}
		}
		self := s.Duration()
		if next != nil {
			if covered := next.Duration(); covered < self {
				self -= covered
			} else {
				self = 0
			}
		}
		path = append(path, CriticalStep{Span: s, Self: self})
		s = next
	}
	return path
}

// FormatSpanTree renders one trace as an indented text tree (nasreport
// spans' non-SVG output), deterministic for identical traces.
func FormatSpanTree(t *Trace) string {
	var out []byte
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		for i := 0; i < depth; i++ {
			out = append(out, "  "...)
		}
		tag := ""
		if s.Orphan {
			tag = " (orphan)"
		}
		out = append(out, fmt.Sprintf("%s %s +%.3fs %.3fs%s\n",
			s.ID, s.Name, s.Start.Seconds(), s.Duration().Seconds(), tag)...)
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return string(out)
}
