// Package replay turns recorded JSONL event traces (nasrun -trace) back
// into the paper's operational deliverables: the reconstructed live
// obs.Metrics snapshot, the moving-average reward vs. wall-clock curve
// (Fig 6), the node-utilization trace and AUC (Table III / Fig 7), the
// unique-high-performer growth curve (Fig 8), per-phase latency
// histograms, and per-worker crash/straggler attribution. It is the
// analysis half of the Balsam-style telemetry pipeline: the live layer
// writes the log, this package reads it — including logs truncated by a
// crash, for which it reports the clean prefix it could recover.
//
// The replayed snapshot is exact: feeding a recorded stream through
// Analyze reproduces the numbers the live obs.Metrics reported at the
// moment the trace was written (the same event timestamps drive both),
// which the root-package acceptance test pins to 1e-9.
package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"podnas/internal/metrics"
	"podnas/internal/obs"
)

// Sentinel errors. Hard failures (bad schema, future trace) wrap these;
// mere truncation is NOT an error — it is reported in ReadStats so a
// crashed run's partial log still analyzes.
var (
	// ErrSchema marks a structurally invalid trace: negative offsets, or
	// out-of-order offsets under Options.Strict.
	ErrSchema = errors.New("replay: invalid trace schema")
	// ErrSchemaVersion marks a trace written by a newer schema generation
	// than this reader understands.
	ErrSchemaVersion = errors.New("replay: trace schema version too new")
)

// ReadStats describes how much of a trace the reader consumed and what it
// had to tolerate along the way.
type ReadStats struct {
	// Lines is the number of physical lines consumed, including a final
	// undecodable one.
	Lines int
	// Events is the number of events decoded — the clean prefix.
	Events int
	// Truncated reports that the trace ended in an undecodable line (torn
	// final write of a crashed run, or mid-file corruption); everything
	// before TruncatedLine is the clean prefix and was analyzed.
	Truncated bool
	// TruncatedLine is the 1-based line number of the first undecodable
	// line (0 when Truncated is false).
	TruncatedLine int
	// OutOfOrder counts events whose offset ran backwards relative to the
	// stream so far. Concurrent producers stamp through a shared Multi but
	// append to the JSONL sink under its own lock, so slight inversions are
	// legal in live traces; Options.Strict turns them into ErrSchema.
	OutOfOrder int
	// UnknownKinds counts events carrying a kind this vocabulary does not
	// know (traces from newer writers); they advance the clock but carry no
	// other meaning here.
	UnknownKinds int
}

// Reader streams events out of a JSONL trace, validating as it goes. It
// tolerates a torn or corrupt line by ending the stream there (clean-prefix
// recovery); schema violations and future schema versions are hard errors.
type Reader struct {
	sc     *bufio.Scanner
	strict bool

	stats  ReadStats
	lastT  time.Duration
	header *obs.Event
	done   bool
	err    error
}

// NewReader wraps r. Set strict to reject offset-monotonicity violations
// instead of tolerating (and counting) them.
func NewReader(r io.Reader, strict bool) *Reader {
	sc := bufio.NewScanner(r)
	// Events are small, but an arch key plus error string can stretch a
	// line; give the scanner generous headroom over bufio's 64 KiB default.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc, strict: strict}
}

// Next returns the next decoded event. It returns io.EOF at the end of the
// clean prefix — whether the trace ended cleanly or in a torn line; consult
// Stats to distinguish. Schema violations return errors wrapping ErrSchema
// or ErrSchemaVersion and poison the reader.
func (r *Reader) Next() (obs.Event, error) {
	if r.err != nil {
		return obs.Event{}, r.err
	}
	if r.done {
		return obs.Event{}, io.EOF
	}
	for r.sc.Scan() {
		r.stats.Lines++
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue // blank line (trailing newline artifacts)
		}
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn final write or corruption: end of the clean prefix.
			r.stats.Truncated = true
			r.stats.TruncatedLine = r.stats.Lines
			r.done = true
			return obs.Event{}, io.EOF
		}
		if e.T < 0 {
			r.err = fmt.Errorf("%w: line %d: negative offset %d", ErrSchema, r.stats.Lines, e.T)
			return obs.Event{}, r.err
		}
		if e.Kind == obs.KindTraceHeader {
			if e.Schema > obs.SchemaVersion {
				r.err = fmt.Errorf("%w: trace schema %d, this reader understands ≤ %d (upgrade nasreport)",
					ErrSchemaVersion, e.Schema, obs.SchemaVersion)
				return obs.Event{}, r.err
			}
			if r.header == nil {
				h := e
				r.header = &h
			}
		}
		if e.T < r.lastT {
			if r.strict {
				r.err = fmt.Errorf("%w: line %d: offset %v runs backwards past %v", ErrSchema, r.stats.Lines, e.T, r.lastT)
				return obs.Event{}, r.err
			}
			r.stats.OutOfOrder++
		} else {
			r.lastT = e.T
		}
		if e.Kind == 0 {
			// Unknown kind names decode to 0 by contract (forward
			// compatibility): the event advances the clock but carries no
			// meaning this reader understands.
			r.stats.UnknownKinds++
		}
		r.stats.Events++
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		// A line beyond the scanner's buffer is corruption, not truncation
		// we can see past: still report the clean prefix.
		r.stats.Truncated = true
		r.stats.TruncatedLine = r.stats.Lines + 1
	}
	r.done = true
	return obs.Event{}, io.EOF
}

// Header returns the trace-header event, if one has been read so far.
func (r *Reader) Header() (obs.Event, bool) {
	if r.header == nil {
		return obs.Event{}, false
	}
	return *r.header, true
}

// Stats returns the reader's consumption statistics so far.
func (r *Reader) Stats() ReadStats { return r.stats }

// Phase names the latency populations the analysis histograms.
type Phase string

const (
	// PhaseEval is evaluation dispatch→terminal-event latency.
	PhaseEval Phase = "eval"
	// PhaseEpoch is the spacing between training-epoch ticks of one
	// evaluation (first tick measured from its dispatch).
	PhaseEpoch Phase = "epoch"
	// PhaseCheckpoint is the spacing between checkpoint writes (first
	// measured from the start of the run).
	PhaseCheckpoint Phase = "checkpoint"
)

// Options tune an analysis; zero values take the live-metrics defaults, so
// a default replay reconstructs exactly what `nasrun -obs` showed.
type Options struct {
	// Window is the reward moving-average window (default 100).
	Window int
	// HighThreshold is the unique-high-performer cutoff (default 0.96).
	HighThreshold float64
	// Bins is the utilization-trace resolution (default 120 bins over the
	// run; minimum 1).
	Bins int
	// StragglerFactor flags a worker slot whose mean evaluation latency
	// exceeds the run mean by this factor (default 1.5).
	StragglerFactor float64
	// Strict rejects offset-monotonicity violations instead of counting
	// them.
	Strict bool
}

func (o *Options) defaults() {
	if o.Window <= 0 {
		o.Window = 100
	}
	//podnas:allow floateq zero-value option detection: 0 means "take the paper default"
	if o.HighThreshold == 0 {
		o.HighThreshold = 0.96
	}
	if o.Bins <= 0 {
		o.Bins = 120
	}
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = 1.5
	}
}

// SlotReport attributes work, crashes, and stragglerhood to one evaluation
// slot (worker id).
type SlotReport struct {
	Worker                      int     `json:"worker"`
	Started                     int     `json:"started"`
	Finished                    int     `json:"finished"`
	Errored                     int     `json:"errored"`
	BusySeconds                 float64 `json:"busy_seconds"`
	MeanLatency                 float64 `json:"mean_latency_seconds"`
	MaxLatency                  float64 `json:"max_latency_seconds"`
	Crashes, Restarts, HBMisses int
	// Disconnects and LeaseExpires attribute network-transport supervision
	// to the slot: remote connections lost, and leases retired with an
	// evaluation still claimed (each such job was re-dispatched).
	Disconnects  int `json:"disconnects,omitempty"`
	LeaseExpires int `json:"lease_expires,omitempty"`
	// StragglerScore is this slot's mean terminal-evaluation latency over
	// the run-wide mean (1.0 = typical; 0 with no terminal evaluations).
	StragglerScore float64 `json:"straggler_score"`
	// Straggler is set when StragglerScore ≥ Options.StragglerFactor with
	// at least two terminal evaluations to stand on.
	Straggler bool `json:"straggler"`
}

// Analysis is everything this package derives from one trace.
type Analysis struct {
	// Header is the trace-header event (nil for headerless, pre-header
	// traces).
	Header *obs.Event
	// Method/Seed/Workers are taken from the header when present, else
	// inferred from the event stream (Seed stays 0 without a header).
	Method  string
	Seed    uint64
	Workers int
	// Version is the podnas version that wrote the trace ("" headerless).
	Version string

	// Read describes the consumed trace, including truncation tolerance.
	Read ReadStats
	// Finished reports that the trace contains a search_finish event — a
	// false value means the run crashed or the trace was cut mid-run.
	Finished bool

	// Snapshot is the reconstructed live obs.Metrics state at the last
	// event: replaying is exact, so this equals what the live aggregator
	// published at that moment.
	Snapshot obs.Snapshot

	// Reward is the window-MA reward vs. wall-clock seconds (Fig 6).
	Reward *metrics.Curve
	// Utilization is the busy-slot fraction vs. wall-clock seconds,
	// bin-averaged (Fig 7 / hpcsim's UtilCurve analogue).
	Utilization *metrics.Curve
	// HighPerf is cumulative unique architectures above HighThreshold vs.
	// wall-clock seconds (Fig 8).
	HighPerf *metrics.Curve

	// Latency holds the per-phase latency histograms (p50/p90/p99 etc.).
	Latency map[Phase]*Histogram
	// Slots is the per-worker attribution, ordered by worker id.
	Slots []SlotReport
}

// AnalyzeFile opens and analyzes the trace at path.
func AnalyzeFile(path string, opts Options) (*Analysis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Analyze(f, opts)
}

// Analyze reads a whole trace and derives every analysis in one pass over
// the decoded events. Truncated traces analyze their clean prefix; schema
// violations fail.
func Analyze(r io.Reader, opts Options) (*Analysis, error) {
	opts.defaults()
	rd := NewReader(r, opts.Strict)
	var events []obs.Event
	for {
		e, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}

	a := &Analysis{
		Read:        rd.Stats(),
		Reward:      &metrics.Curve{},
		Utilization: &metrics.Curve{},
		HighPerf:    &metrics.Curve{},
		Latency: map[Phase]*Histogram{
			PhaseEval:       NewHistogram(),
			PhaseEpoch:      NewHistogram(),
			PhaseCheckpoint: NewHistogram(),
		},
	}
	if h, ok := rd.Header(); ok {
		a.Header = &h
		a.Method, a.Seed, a.Workers, a.Version = h.Method, h.Seed, h.Worker, h.Version
	}
	inferShape(a, events)

	// Reconstruct the live aggregator by feeding it the recorded stream:
	// events carry their original offsets, so the snapshot is the one the
	// live Metrics held after the same events.
	met := obs.NewMetricsOpts(a.Workers, obs.MetricsOptions{
		Window: opts.Window, HighThreshold: opts.HighThreshold,
	})
	for _, e := range events {
		met.Record(e)
	}
	a.Snapshot = met.Snapshot()

	deriveSeries(a, events, opts)
	deriveLatency(a, events)
	deriveSlots(a, events, opts)
	return a, nil
}

// inferShape fills Method/Workers for headerless traces and notices the
// finish event.
func inferShape(a *Analysis, events []obs.Event) {
	maxWorker := -1
	for _, e := range events {
		switch e.Kind {
		case obs.KindSearchStart:
			if a.Method == "" {
				a.Method = e.Method
			}
			if a.Workers == 0 {
				a.Workers = e.Worker
			}
		case obs.KindSearchFinish:
			a.Finished = true
		case obs.KindEvalStart, obs.KindEvalFinish, obs.KindEvalError:
			if e.Worker > maxWorker {
				maxWorker = e.Worker
			}
		case obs.KindJobSubmit, obs.KindJobStart, obs.KindJobCheckpoint,
			obs.KindJobFinish, obs.KindJobEvict:
			// Job lifecycle describes the daemon's queue, not this trace's
			// evaluation-slot shape.
		case obs.KindSpan, obs.KindSLOBreach:
			// Spans carry their own worker attribution but duplicate the
			// eval events' shape; SLO breaches describe the watcher, not
			// the slot layout.
		default:
			// Other kinds carry no shape information.
		}
	}
	if a.Workers <= 0 {
		a.Workers = maxWorker + 1
	}
	if a.Workers <= 0 {
		a.Workers = 1
	}
}

// busyIntervals reconstructs the per-evaluation busy spans in seconds:
// dispatch to terminal event, with evaluations still open at search_finish
// (or at the end of a truncated trace) closed at that boundary — the same
// closure rule the live aggregator applies.
func busyIntervals(events []obs.Event) ([]metrics.Interval, float64) {
	starts := make(map[int]time.Duration)
	var spans []metrics.Interval
	var lastT time.Duration
	for _, e := range events {
		if e.T > lastT {
			lastT = e.T
		}
		switch e.Kind {
		case obs.KindEvalStart:
			starts[e.Eval] = e.T
		case obs.KindEvalFinish, obs.KindEvalError:
			if s, ok := starts[e.Eval]; ok {
				spans = append(spans, metrics.Interval{Lo: s.Seconds(), Hi: e.T.Seconds()})
				delete(starts, e.Eval)
			}
		case obs.KindSearchFinish:
			for idx, s := range starts {
				spans = append(spans, metrics.Interval{Lo: s.Seconds(), Hi: e.T.Seconds()})
				delete(starts, idx)
			}
		case obs.KindJobSubmit, obs.KindJobStart, obs.KindJobCheckpoint,
			obs.KindJobFinish, obs.KindJobEvict:
			// Job admission and eviction do not occupy an evaluation slot;
			// the evaluations a job runs open their own intervals.
		case obs.KindSpan, obs.KindSLOBreach:
			// Spans retell intervals the eval events already opened and
			// closed; counting them again would double-book the slots.
		default:
			// Other kinds neither open nor close a busy interval.
		}
	}
	// Truncated mid-run: open evaluations were busy until the last thing we
	// know about.
	for _, s := range starts {
		spans = append(spans, metrics.Interval{Lo: s.Seconds(), Hi: lastT.Seconds()})
	}
	return spans, lastT.Seconds()
}

// deriveSeries builds the three paper curves from the event stream.
func deriveSeries(a *Analysis, events []obs.Event, opts Options) {
	var rewards []float64
	var times []float64
	seen := make(map[string]bool)
	unique := 0
	for _, e := range events {
		if e.Kind != obs.KindEvalFinish {
			continue
		}
		rewards = append(rewards, e.Reward)
		times = append(times, e.T.Seconds())
		if e.Reward > opts.HighThreshold && e.Arch != "" && !seen[e.Arch] {
			seen[e.Arch] = true
			unique++
		}
		a.HighPerf.Append(e.T.Seconds(), float64(unique))
	}
	ma := metrics.MovingAverage(rewards, opts.Window)
	for i := range ma {
		a.Reward.Append(times[i], ma[i])
	}

	spans, wall := busyIntervals(events)
	if wall <= 0 {
		return
	}
	binWidth := wall / float64(opts.Bins)
	bins := metrics.BusyBins(spans, binWidth, opts.Bins)
	denom := float64(a.Workers) * binWidth
	for b, busy := range bins {
		a.Utilization.Append(float64(b)*binWidth, busy/denom)
	}
}

// deriveLatency fills the per-phase histograms.
func deriveLatency(a *Analysis, events []obs.Event) {
	evalStart := make(map[int]time.Duration)
	lastTick := make(map[int]time.Duration) // eval -> last epoch tick (or dispatch)
	var lastCheckpoint time.Duration
	haveCheckpointOrigin := false
	for _, e := range events {
		switch e.Kind {
		case obs.KindSearchStart:
			if !haveCheckpointOrigin {
				lastCheckpoint = e.T
				haveCheckpointOrigin = true
			}
		case obs.KindEvalStart:
			evalStart[e.Eval] = e.T
			lastTick[e.Eval] = e.T
		case obs.KindEpoch:
			if prev, ok := lastTick[e.Eval]; ok && e.T >= prev {
				a.Latency[PhaseEpoch].Add((e.T - prev).Seconds())
			}
			lastTick[e.Eval] = e.T
		case obs.KindEvalFinish, obs.KindEvalError:
			if s, ok := evalStart[e.Eval]; ok && e.T >= s {
				a.Latency[PhaseEval].Add((e.T - s).Seconds())
			}
			delete(evalStart, e.Eval)
			delete(lastTick, e.Eval)
		case obs.KindCheckpoint:
			if haveCheckpointOrigin && e.T >= lastCheckpoint {
				a.Latency[PhaseCheckpoint].Add((e.T - lastCheckpoint).Seconds())
			}
			lastCheckpoint = e.T
			haveCheckpointOrigin = true
		case obs.KindJobSubmit, obs.KindJobStart, obs.KindJobCheckpoint,
			obs.KindJobFinish, obs.KindJobEvict:
			// Job transitions are queueing decisions, not evaluation phases;
			// job_checkpoint in particular commits manifests, not the search
			// checkpoint cadence PhaseCheckpoint histograms.
		case obs.KindSpan, obs.KindSLOBreach:
			// Span durations have their own analysis (Spans/CriticalPath);
			// the phase histograms stay derived from the lifecycle events
			// so they reconstruct identically for traces without spans.
		default:
			// Other kinds mark no phase boundary.
		}
	}
}

// deriveSlots attributes evaluations, crashes, and stragglerhood per worker
// slot.
func deriveSlots(a *Analysis, events []obs.Event, opts Options) {
	type acc struct {
		SlotReport
		latencies []float64
	}
	slots := make(map[int]*acc)
	slot := func(id int) *acc {
		s := slots[id]
		if s == nil {
			s = &acc{SlotReport: SlotReport{Worker: id}}
			slots[id] = s
		}
		return s
	}
	starts := make(map[int]time.Duration)
	var totalLatency float64
	var totalN int
	for _, e := range events {
		switch e.Kind {
		case obs.KindEvalStart:
			slot(e.Worker).Started++
			starts[e.Eval] = e.T
		case obs.KindEvalFinish, obs.KindEvalError:
			s := slot(e.Worker)
			if e.Kind == obs.KindEvalFinish {
				s.Finished++
			} else {
				s.Errored++
			}
			if t0, ok := starts[e.Eval]; ok && e.T >= t0 {
				lat := (e.T - t0).Seconds()
				s.latencies = append(s.latencies, lat)
				s.BusySeconds += lat
				if lat > s.MaxLatency {
					s.MaxLatency = lat
				}
				totalLatency += lat
				totalN++
				delete(starts, e.Eval)
			}
		case obs.KindWorkerCrash:
			slot(e.Worker).Crashes++
		case obs.KindWorkerRestart:
			slot(e.Worker).Restarts++
		case obs.KindHeartbeatMiss:
			slot(e.Worker).HBMisses++
		case obs.KindWorkerDisconnect:
			slot(e.Worker).Disconnects++
		case obs.KindLeaseExpire:
			slot(e.Worker).LeaseExpires++
		case obs.KindJobSubmit, obs.KindJobStart, obs.KindJobCheckpoint,
			obs.KindJobFinish, obs.KindJobEvict:
			// Job lifecycle belongs to the daemon queue, not a worker slot.
		case obs.KindSpan, obs.KindSLOBreach:
			// Span worker attribution duplicates the eval events already
			// counted above; SLO breaches are daemon-wide, not per-slot.
		default:
			// Other kinds attribute nothing to a slot.
		}
	}
	if len(slots) == 0 {
		return
	}
	globalMean := 0.0
	if totalN > 0 {
		globalMean = totalLatency / float64(totalN)
	}
	ids := make([]int, 0, len(slots))
	for id := range slots {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := slots[id]
		if n := len(s.latencies); n > 0 {
			s.MeanLatency = s.BusySeconds / float64(n)
			if globalMean > 0 {
				s.StragglerScore = s.MeanLatency / globalMean
			}
			s.Straggler = n >= 2 && s.StragglerScore >= opts.StragglerFactor
		}
		a.Slots = append(a.Slots, s.SlotReport)
	}
}
