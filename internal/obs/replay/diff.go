package replay

import (
	"fmt"
	"math"
	"strings"
)

// Thresholds configure how much adverse movement Diff tolerates per tracked
// metric before declaring a regression. Zero values take the defaults shown
// on each field; negative values disable the check entirely. Thresholds
// bound the *adverse* direction only — improvements never regress.
type Thresholds struct {
	// BestReward is the allowed absolute drop in best reward (default 0.01).
	BestReward float64
	// RewardMA is the allowed absolute drop in the final (and
	// time-aligned) moving-average reward (default 0.02).
	RewardMA float64
	// UtilizationAUC is the allowed absolute drop in the utilization AUC
	// ratio (default 0.05).
	UtilizationAUC float64
	// EvalsPerSec is the allowed relative drop in evaluation throughput
	// (default 0.20 = 20%).
	EvalsPerSec float64
	// UniqueHigh is the allowed drop in the unique-high-performer count
	// (default 0).
	UniqueHigh float64
	// Errors is the allowed increase in failed-evaluation count
	// (default 0).
	Errors float64
}

// DefaultThresholds returns the documented defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		BestReward:     0.01,
		RewardMA:       0.02,
		UtilizationAUC: 0.05,
		EvalsPerSec:    0.20,
		UniqueHigh:     0,
		Errors:         0,
	}
}

func (t *Thresholds) defaults() {
	d := DefaultThresholds()
	//podnas:allow floateq zero-value threshold detection: 0 means "take the default"
	if t.BestReward == 0 {
		t.BestReward = d.BestReward
	}
	//podnas:allow floateq zero-value threshold detection: 0 means "take the default"
	if t.RewardMA == 0 {
		t.RewardMA = d.RewardMA
	}
	//podnas:allow floateq zero-value threshold detection: 0 means "take the default"
	if t.UtilizationAUC == 0 {
		t.UtilizationAUC = d.UtilizationAUC
	}
	//podnas:allow floateq zero-value threshold detection: 0 means "take the default"
	if t.EvalsPerSec == 0 {
		t.EvalsPerSec = d.EvalsPerSec
	}
	// UniqueHigh and Errors default to 0 allowed movement already.
}

// Delta is one tracked metric compared across two runs. Delta = B − A;
// Allowed is the tolerated adverse movement in the same (absolute) units.
type Delta struct {
	Metric string  `json:"metric"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	Delta  float64 `json:"delta"`
	// Allowed is the adverse budget; math.Inf(1) when the check is
	// disabled.
	Allowed float64 `json:"allowed"`
	// HigherBetter orients the adverse direction.
	HigherBetter bool `json:"higher_better"`
	Regressed    bool `json:"regressed"`
}

// DiffReport is the outcome of comparing run B against baseline A.
type DiffReport struct {
	Deltas []Delta `json:"deltas"`
	// Regressions lists the metric names that moved adversely past their
	// threshold.
	Regressions []string `json:"regressions,omitempty"`
	// Note carries alignment caveats (e.g. differing evaluation budgets)
	// that change how the deltas should be read.
	Note string `json:"note,omitempty"`
}

// Regressed reports whether any tracked metric regressed.
func (r *DiffReport) Regressed() bool { return len(r.Regressions) > 0 }

// Diff aligns two analyzed runs and reports per-metric deltas of B against
// the baseline A, flagging adverse movements beyond the thresholds. Runs of
// different lengths are additionally compared at their common wall-clock
// horizon (the reward curve of the longer run is evaluated where the
// shorter one ended), so a longer follow-up run does not mask an early
// reward collapse.
func Diff(a, b *Analysis, th Thresholds) *DiffReport {
	th.defaults()
	r := &DiffReport{}
	add := func(metric string, av, bv, allowed float64, higherBetter bool) {
		if allowed < 0 {
			allowed = math.Inf(1)
		}
		d := Delta{Metric: metric, A: av, B: bv, Delta: bv - av, Allowed: allowed, HigherBetter: higherBetter}
		adverse := av - bv // drop, for higher-better metrics
		if !higherBetter {
			adverse = bv - av
		}
		if adverse > allowed {
			d.Regressed = true
			r.Regressions = append(r.Regressions, metric)
		}
		r.Deltas = append(r.Deltas, d)
	}

	sa, sb := a.Snapshot, b.Snapshot
	add("best_reward", sa.BestReward, sb.BestReward, th.BestReward, true)
	add("reward_ma", sa.RewardMA, sb.RewardMA, th.RewardMA, true)
	add("utilization_auc", sa.UtilizationAUC, sb.UtilizationAUC, th.UtilizationAUC, true)
	// Throughput is thresholded relatively: the budget scales with the
	// baseline rate.
	add("evals_per_sec", sa.EvalsPerSec, sb.EvalsPerSec, th.EvalsPerSec*math.Abs(sa.EvalsPerSec), true)
	add("unique_high", float64(sa.UniqueHigh), float64(sb.UniqueHigh), th.UniqueHigh, true)
	add("errors", float64(sa.Errors), float64(sb.Errors), th.Errors, false)

	// Time-aligned reward: compare the MA curves at the common horizon.
	if a.Reward.Len() > 0 && b.Reward.Len() > 0 {
		t := math.Min(sa.ElapsedSeconds, sb.ElapsedSeconds)
		add("reward_ma@common_t", a.Reward.ValueAt(t), b.Reward.ValueAt(t), th.RewardMA, true)
	}

	if sa.Evals != sb.Evals {
		r.Note = fmt.Sprintf("runs differ in completed evaluations (%d vs %d): count-like metrics are not directly comparable", sa.Evals, sb.Evals)
	}
	return r
}

// Markdown renders the report as a table, flagging regressions — the body
// of `nasreport diff` output.
func (r *DiffReport) Markdown() string {
	var b strings.Builder
	b.WriteString("| metric | baseline | candidate | delta | allowed | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, d := range r.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "**REGRESSED**"
		}
		allowed := "—"
		if !math.IsInf(d.Allowed, 1) {
			dir := "-"
			if !d.HigherBetter {
				dir = "+"
			}
			allowed = fmt.Sprintf("%s%.4g", dir, d.Allowed)
		}
		fmt.Fprintf(&b, "| %s | %.6g | %.6g | %+.6g | %s | %s |\n",
			d.Metric, d.A, d.B, d.Delta, allowed, verdict)
	}
	if r.Note != "" {
		fmt.Fprintf(&b, "\n> note: %s\n", r.Note)
	}
	if r.Regressed() {
		fmt.Fprintf(&b, "\n%d regression(s): %s\n", len(r.Regressions), strings.Join(r.Regressions, ", "))
	} else {
		b.WriteString("\nno regressions\n")
	}
	return b.String()
}
