package replay

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReplayReader drives the streaming JSONL trace reader and the
// full Analyze pipeline with arbitrary bytes. The contracts under fuzzing:
// never panic, terminate, keep the ReadStats invariants (the clean prefix
// can never exceed the physical lines consumed), and fail only with the
// documented sentinel errors.
func FuzzReplayReader(f *testing.F) {
	f.Add([]byte(`{"t":0,"kind":"trace_header","method":"rs","seed":7,"worker":2,"schema":1,"version":"x"}
{"t":1,"kind":"search_start","method":"rs","worker":2}
{"t":10,"kind":"eval_start","eval":0,"worker":0,"arch":"a"}
{"t":20,"kind":"eval_finish","eval":0,"worker":0,"reward":0.97,"arch":"a","seconds":1}
{"t":30,"kind":"search_finish","eval":1}
`))
	f.Add([]byte(`{"t":5,"kind":"epoch","eval":0,"epoch":1,"loss":0.5}` + "\n" + `{"t":3,"kind":"round","round":1}` + "\n"))
	f.Add([]byte(`{"t":-1,"kind":"eval_start"}`))                                  // negative offset: ErrSchema
	f.Add([]byte(`{"t":0,"kind":"trace_header","schema":99}`))                     // future schema: ErrSchemaVersion
	f.Add([]byte(`{"t":1,"kind":"eval_start","eval":1}` + "\n" + `{"t":2,"ki`))    // torn final line
	f.Add([]byte("\n\n{\"t\":1,\"kind\":\"nobody_knows_this_kind\"}\n"))           // unknown kind
	f.Add([]byte(`{"t":9223372036854775807,"kind":"eval_start","eval":2}` + "\n")) // max duration offset

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data), false)
		events := 0
		for {
			_, err := rd.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrSchema) && !errors.Is(err, ErrSchemaVersion) {
					t.Fatalf("undocumented reader error: %v", err)
				}
				break
			}
			events++
			if events > len(data)+1 {
				t.Fatalf("reader yielded %d events from %d bytes; not terminating", events, len(data))
			}
		}
		st := rd.Stats()
		if st.Events > st.Lines {
			t.Fatalf("clean prefix %d exceeds physical lines %d", st.Events, st.Lines)
		}
		if st.Truncated && st.TruncatedLine == 0 {
			t.Fatal("truncation reported without a line number")
		}

		// The one-pass analysis over the same bytes must hold up as well.
		a, err := Analyze(bytes.NewReader(data), Options{})
		if err != nil {
			if !errors.Is(err, ErrSchema) && !errors.Is(err, ErrSchemaVersion) {
				t.Fatalf("undocumented Analyze error: %v", err)
			}
			return
		}
		if a.Workers < 1 {
			t.Fatalf("analysis inferred %d workers; minimum is 1", a.Workers)
		}
		if a.Snapshot.Evals < 0 {
			t.Fatalf("negative eval count in snapshot: %+v", a.Snapshot)
		}
	})
}
