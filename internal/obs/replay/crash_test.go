package replay

// Crash-consistency coverage for the JSONL trace pipeline: a recorder
// killed mid-write leaves a torn final line, concurrent producers fan in
// through a Multi, and replay must recover the clean prefix in every case.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"podnas/internal/obs"
)

// TestReplayTornFinalLine: a process killed mid-write leaves a partial JSON
// object with no newline; replay recovers every complete line before it and
// reports exactly where the tear happened.
func TestReplayTornFinalLine(t *testing.T) {
	events := sampleRun()
	data := record(t, events)
	// Tear the last line: keep the trailing newline of line n-1, then a
	// partial object.
	lines := bytes.SplitAfter(data, []byte("\n"))
	var torn []byte
	for _, l := range lines[:len(lines)-2] {
		torn = append(torn, l...)
	}
	last := lines[len(lines)-2]
	torn = append(torn, last[:len(last)/2]...) // half an object, no newline

	a, err := Analyze(bytes.NewReader(torn), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Read.Truncated {
		t.Fatal("torn line not reported")
	}
	if a.Read.Events != len(events)-1 {
		t.Errorf("clean prefix %d events, want %d", a.Read.Events, len(events)-1)
	}
	if a.Read.TruncatedLine != len(events) {
		t.Errorf("tear reported at line %d, want %d", a.Read.TruncatedLine, len(events))
	}
	// The torn event was search_finish, so the recovered run is unfinished
	// and its snapshot equals a live aggregator fed the clean prefix.
	if a.Finished {
		t.Error("torn finish should leave the run unfinished")
	}
	live := obs.NewMetrics(2)
	for _, e := range events[:len(events)-1] {
		live.Record(e)
	}
	if !reflect.DeepEqual(a.Snapshot, live.Snapshot()) {
		t.Errorf("clean-prefix snapshot diverges:\nreplay: %+v\nlive:   %+v", a.Snapshot, live.Snapshot())
	}
}

// TestReplayMidFileCorruptionStopsAtCleanPrefix: corruption in the middle
// of a trace ends the clean prefix there — later valid lines are not
// trusted past a hole in the stream.
func TestReplayMidFileCorruptionStopsAtCleanPrefix(t *testing.T) {
	events := sampleRun()
	data := record(t, events)
	lines := bytes.SplitAfter(data, []byte("\n"))
	var mangled []byte
	for i, l := range lines {
		if i == 4 {
			mangled = append(mangled, []byte("{\"t\":zzz garbage\n")...)
			continue
		}
		mangled = append(mangled, l...)
	}
	a, err := Analyze(bytes.NewReader(mangled), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Read.Truncated || a.Read.TruncatedLine != 5 {
		t.Fatalf("read stats %+v", a.Read)
	}
	if a.Read.Events != 4 {
		t.Errorf("clean prefix %d events, want 4", a.Read.Events)
	}
}

// TestMultiInterleavedWritesReplay: many goroutines record through one
// Multi into a JSONL sink and a live Metrics at once. Every line of the
// resulting trace must decode (the sink's lock keeps lines atomic), and
// replaying it must reproduce the live aggregator's counters even though
// goroutine scheduling may have written offsets slightly out of order.
func TestMultiInterleavedWritesReplay(t *testing.T) {
	const workers, perWorker = 8, 50
	var buf bytes.Buffer
	jl := obs.NewJSONL(&buf)
	live := obs.NewMetrics(workers)
	multi := obs.NewMulti(live, jl)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				idx := w*perWorker + i
				arch := fmt.Sprintf("a-%d", idx)
				multi.Record(obs.Event{Kind: obs.KindEvalStart, Eval: idx, Worker: w, Arch: arch})
				if rng.Intn(8) == 0 {
					multi.Record(obs.Event{Kind: obs.KindEvalError, Eval: idx, Worker: w, Err: "boom"})
				} else {
					multi.Record(obs.Event{Kind: obs.KindEvalFinish, Eval: idx, Worker: w, Arch: arch, Reward: rng.Float64()})
				}
			}
		}(w)
	}
	wg.Wait()
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}

	a, err := Analyze(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Read.Truncated {
		t.Fatalf("interleaved trace reported truncated: %+v", a.Read)
	}
	if a.Read.Events != 2*workers*perWorker {
		t.Fatalf("decoded %d events, want %d", a.Read.Events, 2*workers*perWorker)
	}
	ls := live.Snapshot()
	rs := a.Snapshot
	if rs.Evals != ls.Evals || rs.Successes != ls.Successes || rs.Errors != ls.Errors {
		t.Errorf("replay counters %d/%d/%d vs live %d/%d/%d",
			rs.Evals, rs.Successes, rs.Errors, ls.Evals, ls.Successes, ls.Errors)
	}
	if rs.BestReward != ls.BestReward || rs.UniqueHigh != ls.UniqueHigh {
		t.Errorf("replay best/high %v/%d vs live %v/%d", rs.BestReward, rs.UniqueHigh, ls.BestReward, ls.UniqueHigh)
	}
	if rs.BusySeconds != ls.BusySeconds {
		t.Errorf("replay busy %v vs live %v", rs.BusySeconds, ls.BusySeconds)
	}
}

// TestReplayCrashedFileOnDisk drills the full path a real crash takes: a
// CreateJSONL sink writes a trace file, the "process" dies after a torn
// partial append, and AnalyzeFile recovers the clean prefix.
func TestReplayCrashedFileOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	jl, err := obs.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	events := sampleRun()
	for _, e := range events[:len(events)-3] {
		jl.Record(e)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash: a partial line lands after the clean prefix.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":123456,"kind":"eval_fin`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := AnalyzeFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Read.Truncated || a.Read.Events != len(events)-3 {
		t.Fatalf("recovered %d events (truncated=%v), want %d", a.Read.Events, a.Read.Truncated, len(events)-3)
	}
	if a.Snapshot.Evals == 0 {
		t.Error("clean prefix lost its evaluations")
	}
}
