package replay

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"podnas/internal/obs"
)

func analyzed(t *testing.T, events []obs.Event) *Analysis {
	t.Helper()
	a, err := Analyze(bytes.NewReader(record(t, events)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDiffSelfIsClean pins the CI contract: a run diffed against itself has
// zero deltas and zero regressions.
func TestDiffSelfIsClean(t *testing.T) {
	a := analyzed(t, sampleRun())
	r := Diff(a, a, Thresholds{})
	if r.Regressed() {
		t.Fatalf("self-diff regressed: %v", r.Regressions)
	}
	for _, d := range r.Deltas {
		if d.Delta != 0 || d.Regressed {
			t.Errorf("self-diff delta %+v", d)
		}
	}
	if r.Note != "" {
		t.Errorf("self-diff note %q", r.Note)
	}
	if !strings.Contains(r.Markdown(), "no regressions") {
		t.Error("markdown missing the all-clear")
	}
}

// TestDiffFlagsRegressions: adverse movements past their thresholds are
// flagged; improvements and within-budget drift are not.
func TestDiffFlagsRegressions(t *testing.T) {
	a := analyzed(t, sampleRun())

	// Candidate run: the high performer collapsed (0.97 → 0.90), dropping
	// best reward beyond 0.01, losing the unique-high architecture, and
	// moving the MA.
	events := sampleRun()
	worse := make([]obs.Event, len(events))
	copy(worse, events)
	for i, e := range worse {
		if e.Kind == obs.KindEvalFinish && e.Arch == "a" {
			e.Reward = 0.90
			worse[i] = e
		}
	}
	b := analyzed(t, worse)

	r := Diff(a, b, Thresholds{})
	if !r.Regressed() {
		t.Fatal("collapse not flagged")
	}
	got := map[string]bool{}
	for _, m := range r.Regressions {
		got[m] = true
	}
	for _, want := range []string{"best_reward", "reward_ma", "unique_high", "reward_ma@common_t"} {
		if !got[want] {
			t.Errorf("missing regression %q (have %v)", want, r.Regressions)
		}
	}
	if got["utilization_auc"] || got["evals_per_sec"] || got["errors"] {
		t.Errorf("schedule-identical metrics must not regress: %v", r.Regressions)
	}
	if !strings.Contains(r.Markdown(), "REGRESSED") {
		t.Error("markdown missing the flag")
	}

	// The reverse direction is an improvement, not a regression.
	if rr := Diff(b, a, Thresholds{}); rr.Regressed() {
		t.Errorf("improvement flagged: %v", rr.Regressions)
	}

	// Loosened thresholds absorb the movement; negative disables a check.
	if rr := Diff(a, b, Thresholds{BestReward: 0.5, RewardMA: 0.5, UniqueHigh: 5}); rr.Regressed() {
		t.Errorf("loose thresholds still regress: %v", rr.Regressions)
	}
	if rr := Diff(a, b, Thresholds{BestReward: -1, RewardMA: -1, UniqueHigh: -1}); rr.Regressed() {
		t.Errorf("disabled thresholds still regress: %v", rr.Regressions)
	}
}

// TestDiffErrorBudget: more failed evaluations than the baseline is a
// regression under the default zero budget.
func TestDiffErrorBudget(t *testing.T) {
	clean := []obs.Event{
		{T: ms(1), Kind: obs.KindSearchStart, Method: "RS", Worker: 1},
		{T: ms(2), Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "a"},
		{T: ms(5), Kind: obs.KindEvalFinish, Eval: 0, Worker: 0, Arch: "a", Reward: 0.5},
		{T: ms(6), Kind: obs.KindSearchFinish, Eval: 1},
	}
	flaky := []obs.Event{
		{T: ms(1), Kind: obs.KindSearchStart, Method: "RS", Worker: 1},
		{T: ms(2), Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "a"},
		{T: ms(5), Kind: obs.KindEvalFinish, Eval: 0, Worker: 0, Arch: "a", Reward: 0.5},
		{T: ms(5), Kind: obs.KindEvalStart, Eval: 1, Worker: 0, Arch: "b"},
		{T: ms(6), Kind: obs.KindEvalError, Eval: 1, Worker: 0, Err: "boom"},
		{T: ms(7), Kind: obs.KindSearchFinish, Eval: 2},
	}
	r := Diff(analyzed(t, clean), analyzed(t, flaky), Thresholds{})
	found := false
	for _, m := range r.Regressions {
		if m == "errors" {
			found = true
		}
	}
	if !found {
		t.Errorf("error increase not flagged: %v", r.Regressions)
	}
	if r.Note == "" {
		t.Error("differing eval counts should carry an alignment note")
	}
	// A one-error budget absorbs it.
	if rr := Diff(analyzed(t, clean), analyzed(t, flaky), Thresholds{Errors: 1}); func() bool {
		for _, m := range rr.Regressions {
			if m == "errors" {
				return true
			}
		}
		return false
	}() {
		t.Errorf("errors regressed despite budget: %v", rr.Regressions)
	}
}

// TestDiffThroughputRelative: the evals/sec budget scales with the baseline
// rate, so halving throughput regresses while a 10% dip does not.
func TestDiffThroughputRelative(t *testing.T) {
	fast := []obs.Event{
		{T: ms(1), Kind: obs.KindSearchStart, Method: "RS", Worker: 1},
		{T: ms(1), Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "a"},
		{T: ms(10), Kind: obs.KindEvalFinish, Eval: 0, Worker: 0, Arch: "a", Reward: 0.5},
		{T: ms(10), Kind: obs.KindSearchFinish, Eval: 1},
	}
	slow := []obs.Event{
		{T: ms(1), Kind: obs.KindSearchStart, Method: "RS", Worker: 1},
		{T: ms(1), Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "a"},
		{T: ms(25), Kind: obs.KindEvalFinish, Eval: 0, Worker: 0, Arch: "a", Reward: 0.5},
		{T: ms(25), Kind: obs.KindSearchFinish, Eval: 1},
	}
	r := Diff(analyzed(t, fast), analyzed(t, slow), Thresholds{})
	hit := false
	for _, m := range r.Regressions {
		if m == "evals_per_sec" {
			hit = true
		}
	}
	if !hit {
		t.Errorf("2.5× slowdown not flagged: %v", r.Regressions)
	}
	// Same run is within any relative budget.
	if rr := Diff(analyzed(t, fast), analyzed(t, fast), Thresholds{}); rr.Regressed() {
		t.Errorf("identical throughput regressed: %v", rr.Regressions)
	}
}

// TestDiffCommonHorizon: runs of different lengths compare reward at the
// shorter horizon, so a long run that started badly is caught even if its
// final MA recovered.
func TestDiffCommonHorizon(t *testing.T) {
	short := []obs.Event{
		{T: ms(1), Kind: obs.KindSearchStart, Method: "RS", Worker: 1},
		{T: ms(1), Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "a"},
		{T: ms(5), Kind: obs.KindEvalFinish, Eval: 0, Worker: 0, Arch: "a", Reward: 0.9},
		{T: ms(5), Kind: obs.KindSearchFinish, Eval: 1},
	}
	// Long run: terrible at the 5ms horizon (0.1), recovered later (final
	// MA pulled up by a 0.9 at 50ms).
	long := []obs.Event{
		{T: ms(1), Kind: obs.KindSearchStart, Method: "RS", Worker: 1},
		{T: ms(1), Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "b"},
		{T: ms(5), Kind: obs.KindEvalFinish, Eval: 0, Worker: 0, Arch: "b", Reward: 0.1},
		{T: ms(6), Kind: obs.KindEvalStart, Eval: 1, Worker: 0, Arch: "c"},
		{T: ms(50), Kind: obs.KindEvalFinish, Eval: 1, Worker: 0, Arch: "c", Reward: 0.9},
		{T: ms(50), Kind: obs.KindSearchFinish, Eval: 2},
	}
	r := Diff(analyzed(t, short), analyzed(t, long), Thresholds{})
	var aligned *Delta
	for i := range r.Deltas {
		if r.Deltas[i].Metric == "reward_ma@common_t" {
			aligned = &r.Deltas[i]
		}
	}
	if aligned == nil {
		t.Fatal("no time-aligned reward delta")
	}
	if !aligned.Regressed {
		t.Errorf("early collapse at common horizon not flagged: %+v", aligned)
	}
	if math.Abs(aligned.A-0.9) > 1e-12 || math.Abs(aligned.B-0.1) > 1e-12 {
		t.Errorf("aligned values %v vs %v", aligned.A, aligned.B)
	}
}
