package replay

import (
	"math"
	"sort"
)

// Histogram collects one latency population (seconds) and answers the
// quantile and bucket queries the reports are built from. Samples are kept
// exactly — traces hold at most a few thousand per phase — so quantiles are
// true order statistics, not sketch estimates.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one sample; non-finite or negative values are dropped (a
// latency can never be either — they would mean a corrupt trace pairing).
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between order statistics (the R-7 rule most tooling uses). Empty
// histograms return 0; q is clamped into [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	h.ensureSorted()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return h.samples[n-1]
	}
	return h.samples[lo]*(1-frac) + h.samples[lo+1]*frac
}

// P50, P90, and P99 are the report quantiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P90 returns the 90th-percentile sample.
func (h *Histogram) P90() float64 { return h.Quantile(0.90) }

// P99 returns the 99th-percentile sample.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Buckets splits the sample range into n equal-width buckets and returns
// the bucket lower edges (length n+1: the last entry is the upper bound)
// and per-bucket counts — the shape internal/plot renders as bars. A
// degenerate range (all samples equal) widens symmetrically so the single
// spike still draws.
func (h *Histogram) Buckets(n int) (edges []float64, counts []int) {
	if n < 1 {
		n = 1
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	if len(h.samples) == 0 {
		for i := range edges {
			edges[i] = float64(i) / float64(n)
		}
		return edges, counts
	}
	h.ensureSorted()
	lo, hi := h.samples[0], h.samples[len(h.samples)-1]
	if hi-lo < 1e-12 {
		lo, hi = lo-0.5, hi+0.5
	}
	width := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, v := range h.samples {
		b := int((v - lo) / width)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
