package replay

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"podnas/internal/metrics"
	"podnas/internal/obs"
)

// ms builds a pre-stamped offset so synthetic traces are deterministic.
func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// record encodes events through the real JSONL sink (exactly what
// `nasrun -trace` writes) and returns the bytes.
func record(t *testing.T, events []obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	for _, e := range events {
		j.Record(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sampleRun is a deterministic 2-worker schedule with a header, overlapping
// evaluations, one failure, epochs, checkpoints, supervision events, and a
// clean finish.
func sampleRun() []obs.Event {
	h := obs.NewHeader("RS", 9, 2, "test")
	h.T = 1 // pre-stamp so the trace is fully deterministic
	return []obs.Event{
		h,
		{T: ms(1), Kind: obs.KindSearchStart, Method: "RS", Worker: 2},
		{T: ms(2), Kind: obs.KindEvalStart, Eval: 0, Worker: 0, Arch: "a"},
		{T: ms(3), Kind: obs.KindEvalStart, Eval: 1, Worker: 1, Arch: "b"},
		{T: ms(4), Kind: obs.KindEpoch, Eval: 0, Epoch: 0, Loss: 0.5},
		{T: ms(6), Kind: obs.KindEpoch, Eval: 0, Epoch: 1, Loss: 0.3},
		{T: ms(8), Kind: obs.KindEvalFinish, Eval: 0, Worker: 0, Arch: "a", Reward: 0.97, Seconds: 0.006},
		{T: ms(9), Kind: obs.KindCheckpoint, Eval: 1},
		{T: ms(10), Kind: obs.KindEvalStart, Eval: 2, Worker: 0, Arch: "c"},
		{T: ms(11), Kind: obs.KindWorkerCrash, Worker: 1, Err: "signal: killed"},
		{T: ms(12), Kind: obs.KindWorkerRestart, Worker: 1, Attempt: 1},
		{T: ms(14), Kind: obs.KindEvalError, Eval: 1, Worker: 1, Err: "crash"},
		{T: ms(20), Kind: obs.KindEvalFinish, Eval: 2, Worker: 0, Arch: "c", Reward: 0.40, Seconds: 0.010},
		{T: ms(21), Kind: obs.KindCheckpoint, Eval: 3},
		{T: ms(22), Kind: obs.KindSearchFinish, Method: "RS", Eval: 3},
	}
}

func TestReaderCleanTrace(t *testing.T) {
	data := record(t, sampleRun())
	rd := NewReader(bytes.NewReader(data), false)
	n := 0
	for {
		_, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(sampleRun()) {
		t.Fatalf("read %d events, want %d", n, len(sampleRun()))
	}
	st := rd.Stats()
	if st.Truncated || st.Events != n || st.OutOfOrder != 0 || st.UnknownKinds != 0 {
		t.Errorf("stats %+v", st)
	}
	h, ok := rd.Header()
	if !ok || h.Method != "RS" || h.Seed != 9 || h.Worker != 2 || h.Schema != obs.SchemaVersion {
		t.Errorf("header %+v (ok=%v)", h, ok)
	}
}

func TestReaderRejectsFutureSchema(t *testing.T) {
	h := obs.NewHeader("RS", 1, 2, "future")
	h.T = 1
	h.Schema = obs.SchemaVersion + 1
	data := record(t, []obs.Event{h})
	rd := NewReader(bytes.NewReader(data), false)
	if _, err := rd.Next(); !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("future schema err = %v, want ErrSchemaVersion", err)
	}
	// The reader stays poisoned.
	if _, err := rd.Next(); !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("poisoned reader err = %v", err)
	}
	if _, err := Analyze(bytes.NewReader(data), Options{}); !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("Analyze err = %v, want ErrSchemaVersion", err)
	}
}

func TestReaderNegativeOffsetIsSchemaError(t *testing.T) {
	data := []byte(`{"t":-5,"kind":"epoch","eval":0,"worker":0,"epoch":0,"round":0,"attempt":0,"reward":0,"loss":0,"seconds":0}` + "\n")
	rd := NewReader(bytes.NewReader(data), false)
	if _, err := rd.Next(); !errors.Is(err, ErrSchema) {
		t.Fatalf("negative offset err = %v, want ErrSchema", err)
	}
}

func TestReaderMonotonicity(t *testing.T) {
	events := []obs.Event{
		{T: ms(5), Kind: obs.KindEvalStart, Eval: 0},
		{T: ms(3), Kind: obs.KindEvalStart, Eval: 1}, // runs backwards
		{T: ms(7), Kind: obs.KindEvalFinish, Eval: 0, Reward: 0.5},
	}
	data := record(t, events)

	// Tolerant mode counts the inversion and keeps going (live traces from
	// concurrent producers can legally interleave this way).
	rd := NewReader(bytes.NewReader(data), false)
	n := 0
	for {
		if _, err := rd.Next(); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 || rd.Stats().OutOfOrder != 1 {
		t.Fatalf("tolerant read n=%d stats=%+v", n, rd.Stats())
	}

	// Strict mode turns it into a schema error.
	rd = NewReader(bytes.NewReader(data), true)
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrSchema) {
		t.Fatalf("strict err = %v, want ErrSchema", err)
	}
}

func TestReaderUnknownKindsTolerated(t *testing.T) {
	data := append(record(t, sampleRun()[:3]),
		[]byte(`{"t":99000000,"kind":"from_the_future","eval":0,"worker":0,"epoch":0,"round":0,"attempt":0,"reward":0,"loss":0,"seconds":0}`+"\n")...)
	rd := NewReader(bytes.NewReader(data), false)
	n := 0
	for {
		if _, err := rd.Next(); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 || rd.Stats().UnknownKinds != 1 {
		t.Fatalf("n=%d stats=%+v", n, rd.Stats())
	}
}

// TestAnalyzeReconstructsLiveSnapshot is the package-level half of the
// live-vs-replay invariant: feeding the recorded JSONL back through Analyze
// must reproduce the exact snapshot a live obs.Metrics held after the same
// events — not approximately, bitwise (identical inputs, identical code).
func TestAnalyzeReconstructsLiveSnapshot(t *testing.T) {
	events := sampleRun()
	live := obs.NewMetrics(2)
	var buf bytes.Buffer
	jl := obs.NewJSONL(&buf)
	multi := obs.NewMulti(live, jl)
	for _, e := range events {
		multi.Record(e)
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}

	a, err := Analyze(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Snapshot, live.Snapshot()) {
		t.Errorf("replayed snapshot diverges:\nreplay: %+v\nlive:   %+v", a.Snapshot, live.Snapshot())
	}
	if a.Method != "RS" || a.Seed != 9 || a.Workers != 2 || a.Version != "test" {
		t.Errorf("header fields %q %d %d %q", a.Method, a.Seed, a.Workers, a.Version)
	}
	if !a.Finished {
		t.Error("finish event not noticed")
	}
}

func TestAnalyzeDerivedSeries(t *testing.T) {
	data := record(t, sampleRun())
	a, err := Analyze(bytes.NewReader(data), Options{Bins: 22})
	if err != nil {
		t.Fatal(err)
	}
	// Reward curve: MA over successful rewards (0.97, 0.40) at their finish
	// times; the final point equals the snapshot's live MA.
	if a.Reward.Len() != 2 {
		t.Fatalf("reward curve %d points", a.Reward.Len())
	}
	if got := a.Reward.Y[a.Reward.Len()-1]; math.Abs(got-a.Snapshot.RewardMA) > 1e-12 {
		t.Errorf("reward curve tail %v vs snapshot MA %v", got, a.Snapshot.RewardMA)
	}
	if a.Reward.X[0] != (8 * time.Millisecond).Seconds() {
		t.Errorf("first finish at %v", a.Reward.X[0])
	}

	// High-performer growth: only "a" (0.97 > 0.96) qualifies.
	if a.HighPerf.Len() != 2 || a.HighPerf.Y[1] != 1 {
		t.Errorf("highperf curve %+v", a.HighPerf)
	}
	if a.Snapshot.UniqueHigh != 1 {
		t.Errorf("unique high %d", a.Snapshot.UniqueHigh)
	}

	// Utilization trace: bin-summed busy seconds over slots × elapsed must
	// integrate back to the snapshot AUC (both sides are the same span set).
	var busy float64
	binWidth := a.Utilization.X[1] - a.Utilization.X[0]
	for _, u := range a.Utilization.Y {
		busy += u * float64(a.Workers) * binWidth
	}
	if math.Abs(busy-a.Snapshot.BusySeconds) > 1e-9 {
		t.Errorf("binned busy %v vs snapshot %v", busy, a.Snapshot.BusySeconds)
	}
	spans, wall := busyIntervals(sampleRun())
	if auc := metrics.UtilizationAUC(spans, 2, wall); math.Abs(auc-a.Snapshot.UtilizationAUC) > 1e-9 {
		t.Errorf("interval AUC %v vs snapshot %v", auc, a.Snapshot.UtilizationAUC)
	}
}

func TestAnalyzeLatencyHistograms(t *testing.T) {
	data := record(t, sampleRun())
	a, err := Analyze(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Eval latencies: eval0 6ms, eval1 11ms, eval2 10ms.
	ev := a.Latency[PhaseEval]
	if ev.N() != 3 {
		t.Fatalf("eval samples %d", ev.N())
	}
	if got := ev.Max(); math.Abs(got-0.011) > 1e-12 {
		t.Errorf("eval max %v", got)
	}
	if got := ev.P50(); math.Abs(got-0.010) > 1e-12 {
		t.Errorf("eval p50 %v", got)
	}
	// Epoch ticks for eval 0: dispatch(2ms)→4ms→6ms = 2ms spacing twice.
	ep := a.Latency[PhaseEpoch]
	if ep.N() != 2 || math.Abs(ep.Mean()-0.002) > 1e-12 {
		t.Errorf("epoch hist n=%d mean=%v", ep.N(), ep.Mean())
	}
	// Checkpoints at 9ms and 21ms, origin search_start at 1ms: 8ms, 12ms.
	ck := a.Latency[PhaseCheckpoint]
	if ck.N() != 2 || math.Abs(ck.Min()-0.008) > 1e-12 || math.Abs(ck.Max()-0.012) > 1e-12 {
		t.Errorf("checkpoint hist n=%d min=%v max=%v", ck.N(), ck.Min(), ck.Max())
	}
}

func TestAnalyzeSlotAttribution(t *testing.T) {
	data := record(t, sampleRun())
	a, err := Analyze(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Slots) != 2 {
		t.Fatalf("slots %+v", a.Slots)
	}
	w0, w1 := a.Slots[0], a.Slots[1]
	if w0.Worker != 0 || w0.Started != 2 || w0.Finished != 2 || w0.Errored != 0 {
		t.Errorf("worker 0 %+v", w0)
	}
	if w1.Worker != 1 || w1.Started != 1 || w1.Errored != 1 || w1.Crashes != 1 || w1.Restarts != 1 {
		t.Errorf("worker 1 %+v", w1)
	}
	// Worker 1's single 11ms evaluation vs the 9ms run mean is above 1.0
	// but cannot be flagged on one sample.
	if w1.StragglerScore <= 1 || w1.Straggler {
		t.Errorf("worker 1 straggler %+v", w1)
	}
}

// TestAnalyzeStragglerFlag: a slot consistently ~3× slower than its peer is
// flagged once it has the samples to stand on.
func TestAnalyzeStragglerFlag(t *testing.T) {
	var events []obs.Event
	tick := 0
	addEval := func(idx, worker, durMs int) {
		events = append(events,
			obs.Event{T: ms(tick), Kind: obs.KindEvalStart, Eval: idx, Worker: worker, Arch: "x"},
			obs.Event{T: ms(tick + durMs), Kind: obs.KindEvalFinish, Eval: idx, Worker: worker, Arch: "x", Reward: 0.5})
		tick += durMs + 1
	}
	addEval(0, 0, 2)
	addEval(1, 1, 9)
	addEval(2, 0, 2)
	addEval(3, 1, 9)
	events = append(events, obs.Event{T: ms(tick), Kind: obs.KindSearchFinish, Eval: 4})
	a, err := Analyze(bytes.NewReader(record(t, events)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Slots[1].Straggler || a.Slots[0].Straggler {
		t.Errorf("straggler flags %+v", a.Slots)
	}
}

// TestAnalyzeTruncatedMidRun: a trace cut before search_finish still
// analyzes, reports Finished=false, and charges open evaluations as busy up
// to the last known offset — matching the live aggregator's view at the
// same moment.
func TestAnalyzeTruncatedMidRun(t *testing.T) {
	events := sampleRun()
	cut := events[:9] // through eval 2's dispatch at 10ms; everything later dropped
	live := obs.NewMetrics(2)
	for _, e := range cut {
		live.Record(e)
	}
	a, err := Analyze(bytes.NewReader(record(t, cut)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Finished {
		t.Error("truncated run claims to have finished")
	}
	if !reflect.DeepEqual(a.Snapshot, live.Snapshot()) {
		t.Errorf("truncated replay snapshot diverges:\nreplay: %+v\nlive:   %+v", a.Snapshot, live.Snapshot())
	}
	// Open evals (1 and 2) are charged to the last offset (10ms) in the
	// busy intervals used for the utilization trace.
	spans, wall := busyIntervals(cut)
	if wall != 0.010 {
		t.Fatalf("wall %v", wall)
	}
	want := 0.006 + (0.010 - 0.003) + 0 // eval0 2→8ms, eval1 3→10ms, eval2 10→10ms
	if got := metrics.BusySeconds(spans); math.Abs(got-want) > 1e-12 {
		t.Errorf("busy %v, want %v", got, want)
	}
}

func TestAnalyzeHeaderlessTraceInfersShape(t *testing.T) {
	events := sampleRun()[1:] // drop the header
	a, err := Analyze(bytes.NewReader(record(t, events)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Header != nil || a.Method != "RS" || a.Workers != 2 || a.Seed != 0 {
		t.Errorf("headerless inference: header=%v method=%q workers=%d seed=%d", a.Header, a.Method, a.Workers, a.Seed)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	a, err := Analyze(bytes.NewReader(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Read.Events != 0 || a.Finished || a.Snapshot.Evals != 0 {
		t.Errorf("empty analysis %+v", a)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.P50() != 0 || h.Mean() != 0 || h.N() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must answer zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	h.Add(-1)
	if h.N() != 100 {
		t.Fatalf("n %d (non-finite/negative must be dropped)", h.N())
	}
	if got := h.P50(); math.Abs(got-50.5) > 1e-12 {
		t.Errorf("p50 %v", got)
	}
	if got := h.Quantile(0.90); math.Abs(got-90.1) > 1e-9 {
		t.Errorf("p90 %v", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("range %v..%v", h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-50.5) > 1e-12 {
		t.Errorf("mean %v", h.Mean())
	}
	edges, counts := h.Buckets(10)
	if len(edges) != 11 || len(counts) != 10 {
		t.Fatalf("bucket shape %d/%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Errorf("bucketed %d samples", total)
	}

	spike := NewHistogram()
	spike.Add(3)
	spike.Add(3)
	if _, counts := spike.Buckets(4); counts[0]+counts[1]+counts[2]+counts[3] != 2 {
		t.Error("degenerate-range buckets lose samples")
	}
}
