package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"podnas/internal/kernel"
)

// This file is the OpenMetrics text exposition: a hand-rolled, stdlib-only
// encoder for the subset of the format podnas emits (counters, gauges,
// histograms — no labels beyond histogram `le`, no exemplars, no units),
// and a strict validator shared by the unit tests, `nasreport metrics`,
// and the CI metrics-smoke job, so "parses in CI" and "parses in tests"
// mean the same thing.

// Metric family types in the exposition.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// OpenMetricsContentType is the negotiated content type of /metrics.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Bucket is one cumulative histogram bucket (count of observations ≤ LE).
type Bucket struct {
	LE    float64
	Count uint64
}

// Family is one metric family ready for exposition. Counter and gauge
// families carry Value; histogram families carry Buckets (cumulative,
// ascending LE, +Inf implied), Sum, and Count.
type Family struct {
	Name    string
	Help    string
	Type    string
	Value   float64
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// EncodeOpenMetrics writes the families as OpenMetrics text, ending with
// the mandatory `# EOF` line. Families with invalid names or types are an
// error, not a silent skip, since a partial exposition would pass casual
// inspection while dropping metrics.
func EncodeOpenMetrics(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool, len(fams))
	for _, f := range fams {
		if !validMetricName(f.Name) {
			return fmt.Errorf("obs: invalid metric name %q", f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("obs: duplicate metric family %q", f.Name)
		}
		seen[f.Name] = true
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		switch f.Type {
		case TypeCounter:
			fmt.Fprintf(bw, "%s_total %s\n", f.Name, formatValue(f.Value))
		case TypeGauge:
			fmt.Fprintf(bw, "%s %s\n", f.Name, formatValue(f.Value))
		case TypeHistogram:
			if !sort.SliceIsSorted(f.Buckets, func(i, j int) bool { return f.Buckets[i].LE < f.Buckets[j].LE }) {
				return fmt.Errorf("obs: histogram %q buckets not ascending", f.Name)
			}
			var prev uint64
			for _, b := range f.Buckets {
				if b.Count < prev {
					return fmt.Errorf("obs: histogram %q bucket counts not cumulative", f.Name)
				}
				prev = b.Count
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", f.Name, formatValue(b.LE), b.Count)
			}
			if prev > f.Count {
				return fmt.Errorf("obs: histogram %q count %d below last bucket %d", f.Name, f.Count, prev)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", f.Name, f.Count)
			fmt.Fprintf(bw, "%s_sum %s\n", f.Name, formatValue(f.Sum))
			fmt.Fprintf(bw, "%s_count %d\n", f.Name, f.Count)
		default:
			return fmt.Errorf("obs: metric family %q has unknown type %q", f.Name, f.Type)
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// omFamily is the validator's view of one declared family.
type omFamily struct {
	typ        string
	samples    int
	lastLE     float64
	lastBucket uint64
	infCount   uint64
	haveInf    bool
	count      uint64
	haveCount  bool
}

// ValidateOpenMetrics parses an exposition and checks the invariants the
// encoder promises: every sample belongs to a `# TYPE`-declared family with
// the suffix its type demands, histogram buckets are cumulative and carry a
// terminal +Inf equal to _count, and the stream ends with `# EOF`. Returns
// the declared family names in exposition order.
func ValidateOpenMetrics(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	fams := make(map[string]*omFamily)
	var order []string
	sawEOF := false
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", line)
		}
		if text == "# EOF" {
			sawEOF = true
			continue
		}
		if text == "" {
			return nil, fmt.Errorf("line %d: blank line not allowed", line)
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return nil, fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line", line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("line %d: invalid family name %q", line, name)
				}
				if typ != TypeCounter && typ != TypeGauge && typ != TypeHistogram {
					return nil, fmt.Errorf("line %d: unsupported type %q", line, typ)
				}
				if fams[name] != nil {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
				}
				fams[name] = &omFamily{typ: typ, lastLE: math.Inf(-1)}
				order = append(order, name)
			case "HELP":
				if fams[fields[2]] == nil {
					return nil, fmt.Errorf("line %d: HELP before TYPE for %q", line, fields[2])
				}
			default:
				return nil, fmt.Errorf("line %d: unknown comment keyword %q", line, fields[1])
			}
			continue
		}
		if err := validateSample(text, fams); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("exposition missing terminal # EOF")
	}
	for _, name := range order {
		f := fams[name]
		if f.samples == 0 {
			return nil, fmt.Errorf("family %q declared but has no samples", name)
		}
		if f.typ == TypeHistogram {
			if !f.haveInf {
				return nil, fmt.Errorf("histogram %q missing +Inf bucket", name)
			}
			if !f.haveCount {
				return nil, fmt.Errorf("histogram %q missing _count", name)
			}
			if f.infCount != f.count {
				return nil, fmt.Errorf("histogram %q +Inf bucket %d != count %d", name, f.infCount, f.count)
			}
		}
	}
	return order, nil
}

// validateSample checks one sample line against the declared families.
func validateSample(text string, fams map[string]*omFamily) error {
	sp := strings.IndexByte(text, ' ')
	if sp <= 0 {
		return fmt.Errorf("malformed sample %q", text)
	}
	series, valueText := text[:sp], text[sp+1:]
	// Split off the label set (only {le="..."} is ever emitted).
	name, le := series, ""
	if br := strings.IndexByte(series, '{'); br >= 0 {
		if !strings.HasSuffix(series, "}") {
			return fmt.Errorf("unterminated label set in %q", series)
		}
		name = series[:br]
		labels := series[br+1 : len(series)-1]
		const prefix = `le="`
		if !strings.HasPrefix(labels, prefix) || !strings.HasSuffix(labels, `"`) {
			return fmt.Errorf("unsupported label set %q", labels)
		}
		le = labels[len(prefix) : len(labels)-1]
	}
	value, err := strconv.ParseFloat(valueText, 64)
	if err != nil {
		return fmt.Errorf("bad value %q: %v", valueText, err)
	}
	// Map the sample name back to its family by type-mandated suffix.
	// Suffixed interpretations win only when the name really carries the
	// suffix AND the trimmed base is a declared family; otherwise the bare
	// name must match.
	for _, suffix := range []string{"_total", "_bucket", "_sum", "_count"} {
		if !strings.HasSuffix(name, suffix) {
			continue
		}
		if f := fams[strings.TrimSuffix(name, suffix)]; f != nil {
			return validateSuffix(strings.TrimSuffix(name, suffix), suffix, le, value, f)
		}
	}
	if f := fams[name]; f != nil {
		return validateSuffix(name, "", le, value, f)
	}
	return fmt.Errorf("sample %q has no declared family", name)
}

func validateSuffix(base, suffix, le string, value float64, f *omFamily) error {
	f.samples++
	switch f.typ {
	case TypeCounter:
		if suffix != "_total" {
			return fmt.Errorf("counter %q sample must use _total, got suffix %q", base, suffix)
		}
		if value < 0 {
			return fmt.Errorf("counter %q is negative", base)
		}
	case TypeGauge:
		if suffix != "" {
			return fmt.Errorf("gauge %q sample must use the bare name, got suffix %q", base, suffix)
		}
	case TypeHistogram:
		switch suffix {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("histogram %q bucket missing le label", base)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("histogram %q bad le %q: %v", base, le, err)
				}
			}
			if bound <= f.lastLE {
				return fmt.Errorf("histogram %q le %q not ascending", base, le)
			}
			f.lastLE = bound
			c := uint64(value)
			if c < f.lastBucket {
				return fmt.Errorf("histogram %q bucket counts not cumulative", base)
			}
			f.lastBucket = c
			if math.IsInf(bound, 1) {
				f.haveInf, f.infCount = true, c
			}
		case "_sum":
			// Any finite value is fine.
		case "_count":
			f.haveCount, f.count = true, uint64(value)
		default:
			return fmt.Errorf("histogram %q sample has suffix %q", base, suffix)
		}
	}
	return nil
}

// MetricsHandler serves the concatenated families from the given sources
// as one OpenMetrics exposition. Sources are evaluated per scrape, so the
// endpoint always reflects live state; a nil source is skipped.
func MetricsHandler(sources ...func() []Family) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var fams []Family
		for _, src := range sources {
			if src != nil {
				fams = append(fams, src()...)
			}
		}
		var buf bytes.Buffer
		if err := EncodeOpenMetrics(&buf, fams); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", OpenMetricsContentType)
		w.Write(buf.Bytes())
	})
}

// GaugeSource adapts one live float reading into a family source — the
// shape nasd uses to expose jobs.Manager queue depths without obs
// depending on the jobs package.
func GaugeSource(name, help string, read func() float64) func() []Family {
	return func() []Family {
		return []Family{{Name: name, Help: help, Type: TypeGauge, Value: read()}}
	}
}

// KernelFamilies exposes the hot-path compute counters from
// kernel.ReadStats — the GEMM call and floating-point-operation totals the
// paper's throughput accounting is built on.
func KernelFamilies() []Family {
	st := kernel.ReadStats()
	return []Family{
		{Name: "podnas_kernel_gemm_calls", Help: "GEMM invocations in the kernel hot path.", Type: TypeCounter, Value: float64(st.GemmCalls)},
		{Name: "podnas_kernel_gemm_flops", Help: "Floating-point operations executed by kernel GEMMs.", Type: TypeCounter, Value: float64(st.GemmFLOPs)},
	}
}

// Families renders the live aggregate state as exposition families: the
// lifecycle counters, the operational gauges, and the latency histograms.
func (m *Metrics) Families() []Family {
	m.mu.Lock()
	defer m.mu.Unlock()
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	fams := []Family{
		{Name: "podnas_evals", Help: "Terminal evaluations (successes + errors).", Type: TypeCounter, Value: float64(m.evals)},
		{Name: "podnas_eval_successes", Help: "Evaluations that returned a reward.", Type: TypeCounter, Value: float64(m.successes)},
		{Name: "podnas_eval_errors", Help: "Evaluations that failed.", Type: TypeCounter, Value: float64(m.errors)},
		{Name: "podnas_eval_retries", Help: "Transient evaluation failures retried.", Type: TypeCounter, Value: float64(m.retries)},
		{Name: "podnas_epochs", Help: "Training epochs completed across all evaluations.", Type: TypeCounter, Value: float64(m.epochs)},
		{Name: "podnas_checkpoints", Help: "Checkpoint writes committed.", Type: TypeCounter, Value: float64(m.checkpoints)},
		{Name: "podnas_worker_spawns", Help: "Worker processes or connections made ready.", Type: TypeCounter, Value: float64(m.spawns)},
		{Name: "podnas_worker_crashes", Help: "Worker deaths observed by the supervisor.", Type: TypeCounter, Value: float64(m.crashes)},
		{Name: "podnas_heartbeat_misses", Help: "Workers killed for going silent.", Type: TypeCounter, Value: float64(m.hbMisses)},
		{Name: "podnas_job_submits", Help: "Jobs admitted into the nasd queue.", Type: TypeCounter, Value: float64(m.jobSubmits)},
		{Name: "podnas_job_finishes", Help: "Jobs reaching a terminal or parked state.", Type: TypeCounter, Value: float64(m.jobFinishes)},
		{Name: "podnas_spans", Help: "Trace spans recorded.", Type: TypeCounter, Value: float64(m.spans)},
		{Name: "podnas_slo_breaches", Help: "SLO watch-loop breach windows opened.", Type: TypeCounter, Value: float64(m.sloBreaches)},
		{Name: "podnas_in_flight", Help: "Evaluations currently running.", Type: TypeGauge, Value: float64(len(m.inflight))},
		{Name: "podnas_workers", Help: "Configured evaluation-slot capacity.", Type: TypeGauge, Value: float64(m.workers)},
		{Name: "podnas_reward_ma", Help: "Window-100 moving-average reward.", Type: TypeGauge, Value: clamp(m.ma.Value())},
		{Name: "podnas_best_reward", Help: "Best reward observed.", Type: TypeGauge, Value: clamp(m.best)},
	}
	fams = append(fams,
		m.evalLat.family("podnas_eval_latency_seconds", "Wall-clock duration of terminal evaluations."),
		m.queueWait.family("podnas_queue_wait_seconds", "Job queue wait from admission to run start."),
	)
	return fams
}
