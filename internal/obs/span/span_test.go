package span

import (
	"context"
	"strings"
	"testing"
	"time"

	"podnas/internal/obs"
)

func TestNewTraceDeterministic(t *testing.T) {
	a := NewTrace("run/async/42")
	b := NewTrace("run/async/42")
	if a != b {
		t.Fatalf("same scope minted different contexts: %+v vs %+v", a, b)
	}
	if !a.Valid() {
		t.Fatalf("NewTrace produced invalid context: %+v", a)
	}
	c := NewTrace("run/async/43")
	if c.Trace == a.Trace {
		t.Fatalf("distinct scopes collided on trace ID %s", a.Trace)
	}
}

func TestDeriveDeterministicAndDistinct(t *testing.T) {
	root := NewTrace("job/j1")
	e0 := Derive(root, "eval", 0)
	e0b := Derive(root, "eval", 0)
	if e0 != e0b {
		t.Fatalf("Derive not deterministic: %+v vs %+v", e0, e0b)
	}
	if e0.Trace != root.Trace {
		t.Fatalf("child left the trace: %s vs %s", e0.Trace, root.Trace)
	}
	e1 := Derive(root, "eval", 1)
	if e1.Span == e0.Span {
		t.Fatalf("sibling spans collided on %s", e0.Span)
	}
	other := Derive(root, "rpc", 0)
	if other.Span == e0.Span {
		t.Fatalf("different operations collided on %s", e0.Span)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	root := NewTrace("run/rl/7")
	child := Derive(root, "eval", 3, 1)
	for _, c := range []Context{root, child} {
		enc := c.Encode()
		if !strings.HasPrefix(enc, "1-") {
			t.Fatalf("encoded form %q missing version prefix", enc)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if got != c {
			t.Fatalf("round trip changed context: %+v -> %+v", c, got)
		}
	}
	if (Context{}).Encode() != "" {
		t.Fatalf("zero context must encode empty, got %q", Context{}.Encode())
	}
}

func TestDecodeRejects(t *testing.T) {
	bad := []string{
		"",
		"1-abc",
		"1-abc-def-ghi",
		"2-0000000000000001-0000000000000002",
		"1-xyz-0000000000000002",
		"1-0000000000000001-xyz",
		"1--0000000000000002",
		"1-0000000000000000-0000000000000002",
		"1-0000000000000001-0000000000000000",
		"1-+1-2",
		"1-ffffffffffffffffff-1", // overflows uint64
	}
	for _, s := range bad {
		if c, err := Decode(s); err == nil {
			t.Errorf("Decode(%q) accepted as %+v, want error", s, c)
		}
	}
}

func TestParseIDWidth(t *testing.T) {
	id := ID(0xab)
	if id.String() != "00000000000000ab" {
		t.Fatalf("ID.String not fixed-width: %q", id.String())
	}
	got, err := ParseID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseID(%q) = %v, %v", id.String(), got, err)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := From(ctx); ok {
		t.Fatal("empty context claimed a span")
	}
	// Invalid contexts are not planted.
	if _, ok := From(With(ctx, Context{})); ok {
		t.Fatal("invalid context was planted")
	}
	c := NewTrace("run/async/1")
	got, ok := From(With(ctx, c))
	if !ok || got != c {
		t.Fatalf("From = %+v, %v; want %+v", got, ok, c)
	}
}

func TestEndEvent(t *testing.T) {
	root := NewTrace("job/j9")
	c := Derive(root, "eval", 4)
	e := End(c, root.Span, "eval", 1500*time.Millisecond)
	if e.Kind != obs.KindSpan {
		t.Fatalf("kind = %v, want span", e.Kind)
	}
	if e.Name != "eval" || e.Trace != c.Trace.String() || e.Span != c.Span.String() || e.Parent != root.Span.String() {
		t.Fatalf("bad span event: %+v", e)
	}
	if e.Seconds != 1.5 {
		t.Fatalf("seconds = %v, want 1.5", e.Seconds)
	}
	if e.T != 0 {
		t.Fatalf("T must be left for the sink to stamp, got %v", e.T)
	}
	rootEv := End(root, 0, "job", time.Second)
	if rootEv.Parent != "" {
		t.Fatalf("root span must have empty parent, got %q", rootEv.Parent)
	}
}

// FuzzSpanContextDecode asserts Decode never panics and that every
// accepted input round-trips to exactly the same encoded form.
func FuzzSpanContextDecode(f *testing.F) {
	f.Add("1-0000000000000001-0000000000000002")
	f.Add(NewTrace("run/async/42").Encode())
	f.Add(Derive(NewTrace("job/x"), "eval", 1).Encode())
	f.Add("")
	f.Add("1--")
	f.Add("9-1-1")
	f.Add("1-ffffffffffffffff-ffffffffffffffff")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := Decode(s)
		if err != nil {
			return
		}
		if !c.Valid() {
			t.Fatalf("Decode(%q) accepted invalid context %+v", s, c)
		}
		again, err := Decode(c.Encode())
		if err != nil || again != c {
			t.Fatalf("re-decode of %q (from %q) = %+v, %v", c.Encode(), s, again, err)
		}
	})
}
