// Package span is the distributed-tracing identity layer: trace and span
// IDs derived deterministically from identities the system already has
// (trace scope, job ID, eval index, lease, epoch), so the same run always
// mints the same tree and a replayed JSONL trace reconstructs it
// bit-identically. There is no RNG, no clock, and no global state here —
// a span's identity is a pure function of its ancestry, which is what
// keeps Workers=1 runs bit-identical with tracing on or off.
//
// Spans are recorded as obs.KindSpan events at their END: Seconds carries
// the duration and T (stamped by the sink) the end offset, so one event
// per span suffices and start = T − Seconds. Context propagates in-process
// through context.Context (With/From) and across processes as the compact
// Encode form ("1-<trace>-<span>") carried in a worker-protocol frame
// field.
package span

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"podnas/internal/obs"
)

// ID is a 64-bit trace or span identifier, rendered as 16 lowercase hex
// digits in events and on the wire.
type ID uint64

// String renders the ID as fixed-width hex ("%016x").
func (i ID) String() string { return fmt.Sprintf("%016x", uint64(i)) }

// ParseID decodes the fixed-width hex form. It accepts any valid hex
// uint64, not only 16-digit strings, so hand-written traces stay usable.
func ParseID(s string) (ID, error) {
	if s == "" {
		return 0, fmt.Errorf("span: empty ID")
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("span: bad ID %q: %w", s, err)
	}
	return ID(v), nil
}

// Context identifies one position in a trace: the trace it belongs to and
// the span that any child work should parent under. The zero Context means
// "tracing off" everywhere it is accepted.
type Context struct {
	Trace ID
	Span  ID
}

// Valid reports whether the context carries a usable identity.
func (c Context) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// contextVersion prefixes the encoded wire form so the layout can evolve
// without guessing; decoders reject versions they don't know.
const contextVersion = "1"

// Encode renders the context in the compact wire form "1-<trace>-<span>"
// carried in worker-protocol frames. The zero context encodes to "".
func (c Context) Encode() string {
	if !c.Valid() {
		return ""
	}
	return contextVersion + "-" + c.Trace.String() + "-" + c.Span.String()
}

// Decode parses the Encode form. It is deliberately strict — exactly three
// dash-separated fields, version "1", both IDs nonzero hex — because the
// input arrives over the network from peers of any age and a silently
// misparsed identity corrupts a whole tree. Fuzzed by FuzzSpanContextDecode.
func Decode(s string) (Context, error) {
	if s == "" {
		return Context{}, fmt.Errorf("span: empty context")
	}
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Context{}, fmt.Errorf("span: context %q must have 3 dash-separated fields, got %d", s, len(parts))
	}
	if parts[0] != contextVersion {
		return Context{}, fmt.Errorf("span: unknown context version %q", parts[0])
	}
	trace, err := ParseID(parts[1])
	if err != nil {
		return Context{}, err
	}
	span, err := ParseID(parts[2])
	if err != nil {
		return Context{}, err
	}
	c := Context{Trace: trace, Span: span}
	if !c.Valid() {
		return Context{}, fmt.Errorf("span: context %q has zero ID", s)
	}
	return c, nil
}

// FNV-1a 64-bit, the same stdlib-free mixing the worker protocol's
// LeaseID uses; good dispersion and byte-for-byte reproducible.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// nonzero keeps IDs out of the reserved zero value (zero = "no identity").
func nonzero(h uint64) ID {
	if h == 0 {
		return ID(fnvPrime)
	}
	return ID(h)
}

// NewTrace mints the root context for a trace scope — "run/<method>/<seed>"
// for one-shot runs, "job/<id>" for nasd jobs. The same scope always yields
// the same trace, which is what makes traces replayable and lets separate
// processes working the same job agree on identity without coordination.
func NewTrace(scope string) Context {
	h := fnvString(fnvOffset, scope)
	return Context{
		Trace: nonzero(h),
		Span:  nonzero(fnvUint(fnvString(h, "/root"), h)),
	}
}

// Derive mints a child context under parent: same trace, span ID hashed
// from the parent span, the operation name, and any extra identity keys
// (eval index, attempt, epoch, lease …). Deterministic by construction.
func Derive(parent Context, name string, keys ...uint64) Context {
	h := fnvUint(fnvOffset, uint64(parent.Trace))
	h = fnvUint(h, uint64(parent.Span))
	h = fnvString(h, name)
	for _, k := range keys {
		h = fnvUint(h, k)
	}
	return Context{Trace: parent.Trace, Span: nonzero(h)}
}

// ctxKey keeps the context.Context value collision-free per package.
type ctxKey int

const spanKey ctxKey = iota

// With plants the span context for downstream layers (runner → pool,
// serve → nn.Train). Invalid contexts are not planted.
func With(ctx context.Context, c Context) context.Context {
	if !c.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanKey, c)
}

// From returns the planted span context, if any. A nil ctx (nn.TrainConfig
// leaves Ctx nil outside a search) simply has none.
func From(ctx context.Context) (Context, bool) {
	if ctx == nil {
		return Context{}, false
	}
	c, ok := ctx.Value(spanKey).(Context)
	return c, ok
}

// End builds the obs event recording a completed span: c is the span's own
// identity, parent its parent span (zero for a root), d its duration. The
// caller may fill Eval/Worker/Epoch/Job before recording; T is left zero
// for the outermost sink to stamp as the end offset.
func End(c Context, parent ID, name string, d time.Duration) obs.Event {
	e := obs.Event{
		Kind:    obs.KindSpan,
		Name:    name,
		Trace:   c.Trace.String(),
		Span:    c.Span.String(),
		Seconds: d.Seconds(),
	}
	if parent != 0 {
		e.Parent = parent.String()
	}
	return e
}
