package obs

import (
	"math"
	"sort"
)

// latencyBuckets are the fixed upper bounds (seconds) shared by every
// latency histogram the /metrics endpoint exposes. Fixed buckets keep the
// exposition stable across runs and processes so scrapes can be compared
// without bucket-boundary drift; +Inf is implicit.
var latencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// histWindow bounds the exact-sample ring used for quantiles, so a
// long-lived daemon's p99 tracks recent behavior in O(1) memory while the
// bucket counters remain whole-lifetime monotone (as OpenMetrics requires).
const histWindow = 8192

// hist is a fixed-bucket histogram (for exposition) plus a bounded ring of
// exact samples (for tail quantiles). Not goroutine-safe; the owning
// Metrics mutex serializes access. Everything here is driven by recorded
// values only — no clocks — so a replayed trace reproduces it exactly.
type hist struct {
	counts  []uint64 // per-bucket (non-cumulative); last entry = +Inf
	sum     float64
	total   uint64
	samples []float64 // ring, most recent histWindow observations
	next    int       // ring write cursor
}

func newHist() *hist {
	return &hist{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *hist) add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(latencyBuckets, v) // first bucket with le >= v
	h.counts[i]++
	h.sum += v
	h.total++
	if len(h.samples) < histWindow {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
		h.next = (h.next + 1) % histWindow
	}
}

// quantile returns the q-th quantile (R-7, the same linear interpolation
// replay's Histogram uses) over the retained sample window; 0 when empty.
func (h *hist) quantile(q float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, h.samples)
	sort.Float64s(s)
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return s[lo] + frac*(s[hi]-s[lo])
}

// family renders the histogram as an OpenMetrics histogram family with
// cumulative bucket counts.
func (h *hist) family(name, help string) Family {
	f := Family{Name: name, Help: help, Type: TypeHistogram, Sum: h.sum, Count: h.total}
	var cum uint64
	for i, le := range latencyBuckets {
		cum += h.counts[i]
		f.Buckets = append(f.Buckets, Bucket{LE: le, Count: cum})
	}
	return f
}
