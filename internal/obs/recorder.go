package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Recorder consumes telemetry events. Record must be safe for concurrent
// use and cheap: producers call it from the search runners' hot paths with
// no buffering of their own. A nil Recorder is never passed — producers
// skip emission entirely when unconfigured, so the zero-cost path stays
// free of event construction (arch keys, error strings).
type Recorder interface {
	Record(Event)
}

// Nop is the do-nothing Recorder, for callers that want an explicit sink
// rather than leaving the option nil.
type Nop struct{}

// Record discards the event.
func (Nop) Record(Event) {}

// clock stamps events with monotonic offsets from a fixed start. Sinks
// stamp only events the producer left unstamped (T == 0), so a Multi can
// stamp once and fan out identical timestamps.
type clock struct{ start time.Time }

func newClock() clock { return clock{start: time.Now()} }

func (c clock) stamp(e *Event) {
	if e.T == 0 {
		e.T = time.Since(c.start)
	}
}

// Ring is a fixed-capacity in-memory event buffer that overwrites its
// oldest entries — the flight recorder for tests, live inspection, and
// post-run cross-checks. Safe for concurrent use.
type Ring struct {
	clock
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing returns a ring holding the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{clock: newClock(), buf: make([]Event, capacity)}
}

// Record stores the event, evicting the oldest when full.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	r.stamp(&e)
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Events returns a copy of the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events were ever recorded (including evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// JSONL streams events as one JSON object per line — the `nasrun -trace`
// sink. Writes are buffered; call Flush (or Close) to persist the tail.
// Safe for concurrent use. Write errors are sticky and reported by Err, so
// a full disk does not kill the search it is observing.
type JSONL struct {
	clock
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	err error
}

// NewJSONL writes events to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{clock: newClock(), bw: bw, enc: json.NewEncoder(bw)}
}

// CreateJSONL creates (truncating) the trace file at path.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := NewJSONL(f)
	j.c = f
	return j, nil
}

// AppendJSONL opens the trace at path for appending, so a resumed run (a
// restarted nasd job) continues the stream one incarnation left behind
// instead of truncating it. The existing tail is scanned for the largest
// recorded offset and the new sink's clock starts there, keeping offsets
// monotonic across incarnations (daemon downtime is elided, exactly as a
// replay of the stream would see it). fresh reports that the file held no
// decodable events, i.e. the caller should write a trace header first.
func AppendJSONL(path string) (*JSONL, bool, error) {
	var last time.Duration
	fresh := true
	if prev, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(prev)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e Event
			if err := json.Unmarshal(line, &e); err != nil {
				break // torn tail from the crash; replay tolerates it too
			}
			fresh = false
			if e.T > last {
				last = e.T
			}
		}
		prev.Close()
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, false, err
	}
	j := NewJSONL(f)
	j.c = f
	j.clock.start = j.clock.start.Add(-last)
	return j, fresh, nil
}

// Record appends one JSONL line.
func (j *JSONL) Record(e Event) {
	j.mu.Lock()
	j.stamp(&e)
	if j.err == nil {
		j.err = j.enc.Encode(e)
	}
	j.mu.Unlock()
}

// Flush writes buffered lines through to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and closes the underlying file (when opened by CreateJSONL).
func (j *JSONL) Close() error {
	err := j.Flush()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
		j.c = nil
	}
	return err
}

// Err returns the first write/encode error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Multi fans one event stream out to several sinks, stamping each event
// once so all sinks agree on timestamps (ring ↔ metrics cross-checks rely
// on this).
type Multi struct {
	clock
	sinks []Recorder
}

// NewMulti returns a fan-out recorder over the given sinks; nils are
// skipped.
func NewMulti(sinks ...Recorder) *Multi {
	m := &Multi{clock: newClock()}
	for _, s := range sinks {
		if s != nil {
			m.sinks = append(m.sinks, s)
		}
	}
	return m
}

// Record stamps the event and forwards it to every sink.
func (m *Multi) Record(e Event) {
	m.stamp(&e)
	for _, s := range m.sinks {
		s.Record(e)
	}
}

// ctxKey scopes the context values this package plants.
type ctxKey int

const (
	recorderKey ctxKey = iota
	evalKey
)

// WithRecorder returns a context carrying r, so layers below the runner
// (evaluators, nn.Train) can emit events without new parameters threading
// through every signature.
func WithRecorder(ctx context.Context, r Recorder) context.Context {
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom extracts the recorder planted by WithRecorder. ok is false
// when the context carries none (the common, cost-free case).
func RecorderFrom(ctx context.Context) (Recorder, bool) {
	if ctx == nil {
		return nil, false
	}
	r, ok := ctx.Value(recorderKey).(Recorder)
	return r, ok && r != nil
}

// WithEval returns a context carrying both the recorder and the evaluation
// index it is currently scoring, so deep layers can attribute their events.
func WithEval(ctx context.Context, r Recorder, eval int) context.Context {
	return context.WithValue(WithRecorder(ctx, r), evalKey, eval)
}

// EvalFrom extracts the evaluation index planted by WithEval.
func EvalFrom(ctx context.Context) (int, bool) {
	if ctx == nil {
		return 0, false
	}
	idx, ok := ctx.Value(evalKey).(int)
	return idx, ok
}
