package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"podnas/internal/kernel"
)

func TestKindJSONRoundTrip(t *testing.T) {
	for k := KindSearchStart; k <= KindJobEvict; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	var unknown Kind
	if err := json.Unmarshal([]byte(`"from_the_future"`), &unknown); err != nil {
		t.Fatalf("unknown kind must not error: %v", err)
	}
	if unknown != 0 {
		t.Errorf("unknown kind decoded to %v, want 0", unknown)
	}
	if err := json.Unmarshal([]byte(`7`), &unknown); err == nil {
		t.Error("numeric kind should be rejected")
	}
}

func TestRingKeepsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindEvalFinish, Eval: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Eval != 6+i {
			t.Errorf("slot %d holds eval %d, want %d", i, e.Eval, 6+i)
		}
		if e.T <= 0 {
			t.Errorf("event %d unstamped", i)
		}
	}
	if r.Total() != 10 {
		t.Errorf("total %d, want 10", r.Total())
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{Kind: KindEvalStart, Eval: 0})
	r.Record(Event{Kind: KindEvalFinish, Eval: 0})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != KindEvalStart || evs[1].Kind != KindEvalFinish {
		t.Fatalf("unexpected events %+v", evs)
	}
	if evs[1].T < evs[0].T {
		t.Error("timestamps must be monotonic")
	}
}

func TestJSONLWritesParseableLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(Event{Kind: KindEvalStart, Eval: 1, Arch: "1-2-3"})
	j.Record(Event{Kind: KindEvalFinish, Eval: 1, Reward: 0.9, Seconds: 0.25})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var kinds []string
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v (%s)", err, sc.Text())
		}
		kinds = append(kinds, m["kind"].(string))
	}
	if len(kinds) != 2 || kinds[0] != "eval_start" || kinds[1] != "eval_finish" {
		t.Fatalf("kinds %v", kinds)
	}
}

func TestCreateJSONLFile(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	j, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{Kind: KindSearchStart, Method: "RS"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(bytes.TrimSpace(data), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindSearchStart || e.Method != "RS" {
		t.Errorf("decoded %+v", e)
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(&errWriter{n: 0})
	for i := 0; i < 10000; i++ { // overflow the bufio buffer
		j.Record(Event{Kind: KindEpoch, Eval: i})
	}
	if j.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	// Recording after the error must stay a safe no-op.
	j.Record(Event{Kind: KindEpoch})
	if err := j.Flush(); err == nil {
		t.Error("flush should report the sticky error")
	}
}

func TestMultiStampsOnceAndFansOut(t *testing.T) {
	r1, r2 := NewRing(8), NewRing(8)
	m := NewMulti(r1, nil, r2)
	m.Record(Event{Kind: KindEvalStart, Eval: 3})
	e1, e2 := r1.Events(), r2.Events()
	if len(e1) != 1 || len(e2) != 1 {
		t.Fatalf("fan-out %d/%d", len(e1), len(e2))
	}
	if e1[0].T != e2[0].T {
		t.Errorf("sinks disagree on timestamp: %v vs %v", e1[0].T, e2[0].T)
	}
	if e1[0].T == 0 {
		t.Error("multi did not stamp")
	}
}

func TestContextHelpers(t *testing.T) {
	if _, ok := RecorderFrom(context.Background()); ok {
		t.Error("empty context should carry no recorder")
	}
	if _, ok := RecorderFrom(nil); ok { //nolint:staticcheck // nil-safety is part of the contract
		t.Error("nil context should carry no recorder")
	}
	r := NewRing(4)
	ctx := WithEval(context.Background(), r, 7)
	got, ok := RecorderFrom(ctx)
	if !ok || got != Recorder(r) {
		t.Fatal("recorder not recovered from context")
	}
	idx, ok := EvalFrom(ctx)
	if !ok || idx != 7 {
		t.Fatalf("eval index %d/%v", idx, ok)
	}
}

func TestMetricsStreamingMatchesBatch(t *testing.T) {
	// Synthesize a deterministic 2-worker schedule with overlapping
	// evaluations, then check the streaming aggregates against direct batch
	// computations over the same event stream — the same cross-check the
	// root package runs against a real search and hpcsim's offline AUC.
	m := NewMetricsOpts(2, MetricsOptions{Window: 3, HighThreshold: 0.5})
	type span struct {
		eval   int
		start  time.Duration
		finish time.Duration
		reward float64
		arch   string
		fail   bool
	}
	spans := []span{
		{0, 1 * time.Millisecond, 5 * time.Millisecond, 0.30, "a", false},
		{1, 2 * time.Millisecond, 9 * time.Millisecond, 0.70, "b", false},
		{2, 5 * time.Millisecond, 12 * time.Millisecond, 0, "c", true},
		{3, 9 * time.Millisecond, 14 * time.Millisecond, 0.80, "d", false},
		{4, 12 * time.Millisecond, 20 * time.Millisecond, 0.80, "d", false},
		{5, 14 * time.Millisecond, 21 * time.Millisecond, 0.10, "e", false},
	}
	type stamped struct {
		t time.Duration
		e Event
	}
	var timeline []stamped
	for _, s := range spans {
		timeline = append(timeline, stamped{s.start, Event{T: s.start, Kind: KindEvalStart, Eval: s.eval, Arch: s.arch}})
		fin := Event{T: s.finish, Kind: KindEvalFinish, Eval: s.eval, Reward: s.reward, Arch: s.arch}
		if s.fail {
			fin = Event{T: s.finish, Kind: KindEvalError, Eval: s.eval, Err: "boom"}
		}
		timeline = append(timeline, stamped{s.finish, fin})
	}
	// Deliver in time order, as a live run would.
	for i := 0; i < len(timeline); i++ {
		for j := i + 1; j < len(timeline); j++ {
			if timeline[j].t < timeline[i].t {
				timeline[i], timeline[j] = timeline[j], timeline[i]
			}
		}
	}
	for _, s := range timeline {
		m.Record(s.e)
	}
	snap := m.Snapshot()

	if snap.Evals != 6 || snap.Successes != 5 || snap.Errors != 1 {
		t.Fatalf("counts %+v", snap)
	}
	// Batch busy time: sum of spans, the interval accounting hpcsim's
	// finalizeWithBusy uses before normalizing by nodes × wall time.
	var busy time.Duration
	for _, s := range spans {
		busy += s.finish - s.start
	}
	last := 21 * time.Millisecond
	wantAUC := busy.Seconds() / (2 * last.Seconds())
	if diff := snap.UtilizationAUC - wantAUC; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("live AUC %.15f vs batch %.15f", snap.UtilizationAUC, wantAUC)
	}
	// Batch moving average, window 3, over successful rewards in completion
	// order: 0.30, 0.70, 0.80, 0.80, 0.10 -> mean of the last 3.
	want := (0.80 + 0.80 + 0.10) / 3
	if diff := snap.RewardMA - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("reward MA %.15f vs %.15f", snap.RewardMA, want)
	}
	if snap.BestReward != 0.80 {
		t.Errorf("best %v", snap.BestReward)
	}
	// Unique high: rewards > 0.5 with distinct arch keys: "b" and "d".
	if snap.UniqueHigh != 2 {
		t.Errorf("unique high %d, want 2", snap.UniqueHigh)
	}
	if snap.ElapsedSeconds != last.Seconds() {
		t.Errorf("elapsed %v", snap.ElapsedSeconds)
	}
	if snap.EvalsPerSec <= 0 {
		t.Errorf("evals/sec %v", snap.EvalsPerSec)
	}
}

func TestMetricsInFlightUtilization(t *testing.T) {
	m := NewMetrics(1)
	m.Record(Event{T: 1 * time.Millisecond, Kind: KindEvalStart, Eval: 0})
	m.Record(Event{T: 3 * time.Millisecond, Kind: KindEpoch, Eval: 0, Epoch: 0})
	snap := m.Snapshot()
	if snap.InFlight != 1 {
		t.Fatalf("in flight %d", snap.InFlight)
	}
	// Busy 1ms..3ms of a 3ms window.
	want := 2.0 / 3.0
	if diff := snap.UtilizationAUC - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("in-flight AUC %.15f, want %.15f", snap.UtilizationAUC, want)
	}
	if snap.Epochs != 1 {
		t.Errorf("epochs %d", snap.Epochs)
	}
}

// TestMetricsFinishClosesInflight is the regression test for truncated-run
// utilization: an evaluation still in flight at search_finish was busy until
// the finish event, so it must be folded into the committed busy time (the
// same interval hpcsim's trapezoidal accounting would integrate) and the
// in-flight set must settle to empty.
func TestMetricsFinishClosesInflight(t *testing.T) {
	m := NewMetrics(2)
	m.Record(Event{T: 1 * time.Millisecond, Kind: KindEvalStart, Eval: 0})
	m.Record(Event{T: 2 * time.Millisecond, Kind: KindEvalStart, Eval: 1})
	m.Record(Event{T: 5 * time.Millisecond, Kind: KindEvalFinish, Eval: 0, Reward: 0.4})
	// Eval 1 never finishes: the run is cancelled and closes at t=8ms.
	m.Record(Event{T: 8 * time.Millisecond, Kind: KindSearchFinish, Eval: 1})
	snap := m.Snapshot()
	if snap.InFlight != 0 {
		t.Fatalf("in flight after finish %d, want 0", snap.InFlight)
	}
	// Busy spans: eval 0 over [1,5]ms, eval 1 over [2,8]ms — the interval
	// set hpcsim would integrate — over 2 slots × 8ms elapsed.
	wantBusy := (4 + 6) * time.Millisecond
	if snap.BusySeconds != wantBusy.Seconds() {
		t.Errorf("busy %v, want %v", snap.BusySeconds, wantBusy.Seconds())
	}
	wantAUC := wantBusy.Seconds() / (2 * (8 * time.Millisecond).Seconds())
	if diff := snap.UtilizationAUC - wantAUC; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("truncated-run AUC %.15f, want %.15f", snap.UtilizationAUC, wantAUC)
	}
	// The interrupted evaluation is not a completion: only its busy time
	// counts.
	if snap.Evals != 1 || snap.Successes != 1 {
		t.Errorf("counts %+v", snap)
	}
}

// TestHeaderEvent pins the trace-header record shape and its JSON names,
// which the replay subsystem and external tooling key on.
func TestHeaderEvent(t *testing.T) {
	h := NewHeader("RS", 42, 4, "0.4.0")
	if h.Kind != KindTraceHeader || h.Schema != SchemaVersion {
		t.Fatalf("header %+v", h)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["kind"] != "trace_header" || m["method"] != "RS" ||
		m["seed"] != float64(42) || m["worker"] != float64(4) ||
		m["schema"] != float64(SchemaVersion) || m["version"] != "0.4.0" {
		t.Errorf("header JSON %v", m)
	}
	// Metrics must tolerate (and ignore) the header without disturbing
	// aggregates.
	mt := NewMetrics(2)
	mt.Record(h)
	if s := mt.Snapshot(); s.Evals != 0 || s.InFlight != 0 {
		t.Errorf("header perturbed metrics: %+v", s)
	}
}

func TestMetricsWorkerCounters(t *testing.T) {
	m := NewMetrics(2)
	m.Record(Event{Kind: KindWorkerSpawn, Worker: 0})
	m.Record(Event{Kind: KindWorkerSpawn, Worker: 1})
	m.Record(Event{Kind: KindWorkerCrash, Worker: 1, Err: "signal: killed"})
	m.Record(Event{Kind: KindWorkerRestart, Worker: 1, Attempt: 1})
	m.Record(Event{Kind: KindWorkerSpawn, Worker: 1})
	m.Record(Event{Kind: KindHeartbeatMiss, Worker: 0})
	m.Record(Event{Kind: KindSpecLaunch, Eval: 9})
	m.Record(Event{Kind: KindSpecWin, Eval: 9})
	m.Record(Event{Kind: KindCheckpoint, Eval: 4})
	snap := m.Snapshot()
	if snap.WorkerSpawns != 3 || snap.WorkerCrashes != 1 || snap.WorkerRestarts != 1 {
		t.Errorf("supervision counters %+v", snap)
	}
	if snap.HeartbeatMisses != 1 || snap.Speculations != 1 || snap.SpeculativeWins != 1 {
		t.Errorf("liveness counters %+v", snap)
	}
	if snap.Checkpoints != 1 {
		t.Errorf("checkpoints %d", snap.Checkpoints)
	}
	pw := snap.PerWorkerCounters
	if pw[1].Spawns != 2 || pw[1].Crashes != 1 || pw[1].Restarts != 1 || pw[0].HeartbeatMisses != 1 {
		t.Errorf("per-worker %+v", pw)
	}
}

func TestMetricsSnapshotJSONSafe(t *testing.T) {
	// A fresh aggregator (best = -Inf internally) must still produce a
	// JSON-encodable snapshot, or expvar's /debug/vars would break.
	m := NewMetrics(1)
	if _, err := json.Marshal(m.Snapshot()); err != nil {
		t.Fatalf("empty snapshot not JSON safe: %v", err)
	}
	m.Record(Event{Kind: KindEvalStart, Eval: 0})
	m.Record(Event{Kind: KindEvalFinish, Eval: 0, Reward: 0.5})
	if _, err := json.Marshal(m.Snapshot()); err != nil {
		t.Fatalf("snapshot not JSON safe: %v", err)
	}
}

func TestPublishKernelStats(t *testing.T) {
	name := "podnas.test.kernel"
	if !PublishKernelStats(name) {
		t.Fatal("first kernel-stats publish failed")
	}
	if PublishKernelStats(name) {
		t.Error("second publish under the same name must refuse")
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("kernel stats not registered")
	}
	var s kernel.Stats
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("kernel stats snapshot is not JSON: %v", err)
	}
}

func TestPublishAndHTTPHandler(t *testing.T) {
	m := NewMetrics(2)
	m.Record(Event{Kind: KindEvalStart, Eval: 0})
	m.Record(Event{Kind: KindEvalFinish, Eval: 0, Reward: 0.42, Arch: "x"})
	name := "podnas.test.metrics"
	if !m.Publish(name) {
		t.Fatal("first publish failed")
	}
	if m.Publish(name) {
		t.Error("second publish under the same name must refuse")
	}
	srv, ln, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars[name]
	if !ok {
		t.Fatalf("%s missing from /debug/vars", name)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Successes != 1 || snap.BestReward != 0.42 {
		t.Errorf("served snapshot %+v", snap)
	}
	// pprof index must answer too.
	pp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof status %d", pp.StatusCode)
	}
}

func TestRecordersAreRaceFree(t *testing.T) {
	ring := NewRing(64)
	mtr := NewMetrics(4)
	jl := NewJSONL(io.Discard)
	multi := NewMulti(ring, mtr, jl)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := w*1000 + i
				multi.Record(Event{Kind: KindEvalStart, Eval: idx, Worker: w})
				multi.Record(Event{Kind: KindEvalFinish, Eval: idx, Worker: w, Reward: 0.5})
				_ = mtr.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := mtr.Snapshot().Evals; got != 8*200 {
		t.Errorf("evals %d, want %d", got, 8*200)
	}
	if ring.Total() != 2*8*200 {
		t.Errorf("ring total %d", ring.Total())
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestNopRecorder(t *testing.T) {
	var r Recorder = Nop{}
	r.Record(Event{Kind: KindEvalStart}) // must not panic
}
