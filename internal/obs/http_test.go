package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestHandlerMounts(t *testing.T) {
	m := NewMetrics(1)
	h := Handler(m.Families)
	cases := []struct {
		path     string
		contains string
	}{
		{"/debug/vars", "{"},
		{"/debug/pprof/", "profile"},
		{"/metrics", "# EOF"},
	}
	for _, tc := range cases {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", tc.path, nil))
		if rr.Code != http.StatusOK {
			t.Errorf("%s: status %d", tc.path, rr.Code)
			continue
		}
		if !strings.Contains(rr.Body.String(), tc.contains) {
			t.Errorf("%s: body missing %q", tc.path, tc.contains)
		}
	}
}

func TestHandlerWithoutSourcesHasNoMetrics(t *testing.T) {
	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("/metrics without sources: status %d, want 404", rr.Code)
	}
}

func TestServeResolvesAndShutsDownCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, ln, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	addr := ln.Addr().String()
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("listener did not resolve :0, got %s", addr)
	}

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("server still accepting after Close")
	}

	// The accept loop and per-connection goroutines must wind down; allow
	// the runtime a few scheduling rounds before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after shutdown: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestServeBadAddr(t *testing.T) {
	if _, _, err := Serve("256.256.256.256:99999"); err == nil {
		t.Fatal("Serve accepted an impossible address")
	}
}
