package obs

import (
	"expvar"

	"podnas/internal/kernel"
)

// DefaultKernelVarName is the expvar name the compute-kernel counters
// are published under.
const DefaultKernelVarName = "podnas.kernel"

// PublishKernelStats registers the cumulative kernel counters
// (kernel.ReadStats: GEMM calls and FLOPs) as an expvar Func under name
// (empty = DefaultKernelVarName), so a live run exposes its effective
// GEMM throughput at /debug/vars next to the search snapshot. Returns
// false when the name is already taken (expvar forbids
// re-registration, e.g. across tests or repeated runs in one process).
func PublishKernelStats(name string) bool {
	if name == "" {
		name = DefaultKernelVarName
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return kernel.ReadStats() }))
	return true
}
