package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability mux served by `nasrun -obs`: the expvar
// JSON snapshot at /debug/vars (including any Metrics published there), the
// full pprof suite under /debug/pprof/, and — when family sources are given
// — the OpenMetrics exposition at /metrics. Handlers are mounted explicitly
// rather than via the net/http/pprof side-effect registration, so nothing
// leaks onto http.DefaultServeMux.
func Handler(metricSources ...func() []Family) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if len(metricSources) > 0 {
		mux.Handle("/metrics", MetricsHandler(metricSources...))
	}
	return mux
}

// Serve starts the observability listener on addr (e.g. ":6060") and serves
// Handler on it in the background. It returns the bound listener (its Addr
// resolves ":0" for tests) and the server for shutdown. The server runs
// until closed; serve errors after Close are discarded.
func Serve(addr string, metricSources ...func() []Family) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(metricSources...), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln, nil
}
