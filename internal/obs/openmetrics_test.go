package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestEncodeOpenMetricsRoundTrip(t *testing.T) {
	m := NewMetrics(2)
	m.Record(Event{T: 1 * time.Second, Kind: KindEvalStart, Eval: 0})
	m.Record(Event{T: 3 * time.Second, Kind: KindEvalFinish, Eval: 0, Reward: 0.9, Seconds: 2})
	m.Record(Event{T: 4 * time.Second, Kind: KindSpan, Name: "queue_wait", Seconds: 0.7})
	m.Record(Event{T: 5 * time.Second, Kind: KindSLOBreach, Name: "eval_p99"})

	var buf bytes.Buffer
	if err := EncodeOpenMetrics(&buf, m.Families()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out := buf.String()
	names, err := ValidateOpenMetrics(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own exposition failed validation: %v\n%s", err, out)
	}
	want := map[string]bool{
		"podnas_evals":                false,
		"podnas_eval_latency_seconds": false,
		"podnas_queue_wait_seconds":   false,
		"podnas_slo_breaches":         false,
		"podnas_in_flight":            false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("exposition missing family %q\n%s", n, out)
		}
	}
	for _, line := range []string{
		"podnas_evals_total 1",
		"podnas_slo_breaches_total 1",
		`podnas_eval_latency_seconds_bucket{le="+Inf"} 1`,
		"podnas_eval_latency_seconds_count 1",
		"# EOF",
	} {
		if !strings.Contains(out, line+"\n") && !strings.HasSuffix(out, line+"\n") {
			t.Errorf("exposition missing line %q\n%s", line, out)
		}
	}
}

func TestEncodeOpenMetricsRejectsBadFamilies(t *testing.T) {
	cases := []struct {
		name string
		fams []Family
	}{
		{"bad name", []Family{{Name: "has space", Type: TypeGauge}}},
		{"bad type", []Family{{Name: "x", Type: "summary"}}},
		{"duplicate", []Family{{Name: "x", Type: TypeGauge}, {Name: "x", Type: TypeGauge}}},
		{"non-cumulative", []Family{{Name: "h", Type: TypeHistogram, Buckets: []Bucket{{LE: 1, Count: 5}, {LE: 2, Count: 3}}, Count: 5}}},
		{"unsorted", []Family{{Name: "h", Type: TypeHistogram, Buckets: []Bucket{{LE: 2, Count: 1}, {LE: 1, Count: 2}}, Count: 2}}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := EncodeOpenMetrics(&buf, tc.fams); err == nil {
			t.Errorf("%s: encode accepted invalid input", tc.name)
		}
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := []struct{ name, text string }{
		{"missing EOF", "# TYPE a gauge\na 1\n"},
		{"content after EOF", "# TYPE a gauge\na 1\n# EOF\na 2\n"},
		{"undeclared family", "b_total 1\n# EOF\n"},
		{"counter without total", "# TYPE a counter\na 1\n# EOF\n"},
		{"gauge with total", "# TYPE a gauge\na_total 1\n# EOF\n"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n"},
		{"family without samples", "# TYPE a gauge\n# EOF\n"},
		{"histogram missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n# EOF\n"},
		{"histogram inf mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n# EOF\n"},
		{"histogram le descending", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n# EOF\n"},
		{"bad value", "# TYPE a gauge\na one\n# EOF\n"},
		{"blank line", "# TYPE a gauge\n\na 1\n# EOF\n"},
	}
	for _, tc := range cases {
		if _, err := ValidateOpenMetrics(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: validator accepted invalid exposition", tc.name)
		}
	}
}

func TestValidateOpenMetricsAcceptsMinimal(t *testing.T) {
	text := "# TYPE up gauge\n# HELP up liveness\nup 1\n# EOF\n"
	names, err := ValidateOpenMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatalf("minimal exposition rejected: %v", err)
	}
	if len(names) != 1 || names[0] != "up" {
		t.Fatalf("names = %v", names)
	}
}

func TestMetricsHandler(t *testing.T) {
	m := NewMetrics(1)
	m.Record(Event{T: time.Second, Kind: KindEvalStart, Eval: 0})
	m.Record(Event{T: 2 * time.Second, Kind: KindEvalFinish, Eval: 0, Reward: 0.5, Seconds: 1})
	extra := GaugeSource("podnas_jobs_queued", "Jobs waiting in the nasd queue.", func() float64 { return 4 })

	h := MetricsHandler(m.Families, KernelFamilies, extra, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != OpenMetricsContentType {
		t.Fatalf("content type %q", ct)
	}
	names, err := ValidateOpenMetrics(rr.Body)
	if err != nil {
		t.Fatalf("handler exposition invalid: %v", err)
	}
	got := strings.Join(names, ",")
	for _, want := range []string{"podnas_kernel_gemm_flops", "podnas_jobs_queued", "podnas_eval_latency_seconds"} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %s (families: %s)", want, got)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := newHist()
	if q := h.quantile(0.99); q != 0 {
		t.Fatalf("empty hist p99 = %v", q)
	}
	for i := 1; i <= 100; i++ {
		h.add(float64(i))
	}
	if p50 := h.quantile(0.5); p50 < 50 || p50 > 51 {
		t.Errorf("p50 = %v", p50)
	}
	if p99 := h.quantile(0.99); p99 < 99 || p99 > 100 {
		t.Errorf("p99 = %v", p99)
	}
	f := h.family("x_seconds", "test")
	if f.Count != 100 {
		t.Errorf("count = %d", f.Count)
	}
	if len(f.Buckets) != len(latencyBuckets) {
		t.Errorf("buckets = %d", len(f.Buckets))
	}
}
