package slo

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"podnas/internal/obs"
)

// countBundles returns the slo-* profile files currently in dir.
func countBundles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read dir: %v", err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "slo-") {
			out = append(out, e.Name())
		}
	}
	return out
}

func breaches(ring *obs.Ring) []obs.Event {
	var out []obs.Event
	for _, e := range ring.Events() {
		if e.Kind == obs.KindSLOBreach {
			out = append(out, e)
		}
	}
	return out
}

func TestWatcherCapturesOncePerBreachWindow(t *testing.T) {
	dir := t.TempDir()
	ring := obs.NewRing(64)

	// The snapshot source is the injected straggler: p99 starts breached,
	// recovers, then breaches again.
	p99 := 0.5
	w, err := New(Options{
		Targets:    Targets{EvalP99: 100 * time.Millisecond},
		Dir:        dir,
		Interval:   time.Hour, // ticks never fire; Poll drives the test
		CPUProfile: 20 * time.Millisecond,
		Snapshot:   func() obs.Snapshot { return obs.Snapshot{EvalP99Seconds: p99} },
		Recorder:   ring,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()

	// Breached on every poll, but only the first poll of the window captures.
	w.Poll()
	w.Poll()
	w.Poll()
	if got := breaches(ring); len(got) != 1 {
		t.Fatalf("breach events = %d, want exactly 1: %+v", len(got), got)
	}
	files := countBundles(t, dir)
	if len(files) != 2 { // .cpu.pprof + .heap.pprof
		t.Fatalf("bundle files = %v, want cpu+heap pair", files)
	}
	for _, f := range files {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil || st.Size() == 0 {
			t.Fatalf("bundle file %s empty or unreadable: %v", f, err)
		}
	}
	ev := breaches(ring)[0]
	if ev.Name != "eval_p99" {
		t.Fatalf("breach target = %q", ev.Name)
	}
	if ev.Seconds != 0.5 {
		t.Fatalf("observed value = %v", ev.Seconds)
	}
	if ev.Err != "" {
		t.Fatalf("capture error: %s", ev.Err)
	}
	if !strings.Contains(ev.Ident, "slo-eval_p99") {
		t.Fatalf("bundle prefix = %q", ev.Ident)
	}

	// Recovery re-arms the window; the next breach captures again.
	p99 = 0.01
	w.Poll()
	p99 = 0.9
	w.Poll()
	w.Poll()
	if got := breaches(ring); len(got) != 2 {
		t.Fatalf("breach events after second window = %d, want 2", len(got))
	}
	if files := countBundles(t, dir); len(files) != 4 {
		t.Fatalf("bundle files after second window = %v, want 2 pairs", files)
	}
}

func TestWatcherMultipleTargets(t *testing.T) {
	dir := t.TempDir()
	ring := obs.NewRing(64)
	snap := obs.Snapshot{QueueWaitP99Seconds: 3, HeartbeatMissRate: 5}
	w, err := New(Options{
		Targets: Targets{
			QueueWaitP99:      time.Second,
			HeartbeatMissRate: 1,
		},
		Dir:        dir,
		Interval:   time.Hour,
		CPUProfile: 10 * time.Millisecond,
		Snapshot:   func() obs.Snapshot { return snap },
		Recorder:   ring,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	w.Poll()
	got := breaches(ring)
	if len(got) != 2 {
		t.Fatalf("breach events = %d, want one per target", len(got))
	}
	names := map[string]bool{}
	for _, e := range got {
		names[e.Name] = true
	}
	if !names["queue_wait_p99"] || !names["heartbeat_miss_rate"] {
		t.Fatalf("targets = %v", names)
	}
}

func TestWatcherNoBreachBelowTarget(t *testing.T) {
	dir := t.TempDir()
	ring := obs.NewRing(16)
	w, err := New(Options{
		Targets:  Targets{EvalP99: time.Second},
		Dir:      dir,
		Interval: time.Hour,
		Snapshot: func() obs.Snapshot { return obs.Snapshot{EvalP99Seconds: 0.2} },
		Recorder: ring,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer w.Close()
	w.Poll()
	if got := breaches(ring); len(got) != 0 {
		t.Fatalf("unexpected breach events: %+v", got)
	}
	if files := countBundles(t, dir); len(files) != 0 {
		t.Fatalf("unexpected bundles: %v", files)
	}
}

func TestNewValidation(t *testing.T) {
	snap := func() obs.Snapshot { return obs.Snapshot{} }
	if _, err := New(Options{Dir: t.TempDir(), Snapshot: snap}); err == nil {
		t.Error("New accepted empty targets")
	}
	if _, err := New(Options{Targets: Targets{EvalP99: time.Second}, Dir: t.TempDir()}); err == nil {
		t.Error("New accepted nil snapshot source")
	}
	if _, err := New(Options{Targets: Targets{EvalP99: time.Second}, Snapshot: snap}); err == nil {
		t.Error("New accepted empty dir")
	}
}

func TestWatcherLoopPollsOnInterval(t *testing.T) {
	dir := t.TempDir()
	ring := obs.NewRing(16)
	w, err := New(Options{
		Targets:    Targets{EvalP99: time.Millisecond},
		Dir:        dir,
		Interval:   5 * time.Millisecond,
		CPUProfile: 5 * time.Millisecond,
		Snapshot:   func() obs.Snapshot { return obs.Snapshot{EvalP99Seconds: 1} },
		Recorder:   ring,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(breaches(ring)) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	w.Close()
	if len(breaches(ring)) == 0 {
		t.Fatal("ticker-driven loop never polled")
	}
}

// TestWatcherCloseConcurrent pins the Close race fixed alongside the
// goroleak/lockorder analyzer work: the old select-then-close shutdown let
// two concurrent Close calls both observe the stop channel open and both
// close it, panicking the second caller. This is exactly the nasd shutdown
// window where the signal handler and deferred cleanup overlap, so the fix
// (sync.Once) gets a dedicated regression test under -race.
func TestWatcherCloseConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := New(Options{
		Targets:  Targets{EvalP99: time.Hour},
		Dir:      dir,
		Interval: time.Hour,
		Snapshot: func() obs.Snapshot { return obs.Snapshot{} },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const closers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			w.Close() // must not panic, must not deadlock
		}()
	}
	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent Close calls did not all return")
	}
}
