// Package slo is the service-level-objective watch-loop: it polls the live
// metrics snapshot against configured tail-latency targets and, the moment
// a target is breached, captures a CPU+heap pprof bundle into the state
// directory and emits a KindSLOBreach event. Capture happens exactly once
// per breach window — the edge where the metric crosses the target — so a
// sustained breach yields one bundle from the moment things went slow, not
// a disk full of identical profiles. The window re-arms when the metric
// recovers.
//
// The profiles answer the operator question the event stream cannot:
// *why* is p99 suddenly high — a hot GEMM loop, GC pressure, a blocked
// syscall — at the moment it went high, rather than whenever a human got
// paged and attached pprof by hand.
package slo

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"podnas/internal/obs"
)

// Targets are the SLO thresholds; a zero field disables that target.
type Targets struct {
	// EvalP99 is the evaluation wall-time 99th percentile target.
	EvalP99 time.Duration
	// QueueWaitP99 is the job queue-wait 99th percentile target.
	QueueWaitP99 time.Duration
	// HeartbeatMissRate is the tolerated heartbeat misses per minute.
	HeartbeatMissRate float64
}

// Enabled reports whether any target is set.
func (t Targets) Enabled() bool {
	return t.EvalP99 > 0 || t.QueueWaitP99 > 0 || t.HeartbeatMissRate > 0
}

// Options configure a Watcher.
type Options struct {
	Targets Targets
	// Dir receives the pprof bundles (the daemon's state dir).
	Dir string
	// Interval is the poll cadence (default 5s).
	Interval time.Duration
	// CPUProfile is the CPU-capture length per bundle (default 2s). The
	// poll loop blocks while profiling, which is intentional: one bundle
	// at a time, taken at the breach edge.
	CPUProfile time.Duration
	// Snapshot supplies the live metrics view each poll.
	Snapshot func() obs.Snapshot
	// Recorder receives the KindSLOBreach events (nil = none).
	Recorder obs.Recorder
}

// Watcher runs the watch-loop. Close stops it; Poll runs one check
// synchronously (exported so tests and callers can force a deterministic
// evaluation without waiting out the interval).
type Watcher struct {
	opts Options
	rec  obs.Recorder

	mu       sync.Mutex
	inBreach map[string]bool
	seq      int

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New validates the options and starts the watch-loop goroutine.
func New(o Options) (*Watcher, error) {
	if !o.Targets.Enabled() {
		return nil, fmt.Errorf("slo: no targets set")
	}
	if o.Snapshot == nil {
		return nil, fmt.Errorf("slo: Snapshot source is required")
	}
	if o.Dir == "" {
		return nil, fmt.Errorf("slo: profile directory is required")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("slo: create profile dir: %w", err)
	}
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.CPUProfile <= 0 {
		o.CPUProfile = 2 * time.Second
	}
	rec := o.Recorder
	if rec == nil {
		rec = obs.Nop{}
	}
	w := &Watcher{
		opts:     o,
		rec:      rec,
		inBreach: make(map[string]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w, nil
}

// Close stops the watch-loop and waits for it to exit. It is safe to call
// from multiple goroutines: the old select-then-close form raced (two
// callers could both observe the channel open and both close it, and the
// second close panics — exactly the shutdown window where nasd's signal
// handler and its deferred cleanup overlap), so the close is guarded by a
// sync.Once.
func (w *Watcher) Close() {
	w.closeOnce.Do(func() { close(w.stop) })
	<-w.done
}

func (w *Watcher) loop() {
	defer close(w.done)
	tick := time.NewTicker(w.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.Poll()
		}
	}
}

// target is one named threshold check against a snapshot.
type target struct {
	name     string
	observed func(obs.Snapshot) float64
	limit    float64
}

func (w *Watcher) targets() []target {
	var ts []target
	if w.opts.Targets.EvalP99 > 0 {
		ts = append(ts, target{"eval_p99", func(s obs.Snapshot) float64 { return s.EvalP99Seconds }, w.opts.Targets.EvalP99.Seconds()})
	}
	if w.opts.Targets.QueueWaitP99 > 0 {
		ts = append(ts, target{"queue_wait_p99", func(s obs.Snapshot) float64 { return s.QueueWaitP99Seconds }, w.opts.Targets.QueueWaitP99.Seconds()})
	}
	if w.opts.Targets.HeartbeatMissRate > 0 {
		ts = append(ts, target{"heartbeat_miss_rate", func(s obs.Snapshot) float64 { return s.HeartbeatMissRate }, w.opts.Targets.HeartbeatMissRate})
	}
	return ts
}

// Poll runs one threshold check. Breach-edge detection and capture are
// serialized under the watcher mutex, so concurrent Polls cannot double-
// capture one window.
func (w *Watcher) Poll() {
	snap := w.opts.Snapshot()
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, t := range w.targets() {
		v := t.observed(snap)
		breached := v > t.limit
		was := w.inBreach[t.name]
		w.inBreach[t.name] = breached
		if !breached || was {
			continue // within SLO, or window already captured
		}
		w.seq++
		prefix, err := w.capture(t.name, w.seq)
		e := obs.Event{
			Kind:    obs.KindSLOBreach,
			Name:    t.name,
			Seconds: v,
			Ident:   prefix,
		}
		if err != nil {
			e.Err = err.Error()
		}
		w.rec.Record(e)
	}
}

// capture writes the CPU and heap profiles for one breach window and
// returns the bundle path prefix. A partial bundle (e.g. CPU profiling
// already claimed by another subsystem) still returns the prefix along
// with the error — whatever was captured remains on disk.
func (w *Watcher) capture(name string, seq int) (string, error) {
	prefix := filepath.Join(w.opts.Dir, fmt.Sprintf("slo-%s-%03d", name, seq))

	var firstErr error
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		firstErr = err
	} else {
		if err := pprof.StartCPUProfile(cpu); err != nil {
			firstErr = fmt.Errorf("slo: cpu profile: %w", err)
			cpu.Close()
			os.Remove(cpu.Name())
		} else {
			time.Sleep(w.opts.CPUProfile)
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}

	heap, err := os.Create(prefix + ".heap.pprof")
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
		return prefix, firstErr
	}
	if err := pprof.Lookup("heap").WriteTo(heap, 0); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("slo: heap profile: %w", err)
	}
	if err := heap.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return prefix, firstErr
}
