// Package obs is the live observability layer: a lock-cheap, typed event
// bus for a running architecture search, plus a streaming metrics
// aggregator that computes the paper's operational quantities (moving-
// average reward, node-utilization AUC, unique high performers) while the
// search runs instead of post-hoc from a finished SearchResult. The design
// follows the DeepHyper/Balsam pattern of streaming per-job telemetry: the
// runners, the worker pool, the checkpointer, and nn.Train each emit events
// into a Recorder, and sinks (in-memory ring, JSONL file, live metrics,
// expvar/pprof HTTP) consume them without the producers knowing who is
// listening.
//
// The package depends only on the standard library and the leaf
// internal/metrics package (the shared moving-average/AUC math), so every
// layer of the stack — from the public API down to the training loop — can
// import it without cycles.
package obs

import (
	"fmt"
	"time"
)

// Kind identifies the event type.
type Kind uint8

// The event vocabulary. Producers throughout the stack emit these; sinks
// switch on them. Unknown kinds must be ignored by consumers, so the
// vocabulary can grow without breaking stored JSONL traces.
const (
	// KindSearchStart opens a run (Method, Worker = worker count).
	KindSearchStart Kind = iota + 1
	// KindSearchFinish closes a run (Eval = completed evaluations).
	KindSearchFinish
	// KindEvalStart marks an evaluation dispatched (Eval, Worker, Arch).
	KindEvalStart
	// KindEvalFinish marks a successful evaluation (Eval, Reward, Seconds).
	KindEvalFinish
	// KindEvalError marks a failed evaluation (Eval, Err, Seconds).
	KindEvalError
	// KindEvalRetry marks a transient failure about to be retried
	// (Eval, Attempt, Err).
	KindEvalRetry
	// KindEpoch is one training-epoch tick from nn.Train (Eval, Epoch, Loss).
	KindEpoch
	// KindRound closes one synchronous PPO batch round (Round, Reward =
	// round mean, Eval = evaluations so far).
	KindRound
	// KindCheckpoint marks a successful checkpoint write (Eval = results
	// persisted).
	KindCheckpoint
	// KindWorkerSpawn marks a worker process ready (Worker, Attempt =
	// incarnation).
	KindWorkerSpawn
	// KindWorkerCrash marks a worker death (Worker, Err).
	KindWorkerCrash
	// KindWorkerRestart marks a respawn decision (Worker, Attempt).
	KindWorkerRestart
	// KindHeartbeatMiss marks a worker killed for going silent (Worker).
	KindHeartbeatMiss
	// KindSpecLaunch marks a speculative duplicate dispatch (Eval = pool job
	// id).
	KindSpecLaunch
	// KindSpecWin marks an evaluation decided by its speculative copy
	// (Eval = pool job id).
	KindSpecWin
	// KindTraceHeader is the run-metadata record emitted as the first line
	// of a `nasrun -trace` log (Method, Seed, Worker = worker count, Schema,
	// Version = podnas version). Replay tooling uses it to size its
	// aggregates and to reject traces written by a newer schema than it
	// understands; consumers of headerless traces (written before this
	// record existed) fall back to the search_start event.
	KindTraceHeader
	// KindWorkerConnect marks a remote worker connection handshaken and
	// leased (Worker, Attempt = lease epoch, Ident = "addr#lease").
	KindWorkerConnect
	// KindWorkerDisconnect marks a remote worker connection lost — peer
	// death, network drop, or a heartbeat kill of a silent link (Worker,
	// Ident, Err).
	KindWorkerDisconnect
	// KindLeaseExpire marks a slot lease retired while an evaluation was
	// still claimed under it (Worker, Eval = pool job id, Ident): the job is
	// re-dispatched under a fresh lease and any result the zombie still
	// delivers is fenced off by its stale lease ID.
	KindLeaseExpire
	// KindJobSubmit marks a search job admitted into the nasd queue (Job,
	// Method, Eval = requested evaluation budget).
	KindJobSubmit
	// KindJobStart marks a job leaving the queue for a run slot (Job,
	// Attempt = run attempt, Eval = evaluations already completed when the
	// start is a resume from a checkpoint).
	KindJobStart
	// KindJobCheckpoint marks a job's durable state committed — manifest
	// and per-job checkpoint on disk (Job, Eval = results persisted).
	KindJobCheckpoint
	// KindJobFinish marks a job reaching a terminal or parked state (Job,
	// Method = final state name, Eval = completed evaluations, Reward =
	// best reward for done jobs, Err for failures).
	KindJobFinish
	// KindJobEvict marks the watchdog evicting a running job — deadline
	// exceeded or drain — before its budget completed (Job, Attempt,
	// Err = eviction reason). The job retries, pauses with its checkpoint,
	// or fails, which the subsequent job_start/job_finish records.
	KindJobEvict
	// KindSpan is one completed trace span (Name, Trace, Span, Parent,
	// Seconds = duration, T = end offset, so start = T − Seconds). Span
	// identities are derived deterministically from existing identities
	// (job ID × eval × lease × epoch) by internal/obs/span, so a replayed
	// trace reconstructs the identical tree. Spans produced in a worker
	// process travel back over the wire as span frames and are re-recorded
	// by the driver, which is how one evaluation's tree stitches across
	// processes.
	KindSpan
	// KindSLOBreach marks an SLO watch-loop target crossing its threshold
	// (Name = target name, Seconds = observed value, Ident = pprof bundle
	// path prefix, Err = capture error if the bundle is partial). Emitted
	// exactly once per breach window by internal/obs/slo alongside the
	// CPU+heap pprof capture.
	KindSLOBreach
)

// SchemaVersion is the trace-format generation stamped into every
// KindTraceHeader record. Bump it when an existing field changes meaning or
// an event's semantics shift — NOT when new kinds or fields are added, since
// consumers already ignore unknown kinds and fields. Readers must reject
// traces whose header carries a larger value.
const SchemaVersion = 1

// NewHeader builds the trace-header event for a run: the record `nasrun
// -trace` writes first so replay tools know the method, seed, evaluation
// slot count, and writer versions without scanning the stream.
func NewHeader(method string, seed uint64, workers int, version string) Event {
	return Event{
		Kind:    KindTraceHeader,
		Method:  method,
		Seed:    seed,
		Worker:  workers,
		Schema:  SchemaVersion,
		Version: version,
	}
}

var kindNames = [...]string{
	KindSearchStart:      "search_start",
	KindSearchFinish:     "search_finish",
	KindEvalStart:        "eval_start",
	KindEvalFinish:       "eval_finish",
	KindEvalError:        "eval_error",
	KindEvalRetry:        "eval_retry",
	KindEpoch:            "epoch",
	KindRound:            "round",
	KindCheckpoint:       "checkpoint",
	KindWorkerSpawn:      "worker_spawn",
	KindWorkerCrash:      "worker_crash",
	KindWorkerRestart:    "worker_restart",
	KindHeartbeatMiss:    "heartbeat_miss",
	KindSpecLaunch:       "spec_launch",
	KindSpecWin:          "spec_win",
	KindTraceHeader:      "trace_header",
	KindWorkerConnect:    "worker_connect",
	KindWorkerDisconnect: "worker_disconnect",
	KindLeaseExpire:      "lease_expire",
	KindJobSubmit:        "job_submit",
	KindJobStart:         "job_start",
	KindJobCheckpoint:    "job_checkpoint",
	KindJobFinish:        "job_finish",
	KindJobEvict:         "job_evict",
	KindSpan:             "span",
	KindSLOBreach:        "slo_breach",
}

// String returns the stable snake_case name used in JSONL traces.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its stable string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a kind from its string name. Unknown names decode to
// 0 (no error), so old readers tolerate traces from newer writers.
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("obs: kind must be a JSON string, got %s", b)
	}
	name := string(b[1 : len(b)-1])
	for i, n := range kindNames {
		if n == name {
			*k = Kind(i)
			return nil
		}
	}
	*k = 0
	return nil
}

// Event is one telemetry sample. Which fields are meaningful depends on
// Kind (see the kind constants); unused numeric fields are zero. T is the
// monotonic offset since the recorder's start, stamped by the outermost
// sink when the producer leaves it zero, so every sink fed through the same
// Multi sees identical timestamps.
type Event struct {
	T       time.Duration `json:"t"`    // monotonic offset, nanoseconds
	Kind    Kind          `json:"kind"` // snake_case name in JSON
	Eval    int           `json:"eval"`
	Worker  int           `json:"worker"`
	Epoch   int           `json:"epoch"`
	Round   int           `json:"round"`
	Attempt int           `json:"attempt"`
	Reward  float64       `json:"reward"`
	Loss    float64       `json:"loss"`
	Seconds float64       `json:"seconds"` // evaluation duration
	Method  string        `json:"method,omitempty"`
	Arch    string        `json:"arch,omitempty"` // canonical architecture key
	Err     string        `json:"err,omitempty"`
	// Ident is the slot's transport identity ("local:<pid>" or
	// "remote:<addr>#<lease>") on worker connect/disconnect/lease events.
	Ident string `json:"ident,omitempty"`
	// Job is the nasd job ID on job-lifecycle events (job_submit/start/
	// checkpoint/finish/evict), and on every event a job's per-run recorder
	// stamps, so one daemon-wide trace still attributes per-job streams.
	Job string `json:"job,omitempty"`

	// Span fields (KindSpan; Name also labels KindSLOBreach's target).
	// Trace/Span/Parent are 16-hex-digit IDs kept as strings so JSON
	// round-trips never lose uint64 precision to float64 decoding.
	Name   string `json:"name,omitempty"`   // span operation / SLO target name
	Trace  string `json:"trace,omitempty"`  // trace ID
	Span   string `json:"span,omitempty"`   // span ID
	Parent string `json:"parent,omitempty"` // parent span ID ("" = root)

	// Trace-header fields (KindTraceHeader only).
	Seed    uint64 `json:"seed,omitempty"`    // search seed
	Schema  int    `json:"schema,omitempty"`  // trace schema generation
	Version string `json:"version,omitempty"` // podnas version of the writer
}
