package obs

import (
	"expvar"
	"math"
	"sync"
	"time"

	"podnas/internal/metrics"
)

// Metrics is a Recorder that computes the paper's operational quantities
// live from the event stream: the window-100 moving-average reward and the
// trapezoidal node-utilization AUC that normally require a finished
// SearchResult (or an hpcsim run) to compute post-hoc, plus evaluation
// throughput, unique high performers, and supervision counters. Feed it the
// same events as a Ring and the two computations agree to float rounding,
// which is exactly the live-vs-post-hoc cross-check the tests enforce.
//
// All state transitions are driven by event timestamps, not wall reads at
// Record time, so replaying a recorded stream reproduces the same snapshot.
type Metrics struct {
	clock

	// Workers is the evaluation-slot capacity — the utilization
	// denominator, the analogue of hpcsim's node count.
	workers int
	// highThreshold is the unique-high-performer reward cutoff (paper 0.96).
	highThreshold float64

	mu sync.Mutex

	evals, successes, errors, retries int
	epochs, rounds, checkpoints       int
	spawns, crashes, restarts         int
	hbMisses, specs, specWins         int
	connects, disconnects, leaseExps  int

	// Job-lifecycle tallies (nasd daemon runs; zero in one-shot traces).
	jobSubmits, jobStarts, jobCheckpoints int
	jobFinishes, jobEvicts                int

	// Span and SLO tallies plus the latency distributions the /metrics
	// exposition and the SLO watch-loop read: evaluation wall time (from
	// terminal eval events) and queue wait (from "queue_wait" spans).
	spans, sloBreaches int
	evalLat, queueWait *hist

	// ma is the shared streaming window average (metrics.WindowMA), the
	// same implementation hpcsim's batch MovingAverage and obs/replay are
	// cross-checked against.
	ma *metrics.WindowMA

	best      float64
	high      map[string]bool
	inflight  map[int]time.Duration // eval index -> start offset
	busy      time.Duration         // completed evaluations' busy time
	lastT     time.Duration
	perWorker map[int]*WorkerCounters
}

// WorkerCounters are the per-slot supervision tallies.
type WorkerCounters struct {
	Spawns          int `json:"spawns"`
	Crashes         int `json:"crashes"`
	Restarts        int `json:"restarts"`
	HeartbeatMisses int `json:"heartbeat_misses"`
	Connects        int `json:"connects,omitempty"`
	Disconnects     int `json:"disconnects,omitempty"`
	LeaseExpires    int `json:"lease_expires,omitempty"`
}

// MetricsOptions tune the aggregator; zero values take the paper defaults.
type MetricsOptions struct {
	// Window is the moving-average window (default 100).
	Window int
	// HighThreshold is the unique-high-performer cutoff (default 0.96).
	HighThreshold float64
}

// NewMetrics returns an aggregator sized for the given evaluation-slot
// count (minimum 1) with paper-default window (100) and high-performer
// threshold (0.96).
func NewMetrics(workers int) *Metrics { return NewMetricsOpts(workers, MetricsOptions{}) }

// NewMetricsOpts is NewMetrics with explicit tuning.
func NewMetricsOpts(workers int, opts MetricsOptions) *Metrics {
	if workers < 1 {
		workers = 1
	}
	if opts.Window <= 0 {
		opts.Window = 100
	}
	//podnas:allow floateq zero-value option detection: 0 means "take the paper default"
	if opts.HighThreshold == 0 {
		opts.HighThreshold = 0.96
	}
	return &Metrics{
		clock: newClock(), workers: workers,
		highThreshold: opts.HighThreshold,
		ma:            metrics.NewWindowMA(opts.Window),
		best:          math.Inf(-1),
		high:          make(map[string]bool),
		inflight:      make(map[int]time.Duration),
		perWorker:     make(map[int]*WorkerCounters),
		evalLat:       newHist(),
		queueWait:     newHist(),
	}
}

func (m *Metrics) worker(id int) *WorkerCounters {
	w := m.perWorker[id]
	if w == nil {
		w = &WorkerCounters{}
		m.perWorker[id] = w
	}
	return w
}

// Record implements Recorder.
func (m *Metrics) Record(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stamp(&e)
	if e.T > m.lastT {
		m.lastT = e.T
	}
	switch e.Kind {
	case KindSearchFinish:
		// Evaluations still in flight when the run closes (cancelled
		// mid-training, workers torn down) were busy right up to the finish
		// event and will never report their own terminal event. Fold that
		// time into the committed busy total and settle the in-flight set,
		// so the AUC of a truncated run matches hpcsim's trapezoidal
		// busy-interval definition instead of under-counting those slots.
		for idx, start := range m.inflight {
			if e.T > start {
				m.busy += e.T - start
			}
			delete(m.inflight, idx)
		}
	case KindEvalStart:
		m.inflight[e.Eval] = e.T
	case KindEvalFinish:
		m.closeEval(e)
		m.evalLat.add(e.Seconds)
		m.successes++
		m.ma.Push(e.Reward)
		if e.Reward > m.best {
			m.best = e.Reward
		}
		if e.Reward > m.highThreshold && e.Arch != "" {
			m.high[e.Arch] = true
		}
	case KindEvalError:
		m.closeEval(e)
		m.evalLat.add(e.Seconds)
		m.errors++
	case KindEvalRetry:
		m.retries++
	case KindEpoch:
		m.epochs++
	case KindRound:
		m.rounds++
	case KindCheckpoint:
		m.checkpoints++
	case KindWorkerSpawn:
		m.spawns++
		m.worker(e.Worker).Spawns++
	case KindWorkerCrash:
		m.crashes++
		m.worker(e.Worker).Crashes++
	case KindWorkerRestart:
		m.restarts++
		m.worker(e.Worker).Restarts++
	case KindHeartbeatMiss:
		m.hbMisses++
		m.worker(e.Worker).HeartbeatMisses++
	case KindSpecLaunch:
		m.specs++
	case KindSpecWin:
		m.specWins++
	case KindWorkerConnect:
		m.connects++
		m.worker(e.Worker).Connects++
	case KindWorkerDisconnect:
		m.disconnects++
		m.worker(e.Worker).Disconnects++
	case KindLeaseExpire:
		m.leaseExps++
		m.worker(e.Worker).LeaseExpires++
	case KindJobSubmit:
		m.jobSubmits++
	case KindJobStart:
		m.jobStarts++
	case KindJobCheckpoint:
		m.jobCheckpoints++
	case KindJobFinish:
		m.jobFinishes++
	case KindJobEvict:
		m.jobEvicts++
	case KindSpan:
		m.spans++
		// Queue-wait spans are the only span family folded into a
		// distribution here; the rest are tree structure for replay, not
		// aggregate state.
		if e.Name == "queue_wait" {
			m.queueWait.add(e.Seconds)
		}
	case KindSLOBreach:
		m.sloBreaches++
	case KindSearchStart, KindTraceHeader:
		// Run metadata: no aggregate state beyond the clock advance above.
	default:
		// Unknown kinds (a trace from a newer writer replayed through this
		// fold) advance the clock only. Declared kinds never land here:
		// podnaslint's kindswitch check keeps this fold exhaustive, so adding
		// an event kind forces an explicit decision in this switch.
	}
}

// closeEval accounts one terminal evaluation: its busy interval (for the
// utilization AUC) and the completion counter.
func (m *Metrics) closeEval(e Event) {
	m.evals++
	if start, ok := m.inflight[e.Eval]; ok {
		if e.T > start {
			m.busy += e.T - start
		}
		delete(m.inflight, e.Eval)
	}
}

// Snapshot is one consistent view of the live metrics, JSON-encodable for
// expvar (non-finite values are clamped to zero so encoding never fails).
type Snapshot struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Workers        int     `json:"workers"`

	Evals       int     `json:"evals"`
	Successes   int     `json:"successes"`
	Errors      int     `json:"errors"`
	Retries     int     `json:"retries"`
	InFlight    int     `json:"in_flight"`
	EvalsPerSec float64 `json:"evals_per_sec"`

	RewardMA   float64 `json:"reward_ma"`
	LastReward float64 `json:"last_reward"`
	BestReward float64 `json:"best_reward"`
	UniqueHigh int     `json:"unique_high"`

	// UtilizationAUC is busy-slot-seconds (including in-flight evaluations
	// up to the last event) over Workers × elapsed — the live counterpart of
	// hpcsim's trapezoid-integrated busy-node AUC ratio.
	UtilizationAUC float64 `json:"utilization_auc"`
	BusySeconds    float64 `json:"busy_seconds"`

	Epochs      int `json:"epochs"`
	Rounds      int `json:"rounds"`
	Checkpoints int `json:"checkpoints"`

	WorkerSpawns      int                    `json:"worker_spawns"`
	WorkerCrashes     int                    `json:"worker_crashes"`
	WorkerRestarts    int                    `json:"worker_restarts"`
	HeartbeatMisses   int                    `json:"heartbeat_misses"`
	Speculations      int                    `json:"speculations"`
	SpeculativeWins   int                    `json:"speculative_wins"`
	WorkerConnects    int                    `json:"worker_connects"`
	WorkerDisconnects int                    `json:"worker_disconnects"`
	LeaseExpires      int                    `json:"lease_expires"`
	PerWorkerCounters map[int]WorkerCounters `json:"per_worker,omitempty"`

	// Job-lifecycle counters (nasd daemon traces; zero for one-shot runs).
	JobSubmits     int `json:"job_submits,omitempty"`
	JobStarts      int `json:"job_starts,omitempty"`
	JobCheckpoints int `json:"job_checkpoints,omitempty"`
	JobFinishes    int `json:"job_finishes,omitempty"`
	JobEvicts      int `json:"job_evicts,omitempty"`

	// Span / SLO counters and the tail latencies the SLO watch-loop
	// compares against its targets. Quantiles are computed over the most
	// recent histWindow samples, so a recovering system's p99 decays
	// instead of being anchored by ancient stragglers.
	Spans               int     `json:"spans,omitempty"`
	SLOBreaches         int     `json:"slo_breaches,omitempty"`
	EvalP50Seconds      float64 `json:"eval_p50_seconds,omitempty"`
	EvalP99Seconds      float64 `json:"eval_p99_seconds,omitempty"`
	QueueWaitP99Seconds float64 `json:"queue_wait_p99_seconds,omitempty"`
	// HeartbeatMissRate is heartbeat misses per elapsed minute.
	HeartbeatMissRate float64 `json:"heartbeat_miss_rate,omitempty"`
}

// Snapshot returns the current aggregate state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		ElapsedSeconds:    m.lastT.Seconds(),
		Workers:           m.workers,
		Evals:             m.evals,
		Successes:         m.successes,
		Errors:            m.errors,
		Retries:           m.retries,
		InFlight:          len(m.inflight),
		RewardMA:          m.ma.Value(),
		LastReward:        m.ma.Last(),
		Epochs:            m.epochs,
		Rounds:            m.rounds,
		Checkpoints:       m.checkpoints,
		UniqueHigh:        len(m.high),
		WorkerSpawns:      m.spawns,
		WorkerCrashes:     m.crashes,
		WorkerRestarts:    m.restarts,
		HeartbeatMisses:   m.hbMisses,
		Speculations:      m.specs,
		SpeculativeWins:   m.specWins,
		WorkerConnects:    m.connects,
		WorkerDisconnects: m.disconnects,
		LeaseExpires:      m.leaseExps,
		JobSubmits:        m.jobSubmits,
		JobStarts:         m.jobStarts,
		JobCheckpoints:    m.jobCheckpoints,
		JobFinishes:       m.jobFinishes,
		JobEvicts:         m.jobEvicts,
		Spans:             m.spans,
		SLOBreaches:       m.sloBreaches,
	}
	s.EvalP50Seconds = m.evalLat.quantile(0.50)
	s.EvalP99Seconds = m.evalLat.quantile(0.99)
	s.QueueWaitP99Seconds = m.queueWait.quantile(0.99)
	if m.lastT > 0 {
		s.HeartbeatMissRate = float64(m.hbMisses) / m.lastT.Minutes()
	}
	if !math.IsInf(m.best, -1) {
		s.BestReward = m.best
	}
	busy := m.busy
	for _, start := range m.inflight {
		if m.lastT > start {
			busy += m.lastT - start
		}
	}
	s.BusySeconds = busy.Seconds()
	if m.lastT > 0 {
		s.EvalsPerSec = float64(m.evals) / m.lastT.Seconds()
		s.UtilizationAUC = busy.Seconds() / (float64(m.workers) * m.lastT.Seconds())
	}
	if len(m.perWorker) > 0 {
		s.PerWorkerCounters = make(map[int]WorkerCounters, len(m.perWorker))
		for id, w := range m.perWorker {
			s.PerWorkerCounters[id] = *w
		}
	}
	return s
}

// publishMu guards the expvar registry probe: expvar.Publish panics on
// duplicate names, and Get-then-Publish must be atomic across goroutines.
var publishMu sync.Mutex

// DefaultVarName is the expvar name nasrun publishes the live snapshot
// under.
const DefaultVarName = "podnas.search"

// Publish registers the live snapshot as an expvar Func under name (empty =
// DefaultVarName), making it visible at /debug/vars. Returns false when the
// name is already taken (expvar forbids re-registration, e.g. across tests
// or repeated runs in one process).
func (m *Metrics) Publish(name string) bool {
	if name == "" {
		name = DefaultVarName
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
	return true
}
