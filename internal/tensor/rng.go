package tensor

import "math"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256**-style splitmix seeding). Every stochastic component in the
// repository draws from an explicitly seeded RNG so that experiments are
// reproducible run to run; math/rand global state is never used.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for NormFloat64
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the 4-word state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A zero state would be absorbing; seed 0 gets a fixed nonzero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		//podnas:allow floateq exact rejection guard of the polar method: log(0) must never be reached
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes idx in place.
func (r *RNG) Shuffle(idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// Split derives an independent generator from r, keyed by k. Deriving rather
// than sharing keeps concurrent components deterministic regardless of
// goroutine scheduling.
func (r *RNG) Split(k uint64) *RNG {
	return NewRNG(r.Uint64() ^ (k * 0x9e3779b97f4a7c15))
}

// RNGState is the full serializable state of an RNG. Restoring it resumes
// the deviate stream exactly where it left off, which checkpoint/resume of
// the searchers depends on.
type RNGState struct {
	S        [4]uint64 `json:"s"`
	HasSpare bool      `json:"has_spare,omitempty"`
	Spare    float64   `json:"spare,omitempty"`
}

// State captures the generator state for serialization.
func (r *RNG) State() RNGState {
	return RNGState{S: r.s, HasSpare: r.hasSpare, Spare: r.spare}
}

// SetState overwrites the generator state with a previously captured one. A
// zero 4-word state would be absorbing and is replaced like in NewRNG.
func (r *RNG) SetState(st RNGState) {
	r.s = st.S
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	r.hasSpare = st.HasSpare
	r.spare = st.Spare
}

// FillNormal fills dst with N(0, sigma²) deviates.
func (r *RNG) FillNormal(dst []float64, sigma float64) {
	for i := range dst {
		dst[i] = r.NormFloat64() * sigma
	}
}

// FillUniform fills dst with uniform deviates in [lo, hi).
func (r *RNG) FillUniform(dst []float64, lo, hi float64) {
	w := hi - lo
	for i := range dst {
		dst[i] = lo + w*r.Float64()
	}
}
