package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/50 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(8)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(5) bucket %d has %d/5000 hits, badly unbalanced", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(10)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	a := r.Split(1)
	b := r.Split(2)
	if a.Uint64() == b.Uint64() {
		t.Error("Split streams with different keys collided immediately")
	}
}

func TestFillUniformRange(t *testing.T) {
	r := NewRNG(12)
	buf := make([]float64, 1000)
	r.FillUniform(buf, -2, 3)
	for _, v := range buf {
		if v < -2 || v >= 3 {
			t.Fatalf("FillUniform out of range: %g", v)
		}
	}
}

func TestSeedZeroWorks(t *testing.T) {
	r := NewRNG(0)
	v := r.Float64()
	if math.IsNaN(v) {
		t.Error("seed 0 produced NaN")
	}
	// Must still advance.
	if r.Uint64() == r.Uint64() {
		t.Error("seed-0 generator is stuck")
	}
}
