package tensor

import (
	"testing"
	"testing/quick"
)

func TestTensor3Indexing(t *testing.T) {
	x := NewTensor3(2, 3, 4)
	x.Set(1, 2, 3, 7.5)
	if x.At(1, 2, 3) != 7.5 {
		t.Error("Set/At round trip failed")
	}
	if x.At(0, 0, 0) != 0 {
		t.Error("fresh tensor not zeroed")
	}
}

func TestStepRoundTrip(t *testing.T) {
	rng := NewRNG(1)
	x := NewTensor3(3, 5, 2)
	rng.FillNormal(x.Data, 1)
	for step := 0; step < 5; step++ {
		m := x.Step(step)
		for b := 0; b < 3; b++ {
			for f := 0; f < 2; f++ {
				if m.At(b, f) != x.At(b, step, f) {
					t.Fatalf("Step(%d) mismatch at (%d,%d)", step, b, f)
				}
			}
		}
	}
	// SetStep then Step must round-trip.
	m := NewMatrix(3, 2)
	rng.FillNormal(m.Data, 1)
	x.SetStep(2, m)
	if !x.Step(2).Equal(m, 0) {
		t.Error("SetStep/Step round trip failed")
	}
}

func TestAddStepAccumulates(t *testing.T) {
	x := NewTensor3(2, 2, 2)
	m := NewMatrix(2, 2)
	m.Fill(1.5)
	x.AddStep(1, m)
	x.AddStep(1, m)
	if x.At(0, 1, 0) != 3 || x.At(1, 1, 1) != 3 {
		t.Error("AddStep did not accumulate")
	}
	if x.At(0, 0, 0) != 0 {
		t.Error("AddStep touched the wrong timestep")
	}
}

func TestAsMatrixSharesStorage(t *testing.T) {
	x := NewTensor3(2, 3, 4)
	m := x.AsMatrix()
	if m.Rows != 6 || m.Cols != 4 {
		t.Fatalf("AsMatrix shape %dx%d", m.Rows, m.Cols)
	}
	m.Set(5, 3, 42)
	if x.At(1, 2, 3) != 42 {
		t.Error("AsMatrix does not alias tensor storage")
	}
}

func TestRowsView(t *testing.T) {
	x := NewTensor3(2, 3, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	r := x.Rows(1)
	if r.At(0, 0) != 6 || r.At(2, 1) != 11 {
		t.Errorf("Rows view wrong: %v", r.Data)
	}
	r.Set(0, 0, -1)
	if x.At(1, 0, 0) != -1 {
		t.Error("Rows view does not alias")
	}
}

func TestGather(t *testing.T) {
	x := NewTensor3(4, 2, 1)
	for b := 0; b < 4; b++ {
		x.Set(b, 0, 0, float64(b))
	}
	g := x.Gather([]int{3, 1})
	if g.B != 2 || g.At(0, 0, 0) != 3 || g.At(1, 0, 0) != 1 {
		t.Errorf("Gather wrong: %+v", g)
	}
}

func TestTensor3CloneAndZero(t *testing.T) {
	x := NewTensor3(1, 1, 2)
	x.Data[0] = 5
	c := x.Clone()
	x.Zero()
	if c.Data[0] != 5 || x.Data[0] != 0 {
		t.Error("Clone/Zero interaction wrong")
	}
}

func TestStepIntoMatchesStep(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		b, tt, ff := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		x := NewTensor3(b, tt, ff)
		rng.FillNormal(x.Data, 1)
		step := rng.Intn(tt)
		buf := NewMatrix(b, ff)
		x.StepInto(buf, step)
		return buf.Equal(x.Step(step), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTensor3NegativeDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTensor3(1, -1, 1)
}

func TestTensor3FromSliceLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Tensor3FromSlice(1, 2, 2, []float64{1})
}

func TestStepShapePanics(t *testing.T) {
	x := NewTensor3(2, 2, 2)
	for name, f := range map[string]func(){
		"StepInto": func() { x.StepInto(NewMatrix(3, 2), 0) },
		"SetStep":  func() { x.SetStep(0, NewMatrix(1, 1)) },
		"AddStep":  func() { x.AddStep(0, NewMatrix(1, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAddTensor3Mismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AddTensor3(NewTensor3(1, 1, 1), NewTensor3(1, 1, 2))
}
