// Package tensor provides dense matrix and rank-3 tensor types. It is the
// numerical substrate for the POD compression and neural-network packages.
//
// All storage is row-major float64. The MatMul* family is a thin wrapper
// over internal/kernel's blocked GEMM (SIMD where available, deterministic
// row-partitioned parallelism); execution policy lives in kernel.Config,
// not in package-global state here.
package tensor

import (
	"fmt"
	"math"

	"podnas/internal/kernel"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix dims %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c) in a Matrix without copying.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose of m as a new matrix.
//
// No production code calls this anymore: every hot-path consumer moved
// to kernel.Gemm's transA/transB flags, which read the operand in
// transposed order during packing instead of materializing a copy. T is
// kept for tests and as a convenience for exploratory code; if you find
// yourself calling it next to a MatMul, use the transposed MatMul
// variant instead.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	const bs = 64
	for ib := 0; ib < m.Rows; ib += bs {
		imax := min(ib+bs, m.Rows)
		for jb := 0; jb < m.Cols; jb += bs {
			jmax := min(jb+bs, m.Cols)
			for i := ib; i < imax; i++ {
				row := m.Data[i*m.Cols:]
				for j := jb; j < jmax; j++ {
					out.Data[j*m.Rows+i] = row[j]
				}
			}
		}
	}
	return out
}

// Equal reports whether m and n have identical shape and entries within tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// Kern returns m as a kernel.Mat view (shared storage, dense stride).
// The MatMul* family below is a thin compatibility surface over the one
// kernel.Gemm entry point; call the kernel directly for strided views
// or a non-default execution Config.
func (m *Matrix) Kern() kernel.Mat {
	return kernel.Mat{R: m.Rows, C: m.Cols, Stride: m.Cols, Data: m.Data}
}

// MatMul computes a×b into a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a×b. dst must be preallocated with the right
// shape, must not alias a or b, and is overwritten.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	kernel.Gemm(dst.Kern(), a.Kern(), b.Kern(), false, false, false)
}

// MatMulAddInto computes dst += a×b without zeroing dst first.
func MatMulAddInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulAddInto shape mismatch")
	}
	kernel.Gemm(dst.Kern(), a.Kern(), b.Kern(), false, false, true)
}

// MatMulTransA computes aᵀ×b into a new matrix without materializing aᵀ.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: MatMulTransA shape mismatch")
	}
	out := NewMatrix(a.Cols, b.Cols)
	kernel.Gemm(out.Kern(), a.Kern(), b.Kern(), true, false, false)
	return out
}

// MatMulTransAAddInto computes dst += aᵀ×b.
func MatMulTransAAddInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulTransAAddInto shape mismatch")
	}
	kernel.Gemm(dst.Kern(), a.Kern(), b.Kern(), true, false, true)
}

// MatMulTransB computes a×bᵀ into a new matrix without materializing bᵀ.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: MatMulTransB shape mismatch")
	}
	out := NewMatrix(a.Rows, b.Rows)
	kernel.Gemm(out.Kern(), a.Kern(), b.Kern(), false, true, false)
	return out
}

// Gram computes aᵀ×a (the Gram / correlation matrix), exploiting symmetry.
func Gram(a *Matrix) *Matrix {
	n := a.Cols
	out := NewMatrix(n, n)
	MatMulTransAAddInto(out, a, a)
	// Symmetrize to remove accumulated rounding asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (out.At(i, j) + out.At(j, i))
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out
}

// Add returns a+b as a new matrix.
func Add(a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a-b as a new matrix.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Matrix) {
	checkSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Axpy computes y += alpha*x for equally shaped matrices.
func Axpy(alpha float64, x, y *Matrix) {
	checkSameShape("Axpy", x, y)
	for i, v := range x.Data {
		y.Data[i] += alpha * v
	}
}

// ColMeans returns the column means of m as a slice of length m.Cols.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1.0 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// RowMeans returns the row means of m as a slice of length m.Rows.
func (m *Matrix) RowMeans() []float64 {
	means := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		means[i] = s / float64(m.Cols)
	}
	return means
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
