// Package tensor provides dense matrix and rank-3 tensor types with
// cache-friendly, goroutine-parallel kernels. It is the numerical substrate
// for the POD compression and neural-network packages.
//
// All storage is row-major float64. Kernels fall back to serial execution for
// small problems to avoid goroutine overhead and use a shared worker fan-out
// for large ones.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix dims %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c) in a Matrix without copying.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	const bs = 64
	for ib := 0; ib < m.Rows; ib += bs {
		imax := min(ib+bs, m.Rows)
		for jb := 0; jb < m.Cols; jb += bs {
			jmax := min(jb+bs, m.Cols)
			for i := ib; i < imax; i++ {
				row := m.Data[i*m.Cols:]
				for j := jb; j < jmax; j++ {
					out.Data[j*m.Rows+i] = row[j]
				}
			}
		}
	}
	return out
}

// Equal reports whether m and n have identical shape and entries within tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// parallelThreshold is the flop count above which kernels fan out to
// goroutines. Exported for tests via SetParallelThreshold.
var parallelThreshold = 1 << 16

// SetParallelThreshold overrides the serial/parallel cutover (flops). It
// returns the previous value so tests can restore it.
func SetParallelThreshold(n int) int {
	old := parallelThreshold
	parallelThreshold = n
	return old
}

// parallelFor runs body(i) for i in [0,n) across GOMAXPROCS workers when
// work*n exceeds the parallel threshold, and serially otherwise.
func parallelFor(n, workPerItem int, body func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n*workPerItem < parallelThreshold || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes a×b into a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a×b. dst must be preallocated with the right
// shape and is overwritten. The inner kernel is an ikj loop with row reuse,
// parallelized across rows of a.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	n, k, c := a.Rows, a.Cols, b.Cols
	parallelFor(n, 2*k*c, func(i int) {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*c : (i+1)*c]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			//podnas:allow floateq exact sparsity skip: only bitwise zero contributes nothing
			if av == 0 {
				continue
			}
			brow := b.Data[p*c : (p+1)*c]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	})
}

// MatMulAddInto computes dst += a×b without zeroing dst first.
func MatMulAddInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulAddInto shape mismatch")
	}
	n, k, c := a.Rows, a.Cols, b.Cols
	parallelFor(n, 2*k*c, func(i int) {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*c : (i+1)*c]
		for p := 0; p < k; p++ {
			av := arow[p]
			//podnas:allow floateq exact sparsity skip: only bitwise zero contributes nothing
			if av == 0 {
				continue
			}
			brow := b.Data[p*c : (p+1)*c]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	})
}

// MatMulTransA computes aᵀ×b into a new matrix without materializing aᵀ.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: MatMulTransA shape mismatch")
	}
	out := NewMatrix(a.Cols, b.Cols)
	MatMulTransAAddInto(out, a, b)
	return out
}

// MatMulTransAAddInto computes dst += aᵀ×b. Parallelized over columns of a
// (rows of the result) so worker writes never alias.
func MatMulTransAAddInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulTransAAddInto shape mismatch")
	}
	m, n, c := a.Rows, a.Cols, b.Cols
	parallelFor(n, 2*m*c, func(i int) {
		drow := dst.Data[i*c : (i+1)*c]
		for p := 0; p < m; p++ {
			av := a.Data[p*n+i]
			//podnas:allow floateq exact sparsity skip: only bitwise zero contributes nothing
			if av == 0 {
				continue
			}
			brow := b.Data[p*c : (p+1)*c]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	})
}

// MatMulTransB computes a×bᵀ into a new matrix without materializing bᵀ.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: MatMulTransB shape mismatch")
	}
	out := NewMatrix(a.Rows, b.Rows)
	n, k, c := a.Rows, a.Cols, b.Rows
	parallelFor(n, 2*k*c, func(i int) {
		arow := a.Data[i*k : (i+1)*k]
		drow := out.Data[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	})
	return out
}

// Gram computes aᵀ×a (the Gram / correlation matrix), exploiting symmetry.
func Gram(a *Matrix) *Matrix {
	n := a.Cols
	out := NewMatrix(n, n)
	MatMulTransAAddInto(out, a, a)
	// Symmetrize to remove accumulated rounding asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (out.At(i, j) + out.At(j, i))
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out
}

// Add returns a+b as a new matrix.
func Add(a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a-b as a new matrix.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Matrix) {
	checkSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Axpy computes y += alpha*x for equally shaped matrices.
func Axpy(alpha float64, x, y *Matrix) {
	checkSameShape("Axpy", x, y)
	for i, v := range x.Data {
		y.Data[i] += alpha * v
	}
}

// ColMeans returns the column means of m as a slice of length m.Cols.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1.0 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// RowMeans returns the row means of m as a slice of length m.Rows.
func (m *Matrix) RowMeans() []float64 {
	means := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		means[i] = s / float64(m.Cols)
	}
	return means
}

// Norm2 returns the Frobenius norm of m.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
