package tensor

import "fmt"

// Tensor3 is a dense rank-3 tensor with layout (batch, time, feature),
// row-major with feature fastest. It is the activation type flowing through
// the sequence models: B examples, T timesteps, F features each.
type Tensor3 struct {
	B, T, F int
	Data    []float64
}

// NewTensor3 returns a zeroed B×T×F tensor.
func NewTensor3(b, t, f int) *Tensor3 {
	if b < 0 || t < 0 || f < 0 {
		panic(fmt.Sprintf("tensor: invalid tensor dims %dx%dx%d", b, t, f))
	}
	return &Tensor3{B: b, T: t, F: f, Data: make([]float64, b*t*f)}
}

// Tensor3FromSlice wraps data (length b*t*f) without copying.
func Tensor3FromSlice(b, t, f int, data []float64) *Tensor3 {
	if len(data) != b*t*f {
		panic(fmt.Sprintf("tensor: Tensor3FromSlice length %d != %d*%d*%d", len(data), b, t, f))
	}
	return &Tensor3{B: b, T: t, F: f, Data: data}
}

// At returns element (b, t, f).
func (x *Tensor3) At(b, t, f int) float64 { return x.Data[(b*x.T+t)*x.F+f] }

// Set assigns element (b, t, f).
func (x *Tensor3) Set(b, t, f int, v float64) { x.Data[(b*x.T+t)*x.F+f] = v }

// Step returns a view of timestep t across the whole batch as a B×F matrix.
// The view shares storage only when T == 1; otherwise the data for a fixed t
// is strided, so Step copies. Use StepInto to reuse a buffer.
func (x *Tensor3) Step(t int) *Matrix {
	out := NewMatrix(x.B, x.F)
	x.StepInto(out, t)
	return out
}

// StepInto copies timestep t of every batch element into dst (B×F).
func (x *Tensor3) StepInto(dst *Matrix, t int) {
	if dst.Rows != x.B || dst.Cols != x.F {
		panic("tensor: StepInto shape mismatch")
	}
	for b := 0; b < x.B; b++ {
		src := x.Data[(b*x.T+t)*x.F : (b*x.T+t+1)*x.F]
		copy(dst.Data[b*x.F:(b+1)*x.F], src)
	}
}

// SetStep writes the B×F matrix src into timestep t.
func (x *Tensor3) SetStep(t int, src *Matrix) {
	if src.Rows != x.B || src.Cols != x.F {
		panic("tensor: SetStep shape mismatch")
	}
	for b := 0; b < x.B; b++ {
		copy(x.Data[(b*x.T+t)*x.F:(b*x.T+t+1)*x.F], src.Data[b*x.F:(b+1)*x.F])
	}
}

// AddStep accumulates the B×F matrix src into timestep t.
func (x *Tensor3) AddStep(t int, src *Matrix) {
	if src.Rows != x.B || src.Cols != x.F {
		panic("tensor: AddStep shape mismatch")
	}
	for b := 0; b < x.B; b++ {
		dst := x.Data[(b*x.T+t)*x.F : (b*x.T+t+1)*x.F]
		row := src.Data[b*x.F : (b+1)*x.F]
		for j, v := range row {
			dst[j] += v
		}
	}
}

// AsMatrix returns a (B*T)×F matrix view sharing storage with x. Valid
// because the layout has feature fastest and time second.
func (x *Tensor3) AsMatrix() *Matrix {
	return &Matrix{Rows: x.B * x.T, Cols: x.F, Data: x.Data}
}

// Clone returns a deep copy.
func (x *Tensor3) Clone() *Tensor3 {
	out := NewTensor3(x.B, x.T, x.F)
	copy(out.Data, x.Data)
	return out
}

// Zero sets all elements to zero.
func (x *Tensor3) Zero() {
	for i := range x.Data {
		x.Data[i] = 0
	}
}

// Rows returns a view of example b as a T×F matrix sharing storage.
func (x *Tensor3) Rows(b int) *Matrix {
	return &Matrix{Rows: x.T, Cols: x.F, Data: x.Data[b*x.T*x.F : (b+1)*x.T*x.F]}
}

// Gather copies the examples with the given indices into a new tensor.
func (x *Tensor3) Gather(idx []int) *Tensor3 {
	return x.GatherInto(nil, idx)
}

// GatherInto copies the examples with the given indices into dst, reusing
// dst's storage when it has the capacity (a nil dst allocates). Returns
// the gathered tensor, which training loops thread through iterations so
// steady-state minibatch assembly allocates nothing.
func (x *Tensor3) GatherInto(dst *Tensor3, idx []int) *Tensor3 {
	stride := x.T * x.F
	need := len(idx) * stride
	if dst == nil {
		dst = &Tensor3{}
	}
	if cap(dst.Data) < need {
		dst.Data = make([]float64, need)
	}
	dst.B, dst.T, dst.F = len(idx), x.T, x.F
	dst.Data = dst.Data[:need]
	for i, b := range idx {
		copy(dst.Data[i*stride:(i+1)*stride], x.Data[b*stride:(b+1)*stride])
	}
	return dst
}

// AddTensor3 computes a += b elementwise.
func AddTensor3(a, b *Tensor3) {
	if a.B != b.B || a.T != b.T || a.F != b.F {
		panic("tensor: AddTensor3 shape mismatch")
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
}
