package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"podnas/internal/kernel"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(rng *RNG, r, c int) *Matrix {
	m := NewMatrix(r, c)
	rng.FillNormal(m.Data, 1)
	return m
}

// naiveMatMul is the reference O(n³) triple loop used to validate kernels.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {33, 17, 29}} {
		a := randomMatrix(rng, dims[0], dims[1])
		b := randomMatrix(rng, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.Equal(want, 1e-10) {
			t.Errorf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Execution policy now lives on kernel.Config; the wrapper surface
	// always computes the same values bit for bit regardless of workers.
	rng := NewRNG(2)
	a := randomMatrix(rng, 64, 48)
	b := randomMatrix(rng, 48, 80)
	got := NewMatrix(64, 80)
	kernel.Config{Workers: 8, ParallelThreshold: 1}.Gemm(got.Kern(), a.Kern(), b.Kern(), false, false, false)
	want := MatMul(a, b)
	if !got.Equal(want, 0) {
		t.Error("parallel MatMul disagrees with serial MatMul")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := NewRNG(3)
	a := randomMatrix(rng, 13, 7)
	b := randomMatrix(rng, 13, 5)
	got := MatMulTransA(a, b)
	want := naiveMatMul(a.T(), b)
	if !got.Equal(want, 1e-10) {
		t.Error("MatMulTransA disagrees with explicit transpose")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := NewRNG(4)
	a := randomMatrix(rng, 9, 6)
	b := randomMatrix(rng, 11, 6)
	got := MatMulTransB(a, b)
	want := naiveMatMul(a, b.T())
	if !got.Equal(want, 1e-10) {
		t.Error("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulAddIntoAccumulates(t *testing.T) {
	rng := NewRNG(5)
	a := randomMatrix(rng, 4, 6)
	b := randomMatrix(rng, 6, 3)
	dst := randomMatrix(rng, 4, 3)
	orig := dst.Clone()
	MatMulAddInto(dst, a, b)
	prod := MatMul(a, b)
	want := Add(orig, prod)
	if !dst.Equal(want, 1e-12) {
		t.Error("MatMulAddInto did not accumulate correctly")
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := NewRNG(6)
	a := randomMatrix(rng, 20, 8)
	g := Gram(a)
	if g.Rows != 8 || g.Cols != 8 {
		t.Fatalf("Gram shape %dx%d", g.Rows, g.Cols)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("Gram not symmetric at (%d,%d)", i, j)
			}
		}
		if g.At(i, i) < 0 {
			t.Fatalf("Gram diagonal negative at %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r := 1 + rng.Intn(40)
		c := 1 + rng.Intn(40)
		m := randomMatrix(rng, r, c)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	// Property: A(B+C) == AB + AC.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(12)
		c := 1 + rng.Intn(12)
		a := randomMatrix(rng, n, k)
		b := randomMatrix(rng, k, c)
		d := randomMatrix(rng, k, c)
		left := MatMul(a, Add(b, d))
		right := Add(MatMul(a, b), MatMul(a, d))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r := 1 + rng.Intn(20)
		c := 1 + rng.Intn(20)
		a := randomMatrix(rng, r, c)
		b := randomMatrix(rng, r, c)
		return Sub(Add(a, b), b).Equal(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestColRowMeans(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	cm := m.ColMeans()
	want := []float64{2.5, 3.5, 4.5}
	for j, v := range want {
		if !almostEqual(cm[j], v, 1e-14) {
			t.Errorf("ColMeans[%d] = %g, want %g", j, cm[j], v)
		}
	}
	rm := m.RowMeans()
	if !almostEqual(rm[0], 2, 1e-14) || !almostEqual(rm[1], 5, 1e-14) {
		t.Errorf("RowMeans = %v", rm)
	}
}

func TestAxpyScale(t *testing.T) {
	x := FromSlice(1, 3, []float64{1, 2, 3})
	y := FromSlice(1, 3, []float64{10, 20, 30})
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("Axpy result[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
	y.Scale(0.5)
	if y.Data[0] != 6 {
		t.Errorf("Scale result = %v", y.Data)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestFromSliceLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong slice length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestNorm2AndDot(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if !almostEqual(m.Norm2(), 5, 1e-14) {
		t.Errorf("Norm2 = %g", m.Norm2())
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice(1, 2, []float64{1, 2})
	if s := small.String(); s == "" || s[0] != 'M' {
		t.Errorf("String = %q", s)
	}
	big := NewMatrix(20, 20)
	if s := big.String(); s != "Matrix(20x20)" {
		t.Errorf("large String = %q", s)
	}
}

func TestFillAndZero(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(3)
	for _, v := range m.Data {
		if v != 3 {
			t.Fatal("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewMatrix(1, 2).Equal(NewMatrix(2, 1), 1) {
		t.Error("different shapes must not be Equal")
	}
}

func TestRowView(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Error("Row does not alias")
	}
}

func TestNegativeDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestMatMulDegenerateShapes(t *testing.T) {
	// 1-row and empty-inner-dimension products must not deadlock or
	// index out of bounds in the kernel layer.
	one := MatMul(FromSlice(1, 3, []float64{1, 2, 3}), FromSlice(3, 1, []float64{4, 5, 6}))
	if one.Rows != 1 || one.Cols != 1 || !almostEqual(one.At(0, 0), 32, 1e-12) {
		t.Fatalf("1x3·3x1 = %v", one.Data)
	}
	empty := MatMul(NewMatrix(2, 0), NewMatrix(0, 2))
	for _, v := range empty.Data {
		if v != 0 {
			t.Fatal("k=0 product must be all zeros")
		}
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAddSubShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Add(NewMatrix(1, 2), NewMatrix(2, 1))
}

func TestMatMulTransShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"transA":  func() { MatMulTransA(NewMatrix(2, 3), NewMatrix(3, 2)) },
		"transB":  func() { MatMulTransB(NewMatrix(2, 3), NewMatrix(3, 2)) },
		"addInto": func() { MatMulAddInto(NewMatrix(1, 1), NewMatrix(2, 3), NewMatrix(4, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
