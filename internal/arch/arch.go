// Package arch defines the stacked-LSTM neural-architecture search space of
// paper §III-A: a directed acyclic graph with m variable LSTM nodes (each
// choosing among Identity and LSTM layers of several widths) and binary
// skip-connection variable nodes, terminated by a constant LSTM output node
// matching the POD coefficient dimension.
//
// An architecture is encoded as a flat integer vector ("a sequence of
// integers", §III-B1): for each variable node k, one operation choice
// followed by min(k, MaxSkip) skip-connection bits. Skip candidate j of node
// k connects to node k-2-j (with node -1 denoting the network input), the
// DeepHyper anchor-point scheme. For m = 5 and MaxSkip = 3 this yields the
// paper's 9 skip-connection variable nodes.
package arch

import (
	"fmt"
	"strings"

	"podnas/internal/nn"
	"podnas/internal/tensor"
)

// Space is a search-space definition.
type Space struct {
	// NumNodes is m, the number of variable LSTM nodes (paper: 5).
	NumNodes int
	// Ops lists the hidden widths selectable at each variable node; 0 means
	// the Identity layer (paper: [0, 16, 32, 64, 80, 96]).
	Ops []int
	// MaxSkip caps the number of skip-connection candidates per node
	// (paper/DeepHyper: 3).
	MaxSkip int
	// InputDim and OutputDim are the fixed network input/output feature
	// dimensions (both Nr = 5 for the POD-LSTM task).
	InputDim, OutputDim int
}

// Default returns the paper's search space: 5 variable nodes with ops
// [Identity, LSTM(16), LSTM(32), LSTM(64), LSTM(80), LSTM(96)], 9 skip
// nodes, and 5-dimensional input/output.
func Default() Space {
	return Space{NumNodes: 5, Ops: []int{0, 16, 32, 64, 80, 96}, MaxSkip: 3, InputDim: 5, OutputDim: 5}
}

// Validate reports configuration errors.
func (s Space) Validate() error {
	if s.NumNodes < 1 {
		return fmt.Errorf("arch: need at least one variable node, got %d", s.NumNodes)
	}
	if len(s.Ops) < 2 {
		return fmt.Errorf("arch: need at least two operations, got %d", len(s.Ops))
	}
	for i, u := range s.Ops {
		if u < 0 {
			return fmt.Errorf("arch: op %d has negative units", i)
		}
	}
	if s.MaxSkip < 0 {
		return fmt.Errorf("arch: negative MaxSkip")
	}
	if s.InputDim < 1 || s.OutputDim < 1 {
		return fmt.Errorf("arch: invalid input/output dims %d/%d", s.InputDim, s.OutputDim)
	}
	return nil
}

// skipCount returns the number of skip-connection variables for node k.
func (s Space) skipCount(k int) int {
	n := k
	if n > s.MaxSkip {
		n = s.MaxSkip
	}
	return n
}

// NumVariables returns the encoding length: one op variable per node plus
// its skip variables.
func (s Space) NumVariables() int {
	n := 0
	for k := 0; k < s.NumNodes; k++ {
		n += 1 + s.skipCount(k)
	}
	return n
}

// NumSkipVariables returns the total number of binary skip variables
// (9 in the paper's space).
func (s Space) NumSkipVariables() int { return s.NumVariables() - s.NumNodes }

// NumChoices returns the number of options at encoding position i.
func (s Space) NumChoices(i int) int {
	pos := 0
	for k := 0; k < s.NumNodes; k++ {
		if i == pos {
			return len(s.Ops)
		}
		pos++
		sc := s.skipCount(k)
		if i < pos+sc {
			return 2
		}
		pos += sc
	}
	panic(fmt.Sprintf("arch: variable index %d out of range [0,%d)", i, s.NumVariables()))
}

// Cardinality returns the total number of architectures in the space.
func (s Space) Cardinality() uint64 {
	total := uint64(1)
	for i := 0; i < s.NumVariables(); i++ {
		total *= uint64(s.NumChoices(i))
	}
	return total
}

// Arch is an encoded architecture: one integer per variable.
type Arch []int

// Key returns a canonical string form usable as a uniqueness key.
func (a Arch) Key() string {
	var b strings.Builder
	for i, v := range a {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Clone returns a copy of a.
func (a Arch) Clone() Arch {
	out := make(Arch, len(a))
	copy(out, a)
	return out
}

// Validate checks that a is a legal encoding for the space.
func (s Space) ValidateArch(a Arch) error {
	if len(a) != s.NumVariables() {
		return fmt.Errorf("arch: encoding length %d, want %d", len(a), s.NumVariables())
	}
	for i, v := range a {
		if v < 0 || v >= s.NumChoices(i) {
			return fmt.Errorf("arch: variable %d value %d outside [0,%d)", i, v, s.NumChoices(i))
		}
	}
	return nil
}

// Random samples a uniform architecture.
func (s Space) Random(rng *tensor.RNG) Arch {
	a := make(Arch, s.NumVariables())
	for i := range a {
		a[i] = rng.Intn(s.NumChoices(i))
	}
	return a
}

// Mutate returns a copy of a with one uniformly chosen variable reassigned
// to a different value — the AE mutation operator (§III-B1).
func (s Space) Mutate(a Arch, rng *tensor.RNG) Arch {
	out := a.Clone()
	i := rng.Intn(len(out))
	nc := s.NumChoices(i)
	// Choose among the nc-1 other values.
	v := rng.Intn(nc - 1)
	if v >= out[i] {
		v++
	}
	out[i] = v
	return out
}

// decoded is the structural view of an encoding.
type decoded struct {
	units []int   // per node; 0 = identity
	skips [][]int // per node: source node indices (-1 = input) of enabled skips
}

func (s Space) decode(a Arch) decoded {
	d := decoded{units: make([]int, s.NumNodes), skips: make([][]int, s.NumNodes)}
	pos := 0
	for k := 0; k < s.NumNodes; k++ {
		d.units[k] = s.Ops[a[pos]]
		pos++
		for j := 0; j < s.skipCount(k); j++ {
			if a[pos] == 1 {
				d.skips[k] = append(d.skips[k], k-2-j)
			}
			pos++
		}
	}
	return d
}

// ToGraphSpec compiles the encoding into an nn.GraphSpec: the variable
// nodes in chain order with their enabled skip inputs, followed by the
// constant LSTM(OutputDim) output node.
func (s Space) ToGraphSpec(a Arch) (nn.GraphSpec, error) {
	if err := s.ValidateArch(a); err != nil {
		return nn.GraphSpec{}, err
	}
	d := s.decode(a)
	spec := nn.GraphSpec{InputDim: s.InputDim}
	for k := 0; k < s.NumNodes; k++ {
		inputs := []int{k - 1} // chain predecessor; -1 = nn.GraphInput
		inputs = append(inputs, d.skips[k]...)
		spec.Nodes = append(spec.Nodes, nn.GraphNodeSpec{Inputs: inputs, Units: d.units[k]})
	}
	spec.Nodes = append(spec.Nodes, nn.GraphNodeSpec{Inputs: []int{s.NumNodes - 1}, Units: s.OutputDim})
	return spec, nil
}

// Build compiles and instantiates the network for a.
func (s Space) Build(a Arch, rng *tensor.RNG) (*nn.Graph, error) {
	spec, err := s.ToGraphSpec(a)
	if err != nil {
		return nil, err
	}
	return nn.NewGraph(spec, rng)
}

// ParamCount computes the number of trainable weights of a's network
// without allocating it — the evaluation-cost proxy used by the cluster
// simulator's duration model.
func (s Space) ParamCount(a Arch) (int, error) {
	spec, err := s.ToGraphSpec(a)
	if err != nil {
		return 0, err
	}
	dims := make([]int, len(spec.Nodes))
	dimOf := func(i int) int {
		if i == nn.GraphInput {
			return spec.InputDim
		}
		return dims[i]
	}
	total := 0
	for i, node := range spec.Nodes {
		merged := dimOf(node.Inputs[0])
		if len(node.Inputs) > 1 {
			for _, in := range node.Inputs {
				total += (dimOf(in) + 1) * merged // projection Dense
			}
		}
		if node.Units > 0 {
			total += 4 * node.Units * (merged + node.Units + 1) // LSTM
			dims[i] = node.Units
		} else {
			dims[i] = merged
		}
	}
	return total, nil
}

// Describe renders a human-readable layer listing (the Fig 4 view).
func (s Space) Describe(a Arch) string {
	d := s.decode(a)
	var b strings.Builder
	fmt.Fprintf(&b, "Input(%d)\n", s.InputDim)
	for k := 0; k < s.NumNodes; k++ {
		op := "Identity"
		if d.units[k] > 0 {
			op = fmt.Sprintf("LSTM(%d)", d.units[k])
		}
		fmt.Fprintf(&b, "  N%d: %s", k+1, op)
		if len(d.skips[k]) > 0 {
			srcs := make([]string, len(d.skips[k]))
			for i, src := range d.skips[k] {
				if src < 0 {
					srcs[i] = "Input"
				} else {
					srcs[i] = fmt.Sprintf("N%d", src+1)
				}
			}
			fmt.Fprintf(&b, "  [skip from %s via Dense->Add->ReLU]", strings.Join(srcs, ", "))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  Output: LSTM(%d)\n", s.OutputDim)
	return b.String()
}

// ParseArch parses the canonical Key() form ("1-0-2-...") back into an
// architecture and validates it against the space. It is the inverse of
// Arch.Key and lets tools persist and reload discovered architectures.
func (s Space) ParseArch(key string) (Arch, error) {
	if key == "" {
		return nil, fmt.Errorf("arch: empty architecture key")
	}
	parts := strings.Split(key, "-")
	a := make(Arch, len(parts))
	for i, p := range parts {
		v := 0
		for _, c := range p {
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("arch: bad key segment %q", p)
			}
			v = v*10 + int(c-'0')
		}
		if p == "" {
			return nil, fmt.Errorf("arch: empty key segment")
		}
		a[i] = v
	}
	if err := s.ValidateArch(a); err != nil {
		return nil, err
	}
	return a, nil
}
