package arch

import (
	"strings"
	"testing"
	"testing/quick"

	"podnas/internal/nn"
	"podnas/internal/tensor"
)

func TestDefaultSpaceMatchesPaper(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumNodes != 5 {
		t.Errorf("NumNodes = %d, want 5", s.NumNodes)
	}
	if got := s.NumSkipVariables(); got != 9 {
		t.Errorf("skip variables = %d, want 9 (paper)", got)
	}
	if got := s.NumVariables(); got != 14 {
		t.Errorf("total variables = %d, want 14", got)
	}
	// 6^5 * 2^9 = 3,981,312 (see DESIGN.md on the paper's quoted 8,605,184).
	if got := s.Cardinality(); got != 3981312 {
		t.Errorf("cardinality = %d, want 3981312", got)
	}
}

func TestNumChoicesLayout(t *testing.T) {
	s := Default()
	// Layout: [op0, op1, s, op2, s, s, op3, s, s, s, op4, s, s, s].
	wantOps := []int{0, 1, 3, 6, 10}
	for i := 0; i < s.NumVariables(); i++ {
		nc := s.NumChoices(i)
		isOp := false
		for _, p := range wantOps {
			if i == p {
				isOp = true
			}
		}
		if isOp && nc != len(s.Ops) {
			t.Errorf("position %d: choices %d, want %d (op)", i, nc, len(s.Ops))
		}
		if !isOp && nc != 2 {
			t.Errorf("position %d: choices %d, want 2 (skip)", i, nc)
		}
	}
}

func TestRandomArchValid(t *testing.T) {
	s := Default()
	rng := tensor.NewRNG(1)
	for i := 0; i < 200; i++ {
		a := s.Random(rng)
		if err := s.ValidateArch(a); err != nil {
			t.Fatalf("random arch invalid: %v", err)
		}
	}
}

func TestMutateChangesExactlyOneVariable(t *testing.T) {
	s := Default()
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		a := s.Random(rng)
		b := s.Mutate(a, rng)
		if s.ValidateArch(b) != nil {
			return false
		}
		diff := 0
		for i := range a {
			if a[i] != b[i] {
				diff++
			}
		}
		return diff == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMutateDoesNotAliasParent(t *testing.T) {
	s := Default()
	rng := tensor.NewRNG(2)
	a := s.Random(rng)
	orig := a.Clone()
	_ = s.Mutate(a, rng)
	for i := range a {
		if a[i] != orig[i] {
			t.Fatal("Mutate modified the parent")
		}
	}
}

func TestKeyUniqueAndStable(t *testing.T) {
	s := Default()
	rng := tensor.NewRNG(3)
	seen := map[string]Arch{}
	for i := 0; i < 500; i++ {
		a := s.Random(rng)
		k := a.Key()
		if prev, ok := seen[k]; ok {
			for j := range a {
				if a[j] != prev[j] {
					t.Fatalf("key collision between %v and %v", a, prev)
				}
			}
		}
		seen[k] = a
	}
	a := Arch{1, 2, 0}
	if a.Key() != "1-2-0" {
		t.Errorf("Key = %q", a.Key())
	}
}

func TestToGraphSpecChainOnly(t *testing.T) {
	s := Default()
	// All ops = LSTM(16) (index 1), all skips off.
	a := make(Arch, s.NumVariables())
	pos := 0
	for k := 0; k < s.NumNodes; k++ {
		a[pos] = 1
		pos += 1 + s.skipCount(k)
	}
	spec, err := s.ToGraphSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Nodes) != 6 {
		t.Fatalf("nodes = %d, want 6 (5 variable + output)", len(spec.Nodes))
	}
	for i, n := range spec.Nodes[:5] {
		if len(n.Inputs) != 1 || n.Inputs[0] != i-1 {
			t.Errorf("node %d inputs %v", i, n.Inputs)
		}
		if n.Units != 16 {
			t.Errorf("node %d units %d", i, n.Units)
		}
	}
	out := spec.Nodes[5]
	if out.Units != 5 || out.Inputs[0] != 4 {
		t.Errorf("output node %+v", out)
	}
}

func TestToGraphSpecSkipTargets(t *testing.T) {
	s := Default()
	// Enable every skip: node k gets sources k-2, k-3, k-4 (>= -1).
	a := make(Arch, s.NumVariables())
	pos := 0
	for k := 0; k < s.NumNodes; k++ {
		a[pos] = 2 // LSTM(32)
		pos++
		for j := 0; j < s.skipCount(k); j++ {
			a[pos] = 1
			pos++
		}
	}
	spec, err := s.ToGraphSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	wantInputs := [][]int{
		{-1},
		{0, -1},
		{1, 0, -1},
		{2, 1, 0, -1},
		{3, 2, 1, 0},
	}
	for k, want := range wantInputs {
		got := spec.Nodes[k].Inputs
		if len(got) != len(want) {
			t.Fatalf("node %d inputs %v, want %v", k, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d inputs %v, want %v", k, got, want)
			}
		}
	}
}

func TestBuildAndRunEveryOpCombination(t *testing.T) {
	// Smoke test: random architectures build and run forward/backward.
	s := Default()
	rng := tensor.NewRNG(4)
	x := tensor.NewTensor3(2, 3, 5)
	tensor.NewRNG(9).FillNormal(x.Data, 1)
	for i := 0; i < 25; i++ {
		a := s.Random(rng)
		g, err := s.Build(a, rng.Split(uint64(i)))
		if err != nil {
			t.Fatalf("arch %v: %v", a, err)
		}
		y := g.Forward(x)
		if y.F != 5 || y.T != 3 || y.B != 2 {
			t.Fatalf("arch %v output shape %dx%dx%d", a, y.B, y.T, y.F)
		}
		g.Backward(y.Clone())
	}
}

func TestParamCountMatchesBuiltNetwork(t *testing.T) {
	s := Default()
	rng := tensor.NewRNG(5)
	for i := 0; i < 40; i++ {
		a := s.Random(rng)
		want, err := s.ParamCount(a)
		if err != nil {
			t.Fatal(err)
		}
		g, err := s.Build(a, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.ParamCount(); got != want {
			t.Fatalf("arch %v: static count %d != built %d", a, want, got)
		}
	}
}

func TestIdentityOnlyArchitectureStillHasOutputLayer(t *testing.T) {
	s := Default()
	a := make(Arch, s.NumVariables()) // all zeros: identity ops, no skips
	g, err := s.Build(a, tensor.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	// Only the constant output LSTM(5) with input dim 5 has parameters.
	want := 4 * 5 * (5 + 5 + 1)
	if g.ParamCount() != want {
		t.Errorf("ParamCount = %d, want %d", g.ParamCount(), want)
	}
	if g.OutDim() != 5 {
		t.Errorf("OutDim = %d", g.OutDim())
	}
}

func TestDescribeMentionsStructure(t *testing.T) {
	s := Default()
	a := make(Arch, s.NumVariables())
	a[0] = 5 // LSTM(96)
	a[2] = 1 // node 1 skip from input
	desc := s.Describe(a)
	for _, want := range []string{"LSTM(96)", "skip from Input", "Output: LSTM(5)", "Identity"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestValidateArchErrors(t *testing.T) {
	s := Default()
	if err := s.ValidateArch(Arch{1, 2}); err == nil {
		t.Error("short encoding should fail")
	}
	a := make(Arch, s.NumVariables())
	a[0] = len(s.Ops)
	if err := s.ValidateArch(a); err == nil {
		t.Error("op index out of range should fail")
	}
	a[0] = 0
	a[2] = 2
	if err := s.ValidateArch(a); err == nil {
		t.Error("skip value 2 should fail")
	}
}

func TestSpaceValidateErrors(t *testing.T) {
	bad := []Space{
		{NumNodes: 0, Ops: []int{0, 16}, MaxSkip: 3, InputDim: 5, OutputDim: 5},
		{NumNodes: 5, Ops: []int{0}, MaxSkip: 3, InputDim: 5, OutputDim: 5},
		{NumNodes: 5, Ops: []int{0, -4}, MaxSkip: 3, InputDim: 5, OutputDim: 5},
		{NumNodes: 5, Ops: []int{0, 16}, MaxSkip: -1, InputDim: 5, OutputDim: 5},
		{NumNodes: 5, Ops: []int{0, 16}, MaxSkip: 3, InputDim: 0, OutputDim: 5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("space %d should be invalid", i)
		}
	}
}

func TestGraphSpecValidatesDownstream(t *testing.T) {
	// Every random architecture must compile to a spec nn accepts.
	s := Default()
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		spec, err := s.ToGraphSpec(s.Random(rng))
		if err != nil {
			return false
		}
		return spec.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

var _ = nn.GraphInput // document the -1 convention shared with nn

func TestParseArchRoundTrip(t *testing.T) {
	s := Default()
	rng := tensor.NewRNG(77)
	for i := 0; i < 50; i++ {
		a := s.Random(rng)
		parsed, err := s.ParseArch(a.Key())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		for j := range a {
			if parsed[j] != a[j] {
				t.Fatalf("round trip mismatch at %d", j)
			}
		}
	}
}

func TestParseArchErrors(t *testing.T) {
	s := Default()
	for _, bad := range []string{"", "1-2", "a-b-c", "9-9-9-9-9-9-9-9-9-9-9-9-9-9", "1--2"} {
		if _, err := s.ParseArch(bad); err == nil {
			t.Errorf("ParseArch(%q) should fail", bad)
		}
	}
}

func TestMutationReachability(t *testing.T) {
	// Property: repeated mutation is ergodic enough to change every variable
	// position eventually (no frozen coordinates).
	s := Default()
	rng := tensor.NewRNG(123)
	a := s.Random(rng)
	changed := make([]bool, len(a))
	cur := a
	for i := 0; i < 2000; i++ {
		next := s.Mutate(cur, rng)
		for j := range next {
			if next[j] != cur[j] {
				changed[j] = true
			}
		}
		cur = next
	}
	for j, c := range changed {
		if !c {
			t.Errorf("variable %d never mutated in 2000 steps", j)
		}
	}
}

func TestParamCountMonotoneInUnits(t *testing.T) {
	// Swapping one op for a wider LSTM must not decrease the parameter count.
	s := Default()
	rng := tensor.NewRNG(124)
	for i := 0; i < 30; i++ {
		a := s.Random(rng)
		base, err := s.ParamCount(a)
		if err != nil {
			t.Fatal(err)
		}
		// Find an op position and bump it to the widest op.
		b := a.Clone()
		b[0] = len(s.Ops) - 1
		wide, err := s.ParamCount(b)
		if err != nil {
			t.Fatal(err)
		}
		if wide < base && a[0] != len(s.Ops)-1 {
			t.Fatalf("widening node 1 reduced params: %d -> %d (arch %v)", base, wide, a)
		}
	}
}
