// Package linalg implements the dense linear-algebra routines the POD and
// baseline packages need: a symmetric eigensolver (cyclic Jacobi), Cholesky
// factorization, and regularized least squares. Everything operates on
// tensor.Matrix values and is written for clarity first, with the O(n³)
// kernels kept tight enough for the ~500×500 problems that arise from the
// method of snapshots.
package linalg

import (
	"fmt"
	"math"
	"sort"

	"podnas/internal/tensor"
)

// EigenResult holds the eigendecomposition of a symmetric matrix:
// A = V diag(Values) Vᵀ with orthonormal columns in V. Eigenpairs are sorted
// by descending eigenvalue, the order POD consumes them in.
type EigenResult struct {
	Values  []float64      // eigenvalues, descending
	Vectors *tensor.Matrix // n×n, column j is the eigenvector for Values[j]
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method. a is not modified. It returns an error if
// a is not square or the iteration fails to converge.
func SymEigen(a *tensor.Matrix) (*EigenResult, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: SymEigen needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if n == 0 {
		return &EigenResult{Values: nil, Vectors: tensor.NewMatrix(0, 0)}, nil
	}
	w := a.Clone()
	v := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+frobenius(w)) {
			return sortedEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Stable rotation computation (Golub & Van Loan §8.5).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(w, v, p, q, c, s)
			}
		}
	}
	return nil, fmt.Errorf("linalg: SymEigen did not converge in %d sweeps (n=%d)", 100, n)
}

// applyJacobiRotation applies the two-sided rotation G(p,q,θ)ᵀ W G(p,q,θ)
// and accumulates G into v.
func applyJacobiRotation(w, v *tensor.Matrix, p, q int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(a *tensor.Matrix) float64 {
	var s float64
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				v := a.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

func frobenius(a *tensor.Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func sortedEigen(w, v *tensor.Matrix) *EigenResult {
	n := w.Rows
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })

	outVals := make([]float64, n)
	outVecs := tensor.NewMatrix(n, n)
	for newj, oldj := range order {
		outVals[newj] = vals[oldj]
		for i := 0; i < n; i++ {
			outVecs.Set(i, newj, v.At(i, oldj))
		}
	}
	return &EigenResult{Values: outVals, Vectors: outVecs}
}
