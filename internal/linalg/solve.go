package linalg

import (
	"fmt"
	"math"

	"podnas/internal/tensor"
)

// Cholesky computes the lower-triangular factor L of the symmetric positive
// definite matrix a such that a = L Lᵀ. It returns an error if a is not
// square or not positive definite.
func Cholesky(a *tensor.Matrix) (*tensor.Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	l := tensor.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: Cholesky pivot %d is %g; matrix not positive definite", j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s*inv)
		}
	}
	return l, nil
}

// CholeskySolve solves A X = B given the Cholesky factor L of A, where B has
// one or more right-hand-side columns. The solution overwrites a copy of b.
func CholeskySolve(l, b *tensor.Matrix) *tensor.Matrix {
	n := l.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("linalg: CholeskySolve rhs has %d rows, want %d", b.Rows, n))
	}
	x := b.Clone()
	c := x.Cols
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		for k := 0; k < i; k++ {
			lik := l.At(i, k)
			//podnas:allow floateq exact sparsity skip: only bitwise zero contributes nothing
			if lik == 0 {
				continue
			}
			xk := x.Row(k)
			for j := 0; j < c; j++ {
				xi[j] -= lik * xk[j]
			}
		}
		inv := 1 / l.At(i, i)
		for j := 0; j < c; j++ {
			xi[j] *= inv
		}
	}
	// Back substitution: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			lki := l.At(k, i)
			//podnas:allow floateq exact sparsity skip: only bitwise zero contributes nothing
			if lki == 0 {
				continue
			}
			xk := x.Row(k)
			for j := 0; j < c; j++ {
				xi[j] -= lki * xk[j]
			}
		}
		inv := 1 / l.At(i, i)
		for j := 0; j < c; j++ {
			xi[j] *= inv
		}
	}
	return x
}

// SolveSPD solves A X = B for symmetric positive definite A.
func SolveSPD(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// RidgeLeastSquares solves the multi-output regularized least-squares problem
//
//	min_W ||X W - Y||² + lambda ||W||²
//
// via the normal equations (Xᵀ X + λI) W = Xᵀ Y. X is n×p, Y is n×q, and the
// returned W is p×q. lambda = 0 gives ordinary least squares; a tiny lambda
// keeps the normal equations positive definite for rank-deficient designs.
func RidgeLeastSquares(x, y *tensor.Matrix, lambda float64) (*tensor.Matrix, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("linalg: ridge design has %d rows, targets %d", x.Rows, y.Rows)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge penalty %g", lambda)
	}
	gram := tensor.Gram(x)
	for i := 0; i < gram.Rows; i++ {
		gram.Set(i, i, gram.At(i, i)+lambda)
	}
	xty := tensor.MatMulTransA(x, y)
	w, err := SolveSPD(gram, xty)
	if err != nil {
		return nil, fmt.Errorf("linalg: ridge solve failed (try larger lambda): %w", err)
	}
	return w, nil
}
