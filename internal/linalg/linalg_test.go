package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"podnas/internal/tensor"
)

func randomSymmetric(rng *tensor.RNG, n int) *tensor.Matrix {
	a := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func randomSPD(rng *tensor.RNG, n int) *tensor.Matrix {
	b := tensor.NewMatrix(n, n+3)
	rng.FillNormal(b.Data, 1)
	g := tensor.MatMulTransB(b, b) // B Bᵀ is SPD with probability 1
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+0.1)
	}
	return g
}

func TestSymEigenDiagonal(t *testing.T) {
	a := tensor.NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range want {
		if math.Abs(res.Values[i]-v) > 1e-12 {
			t.Errorf("eigenvalue %d = %g, want %g", i, res.Values[i], v)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := tensor.FromSlice(2, 2, []float64{2, 1, 1, 2})
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-3) > 1e-12 || math.Abs(res.Values[1]-1) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [3 1]", res.Values)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := randomSymmetric(rng, n)
		res, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild A = V Λ Vᵀ.
		vl := res.Vectors.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				vl.Set(i, j, vl.At(i, j)*res.Values[j])
			}
		}
		rebuilt := tensor.MatMulTransB(vl, res.Vectors)
		if !rebuilt.Equal(a, 1e-8*float64(n)) {
			t.Errorf("n=%d: V Λ Vᵀ does not reconstruct A", n)
		}
	}
}

func TestSymEigenOrthonormality(t *testing.T) {
	rng := tensor.NewRNG(2)
	a := randomSymmetric(rng, 15)
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	vtv := tensor.MatMulTransA(res.Vectors, res.Vectors)
	for i := 0; i < 15; i++ {
		for j := 0; j < 15; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-9 {
				t.Fatalf("VᵀV(%d,%d) = %g", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestSymEigenSortedDescending(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(10)
		res, err := SymEigen(randomSymmetric(rng, n))
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if res.Values[i] > res.Values[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenTraceInvariant(t *testing.T) {
	// Sum of eigenvalues equals trace.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(12)
		a := randomSymmetric(rng, n)
		res, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += res.Values[i]
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(tensor.NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestCholeskyFactorization(t *testing.T) {
	rng := tensor.NewRNG(3)
	for _, n := range []int{1, 2, 6, 20} {
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rebuilt := tensor.MatMulTransB(l, l)
		if !rebuilt.Equal(a, 1e-8*float64(n)) {
			t.Errorf("n=%d: L Lᵀ != A", n)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L(%d,%d) = %g, not lower triangular", i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := tensor.FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	rng := tensor.NewRNG(4)
	a := randomSPD(rng, 10)
	x := tensor.NewMatrix(10, 3)
	rng.FillNormal(x.Data, 1)
	b := tensor.MatMul(a, x)
	got, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x, 1e-7) {
		t.Error("SolveSPD did not recover the solution")
	}
}

func TestRidgeLeastSquaresExact(t *testing.T) {
	// Exactly determined system with lambda=0 recovers the true weights.
	rng := tensor.NewRNG(5)
	x := tensor.NewMatrix(50, 4)
	rng.FillNormal(x.Data, 1)
	wTrue := tensor.NewMatrix(4, 2)
	rng.FillNormal(wTrue.Data, 1)
	y := tensor.MatMul(x, wTrue)
	w, err := RidgeLeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Equal(wTrue, 1e-8) {
		t.Error("OLS did not recover the generating weights")
	}
}

func TestRidgeShrinks(t *testing.T) {
	rng := tensor.NewRNG(6)
	x := tensor.NewMatrix(30, 3)
	rng.FillNormal(x.Data, 1)
	y := tensor.NewMatrix(30, 1)
	rng.FillNormal(y.Data, 1)
	w0, err := RidgeLeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := RidgeLeastSquares(x, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Norm2() >= w0.Norm2() {
		t.Errorf("ridge did not shrink: ||w(100)||=%g >= ||w(0)||=%g", w1.Norm2(), w0.Norm2())
	}
}

func TestRidgeRejectsBadInput(t *testing.T) {
	if _, err := RidgeLeastSquares(tensor.NewMatrix(3, 2), tensor.NewMatrix(4, 1), 0); err == nil {
		t.Error("expected row mismatch error")
	}
	if _, err := RidgeLeastSquares(tensor.NewMatrix(3, 2), tensor.NewMatrix(3, 1), -1); err == nil {
		t.Error("expected negative lambda error")
	}
}

func TestRidgeHandlesRankDeficiency(t *testing.T) {
	// Duplicate column makes XᵀX singular; a positive lambda must still solve.
	x := tensor.FromSlice(4, 2, []float64{1, 1, 2, 2, 3, 3, 4, 4})
	y := tensor.FromSlice(4, 1, []float64{2, 4, 6, 8})
	if _, err := RidgeLeastSquares(x, y, 0); err == nil {
		t.Log("note: OLS on singular design solved (rounding made it PD); acceptable")
	}
	w, err := RidgeLeastSquares(x, y, 1e-6)
	if err != nil {
		t.Fatalf("ridge with lambda>0 failed: %v", err)
	}
	pred := tensor.MatMul(x, w)
	if !pred.Equal(y, 1e-3) {
		t.Error("ridge solution does not fit consistent system")
	}
}

func TestCholeskySolveMultipleRHS(t *testing.T) {
	rng := tensor.NewRNG(7)
	a := randomSPD(rng, 6)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(6, 4)
	rng.FillNormal(x.Data, 1)
	b := tensor.MatMul(a, x)
	got := CholeskySolve(l, b)
	if !got.Equal(x, 1e-7) {
		t.Error("multi-RHS Cholesky solve failed")
	}
}

func TestCholeskySolvePanicsOnShape(t *testing.T) {
	rng := tensor.NewRNG(8)
	a := randomSPD(rng, 4)
	l, _ := Cholesky(a)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CholeskySolve(l, tensor.NewMatrix(5, 1))
}

func TestSymEigenEmptyMatrix(t *testing.T) {
	res, err := SymEigen(tensor.NewMatrix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 {
		t.Error("empty matrix should have no eigenvalues")
	}
}

func TestSolveSPDErrorsOnIndefinite(t *testing.T) {
	a := tensor.FromSlice(2, 2, []float64{0, 1, 1, 0})
	if _, err := SolveSPD(a, tensor.NewMatrix(2, 1)); err == nil {
		t.Error("indefinite solve should fail")
	}
}
