package baseline

import (
	"math"
	"testing"

	"podnas/internal/metrics"
	"podnas/internal/tensor"
	"podnas/internal/window"
)

// linearData makes y = xW + b + noise.
func linearData(rng *tensor.RNG, n, p, q int, noise float64) (*tensor.Matrix, *tensor.Matrix) {
	x := tensor.NewMatrix(n, p)
	rng.FillNormal(x.Data, 1)
	w := tensor.NewMatrix(p, q)
	rng.FillNormal(w.Data, 1)
	y := tensor.MatMul(x, w)
	for i := range y.Data {
		y.Data[i] += 0.5 + noise*rng.NormFloat64()
	}
	return x, y
}

// stepData makes a piecewise-constant target trees can fit exactly:
// y = 3 if x0 > 0 else -1, second output = -y.
func stepData(rng *tensor.RNG, n, p int) (*tensor.Matrix, *tensor.Matrix) {
	x := tensor.NewMatrix(n, p)
	rng.FillNormal(x.Data, 1)
	y := tensor.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		v := -1.0
		if x.At(i, 0) > 0 {
			v = 3
		}
		y.Set(i, 0, v)
		y.Set(i, 1, -v)
	}
	return x, y
}

func TestLinearRecoversAffineMap(t *testing.T) {
	rng := tensor.NewRNG(1)
	x, y := linearData(rng, 200, 6, 3, 0)
	l := NewLinear()
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := l.Predict(x)
	if r := metrics.R2(pred.Data, y.Data); r < 0.999999 {
		t.Errorf("linear R² on noiseless linear data = %v, want ~1", r)
	}
}

func TestLinearGeneralizes(t *testing.T) {
	rng := tensor.NewRNG(2)
	x, y := linearData(rng, 300, 5, 2, 0.1)
	xt, yt := linearData(tensor.NewRNG(2), 300, 5, 2, 0.1) // same W via same seed
	l := NewLinear()
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r := metrics.R2(l.Predict(xt).Data, yt.Data); r < 0.9 {
		t.Errorf("linear test R² = %.3f", r)
	}
}

func TestDecisionTreeFitsStepFunction(t *testing.T) {
	rng := tensor.NewRNG(3)
	x, y := stepData(rng, 300, 4)
	d := NewDecisionTree()
	if err := d.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r := metrics.R2(d.Predict(x).Data, y.Data); r < 0.999 {
		t.Errorf("tree R² on step data = %.4f, want ~1", r)
	}
}

func TestDecisionTreeRespectsMaxDepth(t *testing.T) {
	rng := tensor.NewRNG(4)
	x, y := linearData(rng, 200, 3, 1, 0)
	d := NewDecisionTree()
	d.MaxDepth = 2
	if err := d.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if dep := d.root.depth(); dep > 2 {
		t.Errorf("tree depth %d exceeds max 2", dep)
	}
}

func TestTreePredictsLeafMeans(t *testing.T) {
	// Single-node tree (depth 0): predicts the target mean everywhere.
	rng := tensor.NewRNG(5)
	x, y := linearData(rng, 50, 2, 2, 0)
	d := NewDecisionTree()
	d.MaxDepth = 0
	if err := d.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := d.Predict(x)
	mean0 := 0.0
	for i := 0; i < y.Rows; i++ {
		mean0 += y.At(i, 0)
	}
	mean0 /= float64(y.Rows)
	for i := 0; i < pred.Rows; i++ {
		if math.Abs(pred.At(i, 0)-mean0) > 1e-12 {
			t.Fatal("depth-0 tree should predict the mean")
		}
	}
}

func TestRandomForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	// Noisy step targets: a deep single tree chases the noise; bagging
	// averages it away, so the forest must generalize better.
	noisyStep := func(seed uint64) (*tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
		rng := tensor.NewRNG(seed)
		x, clean := stepData(rng, 250, 4)
		noisy := clean.Clone()
		for i := range noisy.Data {
			noisy.Data[i] += 1.0 * rng.NormFloat64()
		}
		return x, noisy, clean
	}
	x, yNoisy, _ := noisyStep(6)
	xt, _, ytClean := noisyStep(99)

	tree := NewDecisionTree()
	tree.MaxDepth = 12
	tree.MinLeaf = 1
	if err := tree.Fit(x, yNoisy); err != nil {
		t.Fatal(err)
	}
	forest := NewRandomForest()
	forest.NTrees = 60
	if err := forest.Fit(x, yNoisy); err != nil {
		t.Fatal(err)
	}
	rTree := metrics.R2(tree.Predict(xt).Data, ytClean.Data)
	rForest := metrics.R2(forest.Predict(xt).Data, ytClean.Data)
	if rForest <= rTree {
		t.Errorf("forest test R² %.3f should beat single tree %.3f (variance reduction)", rForest, rTree)
	}
}

func TestGradientBoostingFitsNonlinearTarget(t *testing.T) {
	rng := tensor.NewRNG(7)
	n := 300
	x := tensor.NewMatrix(n, 3)
	rng.FillNormal(x.Data, 1)
	y := tensor.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		y.Set(i, 0, math.Sin(2*x.At(i, 0))+0.5*x.At(i, 1))
		y.Set(i, 1, x.At(i, 0)*x.At(i, 1))
	}
	gb := NewGradientBoosting()
	if err := gb.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r := metrics.R2(gb.Predict(x).Data, y.Data); r < 0.9 {
		t.Errorf("boosting train R² = %.3f on smooth nonlinear target", r)
	}
}

func TestTreesCannotExtrapolate(t *testing.T) {
	// The Table II failure mode: targets drift beyond the training range
	// (the warming trend); trees clamp at training extremes, the linear
	// model follows the drift.
	n := 200
	x := tensor.NewMatrix(n, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		v := float64(i) / 20
		x.Set(i, 0, v)
		y.Set(i, 0, 2*v+1)
	}
	// Test data continues the ramp beyond the training range.
	xt := tensor.NewMatrix(50, 1)
	yt := tensor.NewMatrix(50, 1)
	for i := 0; i < 50; i++ {
		v := float64(n+i) / 20
		xt.Set(i, 0, v)
		yt.Set(i, 0, 2*v+1)
	}
	for _, r := range []Regressor{NewRandomForest(), NewGradientBoosting(), NewDecisionTree()} {
		if err := r.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		pred := r.Predict(xt)
		maxTrain := y.At(n-1, 0)
		for i := 0; i < pred.Rows; i++ {
			if pred.At(i, 0) > maxTrain+0.5 {
				t.Errorf("%s extrapolated to %.2f beyond training max %.2f", r.Name(), pred.At(i, 0), maxTrain)
			}
		}
	}
	lin := NewLinear()
	if err := lin.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r := metrics.R2(lin.Predict(xt).Data, yt.Data); r < 0.999 {
		t.Errorf("linear extrapolation R² = %.4f, want ~1 on a pure ramp", r)
	}
}

func TestFitShapeErrors(t *testing.T) {
	x := tensor.NewMatrix(5, 2)
	y := tensor.NewMatrix(6, 1)
	for _, r := range []Regressor{NewLinear(), NewDecisionTree(), NewRandomForest(), NewGradientBoosting()} {
		if err := r.Fit(x, y); err == nil {
			t.Errorf("%s accepted mismatched samples", r.Name())
		}
		if err := r.Fit(tensor.NewMatrix(0, 0), tensor.NewMatrix(0, 0)); err == nil {
			t.Errorf("%s accepted empty data", r.Name())
		}
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	for _, r := range []Regressor{NewLinear(), NewDecisionTree(), NewRandomForest(), NewGradientBoosting()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s Predict before Fit did not panic", r.Name())
				}
			}()
			r.Predict(tensor.NewMatrix(1, 2))
		}()
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	rng := tensor.NewRNG(8)
	x, y := linearData(rng, 100, 3, 1, 0.2)
	f1 := NewRandomForest()
	f2 := NewRandomForest()
	f1.NTrees, f2.NTrees = 20, 20
	if err := f1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p1, p2 := f1.Predict(x), f2.Predict(x)
	if !p1.Equal(p2, 0) {
		t.Error("same-seed forests disagree")
	}
}

func TestFlattenSharesStorage(t *testing.T) {
	x := tensor.NewTensor3(2, 3, 4)
	m := Flatten(x)
	if m.Rows != 2 || m.Cols != 12 {
		t.Fatalf("Flatten shape %dx%d", m.Rows, m.Cols)
	}
	m.Set(1, 11, 9)
	if x.At(1, 2, 3) != 9 {
		t.Error("Flatten copies instead of aliasing")
	}
}

func TestWindowedHarness(t *testing.T) {
	// A windowed linear process must be learnable by the linear baseline.
	nt := 120
	a := tensor.NewMatrix(2, nt)
	for tt := 0; tt < nt; tt++ {
		a.Set(0, tt, math.Sin(0.3*float64(tt)))
		a.Set(1, tt, math.Cos(0.3*float64(tt)))
	}
	d, err := window.Build(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := d.Split(0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	lin := NewLinear()
	if err := FitWindowed(lin, train); err != nil {
		t.Fatal(err)
	}
	if r := EvaluateR2(lin, val); r < 0.99 {
		t.Errorf("windowed sinusoid linear R² = %.4f, want ~1", r)
	}
	if err := FitWindowed(lin, &window.Dataset{X: tensor.NewTensor3(0, 1, 1), Y: tensor.NewTensor3(0, 1, 1)}); err == nil {
		t.Error("empty windowed fit should fail")
	}
}

func TestGBTMoreRoundsFitBetter(t *testing.T) {
	// Property of boosting: training fit improves with rounds.
	rng := tensor.NewRNG(20)
	x, y := linearData(rng, 150, 4, 1, 0.3)
	short := NewGradientBoosting()
	short.NTrees = 5
	long := NewGradientBoosting()
	long.NTrees = 80
	if err := short.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := long.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	rs := metrics.R2(short.Predict(x).Data, y.Data)
	rl := metrics.R2(long.Predict(x).Data, y.Data)
	if rl <= rs {
		t.Errorf("80 rounds (R2 %.3f) should fit train better than 5 (R2 %.3f)", rl, rs)
	}
}

func TestGBTConfigValidation(t *testing.T) {
	rng := tensor.NewRNG(21)
	x, y := linearData(rng, 20, 2, 1, 0)
	gb := NewGradientBoosting()
	gb.NTrees = 0
	if err := gb.Fit(x, y); err == nil {
		t.Error("zero rounds should fail")
	}
	gb = NewGradientBoosting()
	gb.LearningRate = 0
	if err := gb.Fit(x, y); err == nil {
		t.Error("zero learning rate should fail")
	}
	rf := NewRandomForest()
	rf.NTrees = 0
	if err := rf.Fit(x, y); err == nil {
		t.Error("zero trees should fail")
	}
}

func TestTreeSingleSample(t *testing.T) {
	// A one-sample fit must produce a leaf predicting that sample.
	x := tensor.FromSlice(1, 2, []float64{1, 2})
	y := tensor.FromSlice(1, 1, []float64{7})
	d := NewDecisionTree()
	if err := d.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := d.Predict(x).At(0, 0); got != 7 {
		t.Errorf("single-sample prediction %g, want 7", got)
	}
}
