// Package baseline implements the classical forecasting methods of the
// paper's Table II — a linear model, a random forest, and an XGBoost-style
// gradient-boosted tree ensemble — within the same non-autoregressive
// windowed framework as the POD-LSTM: the model maps a flattened window of K
// past coefficient vectors to the flattened window of the next K (fireTS's
// multi-output direct forecast). Tree methods famously cannot extrapolate
// beyond the training range of the targets, which is exactly why they
// collapse on the paper's 1990–2018 test period (Table II) while the LSTMs
// hold up.
package baseline

import (
	"fmt"
	"sort"

	"podnas/internal/tensor"
)

// Regressor is a multi-output regressor on flat feature matrices.
type Regressor interface {
	// Fit trains on x (n×p) and targets y (n×q).
	Fit(x, y *tensor.Matrix) error
	// Predict returns an m×q prediction matrix for x (m×p). It panics if
	// called before a successful Fit.
	Predict(x *tensor.Matrix) *tensor.Matrix
	// Name identifies the method for reporting.
	Name() string
}

// treeNode is a node of a multi-output CART regression tree.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     []float64 // leaf mean per output (leaf iff left == nil)
}

// treeConfig bundles CART growth settings.
type treeConfig struct {
	maxDepth    int
	minLeaf     int
	featureFrac float64 // fraction of features considered per split (1 = all)
}

// buildTree grows a CART tree on the sample indices idx. Splits minimize the
// summed per-output SSE (variance reduction).
func buildTree(x, y *tensor.Matrix, idx []int, cfg treeConfig, depth int, rng *tensor.RNG) *treeNode {
	q := y.Cols
	node := &treeNode{value: make([]float64, q)}
	for _, i := range idx {
		row := y.Row(i)
		for j, v := range row {
			node.value[j] += v
		}
	}
	inv := 1 / float64(len(idx))
	for j := range node.value {
		node.value[j] *= inv
	}
	if depth >= cfg.maxDepth || len(idx) < 2*cfg.minLeaf {
		return node
	}

	p := x.Cols
	nFeat := p
	if cfg.featureFrac < 1 {
		nFeat = int(float64(p)*cfg.featureFrac + 0.5)
		if nFeat < 1 {
			nFeat = 1
		}
	}
	features := rng.Perm(p)[:nFeat]

	// Parent score: Σ_q S_q²/n (the part of -SSE that varies with splits).
	totals := make([]float64, q)
	for _, i := range idx {
		row := y.Row(i)
		for j, v := range row {
			totals[j] += v
		}
	}
	parentScore := sumSqOverN(totals, len(idx))

	bestGain := 1e-12
	bestFeature := -1
	bestThreshold := 0.0
	order := make([]int, len(idx))
	leftSums := make([]float64, q)

	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x.At(order[a], f) < x.At(order[b], f) })
		for j := range leftSums {
			leftSums[j] = 0
		}
		for k := 0; k < len(order)-1; k++ {
			row := y.Row(order[k])
			for j, v := range row {
				leftSums[j] += v
			}
			nl := k + 1
			if nl < cfg.minLeaf || len(order)-nl < cfg.minLeaf {
				continue
			}
			xv, xn := x.At(order[k], f), x.At(order[k+1], f)
			//podnas:allow floateq a split between bitwise-equal feature values is undefined; exact equality is the contract
			if xv == xn {
				continue // cannot split between equal values
			}
			leftScore := sumSqOverN(leftSums, nl)
			var rs float64
			for j := range leftSums {
				d := totals[j] - leftSums[j]
				rs += d * d
			}
			rightScore := rs / float64(len(order)-nl)
			gain := leftScore + rightScore - parentScore
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = 0.5 * (xv + xn)
			}
		}
	}
	if bestFeature < 0 {
		return node
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x.At(i, bestFeature) <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = buildTree(x, y, leftIdx, cfg, depth+1, rng)
	node.right = buildTree(x, y, rightIdx, cfg, depth+1, rng)
	return node
}

func sumSqOverN(sums []float64, n int) float64 {
	var s float64
	for _, v := range sums {
		s += v * v
	}
	return s / float64(n)
}

// predictRow walks the tree for one feature row.
func (t *treeNode) predictRow(row []float64) []float64 {
	for t.left != nil {
		if row[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// depth returns the tree height (diagnostic).
func (t *treeNode) depth() int {
	if t.left == nil {
		return 0
	}
	l, r := t.left.depth(), t.right.depth()
	if r > l {
		l = r
	}
	return l + 1
}

// DecisionTree is a single multi-output CART regression tree.
type DecisionTree struct {
	MaxDepth int
	MinLeaf  int
	Seed     uint64

	root *treeNode
	p, q int
}

// NewDecisionTree returns a tree with sensible defaults (depth 8, leaf 2).
func NewDecisionTree() *DecisionTree { return &DecisionTree{MaxDepth: 8, MinLeaf: 2, Seed: 1} }

// Name returns "DecisionTree".
func (d *DecisionTree) Name() string { return "DecisionTree" }

// Fit grows the tree on the full sample.
func (d *DecisionTree) Fit(x, y *tensor.Matrix) error {
	if err := checkFitShapes(x, y); err != nil {
		return err
	}
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	cfg := treeConfig{maxDepth: d.MaxDepth, minLeaf: d.MinLeaf, featureFrac: 1}
	d.root = buildTree(x, y, idx, cfg, 0, tensor.NewRNG(d.Seed))
	d.p, d.q = x.Cols, y.Cols
	return nil
}

// Predict evaluates the tree on every row of x.
func (d *DecisionTree) Predict(x *tensor.Matrix) *tensor.Matrix {
	if d.root == nil {
		panic("baseline: DecisionTree.Predict before Fit")
	}
	if x.Cols != d.p {
		panic(fmt.Sprintf("baseline: predict features %d, want %d", x.Cols, d.p))
	}
	out := tensor.NewMatrix(x.Rows, d.q)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), d.root.predictRow(x.Row(i)))
	}
	return out
}

func checkFitShapes(x, y *tensor.Matrix) error {
	if x.Rows != y.Rows {
		return fmt.Errorf("baseline: %d samples vs %d targets", x.Rows, y.Rows)
	}
	if x.Rows == 0 || x.Cols == 0 || y.Cols == 0 {
		return fmt.Errorf("baseline: empty training data (%dx%d → %dx%d)", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	return nil
}
