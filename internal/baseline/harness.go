package baseline

import (
	"fmt"

	"podnas/internal/metrics"
	"podnas/internal/tensor"
	"podnas/internal/window"
)

// Flatten converts a (B, T, F) windowed tensor into a (B, T·F) feature
// matrix sharing storage — the direct multi-output regression view used by
// the fireTS-style baselines.
func Flatten(x *tensor.Tensor3) *tensor.Matrix {
	return tensor.FromSlice(x.B, x.T*x.F, x.Data)
}

// FitWindowed trains r on a windowed data set (inputs flattened).
func FitWindowed(r Regressor, d *window.Dataset) error {
	if d == nil || d.Examples() == 0 {
		return fmt.Errorf("baseline: empty windowed data set")
	}
	return r.Fit(Flatten(d.X), Flatten(d.Y))
}

// EvaluateR2 returns r's coefficient of determination over the windowed set.
func EvaluateR2(r Regressor, d *window.Dataset) float64 {
	pred := r.Predict(Flatten(d.X))
	return metrics.R2(pred.Data, Flatten(d.Y).Data)
}
