package baseline

import (
	"fmt"

	"podnas/internal/linalg"
	"podnas/internal/tensor"
)

// Linear is a multi-output ridge-regularized linear model with intercept
// (scikit-learn LinearRegression analogue; the tiny default penalty only
// guards against rank deficiency).
type Linear struct {
	Lambda float64

	w *tensor.Matrix // (p+1)×q including the bias row
	p int
}

// NewLinear returns a linear regressor with a numerical-stability penalty.
func NewLinear() *Linear { return &Linear{Lambda: 1e-8} }

// Name returns "Linear".
func (l *Linear) Name() string { return "Linear" }

// Fit solves the regularized normal equations with an appended bias column.
func (l *Linear) Fit(x, y *tensor.Matrix) error {
	if err := checkFitShapes(x, y); err != nil {
		return err
	}
	xb := withBias(x)
	w, err := linalg.RidgeLeastSquares(xb, y, l.Lambda)
	if err != nil {
		// Retry with a stronger penalty before giving up.
		w, err = linalg.RidgeLeastSquares(xb, y, 1e-4)
		if err != nil {
			return fmt.Errorf("baseline: linear fit failed: %w", err)
		}
	}
	l.w = w
	l.p = x.Cols
	return nil
}

// Predict applies the learned affine map.
func (l *Linear) Predict(x *tensor.Matrix) *tensor.Matrix {
	if l.w == nil {
		panic("baseline: Linear.Predict before Fit")
	}
	if x.Cols != l.p {
		panic(fmt.Sprintf("baseline: predict features %d, want %d", x.Cols, l.p))
	}
	return tensor.MatMul(withBias(x), l.w)
}

func withBias(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), x.Row(i))
		out.Set(i, x.Cols, 1)
	}
	return out
}

// RandomForest is a bagged ensemble of multi-output CART trees with feature
// subsampling (scikit-learn RandomForestRegressor analogue).
type RandomForest struct {
	NTrees      int
	MaxDepth    int
	MinLeaf     int
	FeatureFrac float64
	Seed        uint64

	trees []*treeNode
	p, q  int
}

// NewRandomForest returns a forest with defaults close to scikit-learn's:
// 100 shallow-ish trees, sqrt-style feature subsampling.
func NewRandomForest() *RandomForest {
	return &RandomForest{NTrees: 100, MaxDepth: 10, MinLeaf: 2, FeatureFrac: 0.33, Seed: 1}
}

// Name returns "RandomForest".
func (rf *RandomForest) Name() string { return "RandomForest" }

// Fit grows NTrees trees on bootstrap resamples.
func (rf *RandomForest) Fit(x, y *tensor.Matrix) error {
	if err := checkFitShapes(x, y); err != nil {
		return err
	}
	if rf.NTrees < 1 {
		return fmt.Errorf("baseline: forest needs at least one tree")
	}
	rng := tensor.NewRNG(rf.Seed)
	cfg := treeConfig{maxDepth: rf.MaxDepth, minLeaf: rf.MinLeaf, featureFrac: rf.FeatureFrac}
	rf.trees = rf.trees[:0]
	n := x.Rows
	for t := 0; t < rf.NTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		rf.trees = append(rf.trees, buildTree(x, y, idx, cfg, 0, rng.Split(uint64(t))))
	}
	rf.p, rf.q = x.Cols, y.Cols
	return nil
}

// Predict averages the trees.
func (rf *RandomForest) Predict(x *tensor.Matrix) *tensor.Matrix {
	if len(rf.trees) == 0 {
		panic("baseline: RandomForest.Predict before Fit")
	}
	if x.Cols != rf.p {
		panic(fmt.Sprintf("baseline: predict features %d, want %d", x.Cols, rf.p))
	}
	out := tensor.NewMatrix(x.Rows, rf.q)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		dst := out.Row(i)
		for _, t := range rf.trees {
			v := t.predictRow(row)
			for j, vv := range v {
				dst[j] += vv
			}
		}
		inv := 1 / float64(len(rf.trees))
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// GradientBoosting is an XGBoost-style gradient-boosted tree ensemble with
// squared loss: one independent boosted chain per output dimension, each
// round fitting a shallow tree to the residuals (shrunk by the learning
// rate).
type GradientBoosting struct {
	NTrees       int // boosting rounds per output
	MaxDepth     int
	MinLeaf      int
	LearningRate float64
	Seed         uint64

	base   []float64     // initial prediction per output
	chains [][]*treeNode // per output: NTrees residual trees
	p, q   int
}

// NewGradientBoosting returns defaults close to XGBoost's: 100 rounds of
// depth-3 trees with shrinkage 0.1.
func NewGradientBoosting() *GradientBoosting {
	return &GradientBoosting{NTrees: 100, MaxDepth: 3, MinLeaf: 1, LearningRate: 0.1, Seed: 1}
}

// Name returns "XGBoost" (the role it plays in Table II).
func (gb *GradientBoosting) Name() string { return "XGBoost" }

// Fit boosts each output dimension independently.
func (gb *GradientBoosting) Fit(x, y *tensor.Matrix) error {
	if err := checkFitShapes(x, y); err != nil {
		return err
	}
	if gb.NTrees < 1 || gb.LearningRate <= 0 {
		return fmt.Errorf("baseline: invalid boosting config %+v", gb)
	}
	n, q := x.Rows, y.Cols
	gb.base = make([]float64, q)
	gb.chains = make([][]*treeNode, q)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cfg := treeConfig{maxDepth: gb.MaxDepth, minLeaf: gb.MinLeaf, featureFrac: 1}
	rng := tensor.NewRNG(gb.Seed)

	resid := tensor.NewMatrix(n, 1)
	for out := 0; out < q; out++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += y.At(i, out)
		}
		mean /= float64(n)
		gb.base[out] = mean
		pred := make([]float64, n)
		for i := range pred {
			pred[i] = mean
		}
		for round := 0; round < gb.NTrees; round++ {
			for i := 0; i < n; i++ {
				resid.Set(i, 0, y.At(i, out)-pred[i])
			}
			t := buildTree(x, resid, idx, cfg, 0, rng.Split(uint64(out*gb.NTrees+round)))
			gb.chains[out] = append(gb.chains[out], t)
			for i := 0; i < n; i++ {
				pred[i] += gb.LearningRate * t.predictRow(x.Row(i))[0]
			}
		}
	}
	gb.p, gb.q = x.Cols, q
	return nil
}

// Predict sums every output's boosted chain.
func (gb *GradientBoosting) Predict(x *tensor.Matrix) *tensor.Matrix {
	if gb.chains == nil {
		panic("baseline: GradientBoosting.Predict before Fit")
	}
	if x.Cols != gb.p {
		panic(fmt.Sprintf("baseline: predict features %d, want %d", x.Cols, gb.p))
	}
	out := tensor.NewMatrix(x.Rows, gb.q)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		dst := out.Row(i)
		for j := 0; j < gb.q; j++ {
			v := gb.base[j]
			for _, t := range gb.chains[j] {
				v += gb.LearningRate * t.predictRow(row)[0]
			}
			dst[j] = v
		}
	}
	return out
}
