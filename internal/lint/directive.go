package lint

import (
	"fmt"
	"strings"
)

// DirectiveResult is the parse of one comment against the suppression
// grammar. Exactly one of the three outcomes holds:
//
//   - Skip: the comment is not an allow directive at all (wrong prefix, or
//     a longer word like //podnas:allowed).
//   - Err != "": the comment claims to be a directive but is malformed —
//     missing check, unknown check, or missing reason. The message is the
//     "directive" finding to report.
//   - Check != "": a well-formed suppression for that check.
type DirectiveResult struct {
	Skip  bool
	Err   string
	Check string
}

// ParseAllowDirective parses one comment's text ("//..." form, as
// ast.Comment.Text provides it) against the //podnas:allow grammar with the
// given set of known check names. It is a pure function so the grammar can
// be fuzzed (FuzzAllowDirective) independently of the AST plumbing.
func ParseAllowDirective(text string, known map[string]bool) DirectiveResult {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return DirectiveResult{Skip: true}
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //podnas:allowed — some other word, not our directive.
		return DirectiveResult{Skip: true}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return DirectiveResult{Err: fmt.Sprintf("malformed directive: want %q", DirectivePrefix+" <check> <reason>")}
	}
	check := fields[0]
	if !known[check] {
		return DirectiveResult{Err: fmt.Sprintf("directive names unknown check %q (known: %s)", check, strings.Join(sortedKeys(known), ", "))}
	}
	if len(fields) < 2 {
		return DirectiveResult{Err: fmt.Sprintf("directive for %q has no reason; every suppression must say why", check)}
	}
	return DirectiveResult{Check: check}
}
