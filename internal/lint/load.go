package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit an Analyzer sees.
// Test files (_test.go) are excluded on purpose — the determinism and
// float-equality invariants govern production code, while tests pin exact
// bit-level reproducibility with deliberate direct comparisons.
type Package struct {
	// ImportPath is the package's import path ("podnas/internal/obs").
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module, resolving
// module-internal imports itself and delegating everything else (the
// standard library) to the compiler's source importer. Loads are memoized,
// so a package type-checked as a dependency is the same *types.Package an
// analyzer later inspects — type identity holds across the whole run.
type Loader struct {
	Fset *token.FileSet
	// ModPath and ModDir describe the enclosing module.
	ModPath string
	ModDir  string
	// Extra maps additional import paths to directories (used by tests to
	// mount corpus packages outside the module tree).
	Extra map[string]string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader finds the module enclosing dir (by walking up to go.mod) and
// returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		modDir = parent
	}
	modPath, err := modulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  modDir,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer: module-internal packages load through
// this loader (source-parsed, memoized); everything else falls back to the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor resolves an import path to a directory when this loader owns it.
func (l *Loader) dirFor(path string) (string, bool) {
	if dir, ok := l.Extra[path]; ok {
		return dir, true
	}
	if path == l.ModPath {
		return l.ModDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModDir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// load parses and type-checks the package in dir under importPath.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", importPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadDir loads the single package in dir. Directories registered in Extra
// load under their registered import path (even when they sit inside the
// module tree, as the test corpus does); everything else must be inside the
// module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for path, d := range l.Extra {
		if sameDir(d, abs) {
			return l.load(path, d)
		}
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModPath)
	}
	importPath := l.ModPath
	if rel != "." {
		importPath = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(importPath, abs)
}

func sameDir(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

// LoadAll loads every package under root (a directory inside the module;
// empty = the whole module), skipping testdata, vendor, hidden, and
// underscore-prefixed directories — the same pruning the go tool applies to
// the ./... pattern.
func (l *Loader) LoadAll(root string) ([]*Package, error) {
	if root == "" {
		root = l.ModDir
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			// A directory holding only ignored files (build-constrained away)
			// is not an error for the ./... pattern.
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
