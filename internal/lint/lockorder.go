package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewLockorder builds the intra-package mutex analyzer. It tracks
// sync.Mutex / sync.RWMutex acquisition sites per function, propagates
// may-lock sets across same-package calls to a fixpoint, and reports two
// hazards:
//
//   - inconsistent pairwise acquisition order: mutex B acquired (directly
//     or through a same-package callee) while A is held in one function,
//     and A while B in another — the classic two-thread deadlock that a
//     single -race run cannot surface;
//   - a return statement executed while holding a mutex that has no
//     registered `defer Unlock` — the early-return leak that turns the
//     next Lock into a permanent stall.
//
// Mutex identity is the types.Object of the field or variable the Lock is
// called on (jobs.Manager.mu, worker.Pool.mu, …), so every instance of a
// struct shares one ordering node — which is the granularity deadlocks
// actually happen at. Branch bodies are walked with a cloned held-set, so
// an acquisition cannot leak out of the branch that made it; deliberate
// lock handoffs are declared with //podnas:allow lockorder <reason>.
func NewLockorder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "mutex acquisition order must be globally consistent and no return may leak a held, undeferred lock",
	}
	a.Run = func(pass *Pass) {
		lo := &lockOrder{
			pass:    pass,
			mayLock: make(map[types.Object]map[types.Object]bool),
			bodies:  make(map[types.Object]*ast.BlockStmt),
			edges:   make(map[[2]types.Object]token.Pos),
		}
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil {
						lo.bodies[obj] = fd.Body
					}
				}
			}
		}
		lo.fixpoint()
		for _, body := range sortedBodies(lo.bodies) {
			lo.walkFunc(body)
		}
		lo.reportInversions()
	}
	return a
}

// lockMethods classifies the sync methods the analyzer models.
var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var unlockMethods = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

type lockOrder struct {
	pass    *Pass
	bodies  map[types.Object]*ast.BlockStmt
	mayLock map[types.Object]map[types.Object]bool
	// edges records the first site where edge[0] was held when edge[1]
	// was acquired.
	edges map[[2]types.Object]token.Pos
}

// sortedBodies yields bodies in source order so diagnostics are
// deterministic run to run.
func sortedBodies(m map[types.Object]*ast.BlockStmt) []*ast.BlockStmt {
	out := make([]*ast.BlockStmt, 0, len(m))
	for _, b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// mutexOf resolves a call to Lock/Unlock/RLock/RUnlock to the mutex's
// identity: the types.Object of the field or variable it is called on.
func (lo *lockOrder) mutexOf(call *ast.CallExpr, methods map[string]bool) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := lo.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !methods[fn.FullName()] {
		return nil
	}
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr:
		return lo.pass.Pkg.Info.Uses[recv.Sel]
	case *ast.Ident:
		return lo.pass.Pkg.Info.Uses[recv]
	}
	return nil
}

// callee resolves a call to a same-package function or method object.
func (lo *lockOrder) callee(call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := lo.pass.Pkg.Info.Uses[id]
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() == lo.pass.Pkg.Types {
		return obj
	}
	return nil
}

// fixpoint computes, for every package function, the set of mutexes it may
// acquire directly or through same-package callees.
func (lo *lockOrder) fixpoint() {
	for obj, body := range lo.bodies {
		direct := make(map[types.Object]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if m := lo.mutexOf(call, lockMethods); m != nil {
					direct[m] = true
				}
			}
			return true
		})
		lo.mayLock[obj] = direct
	}
	for changed := true; changed; {
		changed = false
		for obj, body := range lo.bodies {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				g := lo.callee(call)
				if g == nil || g == obj {
					return true
				}
				for m := range lo.mayLock[g] {
					if !lo.mayLock[obj][m] {
						lo.mayLock[obj][m] = true
						changed = true
					}
				}
				return true
			})
		}
	}
}

// heldState is the walker's view at one program point.
type heldState struct {
	order    []types.Object        // acquisition order, oldest first
	deferred map[types.Object]bool // mutexes with a registered defer Unlock
}

func (h *heldState) clone() *heldState {
	c := &heldState{
		order:    append([]types.Object(nil), h.order...),
		deferred: make(map[types.Object]bool, len(h.deferred)),
	}
	for k, v := range h.deferred {
		c.deferred[k] = v
	}
	return c
}

func (h *heldState) acquire(m types.Object) {
	h.order = append(h.order, m)
}

func (h *heldState) release(m types.Object) {
	for i := len(h.order) - 1; i >= 0; i-- {
		if h.order[i] == m {
			h.order = append(h.order[:i], h.order[i+1:]...)
			return
		}
	}
}

func (h *heldState) holds(m types.Object) bool {
	for _, x := range h.order {
		if x == m {
			return true
		}
	}
	return false
}

// walkFunc walks one function body in statement order, maintaining the
// held-set and recording acquisition-order edges and leaked returns.
func (lo *lockOrder) walkFunc(body *ast.BlockStmt) {
	lo.walkStmts(body.List, &heldState{deferred: make(map[types.Object]bool)})
}

func (lo *lockOrder) walkStmts(stmts []ast.Stmt, h *heldState) {
	for _, s := range stmts {
		lo.walkStmt(s, h)
	}
}

// walkStmt advances h through one statement. Branch bodies get a cloned
// state: acquisitions inside a conditional are tracked within it but do
// not leak into the fall-through path, trading false negatives for zero
// false positives on the lock/branch/unlock shapes real code uses.
func (lo *lockOrder) walkStmt(s ast.Stmt, h *heldState) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		lo.walkStmts(s.List, h)
	case *ast.IfStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, h)
		}
		lo.scanExpr(s.Cond, h)
		lo.walkStmt(s.Body, h.clone())
		if s.Else != nil {
			lo.walkStmt(s.Else, h.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			lo.scanExpr(s.Cond, h)
		}
		body := h.clone()
		lo.walkStmt(s.Body, body)
		if s.Post != nil {
			lo.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		lo.scanExpr(s.X, h)
		lo.walkStmt(s.Body, h.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			lo.scanExpr(s.Tag, h)
		}
		for _, c := range s.Body.List {
			lo.walkStmts(c.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lo.walkStmt(s.Init, h)
		}
		for _, c := range s.Body.List {
			lo.walkStmts(c.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := h.clone()
			if cc.Comm != nil {
				lo.walkStmt(cc.Comm, branch)
			}
			lo.walkStmts(cc.Body, branch)
		}
	case *ast.DeferStmt:
		if m := lo.mutexOf(s.Call, unlockMethods); m != nil {
			h.deferred[m] = true
			return
		}
		lo.scanExpr(s.Call, h)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lo.scanExpr(e, h)
		}
		for _, m := range h.order {
			if !h.deferred[m] {
				lo.pass.Reportf(s.Pos(),
					"return while holding %s with no deferred Unlock; the next Lock stalls forever (defer the Unlock, or //podnas:allow lockorder <reason> for a deliberate handoff)",
					mutexName(m))
			}
		}
	case *ast.LabeledStmt:
		lo.walkStmt(s.Stmt, h)
	case *ast.ExprStmt:
		lo.scanExpr(s.X, h)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lo.scanExpr(e, h)
		}
		for _, e := range s.Lhs {
			lo.scanExpr(e, h)
		}
	case *ast.SendStmt:
		lo.scanExpr(s.Chan, h)
		lo.scanExpr(s.Value, h)
	case *ast.IncDecStmt:
		lo.scanExpr(s.X, h)
	case *ast.GoStmt:
		// The goroutine's body runs with its own empty held-set; its
		// interior is covered when walkFunc reaches the literal via
		// scanExpr's nested-literal handling below. Arguments are
		// evaluated here, under h.
		for _, arg := range s.Call.Args {
			lo.scanExpr(arg, h)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.walkStmt(lit.Body, &heldState{deferred: make(map[types.Object]bool)})
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lo.scanExpr(v, h)
					}
				}
			}
		}
	}
}

// scanExpr handles calls inside an expression: Lock/Unlock mutate h,
// same-package calls contribute interprocedural ordering edges, and func
// literals are walked with a fresh state (they run later, on their own
// goroutine or defer, not at this program point — except immediate calls,
// which the CallExpr case still scans for locks).
func (lo *lockOrder) scanExpr(e ast.Expr, h *heldState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lo.walkStmt(n.Body, &heldState{deferred: make(map[types.Object]bool)})
			return false
		case *ast.CallExpr:
			if m := lo.mutexOf(n, lockMethods); m != nil {
				for _, held := range h.order {
					if held != m {
						lo.addEdge(held, m, n.Pos())
					}
				}
				h.acquire(m)
				return true
			}
			if m := lo.mutexOf(n, unlockMethods); m != nil {
				h.release(m)
				return true
			}
			if g := lo.callee(n); g != nil {
				for _, held := range h.order {
					for m := range lo.mayLock[g] {
						if m != held && !h.holds(m) {
							lo.addEdge(held, m, n.Pos())
						}
					}
				}
			}
		}
		return true
	})
}

func (lo *lockOrder) addEdge(a, b types.Object, pos token.Pos) {
	key := [2]types.Object{a, b}
	if _, ok := lo.edges[key]; !ok {
		lo.edges[key] = pos
	}
}

// reportInversions reports every mutex pair with acquisition edges in both
// directions, at both witness sites.
func (lo *lockOrder) reportInversions() {
	type inv struct {
		a, b     types.Object
		pos, rev token.Pos
	}
	var found []inv
	for key, pos := range lo.edges {
		a, b := key[0], key[1]
		rev, ok := lo.edges[[2]types.Object{b, a}]
		if !ok {
			continue
		}
		// Report each unordered pair once, anchored at the lexically
		// earlier witness.
		if pos < rev || (pos == rev && mutexName(a) < mutexName(b)) {
			found = append(found, inv{a, b, pos, rev})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, iv := range found {
		revPos := lo.pass.Fset.Position(iv.rev)
		lo.pass.Reportf(iv.pos,
			"inconsistent lock order: %s acquired while holding %s here, but %s while holding %s at %s:%d — pick one global order (//podnas:allow lockorder <reason> if the orders provably cannot contend)",
			mutexName(iv.b), mutexName(iv.a), mutexName(iv.a), mutexName(iv.b),
			revPos.Filename, revPos.Line)
	}
}

// mutexName renders a mutex identity as pkg.field (or the bare variable
// name) for messages.
func mutexName(m types.Object) string {
	if v, ok := m.(*types.Var); ok && v.Pkg() != nil {
		return fmt.Sprintf("%s.%s", v.Pkg().Name(), v.Name())
	}
	return m.Name()
}
