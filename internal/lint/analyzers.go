package lint

// Analyzers returns the production analyzer suite with this module's
// configuration: the deterministic-core package list, the approved
// tolerance helpers, and the obs.Kind event vocabulary. cmd/podnaslint and
// the self-check test both run exactly this set, so "the linter is clean"
// means the same thing everywhere.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewDetrand(DefaultCorePackages),
		NewErrwrap(),
		NewFloateq(DefaultToleranceHelpers),
		NewKindswitch("podnas/internal/obs", "Kind"),
		NewGoroleak(),
		NewCtxflow(),
		NewLockorder(),
		NewLifecycle(DefaultResourcePairs),
		hotallocName(),
	}
}

// hotallocName registers "hotalloc" as a known check so its
// //podnas:allow directives in internal/kernel and internal/nn validate.
// The check itself is not an AST pass: it reads the compiler's escape
// analysis, and runs through HotallocGate (cmd/podnaslint -hotalloc).
func hotallocName() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "hot-path (//podnas:hotpath) functions must not gain heap allocations; runs via cmd/podnaslint -hotalloc",
		Run:  func(*Pass) {},
	}
}
