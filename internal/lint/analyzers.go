package lint

// Analyzers returns the production analyzer suite with this module's
// configuration: the deterministic-core package list, the approved
// tolerance helpers, and the obs.Kind event vocabulary. cmd/podnaslint and
// the self-check test both run exactly this set, so "the linter is clean"
// means the same thing everywhere.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewDetrand(DefaultCorePackages),
		NewErrwrap(),
		NewFloateq(DefaultToleranceHelpers),
		NewKindswitch("podnas/internal/obs", "Kind"),
	}
}
