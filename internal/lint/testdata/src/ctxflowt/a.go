// Package ctxflowt is a podnaslint corpus package exercising the ctxflow
// analyzer: functions that accept a context must thread it, not sever it.
package ctxflowt

import (
	"context"
	"net"
	"time"
)

func consume(ctx context.Context) {}

// Severs mints fresh roots despite having a ctx in hand.
func Severs(ctx context.Context) {
	consume(context.Background()) // want "context.Background inside a function that receives a ctx"
	consume(context.TODO())       // want "context.TODO inside a function that receives a ctx"
}

// Sleeps blocks uncancellably.
func Sleeps(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "time.Sleep inside a function that receives a ctx"
}

// Dials ignores the deadline the caller carries.
func Dials(ctx context.Context, addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want "net.Dial ignores the ctx"
}

// DialsWithTimeout still ignores the ctx's own deadline.
func DialsWithTimeout(ctx context.Context, addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second) // want "net.DialTimeout ignores the ctx"
}

// Adapter has no ctx parameter: detaching here is the documented pattern
// (Evaluate forwarding to EvaluateCtx), so it is out of scope.
func Adapter() {
	consume(context.Background())
	time.Sleep(time.Microsecond)
}

// Ignored takes a ctx it cannot use; out of scope.
func Ignored(_ context.Context) {
	time.Sleep(time.Microsecond)
}

// Threads does it right: derive, don't mint.
func Threads(ctx context.Context, addr string) (net.Conn, error) {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	var d net.Dialer
	return d.DialContext(tctx, "tcp", addr)
}

// Detached documents a deliberate severing.
func Detached(ctx context.Context) {
	//podnas:allow ctxflow audit trail must flush even when the request is cancelled
	consume(context.Background())
}

// PacedWait is the cancellable replacement for Sleep.
func PacedWait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Millisecond):
		return nil
	}
}

// closures inherit the obligation: the ctx is still in scope.
func LaunchesClosure(ctx context.Context, done chan struct{}) {
	go func() {
		time.Sleep(time.Millisecond) // want "time.Sleep inside a function that receives a ctx"
		close(done)
	}()
}
