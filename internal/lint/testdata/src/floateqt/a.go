// Package floateqt is a podnaslint corpus package exercising the floateq
// check: no direct ==/!= between floats outside approved tolerance helpers.
package floateqt

// Close compares two floats directly.
func Close(a, b float64) bool {
	return a == b // want "float == comparison"
}

// Distinct compares float32 operands directly.
func Distinct(a, b float32) bool {
	return a != b // want "float != comparison"
}

// SameInt is fine: integer equality is exact.
func SameInt(a, b int) bool { return a == b }

//podnas:tolerance Near is this corpus's approved comparison helper.
func Near(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// ConfiguredHelper is approved via the analyzer's configuration list.
func ConfiguredHelper(a, b float64) bool { return a == b }

// Guard documents an exact comparison with a justified suppression.
func Guard(x float64) float64 {
	//podnas:allow floateq exact zero guard before dividing
	if x == 0 {
		return 0
	}
	return 1 / x
}

const eps = 1e-9

// Consts fold at compile time; there is nothing to get wrong at run time.
func Consts() bool { return eps == 0.0 }
