// Package directivet is a podnaslint corpus package exercising malformed
// //podnas:allow suppression directives, which are findings themselves.
package directivet

// Empty lacks a check name.
// want+1 "malformed directive"
//podnas:allow

// NoReason names a check but gives no justification.
// want+1 "directive for .floateq. has no reason"
//podnas:allow floateq

// Unknown names a check that does not exist.
// want+1 "directive names unknown check"
//podnas:allow nosuchcheck because reasons

// Anchor keeps the package non-empty.
func Anchor() int { return 1 }
