package kindt

// Exhaustive covers every kind, including via a multi-value case.
func Exhaustive(k Kind) int {
	switch k {
	case KindA, KindB:
		return 1
	case KindC:
		return 3
	}
	return 0
}

// Defaulted decided explicitly what unhandled kinds mean.
func Defaulted(k Kind) int {
	switch k {
	case KindA:
		return 1
	default:
		return 0
	}
}

// Partial silently drops KindB and KindC.
func Partial(k Kind) int {
	switch k { // want "switch over kindt.Kind is not exhaustive and has no default: missing KindB, KindC"
	case KindA:
		return 1
	}
	return 0
}

// Ints is not a Kind switch; exhaustiveness does not apply.
func Ints(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// Tagless switches have no tag expression to analyze.
func Tagless(k Kind) int {
	switch {
	case k == KindA:
		return 1
	}
	return 0
}
