// Package kindt is a podnaslint corpus package mimicking the obs event
// vocabulary for the kindswitch check.
package kindt

// Kind identifies the event type.
type Kind uint8

// The corpus vocabulary.
const (
	KindA Kind = iota + 1
	KindB
	KindC
)
