// Package detcore is a podnaslint corpus package. The golden test
// configures it as a deterministic-core package, so clock reads, math/rand,
// and map iteration are findings.
package detcore

import (
	"math/rand" // want "math/rand imported in deterministic core"
	"time"
)

// Tick reads the wall clock twice.
func Tick() float64 {
	t0 := time.Now()                // want "time.Now in deterministic core"
	return time.Since(t0).Seconds() // want "time.Since in deterministic core"
}

// Draw uses the global math/rand source (the import is the finding).
func Draw() int { return rand.Int() }

// SumValues iterates a map in random order while accumulating floats.
func SumValues(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "map iteration in deterministic core"
		s += v
	}
	return s
}

// SumAllowed documents why its iteration order cannot escape.
func SumAllowed(m map[string]int) int {
	n := 0
	//podnas:allow detrand integer addition is commutative and associative; order cannot escape
	for _, v := range m {
		n += v
	}
	return n
}
