// Package detother is a podnaslint corpus package. It is NOT configured as
// a deterministic-core package, so the same constructs detcore is flagged
// for are fine here.
package detother

import "time"

// Elapsed may read the clock: detother is a timing-legitimate layer.
func Elapsed(t0 time.Time) float64 { return time.Since(t0).Seconds() }

// Sum may iterate a map: order never reaches a deterministic contract.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
