// Package goroleakt is a podnaslint corpus package exercising the
// goroleak analyzer: goroutine launches with and without provable
// termination paths.
package goroleakt

import (
	"context"
	"fmt"
	"sync"
)

func work() {}

// Leaky launches a fire-and-forget loop: no WaitGroup, no channel, no way
// to stop it.
func Leaky() {
	go func() { // want "goroutine has no termination path"
		for {
			work()
		}
	}()
}

// Unseeable launches a function from another package; termination cannot
// be proven from here.
func Unseeable() {
	go fmt.Println("fire and forget") // want "cannot see"
}

// Allowed documents why its loop is deliberate.
func Allowed() {
	//podnas:allow goroleak demo daemon runs for process lifetime by design
	go func() {
		for {
			work()
		}
	}()
}

// Joined is the WaitGroup pattern: the launcher joins the goroutine.
func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			work()
		}
	}()
	wg.Wait()
}

// Stoppable selects on a stop channel the owner can close.
func Stoppable(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// CtxBound selects on ctx.Done().
func CtxBound(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// Draining ranges over a channel; it ends when the owner closes it.
func Draining(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// StraightLine is loop-free: it runs to completion on its own.
func StraightLine(results chan error) {
	go func() {
		results <- nil
	}()
}

// launcher binds a closure to a local variable and launches it — the
// analyzer must resolve the variable back to the literal.
func Launcher(n int) {
	worker := func() {
		for {
			work()
		}
	}
	for i := 0; i < n; i++ {
		go worker() // want "goroutine has no termination path"
	}
}

// method launches resolve through the package's declarations.
type pump struct {
	msgs  chan int
	dying chan struct{}
}

func (p *pump) run() {
	for {
		select {
		case p.msgs <- 1:
		case <-p.dying:
			return
		}
	}
}

func (p *pump) spin() {
	for {
		work()
	}
}

// Start launches a method with a receive (fine) and one without (finding).
func (p *pump) Start() {
	go p.run()
	go p.spin() // want "goroutine has no termination path"
}
