// Package lockordert is a podnaslint corpus package exercising the
// lockorder analyzer: inconsistent pairwise acquisition orders and returns
// that leak a held, undeferred mutex.
package lockordert

import "sync"

// registry and index hold the two mutexes whose ordering the corpus
// inverts.
type registry struct {
	mu    sync.Mutex
	items map[string]int
}

type index struct {
	mu   sync.Mutex
	keys []string
}

// AddBoth acquires registry.mu then index.mu.
func AddBoth(r *registry, ix *index, k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ix.mu.Lock() // want "inconsistent lock order"
	defer ix.mu.Unlock()
	r.items[k] = len(ix.keys)
	ix.keys = append(ix.keys, k)
}

// DropBoth acquires them in the opposite order: the deadlock pair.
func DropBoth(r *registry, ix *index, k string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.items, k)
}

// Leaky returns early while still holding the lock.
func Leaky(r *registry, k string) bool {
	r.mu.Lock()
	if _, ok := r.items[k]; ok {
		return true // want "return while holding"
	}
	r.mu.Unlock()
	return false
}

// Balanced releases on the early path; clean.
func Balanced(r *registry, k string) bool {
	r.mu.Lock()
	if _, ok := r.items[k]; ok {
		r.mu.Unlock()
		return true
	}
	r.mu.Unlock()
	return false
}

// Deferred uses the canonical shape: multi-return with a deferred Unlock.
func Deferred(r *registry, k string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.items[k]; ok {
		return true
	}
	return false
}

// Handoff passes lock ownership to its caller on purpose.
func Handoff(r *registry) {
	r.mu.Lock()
	//podnas:allow lockorder caller releases via Release; documented handoff pair
	return
}

// Release is Handoff's other half.
func Release(r *registry) {
	r.mu.Unlock()
}

// gauges exercise the interprocedural edge: deep locks telemetry.mu inside
// a callee while sampler holds its own lock, and Opposite nests them the
// other way round directly.
type telemetry struct {
	mu     sync.Mutex
	counts map[string]int
}

type sampler struct {
	mu   sync.Mutex
	last string
}

func (t *telemetry) bump(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[k]++
}

// Observe holds sampler.mu and calls bump, which may lock telemetry.mu.
func (s *sampler) Observe(t *telemetry, k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = k
	t.bump(k) // want "inconsistent lock order"
}

// Opposite nests the same pair the other way.
func (s *sampler) Opposite(t *telemetry, k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.mu.Lock()
	s.last = k
	s.mu.Unlock()
	t.counts[k]++
}
