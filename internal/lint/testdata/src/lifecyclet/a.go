// Package lifecyclet is a podnaslint corpus package exercising the
// lifecycle analyzer: acquired resources must reach their release or
// escape to a new owner.
package lifecyclet

import (
	"context"
	"os"
	"time"
)

// Forgotten opens a handle that never reaches Close and never escapes.
func Forgotten(path string) (int64, error) {
	f, err := os.Open(path) // want "never reaches Close"
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Closed releases on the happy path via defer.
func Closed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Stat()
	return err
}

// Returned hands the obligation to the caller.
func Returned(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Stored hands the obligation to the struct owner.
type sink struct {
	f *os.File
}

func Stored(path string) (*sink, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &sink{f: f}, nil
}

// Passed hands the obligation to a consumer.
func consume(f *os.File) {}

func Passed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	consume(f)
	return nil
}

// Dropped discards the call's results entirely.
func Dropped(path string) {
	os.Create(path) // want "dropped on the floor"
}

// LostCancel binds the cancel func to _: the ctx's resources can never be
// released.
func LostCancel(ctx context.Context) context.Context {
	tctx, _ := context.WithTimeout(ctx, time.Second) // want "bound to _"
	return tctx
}

// Cancelled releases the derived ctx.
func Cancelled(ctx context.Context) error {
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	<-tctx.Done()
	return tctx.Err()
}

// ForgottenCancel binds the cancel func but never calls it; assigning it
// to the blank identifier is not ownership.
func ForgottenCancel() {
	_, cancel := context.WithCancel(context.Background()) // want "never reaches"
	_ = cancel
}

// Ticking leaks a ticker: Stop is never called and the ticker never
// escapes.
func Ticking(beats chan time.Time) {
	t := time.NewTicker(time.Second) // want "never reaches Stop"
	select {
	case b := <-t.C:
		beats <- b
	default:
	}
}

// Stopped runs a bounded ticker correctly.
func Stopped(n int) int {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	ticks := 0
	for i := 0; i < n; i++ {
		<-t.C
		ticks++
	}
	return ticks
}

// Acknowledged documents a deliberate leak.
func Acknowledged(path string) {
	//podnas:allow lifecycle handle deliberately held until process exit for flock ownership
	f, _ := os.Create(path)
	_ = f.Name()
}
