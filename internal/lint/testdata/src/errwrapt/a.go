// Package errwrapt is a podnaslint corpus package exercising the errwrap
// check: sentinels must be wrapped with %w and matched with errors.Is.
package errwrapt

import (
	"errors"
	"fmt"
)

// ErrBoom and ErrNotReady are package sentinels by the ErrX convention.
var (
	ErrBoom     = errors.New("boom")
	ErrNotReady = errors.New("not ready")
)

// errQuiet is unexported and lowercase: not a sentinel by convention.
var errQuiet = errors.New("quiet")

// Wraps uses %w: errors.Is keeps matching.
func Wraps(path string) error {
	return fmt.Errorf("open %s: %w", path, ErrBoom)
}

// Stringifies strips the sentinel from the chain.
func Stringifies(path string) error {
	return fmt.Errorf("open %s: %v", path, ErrBoom) // want "sentinel ErrBoom passed to fmt.Errorf with %v"
}

// StarWidth must still map operands across a * width.
func StarWidth() error {
	return fmt.Errorf("%*d: %s", 3, 7, ErrNotReady) // want "sentinel ErrNotReady passed to fmt.Errorf with %s"
}

// Compares uses identity where wrapping would break it.
func Compares(err error) bool {
	if err == ErrBoom { // want "error compared to sentinel ErrBoom with =="
		return true
	}
	return err != ErrNotReady // want "error compared to sentinel ErrNotReady with !="
}

// Fine shows the approved patterns: errors.Is, nil checks, and non-sentinel
// identity.
func Fine(err error) bool {
	return errors.Is(err, ErrBoom) || err == nil || err == errQuiet
}

// ErrUnavailable mirrors nasd's admission sentinel: callers branch on it
// (HTTP 429 mapping, exit code 6), so every refusal must keep it in the
// chain.
var ErrUnavailable = errors.New("service unavailable")

// Refuses wraps the admission sentinel: the queue-depth annotation keeps
// errors.Is matching downstream.
func Refuses(depth int) error {
	return fmt.Errorf("queue full (%d waiting): %w", depth, ErrUnavailable)
}

// RefusesBadly stringifies the sentinel, so an exit-code mapping downstream
// would report a generic failure instead of "unavailable".
func RefusesBadly(depth int) error {
	return fmt.Errorf("queue full (%d waiting): %s", depth, ErrUnavailable) // want "sentinel ErrUnavailable passed to fmt.Errorf with %s"
}

// RetryDecision must use errors.Is, not identity: admission errors arrive
// wrapped.
func RetryDecision(err error) bool {
	if err == ErrUnavailable { // want "error compared to sentinel ErrUnavailable with =="
		return true
	}
	return errors.Is(err, ErrUnavailable)
}
