// Package errwrapt is a podnaslint corpus package exercising the errwrap
// check: sentinels must be wrapped with %w and matched with errors.Is.
package errwrapt

import (
	"errors"
	"fmt"
)

// ErrBoom and ErrNotReady are package sentinels by the ErrX convention.
var (
	ErrBoom     = errors.New("boom")
	ErrNotReady = errors.New("not ready")
)

// errQuiet is unexported and lowercase: not a sentinel by convention.
var errQuiet = errors.New("quiet")

// Wraps uses %w: errors.Is keeps matching.
func Wraps(path string) error {
	return fmt.Errorf("open %s: %w", path, ErrBoom)
}

// Stringifies strips the sentinel from the chain.
func Stringifies(path string) error {
	return fmt.Errorf("open %s: %v", path, ErrBoom) // want "sentinel ErrBoom passed to fmt.Errorf with %v"
}

// StarWidth must still map operands across a * width.
func StarWidth() error {
	return fmt.Errorf("%*d: %s", 3, 7, ErrNotReady) // want "sentinel ErrNotReady passed to fmt.Errorf with %s"
}

// Compares uses identity where wrapping would break it.
func Compares(err error) bool {
	if err == ErrBoom { // want "error compared to sentinel ErrBoom with =="
		return true
	}
	return err != ErrNotReady // want "error compared to sentinel ErrNotReady with !="
}

// Fine shows the approved patterns: errors.Is, nil checks, and non-sentinel
// identity.
func Fine(err error) bool {
	return errors.Is(err, ErrBoom) || err == nil || err == errQuiet
}
