package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// NewKindswitch builds the event-protocol exhaustiveness analyzer for the
// named type pkgPath.typeName (production: podnas/internal/obs.Kind). Every
// switch over that type must either carry an explicit default clause or
// cover every declared constant of the type; otherwise adding a new event
// kind silently desynchronizes one fold (say, the live obs.Metrics) from
// another (trace replay) that did learn the new kind.
func NewKindswitch(pkgPath, typeName string) *Analyzer {
	a := &Analyzer{
		Name: "kindswitch",
		Doc:  "switches over " + pkgPath + "." + typeName + " must be exhaustive or carry an explicit default",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[sw.Tag]
				if !ok {
					return true
				}
				named, ok := types.Unalias(tv.Type).(*types.Named)
				if !ok {
					return true
				}
				obj := named.Obj()
				if obj.Name() != typeName || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
					return true
				}
				checkKindSwitch(pass, sw, named, obj.Pkg())
				return true
			})
		}
	}
	return a
}

func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt, named *types.Named, declPkg *types.Package) {
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the author decided what unknown kinds mean
		}
		for _, e := range cc.List {
			if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	// The declared vocabulary: every constant of the switched type in its
	// defining package.
	type kindConst struct {
		name  string
		value string
	}
	var declared []kindConst
	scope := declPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		declared = append(declared, kindConst{name: c.Name(), value: c.Val().ExactString()})
	}
	var missing []string
	seen := make(map[string]bool)
	for _, k := range declared {
		if !covered[k.value] && !seen[k.value] {
			seen[k.value] = true
			missing = append(missing, k.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s.%s is not exhaustive and has no default: missing %s; handle them or add an explicit default so new kinds cannot silently desynchronize this fold",
		declPkg.Name(), named.Obj().Name(), strings.Join(missing, ", "))
}
