// Package lint is a stdlib-only static-analysis framework (go/ast +
// go/parser + go/types with the source importer — no golang.org/x/tools,
// honoring the module's zero-dependency promise) plus the project-specific
// analyzers behind cmd/podnaslint. Generic tools (vet, staticcheck) cannot
// see the invariants this repository's correctness claims rest on:
//
//   - detrand: the deterministic core (pod/arch/nn/search/tensor/linalg/
//     window) must stay bit-reproducible — no wall-clock reads, no
//     math/rand, no map-iteration-ordered output.
//   - errwrap: package sentinel errors must stay visible to errors.Is —
//     fmt.Errorf must wrap them with %w, and code must not compare errors
//     to sentinels with == / !=.
//   - floateq: no direct ==/!= between floating-point operands outside
//     approved tolerance helpers — the R² > 0.96 threshold logic and the
//     1e-9 replay-equality contracts depend on deliberate comparisons.
//   - kindswitch: every switch over obs.Kind must be exhaustive or carry
//     an explicit default, so a new event kind cannot silently
//     desynchronize the live metrics fold from trace replay.
//
// Findings are suppressed line by line with a justified escape directive:
//
//	//podnas:allow <check> <reason>
//
// The directive covers the line it is written on and the line directly
// below it (so it can sit on its own line above the flagged statement). A
// directive without a reason, or naming an unknown check, is itself a
// finding, so suppressions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding, addressed by position so drivers can print
// file:line:col lines or machine-readable JSON.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the check identifier used in output and in //podnas:allow
	// directives.
	Name string
	// Doc is a one-line description for driver usage text.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//podnas:allow"

// ToleranceDirective marks a function declaration as an approved tolerance
// helper: floateq does not flag float comparisons inside its body. It takes
// no arguments; the function's doc comment is the justification.
const ToleranceDirective = "//podnas:tolerance"

// allowKey identifies one suppression target: a (file, line, check) cell.
type allowKey struct {
	file  string
	line  int
	check string
}

// directives scans a file for //podnas:allow comments. Malformed ones are
// reported as "directive" findings on diags.
func directives(fset *token.FileSet, f *ast.File, known map[string]bool, diags *[]Diagnostic) map[allowKey]bool {
	allow := make(map[allowKey]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			res := ParseAllowDirective(c.Text, known)
			if res.Skip {
				continue
			}
			pos := fset.Position(c.Pos())
			if res.Err != "" {
				*diags = append(*diags, Diagnostic{
					Check: "directive", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: res.Err,
				})
				continue
			}
			// The directive covers its own line and the next one, so it can
			// trail the flagged statement or sit alone directly above it.
			allow[allowKey{pos.Filename, pos.Line, res.Check}] = true
			allow[allowKey{pos.Filename, pos.Line + 1, res.Check}] = true
		}
	}
	return allow
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Suppressed findings are dropped; malformed
// suppression directives are themselves findings.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		allow := make(map[allowKey]bool)
		for _, f := range pkg.Files {
			for k := range directives(fset, f, known, &out) {
				allow[k] = true
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if allow[allowKey{d.File, d.Line, d.Check}] {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}
