package lint

import "testing"

// TestAnalyzersCleanOnModule is the self-check: the production analyzer
// suite (exactly what `go run ./cmd/podnaslint ./...` runs) must be clean
// on this module. Every invariant the checks encode — deterministic core,
// %w sentinel wrapping, no bare float equality, exhaustive obs.Kind folds —
// is thereby enforced on every `go test ./...`, not just in CI's lint job.
func TestAnalyzersCleanOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module from source")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll("")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	for _, d := range Run(l.Fset, pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
