package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// corpusNames are the testdata packages the golden test loads together, the
// way the driver loads the real module.
var corpusNames = []string{
	"detcore", "detother", "errwrapt", "floateqt", "kindt", "directivet",
	"goroleakt", "ctxflowt", "lockordert", "lifecyclet",
}

// corpusAnalyzers is the suite configured for the corpus: detcore is the
// deterministic core, kindt.Kind is the event vocabulary, and floateqt's
// ConfiguredHelper is approved by configuration (Near is approved by its
// //podnas:tolerance directive). The concurrency/lifecycle analyzers run
// unconfigured over every corpus package, exactly as they do over the
// module, with lifecycle on the stdlib subset of the production pairs.
func corpusAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDetrand([]string{"detcore"}),
		NewErrwrap(),
		NewFloateq([]string{"floateqt.ConfiguredHelper"}),
		NewKindswitch("kindt", "Kind"),
		NewGoroleak(),
		NewCtxflow(),
		NewLockorder(),
		NewLifecycle(DefaultResourcePairs),
	}
}

// wantSpec is one expected diagnostic: a line plus a regexp the message
// must match. Corpus files declare them with trailing comments:
//
//	expr // want "regexp" ["regexp" ...]
//
// or, for lines that cannot carry a trailing comment (such as the
// malformed-directive corpus), on the preceding line with an offset:
//
//	// want+1 "regexp"
type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`// want(\+\d+)? (".*")\s*$`)

func parseWants(t *testing.T, path string) []*wantSpec {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantSpec
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		target := i + 1 // 1-based line of the comment itself
		if m[1] != "" {
			off, err := strconv.Atoi(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want offset %q", path, i+1, m[1])
			}
			target += off
		}
		rest := m[2]
		for rest != "" {
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Fatalf("%s:%d: malformed want clause %q: %v", path, i+1, rest, err)
			}
			pattern, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: %v", path, i+1, err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pattern, err)
			}
			wants = append(wants, &wantSpec{file: path, line: target, re: re})
			rest = strings.TrimSpace(rest[len(q):])
		}
	}
	return wants
}

// TestGoldenCorpus runs the configured analyzer suite over the testdata
// corpus and requires the produced diagnostics to match the // want
// annotations exactly — both directions: no unexpected findings, no
// unmatched expectations. A regression in any of the four checks (or in the
// directive machinery) fails here.
func TestGoldenCorpus(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.Extra = make(map[string]string, len(corpusNames))
	for _, name := range corpusNames {
		abs, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		l.Extra[name] = abs
	}
	var pkgs []*Package
	var wants []*wantSpec
	for _, name := range corpusNames {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if pkg.ImportPath != name {
			t.Fatalf("corpus %s loaded under import path %q", name, pkg.ImportPath)
		}
		pkgs = append(pkgs, pkg)
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				wants = append(wants, parseWants(t, filepath.Join(pkg.Dir, e.Name()))...)
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("corpus declares no expectations; the golden test is vacuous")
	}

	for _, d := range Run(l.Fset, pkgs, corpusAnalyzers()) {
		matched := false
		for _, w := range wants {
			if !w.hit && sameDir(w.file, d.File) && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%d and %s", "ds", true},
		{"100%% done: %w", "w", true},
		{"%*d then %s", "*ds", true},
		{"%.2f %+v %#x", "fvx", true},
		{"%[1]d", "", false},
		{"trailing %", "", true},
	}
	for _, c := range cases {
		verbs, ok := formatVerbs(c.format)
		if ok != c.ok || string(verbs) != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, %v; want %q, %v", c.format, verbs, ok, c.verbs, c.ok)
		}
	}
}
