package lint

import (
	"strings"
	"testing"
)

// FuzzAllowDirective throws arbitrary comment text at the suppression
// grammar. The parser sits on the trust boundary between source comments
// and the allow map — a panic or a misclassified directive silently
// enables (or breaks) every suppression in the module, so the invariants
// are pinned here rather than left to the golden corpus.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//podnas:allow detrand seeded from run config")
	f.Add("//podnas:allow")
	f.Add("//podnas:allow detrand")
	f.Add("//podnas:allow nosuchcheck because reasons")
	f.Add("//podnas:allowed something else entirely")
	f.Add("//podnas:tolerance")
	f.Add("// ordinary comment")
	f.Add("//podnas:allow\tfloateq\ttab separated reason")
	f.Add("//podnas:allow  errwrap   many   spaces")
	f.Add("//podnas:allow detrand \x00\xff")
	f.Fuzz(func(t *testing.T, text string) {
		known := map[string]bool{"detrand": true, "errwrap": true, "floateq": true}
		res := ParseAllowDirective(text, known)

		// Exactly one outcome holds.
		states := 0
		if res.Skip {
			states++
		}
		if res.Err != "" {
			states++
		}
		if res.Check != "" {
			states++
		}
		if states != 1 {
			t.Fatalf("ParseAllowDirective(%q) ambiguous result %+v", text, res)
		}

		// Non-directive text is always skipped, never reported.
		if !strings.HasPrefix(text, DirectivePrefix) && !res.Skip {
			t.Fatalf("ParseAllowDirective(%q) = %+v, want Skip for non-directive text", text, res)
		}

		// A successful parse names a known check and the text carries a
		// reason after it.
		if res.Check != "" {
			if !known[res.Check] {
				t.Fatalf("ParseAllowDirective(%q) accepted unknown check %q", text, res.Check)
			}
			fields := strings.Fields(strings.TrimPrefix(text, DirectivePrefix))
			if len(fields) < 2 {
				t.Fatalf("ParseAllowDirective(%q) accepted a directive without a reason", text)
			}
			if fields[0] != res.Check {
				t.Fatalf("ParseAllowDirective(%q) = check %q, want first field %q", text, res.Check, fields[0])
			}
		}
	})
}
