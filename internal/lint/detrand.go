package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DefaultCorePackages are the deterministic-core import paths: every
// package whose outputs must be bit-reproducible run to run (the promise
// internal/tensor/rng.go states and checkpoint/resume plus the replay
// 1e-9 contracts depend on). Timing-legitimate layers — obs, hpcsim,
// worker, the cmd binaries — are deliberately not listed; inside the core,
// legitimate wall reads carry a //podnas:allow detrand directive instead.
var DefaultCorePackages = []string{
	"podnas/internal/pod",
	"podnas/internal/arch",
	"podnas/internal/kernel",
	"podnas/internal/nn",
	"podnas/internal/search",
	"podnas/internal/tensor",
	"podnas/internal/linalg",
	"podnas/internal/window",
}

// wallFuncs are the time-package functions that read the wall or monotonic
// clock; calling one makes output depend on when the code ran.
var wallFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// NewDetrand builds the determinism analyzer scoped to the given core
// import paths.
func NewDetrand(core []string) *Analyzer {
	coreSet := make(map[string]bool, len(core))
	for _, p := range core {
		coreSet[p] = true
	}
	a := &Analyzer{
		Name: "detrand",
		Doc:  "deterministic core packages must not read the clock, use math/rand, or iterate maps",
	}
	a.Run = func(pass *Pass) {
		if !coreSet[pass.Pkg.ImportPath] {
			return
		}
		for _, f := range pass.Pkg.Files {
			detrandFile(pass, f)
		}
	}
	return a
}

func detrandFile(pass *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(),
				"%s imported in deterministic core package %s; draw from an explicitly seeded tensor.RNG instead",
				path, pass.Pkg.ImportPath)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "time" && wallFuncs[obj.Name()] {
				pass.Reportf(n.Pos(),
					"time.%s in deterministic core package %s makes output depend on the wall clock; inject timestamps or move timing to the obs layer (//podnas:allow detrand <reason> if the read never feeds results)",
					obj.Name(), pass.Pkg.ImportPath)
			}
		case *ast.RangeStmt:
			tv, ok := pass.Pkg.Info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(),
					"map iteration in deterministic core package %s is randomly ordered; iterate a sorted key slice (//podnas:allow detrand <reason> if order provably cannot escape)",
					pass.Pkg.ImportPath)
			}
		}
		return true
	})
}
