package lint

import (
	"go/ast"
	"go/types"
)

// NewCtxflow builds the context-threading analyzer. A function that
// accepts a context.Context has promised its caller cancellability; inside
// such a function,
//
//   - minting a fresh root with context.Background() or context.TODO()
//     severs that promise — blocking callees outlive the caller's deadline
//     (the dropped-ctx dial and drain bugs the daemon path is prone to);
//   - time.Sleep blocks uncancellably — a select on ctx.Done() with a
//     timer keeps the same pacing but lets shutdown interrupt it;
//   - net.Dial / net.DialTimeout ignore the deadline the caller already
//     carries — net.Dialer.DialContext threads it.
//
// Functions without a ctx parameter are out of scope: adapters that
// deliberately detach (Evaluate calling EvaluateCtx(context.Background()))
// stay legal, and deliberate detachment inside a ctx-carrying function is
// declared with //podnas:allow ctxflow <reason>.
func NewCtxflow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "functions receiving a context.Context must thread it into blocking callees instead of Background/TODO/Sleep/Dial",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !hasCtxParam(pass.Pkg, fd) {
					continue
				}
				ctxflowBody(pass, fd.Body)
			}
		}
	}
	return a
}

// hasCtxParam reports whether fd declares a named (usable) parameter of
// type context.Context. A parameter named _ cannot be threaded, so such
// functions are out of scope.
func hasCtxParam(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxflowBody flags ctx-severing calls anywhere in the body, including
// inside nested func literals — a closure launched from a ctx-carrying
// function still holds that ctx and should use it.
func ctxflowBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "context":
			if obj.Name() == "Background" || obj.Name() == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s inside a function that receives a ctx severs cancellation; thread the parameter (//podnas:allow ctxflow <reason> to detach deliberately)",
					obj.Name())
			}
		case "time":
			if obj.Name() == "Sleep" {
				pass.Reportf(call.Pos(),
					"time.Sleep inside a function that receives a ctx blocks uncancellably; select on ctx.Done() and a timer instead (//podnas:allow ctxflow <reason>)")
			}
		case "net":
			if obj.Name() == "Dial" || obj.Name() == "DialTimeout" {
				pass.Reportf(call.Pos(),
					"net.%s ignores the ctx this function receives; use net.Dialer.DialContext (//podnas:allow ctxflow <reason>)",
					obj.Name())
			}
		}
		return true
	})
}
