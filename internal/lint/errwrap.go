package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// NewErrwrap builds the sentinel-error discipline analyzer: package-level
// `ErrX` sentinels passed to fmt.Errorf must use the %w verb (anything else
// strips them from the errors.Is chain), and errors must never be compared
// to sentinels with == / != (wrapping breaks identity; errors.Is is the
// contract the package roots document).
func NewErrwrap() *Analyzer {
	a := &Analyzer{
		Name: "errwrap",
		Doc:  "sentinel errors must be wrapped with %w and matched with errors.Is",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkErrorfCall(pass, n)
				case *ast.BinaryExpr:
					checkSentinelCompare(pass, n)
				}
				return true
			})
		}
	}
	return a
}

// sentinelOf returns the package-level sentinel error variable an
// expression refers to, or nil. A sentinel is a package-scoped var of an
// error type whose name follows the ErrX convention.
func sentinelOf(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	rest, ok := strings.CutPrefix(v.Name(), "Err")
	if !ok || rest == "" {
		return nil
	}
	if r, _ := utf8.DecodeRuneInString(rest); !unicode.IsUpper(r) {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// checkErrorfCall flags fmt.Errorf calls that pass a sentinel under any
// verb but %w.
func checkErrorfCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // explicit argument indexes: too clever for this check
	}
	for i, arg := range call.Args[1:] {
		v := sentinelOf(pass.Pkg.Info, arg)
		if v == nil {
			continue
		}
		verb := byte('!') // more operands than verbs: vet territory, still wrong for a sentinel
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel %s passed to fmt.Errorf with %%%c; wrap it with %%w so errors.Is still matches",
				v.Name(), verb)
		}
	}
}

// checkSentinelCompare flags == / != between an error value and a sentinel.
func checkSentinelCompare(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		v := sentinelOf(pass.Pkg.Info, pair[0])
		if v == nil {
			continue
		}
		otherTV, ok := pass.Pkg.Info.Types[pair[1]]
		if !ok || otherTV.Type == nil || otherTV.IsNil() || !isErrorType(otherTV.Type) {
			continue
		}
		pass.Reportf(b.Pos(),
			"error compared to sentinel %s with %s; use errors.Is so wrapped errors still match",
			v.Name(), b.Op)
		return
	}
}

// formatVerbs returns the verb letter consuming each successive operand of
// a Printf-style format string. A '*' width or precision consumes an
// operand and is recorded as '*'. Explicit argument indexes (%[1]d) return
// ok=false — callers skip the check rather than mis-attribute operands.
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(format) && strings.IndexByte("#+- 0", format[i]) >= 0 {
			i++
		}
		// width
		if i < len(format) && format[i] == '[' {
			return nil, false
		}
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
				if format[i] == '*' {
					verbs = append(verbs, '*')
				}
				i++
			}
		}
		if i >= len(format) {
			break
		}
		if format[i] == '[' {
			return nil, false
		}
		if format[i] == '%' {
			continue // %% consumes no operand
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
