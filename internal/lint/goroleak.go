package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewGoroleak builds the goroutine-termination analyzer. Every `go`
// statement in non-test code must launch a body the analyzer can see
// (a func literal, a same-package function or method, or a local closure
// variable) and that body must carry termination evidence:
//
//   - a call to (*sync.WaitGroup).Done — the launcher joins it;
//   - a receive from any channel (ctx.Done() select, a stop/closed/done
//     channel, a work queue) — the owner can end it by closing or
//     cancelling; or
//   - a loop-free body — straight-line code runs to completion on its own.
//
// A looping body with none of these is a fire-and-forget goroutine: nothing
// can stop it, and under churn (worker reconnects, job restarts) each
// launch leaks a runnable forever. That is exactly the failure mode that
// erodes the asynchronous-pool throughput the scaling results depend on.
func NewGoroleak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "every goroutine launch must have a provable termination path (WaitGroup.Done, channel receive, or loop-free body)",
	}
	a.Run = func(pass *Pass) {
		decls := packageFuncBodies(pass.Pkg)
		for _, f := range pass.Pkg.Files {
			closures := localClosures(f)
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := launchedBody(pass.Pkg, decls, closures, g.Call)
				if body == nil {
					pass.Reportf(g.Pos(),
						"goroutine launches a function this package cannot see; termination is unprovable (launch a same-package function, or //podnas:allow goroleak <reason>)")
					return true
				}
				if ok, why := goroutineTerminates(pass.Pkg, body); !ok {
					pass.Reportf(g.Pos(),
						"goroutine has no termination path: %s; join it with a WaitGroup, select on a stop/ctx.Done() channel, or //podnas:allow goroleak <reason>", why)
				}
				return true
			})
		}
	}
	return a
}

// packageFuncBodies maps every function and method the package declares to
// its body, keyed by the types object, so `go name(...)` and `go x.m(...)`
// launches resolve to inspectable code.
func packageFuncBodies(pkg *Package) map[types.Object]*ast.BlockStmt {
	m := make(map[types.Object]*ast.BlockStmt)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				m[obj] = fd.Body
			}
		}
	}
	return m
}

// localClosures maps local variables bound to a func literal (worker :=
// func(...){...}) to that literal, so `go worker(i)` resolves. Only direct
// single-assignment bindings count; a variable reassigned elsewhere simply
// resolves to its first literal, which matches how the codebase uses the
// pattern (bind once, launch many).
func localClosures(f *ast.File) map[*ast.Object]*ast.FuncLit {
	m := make(map[*ast.Object]*ast.FuncLit)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Obj == nil {
					continue
				}
				if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
					if _, seen := m[id.Obj]; !seen {
						m[id.Obj] = lit
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				if name.Obj == nil {
					continue
				}
				if lit, ok := n.Values[i].(*ast.FuncLit); ok {
					if _, seen := m[name.Obj]; !seen {
						m[name.Obj] = lit
					}
				}
			}
		}
		return true
	})
	return m
}

// launchedBody resolves the function body a go statement runs, or nil when
// the launch target is outside the package's view.
func launchedBody(pkg *Package, decls map[types.Object]*ast.BlockStmt, closures map[*ast.Object]*ast.FuncLit, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if lit, ok := closures[fun.Obj]; ok {
			return lit.Body
		}
		if obj := pkg.Info.Uses[fun]; obj != nil {
			return decls[obj]
		}
	case *ast.SelectorExpr:
		if obj := pkg.Info.Uses[fun.Sel]; obj != nil {
			return decls[obj]
		}
	}
	return nil
}

// goroutineTerminates inspects a launched body for termination evidence.
// Nested func literals are not descended into: they are their own analysis
// unit if launched, and synchronous helpers do not change whether this
// goroutine's own control flow can end.
func goroutineTerminates(pkg *Package, body *ast.BlockStmt) (bool, string) {
	loops := false
	evidence := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			loops = true
		case *ast.RangeStmt:
			loops = true
			if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					// for range ch ends when the owner closes ch.
					evidence = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				// A receive: the launcher can end this goroutine by
				// closing or sending on the channel (covers ctx.Done(),
				// stop channels, and work queues).
				evidence = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.FullName() == "(*sync.WaitGroup).Done" {
					evidence = true
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	if !loops {
		return true, ""
	}
	if evidence {
		return true, ""
	}
	return false, "body loops with no WaitGroup.Done and no channel receive"
}
