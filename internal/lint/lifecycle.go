package lint

import (
	"go/ast"
	"go/types"
)

// ResourcePair configures one acquire/release obligation for the lifecycle
// analyzer: calling Acquire yields a resource (result ResultIdx) that must,
// within the acquiring function, either reach its release or provably hand
// responsibility to someone else.
type ResourcePair struct {
	// Acquire is the full name of the acquiring function:
	// "os.Create", "podnas/internal/obs.CreateJSONL", "context.WithCancel".
	Acquire string
	// ResultIdx is which result is the resource (os.Create → 0,
	// context.WithCancel's cancel func → 1).
	ResultIdx int
	// Release is the method that discharges the obligation ("Close",
	// "Stop", "Reset"). Empty means the resource is itself a function to
	// call (context cancel funcs).
	Release string
	// What names the resource in messages ("file handle", "cancel func").
	What string
}

// DefaultResourcePairs are the acquire/release obligations this module
// lives by: JSONL sinks must be closed (a dropped sink silently truncates
// the event log replay depends on), cancel funcs must run (a lost cancel
// leaks the ctx's timer and goroutine), file handles must close (nasd's
// flock ownership rides on the lock file's handle — closing releases the
// lease), tickers must stop, and kernel arenas must be reset or owned by
// a longer-lived struct (arena discipline is what keeps the train step at
// its alloc budget).
var DefaultResourcePairs = []ResourcePair{
	{Acquire: "podnas/internal/obs.NewJSONL", ResultIdx: 0, Release: "Close", What: "JSONL sink"},
	{Acquire: "podnas/internal/obs.CreateJSONL", ResultIdx: 0, Release: "Close", What: "JSONL sink"},
	{Acquire: "podnas/internal/obs.AppendJSONL", ResultIdx: 0, Release: "Close", What: "JSONL sink"},
	{Acquire: "context.WithCancel", ResultIdx: 1, Release: "", What: "cancel func"},
	{Acquire: "context.WithTimeout", ResultIdx: 1, Release: "", What: "cancel func"},
	{Acquire: "context.WithDeadline", ResultIdx: 1, Release: "", What: "cancel func"},
	{Acquire: "os.Create", ResultIdx: 0, Release: "Close", What: "file handle"},
	{Acquire: "os.Open", ResultIdx: 0, Release: "Close", What: "file handle"},
	{Acquire: "os.OpenFile", ResultIdx: 0, Release: "Close", What: "file handle"},
	{Acquire: "time.NewTicker", ResultIdx: 0, Release: "Stop", What: "ticker"},
	{Acquire: "podnas/internal/kernel.NewArena", ResultIdx: 0, Release: "Reset", What: "arena"},
}

// NewLifecycle builds the resource-lifecycle analyzer over the given
// pairs. For each call to an acquire function whose result is bound to a
// local variable, the variable must within the same function body either
//
//   - reach the release (v.Close() / defer v.Close(), or v() for cancel
//     funcs), or
//   - escape — be returned, passed to another call, stored in a field,
//     slice, map, or captured struct, or have its address taken — which
//     transfers the obligation to the new owner.
//
// Binding the resource to _ (or dropping the call's results entirely) is
// always a finding: nobody can ever discharge the obligation.
func NewLifecycle(pairs []ResourcePair) *Analyzer {
	byName := make(map[string]ResourcePair, len(pairs))
	for _, p := range pairs {
		byName[p.Acquire] = p
	}
	a := &Analyzer{
		Name: "lifecycle",
		Doc:  "acquired resources (sinks, handles, cancel funcs, tickers, arenas) must reach their release or escape to a new owner",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					lifecycleFunc(pass, byName, fd.Body)
				}
			}
		}
	}
	return a
}

// acquirePair resolves a call expression to its configured ResourcePair.
func acquirePair(pass *Pass, byName map[string]ResourcePair, call *ast.CallExpr) (ResourcePair, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ResourcePair{}, false
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ResourcePair{}, false
	}
	p, ok := byName[fn.Pkg().Path()+"."+fn.Name()]
	return p, ok
}

// lifecycleFunc checks every acquire in one function body. Nested func
// literals are scanned as part of the body: an acquisition inside a
// closure is checked against uses inside that same enclosing body, which
// is where its release must live anyway.
func lifecycleFunc(pass *Pass, byName map[string]ResourcePair, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if p, ok := acquirePair(pass, byName, call); ok {
					pass.Reportf(call.Pos(),
						"%s from %s is dropped on the floor; bind it and call %s (//podnas:allow lifecycle <reason>)",
						p.What, p.Acquire, releaseName(p))
					return false
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			p, ok := acquirePair(pass, byName, call)
			if !ok {
				return true
			}
			if p.ResultIdx >= len(n.Lhs) {
				return true
			}
			id, ok := n.Lhs[p.ResultIdx].(*ast.Ident)
			if !ok {
				// Assigned straight into a field or index: the owner
				// is the containing struct — obligation transferred.
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"%s from %s is bound to _; it can never reach %s (//podnas:allow lifecycle <reason>)",
					p.What, p.Acquire, releaseName(p))
				return true
			}
			obj := pass.Pkg.Info.Defs[id]
			if obj == nil {
				obj = pass.Pkg.Info.Uses[id]
			}
			if obj == nil {
				return true
			}
			if !resourceDischarged(pass, body, obj, p) {
				pass.Reportf(call.Pos(),
					"%s %q from %s never reaches %s and never escapes this function; release it on every path or hand it to an owner (//podnas:allow lifecycle <reason>)",
					p.What, id.Name, p.Acquire, releaseName(p))
			}
		}
		return true
	})
}

func releaseName(p ResourcePair) string {
	if p.Release == "" {
		return "it (call the func)"
	}
	return p.Release
}

// resourceDischarged reports whether any use of obj inside body releases
// the resource or escapes it to a new owner. The walk carries a parent
// stack so each identifier use can be classified by its syntactic role.
func resourceDischarged(pass *Pass, body *ast.BlockStmt, obj types.Object, p ResourcePair) bool {
	discharged := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || discharged {
			return !discharged
		}
		if pass.Pkg.Info.Uses[id] != obj {
			return true
		}
		if useDischarges(pass, stack, id, p) {
			discharged = true
		}
		return true
	})
	return discharged
}

// useDischarges classifies one identifier use given its ancestor stack
// (stack[len-1] == id).
func useDischarges(pass *Pass, stack []ast.Node, id *ast.Ident, p ResourcePair) bool {
	parent := func(i int) ast.Node {
		if len(stack)-1-i < 0 {
			return nil
		}
		return stack[len(stack)-1-i]
	}
	switch par := parent(1).(type) {
	case *ast.SelectorExpr:
		// v.Close() / defer v.Close(): release method called on v.
		if par.X == id && p.Release != "" && par.Sel.Name == p.Release {
			if call, ok := parent(2).(*ast.CallExpr); ok && call.Fun == par {
				return true
			}
		}
		// Any other method use neither releases nor escapes.
		return false
	case *ast.CallExpr:
		if par.Fun == id {
			// v() — releasing a cancel func.
			return p.Release == ""
		}
		// v passed as an argument: obligation handed to the callee.
		for _, arg := range par.Args {
			if arg == id {
				return true
			}
		}
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.KeyValueExpr, *ast.CompositeLit:
		// Stored into a struct/map/slice literal: new owner.
		return true
	case *ast.UnaryExpr:
		// &v: address escapes.
		return par.Op.String() == "&"
	case *ast.AssignStmt:
		// v on the RHS of an assignment: some other binding owns it now
		// (x.f = v, w := v, m[k] = v) — unless the binding is the blank
		// identifier, which owns nothing.
		for i, r := range par.Rhs {
			if r != id {
				continue
			}
			if len(par.Lhs) == len(par.Rhs) {
				if lhs, ok := par.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
					return false
				}
			}
			return true
		}
		return false
	case *ast.IndexExpr:
		// m[v] or v used in an index — not a discharge.
		return false
	}
	return false
}
