package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// HotpathDirective marks a function as allocation-critical: the hotalloc
// gate fails if the compiler's escape analysis reports a heap allocation
// anywhere in its body. The function's doc comment is the justification
// for why it is on the hot path.
const HotpathDirective = "//podnas:hotpath"

// HotallocPackages are the module-relative package directories the gate
// inspects by default: the kernel compute layer and the nn training loop,
// whose measured ≤ 6 allocs/train-step budget (BENCH_*.json) this gate
// turns into a statically enforced invariant.
var HotallocPackages = []string{"internal/kernel", "internal/nn"}

// hotFunc is one //podnas:hotpath-annotated function's source extent.
type hotFunc struct {
	name       string
	file       string // module-root-relative, slash-separated
	start, end int    // body line range, inclusive
}

// escapeLine matches one compiler diagnostic from -gcflags=-m output.
var escapeLine = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)

// HotallocGate runs `go build -gcflags=<pkg>=-m` over each package and
// reports every heap allocation ("escapes to heap" / "moved to heap") that
// lands inside a //podnas:hotpath function and is not excused by a
// //podnas:allow hotalloc directive on or directly above its line. The
// build cache replays compiler diagnostics, so repeated runs are cheap.
//
// knownChecks is the full production check-name set, used only to parse
// allow directives without misreading suppressions that belong to other
// analyzers; malformed directives are the AST run's findings, not ours.
func HotallocGate(modDir, modPath string, pkgRels []string, knownChecks map[string]bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, rel := range pkgRels {
		hot, allow, err := collectHotpaths(modDir, rel, knownChecks)
		if err != nil {
			return nil, err
		}
		importPath := modPath + "/" + filepath.ToSlash(rel)
		cmd := exec.Command("go", "build", "-gcflags="+importPath+"=-m", importPath)
		cmd.Dir = modDir
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("lint: hotalloc build of %s failed: %v\n%s", importPath, err, out)
		}
		diags = append(diags, correlateEscapes(string(out), hot, allow)...)
	}
	return diags, nil
}

// collectHotpaths parses the non-test files of one package directory,
// returning every hotpath-annotated function's extent plus the set of
// (file, line) cells covered by a //podnas:allow hotalloc directive.
func collectHotpaths(modDir, rel string, knownChecks map[string]bool) ([]hotFunc, map[allowKey]bool, error) {
	dir := filepath.Join(modDir, filepath.FromSlash(rel))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: hotalloc: %s: %w", rel, err)
	}
	fset := token.NewFileSet()
	var hot []hotFunc
	allow := make(map[allowKey]bool)
	for _, name := range bp.GoFiles {
		relFile := rel + "/" + name
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: hotalloc: %s: %w", relFile, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res := ParseAllowDirective(c.Text, knownChecks)
				if res.Check != "hotalloc" {
					continue
				}
				line := fset.Position(c.Pos()).Line
				allow[allowKey{relFile, line, "hotalloc"}] = true
				allow[allowKey{relFile, line + 1, "hotalloc"}] = true
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			hot = append(hot, hotFunc{
				name:  fd.Name.Name,
				file:  relFile,
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.Body.End()).Line,
			})
		}
	}
	return hot, allow, nil
}

// isHotpath reports whether the function's doc comment carries the
// hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

// isAllocEscape reports whether one -m diagnostic is a real allocation:
// a buffer (make), an object (&T{} / new / composite literal), a closure
// (func literal), or a stack variable forced to the heap. Interface-boxing
// diagnostics ("x escapes to heap" for a Sprintf argument on a panic path)
// are excluded: they fire only on death paths and would drown the signal
// the gate exists for — a new buffer or closure allocated per train step.
func isAllocEscape(msg string) bool {
	if strings.HasPrefix(msg, "moved to heap:") {
		return true
	}
	if !strings.HasSuffix(msg, "escapes to heap") {
		return false
	}
	expr := strings.TrimSuffix(msg, " escapes to heap")
	switch {
	case strings.HasPrefix(expr, "make("),
		strings.HasPrefix(expr, "new("),
		strings.HasPrefix(expr, "&"),
		strings.HasPrefix(expr, "func literal"),
		strings.HasPrefix(expr, "[]"),
		strings.HasPrefix(expr, "map["),
		strings.HasSuffix(expr, "{...}"):
		return true
	}
	return false
}

// correlateEscapes scans one build's -m output for heap allocations inside
// hotpath extents.
func correlateEscapes(out string, hot []hotFunc, allow map[allowKey]bool) []Diagnostic {
	var diags []Diagnostic
	for _, line := range strings.Split(out, "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !isAllocEscape(msg) {
			continue
		}
		file := m[1]
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, h := range hot {
			if h.file != file || lineNo < h.start || lineNo > h.end {
				continue
			}
			if allow[allowKey{file, lineNo, "hotalloc"}] {
				break
			}
			diags = append(diags, Diagnostic{
				Check: "hotalloc",
				File:  file,
				Line:  lineNo,
				Col:   col,
				Message: fmt.Sprintf("heap allocation in hot-path function %s: %s; keep it on the stack, stage it through an Arena, or //podnas:allow hotalloc <reason>",
					h.name, msg),
			})
			break
		}
	}
	return diags
}
