package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultToleranceHelpers are the approved comparison helpers: float
// equality inside their bodies is the point, not a bug. Functions can also
// opt in locally with a //podnas:tolerance directive in their doc comment.
var DefaultToleranceHelpers = []string{
	"podnas/internal/metrics.ApproxEqual",
}

// NewFloateq builds the float-comparison analyzer: direct == / != between
// floating-point operands silently breaks on the last-ulp differences this
// codebase is full of (R² thresholds, 1e-9 replay equality), so comparisons
// must go through an approved tolerance helper or carry a justified
// //podnas:allow floateq directive (exact zero-guards, zero-value option
// detection).
func NewFloateq(approved []string) *Analyzer {
	approvedSet := make(map[string]bool, len(approved))
	for _, name := range approved {
		approvedSet[name] = true
	}
	a := &Analyzer{
		Name: "floateq",
		Doc:  "no direct ==/!= between floats outside approved tolerance helpers",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			exempt := toleranceSpans(pass, f, approvedSet)
			ast.Inspect(f, func(n ast.Node) bool {
				b, ok := n.(*ast.BinaryExpr)
				if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
					return true
				}
				xt, yt := pass.Pkg.Info.Types[b.X], pass.Pkg.Info.Types[b.Y]
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant fold: decided at compile time
				}
				for _, span := range exempt {
					if b.Pos() >= span[0] && b.Pos() < span[1] {
						return true
					}
				}
				pass.Reportf(b.Pos(),
					"float %s comparison; use metrics.ApproxEqual with an explicit tolerance (//podnas:allow floateq <reason> if exact equality is the contract)",
					b.Op)
				return true
			})
		}
	}
	return a
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// toleranceSpans returns the source ranges of functions exempt from
// floateq: members of the approved list, or functions whose doc comment
// carries the //podnas:tolerance directive.
func toleranceSpans(pass *Pass, f *ast.File, approved map[string]bool) [][2]token.Pos {
	var spans [][2]token.Pos
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		qualified := pass.Pkg.ImportPath + "." + fn.Name.Name
		ok = approved[qualified]
		if !ok && fn.Doc != nil {
			for _, c := range fn.Doc.List {
				if strings.HasPrefix(c.Text, ToleranceDirective) {
					ok = true
					break
				}
			}
		}
		if ok {
			spans = append(spans, [2]token.Pos{fn.Body.Pos(), fn.Body.End()})
		}
	}
	return spans
}
