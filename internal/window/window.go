// Package window builds the sequence-to-sequence training examples from POD
// coefficient matrices, following §II-B of the paper: every stride-1
// subinterval of width 2K becomes one example whose first K snapshots are
// the input and whose last K snapshots are the target. Examples are split
// 80/20 into training and validation with a seeded shuffle.
package window

import (
	"fmt"
	"math"

	"podnas/internal/tensor"
)

// Dataset is a windowed sequence-to-sequence data set: X and Y have shape
// (examples, K, Nr).
type Dataset struct {
	X, Y *tensor.Tensor3
	K    int // window length (input = output length)
	Nr   int // features per step (number of POD modes)
}

// Examples returns the number of (input, output) pairs.
func (d *Dataset) Examples() int { return d.X.B }

// Build converts a coefficient matrix a (Nr×Nt: rows are modes, columns are
// time, the layout pod.Basis.Project produces) into windowed examples. It
// returns an error if the record is too short for a single window.
func Build(a *tensor.Matrix, k int) (*Dataset, error) {
	if k < 1 {
		return nil, fmt.Errorf("window: K must be positive, got %d", k)
	}
	nr, nt := a.Rows, a.Cols
	n := nt - 2*k + 1
	if n < 1 {
		return nil, fmt.Errorf("window: record of %d snapshots too short for 2K=%d", nt, 2*k)
	}
	// Reject non-finite coefficients at the boundary: one NaN would fan out
	// into every overlapping window, silently corrupt the scaler fit, and
	// surface much later as a diverged training.
	for i, v := range a.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("window: coefficient matrix has non-finite value %g at mode %d, snapshot %d", v, i/nt, i%nt)
		}
	}
	x := tensor.NewTensor3(n, k, nr)
	y := tensor.NewTensor3(n, k, nr)
	for e := 0; e < n; e++ {
		for t := 0; t < k; t++ {
			for r := 0; r < nr; r++ {
				x.Set(e, t, r, a.At(r, e+t))
				y.Set(e, t, r, a.At(r, e+k+t))
			}
		}
	}
	return &Dataset{X: x, Y: y, K: k, Nr: nr}, nil
}

// Split partitions d into train and validation sets using a seeded shuffle;
// trainFrac is the training fraction (the paper uses 0.8). Both subsets keep
// at least one example.
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, val *Dataset, err error) {
	n := d.Examples()
	if n < 2 {
		return nil, nil, fmt.Errorf("window: need at least 2 examples to split, have %d", n)
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("window: trainFrac %g outside (0,1)", trainFrac)
	}
	nTrain := int(float64(n) * trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= n {
		nTrain = n - 1
	}
	perm := tensor.NewRNG(seed).Perm(n)
	trainIdx, valIdx := perm[:nTrain], perm[nTrain:]
	train = &Dataset{X: d.X.Gather(trainIdx), Y: d.Y.Gather(trainIdx), K: d.K, Nr: d.Nr}
	val = &Dataset{X: d.X.Gather(valIdx), Y: d.Y.Gather(valIdx), K: d.K, Nr: d.Nr}
	return train, val, nil
}

// Scaler standardizes features to zero mean and unit variance per mode,
// fitted on training inputs. POD coefficients of different modes differ in
// scale by orders of magnitude, so standardization keeps the LSTM gates in
// their active range.
type Scaler struct {
	Mean, Std []float64 // per feature (mode)
}

// FitScaler computes per-feature statistics over all steps of x.
func FitScaler(x *tensor.Tensor3) *Scaler {
	f := x.F
	s := &Scaler{Mean: make([]float64, f), Std: make([]float64, f)}
	n := x.B * x.T
	if n == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	for i := 0; i < n; i++ {
		row := x.Data[i*f : (i+1)*f]
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := x.Data[i*f : (i+1)*f]
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] /= float64(n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		} else {
			s.Std[j] = math.Sqrt(s.Std[j])
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x *tensor.Tensor3) *tensor.Tensor3 {
	out := x.Clone()
	f := x.F
	n := x.B * x.T
	for i := 0; i < n; i++ {
		row := out.Data[i*f : (i+1)*f]
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// Inverse maps standardized values back to the original scale in place.
func (s *Scaler) Inverse(x *tensor.Tensor3) {
	f := x.F
	n := x.B * x.T
	for i := 0; i < n; i++ {
		row := x.Data[i*f : (i+1)*f]
		for j := range row {
			row[j] = row[j]*s.Std[j] + s.Mean[j]
		}
	}
}

// MinMaxScaler maps each feature linearly from its training range into
// [-Bound, Bound]. POD-LSTM pipelines use range scaling rather than
// standardization because the final LSTM layer's outputs are confined to
// (-1, 1) (h = o·tanh(c)); keeping targets inside that range makes them
// reachable.
type MinMaxScaler struct {
	Min, Max []float64
	Bound    float64
}

// FitMinMax computes per-feature ranges over all steps of x, targeting
// [-bound, bound]. A bound of ~0.85 leaves headroom for test-time values
// slightly outside the training range (e.g. the warming trend).
func FitMinMax(x *tensor.Tensor3, bound float64) *MinMaxScaler {
	f := x.F
	s := &MinMaxScaler{Min: make([]float64, f), Max: make([]float64, f), Bound: bound}
	for j := 0; j < f; j++ {
		s.Min[j] = math.Inf(1)
		s.Max[j] = math.Inf(-1)
	}
	n := x.B * x.T
	for i := 0; i < n; i++ {
		row := x.Data[i*f : (i+1)*f]
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	for j := 0; j < f; j++ {
		if n == 0 || s.Max[j]-s.Min[j] < 1e-12 {
			// Degenerate feature: pick a unit range centred on the value.
			c := 0.0
			if n > 0 {
				c = s.Min[j]
			}
			s.Min[j] = c - 0.5
			s.Max[j] = c + 0.5
		}
	}
	return s
}

// Transform returns a range-scaled copy of x.
func (s *MinMaxScaler) Transform(x *tensor.Tensor3) *tensor.Tensor3 {
	out := x.Clone()
	f := x.F
	n := x.B * x.T
	for i := 0; i < n; i++ {
		row := out.Data[i*f : (i+1)*f]
		for j := range row {
			u := (row[j] - s.Min[j]) / (s.Max[j] - s.Min[j]) // [0,1] on train
			row[j] = (2*u - 1) * s.Bound
		}
	}
	return out
}

// Inverse maps scaled values back to the original range in place.
func (s *MinMaxScaler) Inverse(x *tensor.Tensor3) {
	f := x.F
	n := x.B * x.T
	for i := 0; i < n; i++ {
		row := x.Data[i*f : (i+1)*f]
		for j := range row {
			u := (row[j]/s.Bound + 1) / 2
			row[j] = s.Min[j] + u*(s.Max[j]-s.Min[j])
		}
	}
}
