package window

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"podnas/internal/tensor"
)

// ramp builds an Nr×Nt coefficient matrix with a[r][t] = 100r + t, which
// makes window contents easy to verify.
func ramp(nr, nt int) *tensor.Matrix {
	a := tensor.NewMatrix(nr, nt)
	for r := 0; r < nr; r++ {
		for t := 0; t < nt; t++ {
			a.Set(r, t, float64(100*r+t))
		}
	}
	return a
}

func TestBuildCountAndContents(t *testing.T) {
	a := ramp(2, 10)
	d, err := Build(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Examples() != 10-6+1 {
		t.Fatalf("examples = %d, want 5", d.Examples())
	}
	// Example e: input steps e..e+2, output steps e+3..e+5.
	for e := 0; e < d.Examples(); e++ {
		for step := 0; step < 3; step++ {
			for r := 0; r < 2; r++ {
				if got, want := d.X.At(e, step, r), float64(100*r+e+step); got != want {
					t.Fatalf("X(%d,%d,%d) = %g, want %g", e, step, r, got, want)
				}
				if got, want := d.Y.At(e, step, r), float64(100*r+e+3+step); got != want {
					t.Fatalf("Y(%d,%d,%d) = %g, want %g", e, step, r, got, want)
				}
			}
		}
	}
}

func TestBuildPaperCount(t *testing.T) {
	// With Ns=427 and K=8 the stride-1 window count is 412 (the paper quotes
	// 1,111 for the same formula; see DESIGN.md).
	d, err := Build(ramp(5, 427), 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Examples() != 412 {
		t.Errorf("examples = %d, want 412", d.Examples())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(ramp(2, 5), 3); err == nil {
		t.Error("expected error: record shorter than 2K")
	}
	if _, err := Build(ramp(2, 5), 0); err == nil {
		t.Error("expected error: K=0")
	}
}

func TestSplitPartitions(t *testing.T) {
	d, _ := Build(ramp(2, 50), 4)
	train, val, err := d.Split(0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Examples()+val.Examples() != d.Examples() {
		t.Errorf("split sizes %d + %d != %d", train.Examples(), val.Examples(), d.Examples())
	}
	want := int(float64(d.Examples()) * 0.8)
	if train.Examples() != want {
		t.Errorf("train size %d, want %d", train.Examples(), want)
	}
}

func TestSplitDeterministicAndSeedSensitive(t *testing.T) {
	d, _ := Build(ramp(1, 40), 3)
	t1, _, _ := d.Split(0.8, 7)
	t2, _, _ := d.Split(0.8, 7)
	if !t1.X.Rows(0).Equal(t2.X.Rows(0), 0) {
		t.Error("same seed gave different splits")
	}
	t3, _, _ := d.Split(0.8, 8)
	same := true
	for i := range t1.X.Data {
		if t1.X.Data[i] != t3.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical shuffles (suspicious)")
	}
}

func TestSplitPreservesPairs(t *testing.T) {
	// Property: after splitting, each X window's content still matches its Y
	// window (Y starts exactly K steps after X in the original series).
	f := func(seed uint64) bool {
		d, err := Build(ramp(2, 30), 3)
		if err != nil {
			return false
		}
		train, val, err := d.Split(0.75, seed)
		if err != nil {
			return false
		}
		check := func(s *Dataset) bool {
			for e := 0; e < s.Examples(); e++ {
				// Recover the original offset from X(e,0,0) = e0.
				e0 := int(s.X.At(e, 0, 0))
				if s.Y.At(e, 0, 0) != float64(e0+3) {
					return false
				}
			}
			return true
		}
		return check(train) && check(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSplitErrors(t *testing.T) {
	d, _ := Build(ramp(1, 7), 3)
	if _, _, err := d.Split(1.5, 1); err == nil {
		t.Error("expected error for trainFrac > 1")
	}
	tiny := &Dataset{X: tensor.NewTensor3(1, 2, 1), Y: tensor.NewTensor3(1, 2, 1), K: 2, Nr: 1}
	if _, _, err := tiny.Split(0.8, 1); err == nil {
		t.Error("expected error for single-example split")
	}
}

func TestScalerRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := tensor.NewTensor3(6, 4, 3)
	rng.FillNormal(x.Data, 5)
	for i := range x.Data {
		x.Data[i] += 10
	}
	s := FitScaler(x)
	z := s.Transform(x)
	// Standardized data: mean ~0, std ~1 per feature.
	zs := FitScaler(z)
	for j := 0; j < 3; j++ {
		if math.Abs(zs.Mean[j]) > 1e-9 {
			t.Errorf("feature %d standardized mean %g", j, zs.Mean[j])
		}
		if math.Abs(zs.Std[j]-1) > 1e-9 {
			t.Errorf("feature %d standardized std %g", j, zs.Std[j])
		}
	}
	s.Inverse(z)
	for i := range x.Data {
		if math.Abs(z.Data[i]-x.Data[i]) > 1e-9 {
			t.Fatal("Inverse(Transform(x)) != x")
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	x := tensor.NewTensor3(4, 2, 1)
	for i := range x.Data {
		x.Data[i] = 3
	}
	s := FitScaler(x)
	if s.Std[0] != 1 {
		t.Errorf("constant feature std clamped to %g, want 1", s.Std[0])
	}
	z := s.Transform(x)
	for _, v := range z.Data {
		if v != 0 {
			t.Error("constant feature should standardize to 0")
		}
	}
}

func TestScalerEmptyInput(t *testing.T) {
	s := FitScaler(tensor.NewTensor3(0, 0, 2))
	if s.Std[0] != 1 || s.Std[1] != 1 {
		t.Error("empty scaler should default std to 1")
	}
}

func TestMinMaxRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := tensor.NewTensor3(5, 3, 2)
	rng.FillNormal(x.Data, 7)
	s := FitMinMax(x, 0.85)
	z := s.Transform(x)
	for _, v := range z.Data {
		if v < -0.85-1e-12 || v > 0.85+1e-12 {
			t.Fatalf("scaled training value %g outside bound", v)
		}
	}
	s.Inverse(z)
	for i := range x.Data {
		if math.Abs(z.Data[i]-x.Data[i]) > 1e-9 {
			t.Fatal("MinMax Inverse(Transform(x)) != x")
		}
	}
}

func TestMinMaxHitsBounds(t *testing.T) {
	x := tensor.Tensor3FromSlice(1, 3, 1, []float64{-2, 0, 4})
	s := FitMinMax(x, 0.8)
	z := s.Transform(x)
	if math.Abs(z.Data[0]+0.8) > 1e-12 || math.Abs(z.Data[2]-0.8) > 1e-12 {
		t.Errorf("extremes map to %g, %g; want ±0.8", z.Data[0], z.Data[2])
	}
}

func TestMinMaxConstantFeature(t *testing.T) {
	x := tensor.NewTensor3(2, 2, 1)
	for i := range x.Data {
		x.Data[i] = 7
	}
	s := FitMinMax(x, 0.85)
	z := s.Transform(x)
	for _, v := range z.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("constant feature produced non-finite scaling")
		}
	}
	s.Inverse(z)
	if math.Abs(z.Data[0]-7) > 1e-9 {
		t.Error("constant feature round trip failed")
	}
}

func TestMinMaxExtrapolationStaysFinite(t *testing.T) {
	// Test-period values beyond the training range scale beyond ±Bound but
	// must invert exactly.
	train := tensor.Tensor3FromSlice(1, 2, 1, []float64{0, 1})
	s := FitMinMax(train, 0.85)
	test := tensor.Tensor3FromSlice(1, 2, 1, []float64{-1, 2})
	z := s.Transform(test)
	if z.Data[0] >= -0.85 || z.Data[1] <= 0.85 {
		t.Errorf("out-of-range values %v should exceed the bound", z.Data)
	}
	s.Inverse(z)
	if math.Abs(z.Data[0]+1) > 1e-9 || math.Abs(z.Data[1]-2) > 1e-9 {
		t.Error("extrapolated round trip failed")
	}
}

func TestSplitEveryExampleAppearsExactlyOnce(t *testing.T) {
	// Property: train ∪ val is a partition of the original examples.
	f := func(seed uint64) bool {
		d, err := Build(ramp(1, 25), 2)
		if err != nil {
			return false
		}
		train, val, err := d.Split(0.7, seed)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		collect := func(s *Dataset) {
			for e := 0; e < s.Examples(); e++ {
				seen[int(s.X.At(e, 0, 0))]++
			}
		}
		collect(train)
		collect(val)
		if len(seen) != d.Examples() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBuildRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		a := ramp(2, 10)
		a.Set(1, 4, bad)
		if _, err := Build(a, 3); err == nil {
			t.Errorf("Build accepted coefficient matrix containing %g", bad)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("error %q does not mention non-finite input", err)
		}
	}
}
