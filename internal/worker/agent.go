package worker

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"podnas/internal/search"
)

// AgentOptions configures a dialable worker agent (ServeListener).
type AgentOptions struct {
	// Heartbeat is the cadence served to every driver (default 1s). It must
	// match the driver pool's Heartbeat option.
	Heartbeat time.Duration
	// Ident is the agent's self-reported identity in welcome frames
	// (default "<hostname>/<pid>").
	Ident string
	// HandshakeTimeout bounds reading a new connection's hello frame
	// (default 10s), so a port-scanner or wedged dialer cannot pin an accept
	// slot open forever.
	HandshakeTimeout time.Duration
}

func (o AgentOptions) handshakeTimeout() time.Duration {
	if o.HandshakeTimeout > 0 {
		return o.HandshakeTimeout
	}
	return 10 * time.Second
}

func (o AgentOptions) ident() string {
	if o.Ident != "" {
		return o.Ident
	}
	host, err := os.Hostname()
	if err != nil {
		host = "agent"
	}
	return fmt.Sprintf("%s/%d", host, os.Getpid())
}

// ServeListener runs a worker agent: accept driver connections on ln,
// answer each hello with a welcome echoing the driver's lease and epoch,
// and then run the ordinary Serve loop on the connection with that lease
// stamped into every outbound frame. Each connection is one leased slot
// attachment; connections are served concurrently and independently, so
// eval must be safe for concurrent use (the in-process runners already
// call evaluators concurrently). A driver disconnect — clean shutdown
// frame, heartbeat kill, network drop — ends only that connection; the
// agent keeps listening, which is what lets a driver reconnect and resume
// after a partition.
//
// ServeListener returns nil once ctx is cancelled (in-flight connections
// are closed and drained first) and an error if the listener itself fails.
func ServeListener(ctx context.Context, ln net.Listener, eval search.Evaluator, opts AgentOptions) error {
	var wg sync.WaitGroup
	done := make(chan struct{})
	defer func() {
		close(done)
		wg.Wait()
	}()
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		_ = ln.Close()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("worker: agent accept: %w", err)
		}
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			connDone := make(chan struct{})
			go func() {
				select {
				case <-ctx.Done():
				case <-done:
				case <-connDone:
				}
				_ = c.Close()
			}()
			defer close(connDone)
			agentConn(c, eval, opts)
		}(c)
	}
}

// agentConn handshakes one driver connection and serves it to completion.
// Handshake failures are answered with a welcome frame carrying the
// refusal (so the dialer can report why) and the connection dropped; the
// driver, not the agent, owns retry policy.
func agentConn(c net.Conn, eval search.Evaluator, opts AgentOptions) {
	_ = c.SetReadDeadline(time.Now().Add(opts.handshakeTimeout()))
	r := newFrameReader(c)
	fw := newFrameWriter(c)
	m, err := r.next()
	if err != nil {
		return
	}
	if err := ValidateHello(m); err != nil {
		_ = fw.send(Message{Type: MsgWelcome, Schema: ProtoSchema, Err: err.Error()})
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	// The welcome echoes this agent's capabilities so the driver knows span
	// frames may arrive; the agent itself self-gates on the Trace field of
	// each eval frame, so a driver that never stamps one never sees a span.
	welcome := Message{
		Type: MsgWelcome, Schema: ProtoSchema, Lease: m.Lease, Epoch: m.Epoch,
		Ident: opts.ident(), Caps: []string{CapEval, CapTrace},
	}
	if err := fw.send(welcome); err != nil {
		return
	}
	_ = serveFrames(r, fw, eval, ServeOptions{Heartbeat: opts.Heartbeat, Lease: m.Lease, Epoch: m.Epoch})
}
