package worker

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWorkerFrame drives the line-protocol frame reader with arbitrary
// bytes. The contracts under fuzzing: never panic, terminate, never yield a
// frame with an empty type tag (the supervisor dispatches on it), and fail
// only with io.EOF or a wrapped scanner error.
func FuzzWorkerFrame(f *testing.F) {
	f.Add([]byte(`{"type":"eval","id":7,"arch":[3,1,2],"seed":42}` + "\n"))
	f.Add([]byte(`{"type":"heartbeat"}` + "\n" + `{"type":"result","id":1,"reward":0.5}` + "\n"))
	f.Add([]byte("stray stderr noise\n{\"type\":\"ready\"}\n"))
	f.Add([]byte(`{"type":"cancel","id":`)) // torn frame
	f.Add([]byte(`{"type":""}` + "\n" + `{"id":3}` + "\n"))
	f.Add(bytes.Repeat([]byte("x"), 2<<20)) // one line beyond maxFrameBytes

	f.Fuzz(func(t *testing.T, data []byte) {
		r := newFrameReader(bytes.NewReader(data))
		frames := 0
		for {
			m, err := r.next()
			if err != nil {
				// next documents exactly two terminations: io.EOF for a
				// cleanly closed stream, or a scanner error wrapped with %w.
				if !errors.Is(err, io.EOF) && errors.Unwrap(err) == nil {
					t.Fatalf("undocumented frame error: %v", err)
				}
				break
			}
			if m.Type == "" {
				t.Fatal("frame with empty type escaped the reader")
			}
			frames++
			if frames > bytes.Count(data, []byte("\n"))+2 {
				t.Fatalf("%d frames from %d lines; reader not consuming input", frames, bytes.Count(data, []byte("\n")))
			}
		}
	})
}
