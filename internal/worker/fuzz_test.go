package worker

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWorkerFrame drives the line-protocol frame reader with arbitrary
// bytes. The contracts under fuzzing: never panic, terminate, never yield a
// frame with an empty type tag (the supervisor dispatches on it), and fail
// only with io.EOF or a wrapped scanner error.
func FuzzWorkerFrame(f *testing.F) {
	f.Add([]byte(`{"type":"eval","id":7,"arch":[3,1,2],"seed":42}` + "\n"))
	f.Add([]byte(`{"type":"heartbeat"}` + "\n" + `{"type":"result","id":1,"reward":0.5}` + "\n"))
	f.Add([]byte("stray stderr noise\n{\"type\":\"ready\"}\n"))
	f.Add([]byte(`{"type":"cancel","id":`)) // torn frame
	f.Add([]byte(`{"type":""}` + "\n" + `{"id":3}` + "\n"))
	f.Add(bytes.Repeat([]byte("x"), 2<<20)) // one line beyond maxFrameBytes

	f.Fuzz(func(t *testing.T, data []byte) {
		r := newFrameReader(bytes.NewReader(data))
		frames := 0
		for {
			m, err := r.next()
			if err != nil {
				// next documents exactly two terminations: io.EOF for a
				// cleanly closed stream, or a scanner error wrapped with %w.
				if !errors.Is(err, io.EOF) && errors.Unwrap(err) == nil {
					t.Fatalf("undocumented frame error: %v", err)
				}
				break
			}
			if m.Type == "" {
				t.Fatal("frame with empty type escaped the reader")
			}
			frames++
			if frames > bytes.Count(data, []byte("\n"))+2 {
				t.Fatalf("%d frames from %d lines; reader not consuming input", frames, bytes.Count(data, []byte("\n")))
			}
		}
	})
}

// FuzzHandshakeDecode feeds arbitrary bytes through the frame reader into
// both handshake validators — the exact path a hostile or confused peer's
// opening bytes take on either end of a connection. The contracts: never
// panic, and never accept a frame that is truncated, the wrong type, from a
// future schema, unleased, or answering with the wrong lease/epoch echo.
func FuzzHandshakeDecode(f *testing.F) {
	f.Add([]byte(`{"type":"hello","schema":1,"lease":771,"epoch":2,"caps":["eval"]}` + "\n"))
	f.Add([]byte(`{"type":"welcome","schema":1,"lease":771,"epoch":2,"ident":"host/4242"}` + "\n"))
	f.Add([]byte(`{"type":"hello","schema":99,"lease":1}` + "\n"))   // hello from the future
	f.Add([]byte(`{"type":"hello","schema":1,"lease":0}` + "\n"))    // unleased hello
	f.Add([]byte(`{"type":"welcome","schema":1,"lease":9,"epo`))     // torn welcome
	f.Add([]byte(`{"type":"welcome","err":"agent refused"}` + "\n")) // refusal
	f.Add([]byte(`{"type":"ready"}` + "\n"))                         // protocol frame out of order
	f.Add([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))               // port scanner
	f.Add([]byte{0xff, 0xfe, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := newFrameReader(bytes.NewReader(data)).next()
		if err != nil {
			// Truncated or unparseable handshakes must surface as read
			// errors, exactly like the frame reader documents.
			if !errors.Is(err, io.EOF) && errors.Unwrap(err) == nil {
				t.Fatalf("undocumented frame error: %v", err)
			}
			return
		}
		if herr := ValidateHello(m); herr == nil {
			// Anything the agent accepts must really be a speakable,
			// leased hello.
			if m.Type != MsgHello || m.Schema < 1 || m.Schema > ProtoSchema || m.Lease == 0 {
				t.Fatalf("ValidateHello accepted %+v", m)
			}
		}
		const lease, epoch = 771, 2
		if werr := ValidateWelcome(m, lease, epoch); werr == nil {
			// Anything the driver accepts must echo its fence exactly and
			// name the agent.
			if m.Type != MsgWelcome || m.Err != "" || m.Schema < 1 || m.Schema > ProtoSchema ||
				m.Lease != lease || m.Epoch != epoch || m.Ident == "" {
				t.Fatalf("ValidateWelcome accepted %+v", m)
			}
		}
	})
}
