package worker_test

import (
	"fmt"
	"testing"
	"time"

	"podnas/internal/obs"
	"podnas/internal/worker"
)

// TestPoolEmitsSupervisionEvents runs a KillNth fault through an observed
// pool and asserts the supervision event stream mirrors PoolStats: every
// crash and restart the stats count is also on the wire, attributed to a
// valid slot.
func TestPoolEmitsSupervisionEvents(t *testing.T) {
	ring := obs.NewRing(256)
	opts := fastPoolOptions()
	opts.Workers = 2
	opts.KillNth = 2
	opts.Recorder = ring
	opts.Command = helperCommand(func(int, int) []string { return []string{"HELPER_SLEEP=30ms"} })
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	res := runPooledSearch(t, pool, 5, 6, 2, 0)
	if len(res) != 6 {
		t.Fatalf("budget not spent: %d of 6 evaluations", len(res))
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	st := pool.Stats()
	counts := map[obs.Kind]int{}
	for _, e := range ring.Events() {
		counts[e.Kind]++
		switch e.Kind {
		case obs.KindWorkerSpawn, obs.KindWorkerCrash, obs.KindWorkerRestart, obs.KindHeartbeatMiss:
			if e.Worker < 0 || e.Worker >= opts.Workers {
				t.Errorf("%v event on slot %d, want [0,%d)", e.Kind, e.Worker, opts.Workers)
			}
		}
	}
	if counts[obs.KindWorkerSpawn] < 3 {
		t.Errorf("spawn events %d, want >= 3 (2 initial + restart after kill)", counts[obs.KindWorkerSpawn])
	}
	if counts[obs.KindWorkerCrash] != st.Crashes {
		t.Errorf("crash events %d, stats counted %d", counts[obs.KindWorkerCrash], st.Crashes)
	}
	if counts[obs.KindWorkerRestart] != st.Restarts {
		t.Errorf("restart events %d, stats counted %d", counts[obs.KindWorkerRestart], st.Restarts)
	}
	if counts[obs.KindWorkerCrash] < 1 || counts[obs.KindWorkerRestart] < 1 {
		t.Errorf("injected kill produced no crash/restart events: %v", counts)
	}
}

// TestPoolLocalSlotIdentities pins down the per-slot identity surface for
// the pipe transport: every attached slot reports local:<pid>, Pids (the
// kill-storm hook) lists exactly those pids, and nothing claims to be
// remote.
func TestPoolLocalSlotIdentities(t *testing.T) {
	opts := fastPoolOptions()
	opts.Workers = 2
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if res := runPooledSearch(t, pool, 3, 4, 2, 0); len(res) != 4 {
		t.Fatalf("budget not spent: %d of 4", len(res))
	}

	// A slot can be mid-restart (e.g. a heartbeat kill under scheduler
	// pressure) at the instant the search returns; the pool re-attaches it
	// on its own, so wait for a full, mutually consistent snapshot of the
	// two identity surfaces before asserting on them.
	var ids map[int]worker.SlotIdentity
	pids := map[int]bool{}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ids = pool.Identities()
		pids = map[int]bool{}
		for _, pid := range pool.Pids() {
			pids[pid] = true
		}
		consistent := len(ids) == opts.Workers && len(pids) == len(ids)
		for _, id := range ids {
			if !pids[id.PID] {
				consistent = false
			}
		}
		if consistent || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(ids) != opts.Workers {
		t.Fatalf("identities = %v, want %d attached slots", ids, opts.Workers)
	}
	for slot, id := range ids {
		if id.Remote || id.PID <= 0 {
			t.Errorf("slot %d identity %+v, want a local pid", slot, id)
		}
		if want := fmt.Sprintf("local:%d", id.PID); id.String() != want {
			t.Errorf("slot %d identity string %q, want %q", slot, id.String(), want)
		}
		if !pids[id.PID] {
			t.Errorf("slot %d pid %d missing from Pids() %v", slot, id.PID, pool.Pids())
		}
	}
	if len(pids) != len(ids) {
		t.Errorf("Pids() lists %d processes, identities list %d", len(pids), len(ids))
	}
}

// TestPoolSpeculationEvents forces a straggler so the speculative copy is
// launched and wins, and asserts both moments appear on the event stream.
func TestPoolSpeculationEvents(t *testing.T) {
	ring := obs.NewRing(128)
	opts := fastPoolOptions()
	opts.Workers = 2
	opts.SpeculativeAfter = 60 * time.Millisecond
	opts.Recorder = ring
	// Slot 0 straggles hard; slot 1 answers fast, so the duplicate dispatch
	// of a job stuck on slot 0 decides it.
	opts.Command = helperCommand(func(workerID, _ int) []string {
		if workerID == 0 {
			return []string{"HELPER_STRAGGLE=2s"}
		}
		return nil
	})
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res := runPooledSearch(t, pool, 11, 4, 2, 0)
	if len(res) != 4 {
		t.Fatalf("budget not spent: %d of 4", len(res))
	}
	st := pool.Stats()
	if st.SpeculativeRuns < 1 {
		t.Skip("no speculation triggered on this scheduling; nothing to assert")
	}
	counts := map[obs.Kind]int{}
	for _, e := range ring.Events() {
		counts[e.Kind]++
	}
	if counts[obs.KindSpecLaunch] != st.SpeculativeRuns {
		t.Errorf("speculation launch events %d, stats counted %d", counts[obs.KindSpecLaunch], st.SpeculativeRuns)
	}
	if counts[obs.KindSpecWin] != st.SpeculativeWins {
		t.Errorf("speculation win events %d, stats counted %d", counts[obs.KindSpecWin], st.SpeculativeWins)
	}
}
