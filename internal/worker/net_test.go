package worker_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/obs"
	"podnas/internal/search"
	"podnas/internal/tensor"
	"podnas/internal/worker"
)

// startAgent runs an in-process worker agent on a loopback listener and
// returns its address plus an idempotent stop function. The agent outlives
// any number of driver connections, which is exactly what the reconnect and
// partition tests need.
func startAgent(t *testing.T, eval search.Evaluator, opts worker.AgentOptions) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := worker.ServeListener(ctx, ln, eval, opts); err != nil {
			t.Errorf("agent: %v", err)
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	return ln.Addr().String(), stop
}

// dialPoolOptions mirrors fastPoolOptions for a TCP-attached pool.
func dialPoolOptions(addrs ...string) worker.PoolOptions {
	return worker.PoolOptions{
		Workers: 1,
		Transport: &worker.DialTransport{
			Addrs:            addrs,
			DialTimeout:      2 * time.Second,
			HandshakeTimeout: 2 * time.Second,
			Seed:             1,
		},
		Heartbeat:       50 * time.Millisecond,
		HeartbeatMisses: 4,
		MaxRestarts:     5,
		RestartBackoff:  10 * time.Millisecond,
		StartTimeout:    20 * time.Second,
		Seed:            1,
	}
}

func agentOptions() worker.AgentOptions {
	return worker.AgentOptions{Heartbeat: 50 * time.Millisecond}
}

// loadScrubbedCheckpoint loads a checkpoint and re-marshals it with the
// wall-clock Seconds fields zeroed, leaving only the deterministic content:
// searcher state, seed, and every result's index, genes, and reward.
func loadScrubbedCheckpoint(t *testing.T, path string) []byte {
	t.Helper()
	ck, err := search.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ck.Results {
		ck.Results[i].Seconds = 0
	}
	raw, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDialPoolDeterminismMatchesInProcess is the distributed determinism
// contract: a Workers=1 search over TCP reproduces the in-process history
// bit for bit, down to byte-identical checkpoints once the wall-clock
// Seconds fields are scrubbed.
func TestDialPoolDeterminismMatchesInProcess(t *testing.T) {
	const seed, evals = 17, 8
	dir := t.TempDir()
	ckDirect := filepath.Join(dir, "direct.ckpt")
	ckPooled := filepath.Join(dir, "pooled.ckpt")

	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := search.RunAsync(rs, &mockEval{}, search.RunAsyncOptions{
		Workers: 1, MaxEvals: evals, Seed: seed,
		Checkpoint: &search.Checkpointer{Path: ckDirect, Every: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	addr, stop := startAgent(t, &mockEval{}, agentOptions())
	defer stop()
	pool, err := worker.NewPool(dialPoolOptions(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rs2, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := search.RunAsync(rs2, pool, search.RunAsyncOptions{
		Workers: 1, MaxEvals: evals, Seed: seed,
		Checkpoint: &search.Checkpointer{Path: ckPooled, Every: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(direct) != len(pooled) {
		t.Fatalf("history lengths differ: %d in-process vs %d over TCP", len(direct), len(pooled))
	}
	for i := range direct {
		if direct[i].Arch.Key() != pooled[i].Arch.Key() {
			t.Fatalf("eval %d arch: in-process %s, TCP %s", i, direct[i].Arch.Key(), pooled[i].Arch.Key())
		}
		if direct[i].Reward != pooled[i].Reward {
			t.Fatalf("eval %d reward: in-process %v, TCP %v (must be bit-identical)", i, direct[i].Reward, pooled[i].Reward)
		}
		if pooled[i].Err != nil {
			t.Fatalf("TCP eval %d errored: %v", i, pooled[i].Err)
		}
	}
	a, b := loadScrubbedCheckpoint(t, ckDirect), loadScrubbedCheckpoint(t, ckPooled)
	if !bytes.Equal(a, b) {
		t.Fatalf("checkpoints diverge after scrubbing wall-clock:\nin-process: %s\nTCP:        %s", a, b)
	}
}

// TestDialPoolReconnectResume cuts the link mid-evaluation (KillNth) and
// asserts the slot redials under a fresh lease, re-dispatches the orphaned
// evaluation, and spends the full budget — with the connect, disconnect,
// and lease-expiry moments on the supervision event stream, each carrying
// the slot's remote identity.
func TestDialPoolReconnectResume(t *testing.T) {
	addr, stop := startAgent(t, &mockEval{sleep: 30 * time.Millisecond}, agentOptions())
	defer stop()
	ring := obs.NewRing(256)
	opts := dialPoolOptions(addr)
	opts.KillNth = 2
	opts.Recorder = ring
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}

	const seed, evals = 5, 6
	res := runPooledSearch(t, pool, seed, evals, 1, 0)
	if len(res) != evals {
		t.Fatalf("budget not spent: %d of %d evaluations", len(res), evals)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("eval %d errored: %v", r.Index, r.Err)
		}
		if want := mockReward(r.Arch, seed+uint64(r.Index)*0x9e37); r.Reward != want {
			t.Fatalf("eval %d reward %v, want %v", r.Index, r.Reward, want)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	st := pool.Stats()
	if st.Connects < 2 {
		t.Fatalf("link cut did not force a reconnect: stats %+v", st)
	}
	if st.Disconnects < 1 || st.LeaseExpires < 1 || st.Redispatches < 1 {
		t.Fatalf("expected disconnect + lease expiry + re-dispatch, stats %+v", st)
	}
	counts := map[obs.Kind]int{}
	for _, e := range ring.Events() {
		counts[e.Kind]++
		switch e.Kind {
		case obs.KindWorkerConnect, obs.KindWorkerDisconnect, obs.KindLeaseExpire:
			if e.Ident == "" {
				t.Errorf("%v event carries no identity: %+v", e.Kind, e)
			}
		}
		if e.Kind == obs.KindLeaseExpire && e.Eval <= 0 {
			t.Errorf("lease-expiry event names no evaluation: %+v", e)
		}
	}
	if counts[obs.KindWorkerConnect] != st.Connects {
		t.Errorf("connect events %d, stats counted %d", counts[obs.KindWorkerConnect], st.Connects)
	}
	if counts[obs.KindWorkerDisconnect] != st.Disconnects {
		t.Errorf("disconnect events %d, stats counted %d", counts[obs.KindWorkerDisconnect], st.Disconnects)
	}
	if counts[obs.KindLeaseExpire] != st.LeaseExpires {
		t.Errorf("lease-expiry events %d, stats counted %d", counts[obs.KindLeaseExpire], st.LeaseExpires)
	}
}

// TestDialPoolStaleLeaseFencing drives the pool against a handcrafted agent
// that answers an evaluation twice: first with a bogus reward under a
// foreign lease (the zombie-worker scenario), then with the true reward
// under the leased one. The fence must drop the zombie frame.
func TestDialPoolStaleLeaseFencing(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	agentDone := make(chan struct{})
	go func() {
		defer close(agentDone)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		dec, enc := json.NewDecoder(c), json.NewEncoder(c)
		var hello worker.Message
		if err := dec.Decode(&hello); err != nil {
			t.Errorf("fake agent: reading hello: %v", err)
			return
		}
		lease, epoch := hello.Lease, hello.Epoch
		enc.Encode(worker.Message{Type: worker.MsgWelcome, Schema: worker.ProtoSchema, Lease: lease, Epoch: epoch, Ident: "zombie-farm/1"})
		enc.Encode(worker.Message{Type: worker.MsgReady, Lease: lease, Epoch: epoch})
		var ev worker.Message
		for {
			if err := dec.Decode(&ev); err != nil {
				t.Errorf("fake agent: waiting for eval: %v", err)
				return
			}
			if ev.Type == worker.MsgEval {
				break
			}
		}
		// The zombie: a plausible result frame fenced off by its stale lease.
		enc.Encode(worker.Message{Type: worker.MsgResult, ID: ev.ID, Reward: -123, Lease: lease + 1, Epoch: epoch})
		// The legitimate answer under the live lease.
		enc.Encode(worker.Message{Type: worker.MsgResult, ID: ev.ID, Reward: mockReward(ev.Arch, ev.Seed), Lease: lease, Epoch: epoch})
		for {
			var m worker.Message
			if err := dec.Decode(&m); err != nil || m.Type == worker.MsgShutdown {
				return
			}
		}
	}()

	pool, err := worker.NewPool(dialPoolOptions(ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Default().Random(tensor.NewRNG(8))
	got, err := pool.Evaluate(a, 21)
	if err != nil {
		t.Fatalf("evaluation failed: %v", err)
	}
	if want := mockReward(a, 21); got != want {
		t.Fatalf("reward %v, want %v — the foreign-lease frame leaked through the fence", got, want)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-agentDone:
	case <-time.After(10 * time.Second):
		t.Fatal("fake agent never finished")
	}
	if st := pool.Stats(); st.StaleLeaseFrames < 1 {
		t.Fatalf("fenced frame not counted, stats %+v", st)
	}
}

// TestDialPoolIdentities asserts the per-slot identity surface: a remote
// slot reports remote:<addr>#<lease> with the agent's self-reported name
// and no local pid, so Pids (the kill-storm hook) skips it.
func TestDialPoolIdentities(t *testing.T) {
	addr, stop := startAgent(t, &mockEval{}, agentOptions())
	defer stop()
	pool, err := worker.NewPool(dialPoolOptions(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	a := arch.Default().Random(tensor.NewRNG(5))
	if _, err := pool.Evaluate(a, 3); err != nil {
		t.Fatalf("evaluation failed: %v", err)
	}
	ids := pool.Identities()
	if len(ids) != 1 {
		t.Fatalf("identities = %v, want one attached slot", ids)
	}
	id := ids[0]
	if !id.Remote || id.Addr != addr || id.Lease == 0 || id.Name == "" {
		t.Fatalf("remote slot identity %+v, want Remote with addr %s, a lease, and an agent name", id, addr)
	}
	if want := "remote:" + addr; len(id.String()) <= len(want) || id.String()[:len(want)] != want {
		t.Fatalf("identity string %q, want %q#<lease>", id.String(), want)
	}
	if pids := pool.Pids(); len(pids) != 0 {
		t.Fatalf("remote slots leaked into Pids: %v", pids)
	}
}

// TestDialPoolFallsBackToLocal points the dial transport at a dead address
// with a pipe transport configured as LocalFallback: the slot must demote to
// a local subprocess worker and the search must still produce exact rewards.
func TestDialPoolFallsBackToLocal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	opts := dialPoolOptions(deadAddr)
	opts.LocalFallback = &worker.PipeTransport{Command: helperCommand(nil)}
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const seed, evals = 7, 4
	res := runPooledSearch(t, pool, seed, evals, 1, 0)
	if len(res) != evals {
		t.Fatalf("budget not spent: %d of %d evaluations", len(res), evals)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("eval %d errored: %v", r.Index, r.Err)
		}
		if want := mockReward(r.Arch, seed+uint64(r.Index)*0x9e37); r.Reward != want {
			t.Fatalf("eval %d reward %v, want %v", r.Index, r.Reward, want)
		}
	}
	st := pool.Stats()
	if st.LocalFallbacks < 1 {
		t.Fatalf("slot never demoted to the local transport, stats %+v", st)
	}
	if st.Degraded || st.Connects != 0 {
		t.Fatalf("expected a clean demotion, not degradation: stats %+v", st)
	}
	if ids := pool.Identities(); len(ids) == 1 && ids[0].Remote {
		t.Fatalf("demoted slot still claims a remote identity: %+v", ids[0])
	}
}

// blackholeProxy sits between the driver and an agent and, once hole is
// set, silently swallows traffic instead of forwarding it — the peers see
// silence, not a connection reset, which is what a network partition looks
// like. New connections made during the partition are swallowed whole, so
// reconnect attempts time out at the handshake. A connection that was
// forwarding when the partition began is doomed (frames were dropped
// mid-stream) and never resumes.
type blackholeProxy struct {
	ln     net.Listener
	target string
	hole   atomic.Bool
	wg     sync.WaitGroup
}

func newBlackholeProxy(t *testing.T, target string) *blackholeProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &blackholeProxy{ln: ln, target: target}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			p.wg.Add(1)
			go p.serve(c)
		}
	}()
	return p
}

func (p *blackholeProxy) addr() string { return p.ln.Addr().String() }

func (p *blackholeProxy) close() {
	_ = p.ln.Close()
	p.wg.Wait()
}

func (p *blackholeProxy) serve(c net.Conn) {
	defer p.wg.Done()
	defer c.Close()
	if p.hole.Load() {
		// Born into the partition: swallow everything, answer nothing.
		_, _ = io.Copy(io.Discard, c)
		return
	}
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer up.Close()
	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		defer func() { done <- struct{}{} }()
		buf := make([]byte, 32*1024)
		for {
			n, err := src.Read(buf)
			if n > 0 && !p.hole.Load() {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	go pipe(up, c)
	go pipe(c, up)
	// Either side finishing dooms the pair; closing both unwedges the other
	// copier (important for the in-process agent's goroutine hygiene).
	<-done
	_ = c.Close()
	_ = up.Close()
	<-done
}

// countingEval counts invocations (at-least-once execution is expected under
// re-dispatch) and signals when the first one arrives, so the test can time
// the partition to strand an evaluation mid-flight.
type countingEval struct {
	calls atomic.Int64
	first chan struct{}
	sleep time.Duration
}

func (e *countingEval) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	if e.calls.Add(1) == 1 && e.first != nil {
		close(e.first)
	}
	time.Sleep(e.sleep)
	return mockReward(a, seed), nil
}

// TestDialPoolPartitionBlackhole is the partition-tolerance end-to-end: the
// network goes silent (not closed) with an evaluation in flight. The driver
// must heartbeat-kill the dead link, expire the lease, burn reconnect
// attempts into the blackhole, and — once the partition heals — redial under
// a fresh lease and re-dispatch, delivering the result exactly once.
func TestDialPoolPartitionBlackhole(t *testing.T) {
	if testing.Short() {
		t.Skip("partition stress test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	eval := &countingEval{first: make(chan struct{}), sleep: 150 * time.Millisecond}
	addr, stopAgent := startAgent(t, eval, agentOptions())
	proxy := newBlackholeProxy(t, addr)
	opts := dialPoolOptions(proxy.addr())
	opts.MaxRestarts = 50
	opts.Transport = &worker.DialTransport{
		Addrs:            []string{proxy.addr()},
		DialTimeout:      500 * time.Millisecond,
		HandshakeTimeout: 300 * time.Millisecond,
		Seed:             1,
	}
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}

	a := arch.Default().Random(tensor.NewRNG(4))
	type out struct {
		reward float64
		err    error
	}
	resCh := make(chan out, 1)
	go func() {
		r, err := pool.Evaluate(a, 42)
		resCh <- out{r, err}
	}()

	select {
	case <-eval.first:
	case <-time.After(15 * time.Second):
		t.Fatal("evaluation never reached the agent")
	}
	proxy.hole.Store(true)

	deadline := time.Now().Add(15 * time.Second)
	for pool.Stats().LeaseExpires < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired under the partition; stats %+v", pool.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Let a few reconnect attempts die in the blackhole before healing.
	time.Sleep(400 * time.Millisecond)
	proxy.hole.Store(false)

	select {
	case o := <-resCh:
		if o.err != nil {
			t.Fatalf("evaluation failed after the partition healed: %v", o.err)
		}
		if want := mockReward(a, 42); o.reward != want {
			t.Fatalf("reward %v, want %v", o.reward, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("evaluation never completed after the partition healed; stats %+v", pool.Stats())
	}
	if calls := eval.calls.Load(); calls < 2 {
		t.Fatalf("stranded evaluation was not re-executed (evaluator ran %d times)", calls)
	}
	st := pool.Stats()
	if st.Connects < 2 || st.Disconnects < 1 || st.HeartbeatTimeouts < 1 || st.Redispatches < 1 {
		t.Fatalf("partition not exercised: stats %+v", st)
	}
	if st.Degraded {
		t.Fatalf("pool degraded instead of riding out the partition: stats %+v", st)
	}
	t.Logf("partition stats: %+v, evaluator calls %d", st, eval.calls.Load())

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	proxy.close()
	stopAgent()
	waitGoroutines(t, baseline)
}
