package worker_test

import (
	"testing"

	"podnas/internal/arch"
	"podnas/internal/obs"
	"podnas/internal/obs/replay"
	"podnas/internal/obs/span"
	"podnas/internal/search"
	"podnas/internal/worker"
)

// TestDialPoolSpanTreeAcrossProcesses is the cross-process tracing
// contract: a traced search dispatched to a remote TCP agent must yield a
// single span tree in the driver's event stream — search → eval →
// {dispatch, rpc → train} — with the train spans having travelled the wire
// as span frames and re-parented under the rpc span that carried them. The
// tree is assembled with the same replay.Spans the nasreport spans command
// uses, so this also pins down the reconstruction end to end.
func TestDialPoolSpanTreeAcrossProcesses(t *testing.T) {
	const seed, evals = 21, 4
	ring := obs.NewRing(1024)
	root := span.NewTrace("run/RS/21")

	addr, stop := startAgent(t, &mockEval{}, agentOptions())
	defer stop()
	popts := dialPoolOptions(addr)
	popts.Trace = root
	popts.Recorder = ring
	pool, err := worker.NewPool(popts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.RunAsync(rs, pool, search.RunAsyncOptions{
		Workers: 1, MaxEvals: evals, Seed: seed,
		Recorder: ring, Trace: root,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != evals {
		t.Fatalf("completed %d of %d evaluations", len(res), evals)
	}

	traces := replay.Spans(ring.Events())
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != root.Trace {
		t.Fatalf("trace id %s, want %s (deterministic from run identity)", tr.ID, root.Trace)
	}

	// The run root span itself is virtual (never emitted), so its direct
	// children — the search span and per-slot handshake spans — surface as
	// promoted orphan roots.
	var searchRoot *replay.Span
	handshakes := 0
	for _, r := range tr.Roots {
		switch r.Name {
		case "search":
			searchRoot = r
		case "handshake":
			handshakes++
		default:
			t.Errorf("unexpected root span %q", r.Name)
		}
	}
	if searchRoot == nil {
		t.Fatalf("no search span among roots: %+v", tr.Roots)
	}
	if handshakes == 0 {
		t.Errorf("no handshake span for the TCP attachment")
	}

	evalSpans := 0
	for _, ev := range searchRoot.Children {
		if ev.Name != "eval" {
			t.Errorf("search child %q, want eval", ev.Name)
			continue
		}
		evalSpans++
		var dispatch, rpc int
		for _, c := range ev.Children {
			switch c.Name {
			case "dispatch":
				dispatch++
			case "rpc":
				rpc++
				// The train span completed in the agent process and crossed
				// the wire as a span frame; correct parentage here is the
				// whole point of trace propagation.
				if len(c.Children) != 1 || c.Children[0].Name != "train" {
					t.Errorf("eval %d rpc children = %+v, want one remote train span", ev.Eval, c.Children)
				}
				if c.Children[0].Orphan {
					t.Errorf("eval %d train span not stitched under its rpc span", ev.Eval)
				}
			default:
				t.Errorf("eval %d child %q, want dispatch or rpc", ev.Eval, c.Name)
			}
		}
		if dispatch != 1 || rpc != 1 {
			t.Errorf("eval %d has %d dispatch and %d rpc spans, want 1 and 1", ev.Eval, dispatch, rpc)
		}
		if ev.End < ev.Start {
			t.Errorf("eval %d negative extent [%v, %v]", ev.Eval, ev.Start, ev.End)
		}
	}
	if evalSpans != evals {
		t.Errorf("eval spans = %d, want %d", evalSpans, evals)
	}

	// The critical path of a Workers=1 run descends through an eval into
	// its remote rpc/train subtree.
	path := replay.CriticalPath(tr)
	if len(path) < 2 || path[0].Span.Name != "search" || path[1].Span.Name != "eval" {
		t.Errorf("critical path %+v, want search → eval → ...", path)
	}
}

// TestDialPoolTracingPreservesDeterminism is the "spans are telemetry
// only" contract: a Workers=1 search over TCP with full tracing enabled
// reproduces the untraced in-process history bit for bit. Tracing must
// never perturb proposals, per-evaluation seeds, or rewards.
func TestDialPoolTracingPreservesDeterminism(t *testing.T) {
	const seed, evals = 17, 8

	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := search.RunAsync(rs, &mockEval{}, search.RunAsyncOptions{
		Workers: 1, MaxEvals: evals, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	addr, stop := startAgent(t, &mockEval{}, agentOptions())
	defer stop()
	popts := dialPoolOptions(addr)
	popts.Trace = span.NewTrace("run/RS/17")
	popts.Recorder = obs.NewRing(1024)
	pool, err := worker.NewPool(popts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rs2, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := search.RunAsync(rs2, pool, search.RunAsyncOptions{
		Workers: 1, MaxEvals: evals, Seed: seed,
		Recorder: popts.Recorder, Trace: popts.Trace,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(plain) != len(traced) {
		t.Fatalf("history lengths differ: %d untraced vs %d traced", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i].Arch.Key() != traced[i].Arch.Key() {
			t.Fatalf("eval %d arch: untraced %s, traced %s", i, plain[i].Arch.Key(), traced[i].Arch.Key())
		}
		if plain[i].Reward != traced[i].Reward {
			t.Fatalf("eval %d reward: untraced %v, traced %v (must be bit-identical)", i, plain[i].Reward, traced[i].Reward)
		}
	}
}
