package worker_test

import (
	"context"
	"math/rand"
	"runtime"
	"syscall"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/search"
	"podnas/internal/worker"
)

// waitGoroutines waits for the goroutine count to settle back to roughly
// the baseline, tolerating the runtime's own background goroutines.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 6
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// killStorm SIGKILLs a random live worker every interval until stop closes.
// This is the test's external chaos monkey: real kill -9 against real
// worker processes, not simulated faults.
func killStorm(pool *worker.Pool, interval time.Duration, seed int64, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(seed))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			pids := pool.Pids()
			if len(pids) == 0 {
				continue
			}
			syscall.Kill(pids[rng.Intn(len(pids))], syscall.SIGKILL)
		}
	}
}

// TestPoolKillStormStress runs a pooled search while an external process
// randomly SIGKILLs workers, asserting the evaluation budget is fully spent
// and no goroutines leak. Run under -race (CI does).
func TestPoolKillStormStress(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-storm stress test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	opts := fastPoolOptions()
	opts.Workers = 3
	opts.MaxRestarts = 200 // the storm is relentless; the budget must outlast it
	opts.RestartBackoff = 5 * time.Millisecond
	opts.Command = helperCommand(func(int, int) []string { return []string{"HELPER_SLEEP=25ms"} })
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	go killStorm(pool, 60*time.Millisecond, 42, stop)

	const seed, evals = 11, 15
	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.RunAsync(rs, pool, search.RunAsyncOptions{
		Workers: 3, MaxEvals: evals, Seed: seed, Retries: 5,
	})
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != evals {
		t.Fatalf("budget not spent under kill storm: %d of %d evaluations", len(res), evals)
	}
	errored := 0
	for _, r := range res {
		if r.Err != nil {
			errored++
			continue
		}
		want := mockReward(r.Arch, seed+uint64(r.Index)*0x9e37)
		if r.Reward != want {
			t.Fatalf("eval %d reward %v, want %v", r.Index, r.Reward, want)
		}
	}
	// The pool absorbs crashes by re-dispatching and the runner retries
	// transient failures on top, so under a storm the vast majority of the
	// budget still yields real rewards.
	if errored > evals/3 {
		t.Fatalf("%d of %d evaluations errored despite re-dispatch and retries", errored, evals)
	}
	st := pool.Stats()
	t.Logf("kill-storm stats: %+v, %d errored results", st, errored)
	if st.Crashes == 0 {
		t.Fatalf("storm killed nothing (stats %+v); test is vacuous", st)
	}

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestPoolKillStormWithCancellation layers context cancellation on top of
// the kill storm: the search must stop promptly and cleanly, returning its
// completed results without leaking goroutines or processes.
func TestPoolKillStormWithCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-storm stress test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	opts := fastPoolOptions()
	opts.Workers = 3
	opts.MaxRestarts = 200
	opts.RestartBackoff = 5 * time.Millisecond
	opts.Command = helperCommand(func(int, int) []string { return []string{"HELPER_SLEEP=40ms"} })
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	go killStorm(pool, 70*time.Millisecond, 7, stop)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(400 * time.Millisecond)
		cancel()
	}()
	const seed = 23
	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := search.RunAsyncCtx(ctx, rs, pool, search.RunAsyncOptions{
		Workers: 3, MaxEvals: 500, Seed: seed, Retries: 3,
	})
	close(stop)
	if err != nil {
		t.Fatalf("cancelled run returned error: %v", err)
	}
	if took := time.Since(t0); took > 30*time.Second {
		t.Fatalf("cancelled run took %v to wind down", took)
	}
	if len(res) >= 500 {
		t.Fatalf("run was not actually interrupted (%d results)", len(res))
	}

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}
