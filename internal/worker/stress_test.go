package worker_test

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/search"
	"podnas/internal/worker"
)

// waitGoroutines waits for the goroutine count to settle back to roughly
// the baseline, tolerating the runtime's own background goroutines.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 6
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// killStorm SIGKILLs a random live worker every interval until stop closes.
// This is the test's external chaos monkey: real kill -9 against real
// worker processes, not simulated faults.
func killStorm(pool *worker.Pool, interval time.Duration, seed int64, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(seed))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			pids := pool.Pids()
			if len(pids) == 0 {
				continue
			}
			syscall.Kill(pids[rng.Intn(len(pids))], syscall.SIGKILL)
		}
	}
}

// TestPoolKillStormStress runs a pooled search while an external process
// randomly SIGKILLs workers, asserting the evaluation budget is fully spent
// and no goroutines leak. Run under -race (CI does).
func TestPoolKillStormStress(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-storm stress test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	opts := fastPoolOptions()
	opts.Workers = 3
	opts.MaxRestarts = 200 // the storm is relentless; the budget must outlast it
	opts.RestartBackoff = 5 * time.Millisecond
	opts.Command = helperCommand(func(int, int) []string { return []string{"HELPER_SLEEP=25ms"} })
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	go killStorm(pool, 60*time.Millisecond, 42, stop)

	const seed, evals = 11, 15
	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.RunAsync(rs, pool, search.RunAsyncOptions{
		Workers: 3, MaxEvals: evals, Seed: seed, Retries: 5,
	})
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != evals {
		t.Fatalf("budget not spent under kill storm: %d of %d evaluations", len(res), evals)
	}
	errored := 0
	for _, r := range res {
		if r.Err != nil {
			errored++
			continue
		}
		want := mockReward(r.Arch, seed+uint64(r.Index)*0x9e37)
		if r.Reward != want {
			t.Fatalf("eval %d reward %v, want %v", r.Index, r.Reward, want)
		}
	}
	// The pool absorbs crashes by re-dispatching and the runner retries
	// transient failures on top, so under a storm the vast majority of the
	// budget still yields real rewards.
	if errored > evals/3 {
		t.Fatalf("%d of %d evaluations errored despite re-dispatch and retries", errored, evals)
	}
	st := pool.Stats()
	t.Logf("kill-storm stats: %+v, %d errored results", st, errored)
	if st.Crashes == 0 {
		t.Fatalf("storm killed nothing (stats %+v); test is vacuous", st)
	}

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// babysitAgent keeps one TCP worker agent alive on a fixed address: it
// re-execs the test binary in agent mode, waits for the LISTENING line, and
// respawns the process whenever the fault injector SIGKILLs it — each
// incarnation with fresh fault seeds, like a batch scheduler refilling a
// node. Closing stop kills the current incarnation; the returned channel
// closes once the babysitter has fully wound down.
func babysitAgent(t *testing.T, addr string, env func(incarnation int) []string, stop <-chan struct{}) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for incarnation := 0; ; incarnation++ {
			select {
			case <-stop:
				return
			default:
			}
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "PODNAS_WORKER_HELPER=1", "HELPER_LISTEN="+addr)
			cmd.Env = append(cmd.Env, env(incarnation)...)
			cmd.Stderr = os.Stderr
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Error(err)
				return
			}
			if err := cmd.Start(); err != nil {
				t.Error(err)
				return
			}
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "LISTENING") {
					break
				}
			}
			waitDone := make(chan struct{})
			go func() {
				_ = cmd.Wait()
				close(waitDone)
			}()
			select {
			case <-stop:
				_ = cmd.Process.Kill()
				<-waitDone
				return
			case <-waitDone:
				// Storm-killed (or failed to bind); respawn after a beat so a
				// persistent failure cannot spin.
				time.Sleep(20 * time.Millisecond)
			}
		}
	}()
	return done
}

// waitDialable blocks until every address accepts a TCP connection, so a
// pool is never created against agents that have not bound their ports yet
// (a refused dial with no worker ever ready is the pool's fast-degradation
// signal, which would retire the slot instantly).
func waitDialable(t *testing.T, addrs []string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for _, addr := range addrs {
		for {
			c, err := net.DialTimeout("tcp", addr, time.Second)
			if err == nil {
				c.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("agent on %s never became dialable: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestDialPoolKillStormResume is the distributed kill storm: two loopback
// agents whose fault injectors SIGKILL the whole agent process mid-
// evaluation, babysitters respawning each one, and a two-phase search —
// checkpoint every result, then resume from the written checkpoint into a
// fresh pool — that must still spend its full budget. Run under -race (CI
// does).
func TestDialPoolKillStormResume(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-storm stress test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	// Reserve two loopback ports so respawned agents rebind the same address
	// the driver keeps dialing.
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	stopAgents := make(chan struct{})
	var agentsDone []<-chan struct{}
	for i, addr := range addrs {
		i := i
		agentsDone = append(agentsDone, babysitAgent(t, addr, func(incarnation int) []string {
			return []string{
				"HELPER_SLEEP=20ms",
				"HELPER_KILLRATE=0.25",
				fmt.Sprintf("HELPER_KILLSEED=%d", 7+uint64(i)*1000+uint64(incarnation)*7919),
			}
		}, stopAgents))
	}

	newPool := func() *worker.Pool {
		waitDialable(t, addrs)
		opts := dialPoolOptions(addrs...)
		opts.Workers = 2
		opts.MaxRestarts = 200 // the storm is relentless; the budget must outlast it
		opts.RestartBackoff = 5 * time.Millisecond
		opts.MaxBackoff = 250 * time.Millisecond
		pool, err := worker.NewPool(opts)
		if err != nil {
			t.Fatal(err)
		}
		return pool
	}

	const seed, phase1, evals = 11, 6, 14
	path := filepath.Join(t.TempDir(), "storm.ckpt")

	// Phase 1: run part of the budget, checkpointing every result.
	rs1, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	pool1 := newPool()
	res1, err := search.RunAsync(rs1, pool1, search.RunAsyncOptions{
		Workers: 2, MaxEvals: phase1, Seed: seed, Retries: 5,
		Checkpoint: &search.Checkpointer{Path: path, Every: 1},
	})
	st1 := pool1.Stats()
	if cerr := pool1.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatalf("phase 1 failed: %v", err)
	}
	if len(res1) != phase1 {
		t.Fatalf("phase 1 budget not spent: %d of %d evaluations", len(res1), phase1)
	}
	ck, err := search.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.NumResults() != phase1 {
		t.Fatalf("checkpoint stores %d results, phase 1 produced %d", ck.NumResults(), phase1)
	}

	// Phase 2: resume from the checkpoint into a fresh pool, still under the
	// storm, and finish the budget. The seeded searcher is deliberately
	// different — Resume must restore the phase-1 state over it.
	rs2, err := search.NewRandomSearch(arch.Default(), 999)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := newPool()
	res2, err := search.RunAsync(rs2, pool2, search.RunAsyncOptions{
		Workers: 2, MaxEvals: evals, Seed: seed, Retries: 5, Resume: ck,
	})
	st2 := pool2.Stats()
	if cerr := pool2.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	close(stopAgents)
	for _, d := range agentsDone {
		<-d
	}
	if err != nil {
		t.Fatalf("resumed phase failed: %v", err)
	}
	if len(res2) != evals {
		t.Fatalf("budget not spent after resume: %d of %d evaluations", len(res2), evals)
	}
	errored := 0
	for _, r := range res2 {
		if r.Err != nil {
			errored++
			continue
		}
		want := mockReward(r.Arch, seed+uint64(r.Index)*0x9e37)
		if r.Reward != want {
			t.Fatalf("eval %d reward %v, want %v", r.Index, r.Reward, want)
		}
	}
	if errored > evals/3 {
		t.Fatalf("%d of %d evaluations errored despite re-dispatch and retries", errored, evals)
	}
	t.Logf("TCP kill-storm stats: phase1 %+v, phase2 %+v, %d errored results", st1, st2, errored)
	if st1.Crashes+st2.Crashes+st1.Disconnects+st2.Disconnects == 0 {
		t.Fatalf("storm killed nothing (phase1 %+v, phase2 %+v); test is vacuous", st1, st2)
	}
	waitGoroutines(t, baseline)
}

// TestPoolKillStormWithCancellation layers context cancellation on top of
// the kill storm: the search must stop promptly and cleanly, returning its
// completed results without leaking goroutines or processes.
func TestPoolKillStormWithCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-storm stress test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	opts := fastPoolOptions()
	opts.Workers = 3
	opts.MaxRestarts = 200
	opts.RestartBackoff = 5 * time.Millisecond
	opts.Command = helperCommand(func(int, int) []string { return []string{"HELPER_SLEEP=40ms"} })
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	go killStorm(pool, 70*time.Millisecond, 7, stop)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(400 * time.Millisecond)
		cancel()
	}()
	const seed = 23
	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := search.RunAsyncCtx(ctx, rs, pool, search.RunAsyncOptions{
		Workers: 3, MaxEvals: 500, Seed: seed, Retries: 3,
	})
	close(stop)
	if err != nil {
		t.Fatalf("cancelled run returned error: %v", err)
	}
	if took := time.Since(t0); took > 30*time.Second {
		t.Fatalf("cancelled run took %v to wind down", took)
	}
	if len(res) >= 500 {
		t.Fatalf("run was not actually interrupted (%d results)", len(res))
	}

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}
