package worker_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/search"
	"podnas/internal/tensor"
	"podnas/internal/worker"
)

// TestMain doubles as the worker executable: when the helper marker is set,
// the test binary re-execed by a Pool runs the protocol loop against the
// mock evaluator instead of the tests. This is how the suite exercises the
// supervisor against real subprocesses and real SIGKILLs.
func TestMain(m *testing.M) {
	if os.Getenv("PODNAS_WORKER_HELPER") == "1" {
		helperMain()
		return
	}
	os.Exit(m.Run())
}

func helperMain() {
	hb := envDuration("HELPER_HEARTBEAT", 50*time.Millisecond)
	if os.Getenv("HELPER_NOBEAT") == "1" {
		hb = time.Hour // worker alive but silent: only heartbeat detection can catch it
	}
	var ev search.Evaluator = &mockEval{
		sleep:    envDuration("HELPER_SLEEP", 0),
		straggle: envDuration("HELPER_STRAGGLE", 0),
	}
	if rate := envFloat("HELPER_KILLRATE", 0); rate > 0 {
		ev = &search.FaultInjector{Inner: ev, Seed: envUint("HELPER_KILLSEED", 0), KillRate: rate}
	}
	if addr := os.Getenv("HELPER_LISTEN"); addr != "" {
		// Agent mode: a dialable TCP worker instead of a pipe worker. The
		// LISTENING line on stdout tells the babysitting test the port is
		// bound, so it can respawn storm-killed agents without racing the
		// driver's reconnect dials.
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "helper agent:", err)
			os.Exit(1)
		}
		fmt.Printf("LISTENING %s\n", ln.Addr())
		if err := worker.ServeListener(context.Background(), ln, ev, worker.AgentOptions{Heartbeat: hb}); err != nil {
			fmt.Fprintln(os.Stderr, "helper agent:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if err := worker.Serve(os.Stdin, os.Stdout, ev, worker.ServeOptions{Heartbeat: hb}); err != nil {
		fmt.Fprintln(os.Stderr, "helper worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

func envDuration(key string, def time.Duration) time.Duration {
	if v := os.Getenv(key); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return def
}

func envFloat(key string, def float64) float64 {
	if v := os.Getenv(key); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

func envUint(key string, def uint64) uint64 {
	if v := os.Getenv(key); v != "" {
		if u, err := strconv.ParseUint(v, 10, 64); err == nil {
			return u
		}
	}
	return def
}

// mockReward is a pure deterministic reward: identical in the helper
// process and in-process, which is what the determinism tests compare.
func mockReward(a arch.Arch, seed uint64) float64 {
	h := uint64(1469598103934665603)
	for _, g := range a {
		h = (h ^ uint64(g)) * 1099511628211
	}
	h ^= seed * 0x9e3779b97f4a7c15
	return tensor.NewRNG(h).Float64()
}

// mockEval stands in for the training evaluator: deterministic reward,
// optional context-respecting delay.
type mockEval struct {
	sleep, straggle time.Duration
}

func (m *mockEval) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	return m.EvaluateCtx(context.Background(), a, seed)
}

func (m *mockEval) EvaluateCtx(ctx context.Context, a arch.Arch, seed uint64) (float64, error) {
	if d := m.sleep + m.straggle; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-t.C:
		}
	}
	return mockReward(a, seed), nil
}

// helperCommand builds a Pool Command that re-execs this test binary as a
// helper worker. extra adds per-spawn environment; it may inspect the
// worker id and incarnation.
func helperCommand(extra func(workerID, incarnation int) []string) func(int, int) *exec.Cmd {
	return func(workerID, incarnation int) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "PODNAS_WORKER_HELPER=1")
		if extra != nil {
			cmd.Env = append(cmd.Env, extra(workerID, incarnation)...)
		}
		return cmd
	}
}

func fastPoolOptions() worker.PoolOptions {
	return worker.PoolOptions{
		Workers:         1,
		Command:         helperCommand(nil),
		Heartbeat:       50 * time.Millisecond,
		HeartbeatMisses: 4,
		MaxRestarts:     5,
		RestartBackoff:  10 * time.Millisecond,
		StartTimeout:    20 * time.Second,
		Seed:            1,
	}
}

func runPooledSearch(t *testing.T, pool *worker.Pool, seed uint64, evals, workers, retries int) []search.Result {
	t.Helper()
	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.RunAsync(rs, pool, search.RunAsyncOptions{
		Workers: workers, MaxEvals: evals, Seed: seed, Retries: retries,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// readUntil decodes frames until one of the wanted type arrives, skipping
// heartbeats and other interleaved traffic. The test's own deadline bounds
// a stream that never produces it.
func readUntil(t *testing.T, dec *json.Decoder, want string) worker.Message {
	t.Helper()
	for {
		var m worker.Message
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("waiting for %q frame: %v", want, err)
		}
		if m.Type == want {
			return m
		}
	}
}

// TestServeRoundTrip drives the raw protocol against an in-process Serve
// over pipes: ready, heartbeat, eval, cancel of an in-flight job, shutdown.
func TestServeRoundTrip(t *testing.T) {
	supIn, wkOut := io.Pipe() // worker → supervisor
	wkIn, supOut := io.Pipe() // supervisor → worker
	done := make(chan error, 1)
	go func() {
		done <- worker.Serve(wkIn, wkOut, &mockEval{sleep: 5 * time.Second}, worker.ServeOptions{Heartbeat: 20 * time.Millisecond})
	}()
	dec := json.NewDecoder(supIn)
	enc := json.NewEncoder(supOut)

	readUntil(t, dec, worker.MsgReady)
	readUntil(t, dec, worker.MsgHeartbeat) // liveness while idle
	// Start a slow evaluation, then cancel it: the result must come back
	// promptly with a transient cancellation error, not after 5s.
	a := arch.Default().Random(tensor.NewRNG(3))
	if err := enc.Encode(worker.Message{Type: worker.MsgEval, ID: 7, Arch: a, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(worker.Message{Type: worker.MsgCancel, ID: 7}); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res := readUntil(t, dec, worker.MsgResult)
	if res.ID != 7 || res.Err == "" || !res.Transient {
		t.Fatalf("cancelled eval result = %+v, want transient error for id 7", res)
	}
	if time.Since(t0) > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt", time.Since(t0))
	}
	if err := enc.Encode(worker.Message{Type: worker.MsgShutdown}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}

// TestPoolDeterminismMatchesInProcess is the determinism contract: a
// single-worker isolated run reproduces the in-process search history bit
// for bit (same architectures, same rewards, same order).
func TestPoolDeterminismMatchesInProcess(t *testing.T) {
	const seed, evals = 17, 8
	rs, err := search.NewRandomSearch(arch.Default(), seed)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := search.RunAsync(rs, &mockEval{}, search.RunAsyncOptions{Workers: 1, MaxEvals: evals, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	pool, err := worker.NewPool(fastPoolOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pooled := runPooledSearch(t, pool, seed, evals, 1, 0)

	if len(direct) != len(pooled) {
		t.Fatalf("history lengths differ: %d in-process vs %d pooled", len(direct), len(pooled))
	}
	for i := range direct {
		if direct[i].Arch.Key() != pooled[i].Arch.Key() {
			t.Fatalf("eval %d arch: in-process %s, pooled %s", i, direct[i].Arch.Key(), pooled[i].Arch.Key())
		}
		if direct[i].Reward != pooled[i].Reward {
			t.Fatalf("eval %d reward: in-process %v, pooled %v (must be bit-identical)", i, direct[i].Reward, pooled[i].Reward)
		}
		if pooled[i].Err != nil {
			t.Fatalf("pooled eval %d errored: %v", i, pooled[i].Err)
		}
	}
}

// TestPoolSurvivesInjectedKill SIGKILLs the worker handling the second
// dispatch (KillNth) and asserts the search still spends its full budget
// with every reward intact — the lost evaluation is re-dispatched.
func TestPoolSurvivesInjectedKill(t *testing.T) {
	opts := fastPoolOptions()
	opts.Workers = 2
	opts.KillNth = 2
	opts.Command = helperCommand(func(int, int) []string { return []string{"HELPER_SLEEP=30ms"} })
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const seed, evals = 5, 6
	res := runPooledSearch(t, pool, seed, evals, 2, 0)
	if len(res) != evals {
		t.Fatalf("budget not spent: %d of %d evaluations", len(res), evals)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("eval %d errored: %v", r.Index, r.Err)
		}
		want := mockReward(r.Arch, seed+uint64(r.Index)*0x9e37)
		if r.Reward != want {
			t.Fatalf("eval %d reward %v, want %v", r.Index, r.Reward, want)
		}
	}
	st := pool.Stats()
	if st.Crashes < 1 {
		t.Fatalf("expected at least one crash, stats %+v", st)
	}
	if st.Redispatches < 1 {
		t.Fatalf("expected the killed evaluation to be re-dispatched, stats %+v", st)
	}
	if st.Restarts < 1 {
		t.Fatalf("expected the killed worker to be restarted, stats %+v", st)
	}
}

// TestPoolSurvivesSelfKill exercises the FaultInjector's process-kill mode
// inside real workers: each evaluation has a chance of SIGKILLing its own
// process mid-flight. Incarnation-perturbed fault seeds keep a restarted
// worker from re-drawing the same fatal decision forever.
func TestPoolSurvivesSelfKill(t *testing.T) {
	opts := fastPoolOptions()
	opts.Workers = 2
	opts.MaxRestarts = 20
	opts.Command = helperCommand(func(workerID, incarnation int) []string {
		return []string{
			"HELPER_KILLRATE=0.4",
			fmt.Sprintf("HELPER_KILLSEED=%d", 99+uint64(workerID)*1000+uint64(incarnation)*7919),
		}
	})
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const seed, evals = 3, 8
	res := runPooledSearch(t, pool, seed, evals, 2, 2)
	if len(res) != evals {
		t.Fatalf("budget not spent: %d of %d evaluations", len(res), evals)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("eval %d errored: %v", r.Index, r.Err)
		}
	}
	if st := pool.Stats(); st.Crashes < 1 {
		t.Fatalf("kill rate 0.4 over %d evals injected no crashes, stats %+v", evals, st)
	}
}

// TestPoolHeartbeatTimeout starts workers that go silent after the ready
// handshake; the supervisor must detect them via missed heartbeats, burn
// the restart budget, and degrade to the fallback evaluator.
func TestPoolHeartbeatTimeout(t *testing.T) {
	opts := fastPoolOptions()
	opts.Workers = 2
	opts.Heartbeat = 30 * time.Millisecond
	opts.HeartbeatMisses = 2
	opts.MaxRestarts = 1
	opts.Fallback = &mockEval{}
	opts.Command = helperCommand(func(int, int) []string { return []string{"HELPER_NOBEAT=1"} })
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	deadline := time.Now().Add(20 * time.Second)
	for !pool.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("pool never degraded; stats %+v", pool.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := pool.Stats()
	if st.HeartbeatTimeouts < 1 {
		t.Fatalf("no heartbeat timeouts recorded, stats %+v", st)
	}
	a := arch.Default().Random(tensor.NewRNG(1))
	got, err := pool.Evaluate(a, 42)
	if err != nil {
		t.Fatalf("degraded evaluation failed: %v", err)
	}
	if want := mockReward(a, 42); got != want {
		t.Fatalf("fallback reward %v, want %v", got, want)
	}
	if st := pool.Stats(); st.FallbackEvals < 1 {
		t.Fatalf("fallback not used, stats %+v", st)
	}
}

// TestPoolSpeculativeReexecution parks one straggler worker and asserts the
// speculative copy on the healthy worker wins while the loser is cancelled.
func TestPoolSpeculativeReexecution(t *testing.T) {
	opts := fastPoolOptions()
	opts.Workers = 2
	opts.SpeculativeAfter = 150 * time.Millisecond
	opts.Command = helperCommand(func(workerID, _ int) []string {
		if workerID == 0 {
			return []string{"HELPER_STRAGGLE=30s"} // pathological straggler
		}
		return nil
	})
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Two concurrent evaluations: exactly one lands on the straggler. Its
	// speculative copy must finish on the healthy worker long before 30s.
	space := arch.Default()
	rng := tensor.NewRNG(2)
	type out struct {
		reward float64
		err    error
		want   float64
	}
	results := make(chan out, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		a, seed := space.Random(rng), uint64(100+i)
		go func() {
			r, err := pool.EvaluateCtx(ctx, a, seed)
			results <- out{r, err, mockReward(a, seed)}
		}()
	}
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("evaluation errored: %v", o.err)
		}
		if o.reward != o.want {
			t.Fatalf("reward %v, want %v", o.reward, o.want)
		}
	}
	st := pool.Stats()
	if st.SpeculativeRuns < 1 || st.SpeculativeWins < 1 {
		t.Fatalf("straggler not speculatively re-executed: stats %+v", st)
	}
}

// TestPoolDegradesWhenSpawningUnavailable points the pool at a nonexistent
// binary: it must fall back to in-process evaluation instead of failing.
func TestPoolDegradesWhenSpawningUnavailable(t *testing.T) {
	opts := fastPoolOptions()
	opts.Fallback = &mockEval{}
	opts.Command = func(int, int) *exec.Cmd {
		return exec.Command("/nonexistent/podnas-worker-binary")
	}
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	a := arch.Default().Random(tensor.NewRNG(9))
	got, err := pool.Evaluate(a, 7)
	if err != nil {
		t.Fatalf("degraded evaluation failed: %v", err)
	}
	if want := mockReward(a, 7); got != want {
		t.Fatalf("fallback reward %v, want %v", got, want)
	}
	st := pool.Stats()
	if !st.Degraded || st.FallbackEvals < 1 {
		t.Fatalf("pool did not degrade to fallback, stats %+v", st)
	}
}

// TestPoolDegradesToTransientErrorWithoutFallback: with no fallback a
// degraded pool must fail evaluations with ErrTransient so the runner's
// retry/recording policy applies, not hang.
func TestPoolDegradesToTransientErrorWithoutFallback(t *testing.T) {
	opts := fastPoolOptions()
	opts.Command = func(int, int) *exec.Cmd {
		return exec.Command("/nonexistent/podnas-worker-binary")
	}
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	a := arch.Default().Random(tensor.NewRNG(9))
	_, err = pool.Evaluate(a, 7)
	if err == nil || !errors.Is(err, search.ErrTransient) {
		t.Fatalf("degraded pool returned %v, want ErrTransient", err)
	}
}

// TestPoolCancellation cancels the context mid-evaluation; the call must
// return the context error promptly.
func TestPoolCancellation(t *testing.T) {
	opts := fastPoolOptions()
	opts.Command = helperCommand(func(int, int) []string { return []string{"HELPER_SLEEP=30s"} })
	pool, err := worker.NewPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	a := arch.Default().Random(tensor.NewRNG(4))
	t0 := time.Now()
	_, err = pool.EvaluateCtx(ctx, a, 1)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled evaluation returned %v, want context.Canceled", err)
	}
	if time.Since(t0) > 10*time.Second {
		t.Fatalf("cancellation took %v", time.Since(t0))
	}
}
